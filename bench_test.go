// Package rtad's benchmark harness regenerates every table and figure of
// the paper's evaluation (run with `go test -bench=. -benchmem`):
//
//	BenchmarkTableI   — synthesized results of RTAD (Table I)
//	BenchmarkTableII  — trimming result of ML-MIAOW (Table II)
//	BenchmarkFig6     — performance overhead of RTAD (Fig 6)
//	BenchmarkFig7     — data transfer latency of RTAD (Fig 7)
//	BenchmarkFig8     — latencies of anomaly detection (Fig 8)
//
// Each prints the regenerated rows/series once and reports the headline
// quantities as benchmark metrics. BenchmarkFleetDetectionGrid measures
// the core.Fleet speedup on a fixed detection-job grid (width 1 vs one
// worker per CPU). Ablation benchmarks then sweep the
// design choices DESIGN.md calls out (CU count, IGM stride, MCM FIFO depth,
// PTM drain threshold), and micro-benchmarks measure the hot simulation
// paths themselves.
package rtad

import (
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"sync"
	"testing"

	"rtad/internal/core"
	"rtad/internal/cpu"
	"rtad/internal/experiments"
	"rtad/internal/gpu"
	"rtad/internal/kernels"
	"rtad/internal/ml"
	"rtad/internal/ptm"
	"rtad/internal/reconstruct"
	"rtad/internal/sim"
	"rtad/internal/workload"
)

var printOnce sync.Map

// show prints an experiment rendering once per benchmark name.
func show(name, s string) {
	if _, done := printOnce.LoadOrStore(name, true); !done {
		fmt.Printf("\n==== %s ====\n%s\n", name, s)
	}
}

func BenchmarkTableII(b *testing.B) {
	var last *experiments.TableIIResult
	for i := 0; i < b.N; i++ {
		res, err := experiments.TableII(experiments.Options{})
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	show("Table II — trimming result of ML-MIAOW", last.String())
	b.ReportMetric(100*last.Trim.MLMIAOW.Reduction(last.Trim.MIAOW), "%trim-mlmiaow")
	b.ReportMetric(100*last.Trim.MIAOW20.Reduction(last.Trim.MIAOW), "%trim-miaow2.0")
	b.ReportMetric(last.Trim.PerfPerAreaVsMIAOW20(), "x-perf/area")
}

func BenchmarkTableI(b *testing.B) {
	var last *experiments.TableIResult
	for i := 0; i < b.N; i++ {
		res, err := experiments.TableI(experiments.Options{})
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	show("Table I — synthesized results of RTAD", last.String())
	b.ReportMetric(float64(last.Table.Total.LUTs), "LUTs")
	b.ReportMetric(float64(last.Table.Total.Gates), "gates")
}

func BenchmarkFig6(b *testing.B) {
	var last *experiments.Fig6Result
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig6(experiments.Options{})
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	show("Fig 6 — performance overhead of RTAD", last.String())
	b.ReportMetric(100*last.Geomean[cpu.ModeRTAD], "%rtad")
	b.ReportMetric(100*last.Geomean[cpu.ModeSWAll], "%sw_all")
}

func BenchmarkFig7(b *testing.B) {
	var last *experiments.Fig7Result
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig7(experiments.Options{}, "401.bzip2")
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	show("Fig 7 — data transfer latency of RTAD", last.String())
	b.ReportMetric(last.SW.Total().Microseconds(), "us-sw")
	b.ReportMetric(last.RTAD.Total().Microseconds(), "us-rtad")
}

func BenchmarkFig8(b *testing.B) {
	var last *experiments.Fig8Result
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig8(experiments.Options{})
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	show("Fig 8 — latencies of anomaly detection", last.String())
	b.ReportMetric(last.MeanSpeedup, "x-mean-speedup")
	b.ReportMetric(experiments.MeanLatency(last.ELM, true).Microseconds(), "us-elm-mlmiaow")
	b.ReportMetric(experiments.MeanLatency(last.LSTM, true).Microseconds(), "us-lstm-mlmiaow")
}

// ------------------------------------------------------------- ablations

// ablationDeployment trains one LSTM deployment shared by the sweeps.
var (
	ablDep  *core.Deployment
	ablOnce sync.Once
	ablErr  error
)

func lstmDeployment(b *testing.B) *core.Deployment {
	b.Helper()
	ablOnce.Do(func() {
		p, _ := workload.ByName("458.sjeng")
		cfg := core.DefaultTrainConfig(p, core.ModelLSTM)
		ablDep, ablErr = core.Train(cfg)
	})
	if ablErr != nil {
		b.Fatal(ablErr)
	}
	return ablDep
}

// BenchmarkAblationCUs sweeps the compute-unit count: the area saved by
// trimming buys CUs, and this shows what each CU is worth in judgment
// latency (diminishing past the wavefront parallelism of the kernels).
func BenchmarkAblationCUs(b *testing.B) {
	dep := lstmDeployment(b)
	for _, cus := range []int{1, 2, 3, 5, 8} {
		b.Run(fmt.Sprintf("cus=%d", cus), func(b *testing.B) {
			var lat sim.Time
			for i := 0; i < b.N; i++ {
				res, err := core.RunDetection(dep, core.PipelineConfig{CUs: cus},
					core.AttackSpec{Seed: 3}, 4_000_000)
				if err != nil {
					b.Fatal(err)
				}
				lat = res.Latency
			}
			b.ReportMetric(lat.Microseconds(), "us-latency")
		})
	}
}

// BenchmarkAblationStride sweeps the IGM emission stride: small strides
// oversubscribe the engine (queueing, then FIFO loss), large strides
// sample behaviour more coarsely.
func BenchmarkAblationStride(b *testing.B) {
	dep := lstmDeployment(b)
	for _, stride := range []int{512, 1024, 2048, 3840, 8192} {
		b.Run(fmt.Sprintf("stride=%d", stride), func(b *testing.B) {
			var lat sim.Time
			var drops int64
			for i := 0; i < b.N; i++ {
				res, err := core.RunDetection(dep,
					core.PipelineConfig{CUs: 5, Stride: stride},
					core.AttackSpec{Seed: 3}, 4_000_000)
				if err != nil {
					b.Fatal(err)
				}
				lat, drops = res.Latency, res.Dropped
			}
			b.ReportMetric(lat.Microseconds(), "us-latency")
			b.ReportMetric(float64(drops), "drops")
		})
	}
}

// BenchmarkAblationFIFODepth sweeps the MCM vector FIFO: the paper's
// overflow discussion (Fig 8) is a statement about this buffer.
func BenchmarkAblationFIFODepth(b *testing.B) {
	dep := lstmDeployment(b)
	for _, depth := range []int{2, 4, 8, 16} {
		b.Run(fmt.Sprintf("depth=%d", depth), func(b *testing.B) {
			var drops int64
			for i := 0; i < b.N; i++ {
				res, err := core.RunDetection(dep,
					core.PipelineConfig{CUs: 1, Stride: 1024, FIFODepth: depth},
					core.AttackSpec{Seed: 3}, 3_000_000)
				if err != nil {
					b.Fatal(err)
				}
				drops = res.Dropped
			}
			b.ReportMetric(float64(drops), "drops")
		})
	}
}

// BenchmarkAblationDrainThreshold sweeps the PTM formatter hold-back, the
// dominant term of Fig 7's RTAD step (1).
func BenchmarkAblationDrainThreshold(b *testing.B) {
	dep := lstmDeployment(b)
	for _, thr := range []int{16, 64, 256, 1024} {
		b.Run(fmt.Sprintf("bytes=%d", thr), func(b *testing.B) {
			var read sim.Time
			for i := 0; i < b.N; i++ {
				tb, _, err := core.MeasureRTADTransfer(dep,
					core.PipelineConfig{CUs: 5, Stride: 64, DrainThreshold: thr}, 600_000)
				if err != nil {
					b.Fatal(err)
				}
				read = tb.Read
			}
			b.ReportMetric(read.Microseconds(), "us-read-stage")
		})
	}
}

// BenchmarkFleetDetectionGrid runs a fixed detection-job grid through
// core.Fleet at width 1 and at one worker per CPU: the wall-clock ratio is
// the fleet speedup (results are bit-identical at any width, so only time
// differs). This is the concurrency payoff behind the parallel Fig 6/Fig 8
// paths.
func BenchmarkFleetDetectionGrid(b *testing.B) {
	dep := lstmDeployment(b)
	var jobs []core.Job
	for _, cus := range []int{1, 5} {
		for _, stride := range []int{512, 1024, 3840} {
			jobs = append(jobs, core.Job{
				Dep:    dep,
				Config: core.PipelineConfig{CUs: cus, Stride: stride},
				Attack: core.AttackSpec{Seed: 3},
				Instr:  2_000_000,
			})
		}
	}
	widths := []int{1, runtime.GOMAXPROCS(0)}
	if widths[1] == 1 {
		widths = widths[:1] // single-CPU host: widths coincide
	}
	for _, workers := range widths {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			fleet := core.NewFleet(workers)
			for i := 0; i < b.N; i++ {
				results, err := fleet.Detect(jobs)
				if err != nil {
					b.Fatal(err)
				}
				if len(results) != len(jobs) {
					b.Fatalf("got %d results for %d jobs", len(results), len(jobs))
				}
			}
			b.ReportMetric(float64(len(jobs)), "jobs/op")
		})
	}
}

// -------------------------------------------------------- micro-benchmarks

func BenchmarkCPUSimulation(b *testing.B) {
	p, _ := workload.ByName("458.sjeng")
	prog, err := p.Generate()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	c := cpu.New(prog, cpu.Config{})
	for i := 0; i < b.N; i++ {
		if _, err := c.Run(1000); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(1000, "instrs/op")
}

func BenchmarkPTMEncode(b *testing.B) {
	enc := ptm.NewEncoder(ptm.Config{BranchBroadcast: true})
	rng := rand.New(rand.NewSource(1))
	evs := make([]cpu.BranchEvent, 1024)
	for i := range evs {
		evs[i] = cpu.BranchEvent{
			Cycle: int64(i * 10), PC: 0x8000,
			Target: 0x8000 + uint32(rng.Intn(1<<12))&^3,
			Kind:   cpu.KindDirect, Taken: rng.Intn(4) != 0,
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		enc.Encode(evs[i%len(evs)])
	}
}

func BenchmarkPTMDecode(b *testing.B) {
	enc := ptm.NewEncoder(ptm.Config{BranchBroadcast: true})
	var stream []byte
	stream = append(stream, enc.Start(0x8000)...)
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 4096; i++ {
		stream = append(stream, enc.Encode(cpu.BranchEvent{
			Target: 0x8000 + uint32(rng.Intn(1<<12))&^3, Kind: cpu.KindDirect, Taken: true,
		})...)
	}
	b.SetBytes(int64(len(stream)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dec := ptm.NewStreamDecoder()
		for _, by := range stream {
			dec.Feed(by)
		}
	}
}

var (
	benchELM     *ml.ELM
	benchELMOnce sync.Once
	benchELMErr  error
)

func trainedELMModel(b *testing.B) *ml.ELM {
	b.Helper()
	benchELMOnce.Do(func() {
		cfg := ml.DefaultELMConfig()
		rng := rand.New(rand.NewSource(4))
		windows := make([][]int32, 400)
		for i := range windows {
			w := make([]int32, cfg.Window)
			for j := range w {
				w[j] = int32(rng.Intn(cfg.Vocab))
			}
			windows[i] = w
		}
		benchELM, benchELMErr = ml.TrainELM(cfg, windows)
	})
	if benchELMErr != nil {
		b.Fatal(benchELMErr)
	}
	return benchELM
}

func trainedELMEngine(b *testing.B, cus int) *kernels.ELMEngine {
	b.Helper()
	eng, err := kernels.NewELMEngine(gpu.NewDevice(kernels.ELMMemEnd, cus), trainedELMModel(b))
	if err != nil {
		b.Fatal(err)
	}
	return eng
}

func BenchmarkELMInferenceGPU(b *testing.B) {
	eng := trainedELMEngine(b, 5)
	w := make([]int32, kernels.ELMWindow)
	b.ResetTimer()
	var cycles int64
	for i := 0; i < b.N; i++ {
		_, c, err := eng.Infer(w)
		if err != nil {
			b.Fatal(err)
		}
		cycles = c
	}
	b.ReportMetric(float64(cycles), "gpu-cycles")
	b.ReportMetric(sim.GPUClock.Duration(cycles).Microseconds(), "us-sim-latency")
}

// ------------------------------------------------------ backend comparison

// benchBackends are the registered inference backends, fidelity-identical
// by construction (judgment streams are bit-identical; see
// internal/kernels/backend_test.go), so these benchmarks measure pure
// wall-clock cost of the same computation.
var benchBackends = []string{
	kernels.BackendGPU, kernels.BackendNative, kernels.BackendNativeCalibrated,
}

// BenchmarkBackendELMInference times a single steady-state ELM judgment on
// each backend. The warm-up call lets the lazy native backend record its
// shape (its first inference runs the GPU simulator), so the loop measures
// the replay path the detection pipelines actually sit on.
func BenchmarkBackendELMInference(b *testing.B) {
	model := trainedELMModel(b)
	w := make([]int32, kernels.ELMWindow)
	for _, name := range benchBackends {
		b.Run(name, func(b *testing.B) {
			eng, err := kernels.NewBackend(name,
				kernels.Spec{Dev: gpu.NewDevice(kernels.ELMMemEnd, 5), ELM: model})
			if err != nil {
				b.Fatal(err)
			}
			if _, _, err := eng.Infer(w); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := eng.Infer(w); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkBackendLSTMInference is the LSTM counterpart (recurrent state,
// heavier kernel — the backend gap is widest here).
func BenchmarkBackendLSTMInference(b *testing.B) {
	model := lstmDeployment(b).LSTM
	w := make([]int32, kernels.LSTMWindow)
	for _, name := range benchBackends {
		b.Run(name, func(b *testing.B) {
			eng, err := kernels.NewBackend(name,
				kernels.Spec{Dev: gpu.NewDevice(kernels.LSTMMemEnd, 5), LSTM: model})
			if err != nil {
				b.Fatal(err)
			}
			if _, _, err := eng.Infer(w); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := eng.Infer(w); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

var (
	benchELMDep     *core.Deployment
	benchELMDepOnce sync.Once
	benchELMDepErr  error
)

func elmDeployment(b *testing.B) *core.Deployment {
	b.Helper()
	benchELMDepOnce.Do(func() {
		p, _ := workload.ByName("400.perlbench")
		cfg := core.DefaultTrainConfig(p, core.ModelELM)
		benchELMDep, benchELMDepErr = core.Train(cfg)
	})
	if benchELMDepErr != nil {
		b.Fatal(benchELMDepErr)
	}
	return benchELMDep
}

// BenchmarkBackendFig8Grid runs the Fig 8 detection grid — both models ×
// both engine widths — serially (the -workers 1 configuration) on each
// backend over pre-trained deployments. Training and victim simulation are
// backend-invariant, so deployments are built once outside the timed
// region and the wall-clock ratio between sub-benchmarks isolates the
// inference backend. One calibration table spans the whole grid: the
// calibrated backend pays its GPU pass once per (model, CUs) shape and
// replays it for every remaining cell.
func BenchmarkBackendFig8Grid(b *testing.B) {
	elm := elmDeployment(b)
	lstm := lstmDeployment(b)
	cells := []struct {
		dep    *core.Deployment
		attack core.AttackSpec
	}{
		{elm, core.AttackSpec{BurstLen: 4096, Seed: 1}},
		{lstm, core.AttackSpec{Seed: 3}},
	}
	for _, name := range benchBackends {
		b.Run(name, func(b *testing.B) {
			calib := kernels.NewCalibration()
			for i := 0; i < b.N; i++ {
				for _, cell := range cells {
					for _, cus := range []int{1, 5} {
						cfg := core.PipelineConfig{
							CUs: cus, Backend: name, Calibration: calib,
							StagedTrace: stagedTraceEnv,
						}
						if _, err := core.RunDetection(cell.dep, cfg, cell.attack, 4_000_000); err != nil {
							b.Fatal(err)
						}
					}
				}
			}
			b.ReportMetric(float64(2*len(cells)), "cells/op")
		})
	}
}

// stagedTraceEnv switches BenchmarkBackendFig8Grid onto the staged
// byte/word trace path, so the fused fast path's grid speedup can be
// measured back to back on one host:
//
//	RTAD_STAGED_TRACE=1 go test -run '^$' -bench BenchmarkBackendFig8Grid -benchtime 3x .
//
// (BENCH_backends.json's trace_fastpath_speedup section records such a pair.)
var stagedTraceEnv = os.Getenv("RTAD_STAGED_TRACE") != ""

// BenchmarkBackendFig8GridSaturated is the same grid in Fig 8's overflow
// regime: a hot IGM stride with an MCM FIFO deep enough that nothing drops,
// so the engine must judge every emitted vector (most of them during the
// post-run drain). This is the engine-bound configuration — judgments per
// cell rise from dozens to thousands — and where the calibrated native
// backend pays off: the cycle-accurate interpreter simulates every kernel
// launch, the native backend replays recorded cycle costs around a direct
// fixed-point evaluation. Judgment streams stay bit-identical; expect well
// over 5x wall-clock between the gpu and native-calibrated sub-benchmarks.
func BenchmarkBackendFig8GridSaturated(b *testing.B) {
	elm := elmDeployment(b)
	lstm := lstmDeployment(b)
	cells := []struct {
		dep    *core.Deployment
		stride int
		attack core.AttackSpec
		instr  int64
	}{
		{elm, 0, core.AttackSpec{BurstLen: 4096, Seed: 1}, 4_000_000},
		{lstm, 24, core.AttackSpec{Seed: 3}, 3_000_000},
	}
	for _, name := range benchBackends {
		b.Run(name, func(b *testing.B) {
			calib := kernels.NewCalibration()
			var judged int
			for i := 0; i < b.N; i++ {
				judged = 0
				for _, cell := range cells {
					for _, cus := range []int{1, 5} {
						cfg := core.PipelineConfig{
							CUs: cus, Stride: cell.stride, FIFODepth: 1 << 16,
							Backend: name, Calibration: calib,
						}
						res, err := core.RunDetection(cell.dep, cfg, cell.attack, cell.instr)
						if err != nil {
							b.Fatal(err)
						}
						judged += res.Judged
					}
				}
			}
			b.ReportMetric(float64(judged), "judged/op")
		})
	}
}

func BenchmarkLSTMTrainingStep(b *testing.B) {
	cfg := ml.DefaultLSTMConfig()
	cfg.Epochs = 1
	rng := rand.New(rand.NewSource(5))
	windows := make([][]int32, cfg.Truncate*4)
	for i := range windows {
		w := make([]int32, cfg.Window)
		for j := range w {
			w[j] = int32(rng.Intn(cfg.Vocab))
		}
		windows[i] = w
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ml.TrainLSTM(cfg, windows); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWorkloadGeneration(b *testing.B) {
	p, _ := workload.ByName("403.gcc")
	for i := 0; i < b.N; i++ {
		if _, err := p.Generate(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationELMvsMLP measures the paper's "lightweight" claim: the
// ELM's closed-form ridge solve against epochs of MLP backprop at the same
// topology and comparable accuracy.
func BenchmarkAblationELMvsMLP(b *testing.B) {
	cfg := ml.DefaultELMConfig()
	rng := rand.New(rand.NewSource(8))
	mk := func(n int, seed int64) [][]int32 {
		r := rand.New(rand.NewSource(seed))
		succ := make([][]int32, cfg.Vocab)
		for c := range succ {
			succ[c] = []int32{int32((c + 1) % cfg.Vocab), int32((c + 1) % cfg.Vocab), int32(r.Intn(cfg.Vocab))}
		}
		cur := int32(0)
		stream := make([]int32, n+cfg.Window)
		for i := range stream {
			stream[i] = cur
			cur = succ[cur][r.Intn(3)]
		}
		out := make([][]int32, n)
		for i := range out {
			out[i] = stream[i : i+cfg.Window]
		}
		return out
	}
	_ = rng
	train := mk(3000, 1)
	test := mk(600, 2)

	b.Run("elm-ridge", func(b *testing.B) {
		var acc float64
		for i := 0; i < b.N; i++ {
			m, err := ml.TrainELM(cfg, train)
			if err != nil {
				b.Fatal(err)
			}
			acc = m.Accuracy(test)
		}
		b.ReportMetric(acc, "top1-accuracy")
	})
	b.Run("mlp-backprop", func(b *testing.B) {
		var acc float64
		for i := 0; i < b.N; i++ {
			m, err := ml.TrainMLP(cfg, train, 8, 0.05)
			if err != nil {
				b.Fatal(err)
			}
			acc = m.Accuracy(test)
		}
		b.ReportMetric(acc, "top1-accuracy")
	})
}

// BenchmarkAblationAttackStyle contrasts the paper's random-insertion
// emulation with mimicry segment replay on the same deployment: identical
// hardware latency, very different detectability.
func BenchmarkAblationAttackStyle(b *testing.B) {
	dep := lstmDeployment(b)
	for _, tc := range []struct {
		name    string
		mimicry bool
	}{{"random-insertion", false}, {"mimicry-replay", true}} {
		b.Run(tc.name, func(b *testing.B) {
			detected := 0
			var lat sim.Time
			for i := 0; i < b.N; i++ {
				res, err := core.RunDetection(dep, core.PipelineConfig{CUs: 5},
					core.AttackSpec{Seed: int64(i + 1), Mimicry: tc.mimicry}, 4_000_000)
				if err != nil {
					b.Fatal(err)
				}
				if res.Detected {
					detected++
				}
				lat = res.Latency
			}
			b.ReportMetric(float64(detected)/float64(b.N), "detect-rate")
			b.ReportMetric(lat.Microseconds(), "us-latency")
		})
	}
}

// BenchmarkTraceBandwidth compares the trace cost of the prototype's
// branch-broadcast mode against CoreSight's atom mode (whose stream the
// reconstruct package decodes back to the full branch stream using the
// program image).
func BenchmarkTraceBandwidth(b *testing.B) {
	p, _ := workload.ByName("456.hmmer")
	prog, err := p.Generate()
	if err != nil {
		b.Fatal(err)
	}
	for _, mode := range []struct {
		name      string
		broadcast bool
	}{{"broadcast", true}, {"atom", false}} {
		b.Run(mode.name, func(b *testing.B) {
			var perBranch float64
			for i := 0; i < b.N; i++ {
				enc := ptm.NewEncoder(ptm.Config{BranchBroadcast: mode.broadcast})
				var stream []byte
				var events int64
				sink := cpu.SinkFunc(func(ev cpu.BranchEvent) int64 {
					events++
					stream = append(stream, enc.Encode(ev)...)
					return 0
				})
				c := cpu.New(prog, cpu.Config{Mode: cpu.ModeRTAD, Sink: sink})
				if _, err := c.Run(100_000); err != nil {
					b.Fatal(err)
				}
				stream = append(stream, enc.Flush()...)
				if !mode.broadcast {
					// Prove the compressed stream still carries everything.
					got, _, err := reconstruct.DecodeTrace(prog, stream)
					if err != nil {
						b.Fatal(err)
					}
					if int64(len(got)) != events {
						b.Fatalf("reconstruction lost events: %d vs %d", len(got), events)
					}
				}
				perBranch = float64(len(stream)) / float64(events)
			}
			b.ReportMetric(perBranch, "bytes/branch")
		})
	}
}
