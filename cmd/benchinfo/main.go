// Command benchinfo characterises the SPEC CINT2006-like workload suite:
// it executes every benchmark for a fixed budget and prints the dynamic
// statistics that drive the evaluation — instruction mix, branch/call/
// syscall densities, trace bandwidth — so changes to the generators are
// visible at a glance.
//
// Usage:
//
//	benchinfo
//	benchinfo -instr 5000000
//	benchinfo -bench-file BENCH_frontend.json
//
// -bench-file instead pretty-prints one of the repo's committed benchmark
// baselines (BENCH_backends.json, BENCH_frontend.json), resolving the schema
// from the file itself.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"

	"rtad/internal/cpu"
	"rtad/internal/obs"
	"rtad/internal/ptm"
	"rtad/internal/workload"
)

func main() {
	instr := flag.Int64("instr", 2_000_000, "instruction budget per benchmark")
	benchFile := flag.String("bench-file", "", "pretty-print a committed BENCH_*.json baseline instead of running the workload suite")
	flag.Parse()

	if *benchFile != "" {
		if err := printBenchFile(*benchFile); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	fmt.Printf("%-16s %8s %8s %8s %9s %10s %10s %9s\n",
		"benchmark", "CPI", "branch%", "taken%", "call%", "instr/svc", "indirect%", "B/branch")
	for _, p := range workload.Profiles() {
		prog, err := p.Generate()
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		enc := ptm.NewEncoder(ptm.Config{BranchBroadcast: true})
		var encBuf []byte
		var traceBytes int64
		var taken int64
		sink := cpu.SinkFunc(func(ev cpu.BranchEvent) int64 {
			if ev.Taken {
				taken++
			}
			encBuf = enc.EncodeInto(encBuf[:0], ev)
			traceBytes += int64(len(encBuf))
			return 0
		})
		c := cpu.New(prog, cpu.Config{Mode: cpu.ModeRTAD, Sink: sink})
		if _, err := c.Run(*instr); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		st := c.Stats()
		perSvc := int64(-1)
		if st.Syscalls > 0 {
			perSvc = st.Instret / st.Syscalls
		}
		fmt.Printf("%-16s %8.2f %7.1f%% %7.1f%% %8.2f%% %10d %9.1f%% %9.2f\n",
			p.Name,
			float64(st.Cycles)/float64(st.Instret),
			100*float64(st.Branches)/float64(st.Instret),
			100*float64(taken)/float64(st.Branches),
			100*float64(st.Calls)/float64(st.Instret),
			perSvc,
			100*float64(st.Indirects)/float64(st.Branches),
			float64(traceBytes)/float64(st.Branches))
	}
}

// printBenchFile pretty-prints a committed BENCH_*.json baseline. The schema
// field inside the file selects the layout; both baseline families share the
// provenance header (date, host, command).
func printBenchFile(path string) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var doc map[string]any
	if err := json.Unmarshal(raw, &doc); err != nil {
		return fmt.Errorf("%s: %v", path, err)
	}
	for _, k := range []string{"schema", "date", "goos", "goarch", "cpu", "command"} {
		if v, ok := doc[k].(string); ok {
			fmt.Printf("%-9s %s\n", k+":", v)
		}
	}
	fmt.Println()
	schema, _ := doc["schema"].(string)
	switch schema {
	case "rtad-bench-backends/1":
		printBackendsBaseline(doc)
	case "rtad-bench-frontend/1":
		printFrontendBaseline(doc)
	case "rtad-bench-serve/1":
		printServeBaseline(doc)
	default:
		return fmt.Errorf("%s: unknown schema %q", path, schema)
	}
	if note, ok := doc["note"].(string); ok {
		fmt.Printf("\nnote: %s\n", note)
	}
	return nil
}

func sortedKeys(m map[string]any) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func numCell(row map[string]any, key string, width int) string {
	if v, ok := row[key].(float64); ok {
		return fmt.Sprintf("%*.0f", width, v)
	}
	return fmt.Sprintf("%*s", width, "-")
}

// printBackendsBaseline lays out BENCH_backends.json: one row per benchmark,
// one ns/op column per inference backend, plus the headline speedups.
func printBackendsBaseline(doc map[string]any) {
	benches, _ := doc["benchmarks"].(map[string]any)
	fmt.Printf("%-26s %14s %14s %18s\n", "benchmark (ns/op)", "gpu", "native", "native-calibrated")
	for _, name := range sortedKeys(benches) {
		row, _ := benches[name].(map[string]any)
		fmt.Printf("%-26s %s %s %s\n", name,
			numCell(row, "gpu", 14), numCell(row, "native", 14), numCell(row, "native-calibrated", 18))
	}
	if sp, ok := doc["speedup_native_calibrated_vs_gpu"].(map[string]any); ok {
		fmt.Printf("\nspeedup, native-calibrated vs gpu:\n")
		for _, k := range sortedKeys(sp) {
			if v, ok := sp[k].(float64); ok {
				fmt.Printf("  %-22s %6.2fx\n", k, v)
			}
		}
	}
	if fp, ok := doc["trace_fastpath_speedup"].(map[string]any); ok {
		fmt.Printf("\ntrace fast path (BackendFig8Grid: fused analytic vs staged byte/word, same host):\n")
		staged, _ := fp["staged_ns_per_op"].(map[string]any)
		fused, _ := fp["fused_ns_per_op"].(map[string]any)
		sp, _ := fp["speedup_vs_staged"].(map[string]any)
		fmt.Printf("  %-18s %14s %14s %9s\n", "backend", "staged", "fused", "speedup")
		for _, k := range sortedKeys(fused) {
			s := "-"
			if v, ok := sp[k].(float64); ok {
				s = fmt.Sprintf("%.2fx", v)
			}
			fmt.Printf("  %-18s %s %s %9s\n", k,
				numCell(staged, k, 14), numCell(fused, k, 14), s)
		}
		if prior, ok := fp["speedup_vs_prior_record"].(map[string]any); ok {
			fmt.Printf("  vs prior committed grid record:")
			for _, k := range sortedKeys(prior) {
				if v, ok := prior[k].(float64); ok {
					fmt.Printf("  %s %.2fx", k, v)
				}
			}
			fmt.Println()
		}
	}
	if cb, ok := doc["cpu_benchmarks"].(map[string]any); ok {
		fmt.Printf("\nvictim-CPU engine (BenchmarkCPURun, zero allocs/op asserted in-bench):\n")
		fmt.Printf("%-26s %14s %14s %12s\n", "mix", "ns/op", "Minstr/s", "vs seed")
		for _, name := range sortedKeys(cb) {
			row, _ := cb[name].(map[string]any)
			speedup := "-"
			if v, ok := row["speedup_vs_seed"].(float64); ok {
				speedup = fmt.Sprintf("%.2fx", v)
			}
			mips := "-"
			if v, ok := row["minstr_per_s"].(float64); ok {
				mips = fmt.Sprintf("%.1f", v)
			}
			fmt.Printf("%-26s %s %14s %12s\n", name, numCell(row, "ns_per_op", 14), mips, speedup)
		}
	}
	if sp, ok := doc["block_engine_speedup_vs_seed"].(map[string]any); ok {
		fmt.Printf("\nblock engine vs seed interpreter (same host, back-to-back):\n")
		for _, k := range sortedKeys(sp) {
			if v, ok := sp[k].(float64); ok {
				fmt.Printf("  %-26s %6.2fx\n", k, v)
			}
		}
	}
}

// printServeBaseline lays out BENCH_serve.json: the loadgen fleet shape,
// then the unbatched/batched passes side by side with the headline
// aggregate-throughput speedup.
func printServeBaseline(doc map[string]any) {
	str := func(k string) string {
		if v, ok := doc[k].(string); ok {
			return v
		}
		return "-"
	}
	num := func(k string) float64 {
		v, _ := doc[k].(float64)
		return v
	}
	fmt.Printf("fleet: %s/%s on %s backend — %.0f clients (%.0f probed), stride %.0f, %.0f workers\n",
		str("bench"), str("model"), str("backend"),
		num("clients"), num("probes"), num("stride"), num("workers"))
	fmt.Printf("batching: window %.0fµs, max %.0f sessions; trace %.0f bytes/client\n\n",
		num("batch_window_us"), num("batch_max"), num("trace_bytes"))

	runs, _ := doc["runs"].(map[string]any)
	fmt.Printf("%-11s %10s %8s %12s %12s %12s %12s\n",
		"pass", "judg/s", "wall s", "p50 µs", "p90 µs", "p99 µs", "batch size")
	for _, name := range []string{"unbatched", "batched"} {
		run, _ := runs[name].(map[string]any)
		if run == nil {
			continue
		}
		lat, _ := run["latency_us"].(map[string]any)
		bs := "-"
		if v, ok := run["batch_mean_size"].(float64); ok {
			bs = fmt.Sprintf("%.1f", v)
		}
		wall := "-"
		if v, ok := run["wall_s"].(float64); ok {
			wall = fmt.Sprintf("%.2f", v)
		}
		fmt.Printf("%-11s %s %8s %s %s %s %12s\n", name,
			numCell(run, "throughput_judgments_per_s", 10), wall,
			numCell(lat, "p50", 12), numCell(lat, "p90", 12), numCell(lat, "p99", 12), bs)
	}
	printed := false
	for _, name := range []string{"unbatched", "batched"} {
		run, _ := runs[name].(map[string]any)
		if run == nil {
			continue
		}
		snap, ok := serveSLO(run)
		if !ok {
			continue
		}
		if !printed {
			fmt.Printf("\nserver-side chunk→judgment SLO (µs):\n")
			printed = true
		}
		fmt.Printf("  %-11s p50 %8.0f  p99 %8.0f  (%d chunks)\n",
			name, snap.Quantile(0.50)*1e6, snap.Quantile(0.99)*1e6, snap.Count)
	}
	if v, ok := doc["speedup_batched_vs_unbatched"].(float64); ok {
		fmt.Printf("\nspeedup, batched vs unbatched aggregate throughput: %.2fx\n", v)
	}
}

// serveSLO extracts the server-side end-to-end histogram a newer loadgen
// records per run (older baselines lack it — print nothing) and hands it
// back as a snapshot so the quantiles are re-derived with the shared
// estimator rather than trusting pre-baked numbers.
func serveSLO(run map[string]any) (obs.HistogramSnapshot, bool) {
	v, ok := run["server_chunk_judgment_seconds"]
	if !ok {
		return obs.HistogramSnapshot{}, false
	}
	raw, err := json.Marshal(v)
	if err != nil {
		return obs.HistogramSnapshot{}, false
	}
	var snap obs.HistogramSnapshot
	if err := json.Unmarshal(raw, &snap); err != nil {
		return obs.HistogramSnapshot{}, false
	}
	return snap, snap.Count > 0
}

// printFrontendBaseline lays out BENCH_frontend.json: the per-event
// microbenchmarks with their zero-alloc baselines, then the end-to-end
// wall-clock speedup table.
func printFrontendBaseline(doc map[string]any) {
	benches, _ := doc["benchmarks"].(map[string]any)
	fmt.Printf("%-24s %10s %8s %11s\n", "benchmark", "ns/op", "B/op", "allocs/op")
	for _, name := range sortedKeys(benches) {
		row, _ := benches[name].(map[string]any)
		ns := "-"
		if v, ok := row["ns_per_op"].(float64); ok {
			ns = fmt.Sprintf("%.1f", v)
		}
		fmt.Printf("%-24s %10s %s %s\n", name,
			ns, numCell(row, "bytes_per_op", 8), numCell(row, "allocs_per_op", 11))
	}
	wc, ok := doc["wallclock"].(map[string]any)
	if !ok {
		return
	}
	name, _ := wc["benchmark"].(string)
	before, _ := wc["before_ns_per_op"].(map[string]any)
	after, _ := wc["after_ns_per_op"].(map[string]any)
	speedup, _ := wc["speedup"].(map[string]any)
	fmt.Printf("\n%s wall clock (ns/op):\n", name)
	fmt.Printf("  %-18s %14s %14s %9s\n", "backend", "before", "after", "speedup")
	for _, b := range sortedKeys(before) {
		sp := "-"
		if v, ok := speedup[b].(float64); ok {
			sp = fmt.Sprintf("%.2fx", v)
		}
		fmt.Printf("  %-18s %s %s %9s\n", b,
			numCell(before, b, 14), numCell(after, b, 14), sp)
	}
}
