// Command benchinfo characterises the SPEC CINT2006-like workload suite:
// it executes every benchmark for a fixed budget and prints the dynamic
// statistics that drive the evaluation — instruction mix, branch/call/
// syscall densities, trace bandwidth — so changes to the generators are
// visible at a glance.
//
// Usage:
//
//	benchinfo
//	benchinfo -instr 5000000
package main

import (
	"flag"
	"fmt"
	"os"

	"rtad/internal/cpu"
	"rtad/internal/ptm"
	"rtad/internal/workload"
)

func main() {
	instr := flag.Int64("instr", 2_000_000, "instruction budget per benchmark")
	flag.Parse()

	fmt.Printf("%-16s %8s %8s %8s %9s %10s %10s %9s\n",
		"benchmark", "CPI", "branch%", "taken%", "call%", "instr/svc", "indirect%", "B/branch")
	for _, p := range workload.Profiles() {
		prog, err := p.Generate()
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		enc := ptm.NewEncoder(ptm.Config{BranchBroadcast: true})
		var traceBytes int64
		var taken int64
		sink := cpu.SinkFunc(func(ev cpu.BranchEvent) int64 {
			if ev.Taken {
				taken++
			}
			traceBytes += int64(len(enc.Encode(ev)))
			return 0
		})
		c := cpu.New(prog, cpu.Config{Mode: cpu.ModeRTAD, Sink: sink})
		if _, err := c.Run(*instr); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		st := c.Stats()
		perSvc := int64(-1)
		if st.Syscalls > 0 {
			perSvc = st.Instret / st.Syscalls
		}
		fmt.Printf("%-16s %8.2f %7.1f%% %7.1f%% %8.2f%% %10d %9.1f%% %9.2f\n",
			p.Name,
			float64(st.Cycles)/float64(st.Instret),
			100*float64(st.Branches)/float64(st.Instret),
			100*float64(taken)/float64(st.Branches),
			100*float64(st.Calls)/float64(st.Instret),
			perSvc,
			100*float64(st.Indirects)/float64(st.Branches),
			float64(traceBytes)/float64(st.Branches))
	}
}
