// Command experiments regenerates the paper's evaluation: Table I, Table
// II, Fig 6, Fig 7 and Fig 8, printing each in a text layout matching the
// published one. EXPERIMENTS.md records a reference run.
//
// Usage:
//
//	experiments -all
//	experiments -fig8 -benchmarks sjeng,omnetpp -detect 2000000
//	experiments -all -workers 8 -json results.json
//
// The grid experiments (Fig 6, Fig 8) fan their benchmark × model cells
// over a session fleet sized by -workers; results are bit-identical at any
// width. -json additionally writes every computed result as one
// machine-readable document. -metrics collects a telemetry registry across
// the grid runs (merged serially in cell order, so aggregates are
// bit-identical at any -workers) and embeds its snapshot in the JSON report;
// -metrics-addr additionally serves it live as Prometheus text with pprof.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"rtad/internal/experiments"
	"rtad/internal/kernels"
	"rtad/internal/obs"
	"rtad/internal/prof"
)

func main() {
	var (
		all    = flag.Bool("all", false, "run every experiment")
		table1 = flag.Bool("table1", false, "Table I: synthesized results")
		table2 = flag.Bool("table2", false, "Table II: trimming result")
		fig6   = flag.Bool("fig6", false, "Fig 6: performance overhead")
		fig7   = flag.Bool("fig7", false, "Fig 7: data transfer latency")
		fig8   = flag.Bool("fig8", false, "Fig 8: detection latency")

		benchmarks = flag.String("benchmarks", "", "comma-separated benchmark subset (default: all 12)")
		overhead   = flag.Int64("overhead", 0, "Fig 6 instruction budget per run")
		detect     = flag.Int64("detect", 0, "Fig 8 instruction budget per detection run")
		trainELM   = flag.Int64("train-elm", 0, "ELM training instruction budget (0 = default)")
		trainLSTM  = flag.Int64("train-lstm", 0, "LSTM training instruction budget (0 = default)")
		fig7Bench  = flag.String("fig7bench", "401.bzip2", "benchmark for Fig 7")
		backend    = flag.String("backend", "", "inference backend: gpu | native | native-calibrated (default gpu; judgments are bit-identical across backends)")
		workers    = flag.Int("workers", 0, "fleet width for the grid experiments (0 = one per CPU)")
		jsonPath   = flag.String("json", "", "also write results as JSON to this path")
		metrics    = flag.Bool("metrics", false, "collect telemetry metrics and embed the snapshot in the JSON report")
		metricsAdr = flag.String("metrics-addr", "", "serve /metrics (Prometheus text) and /debug/pprof live on this address (implies -metrics)")
		stagedTr   = flag.Bool("staged-trace", false, "run detection pipelines on the staged byte/word trace path instead of the fused fast path (reports are byte-identical; used by the CI differential job)")
		cpuProf    = flag.String("cpuprofile", "", "write a CPU profile of the whole run to this file")
		memProf    = flag.String("memprofile", "", "write an allocation profile at exit to this file")
	)
	flag.Parse()

	ps, err := prof.Start(*cpuProf, *memProf)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer ps.Stop()

	opts := experiments.Options{
		OverheadInstr: *overhead, DetectInstr: *detect,
		TrainELMInstr: *trainELM, TrainLSTMInstr: *trainLSTM,
		Workers: *workers, Backend: *backend, StagedTrace: *stagedTr,
	}
	if *benchmarks != "" {
		opts.Benchmarks = strings.Split(*benchmarks, ",")
	}
	if *backend == kernels.BackendNativeCalibrated {
		// One table shared by every pipeline of the run: the one-time GPU
		// calibration pass happens once per deployed shape, and the
		// recorded costs land in the JSON report.
		opts.Calibration = kernels.NewCalibration()
	}
	if !(*all || *table1 || *table2 || *fig6 || *fig7 || *fig8) {
		flag.Usage()
		prof.Exit(ps, 2)
	}

	var tel *obs.Telemetry
	if *metrics || *metricsAdr != "" {
		tel = obs.NewMetricsOnly()
		opts.Telemetry = tel
	}
	if *metricsAdr != "" {
		srv, err := obs.Serve(*metricsAdr, tel.Reg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "metrics server: %v\n", err)
			prof.Exit(ps, 1)
		}
		defer srv.Close()
		fmt.Printf("serving metrics at http://%s/metrics\n", srv.Addr())
	}

	report := experiments.NewReport(opts)

	run := func(name, key string, enabled bool, f func() (fmt.Stringer, error)) {
		if !*all && !enabled {
			return
		}
		start := time.Now()
		res, err := f()
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", name, err)
			prof.Exit(ps, 1)
		}
		wall := time.Since(start).Seconds()
		report.WallSeconds[key] = wall
		fmt.Printf("==== %s (%.1fs) ====\n%s\n", name, wall, res)
	}

	run("Table II — trimming result of ML-MIAOW", "table2", *table2, func() (fmt.Stringer, error) {
		res, err := experiments.TableII(opts)
		if err == nil {
			report.TableII = res.Report()
		}
		return res, err
	})
	run("Table I — synthesized results of RTAD", "table1", *table1, func() (fmt.Stringer, error) {
		res, err := experiments.TableI(opts)
		if err == nil {
			report.TableI = res.Report()
		}
		return res, err
	})
	run("Fig 6 — performance overhead of RTAD", "fig6", *fig6, func() (fmt.Stringer, error) {
		res, err := experiments.Fig6(opts)
		if err == nil {
			report.Fig6 = res.Report()
		}
		return res, err
	})
	run("Fig 7 — data transfer latency of RTAD", "fig7", *fig7, func() (fmt.Stringer, error) {
		res, err := experiments.Fig7(opts, *fig7Bench)
		if err == nil {
			report.Fig7 = res.Report()
		}
		return res, err
	})
	run("Fig 8 — latencies of anomaly detection", "fig8", *fig8, func() (fmt.Stringer, error) {
		res, err := experiments.Fig8(opts)
		if err == nil {
			report.Fig8 = res.Report()
		}
		return res, err
	})

	if tel != nil {
		report.Metrics = tel.Reg.Snapshot()
	}
	report.RecordCalibration(opts.Calibration)
	if *jsonPath != "" {
		blob, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "encoding report: %v\n", err)
			prof.Exit(ps, 1)
		}
		blob = append(blob, '\n')
		if err := os.WriteFile(*jsonPath, blob, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "writing %s: %v\n", *jsonPath, err)
			prof.Exit(ps, 1)
		}
		fmt.Printf("wrote JSON report to %s\n", *jsonPath)
	}
}
