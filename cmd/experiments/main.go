// Command experiments regenerates the paper's evaluation: Table I, Table
// II, Fig 6, Fig 7 and Fig 8, printing each in a text layout matching the
// published one. EXPERIMENTS.md records a reference run.
//
// Usage:
//
//	experiments -all
//	experiments -fig8 -benchmarks sjeng,omnetpp -detect 2000000
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"rtad/internal/experiments"
)

func main() {
	var (
		all    = flag.Bool("all", false, "run every experiment")
		table1 = flag.Bool("table1", false, "Table I: synthesized results")
		table2 = flag.Bool("table2", false, "Table II: trimming result")
		fig6   = flag.Bool("fig6", false, "Fig 6: performance overhead")
		fig7   = flag.Bool("fig7", false, "Fig 7: data transfer latency")
		fig8   = flag.Bool("fig8", false, "Fig 8: detection latency")

		benchmarks = flag.String("benchmarks", "", "comma-separated benchmark subset (default: all 12)")
		overhead   = flag.Int64("overhead", 0, "Fig 6 instruction budget per run")
		detect     = flag.Int64("detect", 0, "Fig 8 instruction budget per detection run")
		fig7Bench  = flag.String("fig7bench", "401.bzip2", "benchmark for Fig 7")
	)
	flag.Parse()

	opts := experiments.Options{OverheadInstr: *overhead, DetectInstr: *detect}
	if *benchmarks != "" {
		opts.Benchmarks = strings.Split(*benchmarks, ",")
	}
	if !(*all || *table1 || *table2 || *fig6 || *fig7 || *fig8) {
		flag.Usage()
		os.Exit(2)
	}

	run := func(name string, enabled bool, f func() (fmt.Stringer, error)) {
		if !*all && !enabled {
			return
		}
		start := time.Now()
		res, err := f()
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Printf("==== %s (%.1fs) ====\n%s\n", name, time.Since(start).Seconds(), res)
	}

	run("Table II — trimming result of ML-MIAOW", *table2, func() (fmt.Stringer, error) {
		return experiments.TableII(opts)
	})
	run("Table I — synthesized results of RTAD", *table1, func() (fmt.Stringer, error) {
		return experiments.TableI(opts)
	})
	run("Fig 6 — performance overhead of RTAD", *fig6, func() (fmt.Stringer, error) {
		return experiments.Fig6(opts)
	})
	run("Fig 7 — data transfer latency of RTAD", *fig7, func() (fmt.Stringer, error) {
		return experiments.Fig7(opts, *fig7Bench)
	})
	run("Fig 8 — latencies of anomaly detection", *fig8, func() (fmt.Stringer, error) {
		return experiments.Fig8(opts)
	})
}
