// Command traceanalyze inspects a captured trace file (see cmd/tracegen
// -o): it decodes the packet stream — reconstructing the full branch
// stream through the program image when the capture was made in atom
// mode — and reports the dynamic control-flow statistics a model designer
// needs: event mix, branch densities, the hottest targets (IGM table
// candidates) and trace-bandwidth figures.
//
// Usage:
//
//	tracegen -bench gcc -instr 200000 -o gcc.trc
//	traceanalyze gcc.trc
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"rtad/internal/cpu"
	"rtad/internal/ptm"
	"rtad/internal/reconstruct"
	"rtad/internal/tracefile"
)

func main() {
	top := flag.Int("top", 16, "hot targets to list")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: traceanalyze [-top N] <file.trc>")
		os.Exit(2)
	}
	f, err := os.Open(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer f.Close()
	tf, err := tracefile.Read(f)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	mode := "atom (reconstructed)"
	if tf.Broadcast {
		mode = "branch-broadcast"
	}
	fmt.Printf("trace: %d bytes, %s capture, program %d words at %#x\n",
		len(tf.Stream), mode, len(tf.Program.Words), tf.Program.Base)

	var branches []reconstruct.Branch
	if tf.Broadcast {
		pkts, errs := ptm.DecodeAll(tf.Stream)
		if errs != 0 {
			fmt.Fprintf(os.Stderr, "warning: %d packet errors\n", errs)
		}
		for _, pkt := range pkts {
			if pkt.Type != ptm.PktBranch {
				continue
			}
			kind := cpu.KindDirect
			if pkt.Exc {
				kind = pkt.Kind
			}
			branches = append(branches, reconstruct.Branch{
				Target: pkt.Addr, Kind: kind, Taken: true,
			})
		}
	} else {
		var stats reconstruct.Stats
		branches, stats, err = reconstruct.DecodeTrace(tf.Program, tf.Stream)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("reconstruction: %d atoms, %d address packets, %d resyncs\n",
			stats.Atoms, stats.Addresses, stats.Resyncs)
	}
	if len(branches) == 0 {
		fmt.Println("no branch events in trace")
		return
	}

	var taken, syscalls, indirect int
	targets := map[uint32]int{}
	for _, b := range branches {
		if !b.Taken {
			continue
		}
		taken++
		switch {
		case b.Kind == cpu.KindSyscall:
			syscalls++
		case b.Kind.IsIndirectKind():
			indirect++
		}
		targets[b.Target]++
	}
	fmt.Printf("events: %d total, %d taken, %d indirect-class, %d syscalls\n",
		len(branches), taken, indirect, syscalls)
	fmt.Printf("bandwidth: %.2f trace bytes per branch event\n",
		float64(len(tf.Stream))/float64(len(branches)))

	type tc struct {
		addr uint32
		n    int
	}
	hot := make([]tc, 0, len(targets))
	for a, n := range targets {
		hot = append(hot, tc{a, n})
	}
	sort.Slice(hot, func(i, j int) bool {
		if hot[i].n != hot[j].n {
			return hot[i].n > hot[j].n
		}
		return hot[i].addr < hot[j].addr
	})
	fmt.Printf("\nhottest %d targets (IGM address-map candidates):\n", *top)
	for i, h := range hot {
		if i >= *top {
			break
		}
		label := ""
		if h.addr >= cpu.SyscallBase {
			label = fmt.Sprintf("  (syscall %d)", cpu.SyscallNumber(h.addr))
		}
		fmt.Printf("  %#010x  %6d hits%s\n", h.addr, h.n, label)
	}
	covered := 0
	for i, h := range hot {
		if i >= 64 {
			break
		}
		covered += h.n
	}
	fmt.Printf("\ndistinct targets: %d (a 64-entry vocabulary covers %.1f%% of taken events)\n",
		len(hot), 100*float64(covered)/float64(taken))
}
