// Command gpuasm works with ML-MIAOW kernels directly: list the shipped
// inference-engine kernels, disassemble one with per-instruction cycle
// costs and HDL-block usage, or assemble and run a kernel from a file with
// simple memory initialisation — a standalone view of the compute engine
// for people extending RTAD with their own models.
//
// Usage:
//
//	gpuasm -list
//	gpuasm -disasm lstm_gate
//	gpuasm -run mykernel.s -waves 2 -sargs 0,64,128 -dump 128:8
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"

	"rtad/internal/gpu"
	"rtad/internal/kernels"
	"rtad/internal/sim"
)

func main() {
	var (
		list   = flag.Bool("list", false, "list the shipped inference kernels")
		disasm = flag.String("disasm", "", "disassemble a shipped kernel by name")
		run    = flag.String("run", "", "assemble and run a kernel source file")
		waves  = flag.Int("waves", 1, "wavefronts to dispatch")
		cus    = flag.Int("cus", 1, "compute units")
		sargs  = flag.String("sargs", "", "comma-separated initial SGPR values (s0..)")
		dump   = flag.String("dump", "", "memory range to print after the run, addr:words")
		mem    = flag.Int("mem", 1<<16, "device memory in words")
	)
	flag.Parse()

	switch {
	case *list:
		srcs := kernels.Sources()
		names := make([]string, 0, len(srcs))
		for n := range srcs {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			k := gpu.MustAssemble(n, srcs[n])
			var cycles int64
			for _, ins := range k.Code {
				cycles += ins.Op.Cycles()
			}
			fmt.Printf("%-12s %3d instructions, straight-line cost %d cycles (%v at 50 MHz)\n",
				n, len(k.Code), cycles, sim.GPUClock.Duration(cycles))
		}

	case *disasm != "":
		src, ok := kernels.Sources()[*disasm]
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown kernel %q (try -list)\n", *disasm)
			os.Exit(2)
		}
		k := gpu.MustAssemble(*disasm, src)
		labels := map[int][]string{}
		for name, pc := range k.Labels {
			labels[pc] = append(labels[pc], name)
		}
		for pc, ins := range k.Code {
			for _, l := range labels[pc] {
				fmt.Printf("%s:\n", l)
			}
			blocks := make([]string, 0, 3)
			for _, b := range gpu.OpBlocks(ins.Op) {
				blocks = append(blocks, b.String())
			}
			fmt.Printf("  %3d  %-34s ; %d cyc  [%s]\n",
				pc, ins.String(), ins.Op.Cycles(), strings.Join(blocks, " "))
		}

	case *run != "":
		src, err := os.ReadFile(*run)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		k, err := gpu.Assemble(*run, string(src))
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		dev := gpu.NewDevice(*mem, *cus)
		var args []uint32
		if *sargs != "" {
			for _, f := range strings.Split(*sargs, ",") {
				v, err := strconv.ParseUint(strings.TrimSpace(f), 0, 32)
				if err != nil {
					fmt.Fprintf(os.Stderr, "bad sarg %q\n", f)
					os.Exit(2)
				}
				args = append(args, uint32(v))
			}
		}
		res, err := dev.Run(gpu.Dispatch{Kernel: k, Wavefronts: *waves, SArgs: args})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("%d wavefront(s) on %d CU(s): %d instructions, %d cycles (%v at 50 MHz)\n",
			*waves, *cus, res.Instructions, res.Cycles, sim.GPUClock.Duration(res.Cycles))
		if *dump != "" {
			parts := strings.SplitN(*dump, ":", 2)
			if len(parts) != 2 {
				fmt.Fprintln(os.Stderr, "dump format is addr:words")
				os.Exit(2)
			}
			addr, err1 := strconv.ParseUint(parts[0], 0, 32)
			n, err2 := strconv.Atoi(parts[1])
			if err1 != nil || err2 != nil {
				fmt.Fprintln(os.Stderr, "bad dump range")
				os.Exit(2)
			}
			words, err := dev.ReadWords(uint32(addr), n)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			for i, w := range words {
				fmt.Printf("mem[%d] = %#08x (%d)\n", int(addr)+i, w, int32(w))
			}
		}

	default:
		flag.Usage()
		os.Exit(2)
	}
}
