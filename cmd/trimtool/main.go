// Command trimtool runs the Fig 4 trimming flow end to end: it trains the
// two deployed ML models, simulates their inference kernels on the full
// MIAOW-style core with HDL-block coverage enabled, merges the coverage,
// trims the uncovered blocks, verifies the trimmed core bit-for-bit, and
// prints Table II plus the per-block disposition.
//
// Usage:
//
//	trimtool
//	trimtool -blocks     # also list every HDL block with its fate
package main

import (
	"flag"
	"fmt"
	"os"

	"rtad/internal/experiments"
	"rtad/internal/gpu"
)

func main() {
	blocks := flag.Bool("blocks", false, "list per-block disposition")
	flag.Parse()

	res, err := experiments.TableII(experiments.Options{})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Print(res)

	if *blocks {
		fmt.Println("\nper-block disposition:")
		trimmed := map[gpu.BlockID]bool{}
		for _, b := range res.Trim.Trimmed {
			trimmed[b] = true
		}
		for _, b := range gpu.Blocks() {
			fate := "keep"
			if trimmed[b.ID] {
				fate = "TRIM"
			}
			fmt.Printf("  %-22s %6d LUTs %6d FFs  %s\n", b.Name, b.LUTs, b.FFs, fate)
		}
	}
}
