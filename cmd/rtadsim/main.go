// Command rtadsim runs the full RTAD SoC on one benchmark: it trains the
// selected model on a normal run, deploys it on the simulated MPSoC,
// injects the paper's attack (legitimate branch data replayed out of
// context) and reports the detection timeline and pipeline statistics.
//
// Usage:
//
//	rtadsim -bench omnetpp -model lstm -cus 5
//	rtadsim -bench perlbench -model elm -cus 1 -instr 6000000
//	rtadsim -bench sjeng -trace trace.json -metrics-addr 127.0.0.1:8080
//
// -trace records the run as Chrome/Perfetto trace_event JSON (open it at
// ui.perfetto.dev) with one track per pipeline stage; -metrics-addr serves
// the live metrics registry as Prometheus text plus net/http/pprof for the
// duration of the run. Both are observation-only: the simulated timeline is
// bit-identical with or without them.
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"time"

	"rtad/internal/core"
	"rtad/internal/kernels"
	"rtad/internal/obs"
	"rtad/internal/prof"
	"rtad/internal/workload"
)

func main() {
	var (
		bench   = flag.String("bench", "458.sjeng", "benchmark (SPEC-like name, e.g. omnetpp)")
		model   = flag.String("model", "lstm", "detector: elm | lstm")
		cus     = flag.Int("cus", 5, "compute units (1 = MIAOW, 5 = ML-MIAOW)")
		backend = flag.String("backend", "", "inference backend: gpu | native | native-calibrated (default gpu; judgments are bit-identical across backends)")
		calib   = flag.String("calib", "", "calibration-table JSON for the native backends: loaded if present, saved after the run")
		instr   = flag.Int64("instr", 3_000_000, "detection-run instruction budget")
		burst   = flag.Int("burst", 16384, "injected legitimate-event burst length")
		seed    = flag.Int64("seed", 1, "attack placement seed")
		mimic   = flag.Bool("mimicry", false, "replay a contiguous legitimate segment (harder to detect)")
		save    = flag.String("save", "", "save the trained deployment to this file")
		load    = flag.String("load", "", "load a previously saved deployment instead of training")
		trInstr = flag.Int64("train-instr", 0, "override the training instruction budget (0 = model default; different budgets yield distinct model versions for rtadd's registry)")

		tracePath  = flag.String("trace", "", "write a Perfetto trace_event JSON of the detection run to this file")
		metricsAdr = flag.String("metrics-addr", "", "serve /metrics (Prometheus text) and /debug/pprof live on this address")
		hold       = flag.Duration("hold", 0, "keep the metrics server up this long after the run (for scrapers)")
		cpuProf    = flag.String("cpuprofile", "", "write a CPU profile of the whole run to this file")
		memProf    = flag.String("memprofile", "", "write an allocation profile at exit to this file")
	)
	flag.Parse()

	ps, perr := prof.Start(*cpuProf, *memProf)
	if perr != nil {
		fmt.Fprintln(os.Stderr, perr)
		os.Exit(1)
	}
	defer ps.Stop()

	var tel *obs.Telemetry
	switch {
	case *tracePath != "":
		tel = obs.New()
	case *metricsAdr != "":
		tel = obs.NewMetricsOnly()
	}
	if *metricsAdr != "" {
		srv, err := obs.Serve(*metricsAdr, tel.Reg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "metrics server: %v\n", err)
			prof.Exit(ps, 1)
		}
		defer srv.Close()
		fmt.Printf("serving metrics at http://%s/metrics\n", srv.Addr())
	}

	p, ok := workload.ByName(*bench)
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown benchmark %q; known:\n", *bench)
		for _, q := range workload.Profiles() {
			fmt.Fprintf(os.Stderr, "  %s\n", q.Name)
		}
		prof.Exit(ps, 2)
	}
	var kind core.ModelKind
	switch *model {
	case "elm":
		kind = core.ModelELM
	case "lstm":
		kind = core.ModelLSTM
	default:
		fmt.Fprintf(os.Stderr, "unknown model %q (want elm or lstm)\n", *model)
		prof.Exit(ps, 2)
	}

	var dep *core.Deployment
	var err error
	if *load != "" {
		dep, err = core.LoadDeploymentFile(*load)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			prof.Exit(ps, 1)
		}
		fmt.Printf("loaded %v deployment for %s from %s\n", dep.Kind, dep.Profile.Name, *load)
	} else {
		fmt.Printf("training %v detector on %s (normal traces)...\n", kind, p.Name)
		tcfg := core.DefaultTrainConfig(p, kind)
		if *trInstr > 0 {
			tcfg.TrainInstr = *trInstr
		}
		dep, err = core.Train(tcfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			prof.Exit(ps, 1)
		}
		fmt.Printf("  %d training windows, threshold %.4f, IGM table %d entries\n",
			dep.TrainWindows, modelThreshold(dep), dep.Mapper.Size())
	}
	if *save != "" {
		if err := dep.SaveFile(*save); err != nil {
			fmt.Fprintln(os.Stderr, err)
			prof.Exit(ps, 1)
		}
		fmt.Printf("deployment saved to %s\n", *save)
	}

	var caltab *kernels.Calibration
	if *calib != "" {
		var err error
		caltab, err = kernels.LoadCalibrationFile(*calib)
		switch {
		case errors.Is(err, os.ErrNotExist):
			caltab = kernels.NewCalibration()
		case err != nil:
			fmt.Fprintln(os.Stderr, err)
			prof.Exit(ps, 1)
		default:
			fmt.Printf("loaded %d calibration entries from %s\n", caltab.Len(), *calib)
		}
	}

	kind = dep.Kind
	detInstr := *instr
	if kind == core.ModelELM && detInstr < 6_000_000 {
		detInstr = 6_000_000 // syscall windows are sparse
	}
	fmt.Printf("running detection (%d instructions, %d CUs, burst %d)...\n", detInstr, *cus, *burst)
	spec := core.AttackSpec{BurstLen: *burst, Seed: *seed, Mimicry: *mimic}
	sess, err := core.Open(core.Deployments{dep},
		core.WithConfig(core.PipelineConfig{CUs: *cus, Telemetry: tel, Backend: *backend, Calibration: caltab}),
		core.WithAttack(spec.Resolve(detInstr)))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		prof.Exit(ps, 1)
	}
	res, err := sess.Detect(detInstr)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		prof.Exit(ps, 1)
	}
	if *calib != "" && caltab.Len() > 0 {
		if err := caltab.SaveFile(*calib); err != nil {
			fmt.Fprintln(os.Stderr, err)
			prof.Exit(ps, 1)
		}
		fmt.Printf("saved %d calibration entries to %s\n", caltab.Len(), *calib)
	}

	fmt.Printf("\nattack injected at %v\n", res.InjectTime)
	fmt.Printf("first post-attack judgment: latency %v (branch retired %v, judged %v)\n",
		res.Latency, res.First.FinalRetire, res.First.Rec.Done)
	if res.Detected {
		fmt.Printf("anomaly IRQ raised at %v (%v after injection)\n",
			res.IRQTime, res.IRQTime-res.InjectTime)
	} else {
		fmt.Printf("no anomaly IRQ within the run (smoothed score stayed under threshold)\n")
	}
	fmt.Printf("pipeline: %d vectors judged, %d dropped at the MCM FIFO (max occupancy %d)\n",
		res.Judged, res.Dropped, res.MaxOcc)
	fmt.Printf("stage queues (end of run):\n")
	for _, st := range res.Stages {
		fmt.Printf("  %-5s len %4d  max depth %4d  accepted %8d  dropped %d (loss %.3f%%)\n",
			st.Name, st.Len, st.MaxDepth, st.Accepted, st.Dropped, 100*st.LossRate())
	}

	if *tracePath != "" {
		f, err := os.Create(*tracePath)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			prof.Exit(ps, 1)
		}
		if err := tel.Tracer.WriteJSON(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			prof.Exit(ps, 1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			prof.Exit(ps, 1)
		}
		fmt.Printf("wrote %d trace events (%d tracks, %d dropped) to %s — open at ui.perfetto.dev\n",
			tel.Tracer.Events(), len(tel.Tracer.TrackNames()), tel.Tracer.Dropped(), *tracePath)
	}
	if *metricsAdr != "" && *hold > 0 {
		fmt.Printf("holding metrics server for %v...\n", *hold)
		time.Sleep(*hold)
	}
}

func modelThreshold(dep *core.Deployment) float64 {
	if dep.Kind == core.ModelELM {
		return dep.ELM.Threshold
	}
	return dep.LSTM.Threshold
}
