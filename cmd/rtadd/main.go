// Command rtadd is the RTAD detection daemon: it pre-loads one or more
// trained deployments, listens for rtad-wire sessions, and judges raw PTM
// trace streams from remote clients in real time — the serving shape of
// the paper's always-on monitor, where the monitored SoC is elsewhere and
// only its CoreSight bytes reach the detector.
//
// Usage:
//
//	rtadd -bench 458.sjeng -models lstm
//	rtadd -bench 458.sjeng,400.perlbench -models elm,lstm -addr :7433
//	rtadd -load sjeng-lstm.dep -metrics-addr 127.0.0.1:8080
//
// Deployments come from -load files (saved by rtadsim -save) or are trained
// at startup for every -bench × -models pair. SIGINT/SIGTERM drains
// gracefully: in-flight sessions finish and deliver their summaries while
// new connections receive an explicit "draining" rejection.
//
// Observability: every log line is structured (-log-format text|json,
// -log-level), session-scoped lines carry a session=<id> attribute matching
// the SessionID in the welcome frame, -wall-trace records serving-plane
// spans to a Perfetto JSON file, and -metrics-addr additionally mounts
// /debug/sessions (live session snapshot), /debug/models (model registry
// snapshot + lifecycle verbs) and /debug/flightrecorder (recent
// per-session event rings) next to /metrics and /debug/pprof.
//
// Model lifecycle: every deployment lives in a versioned registry. New
// versions arrive through POST /debug/models/load (or -watch, which polls
// a directory for new/changed .dep files), shadow-judge a slice of live
// traffic as a canary (-canary-fraction, or the canary= parameter), and
// go live atomically via POST /debug/models/promote — in-flight sessions
// finish on the version that welcomed them; new sessions get the new
// weights. Zero downtime, zero rejected frames.
package main

import (
	"flag"
	"fmt"
	"log/slog"
	"net"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"rtad/internal/core"
	"rtad/internal/obs"
	"rtad/internal/registry"
	"rtad/internal/serve"
	"rtad/internal/workload"
)

func main() {
	var (
		addr       = flag.String("addr", "127.0.0.1:7433", "listen address for rtad-wire sessions")
		metricsAdr = flag.String("metrics-addr", "", "serve /metrics (Prometheus text), /debug/pprof, /debug/sessions and /debug/flightrecorder on this address")
		bench      = flag.String("bench", "", "comma-separated benchmarks to train deployments for at startup")
		models     = flag.String("models", "lstm", "comma-separated models to train per benchmark: elm,lstm")
		load       = flag.String("load", "", "comma-separated deployment files (rtadsim -save) to serve")

		maxSessions  = flag.Int("max-sessions", 64, "concurrent session cap (excess hellos get an explicit busy rejection; 0 = unlimited)")
		workers      = flag.Int("workers", 0, "fleet width shared by session runners (0 = GOMAXPROCS)")
		queue        = flag.Int("queue", 16, "per-session chunk queue depth")
		shed         = flag.Bool("shed", false, "shed chunks when a session queue is full instead of blocking the socket (lossy)")
		gap          = flag.Int64("gap", 0, "default replay pacing in CPU cycles per branch event (0 = built-in default)")
		stagedTrace  = flag.Bool("staged-trace", false, "run session trace delivery on the staged byte/word reference path instead of the fused fast path (judgments are bit-identical)")
		readTimeout  = flag.Duration("read-timeout", time.Minute, "max gap between client frames")
		writeTimeout = flag.Duration("write-timeout", time.Minute, "max duration of one response write")
		drainTimeout = flag.Duration("drain-timeout", 30*time.Second, "how long shutdown waits for in-flight sessions before force-closing")

		batchWindow = flag.Duration("batch-window", 0, "micro-batch collection window for cross-session fused inference (0 = unbatched)")
		batchMax    = flag.Int("batch-max", 0, "max vectors per micro-batch (0 = built-in default)")

		watchDir       = flag.String("watch", "", "poll this directory for new or changed .dep files and register them as model versions")
		watchInterval  = flag.Duration("watch-interval", 5*time.Second, "poll cadence of -watch")
		canaryFraction = flag.Float64("canary-fraction", 0, "shadow-judge this slice of traffic on versions arriving via -watch before promotion (0 = promote immediately)")

		logFormat = flag.String("log-format", "text", "structured log format: "+obs.LogFormats)
		logLevel  = flag.String("log-level", "info", "minimum log level: debug|info|warn|error")
		wallTrace = flag.String("wall-trace", "", "write a Perfetto JSON wall-clock trace of serving-plane spans to this file at exit")
	)
	flag.Parse()

	level, err := obs.ParseLogLevel(*logLevel)
	if err != nil {
		fatal(err)
	}
	logger, err := obs.NewLogger(os.Stdout, *logFormat, level)
	if err != nil {
		fatal(err)
	}

	tel := obs.NewMetricsOnly()
	flight := obs.NewFlightRecorder(0, 0)
	var wall *obs.WallTracer
	if *wallTrace != "" {
		wall = obs.NewWallTracer()
	}

	opts := []serve.Option{
		serve.WithMaxSessions(*maxSessions),
		serve.WithWorkers(*workers),
		serve.WithQueueDepth(*queue),
		serve.WithGapCycles(*gap),
		serve.WithTimeouts(*readTimeout, *writeTimeout),
		serve.WithBatching(*batchWindow, *batchMax),
		serve.WithTelemetry(tel),
		serve.WithLogger(logger),
		serve.WithWallTracer(wall),
		serve.WithFlight(flight),
	}
	if *shed {
		opts = append(opts, serve.WithShed())
	}
	if *stagedTrace {
		opts = append(opts, serve.WithStagedTrace())
	}
	srv := serve.New(registry.New(), opts...)

	var msrv *obs.Server
	if *metricsAdr != "" {
		msrv, err = obs.Serve(*metricsAdr, tel.Reg,
			obs.Route{Pattern: "/debug/sessions", Handler: srv.SessionsHandler()},
			obs.Route{Pattern: "/debug/models", Handler: srv.ModelsHandler()},
			obs.Route{Pattern: "/debug/models/", Handler: srv.ModelsAdminHandler()},
			obs.Route{Pattern: "/debug/flightrecorder", Handler: srv.FlightHandler()},
		)
		if err != nil {
			fatal(err)
		}
		logger.Info("serving metrics", "url", "http://"+msrv.Addr()+"/metrics")
	}

	if err := loadDeployments(srv, logger, *load, *bench, *models); err != nil {
		fatal(err)
	}
	keys := srv.Models()
	if len(keys) == 0 && *watchDir == "" {
		fatal(fmt.Errorf("no deployments: give -bench (train at startup), -load (saved files), or -watch (a model directory)"))
	}

	watchStop := make(chan struct{})
	if *watchDir != "" {
		w := &modelWatcher{
			dir: *watchDir, reg: srv.Registry(), log: logger,
			canaryFraction: *canaryFraction, seen: map[string]time.Time{},
		}
		w.scan() // synchronous first pass so -watch-only daemons serve at startup
		go w.run(*watchInterval, watchStop)
		logger.Info("watching for model versions", "dir", *watchDir,
			"interval", *watchInterval, "canary_fraction", *canaryFraction)
		keys = srv.Models()
	}
	logger.Info("serving deployments", "count", len(keys), "models", strings.Join(keys, ", "))
	if *batchWindow > 0 {
		max := *batchMax
		if max <= 0 {
			max = serve.DefaultBatchMax
		}
		logger.Info("micro-batching sessions", "window", *batchWindow, "max_vectors", max)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal(err)
	}
	logger.Info("listening for rtad-wire sessions", "addr", ln.Addr().String())

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	go func() {
		sig := <-sigc
		logger.Info("received signal, draining", "signal", sig.String(), "timeout", *drainTimeout)
		srv.Shutdown(*drainTimeout)
	}()

	if err := srv.Serve(ln); err != nil {
		fatal(err)
	}
	close(watchStop)
	// Drain order: sessions first (above), then the introspection endpoint —
	// gracefully, so a /metrics or /debug/sessions scrape racing the drain
	// still completes — and finally the wall trace, which must include the
	// drain spans themselves.
	if msrv != nil {
		if err := msrv.Close(); err != nil {
			logger.Warn("metrics endpoint shutdown", "err", err)
		}
	}
	if wall != nil {
		if err := writeWallTrace(*wallTrace, wall); err != nil {
			fatal(err)
		}
		logger.Info("wrote wall trace", "file", *wallTrace, "events", wall.Events())
	}
	logger.Info("drained, bye")
}

func writeWallTrace(path string, wall *obs.WallTracer) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := wall.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// loadDeployments registers -load files first, then trains every
// -bench × -models pair not already covered.
func loadDeployments(srv *serve.Server, logger *slog.Logger, loads, benches, models string) error {
	for _, path := range splitList(loads) {
		dep, err := core.LoadDeploymentFile(path)
		if err != nil {
			return err
		}
		srv.Deploy(dep)
		logger.Info("loaded deployment", "kind", dep.Kind.String(), "bench", dep.Profile.Name, "file", path)
	}
	for _, b := range splitList(benches) {
		p, ok := workload.ByName(b)
		if !ok {
			return fmt.Errorf("unknown benchmark %q (rtadsim lists the suite)", b)
		}
		for _, m := range splitList(models) {
			var kind core.ModelKind
			switch m {
			case "elm":
				kind = core.ModelELM
			case "lstm":
				kind = core.ModelLSTM
			default:
				return fmt.Errorf("unknown model %q (want elm or lstm)", m)
			}
			logger.Info("training detector", "model", m, "bench", p.Name)
			dep, err := core.Train(core.DefaultTrainConfig(p, kind))
			if err != nil {
				return err
			}
			srv.Deploy(dep)
		}
	}
	return nil
}

// modelWatcher polls a directory for .dep files and feeds new or changed
// ones into the registry — the hands-off half of the retrain-and-promote
// loop: a trainer drops a fresh file, the daemon picks it up, canaries it
// on live traffic (when -canary-fraction > 0 and the key already serves),
// or promotes it straight away. Re-scans are idempotent: an unchanged file
// is skipped by modtime, and a rewritten file with identical weights
// dedupes on the registry's content fingerprint.
type modelWatcher struct {
	dir            string
	reg            *registry.Registry
	log            *slog.Logger
	canaryFraction float64
	seen           map[string]time.Time // path -> modtime at last load
}

func (w *modelWatcher) run(interval time.Duration, stop <-chan struct{}) {
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-stop:
			return
		case <-t.C:
			w.scan()
		}
	}
}

func (w *modelWatcher) scan() {
	entries, err := os.ReadDir(w.dir)
	if err != nil {
		w.log.Warn("model watch: scan failed", "dir", w.dir, "err", err)
		return
	}
	for _, e := range entries {
		if e.IsDir() || filepath.Ext(e.Name()) != ".dep" {
			continue
		}
		info, err := e.Info()
		if err != nil {
			continue
		}
		path := filepath.Join(w.dir, e.Name())
		if mt, ok := w.seen[path]; ok && mt.Equal(info.ModTime()) {
			continue
		}
		w.seen[path] = info.ModTime()
		w.load(path)
	}
}

func (w *modelWatcher) load(path string) {
	dep, err := core.LoadDeploymentFile(path)
	if err != nil {
		w.log.Warn("model watch: load failed", "file", path, "err", err)
		return
	}
	v, err := w.reg.Register(dep, registry.Meta{Origin: "watch:" + path, LoadedAt: time.Now()})
	if err != nil {
		w.log.Warn("model watch: register failed", "file", path, "err", err)
		return
	}
	if a, ok := w.reg.Active(v.Key()); ok && a.ID() == v.ID() {
		return // unchanged content, already serving
	}
	// Canary when a fraction is configured and there is live traffic to
	// shadow (an active version); otherwise promote immediately — which is
	// also the bootstrap path for a key's first version.
	if w.canaryFraction > 0 {
		if err := w.reg.StartCanary(v.Key(), v.ID(), w.canaryFraction); err == nil {
			w.log.Info("model watch: canary started", "model", v.Key(), "version", v.ID(),
				"file", path, "fraction", w.canaryFraction)
			return
		}
	}
	if err := w.reg.Promote(v.Key(), v.ID()); err != nil {
		w.log.Warn("model watch: promote failed", "model", v.Key(), "version", v.ID(), "err", err)
		return
	}
	w.log.Info("model watch: promoted", "model", v.Key(), "version", v.ID(), "file", path)
}

func splitList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
