// Command rtadd is the RTAD detection daemon: it pre-loads one or more
// trained deployments, listens for rtad-wire sessions, and judges raw PTM
// trace streams from remote clients in real time — the serving shape of
// the paper's always-on monitor, where the monitored SoC is elsewhere and
// only its CoreSight bytes reach the detector.
//
// Usage:
//
//	rtadd -bench 458.sjeng -models lstm
//	rtadd -bench 458.sjeng,400.perlbench -models elm,lstm -addr :7433
//	rtadd -load sjeng-lstm.dep -metrics-addr 127.0.0.1:8080
//
// Deployments come from -load files (saved by rtadsim -save) or are trained
// at startup for every -bench × -models pair. SIGINT/SIGTERM drains
// gracefully: in-flight sessions finish and deliver their summaries while
// new connections receive an explicit "draining" rejection.
//
// Observability: every log line is structured (-log-format text|json,
// -log-level), session-scoped lines carry a session=<id> attribute matching
// the SessionID in the welcome frame, -wall-trace records serving-plane
// spans to a Perfetto JSON file, and -metrics-addr additionally mounts
// /debug/sessions (live session snapshot) and /debug/flightrecorder
// (recent per-session event rings) next to /metrics and /debug/pprof.
package main

import (
	"flag"
	"fmt"
	"log/slog"
	"net"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"rtad/internal/core"
	"rtad/internal/obs"
	"rtad/internal/serve"
	"rtad/internal/workload"
)

func main() {
	var (
		addr       = flag.String("addr", "127.0.0.1:7433", "listen address for rtad-wire sessions")
		metricsAdr = flag.String("metrics-addr", "", "serve /metrics (Prometheus text), /debug/pprof, /debug/sessions and /debug/flightrecorder on this address")
		bench      = flag.String("bench", "", "comma-separated benchmarks to train deployments for at startup")
		models     = flag.String("models", "lstm", "comma-separated models to train per benchmark: elm,lstm")
		load       = flag.String("load", "", "comma-separated deployment files (rtadsim -save) to serve")

		maxSessions  = flag.Int("max-sessions", 64, "concurrent session cap (excess hellos get an explicit busy rejection; 0 = unlimited)")
		workers      = flag.Int("workers", 0, "fleet width shared by session runners (0 = GOMAXPROCS)")
		queue        = flag.Int("queue", 16, "per-session chunk queue depth")
		shed         = flag.Bool("shed", false, "shed chunks when a session queue is full instead of blocking the socket (lossy)")
		gap          = flag.Int64("gap", 0, "default replay pacing in CPU cycles per branch event (0 = built-in default)")
		stagedTrace  = flag.Bool("staged-trace", false, "run session trace delivery on the staged byte/word reference path instead of the fused fast path (judgments are bit-identical)")
		readTimeout  = flag.Duration("read-timeout", time.Minute, "max gap between client frames")
		writeTimeout = flag.Duration("write-timeout", time.Minute, "max duration of one response write")
		drainTimeout = flag.Duration("drain-timeout", 30*time.Second, "how long shutdown waits for in-flight sessions before force-closing")

		batchWindow = flag.Duration("batch-window", 0, "micro-batch collection window for cross-session fused inference (0 = unbatched)")
		batchMax    = flag.Int("batch-max", 0, "max vectors per micro-batch (0 = built-in default)")

		logFormat = flag.String("log-format", "text", "structured log format: "+obs.LogFormats)
		logLevel  = flag.String("log-level", "info", "minimum log level: debug|info|warn|error")
		wallTrace = flag.String("wall-trace", "", "write a Perfetto JSON wall-clock trace of serving-plane spans to this file at exit")
	)
	flag.Parse()

	level, err := obs.ParseLogLevel(*logLevel)
	if err != nil {
		fatal(err)
	}
	logger, err := obs.NewLogger(os.Stdout, *logFormat, level)
	if err != nil {
		fatal(err)
	}

	tel := obs.NewMetricsOnly()
	flight := obs.NewFlightRecorder(0, 0)
	var wall *obs.WallTracer
	if *wallTrace != "" {
		wall = obs.NewWallTracer()
	}

	srv := serve.NewServer(serve.Config{
		MaxSessions:  *maxSessions,
		Workers:      *workers,
		QueueDepth:   *queue,
		Shed:         *shed,
		GapCycles:    *gap,
		StagedTrace:  *stagedTrace,
		ReadTimeout:  *readTimeout,
		WriteTimeout: *writeTimeout,
		BatchWindow:  *batchWindow,
		BatchMax:     *batchMax,
		Telemetry:    tel,
		Logger:       logger,
		WallTracer:   wall,
		Flight:       flight,
	})

	var msrv *obs.Server
	if *metricsAdr != "" {
		msrv, err = obs.Serve(*metricsAdr, tel.Reg,
			obs.Route{Pattern: "/debug/sessions", Handler: srv.SessionsHandler()},
			obs.Route{Pattern: "/debug/flightrecorder", Handler: srv.FlightHandler()},
		)
		if err != nil {
			fatal(err)
		}
		logger.Info("serving metrics", "url", "http://"+msrv.Addr()+"/metrics")
	}

	if err := loadDeployments(srv, logger, *load, *bench, *models); err != nil {
		fatal(err)
	}
	keys := srv.Models()
	if len(keys) == 0 {
		fatal(fmt.Errorf("no deployments: give -bench (train at startup) or -load (saved files)"))
	}
	logger.Info("serving deployments", "count", len(keys), "models", strings.Join(keys, ", "))
	if *batchWindow > 0 {
		max := *batchMax
		if max <= 0 {
			max = serve.DefaultBatchMax
		}
		logger.Info("micro-batching sessions", "window", *batchWindow, "max_vectors", max)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal(err)
	}
	logger.Info("listening for rtad-wire sessions", "addr", ln.Addr().String())

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	go func() {
		sig := <-sigc
		logger.Info("received signal, draining", "signal", sig.String(), "timeout", *drainTimeout)
		srv.Shutdown(*drainTimeout)
	}()

	if err := srv.Serve(ln); err != nil {
		fatal(err)
	}
	// Drain order: sessions first (above), then the introspection endpoint —
	// gracefully, so a /metrics or /debug/sessions scrape racing the drain
	// still completes — and finally the wall trace, which must include the
	// drain spans themselves.
	if msrv != nil {
		if err := msrv.Close(); err != nil {
			logger.Warn("metrics endpoint shutdown", "err", err)
		}
	}
	if wall != nil {
		if err := writeWallTrace(*wallTrace, wall); err != nil {
			fatal(err)
		}
		logger.Info("wrote wall trace", "file", *wallTrace, "events", wall.Events())
	}
	logger.Info("drained, bye")
}

func writeWallTrace(path string, wall *obs.WallTracer) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := wall.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// loadDeployments registers -load files first, then trains every
// -bench × -models pair not already covered.
func loadDeployments(srv *serve.Server, logger *slog.Logger, loads, benches, models string) error {
	for _, path := range splitList(loads) {
		dep, err := core.LoadDeploymentFile(path)
		if err != nil {
			return err
		}
		srv.Deploy(dep)
		logger.Info("loaded deployment", "kind", dep.Kind.String(), "bench", dep.Profile.Name, "file", path)
	}
	for _, b := range splitList(benches) {
		p, ok := workload.ByName(b)
		if !ok {
			return fmt.Errorf("unknown benchmark %q (rtadsim lists the suite)", b)
		}
		for _, m := range splitList(models) {
			var kind core.ModelKind
			switch m {
			case "elm":
				kind = core.ModelELM
			case "lstm":
				kind = core.ModelLSTM
			default:
				return fmt.Errorf("unknown model %q (want elm or lstm)", m)
			}
			logger.Info("training detector", "model", m, "bench", p.Name)
			dep, err := core.Train(core.DefaultTrainConfig(p, kind))
			if err != nil {
				return err
			}
			srv.Deploy(dep)
		}
	}
	return nil
}

func splitList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
