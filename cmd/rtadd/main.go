// Command rtadd is the RTAD detection daemon: it pre-loads one or more
// trained deployments, listens for rtad-wire sessions, and judges raw PTM
// trace streams from remote clients in real time — the serving shape of
// the paper's always-on monitor, where the monitored SoC is elsewhere and
// only its CoreSight bytes reach the detector.
//
// Usage:
//
//	rtadd -bench 458.sjeng -models lstm
//	rtadd -bench 458.sjeng,400.perlbench -models elm,lstm -addr :7433
//	rtadd -load sjeng-lstm.dep -metrics-addr 127.0.0.1:8080
//
// Deployments come from -load files (saved by rtadsim -save) or are trained
// at startup for every -bench × -models pair. SIGINT/SIGTERM drains
// gracefully: in-flight sessions finish and deliver their summaries while
// new connections receive an explicit "draining" rejection.
package main

import (
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"rtad/internal/core"
	"rtad/internal/obs"
	"rtad/internal/serve"
	"rtad/internal/workload"
)

func main() {
	var (
		addr       = flag.String("addr", "127.0.0.1:7433", "listen address for rtad-wire sessions")
		metricsAdr = flag.String("metrics-addr", "", "serve /metrics (Prometheus text) and /debug/pprof on this address")
		bench      = flag.String("bench", "", "comma-separated benchmarks to train deployments for at startup")
		models     = flag.String("models", "lstm", "comma-separated models to train per benchmark: elm,lstm")
		load       = flag.String("load", "", "comma-separated deployment files (rtadsim -save) to serve")

		maxSessions  = flag.Int("max-sessions", 64, "concurrent session cap (excess hellos get an explicit busy rejection; 0 = unlimited)")
		workers      = flag.Int("workers", 0, "fleet width shared by session runners (0 = GOMAXPROCS)")
		queue        = flag.Int("queue", 16, "per-session chunk queue depth")
		shed         = flag.Bool("shed", false, "shed chunks when a session queue is full instead of blocking the socket (lossy)")
		gap          = flag.Int64("gap", 0, "default replay pacing in CPU cycles per branch event (0 = built-in default)")
		readTimeout  = flag.Duration("read-timeout", time.Minute, "max gap between client frames")
		writeTimeout = flag.Duration("write-timeout", time.Minute, "max duration of one response write")
		drainTimeout = flag.Duration("drain-timeout", 30*time.Second, "how long shutdown waits for in-flight sessions before force-closing")

		batchWindow = flag.Duration("batch-window", 0, "micro-batch collection window for cross-session fused inference (0 = unbatched)")
		batchMax    = flag.Int("batch-max", 0, "max vectors per micro-batch (0 = built-in default)")
	)
	flag.Parse()

	tel := obs.NewMetricsOnly()
	if *metricsAdr != "" {
		msrv, err := obs.Serve(*metricsAdr, tel.Reg)
		if err != nil {
			fatal(err)
		}
		defer msrv.Close()
		fmt.Printf("serving metrics at http://%s/metrics\n", msrv.Addr())
	}

	srv := serve.NewServer(serve.Config{
		MaxSessions:  *maxSessions,
		Workers:      *workers,
		QueueDepth:   *queue,
		Shed:         *shed,
		GapCycles:    *gap,
		ReadTimeout:  *readTimeout,
		WriteTimeout: *writeTimeout,
		BatchWindow:  *batchWindow,
		BatchMax:     *batchMax,
		Telemetry:    tel,
		Logf: func(format string, args ...any) {
			fmt.Printf(format+"\n", args...)
		},
	})

	if err := loadDeployments(srv, *load, *bench, *models); err != nil {
		fatal(err)
	}
	keys := srv.Models()
	if len(keys) == 0 {
		fatal(fmt.Errorf("no deployments: give -bench (train at startup) or -load (saved files)"))
	}
	fmt.Printf("serving %d deployment(s): %s\n", len(keys), strings.Join(keys, ", "))
	if *batchWindow > 0 {
		max := *batchMax
		if max <= 0 {
			max = serve.DefaultBatchMax
		}
		fmt.Printf("micro-batching sessions: window %v, max %d vectors\n", *batchWindow, max)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("listening for rtad-wire sessions on %s\n", ln.Addr())

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	go func() {
		sig := <-sigc
		fmt.Printf("received %v, draining (timeout %v)...\n", sig, *drainTimeout)
		srv.Shutdown(*drainTimeout)
	}()

	if err := srv.Serve(ln); err != nil {
		fatal(err)
	}
	fmt.Println("drained, bye")
}

// loadDeployments registers -load files first, then trains every
// -bench × -models pair not already covered.
func loadDeployments(srv *serve.Server, loads, benches, models string) error {
	for _, path := range splitList(loads) {
		dep, err := core.LoadDeploymentFile(path)
		if err != nil {
			return err
		}
		srv.Deploy(dep)
		fmt.Printf("loaded %v deployment for %s from %s\n", dep.Kind, dep.Profile.Name, path)
	}
	for _, b := range splitList(benches) {
		p, ok := workload.ByName(b)
		if !ok {
			return fmt.Errorf("unknown benchmark %q (rtadsim lists the suite)", b)
		}
		for _, m := range splitList(models) {
			var kind core.ModelKind
			switch m {
			case "elm":
				kind = core.ModelELM
			case "lstm":
				kind = core.ModelLSTM
			default:
				return fmt.Errorf("unknown model %q (want elm or lstm)", m)
			}
			fmt.Printf("training %s detector on %s...\n", m, p.Name)
			dep, err := core.Train(core.DefaultTrainConfig(p, kind))
			if err != nil {
				return err
			}
			srv.Deploy(dep)
		}
	}
	return nil
}

func splitList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
