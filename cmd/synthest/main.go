// Command synthest prints Table I: the estimated FPGA resources (LUTs, FFs,
// BRAMs) and 45 nm-style gate counts for every RTAD submodule, with the
// ML-MIAOW footprint taken from the trimming flow's kept-block set.
//
// Usage:
//
//	synthest
package main

import (
	"flag"
	"fmt"
	"os"

	"rtad/internal/experiments"
	"rtad/internal/synth"
)

func main() {
	netlist := flag.Bool("netlist", false, "also print each module's primitive inventory")
	flag.Parse()
	res, err := experiments.TableI(experiments.Options{})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Print(res)
	if *netlist {
		fmt.Println("\nprimitive inventories:")
		for _, n := range []*synth.Netlist{
			synth.TraceAnalyzer(), synth.P2S(), synth.InputVectorGenerator(),
			synth.InternalFIFO(), synth.MLMIAOWDriver(), synth.ControlFSM(),
			synth.InterruptManager(),
		} {
			fmt.Print(n.Describe())
		}
	}
}
