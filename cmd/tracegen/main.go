// Command tracegen runs a benchmark on the host-CPU model with the
// CoreSight PTM enabled and prints the resulting trace: either the raw
// packet bytes (hex) or the decoded packet listing, optionally after
// TPIU framing/deframing — a debugging view of the data IGM consumes.
//
// Usage:
//
//	tracegen -bench gcc -instr 20000 -decode
//	tracegen -bench omnetpp -hex | head
package main

import (
	"flag"
	"fmt"
	"os"

	"rtad/internal/cpu"
	"rtad/internal/ptm"
	"rtad/internal/tracefile"
	"rtad/internal/workload"
)

func main() {
	var (
		bench     = flag.String("bench", "403.gcc", "benchmark to trace")
		instr     = flag.Int64("instr", 20_000, "instructions to execute")
		hex       = flag.Bool("hex", false, "dump raw packet bytes")
		decode    = flag.Bool("decode", true, "print decoded packets")
		limit     = flag.Int("limit", 200, "max packets/lines to print (0 = all)")
		out       = flag.String("o", "", "write a trace container for cmd/traceanalyze")
		broadcast = flag.Bool("broadcast", true, "branch-broadcast capture (false = atom mode)")
	)
	flag.Parse()

	p, ok := workload.ByName(*bench)
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown benchmark %q\n", *bench)
		os.Exit(2)
	}
	prog, err := p.Generate()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	enc := ptm.NewEncoder(ptm.Config{BranchBroadcast: *broadcast})
	var stream []byte
	sink := cpu.SinkFunc(func(ev cpu.BranchEvent) int64 {
		stream = enc.EncodeInto(stream, ev)
		return 0
	})
	c := cpu.New(prog, cpu.Config{Mode: cpu.ModeRTAD, Sink: sink})
	if _, err := c.Run(*instr); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	stream = append(stream, enc.Flush()...)
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		werr := tracefile.Write(f, &tracefile.File{Broadcast: *broadcast, Program: prog, Stream: stream})
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			fmt.Fprintln(os.Stderr, werr)
			os.Exit(1)
		}
		fmt.Printf("trace written to %s\n", *out)
	}
	st := c.Stats()
	fmt.Printf("%s: %d instructions, %d branch events, %d trace bytes (%.2f B/branch)\n",
		p.Name, st.Instret, st.Branches, len(stream), float64(len(stream))/float64(st.Branches))

	if *hex {
		for i := 0; i < len(stream); i += 16 {
			if *limit > 0 && i/16 >= *limit {
				fmt.Println("...")
				break
			}
			end := i + 16
			if end > len(stream) {
				end = len(stream)
			}
			fmt.Printf("%06x  % x\n", i, stream[i:end])
		}
	}
	if *decode {
		pkts, errs := ptm.DecodeAll(stream)
		fmt.Printf("%d packets, %d protocol errors\n", len(pkts), errs)
		for i, pkt := range pkts {
			if *limit > 0 && i >= *limit {
				fmt.Println("...")
				break
			}
			switch pkt.Type {
			case ptm.PktBranch:
				if pkt.Exc {
					fmt.Printf("%6d  branch   %#010x  exception kind=%v\n", i, pkt.Addr, pkt.Kind)
				} else {
					fmt.Printf("%6d  branch   %#010x\n", i, pkt.Addr)
				}
			case ptm.PktAtoms:
				fmt.Printf("%6d  atoms    %v\n", i, pkt.Atoms)
			case ptm.PktISync:
				fmt.Printf("%6d  i-sync   %#010x\n", i, pkt.Addr)
			default:
				fmt.Printf("%6d  %v\n", i, pkt.Type)
			}
		}
	}
}
