// Command loadgen hammers an rtadd daemon with many concurrent rtad-wire
// sessions and measures the serving plane: per-judgment turnaround latency
// (p50/p90/p99) and aggregate judgment throughput, unbatched versus
// micro-batched. It is the harness behind the committed BENCH_serve.json
// baseline.
//
// Two modes:
//
//	loadgen -clients 1000                      # spawn: in-process daemon, runs
//	                                           # unbatched then batched, writes
//	                                           # BENCH_serve.json
//	loadgen -addr 127.0.0.1:7433 -clients 256  # external: hammer a running
//	                                           # rtadd, print stats only
//
// The fleet splits into two roles, the standard load-test shape. The first
// -probes clients are closed-loop latency probes: after each chunk they wait
// for the next judgment before sending more, and the sample is the wall time
// from the chunk write to that judgment's arrival — queueing plus batching
// plus inference as the client experiences it. Every other client streams
// its chunks open-loop, throttled only by the server's per-session queue
// backpressure, which keeps the fleet's workers saturated with in-flight
// chunks the way a real always-on probe population would. All sessions use
// the same explicit -stride (denser than the LSTM default) so inference
// dominates the host work and both configurations judge identical vector
// sets.
//
// -verify makes client 0 accumulate its judgment stream and compare it,
// field for field, against an in-process trace-replay reference — the
// bit-identity spot check that batching must not change any stream, even
// under full concurrent load. Spawn mode only.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"runtime"
	"runtime/pprof"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"rtad/internal/core"
	"rtad/internal/cpu"
	"rtad/internal/obs"
	"rtad/internal/ptm"
	"rtad/internal/serve"
	"rtad/internal/workload"
)

func main() {
	var (
		addr    = flag.String("addr", "", "external rtadd address (empty = spawn an in-process daemon and bench unbatched vs batched)")
		bench   = flag.String("bench", "458.sjeng", "victim benchmark: trace source, and the deployment trained in spawn mode")
		backend = flag.String("backend", "native", "inference backend every session requests")
		clients = flag.Int("clients", 64, "concurrent rtad-wire sessions")
		probes  = flag.Int("probes", 64, "closed-loop latency probes among the clients; the rest stream open-loop to keep the fleet saturated")
		stride  = flag.Int("stride", 16, "judgment stride requested in every hello (0 = deployment default)")
		gap     = flag.Int64("gap", 100_000, "replay pacing in simulated CPU cycles per branch; large gaps drain the MCM FIFO between vectors so every strided vector is judged instead of dropped (0 = server default)")
		chunk   = flag.Int("chunk", 4096, "trace bytes per closed-loop send")

		workers     = flag.Int("workers", 64, "spawn mode: fleet width of the in-process daemon (GOMAXPROCS=1 hosts need this explicit)")
		batchWindow = flag.Duration("batch-window", time.Millisecond, "spawn mode: micro-batch window of the batched pass")
		batchMax    = flag.Int("batch-max", 32, "spawn mode: micro-batch size cap of the batched pass")

		trainInstr = flag.Int64("train-instr", 1_200_000, "spawn mode: victim instructions to train the deployment on")
		traceInstr = flag.Int64("trace-instr", 200_000, "victim instructions captured into the trace each client streams")

		modes   = flag.String("modes", "unbatched,batched", "spawn mode: which passes to run; a single mode skips the comparison (useful for profiling one pass)")
		repeats = flag.Int("repeats", 1, "spawn mode: repeats per mode, interleaved to cancel host drift; recorded stats are each mode's median-throughput repeat")
		profile = flag.String("cpuprofile", "", "write a CPU profile of the load passes to this file")
		verify  = flag.Bool("verify", false, "spawn mode: compare client 0's judgments against an in-process reference (bit-identity spot check)")
		out     = flag.String("out", "", "spawn mode: write the rtad-bench-serve/1 baseline to this file (e.g. BENCH_serve.json)")
		note    = flag.String("note", "", "free-form note recorded in the baseline")

		metricsAdr = flag.String("metrics-addr", "", "external mode: scrape this rtadd metrics address after the pass for the server-side SLO snapshot")
		logFormat  = flag.String("log-format", "text", "spawn mode: structured log format of the spawned daemon: "+obs.LogFormats)
		logLevel   = flag.String("log-level", "warn", "spawn mode: minimum log level of the spawned daemon (info per-session lines would swamp the bench output)")
		wallTrace  = flag.String("wall-trace", "", "spawn mode: write the spawned daemon's Perfetto wall-clock trace (all passes on one timeline) to this file")
	)
	flag.Parse()
	if *profile != "" {
		f, err := os.Create(*profile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		pprof.StartCPUProfile(f)
		defer pprof.StopCPUProfile()
	}
	opts := obsOpts{
		metricsAddr: *metricsAdr,
		logFormat:   *logFormat,
		logLevel:    *logLevel,
		wallTrace:   *wallTrace,
	}
	if err := run(*addr, *bench, *backend, *clients, *probes, *stride, *gap, *chunk, *workers,
		*batchWindow, *batchMax, *trainInstr, *traceInstr, *modes, *repeats, *verify, *out, *note, opts); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

// obsOpts carries the observability flags into run.
type obsOpts struct {
	metricsAddr string
	logFormat   string
	logLevel    string
	wallTrace   string
}

func run(addr, bench, backend string, clients, probes, stride int, gap int64, chunk, workers int,
	batchWindow time.Duration, batchMax int, trainInstr, traceInstr int64,
	modes string, repeats int, verify bool, out, note string, opts obsOpts) error {

	p, ok := workload.ByName(bench)
	if !ok {
		return fmt.Errorf("unknown benchmark %q", bench)
	}
	if probes > clients {
		probes = clients
	}
	if probes < 1 {
		probes = 1 // client 0 must stay closed-loop: it carries -verify
	}
	fmt.Printf("capturing %s trace (%d instructions)...\n", bench, traceInstr)
	stream, err := captureTrace(p, traceInstr)
	if err != nil {
		return err
	}
	fmt.Printf("trace: %d bytes\n", len(stream))

	if addr != "" {
		if verify {
			return fmt.Errorf("-verify needs spawn mode: the reference must share the daemon's trained weights")
		}
		st, err := pass(addr, bench, backend, stride, gap, chunk, clients, probes, stream, nil)
		if err != nil {
			return err
		}
		if opts.metricsAddr != "" {
			if snap, ok := scrapeServeSLO("http://" + opts.metricsAddr + "/metrics"); ok {
				st.serverSLO, st.hasSLO = snap, true
			} else {
				fmt.Fprintf(os.Stderr, "warning: no %s histogram at %s\n", serveSLOMetric, opts.metricsAddr)
			}
		}
		printPass("external", st)
		return nil
	}

	// Spawn mode: train once, then run the same fleet of clients against an
	// unbatched and a batched in-process daemon over the same deployment.
	fmt.Printf("training lstm detector on %s (%d instructions)...\n", bench, trainInstr)
	cfg := core.DefaultTrainConfig(p, core.ModelLSTM)
	cfg.TrainInstr = trainInstr
	dep, err := core.Train(cfg)
	if err != nil {
		return err
	}

	var want []serve.Judgment
	if verify {
		want, err = referenceJudgments(dep, backend, stride, gap, stream)
		if err != nil {
			return err
		}
		fmt.Printf("reference: %d judgments per session\n", len(want))
	}

	level, err := obs.ParseLogLevel(opts.logLevel)
	if err != nil {
		return err
	}
	dlog, err := obs.NewLogger(os.Stderr, opts.logFormat, level)
	if err != nil {
		return err
	}
	var wall *obs.WallTracer
	if opts.wallTrace != "" {
		wall = obs.NewWallTracer()
	}
	base := []serve.Option{
		serve.WithMaxSessions(clients + 8),
		serve.WithWorkers(workers),
		serve.WithLogger(dlog), // default -log-level warn keeps per-session lines out of the bench output
		serve.WithWallTracer(wall),
	}
	modeList := strings.Split(modes, ",")
	for _, mode := range modeList {
		if mode != "unbatched" && mode != "batched" {
			return fmt.Errorf("unknown mode %q in -modes (want unbatched and/or batched)", mode)
		}
	}
	if repeats < 1 {
		repeats = 1
	}
	// Repeats interleave the modes (u, b, u, b, ...) so slow host drift —
	// frequency scaling, neighbours on a shared box — hits both sides alike
	// instead of biasing whichever mode ran later.
	all := map[string][]*passStats{}
	for rep := 0; rep < repeats; rep++ {
		for _, mode := range modeList {
			tel := obs.NewMetricsOnly()
			opts := append(append([]serve.Option(nil), base...), serve.WithTelemetry(tel))
			if mode == "batched" {
				opts = append(opts, serve.WithBatching(batchWindow, batchMax))
			}
			daddr, stop, err := startDaemon(dep, opts...)
			if err != nil {
				return err
			}
			// The pass scrapes its daemon's /metrics over HTTP rather than
			// reading the registry in-process: the SLO snapshot printed next
			// to the client-side numbers is exactly what an external
			// Prometheus would have seen.
			msrv, err := obs.Serve("127.0.0.1:0", tel.Reg)
			if err != nil {
				stop()
				return err
			}
			st, err := pass(daddr, bench, backend, stride, gap, chunk, clients, probes, stream, want)
			if err != nil {
				msrv.Close()
				stop()
				return fmt.Errorf("%s pass: %w", mode, err)
			}
			if err := stop(); err != nil {
				msrv.Close()
				return fmt.Errorf("%s pass: drain: %w", mode, err)
			}
			if snap, ok := scrapeServeSLO("http://" + msrv.Addr() + "/metrics"); ok {
				st.serverSLO, st.hasSLO = snap, true
			}
			if err := msrv.Close(); err != nil {
				return err
			}
			if mode == "batched" {
				h := tel.Reg.Histogram("rtad_serve_batch_size", serve.BatchSizeBuckets)
				if h.Count() > 0 {
					st.batchMeanSize = h.Sum() / float64(h.Count())
				}
				st.flushes = map[string]int64{}
				for _, reason := range []string{"window", "full", "starve", "drain"} {
					st.flushes[reason] = tel.Reg.Counter("rtad_serve_batch_flush_" + reason + "_total").Value()
				}
			}
			all[mode] = append(all[mode], st)
			name := mode
			if repeats > 1 {
				name = fmt.Sprintf("%s %d/%d", mode, rep+1, repeats)
			}
			printPass(name, st)
		}
	}
	if wall != nil {
		f, err := os.Create(opts.wallTrace)
		if err != nil {
			return err
		}
		if err := wall.WriteJSON(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("wrote wall trace %s (%d events)\n", opts.wallTrace, wall.Events())
	}
	runs := map[string]*passStats{}
	for _, mode := range modeList {
		runs[mode] = medianPass(all[mode])
	}

	if runs["unbatched"] == nil || runs["batched"] == nil {
		return nil // single-mode run: nothing to compare or record
	}
	if runs["unbatched"].judged != runs["batched"].judged {
		return fmt.Errorf("judgment counts diverged: unbatched %d, batched %d",
			runs["unbatched"].judged, runs["batched"].judged)
	}
	speedup := runs["batched"].throughput / runs["unbatched"].throughput
	if repeats > 1 {
		fmt.Printf("\nbatched vs unbatched throughput (median of %d): %.2fx\n", repeats, speedup)
	} else {
		fmt.Printf("\nbatched vs unbatched throughput: %.2fx\n", speedup)
	}
	if verify {
		fmt.Println("verify: client 0 judgment streams bit-identical to the in-process reference in both passes")
	}

	if out == "" {
		return nil
	}
	return writeBaseline(out, bench, backend, clients, probes, stride, gap, workers,
		batchWindow, batchMax, len(stream), note, runs, speedup)
}

// captureTrace records a victim run as the raw branch-broadcast PTM stream
// a CoreSight probe would emit (mirrors cmd/tracegen).
func captureTrace(p workload.Profile, instr int64) ([]byte, error) {
	prog, err := p.Generate()
	if err != nil {
		return nil, err
	}
	enc := ptm.NewEncoder(ptm.Config{BranchBroadcast: true})
	var stream []byte
	c := cpu.New(prog, cpu.Config{Mode: cpu.ModeRTAD, Sink: cpu.SinkFunc(func(ev cpu.BranchEvent) int64 {
		stream = enc.EncodeInto(stream, ev)
		return 0
	})})
	if _, err := c.Run(instr); err != nil {
		return nil, err
	}
	return append(stream, enc.Flush()...), nil
}

// referenceJudgments replays the stream through an in-process trace-input
// session — the unbatched single-session ground truth.
func referenceJudgments(dep *core.Deployment, backend string, stride int, gap int64, stream []byte) ([]serve.Judgment, error) {
	s, err := core.Open(core.Deployments{dep},
		core.WithConfig(core.PipelineConfig{Backend: backend, Stride: stride}),
		core.WithTraceInput(gap))
	if err != nil {
		return nil, err
	}
	if err := s.FeedTrace(stream); err != nil {
		return nil, err
	}
	if err := s.Drain(); err != nil {
		return nil, err
	}
	var want []serve.Judgment
	for _, j := range s.Results() {
		want = append(want, serve.Judgment{
			Seq:         j.Vector.Seq,
			Done:        int64(j.Rec.Done),
			FinalRetire: int64(j.FinalRetire),
			IRQAt:       int64(j.Rec.IRQAt),
			MarginQ:     j.Rec.Judgment.MarginQ,
			EwmaQ:       j.Rec.Judgment.EwmaQ,
			Anomaly:     j.Rec.Judgment.Anomaly,
		})
	}
	return want, nil
}

// passStats aggregates one load pass.
type passStats struct {
	wall          time.Duration
	cpu           time.Duration // process user+system CPU consumed by the pass
	judged        int64
	throughput    float64 // judgments per wall-clock second
	latP50        float64 // microseconds
	latP90        float64
	latP99        float64
	latMax        float64
	samples       int
	batchMeanSize float64
	flushes       map[string]int64 // batched pass only: flush counts by reason
	allThroughput []float64        // every repeat's throughput, when -repeats > 1

	sess0     string                // client 0's server-minted SessionID, for log/trace correlation
	serverSLO obs.HistogramSnapshot // scraped rtad_serve_chunk_judgment_seconds
	hasSLO    bool
}

// serveSLOMetric is the end-to-end serving SLO histogram loadgen scrapes:
// wall time from a chunk's arrival at the server to its last judgment
// hitting the socket.
const serveSLOMetric = "rtad_serve_chunk_judgment_seconds"

// scrapeServeSLO pulls /metrics and reconstructs the end-to-end SLO
// histogram — the server-side counterpart of the client-measured
// turnaround latency.
func scrapeServeSLO(url string) (obs.HistogramSnapshot, bool) {
	resp, err := http.Get(url)
	if err != nil {
		return obs.HistogramSnapshot{}, false
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return obs.HistogramSnapshot{}, false
	}
	return obs.ParsePrometheusHistogram(string(body), serveSLOMetric)
}

// medianPass picks the median-throughput repeat — a real measured pass, not
// a synthetic average — and annotates it with the full spread.
func medianPass(sts []*passStats) *passStats {
	if len(sts) == 1 {
		return sts[0]
	}
	ordered := append([]*passStats(nil), sts...)
	sort.Slice(ordered, func(i, j int) bool { return ordered[i].throughput < ordered[j].throughput })
	med := ordered[len(ordered)/2]
	for _, st := range sts {
		med.allThroughput = append(med.allThroughput, round3(st.throughput))
	}
	return med
}

// pass runs the client fleet against addr and aggregates latency and
// throughput. Clients below probes are closed-loop latency probes; the rest
// stream open-loop. If verifyWant is non-nil, client 0 accumulates its
// judgments and they are compared field-for-field against it.
func pass(addr, bench, backend string, stride int, gap int64, chunk, clients, probes int, stream []byte,
	verifyWant []serve.Judgment) (*passStats, error) {

	type clientOut struct {
		lat    []float64
		judged int64
		js     []serve.Judgment
		sess   string
		err    error
	}
	outs := make([]clientOut, clients)
	var wg sync.WaitGroup
	cpu0 := processCPU()
	start := time.Now()
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			o := &outs[i]
			collect := verifyWant != nil && i == 0

			var armed atomic.Bool
			gotJ := make(chan time.Time, 1)
			onJudgment := func(j serve.Judgment) {
				o.judged++
				if collect {
					o.js = append(o.js, j)
				}
				if armed.CompareAndSwap(true, false) {
					select {
					case gotJ <- time.Now():
					default:
					}
				}
			}
			c, err := serve.Dial(addr, serve.Hello{
				Benchmark: bench, Model: "lstm", Backend: backend,
				Stride: stride, GapCycles: gap,
			}, onJudgment)
			if err != nil {
				o.err = err
				return
			}
			o.sess = c.SessionID()
			for off := 0; off < len(stream); off += chunk {
				end := off + chunk
				if end > len(stream) {
					end = len(stream)
				}
				if i >= probes {
					// Open-loop: stream flat out; the server's per-session
					// queue backpressure is the only throttle.
					if err := c.Send(stream[off:end]); err != nil {
						o.err = err
						return
					}
					continue
				}
				if end == len(stream) {
					// The tail chunk may hold less than one stride of
					// branches; Finish drains whatever it produces.
					if err := c.Send(stream[off:]); err != nil {
						o.err = err
					}
					break
				}
				armed.Store(true)
				t0 := time.Now()
				if err := c.Send(stream[off:end]); err != nil {
					o.err = err
					return
				}
				select {
				case t1 := <-gotJ:
					o.lat = append(o.lat, float64(t1.Sub(t0))/float64(time.Microsecond))
				case <-time.After(30 * time.Second):
					armed.Store(false) // a sparse chunk may judge nothing; move on
				}
			}
			if o.err != nil {
				return
			}
			if _, err := c.Finish(); err != nil {
				o.err = err
			}
		}(i)
	}
	wg.Wait()
	wall := time.Since(start)

	st := &passStats{wall: wall, cpu: processCPU() - cpu0, sess0: outs[0].sess}
	var lat []float64
	for i := range outs {
		if outs[i].err != nil {
			return nil, fmt.Errorf("client %d: %w", i, outs[i].err)
		}
		st.judged += outs[i].judged
		lat = append(lat, outs[i].lat...)
	}
	if st.judged == 0 {
		return nil, fmt.Errorf("no judgments; lengthen -trace-instr or lower -stride")
	}
	st.throughput = float64(st.judged) / wall.Seconds()
	sort.Float64s(lat)
	st.samples = len(lat)
	if n := len(lat); n > 0 {
		st.latP50, st.latP90, st.latP99 = quantile(lat, 0.50), quantile(lat, 0.90), quantile(lat, 0.99)
		st.latMax = lat[n-1]
	}

	if verifyWant != nil {
		got := outs[0].js
		if len(got) != len(verifyWant) {
			return nil, fmt.Errorf("verify: client 0 judged %d vectors, reference %d", len(got), len(verifyWant))
		}
		for k := range got {
			if got[k] != verifyWant[k] {
				return nil, fmt.Errorf("verify: judgment %d diverged from the reference:\n got %+v\nwant %+v",
					k, got[k], verifyWant[k])
			}
		}
	}
	return st, nil
}

// processCPU returns the process's cumulative user+system CPU time; pass
// deltas separate real work from idle in the wall-clock numbers (loadgen's
// clients and the spawned daemon share one process, so the delta covers
// both sides of the socket).
func processCPU() time.Duration {
	var ru syscall.Rusage
	if err := syscall.Getrusage(syscall.RUSAGE_SELF, &ru); err != nil {
		return 0
	}
	return time.Duration(ru.Utime.Nano() + ru.Stime.Nano())
}

func quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(q * float64(len(sorted)-1))
	return sorted[idx]
}

func printPass(name string, st *passStats) {
	fmt.Printf("\n%s: %d judgments in %v (%.0f judgments/s, cpu %v = %.0f%% busy)\n",
		name, st.judged, st.wall.Round(time.Millisecond), st.throughput,
		st.cpu.Round(time.Millisecond), 100*st.cpu.Seconds()/st.wall.Seconds())
	fmt.Printf("  turnaround latency (µs, %d samples): p50 %.0f  p90 %.0f  p99 %.0f  max %.0f\n",
		st.samples, st.latP50, st.latP90, st.latP99, st.latMax)
	if st.hasSLO {
		// Server-side counterpart from the scraped SLO histogram: chunk
		// arrival to last judgment on the wire, without the client's
		// network and scheduling share.
		fmt.Printf("  server chunk→judgment (µs, %d chunks): p50 %.0f  p99 %.0f\n",
			st.serverSLO.Count, st.serverSLO.Quantile(0.50)*1e6, st.serverSLO.Quantile(0.99)*1e6)
	}
	if st.sess0 != "" {
		fmt.Printf("  session id (client 0): %s\n", st.sess0)
	}
	if st.batchMeanSize > 0 {
		fmt.Printf("  mean batch size: %.1f vectors (flushes: window %d, full %d, starve %d, drain %d)\n",
			st.batchMeanSize, st.flushes["window"], st.flushes["full"], st.flushes["starve"], st.flushes["drain"])
	}
}

func writeBaseline(path, bench, backend string, clients, probes, stride int, gap int64, workers int,
	batchWindow time.Duration, batchMax, traceBytes int, note string,
	runs map[string]*passStats, speedup float64) error {

	runDoc := func(st *passStats) map[string]any {
		d := map[string]any{
			"wall_s":                     round3(st.wall.Seconds()),
			"cpu_s":                      round3(st.cpu.Seconds()),
			"judgments_total":            st.judged,
			"throughput_judgments_per_s": round3(st.throughput),
			"latency_us": map[string]any{
				"p50": round3(st.latP50), "p90": round3(st.latP90),
				"p99": round3(st.latP99), "max": round3(st.latMax),
				"samples": st.samples,
			},
		}
		if st.hasSLO {
			// Raw snapshot, not pre-computed quantiles: benchinfo (and any
			// later reader) re-derives p50/p99 with HistogramSnapshot.Quantile.
			d["server_chunk_judgment_seconds"] = st.serverSLO
		}
		if st.batchMeanSize > 0 {
			d["batch_mean_size"] = round3(st.batchMeanSize)
		}
		if len(st.allThroughput) > 1 {
			d["throughput_repeats"] = st.allThroughput
		}
		return d
	}
	doc := map[string]any{
		"schema":  "rtad-bench-serve/1",
		"date":    time.Now().Format("2006-01-02"),
		"goos":    runtime.GOOS,
		"goarch":  runtime.GOARCH,
		"cpu":     cpuModel(),
		"command": "go run ./cmd/loadgen " + strings.Join(os.Args[1:], " "),
		"bench":   bench, "model": "lstm", "backend": backend,
		"clients": clients, "probes": probes, "stride": stride, "gap_cycles": gap, "workers": workers,
		"batch_window_us": batchWindow.Microseconds(),
		"batch_max":       batchMax,
		"trace_bytes":     traceBytes,
		"runs": map[string]any{
			"unbatched": runDoc(runs["unbatched"]),
			"batched":   runDoc(runs["batched"]),
		},
		"speedup_batched_vs_unbatched": round3(speedup),
	}
	if note != "" {
		doc["note"] = note
	}
	raw, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(raw, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", path)
	return nil
}

func round3(v float64) float64 {
	return float64(int64(v*1000+0.5)) / 1000
}

// cpuModel reads the host CPU model name for the baseline provenance header.
func cpuModel() string {
	raw, err := os.ReadFile("/proc/cpuinfo")
	if err != nil {
		return runtime.GOARCH
	}
	for _, line := range strings.Split(string(raw), "\n") {
		if name, ok := strings.CutPrefix(line, "model name"); ok {
			return strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(name), ":"))
		}
	}
	return runtime.GOARCH
}

// startDaemon runs an in-process server over dep on a loopback listener.
func startDaemon(dep *core.Deployment, opts ...serve.Option) (string, func() error, error) {
	srv := serve.New(nil, opts...)
	srv.Deploy(dep)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", nil, err
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	stop := func() error {
		srv.Shutdown(time.Minute)
		return <-done
	}
	return ln.Addr().String(), stop, nil
}
