// Trace pipeline walkthrough: follows a handful of branches through every
// hardware stage of Fig 1 — PTM packetisation, the PTM output port's
// hold-back FIFO, TPIU framing, and IGM's trace analyzer / P2S / input
// vector generator — printing what each stage produces and when.
//
//	go run ./examples/trace-pipeline
package main

import (
	"fmt"

	"rtad/internal/cpu"
	"rtad/internal/igm"
	"rtad/internal/ptm"
	"rtad/internal/sim"
	"rtad/internal/tpiu"
)

func main() {
	// A tiny hand-written branch history: three hot targets, one syscall.
	events := []cpu.BranchEvent{
		{Cycle: 100, PC: 0x8000, Target: 0x8040, Kind: cpu.KindDirect, Taken: true},
		{Cycle: 140, PC: 0x8044, Target: 0x8100, Kind: cpu.KindCall, Taken: true},
		{Cycle: 180, PC: 0x8108, Target: 0x8048, Kind: cpu.KindReturn, Taken: true},
		{Cycle: 220, PC: 0x8050, Target: 0x8040, Kind: cpu.KindDirect, Taken: false},
		{Cycle: 260, PC: 0x8054, Target: cpu.SyscallTarget(4), Kind: cpu.KindSyscall, Taken: true},
		{Cycle: 300, PC: 0x8058, Target: 0x8040, Kind: cpu.KindDirect, Taken: true},
		{Cycle: 340, PC: 0x8044, Target: 0x8100, Kind: cpu.KindCall, Taken: true},
	}

	// Stage 1: PTM packetises retired branches (branch-broadcast mode).
	enc := ptm.NewEncoder(ptm.Config{BranchBroadcast: true})
	port := ptm.NewPort(ptm.PortConfig{DrainThreshold: 16})
	fmt.Println("== PTM packetisation ==")
	var lastAt sim.Time
	var encBuf []byte
	for _, ev := range events {
		at := sim.CPUClock.Duration(ev.Cycle)
		lastAt = at
		bytes := enc.EncodeInto(encBuf[:0], ev)
		encBuf = bytes
		fmt.Printf("  branch pc=%#06x -> %#010x taken=%-5v  %d bytes: % x\n",
			ev.PC, ev.Target, ev.Taken, len(bytes), bytes)
		port.Push(at, bytes)
	}
	port.Push(lastAt, enc.Flush())
	port.Flush(lastAt)

	// Stage 2: the output port releases held-back bytes to the TPIU.
	// TakeInto is the hand-off API: it appends into a caller-owned buffer,
	// so a loop recycling `released[:0]` drains without allocating.
	fmtr := tpiu.NewFormatter(tpiu.Config{})
	released := port.TakeInto(nil)
	fmt.Printf("\n== PTM port release (threshold holds bytes back) ==\n")
	fmt.Printf("  %d bytes released, first at %v, last at %v\n",
		len(released), released[0].At, released[len(released)-1].At)
	for _, tb := range released {
		fmtr.Push(tb.At, tb.B)
	}
	fmtr.Flush(lastAt)

	// Stage 3: TPIU frames on the 32-bit trace port.
	words := fmtr.TakeInto(nil)
	fmt.Printf("\n== TPIU framing ==\n  %d frames, %d port words\n", fmtr.Frames(), len(words))

	// Stage 4: IGM — TA decode, mapper filtering, vector generation.
	mapper := igm.NewAddressMap()
	mapper.Add(0x8040)
	mapper.Add(0x8100)
	mapper.AddSyscalls() // let kernel entries through too
	g := igm.New(igm.Config{Mapper: mapper, Window: 3})
	for _, w := range words {
		g.FeedWord(w)
	}
	fmt.Printf("\n== IGM ==\n")
	st := g.Stats()
	fmt.Printf("  decoded %d packets, %d branch addresses; %d accepted, %d filtered\n",
		st.Packets, st.Branches, st.Accepted, st.Filtered)
	for _, v := range g.TakeInto(nil) {
		fmt.Printf("  vector #%d at %v: classes %v (completed by %#010x)\n",
			v.Seq, v.At, v.Classes, v.Addr)
	}
	fmt.Println("\nnote the vector timestamps: retirement -> vector is dominated by the")
	fmt.Println("PTM hold-back (Fig 7's step 1); the IVG itself adds only 16ns (step 2).")
}
