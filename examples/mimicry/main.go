// Mimicry: the attack model matters. The paper emulates attacks by
// "randomly inserting legitimate branch data in normal traces"; the LSTM
// branch models it builds on ([8]) are explicitly motivated by *mimicry
// resistance* — attackers who replay whole legitimate code paths instead
// of random gadgets. This example runs both attack styles against the same
// deployment and compares the detector's smoothed scores: random insertion
// breaks sequential structure everywhere, segment replay only at the two
// splice points.
//
//	go run ./examples/mimicry
package main

import (
	"fmt"
	"log"

	"rtad/internal/core"
	"rtad/internal/ml"
	"rtad/internal/workload"
)

func main() {
	bench, _ := workload.ByName("403.gcc")
	dep, err := core.Train(core.DefaultTrainConfig(bench, core.ModelLSTM))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("deployment: LSTM on %s, threshold %.3f\n\n", bench.Name, dep.LSTM.Threshold)

	for _, tc := range []struct {
		name    string
		mimicry bool
	}{
		{"random insertion (paper's emulation)", false},
		{"mimicry segment replay", true},
	} {
		const instr = 4_000_000
		s, err := core.Open(core.Deployments{dep},
			core.WithConfig(core.PipelineConfig{CUs: 5}),
			core.WithAttack(core.AttackSpec{Seed: 11, Mimicry: tc.mimicry}.Resolve(instr)))
		if err != nil {
			log.Fatal(err)
		}
		res, err := s.Detect(instr)
		if err != nil {
			log.Fatal(err)
		}
		// Peak smoothed score over the post-attack window.
		peak := int32(0)
		if res.First != nil && res.First.Rec.Judgment.EwmaQ > peak {
			peak = res.First.Rec.Judgment.EwmaQ
		}
		fmt.Printf("%-38s detected=%-5v judgment latency=%v first-ewma=%.3f\n",
			tc.name, res.Detected, res.Latency, ml.FromQ(res.First.Rec.Judgment.EwmaQ))
	}
	fmt.Println("\nthe judgment latency (the hardware quantity of Fig 8) is identical for")
	fmt.Println("both: the pipeline does not care what the data means. what changes is")
	fmt.Println("whether the model's score crosses the threshold — mimicry is the ML")
	fmt.Println("problem, real-time delivery is the architecture problem RTAD solves.")
}
