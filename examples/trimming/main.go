// Trimming walkthrough: runs the Fig 4 flow — simulate the deployed ML
// models on the full MIAOW-style core with HDL-block coverage, merge, trim,
// verify — then shows where the 82% area saving comes from by category, and
// demonstrates the safety net: a kernel touching a trimmed block traps.
//
//	go run ./examples/trimming
package main

import (
	"fmt"
	"log"

	"rtad/internal/core"
	"rtad/internal/gpu"
	"rtad/internal/trim"
	"rtad/internal/workload"
)

func main() {
	// Train the two deployed models (small budgets; any benchmark's
	// models exercise the same datapaths).
	bench, _ := workload.ByName("445.gobmk")
	ecfg := core.DefaultTrainConfig(bench, core.ModelELM)
	ecfg.TrainInstr = 12_000_000
	elmDep, err := core.Train(ecfg)
	if err != nil {
		log.Fatal(err)
	}
	lcfg := core.DefaultTrainConfig(bench, core.ModelLSTM)
	lstmDep, err := core.Train(lcfg)
	if err != nil {
		log.Fatal(err)
	}

	// Run the four-step flow.
	res, err := trim.Run(trim.StandardWorkloads(elmDep.ELM, lstmDep.LSTM, 10))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("coverage: %d of %d HDL blocks exercised; %d trimmed; verified=%v\n\n",
		res.Coverage.Count(), int(gpu.NumBlocks), len(res.Trimmed), res.Verified)

	// Where the area goes, by block category.
	type bucket struct{ keptL, keptF, cutL, cutF int }
	cats := map[gpu.Category]*bucket{}
	names := map[gpu.Category]string{
		gpu.CatInfra: "infrastructure", gpu.CatDecode: "decoders",
		gpu.CatALU: "execution units", gpu.CatMem: "memory path", gpu.CatOther: "other",
	}
	for _, b := range gpu.Blocks() {
		bk := cats[b.Cat]
		if bk == nil {
			bk = &bucket{}
			cats[b.Cat] = bk
		}
		if res.Coverage[b.ID] {
			bk.keptL += b.LUTs
			bk.keptF += b.FFs
		} else {
			bk.cutL += b.LUTs
			bk.cutF += b.FFs
		}
	}
	fmt.Println("per-category disposition (LUTs+FFs kept / trimmed):")
	for cat := gpu.CatInfra; cat <= gpu.CatOther; cat++ {
		bk := cats[cat]
		if bk == nil {
			continue
		}
		fmt.Printf("  %-16s kept %7d   trimmed %7d\n",
			names[cat], bk.keptL+bk.keptF, bk.cutL+bk.cutF)
	}
	fmt.Printf("\nMIAOW %d -> ML-MIAOW %d (-%0.f%%)  |  MIAOW2.0-style trim: %d (-%0.f%%)\n",
		res.MIAOW.Sum(), res.MLMIAOW.Sum(), 100*res.MLMIAOW.Reduction(res.MIAOW),
		res.MIAOW20.Sum(), 100*res.MIAOW20.Reduction(res.MIAOW))
	fmt.Printf("performance per area vs MIAOW2.0: %.1fx (paper: 3.2x)\n\n", res.PerfPerAreaVsMIAOW20())

	// Safety net: code the coverage never saw cannot run on the trimmed
	// core — it traps instead of silently computing garbage.
	dev := gpu.NewDevice(1024, 1)
	dev.SetTrim(res.Coverage)
	k := gpu.MustAssemble("float-ish", `
		v_mul v1, v0, v0   ; integer multiply: fine, the models use it
		s_endpgm
	`)
	if _, err := dev.Run(gpu.Dispatch{Kernel: k}); err != nil {
		log.Fatalf("unexpected trap: %v", err)
	}
	fmt.Println("kernel using covered blocks runs on the trimmed core: ok")
}
