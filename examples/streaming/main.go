// Example streaming shows the incremental detection API: a core.Session is
// stepped through the victim in slices, judgments are consumed live as the
// inference engine produces them, and the attack is armed mid-run — the
// capabilities the batch RunDetection wrapper hides.
//
// Run with:
//
//	go run ./examples/streaming
package main

import (
	"fmt"
	"log"

	"rtad/internal/core"
	"rtad/internal/workload"
)

func main() {
	p, ok := workload.ByName("458.sjeng")
	if !ok {
		log.Fatal("benchmark not found")
	}

	// Train the LSTM branch model on a normal run (a small budget keeps
	// the example quick; real deployments use DefaultTrainConfig as-is).
	cfg := core.DefaultTrainConfig(p, core.ModelLSTM)
	cfg.TrainInstr = 1_200_000
	dep, err := core.Train(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trained LSTM on %s: %d windows, IGM table %d entries\n",
		p.Name, dep.TrainWindows, dep.Mapper.Size())

	s, err := core.Open(core.Deployments{dep},
		core.WithConfig(core.PipelineConfig{CUs: 5, Stride: 512}))
	if err != nil {
		log.Fatal(err)
	}

	// Stream the victim in 200k-instruction slices, consuming judgments as
	// they complete. Midway, arm the attack: a burst of legitimate branch
	// events replayed out of context, firing 1000 taken transfers later.
	const (
		slices   = 10
		perSlice = 200_000
	)
	total := 0
	for i := 0; i < slices; i++ {
		if i == slices/2 {
			spec := core.AttackSpec{TriggerBranch: 1000, BurstLen: 16384, Seed: 7}
			if err := s.Inject(spec); err != nil {
				log.Fatal(err)
			}
			fmt.Printf("-- slice %d: attack armed\n", i)
		}
		if _, err := s.Step(perSlice); err != nil {
			log.Fatal(err)
		}
		batch := s.Results()
		total += len(batch)
		fmt.Printf("slice %d: %7d instrs, %2d new judgments (%d total), session time %v\n",
			i, s.Instret(), len(batch), total, s.Now())
	}

	// Drain flushes the trace chain and delivers the inference tail.
	if err := s.Drain(); err != nil {
		log.Fatal(err)
	}
	tail := s.Results()
	fmt.Printf("drain: %d tail judgments\n", len(tail))

	res, err := s.Summary()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nattack injected at %v\n", res.InjectTime)
	fmt.Printf("first post-attack judgment after %v\n", res.Latency)
	if res.Detected {
		fmt.Printf("anomaly IRQ at %v (%v after injection)\n",
			res.IRQTime, res.IRQTime-res.InjectTime)
	} else {
		fmt.Println("no anomaly IRQ within the run")
	}
	for _, st := range s.Stages() {
		fmt.Printf("stage %-5s max depth %4d, overflows %d\n",
			st.Name, st.MaxDepth, st.Overflows)
	}
}
