// ELM on system calls: the paper's lightweight detector consumes windows of
// kernel-service IDs (after Creech & Hu [2]). This example trains it on a
// call-heavy benchmark, then contrasts detection on the original MIAOW
// (one compute unit fits the FPGA) with the trimmed ML-MIAOW (five CUs) —
// the Fig 8 ELM comparison, where latency is constant per engine because
// syscalls are sparse enough that no queueing occurs.
//
//	go run ./examples/elm-syscalls
package main

import (
	"fmt"
	"log"

	"rtad/internal/core"
	"rtad/internal/workload"
)

func main() {
	bench, _ := workload.ByName("400.perlbench")
	fmt.Printf("training ELM (syscall windows) on %s — this runs a long normal trace...\n", bench.Name)
	dep, err := core.Train(core.DefaultTrainConfig(bench, core.ModelELM))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%d training windows, threshold %.3f\n\n", dep.TrainWindows, dep.ELM.Threshold)

	for _, cfg := range []struct {
		name string
		cus  int
	}{
		{"MIAOW (1 CU)", 1},
		{"ML-MIAOW (5 CUs)", 5},
	} {
		const instr = 12_000_000
		s, err := core.Open(core.Deployments{dep},
			core.WithConfig(core.PipelineConfig{CUs: cfg.cus}),
			core.WithAttack(core.AttackSpec{Seed: 7}.Resolve(instr)))
		if err != nil {
			log.Fatal(err)
		}
		res, err := s.Detect(instr)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-18s judgment latency %10v  drops %d  detected %v\n",
			cfg.name, res.Latency, res.Dropped, res.Detected)
	}
	fmt.Println("\n(the paper reports 13.83us -> 4.21us for this pair on its FPGA prototype;")
	fmt.Println(" absolute numbers differ on this simulated substrate, the ratio is the point)")
}
