// Example remote shows the serving path end to end: an rtadd-style server
// is started in-process on a loopback port, a client captures a victim's
// raw PTM trace (the attack burst spliced in by the server, exactly like
// the in-process experiments), streams it over rtad-wire in small chunks,
// and prints judgments as the remote inference engine produces them.
//
// Run with:
//
//	go run ./examples/remote
//
// Point -addr at a running rtadd daemon to skip the in-process server.
package main

import (
	"flag"
	"fmt"
	"log"
	"net"

	"rtad/internal/core"
	"rtad/internal/cpu"
	"rtad/internal/ptm"
	"rtad/internal/serve"
	"rtad/internal/workload"
)

func main() {
	var (
		addr  = flag.String("addr", "", "connect to this rtadd server instead of starting one in-process")
		burst = flag.Int("burst", 16384, "attack burst length (0 = no attack)")
		chunk = flag.Int("chunk", 4096, "trace bytes per wire chunk")
	)
	flag.Parse()

	const bench = "458.sjeng"
	p, ok := workload.ByName(bench)
	if !ok {
		log.Fatal("benchmark not found")
	}

	target := *addr
	if target == "" {
		target = startServer(p)
	}

	// Capture the victim's branch-broadcast PTM stream, as a CoreSight
	// probe would see it (cmd/tracegen does the same).
	prog, err := p.Generate()
	if err != nil {
		log.Fatal(err)
	}
	enc := ptm.NewEncoder(ptm.Config{BranchBroadcast: true})
	var stream []byte
	c := cpu.New(prog, cpu.Config{Mode: cpu.ModeRTAD, Sink: cpu.SinkFunc(func(ev cpu.BranchEvent) int64 {
		stream = enc.EncodeInto(stream, ev)
		return 0
	})})
	if _, err := c.Run(2_000_000); err != nil {
		log.Fatal(err)
	}
	stream = append(stream, enc.Flush()...)
	fmt.Printf("captured %d trace bytes from %s\n", len(stream), bench)

	hello := serve.Hello{Benchmark: bench, Model: "lstm"}
	if *burst > 0 {
		// The server splices the burst into the replayed stream after 1000
		// taken transfers — same semantics as core.Session.Inject.
		hello.Attack = &serve.AttackSpec{TriggerBranch: 1000, BurstLen: *burst, Seed: 7}
	}

	anomalies := 0
	cl, err := serve.Dial(target, hello, func(j serve.Judgment) {
		if j.Anomaly {
			anomalies++
			if anomalies <= 3 {
				fmt.Printf("  anomaly: vector %d, latency %d ps\n", j.Seq, j.Latency())
			}
		}
	})
	if err != nil {
		log.Fatal(err)
	}
	w := cl.Welcome()
	fmt.Printf("session %s: %s/%s backend=%s window=%d gap=%d model_version=%d\n",
		w.Session, w.Benchmark, w.Model, w.Backend, w.Window, w.GapCycles, cl.ModelVersion())

	for off := 0; off < len(stream); off += *chunk {
		end := off + *chunk
		if end > len(stream) {
			end = len(stream)
		}
		if err := cl.Send(stream[off:end]); err != nil {
			log.Fatal(err)
		}
	}
	sum, err := cl.Finish()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\nsummary: %d judged, %d dropped, %d events from %d bytes\n",
		sum.Judged, sum.Dropped, sum.Events, sum.TraceBytes)
	fmt.Printf("%d anomalous judgments\n", anomalies)
	if d := sum.Detection; d != nil {
		fmt.Printf("attack injected at %d ps; first judgment latency %d ps; detected=%v\n",
			d.InjectTimePS, d.LatencyPS, d.Detected)
	}
}

// startServer trains a small LSTM deployment and serves it on a loopback
// port, returning the address.
func startServer(p workload.Profile) string {
	cfg := core.DefaultTrainConfig(p, core.ModelLSTM)
	cfg.TrainInstr = 1_200_000 // small budget keeps the example quick
	fmt.Printf("training LSTM on %s...\n", p.Name)
	dep, err := core.Train(cfg)
	if err != nil {
		log.Fatal(err)
	}
	srv := serve.New(nil)
	srv.Deploy(dep)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go srv.Serve(ln)
	fmt.Printf("in-process rtadd on %s\n", ln.Addr())
	return ln.Addr().String()
}
