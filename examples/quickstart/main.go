// Quickstart: train an anomaly detector on a benchmark's normal branch
// behaviour, deploy it on the simulated RTAD MPSoC, inject the paper's
// attack, and watch the judgment come back through the interrupt manager.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"rtad/internal/core"
	"rtad/internal/workload"
)

func main() {
	// 1. Pick a monitored application. The workload package generates
	// SPEC CINT2006-like programs for the simulated host CPU.
	bench, _ := workload.ByName("458.sjeng")
	fmt.Printf("monitored application: %s\n", bench.Name)

	// 2. Offline phase (§III-C): run the application normally, extract
	// branch traces, train the LSTM branch model, calibrate the anomaly
	// threshold, and configure the IGM address mapper.
	dep, err := core.Train(core.DefaultTrainConfig(bench, core.ModelLSTM))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trained LSTM on %d windows; IGM table has %d branch targets; threshold %.3f\n",
		dep.TrainWindows, dep.Mapper.Size(), dep.LSTM.Threshold)

	// 3. Online phase: the victim runs with CoreSight tracing into the
	// MLPU (5 trimmed ML-MIAOW compute units). Partway through, an
	// attacker diverts control flow by replaying legitimate branches out
	// of context. Open is the single entry point: deployments plus
	// options; Detect runs the session to completion.
	const instr = 6_000_000
	s, err := core.Open(core.Deployments{dep},
		core.WithConfig(core.PipelineConfig{CUs: 5}),
		core.WithAttack(core.AttackSpec{Seed: 42}.Resolve(instr)))
	if err != nil {
		log.Fatal(err)
	}
	res, err := s.Detect(instr)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\nattack injected at %v into the run\n", res.InjectTime)
	fmt.Printf("first judgment on attack-era behaviour: %v after the branch retired\n", res.Latency)
	if res.Detected {
		fmt.Printf("anomaly interrupt raised at %v (%v after the attack began)\n",
			res.IRQTime, res.IRQTime-res.InjectTime)
	} else {
		fmt.Println("no anomaly interrupt (try a longer run or larger burst)")
	}
	fmt.Printf("pipeline: %d vectors judged, %d dropped at the MCM FIFO\n",
		res.Judged, res.Dropped)
}
