// Dual models: §II's distinctive claim is that RTAD "is able to support
// many different ML models whereas others support fixed models... users
// may realize and deploy several models at their disposal". This example
// deploys the syscall ELM and the branch LSTM *simultaneously* on one
// MLPU: each gets its own IGM vector-generation context, and their MCM
// front-ends time-multiplex the single compute engine — so one attack is
// judged twice, from two feature views, with visible engine contention.
//
//	go run ./examples/dual-models
package main

import (
	"fmt"
	"log"

	"rtad/internal/core"
	"rtad/internal/workload"
)

func main() {
	bench, _ := workload.ByName("400.perlbench")
	fmt.Printf("training both detectors on %s...\n", bench.Name)
	elm, err := core.Train(core.DefaultTrainConfig(bench, core.ModelELM))
	if err != nil {
		log.Fatal(err)
	}
	lstm, err := core.Train(core.DefaultTrainConfig(bench, core.ModelLSTM))
	if err != nil {
		log.Fatal(err)
	}

	// Two deployments in one Open: the ELM takes lane 0, the LSTM lane 1,
	// and their MCM front-ends time-multiplex the single engine.
	const instr = 10_000_000
	sess, err := core.Open(core.Deployments{elm, lstm},
		core.WithConfig(core.PipelineConfig{CUs: 5}),
		core.WithAttack(core.AttackSpec{Seed: 21}.Resolve(instr)))
	if err != nil {
		log.Fatal(err)
	}
	dual, err := sess.DetectDual(instr)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\nattack injected at %v; both models judge the same behaviour:\n\n", dual.ELM.InjectTime)
	show := func(name string, r *core.DetectionResult) {
		fmt.Printf("%-6s first judgment %10v  mean %10v  detected=%-5v  judged=%d\n",
			name, r.Latency, r.MeanLatency, r.Detected, r.Judged)
	}
	show("ELM", dual.ELM)
	show("LSTM", dual.LSTM)

	// Contention check: the LSTM solo on the same victim.
	soloSess, err := core.Open(core.Deployments{lstm},
		core.WithConfig(core.PipelineConfig{CUs: 5}),
		core.WithAttack(core.AttackSpec{Seed: 21}.Resolve(instr)))
	if err != nil {
		log.Fatal(err)
	}
	solo, err := soloSess.Detect(instr)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nLSTM mean latency solo %v vs shared-engine %v (+%v from contention)\n",
		solo.MeanLatency, dual.LSTM.MeanLatency, dual.LSTM.MeanLatency-solo.MeanLatency)
	fmt.Println("\nan attack that evades one feature view (e.g. keeps syscalls clean) can")
	fmt.Println("still trip the other — the reason the paper values model flexibility.")
}
