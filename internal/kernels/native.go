package kernels

import (
	"fmt"

	"rtad/internal/ml"
)

// nativeBackend runs the shared fixed-point forward pass (internal/ml)
// instead of interpreting the GPU kernels. All model parameters and scoring
// state stay at the canonical device-memory addresses — the input vector,
// the recurrent LSTM state, the EWMA word and the Out triple — so a native
// step and a GPU step are indistinguishable afterwards, which is what lets
// the calibration fallback interleave the two paths freely.
//
// Timing comes from the calibration table: deployed kernels cost the same
// cycles for every input (the loop bounds and branch pattern are fixed per
// wave), so replaying the recorded per-(model, window, CUs) cost keeps the
// MCM WAIT_DONE timeline — and hence FIFO occupancy, drops and the whole
// judgment stream — bit-identical to the GPU backend. Shapes missing from
// the table fall back to one cycle-accurate inference that records itself.
type nativeBackend struct {
	name  string
	key   CalKey
	calib *Calibration
	gpu   Backend // cycle-accurate engine over the same device
	win   int
	quant func(window []int32) ([]uint32, error)
	step  func(in []uint32) Judgment
}

func (n *nativeBackend) Name() string { return n.name }

func (n *nativeBackend) Window() int { return n.win }

func (n *nativeBackend) Infer(window []int32) (Judgment, int64, error) {
	cycles, ok := n.calib.Lookup(n.key)
	if !ok {
		j, cyc, err := n.gpu.Infer(window)
		if err == nil {
			n.calib.Record(n.key, cyc)
		}
		return j, cyc, err
	}
	in, err := n.quant(window)
	if err != nil {
		return Judgment{}, 0, err
	}
	return n.step(in), cycles, nil
}

func newNativeBackend(name string, s Spec) (Backend, error) {
	model, win, err := s.kind()
	if err != nil {
		return nil, err
	}
	if s.Dev == nil {
		return nil, fmt.Errorf("kernels: %s backend needs a device", name)
	}
	eng, err := newGPUBackend(Spec{Dev: s.Dev, ELM: s.ELM, LSTM: s.LSTM})
	if err != nil {
		return nil, err
	}
	calib := s.Calibration
	if calib == nil {
		calib = NewCalibration()
	}
	n := &nativeBackend{
		name:  name,
		key:   CalKey{Model: model, Window: win, CUs: s.Dev.NumCU},
		calib: calib,
		gpu:   eng,
		win:   win,
	}
	mem := s.Dev.Mem
	switch e := eng.(type) {
	case *ELMEngine:
		params := ELMParamsView(mem)
		n.quant = e.InputWords
		n.step = func(in []uint32) Judgment {
			copy(mem[ELMIn:ELMIn+ELMWindow], in)
			margin := params.MarginQ(in)
			ewma := ml.EwmaStepQ(int32(mem[ELMEwma]), margin, e.alphaQ)
			mem[ELMEwma] = uint32(ewma)
			j := Judgment{Anomaly: ewma > e.thrQ, MarginQ: margin, EwmaQ: ewma}
			writeOut(mem[ELMOut:], j)
			return j
		}
	case *LSTMEngine:
		params := LSTMParamsView(mem)
		h := make([]int32, LSTMHidden)
		c := make([]int32, LSTMHidden)
		n.quant = e.InputWords
		n.step = func(in []uint32) Judgment {
			copy(mem[LSTMIn:LSTMIn+LSTMWindow], in)
			for i := 0; i < LSTMHidden; i++ {
				h[i] = int32(mem[LSTMH+i])
				c[i] = int32(mem[LSTMC+i])
			}
			margin := params.StepQ(h, c, in)
			for i := 0; i < LSTMHidden; i++ {
				mem[LSTMH+i] = uint32(h[i])
				mem[LSTMC+i] = uint32(c[i])
			}
			ewma := ml.EwmaStepQ(int32(mem[LSTMEwma]), margin, e.alphaQ)
			mem[LSTMEwma] = uint32(ewma)
			j := Judgment{Anomaly: ewma > e.thrQ, MarginQ: margin, EwmaQ: ewma}
			writeOut(mem[LSTMOut:], j)
			return j
		}
	}
	if name == BackendNativeCalibrated {
		// One-time pass on a scratch device: the hot path never simulates.
		if err := calib.CalibrateSpec(s); err != nil {
			return nil, err
		}
	}
	return n, nil
}

// writeOut mirrors the kernels' judgment stores so the MCM RX engine reads
// the same words whichever path produced them.
func writeOut(out []uint32, j Judgment) {
	out[0] = 0
	if j.Anomaly {
		out[0] = 1
	}
	out[1] = uint32(j.MarginQ)
	out[2] = uint32(j.EwmaQ)
}
