package kernels

import (
	"fmt"

	"rtad/internal/ml"
)

// nativeBackend runs the shared fixed-point forward pass (internal/ml)
// instead of interpreting the GPU kernels. All model parameters and scoring
// state stay at the canonical device-memory addresses — the input vector,
// the recurrent LSTM state, the EWMA word and the Out triple — so a native
// step and a GPU step are indistinguishable afterwards, which is what lets
// the calibration fallback interleave the two paths freely.
//
// Timing comes from the calibration table: deployed kernels cost the same
// cycles for every input (the loop bounds and branch pattern are fixed per
// wave), so replaying the recorded per-(model, window, CUs) cost keeps the
// MCM WAIT_DONE timeline — and hence FIFO occupancy, drops and the whole
// judgment stream — bit-identical to the GPU backend. Shapes missing from
// the table fall back to one cycle-accurate inference that records itself.
//
// The model kind, parameter views and state addresses are explicit fields
// (rather than closures) so the cross-instance GroupRunner can gather each
// member's state, run one shared-weight matmul, and scatter results back.
type nativeBackend struct {
	name  string
	key   CalKey
	calib *Calibration
	gpu   Backend // cycle-accurate engine over the same device
	win   int
	mem   []uint32 // the backend's device memory (params + state)

	alphaQ int32
	thrQ   int32

	// Exactly one of elm/lstm is non-nil.
	elm  *elmNative
	lstm *lstmNative

	// calCycles caches the first successful calibration lookup: the value
	// is immutable once recorded, and skipping the table's RLock on every
	// inference matters at serving rates.
	cycles   int64
	cyclesOK bool

	inBuf []uint32 // quantised-window scratch, one inference at a time
}

type elmNative struct {
	model  *ml.ELM
	params *ml.ELMParamsQ
}

type lstmNative struct {
	model  *ml.LSTM
	params *ml.LSTMParamsQ
	h, c   []int32 // single-step scratch mirroring mem[LSTMH/LSTMC]
}

func (n *nativeBackend) Name() string { return n.name }

func (n *nativeBackend) Window() int { return n.win }

// calCycles returns the calibrated per-inference cost, caching the table
// hit so the hot path stops touching the shared table's lock.
func (n *nativeBackend) calCycles() (int64, bool) {
	if n.cyclesOK {
		return n.cycles, true
	}
	cyc, ok := n.calib.Lookup(n.key)
	if ok {
		n.cycles, n.cyclesOK = cyc, true
	}
	return cyc, ok
}

// quantInto validates and quantises window into dst (win words), the
// allocation-free core of the engines' InputWords.
func (n *nativeBackend) quantInto(dst []uint32, window []int32) error {
	if len(window) != n.win {
		return fmt.Errorf("kernels: %s window length %d, want %d", n.key.Model, len(window), n.win)
	}
	vocab := int32(ELMVocab)
	if n.lstm != nil {
		vocab = LSTMVocab
	}
	for i, c := range window {
		if c < 0 || c >= vocab {
			return fmt.Errorf("kernels: class %d outside %s vocab", c, n.key.Model)
		}
		dst[i] = uint32(c)
	}
	return nil
}

// step runs one native inference over the quantised input, updating the
// canonical device-memory state exactly as the kernels would.
func (n *nativeBackend) step(in []uint32) Judgment {
	mem := n.mem
	if e := n.elm; e != nil {
		copy(mem[ELMIn:ELMIn+ELMWindow], in)
		margin := e.params.MarginQ(in)
		ewma := ml.EwmaStepQ(int32(mem[ELMEwma]), margin, n.alphaQ)
		mem[ELMEwma] = uint32(ewma)
		j := Judgment{Anomaly: ewma > n.thrQ, MarginQ: margin, EwmaQ: ewma}
		writeOut(mem[ELMOut:], j)
		return j
	}
	l := n.lstm
	copy(mem[LSTMIn:LSTMIn+LSTMWindow], in)
	for i := 0; i < LSTMHidden; i++ {
		l.h[i] = int32(mem[LSTMH+i])
		l.c[i] = int32(mem[LSTMC+i])
	}
	margin := l.params.StepQ(l.h, l.c, in)
	for i := 0; i < LSTMHidden; i++ {
		mem[LSTMH+i] = uint32(l.h[i])
		mem[LSTMC+i] = uint32(l.c[i])
	}
	ewma := ml.EwmaStepQ(int32(mem[LSTMEwma]), margin, n.alphaQ)
	mem[LSTMEwma] = uint32(ewma)
	j := Judgment{Anomaly: ewma > n.thrQ, MarginQ: margin, EwmaQ: ewma}
	writeOut(mem[LSTMOut:], j)
	return j
}

// FixedCost implements FixedCoster: once the shape is calibrated every
// inference replays the same recorded cycle cost.
func (n *nativeBackend) FixedCost() (int64, bool) { return n.calCycles() }

func (n *nativeBackend) Infer(window []int32) (Judgment, int64, error) {
	cycles, ok := n.calCycles()
	if !ok {
		j, cyc, err := n.gpu.Infer(window)
		if err == nil {
			n.calib.Record(n.key, cyc)
		}
		return j, cyc, err
	}
	if err := n.quantInto(n.inBuf, window); err != nil {
		return Judgment{}, 0, err
	}
	return n.step(n.inBuf), cycles, nil
}

// InferBatch advances this backend's own stream by len(windows) steps. For
// the ELM the margins are state-independent, so one MarginBatchQ matmul
// computes them all before the EWMA chain folds them in order; the LSTM's
// consecutive steps chain through h/c and must run sequentially (the
// matmul pays off across sessions — see GroupRunner). Uncalibrated shapes
// loop Infer: the first falls back to the GPU sim and records, the rest
// run native.
func (n *nativeBackend) InferBatch(windows [][]int32) ([]Judgment, []int64, error) {
	cycles, ok := n.calCycles()
	if !ok || n.elm == nil {
		return InferLoop(n, windows)
	}
	nw := len(windows)
	block := make([]uint32, nw*ELMWindow)
	for i, w := range windows {
		if err := n.quantInto(block[i*ELMWindow:(i+1)*ELMWindow], w); err != nil {
			return nil, nil, fmt.Errorf("kernels: batch window %d: %w", i, err)
		}
	}
	margins := make([]int32, nw)
	n.elm.params.MarginBatchQ(block, nw, margins)
	js := make([]Judgment, nw)
	costs := make([]int64, nw)
	mem := n.mem
	for i := 0; i < nw; i++ {
		copy(mem[ELMIn:ELMIn+ELMWindow], block[i*ELMWindow:(i+1)*ELMWindow])
		ewma := ml.EwmaStepQ(int32(mem[ELMEwma]), margins[i], n.alphaQ)
		mem[ELMEwma] = uint32(ewma)
		js[i] = Judgment{Anomaly: ewma > n.thrQ, MarginQ: margins[i], EwmaQ: ewma}
		writeOut(mem[ELMOut:], js[i])
		costs[i] = cycles
	}
	return js, costs, nil
}

func newNativeBackend(name string, s Spec) (Backend, error) {
	model, win, err := s.kind()
	if err != nil {
		return nil, err
	}
	if s.Dev == nil {
		return nil, fmt.Errorf("kernels: %s backend needs a device", name)
	}
	eng, err := newGPUBackend(Spec{Dev: s.Dev, ELM: s.ELM, LSTM: s.LSTM})
	if err != nil {
		return nil, err
	}
	calib := s.Calibration
	if calib == nil {
		calib = NewCalibration()
	}
	n := &nativeBackend{
		name:  name,
		key:   CalKey{Model: model, Window: win, CUs: s.Dev.NumCU},
		calib: calib,
		gpu:   eng,
		win:   win,
		mem:   s.Dev.Mem,
		inBuf: make([]uint32, win),
	}
	switch e := eng.(type) {
	case *ELMEngine:
		n.alphaQ, n.thrQ = e.alphaQ, e.thrQ
		n.elm = &elmNative{model: e.Model, params: ELMParamsView(n.mem)}
	case *LSTMEngine:
		n.alphaQ, n.thrQ = e.alphaQ, e.thrQ
		n.lstm = &lstmNative{
			model:  e.Model,
			params: LSTMParamsView(n.mem),
			h:      make([]int32, LSTMHidden),
			c:      make([]int32, LSTMHidden),
		}
	}
	if name == BackendNativeCalibrated {
		// One-time pass on a scratch device: the hot path never simulates.
		if err := calib.CalibrateSpec(s); err != nil {
			return nil, err
		}
	}
	return n, nil
}

// writeOut mirrors the kernels' judgment stores so the MCM RX engine reads
// the same words whichever path produced them.
func writeOut(out []uint32, j Judgment) {
	out[0] = 0
	if j.Anomaly {
		out[0] = 1
	}
	out[1] = uint32(j.MarginQ)
	out[2] = uint32(j.EwmaQ)
}
