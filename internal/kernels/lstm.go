package kernels

import (
	"fmt"

	"rtad/internal/gpu"
	"rtad/internal/ml"
)

// LSTM deployment shape, frozen by the kernel code: 15 input positions over
// a 64-class branch vocabulary, 16-wide embeddings, 32 hidden units. The
// four gates are computed by four independent wavefronts — one per CU on
// ML-MIAOW — followed by a state-update/readout wavefront.
const (
	LSTMWindow = 16
	LSTMVocab  = 64
	LSTMEmbed  = 16
	LSTMHidden = 32
	lstmXH     = LSTMEmbed + LSTMHidden // gate input width
)

// LSTM device-memory layout (word addresses).
const (
	LSTMSigLUT  = 16
	LSTMTanhLUT = LSTMSigLUT + ml.LUTSize
	LSTMPosW    = LSTMTanhLUT + ml.LUTSize
	LSTMEmb     = LSTMPosW + LSTMWindow - 1
	LSTMWg      = LSTMEmb + LSTMVocab*LSTMEmbed
	LSTMBg      = LSTMWg + ml.NumGates*LSTMHidden*lstmXH
	LSTMOutW    = LSTMBg + ml.NumGates*LSTMHidden
	LSTMOutB    = LSTMOutW + LSTMHidden*LSTMVocab
	LSTMImgEnd  = LSTMOutB + LSTMVocab
	LSTMIn      = 12288
	LSTMGates   = 12416 // activated gates [4][Hidden]
	LSTMC       = 12608 // cell state
	LSTMH       = 12672 // hidden state
	LSTMOut     = 12800 // flag, margin, ewma
	LSTMEwma    = 12816
	LSTMMemEnd  = 12900
)

// lstmGateSrc computes one gate: wavefront g (= s15) builds the
// recency-weighted window embedding, concatenates the previous hidden
// state, runs its 32 gate rows over the 48-wide input, and applies the
// sigmoid (gates i,f,o) or tanh (gate g) LUT.
//
// SArgs: s0=Emb s1=PosW s2=In s3=Wg s4=Bg s5=SigLUT s6=TanhLUT s7=HState s8=Gates
const lstmGateSrc = `
	; ---- window embedding on 16 lanes (x[e]) ----
	s_setexec_cnt #16
	v_mov v1, #0
	s_mov s9, #0
xloop:
	s_add s10, s2, s9
	s_load s11, [s10+#0]     ; c_j
	s_lsl s12, s11, #4       ; c*Embed
	v_mov v2, s12
	v_add v2, v2, v0
	v_add v2, v2, s0
	flat_load v3, [v2+#0]    ; Emb[c][e]
	s_add s13, s1, s9
	s_load s14, [s13+#0]     ; posw[j]
	v_mac_q16 v1, v3, s14
	s_add s9, s9, #1
	s_cmp_lt s9, #15
	s_cbranch_scc1 xloop
	ds_write v1, [v0+#0]     ; xh[0..15] = x
	; ---- stage h_prev into xh[16..47] on 32 lanes ----
	s_setexec_cnt #32
	v_mov v4, s7
	v_add v4, v4, v0
	flat_load v5, [v4+#0]
	v_add v6, v0, #16
	ds_write v5, [v6+#0]
	; ---- gate rows: pre[r] = bg[r] + sum_k wg[r][k]*xh[k] ----
	s_lsl s9, s15, #5        ; g*Hidden
	v_mov v7, s9
	v_add v7, v7, v0         ; g*32 + r
	v_mov v8, #48
	v_mul v7, v7, v8
	v_add v7, v7, s3         ; &wg[g][r][0]
	v_mov v9, s9
	v_add v9, v9, v0
	v_add v9, v9, s4
	flat_load v10, [v9+#0]   ; acc = bg[g][r]
	s_mov s11, #0
bloop:
	ds_read v11, [s11+#0]    ; xh[k] broadcast
	flat_load v12, [v7+#0]   ; wg[g][r][k]
	v_mac_q16 v10, v12, v11
	v_add v7, v7, #1
	s_add s11, s11, #1
	s_cmp_lt s11, #48
	s_cbranch_scc1 bloop
	; ---- activation: tanh for gate 2, sigmoid otherwise ----
	s_cmp_eq s15, #2
	s_cbranch_scc1 use_tanh
	s_mov s12, s5
	s_branch act
use_tanh:
	s_mov s12, s6
act:
	v_add v13, v10, #2048
	v_asr v13, v13, #12
	v_add v13, v13, #128
	v_max v13, v13, #0
	v_min v13, v13, #255
	v_add v13, v13, s12
	flat_load v14, [v13+#0]
	v_mov v15, s9
	v_add v15, v15, v0
	v_add v15, v15, s8
	flat_store v14, [v15+#0]
	s_endpgm
`

// lstmUpdateSrc consumes the four activated gates: it updates the cell and
// hidden state (c' = f·c + i·g, h = o·tanh c'), computes the 64 class
// logits from the new hidden state, reduces to the margin score, folds the
// EWMA and writes the judgment.
//
// SArgs: s0=Gates s1=CState s2=HState s3=TanhLUT s4=OutW s5=OutB s6=In
//
//	s7=Out s8=ThresholdQ s9=AlphaQ s10=EwmaAddr
const lstmUpdateSrc = `
	; ---- state update on 32 lanes ----
	s_setexec_cnt #32
	v_mov v1, s0
	v_add v1, v1, v0
	flat_load v2, [v1+#0]     ; i
	flat_load v3, [v1+#32]    ; f
	flat_load v4, [v1+#64]    ; g
	flat_load v5, [v1+#96]    ; o
	v_mov v6, s1
	v_add v6, v6, v0
	flat_load v7, [v6+#0]     ; c_prev
	v_mul_q16 v8, v3, v7
	v_mul_q16 v9, v2, v4
	v_add v8, v8, v9          ; c'
	flat_store v8, [v6+#0]
	v_add v10, v8, #2048
	v_asr v10, v10, #12
	v_add v10, v10, #128
	v_max v10, v10, #0
	v_min v10, v10, #255
	v_add v10, v10, s3
	flat_load v11, [v10+#0]   ; tanh(c')
	v_mul_q16 v12, v5, v11    ; h
	v_mov v13, s2
	v_add v13, v13, v0
	flat_store v12, [v13+#0]
	ds_write v12, [v0+#0]     ; LDS h[0..31]
	; ---- readout on 64 lanes ----
	s_setexec_all
	v_mov v14, s5
	v_add v14, v14, v0
	flat_load v15, [v14+#0]   ; acc = outb[v]
	s_mov s11, #0
oloop:
	ds_read v16, [s11+#0]     ; h[k]
	s_lsl s12, s11, #6        ; k*Vocab
	v_mov v17, s12
	v_add v17, v17, v0
	v_add v17, v17, s4
	flat_load v18, [v17+#0]   ; outw[k][v]
	v_mac_q16 v15, v18, v16
	s_add s11, s11, #1
	s_cmp_lt s11, #32
	s_cbranch_scc1 oloop
	; ---- margin: max logit minus target logit ----
	ds_write v15, [v0+#64]    ; logits copy for target lookup
	ds_write v15, [v0+#128]   ; tree workspace
	s_setexec_cnt #32
	ds_read v19, [v0+#128]
	ds_read v20, [v0+#160]
	v_max v19, v19, v20
	ds_write v19, [v0+#128]
	s_setexec_cnt #16
	ds_read v19, [v0+#128]
	ds_read v20, [v0+#144]
	v_max v19, v19, v20
	ds_write v19, [v0+#128]
	s_setexec_cnt #8
	ds_read v19, [v0+#128]
	ds_read v20, [v0+#136]
	v_max v19, v19, v20
	ds_write v19, [v0+#128]
	s_setexec_cnt #4
	ds_read v19, [v0+#128]
	ds_read v20, [v0+#132]
	v_max v19, v19, v20
	ds_write v19, [v0+#128]
	s_setexec_cnt #2
	ds_read v19, [v0+#128]
	ds_read v20, [v0+#130]
	v_max v19, v19, v20
	ds_write v19, [v0+#128]
	s_setexec_cnt #1
	ds_read v19, [v0+#128]
	ds_read v20, [v0+#129]
	v_max v19, v19, v20       ; max logit
	s_load s13, [s6+#15]      ; target class
	ds_read v21, [s13+#64]    ; logits[target]
	v_sub v22, v19, v21       ; margin
	s_load s14, [s10+#0]
	v_mov v23, s14
	v_sub v24, v22, v23
	v_mul_q16 v24, v24, s9
	v_add v23, v23, v24       ; ewma'
	v_mov v25, s10
	flat_store v23, [v25+#0]
	v_mov v26, s8
	v_cmp_gt v23, v26
	v_mov v27, #1
	v_mov v28, #0
	v_cndmask v29, v27, v28
	v_mov v25, s7
	flat_store v29, [v25+#0]
	flat_store v22, [v25+#1]
	flat_store v23, [v25+#2]
	s_endpgm
`

// LSTMEngine runs LSTM inference on a device. The recurrent state lives in
// device memory between input vectors, exactly as the paper describes the
// model resident in ML-MIAOW's local memory.
type LSTMEngine struct {
	Dev     *gpu.Device
	Model   *ml.LSTM
	kGate   *gpu.Kernel
	kUpdate *gpu.Kernel
	alphaQ  int32
	thrQ    int32

	// Reference-implementation mirror state.
	refH      [LSTMHidden]int32
	refC      [LSTMHidden]int32
	refEwma   int32
	refParams *ml.LSTMParamsQ
}

// BuildLSTMImage quantises the model into the device image.
func BuildLSTMImage(m *ml.LSTM) ([]uint32, error) {
	cfg := m.Cfg
	if cfg.Window != LSTMWindow || cfg.Vocab != LSTMVocab || cfg.Embed != LSTMEmbed || cfg.Hidden != LSTMHidden {
		return nil, fmt.Errorf("kernels: LSTM shape %+v does not match the deployed kernel", cfg)
	}
	img := make([]uint32, LSTMImgEnd)
	copy(img[LSTMSigLUT:], ml.SigmoidLUT())
	copy(img[LSTMTanhLUT:], ml.TanhLUT())
	copy(img[LSTMPosW:], ml.QuantizeVec(ml.PosWeights(LSTMWindow)))
	for c := 0; c < LSTMVocab; c++ {
		for e := 0; e < LSTMEmbed; e++ {
			img[LSTMEmb+c*LSTMEmbed+e] = uint32(ml.ToQ(m.Emb.At(c, e)))
		}
	}
	for g := 0; g < ml.NumGates; g++ {
		for r := 0; r < LSTMHidden; r++ {
			base := LSTMWg + (g*LSTMHidden+r)*lstmXH
			for k := 0; k < lstmXH; k++ {
				img[base+k] = uint32(ml.ToQ(m.Wg[g].At(r, k)))
			}
			img[LSTMBg+g*LSTMHidden+r] = uint32(ml.ToQ(m.Bg[g][r]))
		}
	}
	for k := 0; k < LSTMHidden; k++ {
		for v := 0; v < LSTMVocab; v++ {
			img[LSTMOutW+k*LSTMVocab+v] = uint32(ml.ToQ(m.OutW.At(v, k)))
		}
	}
	for v := 0; v < LSTMVocab; v++ {
		img[LSTMOutB+v] = uint32(ml.ToQ(m.OutB[v]))
	}
	return img, nil
}

// NewLSTMEngine loads the model onto dev and zeroes the recurrent state.
func NewLSTMEngine(dev *gpu.Device, m *ml.LSTM) (*LSTMEngine, error) {
	if len(dev.Mem) < LSTMMemEnd {
		return nil, fmt.Errorf("kernels: device memory %d words, need %d", len(dev.Mem), LSTMMemEnd)
	}
	img, err := BuildLSTMImage(m)
	if err != nil {
		return nil, err
	}
	if err := dev.WriteWords(0, img); err != nil {
		return nil, err
	}
	for i := 0; i < LSTMHidden; i++ {
		dev.Mem[LSTMC+i] = 0
		dev.Mem[LSTMH+i] = 0
	}
	dev.Mem[LSTMEwma] = 0
	return &LSTMEngine{
		Dev:     dev,
		Model:   m,
		kGate:   gpu.MustAssemble("lstm_gate", lstmGateSrc),
		kUpdate: gpu.MustAssemble("lstm_update", lstmUpdateSrc),
		alphaQ:  ml.ToQ(DefaultEwmaAlpha),
		thrQ:    ml.ToQ(m.Threshold),
	}, nil
}

// InputWords quantises a window for the MCM TX engine.
func (e *LSTMEngine) InputWords(window []int32) ([]uint32, error) {
	if len(window) != LSTMWindow {
		return nil, fmt.Errorf("kernels: LSTM window length %d, want %d", len(window), LSTMWindow)
	}
	out := make([]uint32, LSTMWindow)
	for i, c := range window {
		if c < 0 || c >= LSTMVocab {
			return nil, fmt.Errorf("kernels: class %d outside LSTM vocab", c)
		}
		out[i] = uint32(c)
	}
	return out, nil
}

// Infer runs one timestep on the device: the four gate wavefronts, then the
// update/readout wavefront. It returns the judgment and total cycles.
func (e *LSTMEngine) Infer(window []int32) (Judgment, int64, error) {
	in, err := e.InputWords(window)
	if err != nil {
		return Judgment{}, 0, err
	}
	if err := e.Dev.WriteWords(LSTMIn, in); err != nil {
		return Judgment{}, 0, err
	}
	r1, err := e.Dev.Run(gpu.Dispatch{
		Kernel:     e.kGate,
		Wavefronts: ml.NumGates,
		SArgs:      []uint32{LSTMEmb, LSTMPosW, LSTMIn, LSTMWg, LSTMBg, LSTMSigLUT, LSTMTanhLUT, LSTMH, LSTMGates},
	})
	if err != nil {
		return Judgment{}, 0, err
	}
	r2, err := e.Dev.Run(gpu.Dispatch{
		Kernel:     e.kUpdate,
		Wavefronts: 1,
		SArgs: []uint32{LSTMGates, LSTMC, LSTMH, LSTMTanhLUT, LSTMOutW, LSTMOutB,
			LSTMIn, LSTMOut, uint32(e.thrQ), uint32(e.alphaQ), LSTMEwma},
	})
	if err != nil {
		return Judgment{}, 0, err
	}
	j := Judgment{
		Anomaly: e.Dev.Mem[LSTMOut] != 0,
		MarginQ: int32(e.Dev.Mem[LSTMOut+1]),
		EwmaQ:   int32(e.Dev.Mem[LSTMOut+2]),
	}
	return j, r1.Cycles + r2.Cycles, nil
}

// LSTMParamsView maps the deployed LSTM memory layout onto mem as a shared
// fixed-point parameter view (internal/ml), the single forward-pass
// implementation behind InferRef and the native backend.
func LSTMParamsView(mem []uint32) *ml.LSTMParamsQ {
	return &ml.LSTMParamsQ{
		Window:  LSTMWindow,
		Vocab:   LSTMVocab,
		Embed:   LSTMEmbed,
		Hidden:  LSTMHidden,
		SigLUT:  mem[LSTMSigLUT : LSTMSigLUT+ml.LUTSize],
		TanhLUT: mem[LSTMTanhLUT : LSTMTanhLUT+ml.LUTSize],
		PosW:    mem[LSTMPosW : LSTMPosW+LSTMWindow-1],
		Emb:     mem[LSTMEmb : LSTMEmb+LSTMVocab*LSTMEmbed],
		Wg:      mem[LSTMWg : LSTMWg+ml.NumGates*LSTMHidden*lstmXH],
		Bg:      mem[LSTMBg : LSTMBg+ml.NumGates*LSTMHidden],
		OutW:    mem[LSTMOutW : LSTMOutW+LSTMHidden*LSTMVocab],
		OutB:    mem[LSTMOutB : LSTMOutB+LSTMVocab],
	}
}

// InferRef mirrors the kernels bit-for-bit in Go, advancing a shadow state.
func (e *LSTMEngine) InferRef(window []int32) (Judgment, error) {
	in, err := e.InputWords(window)
	if err != nil {
		return Judgment{}, err
	}
	if e.refParams == nil {
		e.refParams = LSTMParamsView(e.Dev.Mem)
	}
	margin := e.refParams.StepQ(e.refH[:], e.refC[:], in)
	e.refEwma = ml.EwmaStepQ(e.refEwma, margin, e.alphaQ)
	return Judgment{Anomaly: e.refEwma > e.thrQ, MarginQ: margin, EwmaQ: e.refEwma}, nil
}

// InferBatch loops Infer: the cycle-accurate sim schedules each dispatch
// through its pipeline model, so there is nothing to fuse.
func (e *LSTMEngine) InferBatch(windows [][]int32) ([]Judgment, []int64, error) {
	return InferLoop(e, windows)
}

// Name implements the backend contract: the GPU engines are the
// cycle-accurate BackendGPU implementation.
func (e *LSTMEngine) Name() string { return BackendGPU }

// Window implements the MCM engine contract: the input-vector length.
func (e *LSTMEngine) Window() int { return LSTMWindow }
