// Package kernels lowers the trained ML models onto the ML-MIAOW compute
// engine: it lays out quantised model images in device memory, carries the
// inference-engine kernel sources (the code MCM triggers per input vector),
// and provides bit-exact Go reference implementations used to verify the
// kernels and the trimmed hardware (step 4 of the trimming flow).
package kernels

import (
	"fmt"

	"rtad/internal/gpu"
	"rtad/internal/ml"
)

// Judgment is the inference engine's verdict for one input vector, as read
// back from device memory by the MCM RX engine.
type Judgment struct {
	Anomaly bool
	MarginQ int32 // this vector's margin score (Q16.16)
	EwmaQ   int32 // smoothed score the threshold compares against
}

// ELM deployment shape. These mirror ml.DefaultELMConfig and are frozen by
// the kernel code: 8 input positions over a 32-class alphabet into 80
// hidden units (five 16-lane slices — one wavefront per ML-MIAOW CU) and a
// 32-class readout.
const (
	ELMWindow = 9
	ELMVocab  = 32
	ELMHidden = 80
	ELMWaves  = 5
	elmSlice  = ELMHidden / ELMWaves // 16 rows per wavefront
)

// ELM device-memory layout (word addresses).
const (
	ELMSigLUT = 16
	ELMB1     = ELMSigLUT + ml.LUTSize
	ELMW1     = ELMB1 + ELMHidden
	ELMBeta   = ELMW1 + (ELMWindow-1)*ELMVocab*ELMHidden
	ELMImgEnd = ELMBeta + ELMHidden*ELMVocab
	ELMIn     = 24576 // input vector: ELMWindow class IDs
	ELMPart   = 24768 // partial logits [ELMWaves][ELMVocab]
	ELMOut    = 24960 // flag, margin, ewma
	ELMEwma   = 24976 // persistent smoothed score
	ELMMemEnd = 25088
)

// elmHiddenSrc is the per-CU inference kernel: wavefront w computes hidden
// slice [16w,16w+16) by gathering W1 columns for the window's classes,
// applies the LUT sigmoid, then accumulates the slice's contribution to all
// 32 class logits into its partial buffer.
//
// SArgs: s0=W1 s1=B1 s2=Beta s3=In s4=Part s5=SigLUT
const elmHiddenSrc = `
	; ---- phase 1: hidden slice on 16 lanes ----
	s_setexec_cnt #16
	s_lsl s6, s15, #4        ; w*16 = first row of the slice
	v_mov v1, s6
	v_add v1, v1, v0         ; global hidden row
	v_mov v2, s1
	v_add v2, v2, v1
	flat_load v3, [v2+#0]    ; acc = b1[row]
	s_mov s7, #0             ; j
xloop:
	s_add s8, s3, s7
	s_load s9, [s8+#0]       ; c_j
	s_lsl s10, s7, #5        ; j*32
	s_add s10, s10, s9       ; j*32 + c
	s_mul s10, s10, #80      ; *Hidden
	s_add s10, s10, s0
	v_mov v2, s10
	v_add v2, v2, v1
	flat_load v4, [v2+#0]    ; W1[j][c][row]
	v_add v3, v3, v4
	s_add s7, s7, #1
	s_cmp_lt s7, #8
	s_cbranch_scc1 xloop
	; ---- LUT sigmoid ----
	v_add v4, v3, #2048
	v_asr v4, v4, #12
	v_add v4, v4, #128
	v_max v4, v4, #0
	v_min v4, v4, #255
	v_add v4, v4, s5
	flat_load v5, [v4+#0]    ; sigma(h) in Q16.16
	ds_write v5, [v0+#0]     ; slice-local stash for phase 2 broadcasts
	; ---- phase 2: partial logits on 32 lanes ----
	s_setexec_cnt #32
	v_mov v7, #0             ; partial[v]
	s_mov s7, #0             ; slice-local k
kloop:
	ds_read v8, [s7+#0]      ; broadcast sigma(h_k)
	s_add s8, s6, s7         ; global k
	s_lsl s9, s8, #5         ; *Vocab
	v_mov v9, s9
	v_add v9, v9, v0
	v_add v9, v9, s2
	flat_load v10, [v9+#0]   ; beta[k][v]
	v_mac_q16 v7, v8, v10
	s_add s7, s7, #1
	s_cmp_lt s7, #16
	s_cbranch_scc1 kloop
	s_lsl s8, s15, #5        ; w*Vocab
	v_mov v9, s8
	v_add v9, v9, v0
	v_add v9, v9, s4
	flat_store v7, [v9+#0]
	s_endpgm
`

// elmReduceSrc sums the per-wave partials into class logits, computes the
// margin (max logit minus the logit of the class that actually occurred),
// folds it into the engine's persistent EWMA and compares against the
// threshold; lane 0 writes the judgment.
//
// SArgs: s0=Part s1=In s2=Out s3=EwmaAddr s4=ThresholdQ s5=AlphaQ
const elmReduceSrc = `
	s_setexec_cnt #32
	v_mov v1, #0
	s_mov s6, #0
wloop:
	s_lsl s7, s6, #5
	v_mov v2, s7
	v_add v2, v2, v0
	v_add v2, v2, s0
	flat_load v3, [v2+#0]
	v_add v1, v1, v3
	s_add s6, s6, #1
	s_cmp_lt s6, #5
	s_cbranch_scc1 wloop
	; logits live in v1 (32 lanes); stash a copy, then max-tree in place
	ds_write v1, [v0+#64]
	ds_write v1, [v0+#0]
	s_setexec_cnt #16
	ds_read v2, [v0+#0]
	ds_read v3, [v0+#16]
	v_max v2, v2, v3
	ds_write v2, [v0+#0]
	s_setexec_cnt #8
	ds_read v2, [v0+#0]
	ds_read v3, [v0+#8]
	v_max v2, v2, v3
	ds_write v2, [v0+#0]
	s_setexec_cnt #4
	ds_read v2, [v0+#0]
	ds_read v3, [v0+#4]
	v_max v2, v2, v3
	ds_write v2, [v0+#0]
	s_setexec_cnt #2
	ds_read v2, [v0+#0]
	ds_read v3, [v0+#2]
	v_max v2, v2, v3
	ds_write v2, [v0+#0]
	s_setexec_cnt #1
	ds_read v2, [v0+#0]
	ds_read v3, [v0+#1]
	v_max v2, v2, v3         ; max logit
	s_load s7, [s1+#8]       ; target class = in[Window-1]
	ds_read v4, [s7+#64]     ; logits[target]
	v_sub v5, v2, v4         ; margin
	; ewma' = ewma + alpha*(margin - ewma)
	s_load s8, [s3+#0]
	v_mov v6, s8
	v_sub v7, v5, v6
	v_mul_q16 v7, v7, s5
	v_add v6, v6, v7
	v_mov v8, s3
	flat_store v6, [v8+#0]
	; flag = ewma > threshold
	v_mov v9, s4
	v_cmp_gt v6, v9
	v_mov v10, #1
	v_mov v11, #0
	v_cndmask v12, v10, v11
	v_mov v8, s2
	flat_store v12, [v8+#0]
	flat_store v5, [v8+#1]
	flat_store v6, [v8+#2]
	s_endpgm
`

// DefaultEwmaAlpha is the smoothing factor of the in-engine score EWMA.
const DefaultEwmaAlpha = 0.25

// ELMEngine runs ELM inference on a device, mirroring the MCM driver's view
// of the model: a memory image, two kernels, and per-inference dispatches.
type ELMEngine struct {
	Dev     *gpu.Device
	Model   *ml.ELM
	kHidden *gpu.Kernel
	kReduce *gpu.Kernel
	alphaQ  int32
	thrQ    int32

	// refEwma and refParams track the reference implementation's shadow
	// state and parameter view for InferRef.
	refEwma   int32
	refParams *ml.ELMParamsQ
}

// BuildELMImage quantises the model into the device image (words 0..ELMImgEnd).
func BuildELMImage(m *ml.ELM) ([]uint32, error) {
	cfg := m.Cfg
	if cfg.Window != ELMWindow || cfg.Vocab != ELMVocab || cfg.Hidden != ELMHidden {
		return nil, fmt.Errorf("kernels: ELM shape %+v does not match the deployed kernel (%d/%d/%d)",
			cfg, ELMWindow, ELMVocab, ELMHidden)
	}
	img := make([]uint32, ELMImgEnd)
	copy(img[ELMSigLUT:], ml.SigmoidLUT())
	for r := 0; r < ELMHidden; r++ {
		img[ELMB1+r] = uint32(ml.ToQ(m.B1[r]))
	}
	for j := 0; j < ELMWindow-1; j++ {
		for c := 0; c < ELMVocab; c++ {
			col := j*ELMVocab + c
			base := ELMW1 + col*ELMHidden
			for r := 0; r < ELMHidden; r++ {
				img[base+r] = uint32(ml.ToQ(m.W1.At(r, col)))
			}
		}
	}
	for k := 0; k < ELMHidden; k++ {
		for v := 0; v < ELMVocab; v++ {
			img[ELMBeta+k*ELMVocab+v] = uint32(ml.ToQ(m.BetaT.At(v, k)))
		}
	}
	return img, nil
}

// NewELMEngine loads the model image onto dev and prepares the kernels.
func NewELMEngine(dev *gpu.Device, m *ml.ELM) (*ELMEngine, error) {
	if len(dev.Mem) < ELMMemEnd {
		return nil, fmt.Errorf("kernels: device memory %d words, need %d", len(dev.Mem), ELMMemEnd)
	}
	img, err := BuildELMImage(m)
	if err != nil {
		return nil, err
	}
	if err := dev.WriteWords(0, img); err != nil {
		return nil, err
	}
	e := &ELMEngine{
		Dev:     dev,
		Model:   m,
		kHidden: gpu.MustAssemble("elm_hidden", elmHiddenSrc),
		kReduce: gpu.MustAssemble("elm_reduce", elmReduceSrc),
		alphaQ:  ml.ToQ(DefaultEwmaAlpha),
		thrQ:    ml.ToQ(m.Threshold),
	}
	dev.Mem[ELMEwma] = 0
	return e, nil
}

// InputWords quantises a window into the words the MCM TX engine writes.
func (e *ELMEngine) InputWords(window []int32) ([]uint32, error) {
	if len(window) != ELMWindow {
		return nil, fmt.Errorf("kernels: ELM window length %d, want %d", len(window), ELMWindow)
	}
	out := make([]uint32, ELMWindow)
	for i, c := range window {
		if c < 0 || c >= ELMVocab {
			return nil, fmt.Errorf("kernels: class %d outside ELM vocab", c)
		}
		out[i] = uint32(c)
	}
	return out, nil
}

// Infer runs one inference on the device and returns the judgment plus the
// total engine cycles (both dispatches, scheduled over the device's CUs).
func (e *ELMEngine) Infer(window []int32) (Judgment, int64, error) {
	in, err := e.InputWords(window)
	if err != nil {
		return Judgment{}, 0, err
	}
	if err := e.Dev.WriteWords(ELMIn, in); err != nil {
		return Judgment{}, 0, err
	}
	r1, err := e.Dev.Run(gpu.Dispatch{
		Kernel:     e.kHidden,
		Wavefronts: ELMWaves,
		SArgs:      []uint32{ELMW1, ELMB1, ELMBeta, ELMIn, ELMPart, ELMSigLUT},
	})
	if err != nil {
		return Judgment{}, 0, err
	}
	r2, err := e.Dev.Run(gpu.Dispatch{
		Kernel:     e.kReduce,
		Wavefronts: 1,
		SArgs:      []uint32{ELMPart, ELMIn, ELMOut, ELMEwma, uint32(e.thrQ), uint32(e.alphaQ)},
	})
	if err != nil {
		return Judgment{}, 0, err
	}
	j := Judgment{
		Anomaly: e.Dev.Mem[ELMOut] != 0,
		MarginQ: int32(e.Dev.Mem[ELMOut+1]),
		EwmaQ:   int32(e.Dev.Mem[ELMOut+2]),
	}
	return j, r1.Cycles + r2.Cycles, nil
}

// ELMParamsView maps the deployed ELM memory layout onto mem as a shared
// fixed-point parameter view (internal/ml), the single forward-pass
// implementation behind InferRef and the native backend.
func ELMParamsView(mem []uint32) *ml.ELMParamsQ {
	return &ml.ELMParamsQ{
		Window: ELMWindow,
		Vocab:  ELMVocab,
		Hidden: ELMHidden,
		SigLUT: mem[ELMSigLUT : ELMSigLUT+ml.LUTSize],
		B1:     mem[ELMB1 : ELMB1+ELMHidden],
		W1:     mem[ELMW1:ELMBeta],
		Beta:   mem[ELMBeta : ELMBeta+ELMHidden*ELMVocab],
	}
}

// InferRef is the bit-exact Go reference of the kernel pair, used to verify
// the device (and its trimmed variant) per the flow's step 4.
func (e *ELMEngine) InferRef(window []int32) (Judgment, error) {
	in, err := e.InputWords(window)
	if err != nil {
		return Judgment{}, err
	}
	if e.refParams == nil {
		e.refParams = ELMParamsView(e.Dev.Mem)
	}
	margin := e.refParams.MarginQ(in)
	e.refEwma = ml.EwmaStepQ(e.refEwma, margin, e.alphaQ)
	return Judgment{Anomaly: e.refEwma > e.thrQ, MarginQ: margin, EwmaQ: e.refEwma}, nil
}

// InferBatch loops Infer: the cycle-accurate sim schedules each dispatch
// through its pipeline model, so there is nothing to fuse.
func (e *ELMEngine) InferBatch(windows [][]int32) ([]Judgment, []int64, error) {
	return InferLoop(e, windows)
}

// Name implements the backend contract: the GPU engines are the
// cycle-accurate BackendGPU implementation.
func (e *ELMEngine) Name() string { return BackendGPU }

// Window implements the MCM engine contract: the input-vector length.
func (e *ELMEngine) Window() int { return ELMWindow }

// Sources exposes the inference-engine kernel sources by name, for tooling
// (cmd/gpuasm) and documentation.
func Sources() map[string]string {
	return map[string]string{
		"elm_hidden":  elmHiddenSrc,
		"elm_reduce":  elmReduceSrc,
		"lstm_gate":   lstmGateSrc,
		"lstm_update": lstmUpdateSrc,
	}
}
