package kernels

import (
	"math/rand"
	"testing"

	"rtad/internal/gpu"
	"rtad/internal/ml"
)

// markovWindows mirrors the ml package's synthetic learnable stream.
func markovWindows(vocab, window, n int, seed int64) [][]int32 {
	rng := rand.New(rand.NewSource(seed))
	succ := make([][]int32, vocab)
	for c := range succ {
		succ[c] = []int32{int32((c + 1) % vocab), int32((c + 1) % vocab), int32((c + 3) % vocab), int32(rng.Intn(vocab))}
	}
	cur := int32(0)
	stream := make([]int32, n+window)
	for i := range stream {
		stream[i] = cur
		cur = succ[cur][rng.Intn(4)]
	}
	out := make([][]int32, n)
	for i := range out {
		out[i] = stream[i : i+window]
	}
	return out
}

func trainELM(t testing.TB) *ml.ELM {
	t.Helper()
	cfg := ml.DefaultELMConfig()
	m, err := ml.TrainELM(cfg, markovWindows(cfg.Vocab, cfg.Window, 1500, 7))
	if err != nil {
		t.Fatal(err)
	}
	m.Threshold = 0.5
	return m
}

func trainLSTM(t testing.TB) *ml.LSTM {
	t.Helper()
	cfg := ml.DefaultLSTMConfig()
	cfg.Epochs = 1
	m, err := ml.TrainLSTM(cfg, markovWindows(cfg.Vocab, cfg.Window, 600, 9))
	if err != nil {
		t.Fatal(err)
	}
	m.Threshold = 0.5
	return m
}

func TestELMKernelMatchesReferenceBitExact(t *testing.T) {
	model := trainELM(t)
	dev := gpu.NewDevice(ELMMemEnd, 1)
	eng, err := NewELMEngine(dev, model)
	if err != nil {
		t.Fatal(err)
	}
	windows := markovWindows(ELMVocab, ELMWindow, 40, 42)
	for i, w := range windows {
		got, cycles, err := eng.Infer(w)
		if err != nil {
			t.Fatalf("window %d: %v", i, err)
		}
		want, err := eng.InferRef(w)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("window %d: device %+v != reference %+v", i, got, want)
		}
		if cycles <= 0 {
			t.Fatal("no cycles accounted")
		}
	}
}

func TestELMKernelAgreesWithFloatModel(t *testing.T) {
	model := trainELM(t)
	dev := gpu.NewDevice(ELMMemEnd, 1)
	eng, err := NewELMEngine(dev, model)
	if err != nil {
		t.Fatal(err)
	}
	windows := markovWindows(ELMVocab, ELMWindow, 30, 13)
	for i, w := range windows {
		got, _, err := eng.Infer(w)
		if err != nil {
			t.Fatal(err)
		}
		want := model.Score(w)
		if diff := ml.FromQ(got.MarginQ) - want; diff > 0.08 || diff < -0.08 {
			t.Errorf("window %d: fixed-point margin %.4f vs float %.4f", i, ml.FromQ(got.MarginQ), want)
		}
	}
}

func TestELMLatencyConstantAcrossInputs(t *testing.T) {
	model := trainELM(t)
	dev := gpu.NewDevice(ELMMemEnd, 1)
	eng, err := NewELMEngine(dev, model)
	if err != nil {
		t.Fatal(err)
	}
	var first int64
	for i, w := range markovWindows(ELMVocab, ELMWindow, 10, 3) {
		_, cycles, err := eng.Infer(w)
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			first = cycles
		} else if cycles != first {
			t.Fatalf("ELM inference cycles vary: %d vs %d — Fig 8 expects constant", cycles, first)
		}
	}
}

func TestELMFiveCUSpeedup(t *testing.T) {
	model := trainELM(t)
	w := markovWindows(ELMVocab, ELMWindow, 1, 5)[0]

	d1 := gpu.NewDevice(ELMMemEnd, 1)
	e1, _ := NewELMEngine(d1, model)
	_, c1, err := e1.Infer(w)
	if err != nil {
		t.Fatal(err)
	}
	d5 := gpu.NewDevice(ELMMemEnd, 5)
	e5, _ := NewELMEngine(d5, model)
	j5, c5, err := e5.Infer(w)
	if err != nil {
		t.Fatal(err)
	}
	j1, _ := e1.InferRef(w)
	_ = j1
	speedup := float64(c1) / float64(c5)
	if speedup < 2.0 || speedup > 5.0 {
		t.Errorf("ELM 5-CU speedup %.2fx outside the plausible 2-5x band (paper: 3.29x)", speedup)
	}
	// Same judgment regardless of CU count.
	d1b := gpu.NewDevice(ELMMemEnd, 1)
	e1b, _ := NewELMEngine(d1b, model)
	j1b, _, _ := e1b.Infer(w)
	if j1b != j5 {
		t.Error("judgment depends on CU count")
	}
}

func TestLSTMKernelMatchesReferenceBitExact(t *testing.T) {
	model := trainLSTM(t)
	dev := gpu.NewDevice(LSTMMemEnd, 1)
	eng, err := NewLSTMEngine(dev, model)
	if err != nil {
		t.Fatal(err)
	}
	windows := markovWindows(LSTMVocab, LSTMWindow, 30, 44)
	for i, w := range windows {
		got, cycles, err := eng.Infer(w)
		if err != nil {
			t.Fatalf("step %d: %v", i, err)
		}
		want, err := eng.InferRef(w)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("step %d: device %+v != reference %+v", i, got, want)
		}
		if cycles <= 0 {
			t.Fatal("no cycles accounted")
		}
	}
	// The recurrent state must have evolved in device memory.
	var nonzero bool
	for i := 0; i < LSTMHidden; i++ {
		if dev.Mem[LSTMH+i] != 0 {
			nonzero = true
		}
	}
	if !nonzero {
		t.Error("hidden state still zero after 30 steps")
	}
}

func TestLSTMKernelTracksFloatModel(t *testing.T) {
	model := trainLSTM(t)
	dev := gpu.NewDevice(LSTMMemEnd, 1)
	eng, err := NewLSTMEngine(dev, model)
	if err != nil {
		t.Fatal(err)
	}
	st := model.NewState()
	var worst float64
	for _, w := range markovWindows(LSTMVocab, LSTMWindow, 25, 15) {
		got, _, err := eng.Infer(w)
		if err != nil {
			t.Fatal(err)
		}
		want, err := model.Score(st, w)
		if err != nil {
			t.Fatal(err)
		}
		diff := ml.FromQ(got.MarginQ) - want
		if diff < 0 {
			diff = -diff
		}
		if diff > worst {
			worst = diff
		}
	}
	// Fixed-point LSTM drifts from the float model over time (LUT
	// activations, Q16.16 rounding through the recurrence); it must stay
	// within a usable band.
	if worst > 0.35 {
		t.Errorf("fixed-point margin drifts %.3f from float model", worst)
	}
}

func TestLSTMFiveCUSpeedup(t *testing.T) {
	model := trainLSTM(t)
	w := markovWindows(LSTMVocab, LSTMWindow, 1, 5)[0]
	d1 := gpu.NewDevice(LSTMMemEnd, 1)
	e1, _ := NewLSTMEngine(d1, model)
	_, c1, err := e1.Infer(w)
	if err != nil {
		t.Fatal(err)
	}
	d5 := gpu.NewDevice(LSTMMemEnd, 5)
	e5, _ := NewLSTMEngine(d5, model)
	_, c5, err := e5.Infer(w)
	if err != nil {
		t.Fatal(err)
	}
	speedup := float64(c1) / float64(c5)
	if speedup < 1.5 || speedup > 4.0 {
		t.Errorf("LSTM 5-CU speedup %.2fx outside the plausible 1.5-4x band (paper: 2.22x)", speedup)
	}
	// LSTM gains less from extra CUs than ELM: the update/readout stage is
	// a serial bottleneck (Fig 8's asymmetry).
	dE1 := gpu.NewDevice(ELMMemEnd, 1)
	elm := trainELM(t)
	eE1, _ := NewELMEngine(dE1, elm)
	we := markovWindows(ELMVocab, ELMWindow, 1, 6)[0]
	_, ce1, _ := eE1.Infer(we)
	dE5 := gpu.NewDevice(ELMMemEnd, 5)
	eE5, _ := NewELMEngine(dE5, elm)
	_, ce5, _ := eE5.Infer(we)
	if float64(ce1)/float64(ce5) <= speedup {
		t.Errorf("expected ELM speedup (%.2f) > LSTM speedup (%.2f)",
			float64(ce1)/float64(ce5), speedup)
	}
}

func TestLSTMSlowerThanELM(t *testing.T) {
	// Fig 8: LSTM inference is several times slower than ELM on the same
	// hardware.
	elm := trainELM(t)
	lstm := trainLSTM(t)
	dE := gpu.NewDevice(ELMMemEnd, 1)
	eE, _ := NewELMEngine(dE, elm)
	_, ce, err := eE.Infer(markovWindows(ELMVocab, ELMWindow, 1, 2)[0])
	if err != nil {
		t.Fatal(err)
	}
	dL := gpu.NewDevice(LSTMMemEnd, 1)
	eL, _ := NewLSTMEngine(dL, lstm)
	_, cl, err := eL.Infer(markovWindows(LSTMVocab, LSTMWindow, 1, 2)[0])
	if err != nil {
		t.Fatal(err)
	}
	if cl <= ce {
		t.Errorf("LSTM (%d cycles) not slower than ELM (%d cycles)", cl, ce)
	}
}

func TestImageShapeValidation(t *testing.T) {
	cfg := ml.DefaultELMConfig()
	cfg.Hidden = 40
	bad, err := ml.TrainELM(cfg, markovWindows(cfg.Vocab, cfg.Window, 500, 8))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := BuildELMImage(bad); err == nil {
		t.Error("mismatched ELM shape accepted")
	}
	lcfg := ml.DefaultLSTMConfig()
	lcfg.Hidden = 16
	lcfg.Epochs = 1
	badL, err := ml.TrainLSTM(lcfg, markovWindows(lcfg.Vocab, lcfg.Window, 200, 8))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := BuildLSTMImage(badL); err == nil {
		t.Error("mismatched LSTM shape accepted")
	}
}

func TestInputValidation(t *testing.T) {
	dev := gpu.NewDevice(ELMMemEnd, 1)
	eng, err := NewELMEngine(dev, trainELM(t))
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := eng.Infer([]int32{1, 2, 3}); err == nil {
		t.Error("short window accepted")
	}
	w := make([]int32, ELMWindow)
	w[0] = ELMVocab
	if _, _, err := eng.Infer(w); err == nil {
		t.Error("out-of-vocab class accepted")
	}
}

func TestThresholdGatesAnomalyFlag(t *testing.T) {
	model := trainELM(t)
	w := markovWindows(ELMVocab, ELMWindow, 1, 77)[0]

	// A hostile threshold below any score must flag immediately; a huge
	// threshold must never flag.
	model.Threshold = -1
	devLow := gpu.NewDevice(ELMMemEnd, 1)
	engLow, _ := NewELMEngine(devLow, model)
	jLow, _, err := engLow.Infer(w)
	if err != nil {
		t.Fatal(err)
	}
	if !jLow.Anomaly {
		t.Error("sub-zero threshold did not flag")
	}
	model.Threshold = 1e4
	devHigh := gpu.NewDevice(ELMMemEnd, 1)
	engHigh, _ := NewELMEngine(devHigh, model)
	jHigh, _, err := engHigh.Infer(w)
	if err != nil {
		t.Fatal(err)
	}
	if jHigh.Anomaly {
		t.Error("huge threshold flagged")
	}
}

func TestEwmaPersistsAcrossInferences(t *testing.T) {
	model := trainELM(t)
	dev := gpu.NewDevice(ELMMemEnd, 1)
	eng, _ := NewELMEngine(dev, model)
	windows := markovWindows(ELMVocab, ELMWindow, 12, 31)
	var prev int32
	moved := false
	for i, w := range windows {
		j, _, err := eng.Infer(w)
		if err != nil {
			t.Fatal(err)
		}
		// The device-resident EWMA must match what the engine reports.
		if got := int32(dev.Mem[ELMEwma]); got != j.EwmaQ {
			t.Fatalf("step %d: device ewma %d != judgment %d", i, got, j.EwmaQ)
		}
		if i > 0 && j.EwmaQ != prev {
			moved = true
		}
		prev = j.EwmaQ
	}
	if !moved {
		t.Error("EWMA never moved across a dozen inferences")
	}
}
