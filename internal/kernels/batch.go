package kernels

import (
	"fmt"
	"sort"

	"rtad/internal/ml"
)

// Cross-instance micro-batching. Backend.InferBatch fuses consecutive
// steps of ONE stream; serving wants the transpose as well — pending
// vectors from many sessions, judged together. GroupRunner is that compute
// core: it partitions a mixed batch of requests by trained model, gathers
// each member row's persistent state (LSTM h/c, the EWMA word) from its
// own device memory once, then advances all rows in lockstep — step t runs
// one weight-stationary Q16.16 matmul over every row that still has a t-th
// window — and scatters judgments and state back, leaving every member's
// device memory exactly as its own InferBatch would. A request may carry a
// whole trace chunk of windows, so one fused pass typically covers
// sessions×steps rows with the quantised parameters and matmul scratch hot
// in cache throughout.
//
// Only native backends with a calibrated cycle cost join a group; GPU-sim
// backends and not-yet-calibrated shapes fall back to their own InferBatch
// inside the same call, so the caller sees one uniform positional result
// slice. Cycle charges always come from each member's own calibration
// entry — members of one group may run at different CU counts.

// BatchRequest is one session's pending work: its engine and the
// consecutive windows of its stream to judge, in order. The windows are
// only read for the duration of InferGroup.
type BatchRequest struct {
	Backend Backend
	Windows [][]int32
}

// GroupResult is the outcome for one request, positionally matched: one
// judgment and cycle charge per window, or the request's error. The slices
// alias the runner's arenas and are only valid until the next InferGroup.
type GroupResult struct {
	Js     []Judgment
	Cycles []int64
	Err    error
}

// GroupRunner fuses micro-batches across backend instances. Not safe for
// concurrent use: it reuses gather/scatter scratch across calls and is
// meant to be owned by a single coordinator.
//
// Rows in one call must come from distinct backend instances (each row's
// persistent state is gathered once before the pass); a serving
// coordinator gets this for free because a session blocks on one
// InferBatch at a time.
type GroupRunner struct {
	elmGroups  map[*ml.ELM][]int
	lstmGroups map[*ml.LSTM][]int
	// Shared parameter views per model, built over the first-seen member's
	// memory: every member of a group carries a bit-identical image (the
	// quantised build is deterministic from the trained model), so one view
	// — and its matmul scratch — serves the whole group.
	elmParams  map[*ml.ELM]*ml.ELMParamsQ
	lstmParams map[*ml.LSTM]*ml.LSTMParamsQ

	// Per-group scratch. in is step-major: the block for step t packs the
	// t-th windows of every row active at t, in row order; offs[t] is its
	// start. Rows are sorted by window count (descending, arrival-stable),
	// so the rows active at step t are always the prefix rows[:counts[t]].
	in      []uint32
	offs    []int
	counts  []int
	h, c    []int32
	ewma    []int32
	margins []int32
	rows    []int
	res     []GroupResult
	js      []Judgment
	cyc     []int64
}

// NewGroupRunner returns an empty runner; scratch grows to the largest
// batch it sees.
func NewGroupRunner() *GroupRunner {
	return &GroupRunner{
		elmGroups:  map[*ml.ELM][]int{},
		lstmGroups: map[*ml.LSTM][]int{},
		elmParams:  map[*ml.ELM]*ml.ELMParamsQ{},
		lstmParams: map[*ml.LSTM]*ml.LSTMParamsQ{},
	}
}

// InferGroup judges every request and returns positional results. Each
// session's judgments, cycle charges and post-state are bit-identical to
// what its own InferBatch would have produced; only host wall-time
// differs. The returned slice and the slices inside it are the runner's
// arenas — valid until the next call.
func (g *GroupRunner) InferGroup(reqs []BatchRequest) []GroupResult {
	res := growRes(g.res, len(reqs))
	g.res = res
	for i := range res {
		res[i] = GroupResult{}
	}
	for m := range g.elmGroups {
		delete(g.elmGroups, m)
	}
	for m := range g.lstmGroups {
		delete(g.lstmGroups, m)
	}
	rows := 0
	for _, r := range reqs {
		rows += len(r.Windows)
	}
	g.js = growJ(g.js, rows)
	g.cyc = growI64(g.cyc, rows)
	used := 0
	for i, r := range reqs {
		if len(r.Windows) == 0 {
			continue
		}
		nb, ok := r.Backend.(*nativeBackend)
		if !ok {
			res[i].Js, res[i].Cycles, res[i].Err = r.Backend.InferBatch(r.Windows)
			continue
		}
		if _, ok := nb.calCycles(); !ok {
			// Uncalibrated: one cycle-accurate fallback sequence that
			// records itself, exactly as the unbatched path would.
			res[i].Js, res[i].Cycles, res[i].Err = nb.InferBatch(r.Windows)
			continue
		}
		if nb.elm != nil {
			g.elmGroups[nb.elm.model] = append(g.elmGroups[nb.elm.model], i)
		} else {
			g.lstmGroups[nb.lstm.model] = append(g.lstmGroups[nb.lstm.model], i)
		}
	}
	for model, idx := range g.elmGroups {
		used = g.runGroup(nil, model, idx, reqs, res, used)
	}
	for model, idx := range g.lstmGroups {
		used = g.runGroup(model, nil, idx, reqs, res, used)
	}
	return res
}

// planGroup orders the group's requests for lockstep stepping and packs
// their windows. Rows are sorted by window count descending (stable in
// arrival order), so at every step the active rows are a prefix; the
// quantised windows land in the step-major arena. Requests that fail
// validation get their error result here and are excluded from the pass
// with their device state untouched.
func (g *GroupRunner) planGroup(win int, idx []int, reqs []BatchRequest, res []GroupResult) (maxK int) {
	g.rows = append(g.rows[:0], idx...)
	sort.SliceStable(g.rows, func(a, b int) bool {
		return len(reqs[g.rows[a]].Windows) > len(reqs[g.rows[b]].Windows)
	})
	// Drop invalid requests first so the survivors pack densely.
	valid := g.rows[:0]
	for _, i := range g.rows {
		nb := reqs[i].Backend.(*nativeBackend)
		bad := false
		for t, w := range reqs[i].Windows {
			if err := nb.quantInto(nb.inBuf, w); err != nil {
				res[i].Err = batchWindowErr(t, err)
				bad = true
				break
			}
		}
		if !bad {
			valid = append(valid, i)
		}
	}
	g.rows = valid
	if len(g.rows) == 0 {
		return 0
	}
	maxK = len(reqs[g.rows[0]].Windows)
	g.offs = growInt(g.offs, maxK)
	g.counts = growInt(g.counts, maxK)
	total := 0
	for t := 0; t < maxK; t++ {
		na := 0
		for _, i := range g.rows {
			if len(reqs[i].Windows) > t {
				na++
			}
		}
		g.offs[t] = total
		g.counts[t] = na
		total += na * win
	}
	g.in = growU32(g.in, total)
	for t := 0; t < maxK; t++ {
		block := g.in[g.offs[t]:]
		for bi, i := range g.rows[:g.counts[t]] {
			nb := reqs[i].Backend.(*nativeBackend)
			// Validation already passed; quantInto only converts here.
			_ = nb.quantInto(block[bi*win:(bi+1)*win], reqs[i].Windows[t])
		}
	}
	return maxK
}

// runGroup advances one model's rows in lockstep. Exactly one of lstm/elm
// is non-nil; used indexes the shared judgment/cycle arenas and the new
// high-water mark is returned.
func (g *GroupRunner) runGroup(lstm *ml.LSTM, elm *ml.ELM, idx []int, reqs []BatchRequest, res []GroupResult, used int) int {
	win := ELMWindow
	if lstm != nil {
		win = LSTMWindow
	}
	maxK := g.planGroup(win, idx, reqs, res)
	if maxK == 0 {
		return used
	}
	n := len(g.rows)
	var (
		lp *ml.LSTMParamsQ
		ep *ml.ELMParamsQ
	)
	if lstm != nil {
		if lp = g.lstmParams[lstm]; lp == nil {
			lp = LSTMParamsView(reqs[g.rows[0]].Backend.(*nativeBackend).mem)
			g.lstmParams[lstm] = lp
		}
		g.h = growI32(g.h, n*LSTMHidden)
		g.c = growI32(g.c, n*LSTMHidden)
	} else {
		if ep = g.elmParams[elm]; ep == nil {
			ep = ELMParamsView(reqs[g.rows[0]].Backend.(*nativeBackend).mem)
			g.elmParams[elm] = ep
		}
	}
	g.margins = growI32(g.margins, n)
	g.ewma = growI32(g.ewma, n)

	// Gather persistent state once; it stays packed across all steps.
	for bi, i := range g.rows {
		mem := reqs[i].Backend.(*nativeBackend).mem
		if lstm != nil {
			for r := 0; r < LSTMHidden; r++ {
				g.h[bi*LSTMHidden+r] = int32(mem[LSTMH+r])
				g.c[bi*LSTMHidden+r] = int32(mem[LSTMC+r])
			}
			g.ewma[bi] = int32(mem[LSTMEwma])
		} else {
			g.ewma[bi] = int32(mem[ELMEwma])
		}
		res[i].Js = g.js[used : used : used+len(reqs[i].Windows)]
		res[i].Cycles = g.cyc[used : used : used+len(reqs[i].Windows)]
		used += len(reqs[i].Windows)
	}

	for t := 0; t < maxK; t++ {
		na := g.counts[t]
		in := g.in[g.offs[t]:]
		if lstm != nil {
			lp.StepBatchQ(g.h, g.c, in, na, g.margins)
		} else {
			ep.MarginBatchQ(in, na, g.margins)
		}
		for bi, i := range g.rows[:na] {
			nb := reqs[i].Backend.(*nativeBackend)
			ewma := ml.EwmaStepQ(g.ewma[bi], g.margins[bi], nb.alphaQ)
			g.ewma[bi] = ewma
			j := Judgment{Anomaly: ewma > nb.thrQ, MarginQ: g.margins[bi], EwmaQ: ewma}
			res[i].Js = append(res[i].Js, j)
			res[i].Cycles = append(res[i].Cycles, nb.cycles)
		}
	}

	// Scatter state back: each member's device memory ends exactly as its
	// own InferBatch would leave it — final input window, final recurrent
	// state, EWMA word, and the last judgment in the out registers.
	for bi, i := range g.rows {
		nb := reqs[i].Backend.(*nativeBackend)
		mem := nb.mem
		k := len(reqs[i].Windows)
		last := g.in[g.offs[k-1]:]
		if lstm != nil {
			copy(mem[LSTMIn:LSTMIn+LSTMWindow], last[bi*LSTMWindow:(bi+1)*LSTMWindow])
			for r := 0; r < LSTMHidden; r++ {
				mem[LSTMH+r] = uint32(g.h[bi*LSTMHidden+r])
				mem[LSTMC+r] = uint32(g.c[bi*LSTMHidden+r])
			}
			mem[LSTMEwma] = uint32(g.ewma[bi])
			writeOut(mem[LSTMOut:], res[i].Js[k-1])
		} else {
			copy(mem[ELMIn:ELMIn+ELMWindow], last[bi*ELMWindow:(bi+1)*ELMWindow])
			mem[ELMEwma] = uint32(g.ewma[bi])
			writeOut(mem[ELMOut:], res[i].Js[k-1])
		}
	}
	return used
}

func batchWindowErr(t int, err error) error {
	return fmt.Errorf("kernels: batch window %d: %w", t, err)
}

func growU32(s []uint32, n int) []uint32 {
	if cap(s) < n {
		return make([]uint32, n)
	}
	return s[:n]
}

func growI32(s []int32, n int) []int32 {
	if cap(s) < n {
		return make([]int32, n)
	}
	return s[:n]
}

func growI64(s []int64, n int) []int64 {
	if cap(s) < n {
		return make([]int64, n)
	}
	return s[:n]
}

func growInt(s []int, n int) []int {
	if cap(s) < n {
		return make([]int, n)
	}
	return s[:n]
}

func growJ(s []Judgment, n int) []Judgment {
	if cap(s) < n {
		return make([]Judgment, n)
	}
	return s[:n]
}

func growRes(s []GroupResult, n int) []GroupResult {
	if cap(s) < n {
		return make([]GroupResult, n)
	}
	return s[:n]
}
