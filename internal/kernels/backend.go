package kernels

import (
	"fmt"
	"sort"
	"sync"

	"rtad/internal/gpu"
	"rtad/internal/ml"
)

// Backend names accepted by NewBackend (and the CLIs' -backend flag).
const (
	// BackendGPU is the cycle-accurate ML-MIAOW simulation: every
	// inference interprets the kernels wavefront-by-wavefront. Timing and
	// judgments are the ground truth the other backends are validated
	// against.
	BackendGPU = "gpu"
	// BackendNative runs the shared fixed-point forward pass in Go —
	// bit-identical judgments without interpreting a single GPU
	// instruction. Cycle costs come from a private calibration table that
	// self-populates: the first inference of each (model, window, CUs)
	// shape falls back to the GPU sim and records its cost.
	BackendNative = "native"
	// BackendNativeCalibrated is the native backend fed a shared
	// *Calibration: the factory runs the one-time GPU calibration pass up
	// front (on a scratch device) for its model shape, so every inference
	// replays recorded cycles and the GPU sim never runs on the hot path.
	BackendNativeCalibrated = "native-calibrated"
	// DefaultBackend preserves the historical behaviour everywhere a
	// backend is not chosen explicitly.
	DefaultBackend = BackendGPU
)

// Backend is the pluggable inference engine the MCM drives: one deployed
// model, persistent scoring state, and a per-inference cycle cost for the
// WAIT_DONE phase. All backends of one model must produce bit-identical
// judgment streams; they may differ only in how the cycle cost is obtained
// (simulated vs replayed) and how fast the host computes it.
type Backend interface {
	// Name is the registry name the backend was built under.
	Name() string
	// Window is the input-vector length the engine consumes.
	Window() int
	// Infer runs one inference and returns the judgment plus the engine
	// cycles the MCM waits out in WAIT_DONE.
	Infer(window []int32) (Judgment, int64, error)
	// InferBatch runs len(windows) consecutive inferences on this
	// backend's judgment stream, exactly equivalent to calling Infer once
	// per window in order: same judgments, same per-vector cycle charges,
	// same persistent state afterwards. Backends with a batched kernel
	// amortise the state-independent arithmetic; others loop (InferLoop).
	// A batch that fails validation may leave the stream less advanced
	// than the equivalent Infer sequence would at the failing window.
	// Returned slices are only valid until the next call on this backend.
	InferBatch(windows [][]int32) ([]Judgment, []int64, error)
}

// FixedCoster is the optional contract behind deferred judgment: a backend
// whose per-inference cycle cost is a known constant reports it here
// BEFORE running the inference. The MCM can then compute a vector's full
// WAIT_DONE timeline — and hence FIFO admission of everything behind it —
// at push time and postpone the arithmetic itself, which is what lets the
// serving layer coalesce a whole trace chunk into one InferBatch call.
// Calibrated native backends qualify (deployed kernels cost the same
// cycles for every input); ok stays false until the shape is calibrated,
// and for the cycle-accurate GPU sim, which must run to know its timing.
type FixedCoster interface {
	FixedCost() (cycles int64, ok bool)
}

// InferLoop is the reference InferBatch: one Infer per window, in order.
// It is the fallback for backends without a batched kernel (the
// cycle-accurate GPU sim steps its pipeline model per dispatch and cannot
// fuse inferences) and the semantic yardstick the batched paths are tested
// against.
func InferLoop(b Backend, windows [][]int32) ([]Judgment, []int64, error) {
	js := make([]Judgment, len(windows))
	cycles := make([]int64, len(windows))
	for i, w := range windows {
		j, cyc, err := b.Infer(w)
		if err != nil {
			return nil, nil, fmt.Errorf("kernels: batch window %d: %w", i, err)
		}
		js[i] = j
		cycles[i] = cyc
	}
	return js, cycles, nil
}

// Spec carries everything a backend factory needs: the device whose memory
// holds (or will hold) the quantised model image and scoring state, and
// exactly one trained model.
type Spec struct {
	Dev  *gpu.Device
	ELM  *ml.ELM
	LSTM *ml.LSTM
	// Calibration, when non-nil, is a shared cycle-cost table for the
	// calibrated backends; nil lets the backend own a private table.
	Calibration *Calibration
}

func (s Spec) kind() (model string, window int, err error) {
	switch {
	case s.ELM != nil && s.LSTM == nil:
		return "elm", ELMWindow, nil
	case s.LSTM != nil && s.ELM == nil:
		return "lstm", LSTMWindow, nil
	}
	return "", 0, fmt.Errorf("kernels: backend spec must carry exactly one model")
}

// Factory builds a backend instance for a model spec.
type Factory func(Spec) (Backend, error)

var (
	regMu    sync.RWMutex
	registry = map[string]Factory{}
)

// Register adds a backend factory under name. It panics on a duplicate or
// empty name — backend registration is an init-time affair.
func Register(name string, f Factory) {
	if name == "" || f == nil {
		panic("kernels: Register needs a name and a factory")
	}
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := registry[name]; dup {
		panic("kernels: backend " + name + " registered twice")
	}
	registry[name] = f
}

// Backends lists the registered backend names, sorted.
func Backends() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	out := make([]string, 0, len(registry))
	for name := range registry {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// NewBackend builds the named backend over spec; an empty name picks
// DefaultBackend.
func NewBackend(name string, spec Spec) (Backend, error) {
	if name == "" {
		name = DefaultBackend
	}
	regMu.RLock()
	f, ok := registry[name]
	regMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("kernels: unknown backend %q (have %v)", name, Backends())
	}
	return f(spec)
}

func init() {
	Register(BackendGPU, newGPUBackend)
	Register(BackendNative, func(s Spec) (Backend, error) {
		return newNativeBackend(BackendNative, s)
	})
	Register(BackendNativeCalibrated, func(s Spec) (Backend, error) {
		return newNativeBackend(BackendNativeCalibrated, s)
	})
}

func newGPUBackend(s Spec) (Backend, error) {
	if _, _, err := s.kind(); err != nil {
		return nil, err
	}
	if s.Dev == nil {
		return nil, fmt.Errorf("kernels: %s backend needs a device", BackendGPU)
	}
	if s.ELM != nil {
		return NewELMEngine(s.Dev, s.ELM)
	}
	return NewLSTMEngine(s.Dev, s.LSTM)
}
