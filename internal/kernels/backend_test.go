package kernels

import (
	"bytes"
	"path/filepath"
	"testing"

	"rtad/internal/gpu"
	"rtad/internal/ml"
)

// checkStreamsIdentical drives both backends through the same window
// stream and requires bit-identical judgments and cycle counts at every
// step — the contract every backend of one model must honour.
func checkStreamsIdentical(t *testing.T, ref, got Backend, windows [][]int32) {
	t.Helper()
	for i, w := range windows {
		jr, cr, err := ref.Infer(w)
		if err != nil {
			t.Fatalf("window %d: %s: %v", i, ref.Name(), err)
		}
		jg, cg, err := got.Infer(w)
		if err != nil {
			t.Fatalf("window %d: %s: %v", i, got.Name(), err)
		}
		if jr != jg {
			t.Fatalf("window %d: %s judgment %+v != %s judgment %+v", i, got.Name(), jg, ref.Name(), jr)
		}
		if cr != cg {
			t.Fatalf("window %d: %s cycles %d != %s cycles %d", i, got.Name(), cg, ref.Name(), cr)
		}
	}
}

func elmSpec(model *ml.ELM, cus int, c *Calibration) Spec {
	return Spec{Dev: gpu.NewDevice(ELMMemEnd, cus), ELM: model, Calibration: c}
}

func lstmSpec(model *ml.LSTM, cus int, c *Calibration) Spec {
	return Spec{Dev: gpu.NewDevice(LSTMMemEnd, cus), LSTM: model, Calibration: c}
}

func TestNativeBackendsBitIdenticalELM(t *testing.T) {
	model := trainELM(t)
	windows := markovWindows(ELMVocab, ELMWindow, 60, 123)
	for _, cus := range []int{1, 5} {
		for _, name := range []string{BackendNative, BackendNativeCalibrated} {
			ref, err := NewBackend(BackendGPU, elmSpec(model, cus, nil))
			if err != nil {
				t.Fatal(err)
			}
			nat, err := NewBackend(name, elmSpec(model, cus, NewCalibration()))
			if err != nil {
				t.Fatal(err)
			}
			checkStreamsIdentical(t, ref, nat, windows)
		}
	}
}

func TestNativeBackendsBitIdenticalLSTM(t *testing.T) {
	model := trainLSTM(t)
	windows := markovWindows(LSTMVocab, LSTMWindow, 60, 321)
	for _, cus := range []int{1, 5} {
		for _, name := range []string{BackendNative, BackendNativeCalibrated} {
			ref, err := NewBackend(BackendGPU, lstmSpec(model, cus, nil))
			if err != nil {
				t.Fatal(err)
			}
			nat, err := NewBackend(name, lstmSpec(model, cus, NewCalibration()))
			if err != nil {
				t.Fatal(err)
			}
			checkStreamsIdentical(t, ref, nat, windows)
		}
	}
}

// TestNativeBackendBitIdenticalUnderTrim repeats the cross-validation on
// coverage-trimmed devices: the native compute path never touches the
// interpreter, and its GPU fallback must agree with a trimmed reference the
// same way the untrimmed one does.
func TestNativeBackendBitIdenticalUnderTrim(t *testing.T) {
	elm := trainELM(t)
	lstm := trainLSTM(t)

	// Steps 1–2 of the trimming flow: record block coverage per model.
	cover := func(spec Spec, windows [][]int32) gpu.CoverageSet {
		spec.Dev.EnableCoverage()
		eng, err := NewBackend(BackendGPU, spec)
		if err != nil {
			t.Fatal(err)
		}
		for _, w := range windows {
			if _, _, err := eng.Infer(w); err != nil {
				t.Fatal(err)
			}
		}
		return spec.Dev.Coverage()
	}
	elmWindows := markovWindows(ELMVocab, ELMWindow, 40, 77)
	lstmWindows := markovWindows(LSTMVocab, LSTMWindow, 40, 78)
	elmKeep := cover(elmSpec(elm, 1, nil), elmWindows)
	lstmKeep := cover(lstmSpec(lstm, 1, nil), lstmWindows)

	run := func(name string, keep gpu.CoverageSet, spec func(*Calibration) Spec, windows [][]int32) {
		refSpec := spec(nil)
		refSpec.Dev.SetTrim(keep)
		ref, err := NewBackend(BackendGPU, refSpec)
		if err != nil {
			t.Fatal(err)
		}
		natSpec := spec(NewCalibration())
		natSpec.Dev.SetTrim(keep)
		nat, err := NewBackend(name, natSpec)
		if err != nil {
			t.Fatal(err)
		}
		checkStreamsIdentical(t, ref, nat, windows)
	}
	for _, name := range []string{BackendNative, BackendNativeCalibrated} {
		run(name, elmKeep, func(c *Calibration) Spec { return elmSpec(elm, 1, c) }, elmWindows)
		run(name, lstmKeep, func(c *Calibration) Spec { return lstmSpec(lstm, 1, c) }, lstmWindows)
	}
}

// TestNativeCalibratedEagerPass pins the calibrated backend's construction
// contract: the one-time GPU pass runs up front on a scratch device, the
// recorded cost equals the real engine's, and the table is shared.
func TestNativeCalibratedEagerPass(t *testing.T) {
	model := trainELM(t)
	shared := NewCalibration()
	if _, err := NewBackend(BackendNativeCalibrated, elmSpec(model, 5, shared)); err != nil {
		t.Fatal(err)
	}
	key := CalKey{Model: "elm", Window: ELMWindow, CUs: 5}
	cyc, ok := shared.Lookup(key)
	if !ok {
		t.Fatalf("calibration table missing %+v after construction", key)
	}
	ref, err := NewBackend(BackendGPU, elmSpec(model, 5, nil))
	if err != nil {
		t.Fatal(err)
	}
	_, want, err := ref.Infer(make([]int32, ELMWindow))
	if err != nil {
		t.Fatal(err)
	}
	if cyc != want {
		t.Fatalf("calibrated cycles %d, cycle-accurate engine reports %d", cyc, want)
	}
}

func TestCalibrationPersistenceRoundTrip(t *testing.T) {
	c := NewCalibration()
	c.Record(CalKey{Model: "elm", Window: ELMWindow, CUs: 1}, 12345)
	c.Record(CalKey{Model: "elm", Window: ELMWindow, CUs: 5}, 4321)
	c.Record(CalKey{Model: "lstm", Window: LSTMWindow, CUs: 5}, 999)

	var buf bytes.Buffer
	if err := c.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCalibration(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if got, want := back.Entries(), c.Entries(); len(got) != len(want) {
		t.Fatalf("round trip lost entries: %d != %d", len(got), len(want))
	} else {
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("entry %d: %+v != %+v", i, got[i], want[i])
			}
		}
	}

	path := filepath.Join(t.TempDir(), "calib.json")
	if err := c.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	fromFile, err := LoadCalibrationFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if fromFile.Len() != c.Len() {
		t.Fatalf("file round trip lost entries: %d != %d", fromFile.Len(), c.Len())
	}
	if cyc, ok := fromFile.Lookup(CalKey{Model: "elm", Window: ELMWindow, CUs: 5}); !ok || cyc != 4321 {
		t.Fatalf("lookup after load: %d, %v", cyc, ok)
	}

	// Schema mismatches are rejected, not silently accepted.
	if _, err := ReadCalibration(bytes.NewReader([]byte(`{"schema":"bogus/9","entries":[]}`))); err == nil {
		t.Fatal("bogus schema accepted")
	}
}

func TestBackendRegistry(t *testing.T) {
	names := Backends()
	for _, want := range []string{BackendGPU, BackendNative, BackendNativeCalibrated} {
		found := false
		for _, n := range names {
			if n == want {
				found = true
			}
		}
		if !found {
			t.Fatalf("registry %v missing %s", names, want)
		}
	}
	model := trainELM(t)
	b, err := NewBackend("", elmSpec(model, 1, nil))
	if err != nil {
		t.Fatal(err)
	}
	if b.Name() != DefaultBackend {
		t.Fatalf("empty backend name built %q, want default %q", b.Name(), DefaultBackend)
	}
	if _, err := NewBackend("no-such-backend", elmSpec(model, 1, nil)); err == nil {
		t.Fatal("unknown backend accepted")
	}
	if _, err := NewBackend(BackendNative, Spec{Dev: gpu.NewDevice(ELMMemEnd, 1)}); err == nil {
		t.Fatal("spec without a model accepted")
	}
}
