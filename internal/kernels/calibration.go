package kernels

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"sync"

	"rtad/internal/gpu"
	"rtad/internal/ml"
)

// CalibrationSchema versions the calibration-table JSON layout.
const CalibrationSchema = "rtad-calibration/1"

// CalKey identifies one calibrated shape. The deployed kernels' cycle
// counts are input-independent (fixed loop bounds, fixed branch pattern per
// wave — TestELMLatencyConstantAcrossInputs pins this), so one GPU
// inference per (model, window, CUs) captures the exact per-inference cost
// and replaying it preserves the MCM timeline bit-for-bit.
type CalKey struct {
	Model  string `json:"model"` // "elm" | "lstm"
	Window int    `json:"window"`
	CUs    int    `json:"cus"`
}

// CalEntry is one recorded shape with its per-inference engine cycles.
type CalEntry struct {
	CalKey
	Cycles int64 `json:"cycles"`
}

// Calibration is a goroutine-safe cycle-cost table shared between native
// backends. A fleet typically builds one, runs the one-time GPU pass per
// deployed shape, and hands the same table to every pipeline.
type Calibration struct {
	mu      sync.RWMutex
	entries map[CalKey]int64
}

// NewCalibration returns an empty table.
func NewCalibration() *Calibration {
	return &Calibration{entries: map[CalKey]int64{}}
}

// Lookup returns the recorded cycles for key.
func (c *Calibration) Lookup(key CalKey) (int64, bool) {
	if c == nil {
		return 0, false
	}
	c.mu.RLock()
	defer c.mu.RUnlock()
	cyc, ok := c.entries[key]
	return cyc, ok
}

// Record stores the cycle cost for key (last write wins).
func (c *Calibration) Record(key CalKey, cycles int64) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.entries[key] = cycles
}

// Len reports the number of calibrated shapes.
func (c *Calibration) Len() int {
	if c == nil {
		return 0
	}
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.entries)
}

// Entries returns the table sorted by model, window, CUs — the
// deterministic order used by WriteJSON and embedded reports.
func (c *Calibration) Entries() []CalEntry {
	if c == nil {
		return nil
	}
	c.mu.RLock()
	out := make([]CalEntry, 0, len(c.entries))
	for key, cyc := range c.entries {
		out = append(out, CalEntry{CalKey: key, Cycles: cyc})
	}
	c.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Model != b.Model {
			return a.Model < b.Model
		}
		if a.Window != b.Window {
			return a.Window < b.Window
		}
		return a.CUs < b.CUs
	})
	return out
}

// CalibrateELM runs the one-time GPU pass for the deployed ELM at the
// given CU count: one cycle-accurate inference on a scratch device records
// the per-inference cost. Shapes already in the table are skipped.
func (c *Calibration) CalibrateELM(m *ml.ELM, cus int) error {
	key := CalKey{Model: "elm", Window: ELMWindow, CUs: cus}
	if _, ok := c.Lookup(key); ok {
		return nil
	}
	eng, err := NewELMEngine(gpu.NewDevice(ELMMemEnd, cus), m)
	if err != nil {
		return err
	}
	_, cyc, err := eng.Infer(make([]int32, ELMWindow))
	if err != nil {
		return err
	}
	c.Record(key, cyc)
	return nil
}

// CalibrateLSTM is CalibrateELM for the deployed LSTM shape.
func (c *Calibration) CalibrateLSTM(m *ml.LSTM, cus int) error {
	key := CalKey{Model: "lstm", Window: LSTMWindow, CUs: cus}
	if _, ok := c.Lookup(key); ok {
		return nil
	}
	eng, err := NewLSTMEngine(gpu.NewDevice(LSTMMemEnd, cus), m)
	if err != nil {
		return err
	}
	_, cyc, err := eng.Infer(make([]int32, LSTMWindow))
	if err != nil {
		return err
	}
	c.Record(key, cyc)
	return nil
}

// CalibrateSpec runs the pass for a backend spec's model at its device's
// CU count.
func (c *Calibration) CalibrateSpec(s Spec) error {
	model, _, err := s.kind()
	if err != nil {
		return err
	}
	if s.Dev == nil {
		return fmt.Errorf("kernels: calibration needs a device to read the CU count from")
	}
	if model == "elm" {
		return c.CalibrateELM(s.ELM, s.Dev.NumCU)
	}
	return c.CalibrateLSTM(s.LSTM, s.Dev.NumCU)
}

type calibrationDoc struct {
	Schema  string     `json:"schema"`
	Entries []CalEntry `json:"entries"`
}

// WriteJSON renders the table as versioned, sorted, indented JSON.
func (c *Calibration) WriteJSON(w io.Writer) error {
	blob, err := json.MarshalIndent(calibrationDoc{
		Schema:  CalibrationSchema,
		Entries: c.Entries(),
	}, "", "  ")
	if err != nil {
		return err
	}
	_, err = w.Write(append(blob, '\n'))
	return err
}

// ReadCalibration parses a table written by WriteJSON.
func ReadCalibration(r io.Reader) (*Calibration, error) {
	var doc calibrationDoc
	if err := json.NewDecoder(r).Decode(&doc); err != nil {
		return nil, fmt.Errorf("kernels: calibration: %w", err)
	}
	if doc.Schema != CalibrationSchema {
		return nil, fmt.Errorf("kernels: calibration schema %q, want %q", doc.Schema, CalibrationSchema)
	}
	c := NewCalibration()
	for _, e := range doc.Entries {
		c.Record(e.CalKey, e.Cycles)
	}
	return c, nil
}

// SaveFile writes the table to path.
func (c *Calibration) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := c.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadCalibrationFile reads a table saved by SaveFile.
func LoadCalibrationFile(path string) (*Calibration, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadCalibration(f)
}
