package kernels

import (
	"testing"

	"rtad/internal/gpu"
	"rtad/internal/ml"
)

// specFor builds a fresh single-model spec over its own device.
func specFor(t testing.TB, elm *ml.ELM, lstm *ml.LSTM) Spec {
	t.Helper()
	s := Spec{ELM: elm, LSTM: lstm}
	if elm != nil {
		s.Dev = gpu.NewDevice(ELMMemEnd, 1)
	} else {
		s.Dev = gpu.NewDevice(LSTMMemEnd, 1)
	}
	return s
}

// TestInferBatchMatchesInfer pins the Backend contract: InferBatch over a
// stream equals the same stream fed through Infer one window at a time —
// judgments, cycle charges and subsequent state — for every backend and
// both models.
func TestInferBatchMatchesInfer(t *testing.T) {
	elm := trainELM(t)
	lstm := trainLSTM(t)
	for _, tc := range []struct {
		model   string
		windows [][]int32
		mk      func() Spec
	}{
		{"elm", markovWindows(ELMVocab, ELMWindow, 60, 21), func() Spec { return specFor(t, elm, nil) }},
		{"lstm", markovWindows(LSTMVocab, LSTMWindow, 60, 23), func() Spec { return specFor(t, nil, lstm) }},
	} {
		for _, name := range Backends() {
			seqB, err := NewBackend(name, tc.mk())
			if err != nil {
				t.Fatal(err)
			}
			batB, err := NewBackend(name, tc.mk())
			if err != nil {
				t.Fatal(err)
			}
			// Interleave batch sizes, including 1, so chunk boundaries are
			// shown not to matter.
			for start, sizes := 0, []int{1, 7, 3, 16, 33}; start < len(tc.windows); {
				n := sizes[0]
				sizes = append(sizes[1:], n)
				if start+n > len(tc.windows) {
					n = len(tc.windows) - start
				}
				chunk := tc.windows[start : start+n]
				js, cycles, err := batB.InferBatch(chunk)
				if err != nil {
					t.Fatalf("%s/%s: InferBatch: %v", tc.model, name, err)
				}
				if len(js) != n || len(cycles) != n {
					t.Fatalf("%s/%s: InferBatch returned %d/%d results for %d windows",
						tc.model, name, len(js), len(cycles), n)
				}
				for i := 0; i < n; i++ {
					wj, wc, err := seqB.Infer(chunk[i])
					if err != nil {
						t.Fatalf("%s/%s: Infer: %v", tc.model, name, err)
					}
					if js[i] != wj || cycles[i] != wc {
						t.Fatalf("%s/%s window %d: batched (%+v, %d) != sequential (%+v, %d)",
							tc.model, name, start+i, js[i], cycles[i], wj, wc)
					}
				}
				start += n
			}
		}
	}
}

// TestInferBatchRejectsBadWindow pins the error path: an invalid window
// fails the whole batch for every backend.
func TestInferBatchRejectsBadWindow(t *testing.T) {
	elm := trainELM(t)
	for _, name := range Backends() {
		b, err := NewBackend(name, specFor(t, elm, nil))
		if err != nil {
			t.Fatal(err)
		}
		good := markovWindows(ELMVocab, ELMWindow, 1, 3)[0]
		if _, _, err := b.Infer(good); err != nil { // calibrate the native path
			t.Fatal(err)
		}
		bad := append([]int32(nil), good...)
		bad[0] = ELMVocab + 5
		if _, _, err := b.InferBatch([][]int32{good, bad}); err == nil {
			t.Fatalf("%s: InferBatch accepted an out-of-vocab class", name)
		}
	}
}

// TestInferGroupMatchesPerSession drives a mixed fleet — both models,
// all three backends, several instances each — through the GroupRunner and
// checks every session's stream against a mirror instance advanced by
// plain Infer. Requests carry variable-length window chunks, so members of
// one fused pass drop out at different steps (the active-prefix path).
// This is the serving coordinator's correctness contract: grouping across
// sessions must not perturb any one session's stream.
func TestInferGroupMatchesPerSession(t *testing.T) {
	elm := trainELM(t)
	lstm := trainLSTM(t)
	type session struct {
		live, mirror Backend
		windows      [][]int32
		next         int // stream cursor
	}
	var sessions []*session
	seed := int64(100)
	for _, name := range Backends() {
		for i := 0; i < 3; i++ {
			live, err := NewBackend(name, specFor(t, elm, nil))
			if err != nil {
				t.Fatal(err)
			}
			mirror, err := NewBackend(name, specFor(t, elm, nil))
			if err != nil {
				t.Fatal(err)
			}
			sessions = append(sessions, &session{live: live, mirror: mirror,
				windows: markovWindows(ELMVocab, ELMWindow, 60, seed)})
			seed++
			live, err = NewBackend(name, specFor(t, nil, lstm))
			if err != nil {
				t.Fatal(err)
			}
			mirror, err = NewBackend(name, specFor(t, nil, lstm))
			if err != nil {
				t.Fatal(err)
			}
			sessions = append(sessions, &session{live: live, mirror: mirror,
				windows: markovWindows(LSTMVocab, LSTMWindow, 60, seed)})
			seed++
		}
	}
	runner := NewGroupRunner()
	for round := 0; round < 12; round++ {
		// Stagger membership and chunk length so batch composition — and
		// each member's step count within a pass — varies between rounds.
		var reqs []BatchRequest
		var members []*session
		for si, s := range sessions {
			if round%(si%3+1) != 0 {
				continue
			}
			n := 1 + (si+round)%4
			if left := len(s.windows) - s.next; n > left {
				n = left
			}
			if n == 0 {
				continue
			}
			reqs = append(reqs, BatchRequest{Backend: s.live, Windows: s.windows[s.next : s.next+n]})
			members = append(members, s)
		}
		res := runner.InferGroup(reqs)
		if len(res) != len(reqs) {
			t.Fatalf("round %d: %d results for %d requests", round, len(res), len(reqs))
		}
		for ri, s := range members {
			r := res[ri]
			if r.Err != nil {
				t.Fatalf("round %d (%s): group err %v", round, s.live.Name(), r.Err)
			}
			n := len(reqs[ri].Windows)
			if len(r.Js) != n || len(r.Cycles) != n {
				t.Fatalf("round %d (%s): %d/%d results for %d windows",
					round, s.live.Name(), len(r.Js), len(r.Cycles), n)
			}
			for k := 0; k < n; k++ {
				wj, wc, werr := s.mirror.Infer(s.windows[s.next+k])
				if werr != nil {
					t.Fatal(werr)
				}
				if r.Js[k] != wj || r.Cycles[k] != wc {
					t.Fatalf("round %d (%s) step %d: group (%+v, %d) != sequential (%+v, %d)",
						round, s.live.Name(), k, r.Js[k], r.Cycles[k], wj, wc)
				}
			}
			s.next += n
		}
	}
}

// TestInferGroupBadRowIsolated pins that one session's invalid window
// fails only that row; the rest of the group still judges.
func TestInferGroupBadRowIsolated(t *testing.T) {
	elm := trainELM(t)
	mk := func() Backend {
		b, err := NewBackend(BackendNativeCalibrated, specFor(t, elm, nil))
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	a, b, mirror := mk(), mk(), mk()
	good := markovWindows(ELMVocab, ELMWindow, 3, 5)
	bad := append([]int32(nil), good[1]...)
	bad[2] = -1
	runner := NewGroupRunner()
	res := runner.InferGroup([]BatchRequest{
		{Backend: a, Windows: [][]int32{good[0], good[2]}},
		{Backend: b, Windows: [][]int32{good[1], bad}},
	})
	if res[1].Err == nil {
		t.Fatal("invalid row did not error")
	}
	if res[0].Err != nil {
		t.Fatalf("good row errored: %v", res[0].Err)
	}
	for k, w := range [][]int32{good[0], good[2]} {
		wj, wc, err := mirror.Infer(w)
		if err != nil {
			t.Fatal(err)
		}
		if res[0].Js[k] != wj || res[0].Cycles[k] != wc {
			t.Fatalf("good row step %d: (%+v, %d) != sequential (%+v, %d)",
				k, res[0].Js[k], res[0].Cycles[k], wj, wc)
		}
	}
}

// Benchmarks: one fused group pass over n same-model native sessions, each
// carrying a k-step chunk, against the n×k inline Infer calls the unbatched
// server would make. This is the engine-side half of the serving trade —
// coordination cost lives in internal/serve and is not measured here.
func benchNativeFleet(b *testing.B, n, k int) ([]Backend, []BatchRequest) {
	b.Helper()
	lstm := trainLSTM(b)
	backends := make([]Backend, n)
	reqs := make([]BatchRequest, n)
	for i := range backends {
		wins := markovWindows(LSTMVocab, LSTMWindow, k, 31+int64(i))
		be, err := NewBackend(BackendNative, specFor(b, nil, lstm))
		if err != nil {
			b.Fatal(err)
		}
		// First call calibrates through the GPU path; keep it out of the
		// timed loop.
		if _, _, err := be.Infer(wins[0]); err != nil {
			b.Fatal(err)
		}
		backends[i] = be
		reqs[i] = BatchRequest{Backend: be, Windows: wins}
	}
	return backends, reqs
}

func benchSeq(b *testing.B, n, k int) {
	backends, reqs := benchNativeFleet(b, n, k)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for s, be := range backends {
			for _, w := range reqs[s].Windows {
				if _, _, err := be.Infer(w); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
}

func benchGroup(b *testing.B, n, k int) {
	_, reqs := benchNativeFleet(b, n, k)
	g := NewGroupRunner()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, r := range g.InferGroup(reqs) {
			if r.Err != nil {
				b.Fatal(r.Err)
			}
		}
	}
}

func BenchmarkNativeLSTMInferSeq32(b *testing.B)      { benchSeq(b, 32, 1) }
func BenchmarkNativeLSTMInferGroup32(b *testing.B)    { benchGroup(b, 32, 1) }
func BenchmarkNativeLSTMInferSeq32x16(b *testing.B)   { benchSeq(b, 32, 16) }
func BenchmarkNativeLSTMInferGroup32x16(b *testing.B) { benchGroup(b, 32, 16) }
