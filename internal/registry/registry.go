// Package registry is the zero-downtime model lifecycle behind rtadd: a
// versioned store of immutable core.Deployments with atomic hot-swap and
// canary shadow evaluation. Every trained model registered under a
// benchmark/model key becomes an immutable Version with a monotonic id;
// exactly one version per key is *active* at a time and new sessions are
// admitted on it, while sessions already in flight keep the version that
// welcomed them (refcounted) until they finish — so a swap never changes a
// judgment byte mid-stream and never rejects a frame.
//
// The promotion protocol is load → canary → promote → retire:
//
//	load     Register a candidate version (from a file, or retrained).
//	canary   StartCanary shadow-judges a configurable slice of incoming
//	         traffic on the candidate: shadowed sessions run a second,
//	         invisible session over the same trace bytes and the registry
//	         accumulates per-version anomaly-rate deltas (candidate vs the
//	         active baseline on the same traffic). Shadow judgments never
//	         reach clients.
//	promote  Promote atomically swaps the active version; the previous
//	         active is retired but keeps serving its in-flight sessions.
//	retire   Retire removes a candidate/retired version once its last
//	         session releases it.
//
// State transitions publish to rtad_serve_model_* metrics when a telemetry
// bundle is attached with Observe.
package registry

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"rtad/internal/core"
	"rtad/internal/obs"
)

// State is a version's lifecycle position.
type State int

// Version states. Candidate and Canary versions serve no client traffic;
// Retired versions only finish the in-flight sessions that still hold them.
const (
	StateCandidate State = iota
	StateCanary
	StateActive
	StateRetired
)

// String names the state (the /debug/models and metric label spelling).
func (s State) String() string {
	switch s {
	case StateCandidate:
		return "candidate"
	case StateCanary:
		return "canary"
	case StateActive:
		return "active"
	case StateRetired:
		return "retired"
	default:
		return fmt.Sprintf("state(%d)", int(s))
	}
}

// Meta is the origin metadata the caller records with a version. The
// registry never reads clocks itself — timestamps are passed in, keeping
// registration deterministic under test.
type Meta struct {
	// Origin says where the weights came from: a file path, "trained", an
	// admin-endpoint upload — free-form, surfaced in /debug/models.
	Origin string
	// LoadedAt is when the caller loaded or finished training the model.
	LoadedAt time.Time
}

// Version is one immutable registered deployment. Identity fields are set
// at registration; state is guarded by the registry lock; the judgment
// counters are owned by the registry and updated under its lock too (they
// are bumped once per flushed judgment burst, not per judgment — far off
// any hot path).
type Version struct {
	id   int64
	key  string
	dep  *core.Deployment
	meta Meta
	fp   uint64

	// Registry-lock-guarded lifecycle.
	state State
	refs  int64 // admitted sessions (primary + shadow) still holding this version
	gone  bool  // retired version fully dropped from the registry

	// Live-traffic tally (sessions admitted on this version while active).
	sessions  int64
	judged    int64
	anomalies int64

	// Canary tally. shadow* counts this version's own shadow judgments;
	// baseline* counts the active version's judgments on exactly the same
	// shadowed sessions, so the delta compares like with like.
	shadowSessions    int64
	shadowJudged      int64
	shadowAnomalies   int64
	baselineJudged    int64
	baselineAnomalies int64
}

// ID is the version's monotonic registry-wide id.
func (v *Version) ID() int64 { return v.id }

// Key is the benchmark/model key the version is registered under.
func (v *Version) Key() string { return v.key }

// Deployment returns the immutable trained deployment.
func (v *Version) Deployment() *core.Deployment { return v.dep }

// Meta returns the origin metadata recorded at registration.
func (v *Version) Meta() Meta { return v.meta }

// Fingerprint is the deployment's content identity (core.Fingerprint),
// memoized at registration.
func (v *Version) Fingerprint() uint64 { return v.fp }

// model is the per-key lifecycle: the version history, the active version,
// and at most one canary candidate with its traffic slice.
type model struct {
	versions []*Version // registration order
	active   *Version
	canary   *Version
	fraction float64
	// admitted counts admissions on this key; the canary slice is carved
	// deterministically from it (every session n with
	// floor(n·f) > floor((n-1)·f) is shadowed).
	admitted int64
}

// Registry is the goroutine-safe version store. The zero value is not
// usable; call New.
type Registry struct {
	mu     sync.Mutex
	nextID int64
	keys   map[string]*model

	// Metrics (nil-safe until Observe). Gauges carry the model key — and
	// for the _info series, version and state — as embedded labels.
	tel             *obs.Telemetry
	mSwaps          *obs.Counter
	mLoads          *obs.Counter
	mRetired        *obs.Counter
	mCanarySessions *obs.Counter
	mShadowJudged   *obs.Counter
	mShadowAnomaly  *obs.Counter
}

// New returns an empty registry.
func New() *Registry {
	return &Registry{keys: map[string]*model{}}
}

// Observe attaches a telemetry bundle: every state transition updates the
// rtad_serve_model_* gauges and counters from here on, and the current
// state is published immediately.
func (r *Registry) Observe(tel *obs.Telemetry) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.tel = tel
	r.mSwaps = tel.Counter("rtad_serve_model_swaps_total")
	r.mLoads = tel.Counter("rtad_serve_model_loads_total")
	r.mRetired = tel.Counter("rtad_serve_model_retired_total")
	r.mCanarySessions = tel.Counter("rtad_serve_canary_sessions_total")
	r.mShadowJudged = tel.Counter("rtad_serve_shadow_judgments_total")
	r.mShadowAnomaly = tel.Counter("rtad_serve_shadow_anomalies_total")
	for key, m := range r.keys {
		r.publishLocked(key, m)
	}
}

// publishLocked refreshes the key's gauges after a transition.
func (r *Registry) publishLocked(key string, m *model) {
	if r.tel == nil {
		return
	}
	active, canary := int64(0), int64(0)
	if m.active != nil {
		active = m.active.id
	}
	if m.canary != nil {
		canary = m.canary.id
	}
	r.tel.Gauge(`rtad_serve_model_active_version{model="` + key + `"}`).Set(active)
	r.tel.Gauge(`rtad_serve_model_canary_version{model="` + key + `"}`).Set(canary)
	live := int64(0)
	for _, v := range m.versions {
		if !v.gone {
			live++
		}
		val := int64(1)
		if v.gone {
			val = 0
		}
		r.tel.Gauge(fmt.Sprintf(`rtad_serve_model_info{model=%q,version="%d",state=%q}`,
			key, v.id, v.state.String())).Set(val)
		// Stale states of this version zero out so exactly one _info series
		// per version reads 1.
		for _, st := range []State{StateCandidate, StateCanary, StateActive, StateRetired} {
			if st == v.state {
				continue
			}
			r.tel.Gauge(fmt.Sprintf(`rtad_serve_model_info{model=%q,version="%d",state=%q}`,
				key, v.id, st.String())).Set(0)
		}
	}
	r.tel.Gauge(`rtad_serve_model_versions{model="` + key + `"}`).Set(live)
}

// Register stores dep as a new candidate version under its benchmark/model
// key and returns it. A deployment whose fingerprint matches a version the
// key already holds (any state but fully-retired) is not duplicated — the
// existing version is returned, which makes file-watch re-scans and repeated
// admin loads idempotent.
func (r *Registry) Register(dep *core.Deployment, meta Meta) (*Version, error) {
	if dep == nil {
		return nil, fmt.Errorf("registry: nil deployment")
	}
	key := Key(dep)
	fp := dep.Fingerprint()
	r.mu.Lock()
	defer r.mu.Unlock()
	m := r.keys[key]
	if m == nil {
		m = &model{}
		r.keys[key] = m
	}
	for _, v := range m.versions {
		if !v.gone && v.fp == fp {
			return v, nil
		}
	}
	r.nextID++
	v := &Version{id: r.nextID, key: key, dep: dep, meta: meta, fp: fp, state: StateCandidate}
	dep.Retain() // the registry's own hold, dropped when the version is dropped
	m.versions = append(m.versions, v)
	r.mLoads.Inc()
	r.publishLocked(key, m)
	return v, nil
}

// Key returns the benchmark/model key a deployment registers under.
func Key(dep *core.Deployment) string {
	model := "lstm"
	if dep.Kind == core.ModelELM {
		model = "elm"
	}
	return dep.Profile.Name + "/" + model
}

// find resolves key/id under the lock.
func (r *Registry) findLocked(key string, id int64) (*model, *Version, error) {
	m := r.keys[key]
	if m == nil {
		return nil, nil, fmt.Errorf("registry: no model %q", key)
	}
	for _, v := range m.versions {
		if v.id == id && !v.gone {
			return m, v, nil
		}
	}
	return nil, nil, fmt.Errorf("registry: model %q has no version %d", key, id)
}

// Promote atomically makes version id the active version of key: every
// session admitted after Promote returns is welcomed on it, while sessions
// in flight finish on the version that admitted them. The previous active
// version is retired (it drops from the registry once its last session
// releases it); a promoted canary stops shadowing.
func (r *Registry) Promote(key string, id int64) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	m, v, err := r.findLocked(key, id)
	if err != nil {
		return err
	}
	if v.state == StateActive {
		return nil
	}
	if m.canary == v {
		m.canary, m.fraction = nil, 0
	}
	if prev := m.active; prev != nil {
		prev.state = StateRetired
		r.mRetired.Inc()
		r.dropIfDrainedLocked(m, prev)
		// Only a promotion that displaces a live active version is a swap;
		// the bootstrap promotion of a key's first version is not.
		r.mSwaps.Inc()
	}
	v.state = StateActive
	m.active = v
	r.publishLocked(key, m)
	return nil
}

// StartCanary shadow-evaluates version id on a fraction of key's incoming
// sessions (0 < fraction <= 1). One canary per key at a time; restarting
// with a new fraction retunes the slice, and the candidate's shadow tallies
// continue to accumulate.
func (r *Registry) StartCanary(key string, id int64, fraction float64) error {
	if fraction <= 0 || fraction > 1 {
		return fmt.Errorf("registry: canary fraction %v outside (0, 1]", fraction)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	m, v, err := r.findLocked(key, id)
	if err != nil {
		return err
	}
	if v.state == StateActive || v.state == StateRetired {
		return fmt.Errorf("registry: cannot canary %s version %d (%s)", key, id, v.state)
	}
	if m.active == nil {
		return fmt.Errorf("registry: %s has no active version to shadow against", key)
	}
	if m.canary != nil && m.canary != v {
		m.canary.state = StateCandidate
	}
	v.state = StateCanary
	m.canary, m.fraction = v, fraction
	r.publishLocked(key, m)
	return nil
}

// StopCanary returns key's canary (if id is it) to plain candidate.
func (r *Registry) StopCanary(key string, id int64) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	m, v, err := r.findLocked(key, id)
	if err != nil {
		return err
	}
	if m.canary != v {
		return fmt.Errorf("registry: %s version %d is not the canary", key, id)
	}
	v.state = StateCandidate
	m.canary, m.fraction = nil, 0
	r.publishLocked(key, m)
	return nil
}

// Retire drops a candidate, canary, or already-retired version: no new
// shadow traffic reaches it, and it leaves the registry once (and if) its
// last session releases it. The active version cannot be retired directly —
// promote its replacement instead, which is what keeps the key serving at
// every instant.
func (r *Registry) Retire(key string, id int64) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	m, v, err := r.findLocked(key, id)
	if err != nil {
		return err
	}
	if v.state == StateActive {
		return fmt.Errorf("registry: version %d is active; promote a replacement to retire it", id)
	}
	if m.canary == v {
		m.canary, m.fraction = nil, 0
	}
	if v.state != StateRetired {
		v.state = StateRetired
		r.mRetired.Inc()
	}
	r.dropIfDrainedLocked(m, v)
	r.publishLocked(key, m)
	return nil
}

// dropIfDrainedLocked releases the registry's deployment hold once a
// retired version has no sessions left.
func (r *Registry) dropIfDrainedLocked(m *model, v *Version) {
	if v.state == StateRetired && v.refs == 0 && !v.gone {
		v.gone = true
		v.dep.Release()
	}
}

// Acquire admits one session on key's active version: the version is
// returned with a hold the caller must Release when the session ends, and
// shadow reports whether this session falls in the canary slice (in which
// case canary is the candidate version, also held). The slice is carved
// deterministically from the admission sequence — over any window of
// admissions, the shadowed share converges on the configured fraction.
func (r *Registry) Acquire(key string) (active, canary *Version, err error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	m := r.keys[key]
	if m == nil || m.active == nil {
		return nil, nil, fmt.Errorf("registry: no active model %q", key)
	}
	v := m.active
	v.refs++
	v.sessions++
	v.dep.Retain()
	if m.canary != nil {
		n := m.admitted + 1
		if int64(float64(n)*m.fraction) > int64(float64(n-1)*m.fraction) {
			canary = m.canary
			canary.refs++
			canary.shadowSessions++
			canary.dep.Retain()
			r.mCanarySessions.Inc()
		}
	}
	m.admitted++
	return v, canary, nil
}

// Keys lists the registered benchmark/model keys, sorted.
func (r *Registry) Keys() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]string, 0, len(r.keys))
	for k := range r.keys {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// ActiveKeys lists the keys that currently have an active version — the
// set a server can admit sessions on.
func (r *Registry) ActiveKeys() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]string, 0, len(r.keys))
	for k, m := range r.keys {
		if m.active != nil {
			out = append(out, k)
		}
	}
	sort.Strings(out)
	return out
}

// Active returns key's active version without taking a hold (introspection
// only — admission must go through Acquire).
func (r *Registry) Active(key string) (*Version, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	m := r.keys[key]
	if m == nil || m.active == nil {
		return nil, false
	}
	return m.active, true
}

// Release returns a session's hold on v. The final release of a retired
// version drops it from the registry.
func (r *Registry) Release(v *Version) {
	if v == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if v.refs <= 0 {
		panic("registry: Release without a matching Acquire")
	}
	v.refs--
	v.dep.Release()
	if m := r.keys[v.key]; m != nil {
		r.dropIfDrainedLocked(m, v)
		r.publishLocked(v.key, m)
	}
}

// RecordJudgments tallies a primary session's delivered judgments against
// its admitted version (live anomaly rate per version).
func (r *Registry) RecordJudgments(v *Version, judged, anomalies int64) {
	if v == nil || judged == 0 {
		return
	}
	r.mu.Lock()
	v.judged += judged
	v.anomalies += anomalies
	r.mu.Unlock()
}

// RecordShadow tallies one shadowed burst: the candidate's own shadow
// judgments plus the active baseline's judgments over the same trace bytes,
// so Snapshot can report the anomaly-rate delta on identical traffic.
func (r *Registry) RecordShadow(canary *Version, shadowJudged, shadowAnomalies, baseJudged, baseAnomalies int64) {
	if canary == nil {
		return
	}
	r.mu.Lock()
	canary.shadowJudged += shadowJudged
	canary.shadowAnomalies += shadowAnomalies
	canary.baselineJudged += baseJudged
	canary.baselineAnomalies += baseAnomalies
	r.mu.Unlock()
	r.mShadowJudged.Add(shadowJudged)
	r.mShadowAnomaly.Add(shadowAnomalies)
}

// VersionInfo is one version's introspection snapshot (/debug/models row).
type VersionInfo struct {
	Version     int64     `json:"version"`
	State       string    `json:"state"`
	Origin      string    `json:"origin,omitempty"`
	LoadedAt    time.Time `json:"loaded_at,omitzero"`
	Fingerprint string    `json:"fingerprint"`
	Refs        int64     `json:"refs"`
	Sessions    int64     `json:"sessions"`
	Judged      int64     `json:"judged"`
	Anomalies   int64     `json:"anomalies"`
	AnomalyRate float64   `json:"anomaly_rate"`

	// Canary figures (present once the version has shadowed traffic).
	ShadowSessions      int64   `json:"shadow_sessions,omitempty"`
	ShadowJudged        int64   `json:"shadow_judged,omitempty"`
	ShadowAnomalies     int64   `json:"shadow_anomalies,omitempty"`
	ShadowAnomalyRate   float64 `json:"shadow_anomaly_rate,omitempty"`
	BaselineJudged      int64   `json:"baseline_judged,omitempty"`
	BaselineAnomalies   int64   `json:"baseline_anomalies,omitempty"`
	BaselineAnomalyRate float64 `json:"baseline_anomaly_rate,omitempty"`
	// AnomalyRateDelta is shadow − baseline on the shadowed traffic: the
	// promotion gate. A retrained model that silently regressed shows up
	// here as a positive delta before it ever judges a client.
	AnomalyRateDelta float64 `json:"anomaly_rate_delta"`
}

// ModelInfo is one key's introspection snapshot.
type ModelInfo struct {
	Model          string        `json:"model"`
	ActiveVersion  int64         `json:"active_version"`
	CanaryVersion  int64         `json:"canary_version,omitempty"`
	CanaryFraction float64       `json:"canary_fraction,omitempty"`
	Versions       []VersionInfo `json:"versions"`
}

func rate(anomalies, judged int64) float64 {
	if judged == 0 {
		return 0
	}
	return float64(anomalies) / float64(judged)
}

// Snapshot renders the whole registry, keys sorted, versions in
// registration order (dropped versions omitted).
func (r *Registry) Snapshot() []ModelInfo {
	r.mu.Lock()
	defer r.mu.Unlock()
	keys := make([]string, 0, len(r.keys))
	for k := range r.keys {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]ModelInfo, 0, len(keys))
	for _, k := range keys {
		m := r.keys[k]
		mi := ModelInfo{Model: k}
		if m.active != nil {
			mi.ActiveVersion = m.active.id
		}
		if m.canary != nil {
			mi.CanaryVersion = m.canary.id
			mi.CanaryFraction = m.fraction
		}
		for _, v := range m.versions {
			if v.gone {
				continue
			}
			vi := VersionInfo{
				Version:     v.id,
				State:       v.state.String(),
				Origin:      v.meta.Origin,
				LoadedAt:    v.meta.LoadedAt,
				Fingerprint: fmt.Sprintf("%016x", v.fp),
				Refs:        v.refs,
				Sessions:    v.sessions,
				Judged:      v.judged,
				Anomalies:   v.anomalies,
				AnomalyRate: rate(v.anomalies, v.judged),

				ShadowSessions:      v.shadowSessions,
				ShadowJudged:        v.shadowJudged,
				ShadowAnomalies:     v.shadowAnomalies,
				ShadowAnomalyRate:   rate(v.shadowAnomalies, v.shadowJudged),
				BaselineJudged:      v.baselineJudged,
				BaselineAnomalies:   v.baselineAnomalies,
				BaselineAnomalyRate: rate(v.baselineAnomalies, v.baselineJudged),
			}
			vi.AnomalyRateDelta = vi.ShadowAnomalyRate - vi.BaselineAnomalyRate
			mi.Versions = append(mi.Versions, vi)
		}
		out = append(out, mi)
	}
	return out
}
