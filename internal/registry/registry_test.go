package registry_test

import (
	"testing"
	"time"

	"rtad/internal/core"
	"rtad/internal/ml"
	"rtad/internal/obs"
	"rtad/internal/registry"
	"rtad/internal/workload"
)

// dep fabricates a minimal deployment whose content identity is driven by
// the threshold — enough for lifecycle tests without paying for training.
func dep(bench string, threshold float64) *core.Deployment {
	return &core.Deployment{
		Profile: workload.Profile{Name: bench},
		Kind:    core.ModelELM,
		ELM:     &ml.ELM{Cfg: ml.DefaultELMConfig(), Threshold: threshold},
	}
}

func mustRegister(t *testing.T, r *registry.Registry, d *core.Deployment, origin string) *registry.Version {
	t.Helper()
	v, err := r.Register(d, registry.Meta{Origin: origin, LoadedAt: time.Unix(1700000000, 0)})
	if err != nil {
		t.Fatalf("Register: %v", err)
	}
	return v
}

func TestRegisterMonotonicIDsAndDedupe(t *testing.T) {
	r := registry.New()
	v1 := mustRegister(t, r, dep("b", 0.1), "trained")
	v2 := mustRegister(t, r, dep("b", 0.2), "file:a.dep")
	if v1.ID() != 1 || v2.ID() != 2 {
		t.Fatalf("ids = %d, %d; want 1, 2", v1.ID(), v2.ID())
	}
	if v1.Key() != "b/elm" || v2.Key() != "b/elm" {
		t.Fatalf("keys = %q, %q; want b/elm", v1.Key(), v2.Key())
	}
	// Same content registers as the same version (file-watch idempotence).
	again := mustRegister(t, r, dep("b", 0.1), "file:rescan.dep")
	if again != v1 {
		t.Fatalf("re-register of identical content: got version %d, want %d", again.ID(), v1.ID())
	}
	// A different benchmark key starts its own history but shares the id space.
	v3 := mustRegister(t, r, dep("c", 0.1), "trained")
	if v3.ID() != 3 {
		t.Fatalf("cross-key id = %d, want 3", v3.ID())
	}
}

func TestPromoteSwapAndRollback(t *testing.T) {
	r := registry.New()
	v1 := mustRegister(t, r, dep("b", 0.1), "trained")
	if _, _, err := r.Acquire("b/elm"); err == nil {
		t.Fatal("Acquire before any promotion should fail")
	}
	if err := r.Promote("b/elm", v1.ID()); err != nil {
		t.Fatalf("Promote v1: %v", err)
	}
	a, shadow, err := r.Acquire("b/elm")
	if err != nil || a != v1 || shadow != nil {
		t.Fatalf("Acquire = %v, %v, %v; want v1, nil, nil", a, shadow, err)
	}
	r.Release(a)

	v2 := mustRegister(t, r, dep("b", 0.2), "file:v2.dep")
	if err := r.Promote("b/elm", v2.ID()); err != nil {
		t.Fatalf("Promote v2: %v", err)
	}
	if a, _, _ := r.Acquire("b/elm"); a != v2 {
		t.Fatalf("post-swap Acquire = v%d, want v%d", a.ID(), v2.ID())
	} else {
		r.Release(a)
	}
	// v1 had no holds, so the swap dropped it: it can no longer be promoted.
	if err := r.Promote("b/elm", v1.ID()); err == nil {
		t.Fatal("promoting a dropped version should fail")
	}

	// Rollback: a retired-but-held version can be re-promoted.
	v3 := mustRegister(t, r, dep("b", 0.3), "file:v3.dep")
	held, _, _ := r.Acquire("b/elm") // hold v2 in flight
	if err := r.Promote("b/elm", v3.ID()); err != nil {
		t.Fatalf("Promote v3: %v", err)
	}
	if err := r.Promote("b/elm", v2.ID()); err != nil {
		t.Fatalf("rollback to held v2: %v", err)
	}
	r.Release(held)
	if a, _, _ := r.Acquire("b/elm"); a != v2 {
		t.Fatalf("post-rollback Acquire = v%d, want v%d", a.ID(), v2.ID())
	}
}

func TestInFlightHoldsSurviveSwap(t *testing.T) {
	r := registry.New()
	d1 := dep("b", 0.1)
	v1 := mustRegister(t, r, d1, "trained")
	if err := r.Promote("b/elm", v1.ID()); err != nil {
		t.Fatal(err)
	}
	inflight, _, err := r.Acquire("b/elm")
	if err != nil {
		t.Fatal(err)
	}
	if d1.Refs() != 2 { // registry hold + session hold
		t.Fatalf("deployment refs = %d, want 2", d1.Refs())
	}

	v2 := mustRegister(t, r, dep("b", 0.2), "file:v2.dep")
	if err := r.Promote("b/elm", v2.ID()); err != nil {
		t.Fatal(err)
	}
	// The in-flight session still holds retired v1; the snapshot still shows it.
	snap := r.Snapshot()
	if len(snap) != 1 || len(snap[0].Versions) != 2 {
		t.Fatalf("snapshot = %+v; want 1 model with 2 versions", snap)
	}
	if st := snap[0].Versions[0].State; st != "retired" {
		t.Fatalf("v1 state = %q, want retired", st)
	}
	r.Release(inflight)
	if d1.Refs() != 0 {
		t.Fatalf("deployment refs after final release = %d, want 0", d1.Refs())
	}
	snap = r.Snapshot()
	if len(snap[0].Versions) != 1 || snap[0].Versions[0].Version != v2.ID() {
		t.Fatalf("post-drain snapshot versions = %+v; want only v2", snap[0].Versions)
	}
}

func TestCanarySliceDeterministic(t *testing.T) {
	r := registry.New()
	v1 := mustRegister(t, r, dep("b", 0.1), "trained")
	v2 := mustRegister(t, r, dep("b", 0.2), "file:v2.dep")
	if err := r.StartCanary("b/elm", v2.ID(), 0.25); err == nil {
		t.Fatal("canary with no active version should fail")
	}
	if err := r.Promote("b/elm", v1.ID()); err != nil {
		t.Fatal(err)
	}
	if err := r.StartCanary("b/elm", v1.ID(), 0.5); err == nil {
		t.Fatal("canarying the active version should fail")
	}
	if err := r.StartCanary("b/elm", v2.ID(), 0.25); err != nil {
		t.Fatalf("StartCanary: %v", err)
	}
	shadowed := 0
	for i := 0; i < 100; i++ {
		a, c, err := r.Acquire("b/elm")
		if err != nil {
			t.Fatal(err)
		}
		if a != v1 {
			t.Fatalf("admission %d on v%d, want v%d", i, a.ID(), v1.ID())
		}
		if c != nil {
			if c != v2 {
				t.Fatalf("shadow on v%d, want v%d", c.ID(), v2.ID())
			}
			shadowed++
			r.Release(c)
		}
		r.Release(a)
	}
	if shadowed != 25 {
		t.Fatalf("shadowed %d of 100 admissions at fraction 0.25, want 25", shadowed)
	}
	if err := r.StopCanary("b/elm", v2.ID()); err != nil {
		t.Fatalf("StopCanary: %v", err)
	}
	if _, c, _ := r.Acquire("b/elm"); c != nil {
		t.Fatal("shadow admission after StopCanary")
	}
}

func TestCanaryFullSliceAndPromotion(t *testing.T) {
	r := registry.New()
	v1 := mustRegister(t, r, dep("b", 0.1), "trained")
	v2 := mustRegister(t, r, dep("b", 0.2), "file:v2.dep")
	if err := r.Promote("b/elm", v1.ID()); err != nil {
		t.Fatal(err)
	}
	if err := r.StartCanary("b/elm", v2.ID(), 1.0); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		a, c, err := r.Acquire("b/elm")
		if err != nil || c != v2 {
			t.Fatalf("admission %d: shadow = %v (err %v), want v2 on every admission", i, c, err)
		}
		r.Release(a)
		r.Release(c)
	}
	// Promoting the canary ends the shadow lane.
	if err := r.Promote("b/elm", v2.ID()); err != nil {
		t.Fatal(err)
	}
	a, c, err := r.Acquire("b/elm")
	if err != nil || a != v2 || c != nil {
		t.Fatalf("post-promotion Acquire = %v, %v, %v; want v2, nil, nil", a, c, err)
	}
	r.Release(a)
}

func TestRetireRules(t *testing.T) {
	r := registry.New()
	v1 := mustRegister(t, r, dep("b", 0.1), "trained")
	v2 := mustRegister(t, r, dep("b", 0.2), "file:v2.dep")
	if err := r.Promote("b/elm", v1.ID()); err != nil {
		t.Fatal(err)
	}
	if err := r.Retire("b/elm", v1.ID()); err == nil {
		t.Fatal("retiring the active version should fail")
	}
	if err := r.Retire("b/elm", v2.ID()); err != nil {
		t.Fatalf("retiring a candidate: %v", err)
	}
	if err := r.Promote("b/elm", v2.ID()); err == nil {
		t.Fatal("promoting a dropped version should fail")
	}
	if got := r.ActiveKeys(); len(got) != 1 || got[0] != "b/elm" {
		t.Fatalf("ActiveKeys = %v", got)
	}
}

func TestShadowDeltaAndSnapshot(t *testing.T) {
	r := registry.New()
	v1 := mustRegister(t, r, dep("b", 0.1), "trained")
	v2 := mustRegister(t, r, dep("b", 0.2), "file:v2.dep")
	if err := r.Promote("b/elm", v1.ID()); err != nil {
		t.Fatal(err)
	}
	if err := r.StartCanary("b/elm", v2.ID(), 1.0); err != nil {
		t.Fatal(err)
	}
	r.RecordJudgments(v1, 100, 5)
	// Candidate flags 12/100 where the baseline flagged 2/100: delta 0.10.
	r.RecordShadow(v2, 100, 12, 100, 2)
	snap := r.Snapshot()
	if len(snap) != 1 {
		t.Fatalf("snapshot models = %d, want 1", len(snap))
	}
	m := snap[0]
	if m.ActiveVersion != v1.ID() || m.CanaryVersion != v2.ID() || m.CanaryFraction != 1.0 {
		t.Fatalf("model header = %+v", m)
	}
	var cand *registry.VersionInfo
	for i := range m.Versions {
		if m.Versions[i].Version == v2.ID() {
			cand = &m.Versions[i]
		}
	}
	if cand == nil {
		t.Fatal("candidate missing from snapshot")
	}
	if cand.ShadowAnomalyRate != 0.12 || cand.BaselineAnomalyRate != 0.02 {
		t.Fatalf("shadow/baseline rates = %v/%v", cand.ShadowAnomalyRate, cand.BaselineAnomalyRate)
	}
	if d := cand.AnomalyRateDelta; d < 0.0999 || d > 0.1001 {
		t.Fatalf("anomaly-rate delta = %v, want 0.10", d)
	}
}

func TestObserveMetrics(t *testing.T) {
	r := registry.New()
	tel := obs.NewMetricsOnly()
	r.Observe(tel)
	v1 := mustRegister(t, r, dep("b", 0.1), "trained")
	if err := r.Promote("b/elm", v1.ID()); err != nil {
		t.Fatal(err)
	}
	v2 := mustRegister(t, r, dep("b", 0.2), "file:v2.dep")
	if err := r.StartCanary("b/elm", v2.ID(), 1.0); err != nil {
		t.Fatal(err)
	}
	if got := tel.Gauge(`rtad_serve_model_active_version{model="b/elm"}`).Value(); got != v1.ID() {
		t.Fatalf("active_version gauge = %d, want %d", got, v1.ID())
	}
	if got := tel.Gauge(`rtad_serve_model_canary_version{model="b/elm"}`).Value(); got != v2.ID() {
		t.Fatalf("canary_version gauge = %d, want %d", got, v2.ID())
	}
	if err := r.Promote("b/elm", v2.ID()); err != nil {
		t.Fatal(err)
	}
	// Two promotions, but only the second displaced a live active version:
	// the bootstrap promotion is not a swap.
	if got := tel.Counter("rtad_serve_model_swaps_total").Value(); got != 1 {
		t.Fatalf("swaps counter = %d, want 1", got)
	}
	if got := tel.Counter("rtad_serve_model_loads_total").Value(); got != 2 {
		t.Fatalf("loads counter = %d, want 2", got)
	}
	if got := tel.Gauge(`rtad_serve_model_info{model="b/elm",version="2",state="active"}`).Value(); got != 1 {
		t.Fatalf("info gauge for active v2 = %d, want 1", got)
	}
	if got := tel.Gauge(`rtad_serve_model_info{model="b/elm",version="2",state="canary"}`).Value(); got != 0 {
		t.Fatalf("stale canary info gauge for v2 = %d, want 0", got)
	}
	r.RecordShadow(v2, 10, 3, 10, 1)
	if got := tel.Counter("rtad_serve_shadow_judgments_total").Value(); got != 10 {
		t.Fatalf("shadow judgments counter = %d, want 10", got)
	}
}
