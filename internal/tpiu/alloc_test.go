package tpiu

import (
	"testing"

	"rtad/internal/sim"
)

// TestFormatterTakeIntoZeroAlloc pins the formatter hand-off: pushing a
// frame's worth of bytes and draining through a recycled buffer allocates
// nothing once warm.
func TestFormatterTakeIntoZeroAlloc(t *testing.T) {
	f := NewFormatter(Config{})
	var out []TimedWord
	var at sim.Time
	push := func() {
		for b := 0; b < PayloadBytes; b++ {
			at += 1000
			f.Push(at, byte(b))
		}
		out = f.TakeInto(out[:0])
	}
	for i := 0; i < 64; i++ { // warm-up
		push()
	}
	allocs := testing.AllocsPerRun(500, push)
	if allocs > 0 {
		t.Fatalf("Push+TakeInto allocates %.2f objects/op in steady state, want 0", allocs)
	}
}

// TestDeframerFeedZeroAlloc pins the borrowed-payload contract: deframing
// never allocates, because the returned slice is a window into the
// deframer's own frame buffer.
func TestDeframerFeedZeroAlloc(t *testing.T) {
	f := NewFormatter(Config{})
	var at sim.Time
	for b := 0; b < PayloadBytes; b++ {
		at += 1000
		f.Push(at, byte(b))
	}
	words := f.Take()
	if len(words) != FrameBytes/4 {
		t.Fatalf("expected one frame (%d words), got %d", FrameBytes/4, len(words))
	}

	d := NewDeframer(0)
	i := 0
	var payloads int
	allocs := testing.AllocsPerRun(200, func() {
		if got := d.Feed(words[i%len(words)].W); len(got) > 0 {
			payloads++
		}
		i++
	})
	if allocs > 0 {
		t.Fatalf("Deframer.Feed allocates %.2f objects/op, want 0", allocs)
	}
	if payloads == 0 {
		t.Fatal("no frames completed — the path under test did not run")
	}
}

// TestDeframerFeedPayloadReuse documents the borrow semantics: the payload
// window returned by Feed aliases the deframer's buffer, so its contents are
// only stable until the next Feed.
func TestDeframerFeedPayloadReuse(t *testing.T) {
	mkFrame := func(fill byte) [FrameBytes / 4]uint32 {
		var frame [FrameBytes]byte
		frame[0] = DefaultSourceID
		for i := 1; i < FrameBytes-1; i++ {
			frame[i] = fill
		}
		frame[FrameBytes-1] = PayloadBytes
		var ws [FrameBytes / 4]uint32
		for i := range ws {
			ws[i] = uint32(frame[4*i]) | uint32(frame[4*i+1])<<8 |
				uint32(frame[4*i+2])<<16 | uint32(frame[4*i+3])<<24
		}
		return ws
	}
	d := NewDeframer(0)
	var first []byte
	for _, w := range mkFrame(0xAA) {
		if got := d.Feed(w); len(got) > 0 {
			first = got
		}
	}
	if len(first) != PayloadBytes || first[0] != 0xAA {
		t.Fatalf("first payload = % x", first)
	}
	for _, w := range mkFrame(0xBB) {
		d.Feed(w)
	}
	// The earlier window now shows the second frame's bytes: callers must
	// consume before the next Feed, which every pipeline stage does.
	if first[0] != 0xBB {
		t.Fatalf("borrowed payload not aliased (= %#x); update the Feed contract docs", first[0])
	}
}
