package tpiu

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"rtad/internal/cpu"
	"rtad/internal/ptm"
	"rtad/internal/sim"
)

func TestFrameRoundTrip(t *testing.T) {
	f := NewFormatter(Config{})
	d := NewDeframer(0)
	payload := make([]byte, 100)
	for i := range payload {
		payload[i] = byte(i * 7)
	}
	for i, b := range payload {
		f.Push(sim.Time(i)*sim.Nanosecond, b)
	}
	f.Flush(sim.Microsecond)
	var got []byte
	for _, w := range f.Take() {
		got = append(got, d.Feed(w.W)...)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("deframed %d bytes != pushed %d bytes", len(got), len(payload))
	}
	if d.BadFrames != 0 {
		t.Errorf("BadFrames = %d", d.BadFrames)
	}
	wantFrames := (len(payload) + PayloadBytes - 1) / PayloadBytes
	if f.Frames() != int64(wantFrames) {
		t.Errorf("Frames = %d, want %d", f.Frames(), wantFrames)
	}
}

func TestPartialFrameNeedsFlush(t *testing.T) {
	f := NewFormatter(Config{})
	for i := 0; i < PayloadBytes-1; i++ {
		f.Push(0, byte(i))
	}
	if len(f.Take()) != 0 {
		t.Fatal("partial frame emitted without flush")
	}
	if f.Buffered() != PayloadBytes-1 {
		t.Errorf("Buffered = %d", f.Buffered())
	}
	f.Flush(0)
	words := f.Take()
	if len(words) != FrameBytes/4 {
		t.Fatalf("flush emitted %d words, want %d", len(words), FrameBytes/4)
	}
}

func TestWordTiming(t *testing.T) {
	f := NewFormatter(Config{})
	at := 100 * sim.Nanosecond
	for i := 0; i < PayloadBytes; i++ {
		f.Push(at, 0xAA)
	}
	words := f.Take()
	if len(words) != 4 {
		t.Fatalf("%d words", len(words))
	}
	if words[0].At < at {
		t.Errorf("first word at %v before data at %v", words[0].At, at)
	}
	for i := 1; i < 4; i++ {
		if words[i].At != words[i-1].At+sim.FabricClock.Period() {
			t.Errorf("word %d not one fabric cycle after word %d", i, i-1)
		}
	}
	// Port must serialise consecutive frames.
	for i := 0; i < PayloadBytes; i++ {
		f.Push(at, 0xBB)
	}
	second := f.Take()
	if second[0].At < words[3].At+sim.FabricClock.Period() {
		t.Error("second frame overlaps first on the port")
	}
}

func TestDeframerRejectsWrongSource(t *testing.T) {
	f := NewFormatter(Config{SourceID: 0x41})
	d := NewDeframer(0x42)
	for i := 0; i < PayloadBytes; i++ {
		f.Push(0, 1)
	}
	var got []byte
	for _, w := range f.Take() {
		got = append(got, d.Feed(w.W)...)
	}
	if len(got) != 0 || d.BadFrames != 1 {
		t.Errorf("wrong-source frame accepted: %d bytes, bad=%d", len(got), d.BadFrames)
	}
}

func TestDeframerRejectsBadCount(t *testing.T) {
	d := NewDeframer(0)
	var frame [FrameBytes]byte
	frame[0] = DefaultSourceID
	frame[FrameBytes-1] = PayloadBytes + 1 // invalid
	for i := 0; i < FrameBytes; i += 4 {
		w := uint32(frame[i]) | uint32(frame[i+1])<<8 | uint32(frame[i+2])<<16 | uint32(frame[i+3])<<24
		d.Feed(w)
	}
	if d.BadFrames != 1 {
		t.Errorf("BadFrames = %d, want 1", d.BadFrames)
	}
}

// Property: any byte sequence survives format -> deframe unchanged.
func TestFormatterDeframerProperty(t *testing.T) {
	prop := func(payload []byte) bool {
		f := NewFormatter(Config{})
		d := NewDeframer(0)
		for i, b := range payload {
			f.Push(sim.Time(i), b)
		}
		f.Flush(sim.Time(len(payload)))
		var got []byte
		for _, w := range f.Take() {
			got = append(got, d.Feed(w.W)...)
		}
		return bytes.Equal(got, payload)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// End-to-end: PTM encode -> port -> TPIU frames -> deframe -> PTM decode
// recovers the branch sequence exactly (the full CoreSight path of Fig 1).
func TestCoreSightPathEndToEnd(t *testing.T) {
	enc := ptm.NewEncoder(ptm.Config{BranchBroadcast: true, SyncEvery: 32})
	port := ptm.NewPort(ptm.PortConfig{DrainThreshold: 64})
	fmtr := NewFormatter(Config{})
	defr := NewDeframer(0)
	dec := ptm.NewStreamDecoder()

	r := rand.New(rand.NewSource(5))
	var want []uint32
	now := sim.Time(0)
	for i := 0; i < 500; i++ {
		now += sim.Time(r.Intn(50)) * sim.Nanosecond
		target := 0x8000 + uint32(r.Intn(1<<14))&^3
		taken := r.Intn(5) != 0
		if taken {
			want = append(want, target)
		}
		ev := cpu.BranchEvent{PC: 0x8000, Target: target, Kind: cpu.KindDirect, Taken: taken}
		port.Push(now, enc.Encode(ev))
	}
	port.Push(now, enc.Flush())
	port.Flush(now)
	for _, tb := range port.Take() {
		fmtr.Push(tb.At, tb.B)
	}
	fmtr.Flush(now)

	var got []uint32
	lastAt := sim.Time(-1)
	for _, w := range fmtr.Take() {
		if w.At < lastAt {
			t.Fatal("port words out of time order")
		}
		lastAt = w.At
		for _, b := range defr.Feed(w.W) {
			for _, pkt := range dec.Feed(b) {
				if pkt.Type == ptm.PktBranch {
					got = append(got, pkt.Addr)
				}
			}
		}
	}
	if dec.Errors != 0 {
		t.Fatalf("decoder errors: %d", dec.Errors)
	}
	if len(got) != len(want) {
		t.Fatalf("recovered %d branches, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("branch %d = %#x, want %#x", i, got[i], want[i])
		}
	}
}
