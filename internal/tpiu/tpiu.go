// Package tpiu models the CoreSight Trace Port Interface Unit: the SoC-edge
// block that packs trace-source bytes into fixed 16-byte frames and drives
// them over a 32-bit port, one word per fabric cycle. In the RTAD SoC the
// port pins are looped back on-chip into the MLPU (Fig 1), so the consumer
// is IGM's trace analyzer rather than an off-chip probe.
//
// Frame layout (16 bytes):
//
//	byte 0      trace-source ID (the PTM's ATID)
//	bytes 1–14  payload trace bytes
//	byte 15     valid-payload count (1–14; partial frames occur on flush)
//
// This is simpler than the CoreSight odd/even-byte interleave but preserves
// what the evaluation depends on: fixed-size framing (so partial data waits
// for a frame boundary), a one-byte-per-frame ID plus trailer overhead, and
// a 32-bit word-per-cycle output rate.
package tpiu

import (
	"rtad/internal/obs"
	"rtad/internal/sim"
)

// FrameBytes is the fixed frame size.
const FrameBytes = 16

// PayloadBytes is the usable trace capacity per frame.
const PayloadBytes = FrameBytes - 2

// DefaultSourceID is the ATID the RTAD driver assigns to the PTM.
const DefaultSourceID byte = 0x41

// TimedWord is one 32-bit beat on the trace port with its emission time.
type TimedWord struct {
	At sim.Time
	W  uint32
}

// Config parameterises the formatter.
type Config struct {
	SourceID byte
	Clock    *sim.Clock // port clock; defaults to sim.FabricClock
	// Telemetry, when non-nil, records emitted frames as spans on the
	// fabric/tpiu track plus frame/byte counters. Observation-only.
	Telemetry *obs.Telemetry
}

// Formatter packs timed trace bytes into frames and emits them as timed
// 32-bit words. A frame is emitted only once full (or on Flush), which adds
// the framing component of the trace-visibility latency in Fig 7.
//
// Like ptm.Port, the formatter has two modes chosen by the Push family in
// use: the staged mode (Push/Flush/TakeInto) materialises frame words as
// TimedWords; the counted fast-path mode (PushCounted/FlushCounted) keeps
// only a byte-count cursor and reports each frame's emission beat as a
// FrameEmit — same timing algebra, no frame bytes or port words. One
// formatter instance must stay in one mode.
type Formatter struct {
	cfg    Config
	buf    []byte
	cnt    int      // counted-mode buffered bytes (staged mode uses len(buf))
	bufAt  sim.Time // time the most recent buffered byte arrived
	freeAt sim.Time // next instant the output port is free
	out    []TimedWord

	frames int64
	pushed int64 // total trace bytes accepted into the frame buffer
	maxBuf int

	obsFrames *obs.Counter
	obsBytes  *obs.Counter
	track     *obs.Track
}

// FrameEmit describes one frame emission on the fused fast path: the port
// instant of the frame's last (fourth) word, and how many payload bytes the
// frame carries. A downstream consumer sees the whole frame — and therefore
// every packet completed by its payload — once that last word lands.
type FrameEmit struct {
	LastWordAt sim.Time
	Payload    int
}

// NewFormatter returns a formatter with cfg applied.
func NewFormatter(cfg Config) *Formatter {
	if cfg.SourceID == 0 {
		cfg.SourceID = DefaultSourceID
	}
	if cfg.Clock == nil {
		cfg.Clock = sim.FabricClock
	}
	f := &Formatter{cfg: cfg}
	if tel := cfg.Telemetry; tel != nil {
		f.obsFrames = tel.Counter("rtad_tpiu_frames_total")
		f.obsBytes = tel.Counter("rtad_tpiu_bytes_total")
		f.track = tel.Track("fabric", "tpiu")
	}
	return f
}

// Frames reports how many frames have been emitted.
func (f *Formatter) Frames() int64 { return f.frames }

// Buffered reports bytes waiting for a frame boundary (materialised or
// counted, depending on mode).
func (f *Formatter) Buffered() int { return len(f.buf) + f.cnt }

// StageName identifies the formatter in pipeline stage listings.
func (f *Formatter) StageName() string { return "tpiu" }

// QueueStats reports the frame-assembly buffer as a uniform queue snapshot.
// The formatter is lossless by construction — every byte waits in the
// unbounded frame buffer for a frame boundary, nothing is ever refused —
// so Overflows and Dropped are 0 by design, and Accepted counts every
// trace byte admitted.
func (f *Formatter) QueueStats() sim.QueueStats {
	return sim.QueueStats{Len: len(f.buf) + f.cnt, MaxDepth: f.maxBuf, Accepted: f.pushed}
}

// Push adds one trace byte arriving at time at.
func (f *Formatter) Push(at sim.Time, b byte) {
	f.buf = append(f.buf, b)
	f.pushed++
	f.obsBytes.Inc()
	if len(f.buf) > f.maxBuf {
		f.maxBuf = len(f.buf)
	}
	if at > f.bufAt {
		f.bufAt = at
	}
	if len(f.buf) >= PayloadBytes {
		f.emit()
	}
}

// Flush emits any partial frame at time at (trace-run end, or the driver's
// formatter-stop sequence).
func (f *Formatter) Flush(at sim.Time) {
	if len(f.buf) == 0 {
		return
	}
	if at > f.bufAt {
		f.bufAt = at
	}
	f.emit()
}

// emit frames the first PayloadBytes (or fewer) buffered bytes and schedules
// the frame's four words on the port.
func (f *Formatter) emit() {
	n := len(f.buf)
	if n > PayloadBytes {
		n = PayloadBytes
	}
	var frame [FrameBytes]byte
	frame[0] = f.cfg.SourceID
	copy(frame[1:1+n], f.buf[:n])
	frame[FrameBytes-1] = byte(n)
	f.buf = f.buf[:copy(f.buf, f.buf[n:])]

	beat := f.cfg.Clock.NextEdge(f.bufAt)
	if beat < f.freeAt {
		beat = f.freeAt
	}
	emitStart := beat
	for i := 0; i < FrameBytes; i += 4 {
		w := uint32(frame[i]) | uint32(frame[i+1])<<8 |
			uint32(frame[i+2])<<16 | uint32(frame[i+3])<<24
		f.out = append(f.out, TimedWord{At: beat, W: w})
		beat += f.cfg.Clock.Period()
	}
	if f.track != nil {
		f.track.Span("frame", int64(emitStart), int64(beat),
			map[string]any{"payload": n})
	}
	f.obsFrames.Inc()
	f.freeAt = beat
	f.frames++

	if len(f.buf) >= PayloadBytes {
		f.emit()
	}
}

// PushCounted is the fused fast-path form of Push: it accounts for n trace
// bytes arriving per a port release schedule — byte j of the burst arrives
// at start + (j/group)*step — without materialising bytes or words. One
// FrameEmit is appended to dst per frame boundary the burst crosses.
// Timing, counters, spans, and queue statistics are bit-identical to
// feeding the same bytes through Push one call each.
func (f *Formatter) PushCounted(start, step sim.Time, group, n int, dst []FrameEmit) []FrameEmit {
	if n <= 0 {
		return dst
	}
	f.pushed += int64(n)
	f.obsBytes.Add(int64(n))
	if peak := f.cnt + n; peak > f.maxBuf {
		// The staged buffer grows one byte per Push, so within a burst it
		// peaks at exactly PayloadBytes whenever a frame completes.
		if peak > PayloadBytes {
			peak = PayloadBytes
		}
		if peak > f.maxBuf {
			f.maxBuf = peak
		}
	}
	// The buffer reaches PayloadBytes at burst byte j = PayloadBytes-1-cnt,
	// then again every PayloadBytes bytes. bufAt advances to each trigger
	// byte's arrival before its emit, exactly as the staged per-byte Push
	// sequence would leave it.
	for j := PayloadBytes - 1 - f.cnt; j < n; j += PayloadBytes {
		if t := start + sim.Time(j/group)*step; t > f.bufAt {
			f.bufAt = t
		}
		dst = append(dst, f.emitCounted(PayloadBytes))
	}
	// Residual partial-frame bytes still advance bufAt (they condition the
	// next emit's beat), up to the burst's last byte.
	if t := start + sim.Time((n-1)/group)*step; t > f.bufAt {
		f.bufAt = t
	}
	f.cnt = (f.cnt + n) % PayloadBytes
	return dst
}

// FlushCounted is the fused fast-path form of Flush: any counted partial
// frame is emitted at time at. The second result is false when nothing was
// buffered.
func (f *Formatter) FlushCounted(at sim.Time) (FrameEmit, bool) {
	if f.cnt == 0 {
		return FrameEmit{}, false
	}
	if at > f.bufAt {
		f.bufAt = at
	}
	fe := f.emitCounted(f.cnt)
	f.cnt = 0
	return fe, true
}

// emitCounted schedules one frame's four words on the port analytically,
// mirroring emit's beat selection, telemetry, and counters without
// materialising the words.
func (f *Formatter) emitCounted(n int) FrameEmit {
	beat := f.cfg.Clock.NextEdge(f.bufAt)
	if beat < f.freeAt {
		beat = f.freeAt
	}
	period := f.cfg.Clock.Period()
	end := beat + sim.Time(FrameBytes/4)*period
	if f.track != nil {
		f.track.Span("frame", int64(beat), int64(end),
			map[string]any{"payload": n})
	}
	f.obsFrames.Inc()
	f.freeAt = end
	f.frames++
	return FrameEmit{LastWordAt: end - period, Payload: n}
}

// Take returns and clears the emitted word stream. The returned slice is
// freshly allocated and owned by the caller.
//
// Deprecated: use TakeInto with a recycled buffer
// (`buf = fmtr.TakeInto(buf[:0])`) — it is the primary hand-off API and
// drains the formatter with zero steady-state allocations. CI rejects new
// in-repo Take callers.
func (f *Formatter) Take() []TimedWord { return f.TakeInto(nil) }

// TakeInto appends the emitted word stream to dst, clears the internal
// queue (retaining its capacity for reuse), and returns the extended slice.
// A caller that recycles dst (`buf = fmtr.TakeInto(buf[:0])`) drains the
// formatter with zero steady-state allocations.
func (f *Formatter) TakeInto(dst []TimedWord) []TimedWord {
	dst = append(dst, f.out...)
	f.out = f.out[:0]
	return dst
}

// Deframer reassembles the payload byte stream from port words. It is the
// front half of IGM's trace analyzer.
type Deframer struct {
	frame [FrameBytes]byte
	nbuf  int

	// BadFrames counts frames whose source ID did not match.
	BadFrames int64
	expectID  byte
}

// NewDeframer returns a deframer accepting frames from sourceID (0 means
// DefaultSourceID).
func NewDeframer(sourceID byte) *Deframer {
	if sourceID == 0 {
		sourceID = DefaultSourceID
	}
	return &Deframer{expectID: sourceID}
}

// Feed consumes one 32-bit port word and returns any completed frame's
// payload bytes.
//
// Zero-allocation contract: the returned slice is a window into the
// deframer's own frame buffer and is only valid until the next Feed call.
// Consume (or copy) it before feeding the next word.
func (d *Deframer) Feed(w uint32) []byte {
	d.frame[d.nbuf] = byte(w)
	d.frame[d.nbuf+1] = byte(w >> 8)
	d.frame[d.nbuf+2] = byte(w >> 16)
	d.frame[d.nbuf+3] = byte(w >> 24)
	d.nbuf += 4
	if d.nbuf < FrameBytes {
		return nil
	}
	d.nbuf = 0
	if d.frame[0] != d.expectID {
		d.BadFrames++
		return nil
	}
	n := int(d.frame[FrameBytes-1])
	if n < 1 || n > PayloadBytes {
		d.BadFrames++
		return nil
	}
	return d.frame[1 : 1+n]
}
