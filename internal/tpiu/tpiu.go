// Package tpiu models the CoreSight Trace Port Interface Unit: the SoC-edge
// block that packs trace-source bytes into fixed 16-byte frames and drives
// them over a 32-bit port, one word per fabric cycle. In the RTAD SoC the
// port pins are looped back on-chip into the MLPU (Fig 1), so the consumer
// is IGM's trace analyzer rather than an off-chip probe.
//
// Frame layout (16 bytes):
//
//	byte 0      trace-source ID (the PTM's ATID)
//	bytes 1–14  payload trace bytes
//	byte 15     valid-payload count (1–14; partial frames occur on flush)
//
// This is simpler than the CoreSight odd/even-byte interleave but preserves
// what the evaluation depends on: fixed-size framing (so partial data waits
// for a frame boundary), a one-byte-per-frame ID plus trailer overhead, and
// a 32-bit word-per-cycle output rate.
package tpiu

import (
	"rtad/internal/obs"
	"rtad/internal/sim"
)

// FrameBytes is the fixed frame size.
const FrameBytes = 16

// PayloadBytes is the usable trace capacity per frame.
const PayloadBytes = FrameBytes - 2

// DefaultSourceID is the ATID the RTAD driver assigns to the PTM.
const DefaultSourceID byte = 0x41

// TimedWord is one 32-bit beat on the trace port with its emission time.
type TimedWord struct {
	At sim.Time
	W  uint32
}

// Config parameterises the formatter.
type Config struct {
	SourceID byte
	Clock    *sim.Clock // port clock; defaults to sim.FabricClock
	// Telemetry, when non-nil, records emitted frames as spans on the
	// fabric/tpiu track plus frame/byte counters. Observation-only.
	Telemetry *obs.Telemetry
}

// Formatter packs timed trace bytes into frames and emits them as timed
// 32-bit words. A frame is emitted only once full (or on Flush), which adds
// the framing component of the trace-visibility latency in Fig 7.
type Formatter struct {
	cfg    Config
	buf    []byte
	bufAt  sim.Time // time the most recent buffered byte arrived
	freeAt sim.Time // next instant the output port is free
	out    []TimedWord

	frames int64
	pushed int64 // total trace bytes accepted into the frame buffer
	maxBuf int

	obsFrames *obs.Counter
	obsBytes  *obs.Counter
	track     *obs.Track
}

// NewFormatter returns a formatter with cfg applied.
func NewFormatter(cfg Config) *Formatter {
	if cfg.SourceID == 0 {
		cfg.SourceID = DefaultSourceID
	}
	if cfg.Clock == nil {
		cfg.Clock = sim.FabricClock
	}
	f := &Formatter{cfg: cfg}
	if tel := cfg.Telemetry; tel != nil {
		f.obsFrames = tel.Counter("rtad_tpiu_frames_total")
		f.obsBytes = tel.Counter("rtad_tpiu_bytes_total")
		f.track = tel.Track("fabric", "tpiu")
	}
	return f
}

// Frames reports how many frames have been emitted.
func (f *Formatter) Frames() int64 { return f.frames }

// Buffered reports bytes waiting for a frame boundary.
func (f *Formatter) Buffered() int { return len(f.buf) }

// StageName identifies the formatter in pipeline stage listings.
func (f *Formatter) StageName() string { return "tpiu" }

// QueueStats reports the frame-assembly buffer as a uniform queue snapshot.
// The formatter is lossless by construction — every byte waits in the
// unbounded frame buffer for a frame boundary, nothing is ever refused —
// so Overflows and Dropped are 0 by design, and Accepted counts every
// trace byte admitted.
func (f *Formatter) QueueStats() sim.QueueStats {
	return sim.QueueStats{Len: len(f.buf), MaxDepth: f.maxBuf, Accepted: f.pushed}
}

// Push adds one trace byte arriving at time at.
func (f *Formatter) Push(at sim.Time, b byte) {
	f.buf = append(f.buf, b)
	f.pushed++
	f.obsBytes.Inc()
	if len(f.buf) > f.maxBuf {
		f.maxBuf = len(f.buf)
	}
	if at > f.bufAt {
		f.bufAt = at
	}
	if len(f.buf) >= PayloadBytes {
		f.emit()
	}
}

// Flush emits any partial frame at time at (trace-run end, or the driver's
// formatter-stop sequence).
func (f *Formatter) Flush(at sim.Time) {
	if len(f.buf) == 0 {
		return
	}
	if at > f.bufAt {
		f.bufAt = at
	}
	f.emit()
}

// emit frames the first PayloadBytes (or fewer) buffered bytes and schedules
// the frame's four words on the port.
func (f *Formatter) emit() {
	n := len(f.buf)
	if n > PayloadBytes {
		n = PayloadBytes
	}
	var frame [FrameBytes]byte
	frame[0] = f.cfg.SourceID
	copy(frame[1:1+n], f.buf[:n])
	frame[FrameBytes-1] = byte(n)
	f.buf = f.buf[:copy(f.buf, f.buf[n:])]

	beat := f.cfg.Clock.NextEdge(f.bufAt)
	if beat < f.freeAt {
		beat = f.freeAt
	}
	emitStart := beat
	for i := 0; i < FrameBytes; i += 4 {
		w := uint32(frame[i]) | uint32(frame[i+1])<<8 |
			uint32(frame[i+2])<<16 | uint32(frame[i+3])<<24
		f.out = append(f.out, TimedWord{At: beat, W: w})
		beat += f.cfg.Clock.Period()
	}
	if f.track != nil {
		f.track.Span("frame", int64(emitStart), int64(beat),
			map[string]any{"payload": n})
	}
	f.obsFrames.Inc()
	f.freeAt = beat
	f.frames++

	if len(f.buf) >= PayloadBytes {
		f.emit()
	}
}

// Take returns and clears the emitted word stream. The returned slice is
// freshly allocated and owned by the caller.
//
// Deprecated: use TakeInto with a recycled buffer
// (`buf = fmtr.TakeInto(buf[:0])`) — it is the primary hand-off API and
// drains the formatter with zero steady-state allocations. CI rejects new
// in-repo Take callers.
func (f *Formatter) Take() []TimedWord { return f.TakeInto(nil) }

// TakeInto appends the emitted word stream to dst, clears the internal
// queue (retaining its capacity for reuse), and returns the extended slice.
// A caller that recycles dst (`buf = fmtr.TakeInto(buf[:0])`) drains the
// formatter with zero steady-state allocations.
func (f *Formatter) TakeInto(dst []TimedWord) []TimedWord {
	dst = append(dst, f.out...)
	f.out = f.out[:0]
	return dst
}

// Deframer reassembles the payload byte stream from port words. It is the
// front half of IGM's trace analyzer.
type Deframer struct {
	frame [FrameBytes]byte
	nbuf  int

	// BadFrames counts frames whose source ID did not match.
	BadFrames int64
	expectID  byte
}

// NewDeframer returns a deframer accepting frames from sourceID (0 means
// DefaultSourceID).
func NewDeframer(sourceID byte) *Deframer {
	if sourceID == 0 {
		sourceID = DefaultSourceID
	}
	return &Deframer{expectID: sourceID}
}

// Feed consumes one 32-bit port word and returns any completed frame's
// payload bytes.
//
// Zero-allocation contract: the returned slice is a window into the
// deframer's own frame buffer and is only valid until the next Feed call.
// Consume (or copy) it before feeding the next word.
func (d *Deframer) Feed(w uint32) []byte {
	d.frame[d.nbuf] = byte(w)
	d.frame[d.nbuf+1] = byte(w >> 8)
	d.frame[d.nbuf+2] = byte(w >> 16)
	d.frame[d.nbuf+3] = byte(w >> 24)
	d.nbuf += 4
	if d.nbuf < FrameBytes {
		return nil
	}
	d.nbuf = 0
	if d.frame[0] != d.expectID {
		d.BadFrames++
		return nil
	}
	n := int(d.frame[FrameBytes-1])
	if n < 1 || n > PayloadBytes {
		d.BadFrames++
		return nil
	}
	return d.frame[1 : 1+n]
}
