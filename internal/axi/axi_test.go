package axi

import (
	"testing"
	"testing/quick"

	"rtad/internal/sim"
)

func testIC(t *testing.T) *Interconnect {
	t.Helper()
	ic, err := RTADTopology()
	if err != nil {
		t.Fatal(err)
	}
	return ic
}

func TestDecode(t *testing.T) {
	ic := testIC(t)
	cases := []struct {
		addr uint32
		want string
	}{
		{0x0000_1000, "ddr"},
		{0x3FFF_FFFC, "ddr"},
		{MLMIAOWBase, "mlmiaow-sram"},
		{MLMIAOWBase + 0x0008_0000, "mlmiaow-sram"},
		{MCMRegsBase + 4, "mcm-regs"},
	}
	for _, c := range cases {
		s, ok := ic.Decode(c.addr)
		if !ok || s.Name != c.want {
			t.Errorf("Decode(%#x) = %v, want %s", c.addr, s, c.want)
		}
	}
	if _, ok := ic.Decode(0xF000_0000); ok {
		t.Error("unmapped address decoded")
	}
	if _, err := ic.Transaction(Write, 0, 0xF000_0000, 1); err == nil {
		t.Error("unmapped transaction succeeded")
	}
	if ic.Stats().DecodeErr != 1 {
		t.Error("decode error not counted")
	}
}

func TestOverlapRejected(t *testing.T) {
	ic := New(nil)
	if _, err := ic.AddSlave(Slave{Name: "a", Base: 0x1000, Size: 0x1000}); err != nil {
		t.Fatal(err)
	}
	if _, err := ic.AddSlave(Slave{Name: "b", Base: 0x1800, Size: 0x1000}); err == nil {
		t.Error("overlapping window accepted")
	}
	if _, err := ic.AddSlave(Slave{Name: "z", Base: 0x5000, Size: 0}); err == nil {
		t.Error("zero-size window accepted")
	}
}

func TestBurstTiming(t *testing.T) {
	ic := New(nil)
	ic.AddSlave(Slave{Name: "sram", Base: 0, Size: 0x10000, AcceptCycles: 2, BeatCycles: 1})
	done, err := ic.Transaction(Write, 0, 0x100, 8)
	if err != nil {
		t.Fatal(err)
	}
	// decode 2 + accept 2 + 8 beats = 12 fabric cycles.
	if want := sim.FabricClock.Duration(12); done != want {
		t.Errorf("burst done at %v, want %v", done, want)
	}
}

func TestBurstSplitting(t *testing.T) {
	ic := New(nil)
	ic.AddSlave(Slave{Name: "sram", Base: 0, Size: 0x10000, AcceptCycles: 3, BeatCycles: 1})
	done, err := ic.Transaction(Read, 0, 0, 40) // 16+16+8 beats
	if err != nil {
		t.Fatal(err)
	}
	// decode 2 + 3 fragments x (accept 3) + 40 beats = 51 cycles.
	if want := sim.FabricClock.Duration(51); done != want {
		t.Errorf("split burst done at %v, want %v", done, want)
	}
	if ic.Stats().Bursts != 3 || ic.Stats().Beats != 40 {
		t.Errorf("stats = %+v", ic.Stats())
	}
}

func TestArbitrationSerialises(t *testing.T) {
	ic := New(nil)
	ic.AddSlave(Slave{Name: "sram", Base: 0, Size: 0x10000, AcceptCycles: 1, BeatCycles: 1})
	first, _ := ic.Transaction(Write, 0, 0, 8)
	// Second burst issued while the first still streams must wait.
	second, _ := ic.Transaction(Write, 0, 0x40, 8)
	if second < first+sim.FabricClock.Duration(9) {
		t.Errorf("second burst (%v) overlapped first (%v)", second, first)
	}
	if ic.Stats().WaitTime == 0 {
		t.Error("arbitration wait not accounted")
	}
	// Different slaves do not contend.
	ic2 := New(nil)
	ic2.AddSlave(Slave{Name: "a", Base: 0, Size: 0x1000, AcceptCycles: 1, BeatCycles: 1})
	ic2.AddSlave(Slave{Name: "b", Base: 0x1000, Size: 0x1000, AcceptCycles: 1, BeatCycles: 1})
	a, _ := ic2.Transaction(Write, 0, 0, 8)
	b, _ := ic2.Transaction(Write, 0, 0x1000, 8)
	if a != b {
		t.Errorf("independent slaves should complete together: %v vs %v", a, b)
	}
}

func TestSingleBeatSeriesSlower(t *testing.T) {
	// The Fig 7 structural claim: a CPU-driven word-by-word copy pays
	// decode+accept per word, so it is much slower than one burst.
	ic := New(nil)
	ic.AddSlave(Slave{Name: "sram", Base: 0, Size: 0x10000, AcceptCycles: 2, BeatCycles: 1})
	burst, err := ic.Transaction(Write, 0, 0, 16)
	if err != nil {
		t.Fatal(err)
	}
	ic2 := New(nil)
	ic2.AddSlave(Slave{Name: "sram", Base: 0, Size: 0x10000, AcceptCycles: 2, BeatCycles: 1})
	series, err := ic2.SingleBeatSeries(Write, 0, 0, 16)
	if err != nil {
		t.Fatal(err)
	}
	if series < 3*burst {
		t.Errorf("single-beat series (%v) should be several times slower than a burst (%v)", series, burst)
	}
}

func TestEmptyBurstRejected(t *testing.T) {
	ic := testIC(t)
	if _, err := ic.Transaction(Write, 0, 0, 0); err == nil {
		t.Error("empty burst accepted")
	}
}

// Property: completion time is monotone in burst length and never precedes
// issue time.
func TestBurstMonotonicityProperty(t *testing.T) {
	prop := func(beatsSeed uint8, atSeed uint16) bool {
		beats := int(beatsSeed%64) + 1
		at := sim.Time(atSeed) * sim.Nanosecond
		ic := New(nil)
		ic.AddSlave(Slave{Name: "s", Base: 0, Size: 1 << 20, AcceptCycles: 2, BeatCycles: 1})
		d1, err := ic.Transaction(Write, at, 0, beats)
		if err != nil || d1 < at {
			return false
		}
		ic2 := New(nil)
		ic2.AddSlave(Slave{Name: "s", Base: 0, Size: 1 << 20, AcceptCycles: 2, BeatCycles: 1})
		d2, err := ic2.Transaction(Write, at, 0, beats+1)
		return err == nil && d2 > d1
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestKindString(t *testing.T) {
	if Read.String() != "read" || Write.String() != "write" {
		t.Error("kind names wrong")
	}
}

func TestBurstMustFitSlaveWindow(t *testing.T) {
	ic := New(nil)
	ic.AddSlave(Slave{Name: "a", Base: 0, Size: 64, AcceptCycles: 1, BeatCycles: 1})
	ic.AddSlave(Slave{Name: "b", Base: 64, Size: 64, AcceptCycles: 1, BeatCycles: 1})
	// 16 beats from byte 32 would cross from a into b: AXI forbids bursts
	// crossing a decode boundary.
	if _, err := ic.Transaction(Write, 0, 32, 16); err == nil {
		t.Error("window-crossing burst accepted")
	}
	// Exactly filling the window is fine.
	if _, err := ic.Transaction(Write, 0, 32, 8); err != nil {
		t.Errorf("in-window burst rejected: %v", err)
	}
}
