// Package axi models the RTAD SoC's interconnect: an ARM NIC-301-style
// AMBA AXI switch connecting bus masters (the host CPU, the MCM TX/RX
// engines) to address-mapped slaves (shared DDR, ML-MIAOW's internal
// memory, peripheral registers). The model is transaction-level: a master
// issues a read or write burst and receives the time the transaction
// completes, with per-slave arbitration (one outstanding burst per slave),
// address-decode and arbitration latency at the switch, and per-beat data
// transfer at the fabric clock.
//
// The MCM's TX/RX engines master this interconnect (≈ 6 fabric cycles per
// single-beat register write into ML-MIAOW's SRAM window with the default
// topology): data-movement costs are derived from an actual interconnect
// rather than asserted, and the software-baseline copy path of Fig 7
// (CPU-driven word-at-a-time writes, each paying decode + accept) is slow
// for a structural reason the model exhibits directly.
package axi

import (
	"fmt"
	"sort"

	"rtad/internal/sim"
)

// BurstKind distinguishes reads from writes.
type BurstKind uint8

// Burst kinds.
const (
	Read BurstKind = iota
	Write
)

// String names the kind.
func (k BurstKind) String() string {
	if k == Read {
		return "read"
	}
	return "write"
}

// Slave describes one address-mapped target.
type Slave struct {
	Name string
	// Base and Size define the decoded address window (bytes).
	Base, Size uint32
	// AcceptCycles is the slave-side setup cost per burst (command
	// acceptance, bank activation for DRAM-like targets).
	AcceptCycles int64
	// BeatCycles is the data-beat cost: cycles per 32-bit beat once the
	// burst is streaming.
	BeatCycles int64
}

// Contains reports whether addr decodes to this slave.
func (s *Slave) Contains(addr uint32) bool {
	return addr >= s.Base && addr-s.Base < s.Size
}

// MaxBurstBeats is the longest burst the switch accepts (AXI3's 16-beat
// limit, which NIC-301 enforces).
const MaxBurstBeats = 16

// Interconnect is the switch instance.
type Interconnect struct {
	clock  *sim.Clock
	slaves []*Slave
	// busyUntil serialises each slave's data channel.
	busyUntil []sim.Time
	// DecodeCycles is the switch's address-decode + arbitration latency.
	DecodeCycles int64

	stats Stats
}

// Stats counts interconnect activity.
type Stats struct {
	Bursts    int64
	Beats     int64
	WaitTime  sim.Time // time bursts spent waiting for busy slaves
	DecodeErr int64    // accesses that decoded to no slave
}

// New returns an interconnect on the given clock (nil = sim.FabricClock).
func New(clock *sim.Clock) *Interconnect {
	if clock == nil {
		clock = sim.FabricClock
	}
	return &Interconnect{clock: clock, DecodeCycles: 2}
}

// AddSlave registers a target; windows must not overlap.
func (ic *Interconnect) AddSlave(s Slave) (*Slave, error) {
	if s.Size == 0 {
		return nil, fmt.Errorf("axi: slave %s has zero window", s.Name)
	}
	if s.BeatCycles <= 0 {
		s.BeatCycles = 1
	}
	for _, ex := range ic.slaves {
		if s.Base < ex.Base+ex.Size && ex.Base < s.Base+s.Size {
			return nil, fmt.Errorf("axi: slave %s overlaps %s", s.Name, ex.Name)
		}
	}
	sl := &Slave{}
	*sl = s
	ic.slaves = append(ic.slaves, sl)
	ic.busyUntil = append(ic.busyUntil, 0)
	sort.SliceStable(ic.slaves, func(i, j int) bool { return ic.slaves[i].Base < ic.slaves[j].Base })
	return sl, nil
}

// Decode resolves addr to its slave.
func (ic *Interconnect) Decode(addr uint32) (*Slave, bool) {
	for _, s := range ic.slaves {
		if s.Contains(addr) {
			return s, true
		}
	}
	return nil, false
}

// Stats returns the activity counters.
func (ic *Interconnect) Stats() Stats { return ic.stats }

// slaveIndex finds the arbitration slot of s.
func (ic *Interconnect) slaveIndex(s *Slave) int {
	for i, x := range ic.slaves {
		if x == s {
			return i
		}
	}
	return -1
}

// Transaction issues one burst of beats 32-bit beats to addr at time at and
// returns the completion time. Bursts longer than MaxBurstBeats are split
// by the switch, paying the slave's accept cost per fragment.
func (ic *Interconnect) Transaction(kind BurstKind, at sim.Time, addr uint32, beats int) (sim.Time, error) {
	if beats <= 0 {
		return at, fmt.Errorf("axi: empty %v burst at %#x", kind, addr)
	}
	s, ok := ic.Decode(addr)
	if !ok {
		ic.stats.DecodeErr++
		return at, fmt.Errorf("axi: %v to unmapped address %#x", kind, addr)
	}
	if end := uint64(addr) + uint64(beats)*4; end > uint64(s.Base)+uint64(s.Size) {
		ic.stats.DecodeErr++
		return at, fmt.Errorf("axi: %v burst at %#x (%d beats) crosses out of %s", kind, addr, beats, s.Name)
	}
	idx := ic.slaveIndex(s)
	t := ic.clock.NextEdge(at) + ic.clock.Duration(ic.DecodeCycles)
	for beats > 0 {
		n := beats
		if n > MaxBurstBeats {
			n = MaxBurstBeats
		}
		beats -= n
		// Arbitration: wait for the slave's data channel.
		if ic.busyUntil[idx] > t {
			ic.stats.WaitTime += ic.busyUntil[idx] - t
			t = ic.busyUntil[idx]
		}
		t += ic.clock.Duration(s.AcceptCycles + int64(n)*s.BeatCycles)
		ic.busyUntil[idx] = t
		ic.stats.Bursts++
		ic.stats.Beats += int64(n)
	}
	return t, nil
}

// SingleBeatSeries models a CPU-driven uncached copy: count individual
// single-beat writes, each paying decode + accept (no burst amortisation) —
// the reason the Fig 7 software path's copy step dominates. It returns the
// completion time of the last write.
func (ic *Interconnect) SingleBeatSeries(kind BurstKind, at sim.Time, addr uint32, count int) (sim.Time, error) {
	t := at
	var err error
	for i := 0; i < count; i++ {
		t, err = ic.Transaction(kind, t, addr+uint32(4*i), 1)
		if err != nil {
			return t, err
		}
	}
	return t, nil
}

// RTADTopology builds the SoC of Fig 1: shared DDR behind the NIC-301, the
// ML-MIAOW internal SRAM, and the MCM control registers.
func RTADTopology() (*Interconnect, error) {
	ic := New(nil)
	slaves := []Slave{
		{Name: "ddr", Base: 0x0000_0000, Size: 0x4000_0000, AcceptCycles: 10, BeatCycles: 2},
		{Name: "mlmiaow-sram", Base: 0x4000_0000, Size: 0x0010_0000, AcceptCycles: 3, BeatCycles: 1},
		{Name: "mcm-regs", Base: 0x4010_0000, Size: 0x0000_1000, AcceptCycles: 1, BeatCycles: 1},
	}
	for _, s := range slaves {
		if _, err := ic.AddSlave(s); err != nil {
			return nil, err
		}
	}
	return ic, nil
}

// MLMIAOWBase is the engine SRAM window base in RTADTopology.
const MLMIAOWBase uint32 = 0x4000_0000

// MCMRegsBase is the MCM register window base in RTADTopology.
const MCMRegsBase uint32 = 0x4010_0000
