package isa

import "fmt"

// Builder constructs programs instruction-by-instruction with symbolic
// labels, resolving branch offsets and absolute-address materialisation in a
// final pass. The workload generators use it instead of text assembly
// because they need to embed *absolute* label addresses in register-load
// sequences (for indirect calls through function-pointer values), which a
// one-pass textual assembler cannot express.
type Builder struct {
	base   uint32
	ins    []Instruction
	labels map[string]int // label -> instruction index

	branchFixups []branchFixup
	addrFixups   []addrFixup
	err          error
}

type branchFixup struct {
	index int // instruction to patch
	label string
}

// addrFixup marks a three-instruction LoadAddr macro starting at index whose
// immediates must be rewritten once the label's absolute address is known.
type addrFixup struct {
	index int
	rd    Reg
	label string
}

// NewBuilder returns a Builder emitting code at base (word aligned).
func NewBuilder(base uint32) *Builder {
	return &Builder{base: base, labels: make(map[string]int)}
}

// Len returns the number of instructions emitted so far.
func (b *Builder) Len() int { return len(b.ins) }

// Addr returns the byte address the next emitted instruction will occupy.
func (b *Builder) Addr() uint32 { return b.base + uint32(len(b.ins))*WordBytes }

func (b *Builder) fail(format string, args ...interface{}) {
	if b.err == nil {
		b.err = fmt.Errorf("isa builder: "+format, args...)
	}
}

// Label defines name at the current position.
func (b *Builder) Label(name string) {
	if _, dup := b.labels[name]; dup {
		b.fail("duplicate label %q", name)
		return
	}
	b.labels[name] = len(b.ins)
}

// Emit appends one instruction.
func (b *Builder) Emit(ins Instruction) { b.ins = append(b.ins, ins) }

// Op3 emits a three-operand register ALU instruction.
func (b *Builder) Op3(op Op, rd, rn, rm Reg) {
	b.Emit(Instruction{Op: op, Rd: rd, Rn: rn, Rm: rm})
}

// Op3i emits a three-operand immediate ALU instruction.
func (b *Builder) Op3i(op Op, rd, rn Reg, imm int32) {
	b.Emit(Instruction{Op: op, Rd: rd, Rn: rn, Imm: imm, HasImm: true})
}

// MovImm emits rd = imm (13-bit signed range).
func (b *Builder) MovImm(rd Reg, imm int32) {
	b.Emit(Instruction{Op: MOV, Rd: rd, Imm: imm, HasImm: true})
}

// CmpImm emits flags(rn - imm).
func (b *Builder) CmpImm(rn Reg, imm int32) {
	b.Emit(Instruction{Op: CMP, Rn: rn, Imm: imm, HasImm: true})
}

// Cmp emits flags(rn - rm).
func (b *Builder) Cmp(rn, rm Reg) { b.Emit(Instruction{Op: CMP, Rn: rn, Rm: rm}) }

// Ldr emits rd = mem[rn + off].
func (b *Builder) Ldr(rd, rn Reg, off int32) {
	b.Emit(Instruction{Op: LDR, Rd: rd, Rn: rn, Imm: off, HasImm: true})
}

// Str emits mem[rn + off] = rd.
func (b *Builder) Str(rd, rn Reg, off int32) {
	b.Emit(Instruction{Op: STR, Rd: rd, Rn: rn, Imm: off, HasImm: true})
}

// Branch emits a label-targeted control transfer (B, BEQ, BNE, BLT, BGE, BL).
func (b *Builder) Branch(op Op, label string) {
	switch op {
	case B, BEQ, BNE, BLT, BGE, BL:
	default:
		b.fail("Branch called with %v", op)
		return
	}
	b.branchFixups = append(b.branchFixups, branchFixup{index: len(b.ins), label: label})
	b.Emit(Instruction{Op: op})
}

// Svc emits a supervisor call with service number n.
func (b *Builder) Svc(n int32) { b.Emit(Instruction{Op: SVC, Imm: n}) }

// Ret emits a return.
func (b *Builder) Ret() { b.Emit(Instruction{Op: RET}) }

// Br emits an indirect jump through rm.
func (b *Builder) Br(rm Reg) { b.Emit(Instruction{Op: BR, Rm: rm}) }

// Blr emits an indirect call through rm.
func (b *Builder) Blr(rm Reg) { b.Emit(Instruction{Op: BLR, Rm: rm}) }

// LoadAddr materialises the absolute address of label into rd using a fixed
// three-instruction sequence (MOV high, LSL #12, ORR low), patched at Build
// time. It supports addresses up to 2^25, far beyond any generated program.
func (b *Builder) LoadAddr(rd Reg, label string) {
	b.addrFixups = append(b.addrFixups, addrFixup{index: len(b.ins), rd: rd, label: label})
	b.MovImm(rd, 0)
	b.Op3i(LSL, rd, rd, 12)
	b.Op3i(ORR, rd, rd, 0)
}

// LoadConst materialises an arbitrary non-negative 24-bit constant into rd
// with the same three-instruction pattern (no fixup needed).
func (b *Builder) LoadConst(rd Reg, v uint32) {
	if v >= 1<<24 {
		b.fail("LoadConst %#x out of range", v)
		return
	}
	b.MovImm(rd, int32(v>>12))
	b.Op3i(LSL, rd, rd, 12)
	b.Op3i(ORR, rd, rd, int32(v&0xfff))
}

// Build resolves all fixups and encodes the program.
func (b *Builder) Build() (*Program, error) {
	if b.err != nil {
		return nil, b.err
	}
	for _, f := range b.branchFixups {
		target, ok := b.labels[f.label]
		if !ok {
			return nil, fmt.Errorf("isa builder: undefined label %q", f.label)
		}
		b.ins[f.index].Imm = int32(target - (f.index + 1))
	}
	for _, f := range b.addrFixups {
		target, ok := b.labels[f.label]
		if !ok {
			return nil, fmt.Errorf("isa builder: undefined label %q", f.label)
		}
		addr := b.base + uint32(target)*WordBytes
		if addr >= 1<<25 {
			return nil, fmt.Errorf("isa builder: label %q address %#x too large", f.label, addr)
		}
		b.ins[f.index].Imm = int32(addr >> 12)
		b.ins[f.index+2].Imm = int32(addr & 0xfff)
	}

	p := &Program{
		Base:    b.base,
		Words:   make([]uint32, len(b.ins)),
		Symbols: make(map[string]uint32, len(b.labels)),
	}
	for name, idx := range b.labels {
		p.Symbols[name] = b.base + uint32(idx)*WordBytes
	}
	for i, ins := range b.ins {
		w, err := Encode(ins)
		if err != nil {
			return nil, fmt.Errorf("isa builder: instruction %d (%v): %v", i, ins, err)
		}
		p.Words[i] = w
	}
	return p, nil
}
