package isa

// This file is the ISA's execution metadata: a per-op class table saying
// what contract each opcode has with an execution engine (can it fault? does
// it write a register? does it redirect control flow?), and per-op lowering
// functions giving the pure data computation of every register-writing op.
// The tiered CPU engine (internal/cpu) compiles basic blocks from these
// tables instead of pattern-matching opcode ranges, and the generic
// interpreter executes ALU ops through the same lowered functions — so both
// tiers run literally the same semantics from one definition.

// Class buckets opcodes by execution contract. The classes are what a
// translation pass needs: everything in ClassALU/ClassNop/ClassCmp is
// straight-line and cannot fault, ClassMem can fault on a bad address,
// and the remaining classes end a basic block.
type Class uint8

// Execution classes.
const (
	ClassNop    Class = iota // no architectural effect beyond pc and cycles
	ClassALU                 // rd = f(rn, op2); cannot fault, no flags
	ClassCmp                 // sets the comparison flags; no register write
	ClassMem                 // LDR/STR: data memory access, can fault
	ClassBranch              // any control transfer (B/Bcc/BL/BR/BLR/RET)
	ClassTrap                // SVC: kernel entry, retires a syscall event
	ClassHalt                // HALT
)

var classNames = map[Class]string{
	ClassNop: "nop", ClassALU: "alu", ClassCmp: "cmp", ClassMem: "mem",
	ClassBranch: "branch", ClassTrap: "trap", ClassHalt: "halt",
}

// String names the class.
func (c Class) String() string {
	if s, ok := classNames[c]; ok {
		return s
	}
	return "class(?)"
}

// opClasses is frozen alongside the opcode set: every op has exactly one
// class, and the isa tests assert the table is total and consistent with
// IsBranch/IsConditional/IsIndirect.
var opClasses = [numOps]Class{
	NOP:  ClassNop,
	HALT: ClassHalt,
	ADD:  ClassALU, SUB: ClassALU, AND: ClassALU, ORR: ClassALU,
	EOR: ClassALU, LSL: ClassALU, LSR: ClassALU, ASR: ClassALU,
	MUL: ClassALU, MOV: ClassALU, MVN: ClassALU,
	CMP: ClassCmp,
	LDR: ClassMem, STR: ClassMem,
	B: ClassBranch, BEQ: ClassBranch, BNE: ClassBranch,
	BLT: ClassBranch, BGE: ClassBranch,
	BL: ClassBranch, BR: ClassBranch, BLR: ClassBranch, RET: ClassBranch,
	SVC: ClassTrap,
}

// Class returns op's execution class. It replaces ad-hoc opcode range tests
// (`op >= ADD && op <= CMP && op != MUL`) that silently rotted whenever the
// opcode order changed.
func (op Op) Class() Class {
	if int(op) < len(opClasses) {
		return opClasses[op]
	}
	return ClassBranch // undefined ops never enter a lifted region
}

// ALUFunc is the lowering of a ClassALU op: the pure function computing the
// destination value from rn's value a and the second operand b (register or
// immediate — operand selection is the engine's job, the function is the
// same either way; MOV and MVN ignore a).
type ALUFunc func(a, b uint32) uint32

func aluAdd(a, b uint32) uint32 { return a + b }
func aluSub(a, b uint32) uint32 { return a - b }
func aluAnd(a, b uint32) uint32 { return a & b }
func aluOrr(a, b uint32) uint32 { return a | b }
func aluEor(a, b uint32) uint32 { return a ^ b }
func aluLsl(a, b uint32) uint32 { return a << (b & 31) }
func aluLsr(a, b uint32) uint32 { return a >> (b & 31) }
func aluAsr(a, b uint32) uint32 { return uint32(int32(a) >> (b & 31)) }
func aluMul(a, b uint32) uint32 { return a * b }
func aluMov(_, b uint32) uint32 { return b }
func aluMvn(_, b uint32) uint32 { return ^b }

// aluFuncs is the lowering table; nil outside ClassALU.
var aluFuncs = [numOps]ALUFunc{
	ADD: aluAdd, SUB: aluSub, AND: aluAnd, ORR: aluOrr, EOR: aluEor,
	LSL: aluLsl, LSR: aluLsr, ASR: aluAsr, MUL: aluMul,
	MOV: aluMov, MVN: aluMvn,
}

// ALU returns op's lowering, or nil if op is not a register-writing ALU op.
// The block translator stores the returned func in its micro-ops; the
// interpreter executes the same funcs via EvalALU, so there is exactly one
// definition of each op's data semantics.
func (op Op) ALU() ALUFunc {
	if int(op) < len(aluFuncs) {
		return aluFuncs[op]
	}
	return nil
}

// EvalALU applies op's lowering to (a, b). It must only be called for
// ClassALU ops (nil dereference otherwise, as for hardware: undefined).
func EvalALU(op Op, a, b uint32) uint32 { return aluFuncs[op](a, b) }

// CondTaken evaluates a conditional branch against the comparison flags
// (eq: rn == op2, lt: rn < op2, signed). ok reports whether op is one of
// the conditional branches; unconditional transfers return ok=false.
func CondTaken(op Op, eq, lt bool) (taken, ok bool) {
	switch op {
	case BEQ:
		return eq, true
	case BNE:
		return !eq, true
	case BLT:
		return lt, true
	case BGE:
		return !lt, true
	}
	return false, false
}
