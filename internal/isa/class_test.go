package isa

import "testing"

// TestClassTableTotal pins the contract the block translator builds on:
// every defined opcode has a class consistent with the IsBranch /
// IsConditional / IsIndirect predicates, every ClassALU op (and only
// those) has a lowering, and undefined encodings fall into ClassBranch so
// a lifted region can never run past them.
func TestClassTableTotal(t *testing.T) {
	for op := Op(0); op < numOps; op++ {
		c := op.Class()
		switch {
		case op.IsBranch() != (c == ClassBranch || c == ClassTrap):
			t.Errorf("%v: IsBranch=%v but class %v", op, op.IsBranch(), c)
		case op.IsConditional() && c != ClassBranch:
			t.Errorf("%v: conditional but class %v", op, c)
		case op.IsIndirect() && c != ClassBranch:
			t.Errorf("%v: indirect but class %v", op, c)
		}
		if (op.ALU() != nil) != (c == ClassALU) {
			t.Errorf("%v: class %v but ALU() nil=%v", op, c, op.ALU() == nil)
		}
	}
	fixed := map[Op]Class{
		NOP: ClassNop, HALT: ClassHalt, CMP: ClassCmp,
		LDR: ClassMem, STR: ClassMem, SVC: ClassTrap,
	}
	for op, want := range fixed {
		if got := op.Class(); got != want {
			t.Errorf("%v.Class() = %v, want %v", op, got, want)
		}
	}
	if got := Op(200).Class(); got != ClassBranch {
		t.Errorf("undefined op class = %v, want branch (block terminator)", got)
	}
}

func TestClassString(t *testing.T) {
	cases := map[Class]string{
		ClassNop: "nop", ClassALU: "alu", ClassCmp: "cmp", ClassMem: "mem",
		ClassBranch: "branch", ClassTrap: "trap", ClassHalt: "halt",
		Class(99): "class(?)",
	}
	for c, want := range cases {
		if got := c.String(); got != want {
			t.Errorf("Class(%d).String() = %q, want %q", c, got, want)
		}
	}
}

// TestEvalALU spot-checks the lowered data semantics the interpreter and
// block engine share, including the hardware-style corners: shift amounts
// mask to 5 bits, ASR sign-extends, MOV/MVN ignore the first operand.
func TestEvalALU(t *testing.T) {
	cases := []struct {
		op      Op
		a, b    uint32
		want    uint32
		comment string
	}{
		{ADD, 7, 5, 12, "add"},
		{SUB, 5, 7, 0xFFFFFFFE, "sub wraps"},
		{AND, 0xF0F0, 0x0FF0, 0x00F0, "and"},
		{ORR, 0xF000, 0x000F, 0xF00F, "orr"},
		{EOR, 0xFF00, 0x0FF0, 0xF0F0, "eor"},
		{LSL, 1, 4, 16, "lsl"},
		{LSL, 1, 33, 2, "lsl masks shift to b&31"},
		{LSR, 0x80000000, 31, 1, "lsr"},
		{LSR, 0x80000000, 32, 0x80000000, "lsr masks shift to b&31"},
		{ASR, 0x80000000, 4, 0xF8000000, "asr sign-extends"},
		{ASR, 0x40000000, 4, 0x04000000, "asr of positive"},
		{MUL, 7, 6, 42, "mul"},
		{MOV, 0xDEAD, 42, 42, "mov ignores a"},
		{MVN, 0xDEAD, 0, 0xFFFFFFFF, "mvn ignores a"},
	}
	for _, c := range cases {
		if got := EvalALU(c.op, c.a, c.b); got != c.want {
			t.Errorf("%s: EvalALU(%v, %#x, %#x) = %#x, want %#x",
				c.comment, c.op, c.a, c.b, got, c.want)
		}
	}
}

// TestCondTaken walks the full truth table of the conditional branches and
// confirms every other op reports ok=false.
func TestCondTaken(t *testing.T) {
	cases := []struct {
		op     Op
		eq, lt bool
		taken  bool
	}{
		{BEQ, true, false, true}, {BEQ, false, false, false},
		{BNE, true, false, false}, {BNE, false, true, true},
		{BLT, false, true, true}, {BLT, true, false, false},
		{BGE, false, false, true}, {BGE, false, true, false},
		{BGE, true, false, true},
	}
	for _, c := range cases {
		taken, ok := CondTaken(c.op, c.eq, c.lt)
		if !ok || taken != c.taken {
			t.Errorf("CondTaken(%v, eq=%v, lt=%v) = (%v, %v), want (%v, true)",
				c.op, c.eq, c.lt, taken, ok, c.taken)
		}
	}
	for op := Op(0); op < numOps; op++ {
		if op.IsConditional() {
			continue
		}
		if _, ok := CondTaken(op, true, true); ok {
			t.Errorf("CondTaken(%v) ok=true for non-conditional op", op)
		}
	}
}
