package isa

import (
	"fmt"
	"strconv"
	"strings"
)

// Program is an assembled code image: encoded instruction words placed at a
// base address, plus the resolved label table. Addresses are byte addresses;
// instructions sit at Base, Base+4, Base+8, ...
type Program struct {
	Base    uint32
	Words   []uint32
	Symbols map[string]uint32
}

// Size returns the program's footprint in bytes.
func (p *Program) Size() uint32 { return uint32(len(p.Words)) * WordBytes }

// Contains reports whether addr falls inside the program image.
func (p *Program) Contains(addr uint32) bool {
	return addr >= p.Base && addr < p.Base+p.Size()
}

// WordAt returns the encoded instruction at byte address addr.
func (p *Program) WordAt(addr uint32) (uint32, error) {
	if !p.Contains(addr) || addr%WordBytes != 0 {
		return 0, fmt.Errorf("isa: fetch outside program at %#x", addr)
	}
	return p.Words[(addr-p.Base)/WordBytes], nil
}

// Assemble translates assembler source into a Program loaded at base.
// Syntax: one instruction per line; "name:" defines a label (optionally on
// the same line as an instruction); ";" or "//" starts a comment; branch
// targets may be labels or explicit signed word offsets; immediates are
// written "#n". Two passes: the first sizes the image and resolves labels,
// the second encodes.
func Assemble(src string, base uint32) (*Program, error) {
	if base%WordBytes != 0 {
		return nil, fmt.Errorf("isa: base address %#x not word aligned", base)
	}
	type pending struct {
		line int
		text string
		addr uint32
	}
	symbols := make(map[string]uint32)
	var insns []pending

	addr := base
	for lineNo, raw := range strings.Split(src, "\n") {
		line := stripComment(raw)
		// Consume any leading labels ("a: b: insn" is legal).
		for {
			line = strings.TrimSpace(line)
			i := strings.Index(line, ":")
			if i < 0 || strings.ContainsAny(line[:i], " \t,#[") {
				break
			}
			name := line[:i]
			if name == "" {
				return nil, fmt.Errorf("isa: line %d: empty label", lineNo+1)
			}
			if _, dup := symbols[name]; dup {
				return nil, fmt.Errorf("isa: line %d: duplicate label %q", lineNo+1, name)
			}
			symbols[name] = addr
			line = line[i+1:]
		}
		if line == "" {
			continue
		}
		insns = append(insns, pending{line: lineNo + 1, text: line, addr: addr})
		addr += WordBytes
	}

	p := &Program{Base: base, Symbols: symbols, Words: make([]uint32, 0, len(insns))}
	for _, pd := range insns {
		ins, err := parseInstruction(pd.text, pd.addr, symbols)
		if err != nil {
			return nil, fmt.Errorf("isa: line %d: %v", pd.line, err)
		}
		w, err := Encode(ins)
		if err != nil {
			return nil, fmt.Errorf("isa: line %d: %v", pd.line, err)
		}
		p.Words = append(p.Words, w)
	}
	return p, nil
}

func stripComment(s string) string {
	if i := strings.Index(s, ";"); i >= 0 {
		s = s[:i]
	}
	if i := strings.Index(s, "//"); i >= 0 {
		s = s[:i]
	}
	return s
}

var opByName = func() map[string]Op {
	m := make(map[string]Op, numOps)
	for op := Op(0); op < numOps; op++ {
		m[op.String()] = op
	}
	return m
}()

func parseReg(s string) (Reg, error) {
	switch s {
	case "sp":
		return SP, nil
	case "lr":
		return LR, nil
	}
	if strings.HasPrefix(s, "r") {
		n, err := strconv.Atoi(s[1:])
		if err == nil && n >= 0 && n < int(NumRegs) {
			return Reg(n), nil
		}
	}
	return 0, fmt.Errorf("bad register %q", s)
}

func parseImm(s string) (int32, error) {
	if !strings.HasPrefix(s, "#") {
		return 0, fmt.Errorf("immediate must start with '#': %q", s)
	}
	n, err := strconv.ParseInt(s[1:], 0, 32)
	if err != nil {
		return 0, fmt.Errorf("bad immediate %q", s)
	}
	return int32(n), nil
}

// splitOperands splits "r1, [r2, #4]" style operand lists at top-level commas.
func splitOperands(s string) []string {
	var out []string
	depth := 0
	start := 0
	for i, ch := range s {
		switch ch {
		case '[':
			depth++
		case ']':
			depth--
		case ',':
			if depth == 0 {
				out = append(out, strings.TrimSpace(s[start:i]))
				start = i + 1
			}
		}
	}
	if tail := strings.TrimSpace(s[start:]); tail != "" {
		out = append(out, tail)
	}
	return out
}

func parseInstruction(text string, addr uint32, symbols map[string]uint32) (Instruction, error) {
	fields := strings.SplitN(strings.TrimSpace(text), " ", 2)
	mnemonic := strings.ToLower(fields[0])
	op, ok := opByName[mnemonic]
	if !ok {
		return Instruction{}, fmt.Errorf("unknown mnemonic %q", mnemonic)
	}
	rest := ""
	if len(fields) == 2 {
		rest = strings.TrimSpace(fields[1])
	}
	ops := splitOperands(rest)
	ins := Instruction{Op: op}

	need := func(n int) error {
		if len(ops) != n {
			return fmt.Errorf("%s needs %d operand(s), got %d", op, n, len(ops))
		}
		return nil
	}

	switch op {
	case NOP, HALT, RET:
		return ins, need(0)

	case B, BEQ, BNE, BLT, BGE, BL:
		if err := need(1); err != nil {
			return ins, err
		}
		if target, ok := symbols[ops[0]]; ok {
			// Offset is relative to the *next* instruction, in words.
			ins.Imm = (int32(target) - int32(addr+WordBytes)) / WordBytes
			return ins, nil
		}
		if strings.HasPrefix(ops[0], "#") || ops[0][0] == '+' || ops[0][0] == '-' {
			imm, err := strconv.ParseInt(strings.TrimPrefix(ops[0], "#"), 0, 32)
			if err != nil {
				return ins, fmt.Errorf("bad branch offset %q", ops[0])
			}
			ins.Imm = int32(imm)
			return ins, nil
		}
		return ins, fmt.Errorf("undefined label %q", ops[0])

	case BR, BLR:
		if err := need(1); err != nil {
			return ins, err
		}
		rm, err := parseReg(ops[0])
		if err != nil {
			return ins, err
		}
		ins.Rm = rm
		return ins, nil

	case SVC:
		if err := need(1); err != nil {
			return ins, err
		}
		imm, err := parseImm(ops[0])
		if err != nil {
			return ins, err
		}
		ins.Imm = imm
		return ins, nil

	case LDR, STR:
		if err := need(2); err != nil {
			return ins, err
		}
		rd, err := parseReg(ops[0])
		if err != nil {
			return ins, err
		}
		ins.Rd = rd
		mem := ops[1]
		if !strings.HasPrefix(mem, "[") || !strings.HasSuffix(mem, "]") {
			return ins, fmt.Errorf("memory operand must be [reg, #off]: %q", mem)
		}
		parts := splitOperands(mem[1 : len(mem)-1])
		if len(parts) < 1 || len(parts) > 2 {
			return ins, fmt.Errorf("bad memory operand %q", mem)
		}
		rn, err := parseReg(parts[0])
		if err != nil {
			return ins, err
		}
		ins.Rn = rn
		if len(parts) == 2 {
			off, err := parseImm(parts[1])
			if err != nil {
				return ins, err
			}
			ins.Imm = off
		}
		ins.HasImm = true
		return ins, nil

	case MOV, MVN:
		if err := need(2); err != nil {
			return ins, err
		}
		rd, err := parseReg(ops[0])
		if err != nil {
			return ins, err
		}
		ins.Rd = rd
		return parseFlexOperand(ins, ops[1])

	case CMP:
		if err := need(2); err != nil {
			return ins, err
		}
		rn, err := parseReg(ops[0])
		if err != nil {
			return ins, err
		}
		ins.Rn = rn
		return parseFlexOperand(ins, ops[1])

	default: // three-operand ALU
		if err := need(3); err != nil {
			return ins, err
		}
		rd, err := parseReg(ops[0])
		if err != nil {
			return ins, err
		}
		rn, err := parseReg(ops[1])
		if err != nil {
			return ins, err
		}
		ins.Rd, ins.Rn = rd, rn
		return parseFlexOperand(ins, ops[2])
	}
}

// parseFlexOperand fills the final register-or-immediate operand.
func parseFlexOperand(ins Instruction, s string) (Instruction, error) {
	if strings.HasPrefix(s, "#") {
		imm, err := parseImm(s)
		if err != nil {
			return ins, err
		}
		ins.Imm = imm
		ins.HasImm = true
		return ins, nil
	}
	rm, err := parseReg(s)
	if err != nil {
		return ins, err
	}
	ins.Rm = rm
	return ins, nil
}
