package isa

import "testing"

func TestBuilderBranchFixup(t *testing.T) {
	b := NewBuilder(0x8000)
	b.Label("top")
	b.MovImm(R0, 1)
	b.Branch(B, "top")
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	ins, err := Decode(p.Words[1])
	if err != nil {
		t.Fatal(err)
	}
	if ins.Op != B || ins.Imm != -2 {
		t.Errorf("branch = %v, want b -2", ins)
	}
}

func TestBuilderForwardBranch(t *testing.T) {
	b := NewBuilder(0)
	b.Branch(BEQ, "fwd")
	b.Emit(Instruction{Op: NOP})
	b.Emit(Instruction{Op: NOP})
	b.Label("fwd")
	b.Emit(Instruction{Op: HALT})
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	ins, _ := Decode(p.Words[0])
	if ins.Imm != 2 {
		t.Errorf("forward offset = %d, want 2", ins.Imm)
	}
}

func TestBuilderLoadAddr(t *testing.T) {
	b := NewBuilder(0x8000)
	b.LoadAddr(R4, "func")
	b.Blr(R4)
	b.Emit(Instruction{Op: HALT})
	b.Label("func")
	b.Ret()
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	want := p.Symbols["func"]
	if want != 0x8000+5*WordBytes {
		t.Fatalf("func at %#x, layout unexpected", want)
	}
	// Decode the three-instruction macro and evaluate it.
	mov, _ := Decode(p.Words[0])
	lsl, _ := Decode(p.Words[1])
	orr, _ := Decode(p.Words[2])
	got := (uint32(mov.Imm) << uint32(lsl.Imm)) | uint32(orr.Imm)
	if got != want {
		t.Errorf("LoadAddr materialises %#x, want %#x", got, want)
	}
}

func TestBuilderLoadConst(t *testing.T) {
	for _, v := range []uint32{0, 1, 4095, 4096, 0x123456, 1<<24 - 1} {
		b := NewBuilder(0)
		b.LoadConst(R2, v)
		p, err := b.Build()
		if err != nil {
			t.Fatalf("LoadConst(%#x): %v", v, err)
		}
		mov, _ := Decode(p.Words[0])
		lsl, _ := Decode(p.Words[1])
		orr, _ := Decode(p.Words[2])
		got := (uint32(mov.Imm) << uint32(lsl.Imm)) | uint32(orr.Imm)
		if got != v {
			t.Errorf("LoadConst(%#x) materialises %#x", v, got)
		}
	}
	b := NewBuilder(0)
	b.LoadConst(R0, 1<<24)
	if _, err := b.Build(); err == nil {
		t.Error("LoadConst out of range accepted")
	}
}

func TestBuilderErrors(t *testing.T) {
	b := NewBuilder(0)
	b.Branch(B, "missing")
	if _, err := b.Build(); err == nil {
		t.Error("undefined branch label accepted")
	}

	b2 := NewBuilder(0)
	b2.Label("x")
	b2.Label("x")
	b2.Emit(Instruction{Op: NOP})
	if _, err := b2.Build(); err == nil {
		t.Error("duplicate label accepted")
	}

	b3 := NewBuilder(0)
	b3.Branch(ADD, "x")
	b3.Label("x")
	if _, err := b3.Build(); err == nil {
		t.Error("non-branch opcode in Branch accepted")
	}

	b4 := NewBuilder(0)
	b4.LoadAddr(R0, "missing")
	if _, err := b4.Build(); err == nil {
		t.Error("undefined LoadAddr label accepted")
	}
}

func TestBuilderAddrTracking(t *testing.T) {
	b := NewBuilder(0x100)
	if b.Addr() != 0x100 {
		t.Errorf("initial Addr = %#x", b.Addr())
	}
	b.Emit(Instruction{Op: NOP})
	b.Emit(Instruction{Op: NOP})
	if b.Addr() != 0x108 || b.Len() != 2 {
		t.Errorf("Addr = %#x Len = %d after 2 emits", b.Addr(), b.Len())
	}
}
