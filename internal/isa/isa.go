// Package isa defines the instruction set of the simulated host CPU: a
// 32-bit ARM-flavoured RISC subset with sixteen general registers, NZCV-style
// comparison flags, direct/conditional/indirect branches, calls, returns and
// a supervisor-call trap. The set is deliberately small — the RTAD
// evaluation depends on the *dynamic control-flow behaviour* of workloads
// (branch, call and syscall event streams), not on ARM's full architectural
// surface — but it is a real executable ISA with an assembler, an encoder to
// fixed 32-bit words and a disassembler, so that workloads are genuine
// programs with genuine program-counter values for CoreSight-style tracing.
package isa

import "fmt"

// Reg identifies one of the sixteen general-purpose registers. By software
// convention (mirroring AAPCS): R0–R3 hold arguments and return values,
// R4–R11 are callee-saved locals, R12 is the scratch register, SP (R13) is
// the stack pointer and LR (R14) the link register. The program counter is
// architectural state outside the register file.
type Reg uint8

// Named registers.
const (
	R0 Reg = iota
	R1
	R2
	R3
	R4
	R5
	R6
	R7
	R8
	R9
	R10
	R11
	R12
	SP // R13
	LR // R14
	R15

	NumRegs = 16
)

// String returns the assembler spelling of r.
func (r Reg) String() string {
	switch r {
	case SP:
		return "sp"
	case LR:
		return "lr"
	default:
		return fmt.Sprintf("r%d", uint8(r))
	}
}

// Op enumerates the instruction opcodes.
type Op uint8

// Opcodes. The order is frozen by the binary encoding (Encode/Decode).
const (
	NOP Op = iota
	HALT
	// Three-operand ALU: rd = rn OP (rm | #imm).
	ADD
	SUB
	AND
	ORR
	EOR
	LSL
	LSR
	ASR
	MUL
	// Two-operand moves: rd = (rm | #imm), rd = ^(rm | #imm).
	MOV
	MVN
	// Flag-setting compare: flags(rn - (rm | #imm)).
	CMP
	// Memory: rd = mem[rn + #imm], mem[rn + #imm] = rd.
	LDR
	STR
	// Direct branches (PC-relative word offsets).
	B
	BEQ
	BNE
	BLT
	BGE
	// Direct call: lr = return address, pc = target.
	BL
	// Indirect control flow through a register.
	BR  // pc = rm
	BLR // lr = return address, pc = rm
	RET // pc = lr
	// Supervisor call with an immediate service number.
	SVC

	numOps
)

var opNames = [numOps]string{
	NOP: "nop", HALT: "halt",
	ADD: "add", SUB: "sub", AND: "and", ORR: "orr", EOR: "eor",
	LSL: "lsl", LSR: "lsr", ASR: "asr", MUL: "mul",
	MOV: "mov", MVN: "mvn", CMP: "cmp",
	LDR: "ldr", STR: "str",
	B: "b", BEQ: "beq", BNE: "bne", BLT: "blt", BGE: "bge",
	BL: "bl", BR: "br", BLR: "blr", RET: "ret", SVC: "svc",
}

// String returns the assembler mnemonic of op.
func (op Op) String() string {
	if int(op) < len(opNames) && opNames[op] != "" {
		return opNames[op]
	}
	return fmt.Sprintf("op(%d)", uint8(op))
}

// IsBranch reports whether op can redirect control flow.
func (op Op) IsBranch() bool {
	switch op {
	case B, BEQ, BNE, BLT, BGE, BL, BR, BLR, RET, SVC:
		return true
	}
	return false
}

// IsConditional reports whether op's branching depends on the flags.
func (op Op) IsConditional() bool {
	switch op {
	case BEQ, BNE, BLT, BGE:
		return true
	}
	return false
}

// IsIndirect reports whether op's target comes from a register rather than
// the instruction encoding. Indirect transfers are the ones a PFT-style
// trace unit must describe with full branch-address packets.
func (op Op) IsIndirect() bool {
	switch op {
	case BR, BLR, RET:
		return true
	}
	return false
}

// Instruction is one decoded instruction. Imm is interpreted per opcode:
// a signed operand for ALU/memory forms, a signed word offset for direct
// branches, and the service number for SVC.
type Instruction struct {
	Op     Op
	Rd     Reg
	Rn     Reg
	Rm     Reg
	Imm    int32
	HasImm bool // ALU/MOV/MVN/CMP use Imm instead of Rm
}

// WordBytes is the size of one encoded instruction.
const WordBytes = 4

// Cycles returns the base execution cost of op in CPU cycles, before any
// branch-taken penalty the core model adds. The costs approximate an
// in-order embedded pipeline: single-cycle ALU, short multiplier, two-cycle
// loads/stores against local SRAM, and an expensive kernel round trip for
// supervisor calls.
func (op Op) Cycles() int64 {
	switch op {
	case MUL:
		return 3
	case LDR, STR:
		return 2
	case SVC:
		return 60 // trap entry, minimal kernel service, return
	case HALT:
		return 1
	default:
		return 1
	}
}

// BranchTakenPenalty is the extra cycle cost of any taken control transfer
// (pipeline refill on a simple in-order core).
const BranchTakenPenalty int64 = 2
