package isa

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestRegString(t *testing.T) {
	cases := []struct {
		r    Reg
		want string
	}{{R0, "r0"}, {R12, "r12"}, {SP, "sp"}, {LR, "lr"}}
	for _, c := range cases {
		if got := c.r.String(); got != c.want {
			t.Errorf("Reg(%d).String() = %q, want %q", c.r, got, c.want)
		}
	}
}

func TestOpClassification(t *testing.T) {
	branches := []Op{B, BEQ, BNE, BLT, BGE, BL, BR, BLR, RET, SVC}
	for _, op := range branches {
		if !op.IsBranch() {
			t.Errorf("%v.IsBranch() = false", op)
		}
	}
	for _, op := range []Op{NOP, ADD, LDR, CMP, MOV, HALT} {
		if op.IsBranch() {
			t.Errorf("%v.IsBranch() = true", op)
		}
	}
	for _, op := range []Op{BEQ, BNE, BLT, BGE} {
		if !op.IsConditional() {
			t.Errorf("%v.IsConditional() = false", op)
		}
	}
	if B.IsConditional() || BL.IsConditional() {
		t.Error("B/BL should not be conditional")
	}
	for _, op := range []Op{BR, BLR, RET} {
		if !op.IsIndirect() {
			t.Errorf("%v.IsIndirect() = false", op)
		}
	}
	if B.IsIndirect() || BL.IsIndirect() {
		t.Error("direct branches must not be indirect")
	}
}

func TestEncodeDecodeExamples(t *testing.T) {
	cases := []Instruction{
		{Op: NOP},
		{Op: HALT},
		{Op: ADD, Rd: R1, Rn: R2, Rm: R3},
		{Op: SUB, Rd: R4, Rn: R4, Imm: -7, HasImm: true},
		{Op: MOV, Rd: R0, Imm: 4095, HasImm: true},
		{Op: MVN, Rd: R9, Rm: R8},
		{Op: CMP, Rn: R3, Imm: 0, HasImm: true},
		{Op: LDR, Rd: R5, Rn: SP, Imm: 16, HasImm: true},
		{Op: STR, Rd: R6, Rn: R7, Imm: -32, HasImm: true},
		{Op: B, Imm: -1000},
		{Op: BEQ, Imm: 2000},
		{Op: BL, Imm: 12345},
		{Op: BR, Rm: R12},
		{Op: BLR, Rm: R4},
		{Op: RET},
		{Op: SVC, Imm: 42},
	}
	for _, ins := range cases {
		w, err := Encode(ins)
		if err != nil {
			t.Fatalf("Encode(%v): %v", ins, err)
		}
		got, err := Decode(w)
		if err != nil {
			t.Fatalf("Decode(%#08x): %v", w, err)
		}
		if got != ins {
			t.Errorf("round-trip %v -> %#08x -> %v", ins, w, got)
		}
	}
}

func TestEncodeRangeErrors(t *testing.T) {
	bad := []Instruction{
		{Op: ADD, Rd: R0, Rn: R0, Imm: 5000, HasImm: true},
		{Op: ADD, Rd: R0, Rn: R0, Imm: -5000, HasImm: true},
		{Op: B, Imm: 1 << 22},
		{Op: SVC, Imm: -1},
		{Op: numOps},
	}
	for _, ins := range bad {
		if _, err := Encode(ins); err == nil {
			t.Errorf("Encode(%v) succeeded, want error", ins)
		}
	}
}

func TestDecodeUndefinedOpcode(t *testing.T) {
	w := uint32(uint32(numOps) << 26)
	if _, err := Decode(w); err == nil {
		t.Error("Decode of undefined opcode succeeded")
	}
}

// Property: every valid instruction round-trips through Encode/Decode.
func TestEncodeDecodeProperty(t *testing.T) {
	gen := func(r *rand.Rand) Instruction {
		op := Op(r.Intn(int(numOps)))
		ins := Instruction{Op: op}
		switch op {
		case B, BEQ, BNE, BLT, BGE, BL:
			ins.Imm = int32(r.Intn(1<<22)) - 1<<21
		case SVC:
			ins.Imm = int32(r.Intn(1 << 22))
		case BR, BLR:
			ins.Rm = Reg(r.Intn(16))
		case NOP, HALT, RET:
		case LDR, STR:
			ins.Rd = Reg(r.Intn(16))
			ins.Rn = Reg(r.Intn(16))
			ins.Imm = int32(r.Intn(1<<13)) - 1<<12
			ins.HasImm = true
		default:
			ins.Rd = Reg(r.Intn(16))
			ins.Rn = Reg(r.Intn(16))
			if r.Intn(2) == 0 {
				ins.HasImm = true
				ins.Imm = int32(r.Intn(1<<13)) - 1<<12
			} else {
				ins.Rm = Reg(r.Intn(16))
			}
		}
		// CMP ignores Rd; MOV/MVN ignore Rn. Zero them so equality holds.
		switch op {
		case CMP:
			ins.Rd = 0
		case MOV, MVN:
			ins.Rn = 0
		}
		return ins
	}
	r := rand.New(rand.NewSource(7))
	for i := 0; i < 2000; i++ {
		ins := gen(r)
		w, err := Encode(ins)
		if err != nil {
			t.Fatalf("Encode(%v): %v", ins, err)
		}
		got, err := Decode(w)
		if err != nil {
			t.Fatalf("Decode(%#08x): %v", w, err)
		}
		if got != ins {
			t.Fatalf("round-trip %v -> %v", ins, got)
		}
	}
}

// Property: assembler output re-assembles to the same words (String is a
// faithful disassembly).
func TestDisassemblyRoundTrip(t *testing.T) {
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		ins := Instruction{Op: ADD, Rd: Reg(r.Intn(16)), Rn: Reg(r.Intn(16))}
		if r.Intn(2) == 0 {
			ins.HasImm = true
			ins.Imm = int32(r.Intn(100)) - 50
		} else {
			ins.Rm = Reg(r.Intn(16))
		}
		w := MustEncode(ins)
		p, err := Assemble(ins.String(), 0)
		if err != nil {
			return false
		}
		return len(p.Words) == 1 && p.Words[0] == w
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

const sampleProgram = `
; compute 10 iterations of a loop with a call and a syscall
start:
    mov r0, #0
    mov r1, #10
loop:
    cmp r0, r1
    bge done
    add r0, r0, #1
    bl  helper
    b   loop
helper:
    str r0, [sp, #0]
    ldr r2, [sp, #0]
    svc #3
    ret
done:
    halt
`

func TestAssembleSample(t *testing.T) {
	p, err := Assemble(sampleProgram, 0x8000)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Words) != 12 {
		t.Fatalf("assembled %d words, want 12", len(p.Words))
	}
	wantSyms := map[string]uint32{
		"start":  0x8000,
		"loop":   0x8008,
		"helper": 0x801c,
		"done":   0x802c,
	}
	for name, addr := range wantSyms {
		if got := p.Symbols[name]; got != addr {
			t.Errorf("symbol %s = %#x, want %#x", name, got, addr)
		}
	}
	// "bge done" sits at 0x800c; offset to 0x802c is (0x802c-0x8010)/4 = 7.
	w, err := p.WordAt(0x800c)
	if err != nil {
		t.Fatal(err)
	}
	ins, err := Decode(w)
	if err != nil {
		t.Fatal(err)
	}
	if ins.Op != BGE || ins.Imm != 7 {
		t.Errorf("bge done decoded as %v, want bge +7", ins)
	}
	// Backward branch "b loop" at 0x8018: (0x8008-0x801c)/4 = -5.
	w, _ = p.WordAt(0x8018)
	ins, _ = Decode(w)
	if ins.Op != B || ins.Imm != -5 {
		t.Errorf("b loop decoded as %v, want b -5", ins)
	}
}

func TestAssembleErrors(t *testing.T) {
	cases := []struct {
		name string
		src  string
	}{
		{"unknown mnemonic", "frob r0, r1, r2"},
		{"undefined label", "b nowhere"},
		{"duplicate label", "a:\na:\nnop"},
		{"bad register", "mov r99, #1"},
		{"missing operand", "add r0, r1"},
		{"bad immediate", "mov r0, #zz"},
		{"bad memory operand", "ldr r0, r1"},
		{"empty label", ": nop"},
	}
	for _, c := range cases {
		if _, err := Assemble(c.src, 0); err == nil {
			t.Errorf("%s: Assemble succeeded, want error", c.name)
		}
	}
}

func TestAssembleBaseAlignment(t *testing.T) {
	if _, err := Assemble("nop", 2); err == nil {
		t.Error("unaligned base accepted")
	}
}

func TestProgramBounds(t *testing.T) {
	p, err := Assemble("nop\nnop", 0x100)
	if err != nil {
		t.Fatal(err)
	}
	if p.Size() != 8 {
		t.Errorf("Size = %d, want 8", p.Size())
	}
	if !p.Contains(0x104) || p.Contains(0x108) || p.Contains(0xfc) {
		t.Error("Contains bounds wrong")
	}
	if _, err := p.WordAt(0x102); err == nil {
		t.Error("unaligned WordAt succeeded")
	}
	if _, err := p.WordAt(0x108); err == nil {
		t.Error("out-of-range WordAt succeeded")
	}
}

func TestAssembleCommentsAndLabelsOnSameLine(t *testing.T) {
	src := "start: mov r0, #1 // set up\n b start ; spin"
	p, err := Assemble(src, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Words) != 2 {
		t.Fatalf("got %d words, want 2", len(p.Words))
	}
	ins, _ := Decode(p.Words[1])
	if ins.Op != B || ins.Imm != -2 {
		t.Errorf("branch = %v, want b -2", ins)
	}
}

func TestInstructionStringForms(t *testing.T) {
	cases := []struct {
		ins  Instruction
		want string
	}{
		{Instruction{Op: NOP}, "nop"},
		{Instruction{Op: SVC, Imm: 7}, "svc #7"},
		{Instruction{Op: LDR, Rd: R1, Rn: SP, Imm: 4, HasImm: true}, "ldr r1, [sp, #4]"},
		{Instruction{Op: CMP, Rn: R2, Rm: R3}, "cmp r2, r3"},
		{Instruction{Op: B, Imm: -5}, "b -5"},
		{Instruction{Op: BLR, Rm: R4}, "blr r4"},
	}
	for _, c := range cases {
		if got := c.ins.String(); got != c.want {
			t.Errorf("String() = %q, want %q", got, c.want)
		}
	}
}

func TestOpStringCoversAll(t *testing.T) {
	for op := Op(0); op < numOps; op++ {
		s := op.String()
		if s == "" || strings.HasPrefix(s, "op(") {
			t.Errorf("opcode %d has no name", op)
		}
	}
}
