package isa

import "fmt"

// Binary layout (32-bit words, big fields first):
//
//	[31:26] opcode
//	[25:22] rd
//	[21:18] rn
//	[17:14] rm
//	[13]    immediate form flag
//	[12:0]  signed 13-bit immediate (ALU/MOV/CMP/LDR/STR offset)
//
// Branch forms reuse the low 22 bits [21:0] as a signed word offset, and SVC
// uses [21:0] as its service number. The layout is not ARM's, but it is a
// fixed-width encoding with the properties the simulation needs: every
// instruction occupies exactly four bytes, and Encode/Decode round-trip.
const (
	immBits    = 13
	immMax     = 1<<(immBits-1) - 1
	immMin     = -(1 << (immBits - 1))
	branchBits = 22
	branchMax  = 1<<(branchBits-1) - 1
	branchMin  = -(1 << (branchBits - 1))
	svcMax     = 1<<branchBits - 1
)

// Encode packs ins into its 32-bit binary form. It returns an error if an
// immediate or offset does not fit its field, or if a register index is out
// of range.
func Encode(ins Instruction) (uint32, error) {
	if ins.Op >= numOps {
		return 0, fmt.Errorf("isa: invalid opcode %d", ins.Op)
	}
	if ins.Rd >= NumRegs || ins.Rn >= NumRegs || ins.Rm >= NumRegs {
		return 0, fmt.Errorf("isa: register out of range in %v", ins)
	}
	w := uint32(ins.Op) << 26
	switch ins.Op {
	case B, BEQ, BNE, BLT, BGE, BL:
		if ins.Imm < branchMin || ins.Imm > branchMax {
			return 0, fmt.Errorf("isa: branch offset %d out of range", ins.Imm)
		}
		w |= uint32(ins.Imm) & (1<<branchBits - 1)
	case SVC:
		if ins.Imm < 0 || ins.Imm > svcMax {
			return 0, fmt.Errorf("isa: svc number %d out of range", ins.Imm)
		}
		w |= uint32(ins.Imm)
	case BR, BLR:
		w |= uint32(ins.Rm) << 14
	case NOP, HALT, RET:
		// no operands
	default: // ALU, moves, compare, memory
		w |= uint32(ins.Rd) << 22
		w |= uint32(ins.Rn) << 18
		if ins.HasImm || ins.Op == LDR || ins.Op == STR {
			if ins.Imm < immMin || ins.Imm > immMax {
				return 0, fmt.Errorf("isa: immediate %d out of range", ins.Imm)
			}
			w |= 1 << 13
			w |= uint32(ins.Imm) & (1<<immBits - 1)
		} else {
			w |= uint32(ins.Rm) << 14
		}
	}
	return w, nil
}

// MustEncode is Encode for known-valid instructions; it panics on error.
// The workload generators use it because they construct instructions from
// validated templates.
func MustEncode(ins Instruction) uint32 {
	w, err := Encode(ins)
	if err != nil {
		panic(err)
	}
	return w
}

// signExtend interprets the low n bits of v as a signed value.
func signExtend(v uint32, n uint) int32 {
	shift := 32 - n
	return int32(v<<shift) >> shift
}

// Decode unpacks a 32-bit word into an Instruction. It returns an error for
// opcodes outside the defined set (all field patterns inside a valid opcode
// decode to something, as in real hardware).
func Decode(w uint32) (Instruction, error) {
	op := Op(w >> 26)
	if op >= numOps {
		return Instruction{}, fmt.Errorf("isa: undefined opcode %d in %#08x", op, w)
	}
	ins := Instruction{Op: op}
	switch op {
	case B, BEQ, BNE, BLT, BGE, BL:
		ins.Imm = signExtend(w&(1<<branchBits-1), branchBits)
	case SVC:
		ins.Imm = int32(w & (1<<branchBits - 1))
	case BR, BLR:
		ins.Rm = Reg(w >> 14 & 0xf)
	case NOP, HALT, RET:
	default:
		ins.Rd = Reg(w >> 22 & 0xf)
		ins.Rn = Reg(w >> 18 & 0xf)
		if w&(1<<13) != 0 {
			ins.HasImm = true
			ins.Imm = signExtend(w&(1<<immBits-1), immBits)
		} else {
			ins.Rm = Reg(w >> 14 & 0xf)
		}
	}
	return ins, nil
}

// String renders ins in assembler syntax, the inverse of Assemble for a
// single instruction.
func (ins Instruction) String() string {
	switch ins.Op {
	case NOP, HALT, RET:
		return ins.Op.String()
	case B, BEQ, BNE, BLT, BGE, BL:
		return fmt.Sprintf("%s %+d", ins.Op, ins.Imm)
	case SVC:
		return fmt.Sprintf("svc #%d", ins.Imm)
	case BR, BLR:
		return fmt.Sprintf("%s %s", ins.Op, ins.Rm)
	case LDR:
		return fmt.Sprintf("ldr %s, [%s, #%d]", ins.Rd, ins.Rn, ins.Imm)
	case STR:
		return fmt.Sprintf("str %s, [%s, #%d]", ins.Rd, ins.Rn, ins.Imm)
	case MOV, MVN:
		if ins.HasImm {
			return fmt.Sprintf("%s %s, #%d", ins.Op, ins.Rd, ins.Imm)
		}
		return fmt.Sprintf("%s %s, %s", ins.Op, ins.Rd, ins.Rm)
	case CMP:
		if ins.HasImm {
			return fmt.Sprintf("cmp %s, #%d", ins.Rn, ins.Imm)
		}
		return fmt.Sprintf("cmp %s, %s", ins.Rn, ins.Rm)
	default:
		if ins.HasImm {
			return fmt.Sprintf("%s %s, %s, #%d", ins.Op, ins.Rd, ins.Rn, ins.Imm)
		}
		return fmt.Sprintf("%s %s, %s, %s", ins.Op, ins.Rd, ins.Rn, ins.Rm)
	}
}
