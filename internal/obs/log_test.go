package obs

import (
	"bytes"
	"encoding/json"
	"log/slog"
	"strings"
	"testing"
)

func TestNewLoggerFormats(t *testing.T) {
	var b bytes.Buffer
	log, err := NewLogger(&b, "text", slog.LevelInfo)
	if err != nil {
		t.Fatal(err)
	}
	log.Info("hello", "k", "v")
	if out := b.String(); !strings.Contains(out, "msg=hello") || !strings.Contains(out, "k=v") {
		t.Errorf("text line = %q", out)
	}

	b.Reset()
	log, err = NewLogger(&b, "json", slog.LevelInfo)
	if err != nil {
		t.Fatal(err)
	}
	log.Info("hello", "k", "v")
	var doc map[string]any
	if err := json.Unmarshal(b.Bytes(), &doc); err != nil {
		t.Fatalf("json line %q: %v", b.String(), err)
	}
	if doc["msg"] != "hello" || doc["k"] != "v" {
		t.Errorf("json line = %v", doc)
	}

	if _, err := NewLogger(&b, "yaml", slog.LevelInfo); err == nil {
		t.Error("unknown format accepted")
	}

	// Level filtering holds.
	b.Reset()
	log, _ = NewLogger(&b, "text", slog.LevelWarn)
	log.Info("quiet")
	log.Warn("loud")
	if out := b.String(); strings.Contains(out, "quiet") || !strings.Contains(out, "loud") {
		t.Errorf("level filter broken: %q", out)
	}
}

func TestParseLogLevel(t *testing.T) {
	cases := map[string]slog.Level{
		"debug": slog.LevelDebug, "info": slog.LevelInfo, "": slog.LevelInfo,
		"warn": slog.LevelWarn, "warning": slog.LevelWarn, "error": slog.LevelError,
		"INFO-4": slog.LevelDebug, // slog's own offset syntax passes through
	}
	for in, want := range cases {
		got, err := ParseLogLevel(in)
		if err != nil || got != want {
			t.Errorf("ParseLogLevel(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := ParseLogLevel("loudest"); err == nil {
		t.Error("nonsense level accepted")
	}
}

func TestSessionLogger(t *testing.T) {
	var b bytes.Buffer
	base, _ := NewLogger(&b, "text", slog.LevelInfo)
	SessionLogger(base, "s-7").Info("judged")
	if out := b.String(); !strings.Contains(out, SessionKey+"=s-7") {
		t.Errorf("session attribute missing: %q", out)
	}
	// A nil base degrades to discard, not a panic.
	SessionLogger(nil, "s-8").Info("dropped")
}

func TestDiscardLogger(t *testing.T) {
	log := DiscardLogger()
	if log == nil {
		t.Fatal("DiscardLogger returned nil")
	}
	log.Info("nothing", "k", "v")
	log.With("a", 1).WithGroup("g").Error("still nothing")
	if log.Enabled(nil, slog.LevelError) {
		t.Error("discard logger claims to be enabled")
	}
}

func TestLogfLogger(t *testing.T) {
	var lines []string
	log := LogfLogger(func(format string, args ...any) {
		lines = append(lines, strings.TrimSpace(strings.Replace(format, "%s", args[0].(string), 1)))
	})
	log.Info("serve: session open", "session", "s-1", "backend", "native")
	log.Debug("invisible") // the bridge keeps legacy hooks at info+
	log.With("session", "s-2").Info("serve: eos")
	log.WithGroup("batch").Info("flush", "reason", "window")

	want := []string{
		"serve: session open session=s-1 backend=native",
		"serve: eos session=s-2",
		"flush batch.reason=window",
	}
	if len(lines) != len(want) {
		t.Fatalf("got %d lines %v, want %d", len(lines), lines, len(want))
	}
	for i := range want {
		if lines[i] != want[i] {
			t.Errorf("line %d = %q, want %q", i, lines[i], want[i])
		}
	}
}
