package obs

import (
	"io"
	"time"
)

// WallTracer is the wall-clock half of the tracing layer: the same
// Chrome/Perfetto trace_event writer as the sim-time Tracer, but with
// timestamps taken from the host's monotonic clock instead of the
// simulation's picosecond timeline. The two clock domains never share a
// tracer — a sim-time trace is deterministic and byte-identical across
// runs, a wall trace is a measurement of this run of this host — so the
// serving plane (internal/serve, cmd/rtadd) records on a WallTracer while
// the simulation keeps its Tracer.
//
// All timestamps are offsets from the tracer's epoch (its construction
// time), so a trace opens at t=0 and spans read as "microseconds into the
// serving run". Spans carry their session ID in args, which is how a
// Perfetto query correlates a span with the structured log lines and the
// flight-recorder events of the same session.
//
// Like everything in this package, a nil *WallTracer or *WallTrack is a
// valid no-op receiver: the un-traced daemon pays one nil check per site.
type WallTracer struct {
	tr    *Tracer
	epoch time.Time
}

// NewWallTracer returns a wall-clock tracer whose epoch is now.
func NewWallTracer() *WallTracer {
	return &WallTracer{tr: NewTracer(), epoch: time.Now()}
}

// SetEventLimit bounds the event buffer (see Tracer.SetEventLimit).
func (w *WallTracer) SetEventLimit(n int) {
	if w == nil {
		return
	}
	w.tr.SetEventLimit(n)
}

// Epoch returns the tracer's zero point (zero time on a nil receiver).
func (w *WallTracer) Epoch() time.Time {
	if w == nil {
		return time.Time{}
	}
	return w.epoch
}

// Events reports the number of recorded events (0 on a nil receiver).
func (w *WallTracer) Events() int {
	if w == nil {
		return 0
	}
	return w.tr.Events()
}

// Track returns the wall-clock timeline named thread inside the process
// domain. Returns nil on a nil tracer.
func (w *WallTracer) Track(domain, thread string) *WallTrack {
	if w == nil {
		return nil
	}
	return &WallTrack{tk: w.tr.Track(domain, thread), epoch: w.epoch}
}

// WriteJSON exports the wall trace in the same trace_event JSON the
// sim-time tracer writes; ui.perfetto.dev opens it directly.
func (w *WallTracer) WriteJSON(out io.Writer) error {
	if w == nil {
		return (*Tracer)(nil).WriteJSON(out)
	}
	return w.tr.WriteJSON(out)
}

// WallTrack is one wall-clock timeline. A nil *WallTrack discards
// everything recorded on it.
type WallTrack struct {
	tk    *Track
	epoch time.Time
}

// toPS converts a wall instant to picoseconds since the tracer epoch (the
// underlying writer's native unit).
func (wt *WallTrack) toPS(at time.Time) int64 {
	return at.Sub(wt.epoch).Nanoseconds() * 1000
}

// Span records a complete wall-clock slice [start, end] on the track.
// No-op on a nil receiver.
func (wt *WallTrack) Span(name string, start, end time.Time, args map[string]any) {
	if wt == nil {
		return
	}
	wt.tk.Span(name, wt.toPS(start), wt.toPS(end), args)
}

// Since records a span from start to now — the usual shape at the end of
// an instrumented stretch:
//
//	t0 := time.Now()
//	... work ...
//	track.Since("feed", t0, map[string]any{"session": id})
//
// No-op on a nil receiver.
func (wt *WallTrack) Since(name string, start time.Time, args map[string]any) {
	if wt == nil {
		return
	}
	wt.tk.Span(name, wt.toPS(start), wt.toPS(time.Now()), args)
}

// Instant records a point event at now. No-op on a nil receiver.
func (wt *WallTrack) Instant(name string, args map[string]any) {
	if wt == nil {
		return
	}
	wt.tk.Instant(name, wt.toPS(time.Now()), args)
}

// Counter records a sampled series value at now. No-op on a nil receiver.
func (wt *WallTrack) Counter(name string, value float64) {
	if wt == nil {
		return
	}
	wt.tk.Counter(name, wt.toPS(time.Now()), value)
}
