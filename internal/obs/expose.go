package obs

import (
	"context"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// Handler returns an http.Handler rendering the registry in Prometheus
// text exposition format.
func Handler(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
}

// Route is an extra endpoint mounted on an exposition Server — how the
// serving daemon adds /debug/sessions and /debug/flightrecorder next to
// /metrics without obs knowing what they serve.
type Route struct {
	Pattern string
	Handler http.Handler
}

// Server is a live introspection endpoint: /metrics serves the registry,
// /debug/pprof/* the runtime profiles, plus any caller-mounted Routes.
// Reads race harmlessly with the simulation because every metric is
// atomic.
type Server struct {
	ln  net.Listener
	srv *http.Server
}

// ShutdownTimeout bounds how long Close waits for in-flight scrapes
// before force-closing their connections.
const ShutdownTimeout = 5 * time.Second

// Serve starts an exposition server on addr (host:port; ":0" picks a free
// port). The server runs until Close/Shutdown.
func Serve(addr string, r *Registry, routes ...Route) (*Server, error) {
	mux := http.NewServeMux()
	mux.Handle("/metrics", Handler(r))
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	for _, rt := range routes {
		mux.Handle(rt.Pattern, rt.Handler)
	}

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &Server{ln: ln, srv: &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}}
	go func() { _ = s.srv.Serve(ln) }()
	return s, nil
}

// Addr reports the bound address (useful with ":0").
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Shutdown stops the endpoint gracefully: the listener closes immediately,
// but responses already being written — a /metrics scrape racing a drain —
// run to completion until ctx expires, after which remaining connections
// are force-closed.
func (s *Server) Shutdown(ctx context.Context) error {
	err := s.srv.Shutdown(ctx)
	if err != nil {
		// Deadline hit with scrapes still in flight: cut them off rather
		// than leak the listener goroutine.
		_ = s.srv.Close()
	}
	return err
}

// Close shuts the endpoint down gracefully with the default
// ShutdownTimeout — in-flight scrapes finish, stragglers are cut off.
func (s *Server) Close() error {
	ctx, cancel := context.WithTimeout(context.Background(), ShutdownTimeout)
	defer cancel()
	return s.Shutdown(ctx)
}
