package obs

import (
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// Handler returns an http.Handler rendering the registry in Prometheus
// text exposition format.
func Handler(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
}

// Server is a live metrics endpoint: /metrics serves the registry,
// /debug/pprof/* the runtime profiles. Reads race harmlessly with the
// simulation because every metric is atomic.
type Server struct {
	ln  net.Listener
	srv *http.Server
}

// Serve starts an exposition server on addr (host:port; ":0" picks a free
// port). The server runs until Close.
func Serve(addr string, r *Registry) (*Server, error) {
	mux := http.NewServeMux()
	mux.Handle("/metrics", Handler(r))
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &Server{ln: ln, srv: &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}}
	go func() { _ = s.srv.Serve(ln) }()
	return s, nil
}

// Addr reports the bound address (useful with ":0").
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close shuts the endpoint down.
func (s *Server) Close() error { return s.srv.Close() }
