// Package obs is the telemetry layer of the RTAD reproduction: a
// goroutine-safe metrics registry (atomic counters, gauges and fixed-bucket
// histograms), a sim-time event tracer exporting Chrome/Perfetto
// trace_event JSON, and Prometheus text/HTTP exposition. It depends only on
// the standard library so every layer of the simulator — sim kernel,
// CoreSight chain, MLPU, session/fleet — can import it freely.
//
// Everything is nil-safe: a nil *Telemetry, *Registry, *Counter, *Gauge,
// *Histogram, *Tracer or *Track is a valid no-op receiver, so instrumented
// code reads identically whether telemetry is enabled or not and an
// un-instrumented run pays only a nil check per recording site. Recording
// never mutates simulation state, which is what keeps instrumented runs
// bit-identical to bare ones.
package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by d. No-op on a nil receiver.
func (c *Counter) Add(d int64) {
	if c == nil {
		return
	}
	c.v.Add(d)
}

// Inc increments the counter by one. No-op on a nil receiver.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 on a nil receiver).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomic last-written-value metric.
type Gauge struct {
	v atomic.Int64
}

// Set stores v. No-op on a nil receiver.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Max raises the gauge to v if v is larger (a high-water-mark update).
func (g *Gauge) Max(v int64) {
	if g == nil {
		return
	}
	for {
		cur := g.v.Load()
		if v <= cur || g.v.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Value returns the current value (0 on a nil receiver).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram is a fixed-bucket histogram with Prometheus "le" semantics: an
// observation v lands in the first bucket whose upper bound is >= v, or in
// the implicit +Inf overflow bucket. Buckets are fixed at construction so
// observation is lock-free (one atomic add per bucket hit plus a CAS loop
// for the running sum).
type Histogram struct {
	bounds []float64 // sorted upper bounds, exclusive of +Inf
	counts []atomic.Int64
	inf    atomic.Int64
	count  atomic.Int64
	sum    atomic.Uint64 // float64 bits, CAS-accumulated
}

// newHistogram builds a histogram over the given (sorted, deduplicated)
// upper bounds.
func newHistogram(bounds []float64) *Histogram {
	bs := append([]float64(nil), bounds...)
	sort.Float64s(bs)
	n := 0
	for i, b := range bs {
		if i == 0 || b != bs[i-1] {
			bs[n] = b
			n++
		}
	}
	bs = bs[:n]
	return &Histogram{bounds: bs, counts: make([]atomic.Int64, len(bs))}
}

// Observe records one value. No-op on a nil receiver.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v)
	if i < len(h.bounds) {
		h.counts[i].Add(1)
	} else {
		h.inf.Add(1)
	}
	h.count.Add(1)
	for {
		old := h.sum.Load()
		if h.sum.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// Count returns the number of observations (0 on a nil receiver).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the running sum of observations (0 on a nil receiver).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}

// Buckets returns the upper bounds and the *cumulative* count at each bound
// (Prometheus le semantics), excluding +Inf.
func (h *Histogram) Buckets() (bounds []float64, cumulative []int64) {
	if h == nil {
		return nil, nil
	}
	bounds = append([]float64(nil), h.bounds...)
	cumulative = make([]int64, len(h.bounds))
	var acc int64
	for i := range h.counts {
		acc += h.counts[i].Load()
		cumulative[i] = acc
	}
	return bounds, cumulative
}

// ExpBuckets returns n exponential bucket bounds: start, start*factor, ...
func ExpBuckets(start, factor float64, n int) []float64 {
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// LinearBuckets returns n linear bucket bounds: start, start+step, ...
func LinearBuckets(start, step float64, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = start + float64(i)*step
	}
	return out
}

// Registry holds named metrics. Registration takes a mutex; recording on
// the returned metric handles is lock-free. A nil *Registry hands out nil
// metric handles, so the whole instrumentation chain degrades to no-ops.
type Registry struct {
	mu     sync.Mutex
	counts map[string]*Counter
	gauges map[string]*Gauge
	hists  map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counts: map[string]*Counter{},
		gauges: map[string]*Gauge{},
		hists:  map[string]*Histogram{},
	}
}

// Counter returns the named counter, creating it on first use. Returns nil
// on a nil registry.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counts[name]
	if !ok {
		c = &Counter{}
		r.counts[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use. Returns nil on a
// nil registry.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given bucket
// bounds on first use (later calls ignore bounds). Returns nil on a nil
// registry.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = newHistogram(bounds)
		r.hists[name] = h
	}
	return h
}

// Merge folds src into r: counters and histograms add, gauges take src's
// value (last merge wins). Fleet runs give every session its own registry
// and merge them serially in job order, which keeps aggregate metrics
// bit-identical no matter how many workers ran the jobs. Histograms merge
// by bucket only when the bounds match; mismatched bounds fold into the
// destination's buckets via per-bucket re-observation at the bound value.
func (r *Registry) Merge(src *Registry) {
	if r == nil || src == nil {
		return
	}
	src.mu.Lock()
	defer src.mu.Unlock()
	for name, c := range src.counts {
		r.Counter(name).Add(c.Value())
	}
	for name, g := range src.gauges {
		r.Gauge(name).Set(g.Value())
	}
	for name, h := range src.hists {
		dst := r.Histogram(name, h.bounds)
		if histBoundsEqual(dst.bounds, h.bounds) {
			for i := range h.counts {
				dst.counts[i].Add(h.counts[i].Load())
			}
			dst.inf.Add(h.inf.Load())
			dst.count.Add(h.count.Load())
			for {
				old := dst.sum.Load()
				merged := math.Float64frombits(old) + h.Sum()
				if dst.sum.CompareAndSwap(old, math.Float64bits(merged)) {
					break
				}
			}
			continue
		}
		for i := range h.counts {
			n := h.counts[i].Load()
			if n == 0 {
				continue
			}
			if j := sort.SearchFloat64s(dst.bounds, h.bounds[i]); j < len(dst.bounds) {
				dst.counts[j].Add(n)
			} else {
				dst.inf.Add(n)
			}
		}
		dst.inf.Add(h.inf.Load())
		dst.count.Add(h.count.Load())
		for {
			old := dst.sum.Load()
			merged := math.Float64frombits(old) + h.Sum()
			if dst.sum.CompareAndSwap(old, math.Float64bits(merged)) {
				break
			}
		}
	}
}

func histBoundsEqual(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// WritePrometheus renders every metric in Prometheus text exposition
// format, names sorted for deterministic output.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	counts := sortedKeys(r.counts)
	gauges := sortedKeys(r.gauges)
	hists := sortedKeys(r.hists)
	r.mu.Unlock()

	for _, name := range counts {
		if _, err := fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", name, name, r.Counter(name).Value()); err != nil {
			return err
		}
	}
	for _, name := range gauges {
		if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n%s %d\n", name, name, r.Gauge(name).Value()); err != nil {
			return err
		}
	}
	for _, name := range hists {
		h := r.Histogram(name, nil)
		if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", name); err != nil {
			return err
		}
		bounds, cum := h.Buckets()
		for i, b := range bounds {
			if _, err := fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", name, formatBound(b), cum[i]); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n%s_sum %v\n%s_count %d\n",
			name, h.Count(), name, h.Sum(), name, h.Count()); err != nil {
			return err
		}
	}
	return nil
}

func formatBound(b float64) string { return fmt.Sprintf("%g", b) }

func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Snapshot is a JSON-friendly dump of a registry, embedded by the
// rtad-experiments report when telemetry is enabled.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters,omitempty"`
	Gauges     map[string]int64             `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
}

// HistogramSnapshot is one histogram's state: bounds with cumulative
// counts, plus sum and count.
type HistogramSnapshot struct {
	Bounds     []float64 `json:"bounds"`
	Cumulative []int64   `json:"cumulative"`
	Sum        float64   `json:"sum"`
	Count      int64     `json:"count"`
}

// Snapshot captures the registry's current state (nil on a nil registry).
func (r *Registry) Snapshot() *Snapshot {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	counts := sortedKeys(r.counts)
	gauges := sortedKeys(r.gauges)
	hists := sortedKeys(r.hists)
	r.mu.Unlock()

	s := &Snapshot{}
	if len(counts) > 0 {
		s.Counters = map[string]int64{}
		for _, name := range counts {
			s.Counters[name] = r.Counter(name).Value()
		}
	}
	if len(gauges) > 0 {
		s.Gauges = map[string]int64{}
		for _, name := range gauges {
			s.Gauges[name] = r.Gauge(name).Value()
		}
	}
	if len(hists) > 0 {
		s.Histograms = map[string]HistogramSnapshot{}
		for _, name := range hists {
			h := r.Histogram(name, nil)
			bounds, cum := h.Buckets()
			s.Histograms[name] = HistogramSnapshot{
				Bounds: bounds, Cumulative: cum, Sum: h.Sum(), Count: h.Count(),
			}
		}
	}
	return s
}
