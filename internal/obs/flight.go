package obs

import (
	"encoding/json"
	"io"
	"sync"
	"time"
)

// FlightRecorder is the serving plane's post-mortem memory: a bounded
// in-memory ring of recent structured events per session. Recording is
// cheap and always on; the rings are only ever read out when something
// goes wrong — a session panics, violates the protocol, or aborts — at
// which point the dying session's recent history is dumped as JSON, and
// the whole recorder stays inspectable at /debug/flightrecorder.
//
// Bounds: each session keeps at most perSession events (older ones are
// overwritten in ring order), and the recorder tracks at most maxSessions
// rings — when a new session would exceed that, the oldest *ended* ring
// is evicted first, then the oldest ring outright, so a recorder can run
// under millions of short sessions in bounded memory. Sessions that end
// cleanly are kept (marked ended) until eviction: a post-mortem often
// starts after the session is gone.
//
// A nil *FlightRecorder is a valid no-op receiver.
type FlightRecorder struct {
	mu          sync.Mutex
	perSession  int
	maxSessions int
	rings       map[string]*flightRing
	order       []string // session IDs in creation order, for eviction
}

// FlightEvent is one recorded event. Attrs is shallow-copied at record
// time; values must be JSON-marshalable (strings and numbers in practice).
type FlightEvent struct {
	Time    time.Time      `json:"t"`
	Session string         `json:"session"`
	Event   string         `json:"event"`
	Attrs   map[string]any `json:"attrs,omitempty"`
}

type flightRing struct {
	events []FlightEvent // ring storage, len == cap once full
	next   int           // next write slot
	wrap   bool          // true once the ring has lapped
	ended  bool          // session finished (cleanly or not)
}

// Flight-recorder defaults: events retained per session and session rings
// retained per recorder.
const (
	DefaultFlightEvents   = 64
	DefaultFlightSessions = 256
)

// NewFlightRecorder returns a recorder keeping perSession events per
// session (<= 0 = DefaultFlightEvents) across at most maxSessions rings
// (<= 0 = DefaultFlightSessions).
func NewFlightRecorder(perSession, maxSessions int) *FlightRecorder {
	if perSession <= 0 {
		perSession = DefaultFlightEvents
	}
	if maxSessions <= 0 {
		maxSessions = DefaultFlightSessions
	}
	return &FlightRecorder{
		perSession:  perSession,
		maxSessions: maxSessions,
		rings:       map[string]*flightRing{},
	}
}

// Record appends one event to the session's ring, creating the ring (and
// evicting an old one if needed) on first use. attrs may be nil; the map
// is copied, so callers may reuse theirs. No-op on a nil receiver.
func (f *FlightRecorder) Record(session, event string, attrs map[string]any) {
	if f == nil {
		return
	}
	ev := FlightEvent{Time: time.Now(), Session: session, Event: event}
	if len(attrs) > 0 {
		ev.Attrs = make(map[string]any, len(attrs))
		for k, v := range attrs {
			ev.Attrs[k] = v
		}
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	r := f.rings[session]
	if r == nil {
		f.evictLocked()
		r = &flightRing{events: make([]FlightEvent, 0, f.perSession)}
		f.rings[session] = r
		f.order = append(f.order, session)
	}
	if len(r.events) < f.perSession {
		r.events = append(r.events, ev)
		return
	}
	r.events[r.next] = ev
	r.next = (r.next + 1) % f.perSession
	r.wrap = true
}

// evictLocked makes room for one more ring: the oldest ended ring goes
// first, then the oldest ring of any state.
func (f *FlightRecorder) evictLocked() {
	if len(f.rings) < f.maxSessions {
		return
	}
	victim := -1
	for i, id := range f.order {
		if f.rings[id].ended {
			victim = i
			break
		}
	}
	if victim < 0 {
		victim = 0
	}
	delete(f.rings, f.order[victim])
	f.order = append(f.order[:victim], f.order[victim+1:]...)
}

// End marks the session's ring ended — first in line for eviction — while
// keeping its events readable for post-mortems. No-op on a nil receiver or
// unknown session.
func (f *FlightRecorder) End(session string) {
	if f == nil {
		return
	}
	f.mu.Lock()
	if r := f.rings[session]; r != nil {
		r.ended = true
	}
	f.mu.Unlock()
}

// Dump returns the session's retained events in record order (oldest
// first). Nil on a nil receiver or unknown session.
func (f *FlightRecorder) Dump(session string) []FlightEvent {
	if f == nil {
		return nil
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	r := f.rings[session]
	if r == nil {
		return nil
	}
	return r.ordered()
}

// ordered returns the ring's events oldest-first. Before the first wrap,
// next stays 0 and the backing slice is already in record order.
func (r *flightRing) ordered() []FlightEvent {
	if !r.wrap {
		return append([]FlightEvent(nil), r.events...)
	}
	out := make([]FlightEvent, 0, len(r.events))
	out = append(out, r.events[r.next:]...)
	return append(out, r.events[:r.next]...)
}

// Sessions lists the session IDs with retained rings, in creation order.
func (f *FlightRecorder) Sessions() []string {
	if f == nil {
		return nil
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]string(nil), f.order...)
}

// WriteJSON dumps the whole recorder as one JSON object:
//
//	{"sessions": {"s-1": [event, ...], ...}}
//
// the payload of /debug/flightrecorder and of the on-panic dump.
func (f *FlightRecorder) WriteJSON(w io.Writer) error {
	doc := struct {
		Sessions map[string][]FlightEvent `json:"sessions"`
	}{Sessions: map[string][]FlightEvent{}}
	if f != nil {
		f.mu.Lock()
		for id, r := range f.rings {
			doc.Sessions[id] = r.ordered()
		}
		f.mu.Unlock()
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(&doc)
}
