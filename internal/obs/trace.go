package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
)

// Tracer records spans, instants and counter samples against simulated
// time and exports them as Chrome trace_event JSON, the format
// chrome://tracing and ui.perfetto.dev open directly. Timestamps are
// simulated picoseconds (the sim.Time unit) converted to the format's
// microseconds, so a span on the timeline reads in the same units the
// paper's figures use.
//
// Tracks map onto the format's process/thread hierarchy: one process per
// clock domain ("cpu", "fabric", "gpu", "session") and one thread per
// pipeline stage or logical lane, which is how Perfetto renders "one track
// per clock domain and per stage". Events are marshalled at record time so
// export is a deterministic concatenation; equal inputs produce
// byte-identical trace files.
type Tracer struct {
	mu      sync.Mutex
	events  []json.RawMessage
	procs   map[string]int
	procSeq []string
	tracks  map[string]*Track
	nextTID int
	limit   int
	dropped int64
}

// DefaultEventLimit bounds a tracer's event buffer. Beyond it, new events
// are counted as dropped instead of recorded, so a runaway run degrades to
// a truncated trace rather than unbounded memory.
const DefaultEventLimit = 1 << 21

// NewTracer returns an empty tracer with the default event limit.
func NewTracer() *Tracer {
	return &Tracer{
		procs:   map[string]int{},
		tracks:  map[string]*Track{},
		limit:   DefaultEventLimit,
		nextTID: 1,
	}
}

// SetEventLimit replaces the event cap (values <= 0 keep the default).
func (t *Tracer) SetEventLimit(n int) {
	if t == nil || n <= 0 {
		return
	}
	t.mu.Lock()
	t.limit = n
	t.mu.Unlock()
}

// Dropped reports events discarded after the limit was hit.
func (t *Tracer) Dropped() int64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// Events reports the number of recorded events.
func (t *Tracer) Events() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.events)
}

// Track is one named timeline: a (process, thread) pair in the trace_event
// model. A nil *Track discards everything recorded on it.
type Track struct {
	t        *Tracer
	pid, tid int
}

// Track returns the timeline named thread inside the process domain,
// creating both on first use. Returns nil on a nil tracer.
func (t *Tracer) Track(domain, thread string) *Track {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	key := domain + "\x00" + thread
	if tk, ok := t.tracks[key]; ok {
		return tk
	}
	pid, ok := t.procs[domain]
	if !ok {
		pid = len(t.procSeq) + 1
		t.procs[domain] = pid
		t.procSeq = append(t.procSeq, domain)
	}
	tk := &Track{t: t, pid: pid, tid: t.nextTID}
	t.nextTID++
	t.tracks[key] = tk
	t.record(metaEvent{Name: "thread_name", Ph: "M", PID: pid, TID: tk.tid,
		Args: map[string]string{"name": thread}})
	return tk
}

// ps-to-microsecond conversion for the trace_event "ts"/"dur" fields.
func psToUS(ps int64) float64 { return float64(ps) / 1e6 }

type spanEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"`
	Dur  float64        `json:"dur"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

type instantEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	S    string         `json:"s"`
	Args map[string]any `json:"args,omitempty"`
}

type counterEvent struct {
	Name string             `json:"name"`
	Ph   string             `json:"ph"`
	TS   float64            `json:"ts"`
	PID  int                `json:"pid"`
	TID  int                `json:"tid"`
	Args map[string]float64 `json:"args"`
}

type metaEvent struct {
	Name string            `json:"name"`
	Ph   string            `json:"ph"`
	PID  int               `json:"pid"`
	TID  int               `json:"tid,omitempty"`
	Args map[string]string `json:"args"`
}

// record marshals and appends one event; caller holds t.mu.
func (t *Tracer) record(ev any) {
	if len(t.events) >= t.limit {
		t.dropped++
		return
	}
	blob, err := json.Marshal(ev)
	if err != nil {
		// Unmarshalable args indicate a programming error at the recording
		// site; drop the event rather than poisoning the export.
		t.dropped++
		return
	}
	t.events = append(t.events, blob)
}

// Span records a complete slice [startPS, endPS] on the track. Times are
// simulated picoseconds. No-op on a nil receiver.
func (tk *Track) Span(name string, startPS, endPS int64, args map[string]any) {
	if tk == nil {
		return
	}
	dur := endPS - startPS
	if dur < 0 {
		dur = 0
	}
	tk.t.mu.Lock()
	tk.t.record(spanEvent{Name: name, Ph: "X", TS: psToUS(startPS), Dur: psToUS(dur),
		PID: tk.pid, TID: tk.tid, Args: args})
	tk.t.mu.Unlock()
}

// Instant records a point event at atPS simulated picoseconds. No-op on a
// nil receiver.
func (tk *Track) Instant(name string, atPS int64, args map[string]any) {
	if tk == nil {
		return
	}
	tk.t.mu.Lock()
	tk.t.record(instantEvent{Name: name, Ph: "i", TS: psToUS(atPS),
		PID: tk.pid, TID: tk.tid, S: "t", Args: args})
	tk.t.mu.Unlock()
}

// Counter records a sampled series value at atPS simulated picoseconds,
// rendered by Perfetto as a counter track. No-op on a nil receiver.
func (tk *Track) Counter(name string, atPS int64, value float64) {
	if tk == nil {
		return
	}
	tk.t.mu.Lock()
	tk.t.record(counterEvent{Name: name, Ph: "C", TS: psToUS(atPS),
		PID: tk.pid, TID: tk.tid, Args: map[string]float64{"value": value}})
	tk.t.mu.Unlock()
}

// WriteJSON exports the trace as a JSON object with a traceEvents array.
// Process-name metadata is emitted first (in first-use order), then every
// recorded event in record order — equal recordings export byte-identically.
func (t *Tracer) WriteJSON(w io.Writer) error {
	if t == nil {
		_, err := io.WriteString(w, "{\"traceEvents\":[]}\n")
		return err
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, err := io.WriteString(w, "{\"traceEvents\":[\n"); err != nil {
		return err
	}
	first := true
	emit := func(blob []byte) error {
		if !first {
			if _, err := io.WriteString(w, ",\n"); err != nil {
				return err
			}
		}
		first = false
		_, err := w.Write(blob)
		return err
	}
	for i, domain := range t.procSeq {
		blob, err := json.Marshal(metaEvent{Name: "process_name", Ph: "M", PID: i + 1,
			Args: map[string]string{"name": domain}})
		if err != nil {
			return err
		}
		if err := emit(blob); err != nil {
			return err
		}
	}
	for _, blob := range t.events {
		if err := emit(blob); err != nil {
			return err
		}
	}
	tail := "\n]}\n"
	if t.dropped > 0 {
		tail = fmt.Sprintf("\n],\"otherData\":{\"droppedEvents\":\"%d\"}}\n", t.dropped)
	}
	_, err := io.WriteString(w, tail)
	return err
}

// TrackNames lists every registered (domain, thread) pair sorted for
// inspection and tests.
func (t *Tracer) TrackNames() []string {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]string, 0, len(t.tracks))
	for key := range t.tracks {
		out = append(out, key)
	}
	sort.Strings(out)
	for i, key := range out {
		for j, c := range key {
			if c == 0 {
				out[i] = key[:j] + "/" + key[j+1:]
				break
			}
		}
	}
	return out
}
