package obs

import (
	"context"
	"fmt"
	"io"
	"log/slog"
	"strings"
)

// Structured logging for the serving plane, built on log/slog. The
// conventions live here so every emitter — internal/serve, cmd/rtadd,
// cmd/loadgen — logs the same shape:
//
//   - one "session" attribute per session-scoped line, carrying the
//     SessionID the server minted in the welcome frame; grep (or jq) on it
//     joins the log with the wall trace's span args and the flight
//     recorder's per-session ring
//   - "text" format for humans at a terminal, "json" (one object per
//     line) for log shippers
//
// NewLogger never returns nil, and a nil *slog.Logger is not a valid
// no-op the way nil metrics are — callers that want silence use
// DiscardLogger.

// SessionKey is the attribute key carrying the session ID on every
// session-scoped log line, wall-trace span and flight-recorder event.
const SessionKey = "session"

// LogFormats lists the -log-format values NewLogger accepts.
const LogFormats = "text|json"

// NewLogger builds a logger writing to w in the given format ("text" or
// "json") at the given minimum level.
func NewLogger(w io.Writer, format string, level slog.Level) (*slog.Logger, error) {
	opts := &slog.HandlerOptions{Level: level}
	switch format {
	case "", "text":
		return slog.New(slog.NewTextHandler(w, opts)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(w, opts)), nil
	default:
		return nil, fmt.Errorf("obs: unknown log format %q (want %s)", format, LogFormats)
	}
}

// ParseLogLevel maps a -log-level flag value ("debug", "info", "warn",
// "error", or anything slog.Level.UnmarshalText accepts, like "INFO-4")
// to a slog.Level.
func ParseLogLevel(s string) (slog.Level, error) {
	switch strings.ToLower(s) {
	case "debug":
		return slog.LevelDebug, nil
	case "", "info":
		return slog.LevelInfo, nil
	case "warn", "warning":
		return slog.LevelWarn, nil
	case "error":
		return slog.LevelError, nil
	}
	var l slog.Level
	if err := l.UnmarshalText([]byte(s)); err != nil {
		return 0, fmt.Errorf("obs: unknown log level %q (want debug|info|warn|error)", s)
	}
	return l, nil
}

// SessionLogger derives a logger whose every line carries the session
// correlation attribute. A nil base degrades to the discard logger.
func SessionLogger(base *slog.Logger, sessionID string) *slog.Logger {
	if base == nil {
		base = DiscardLogger()
	}
	return base.With(slog.String(SessionKey, sessionID))
}

// DiscardLogger returns a logger that drops everything — the explicit
// no-op for callers that must hold a non-nil *slog.Logger. Its handler
// reports every level disabled, so slog never assembles the record.
func DiscardLogger() *slog.Logger { return discardLogger }

var discardLogger = slog.New(discardHandler{})

// discardHandler is a zero-cost slog.Handler. (slog.DiscardHandler
// arrived in go1.24; this repo supports 1.22.)
type discardHandler struct{}

func (discardHandler) Enabled(context.Context, slog.Level) bool  { return false }
func (discardHandler) Handle(context.Context, slog.Record) error { return nil }
func (discardHandler) WithAttrs([]slog.Attr) slog.Handler        { return discardHandler{} }
func (discardHandler) WithGroup(string) slog.Handler             { return discardHandler{} }

// LogfLogger bridges a printf-style hook into a *slog.Logger — the compat
// shim behind serve.Config.Logf. Records render as "msg key=val ..." and
// reach logf as a single %s argument, so legacy hooks keep receiving one
// line per event.
func LogfLogger(logf func(format string, args ...any)) *slog.Logger {
	return slog.New(&logfHandler{logf: logf})
}

type logfHandler struct {
	logf  func(format string, args ...any)
	attrs []slog.Attr
	group string
}

func (h *logfHandler) Enabled(_ context.Context, level slog.Level) bool {
	return level >= slog.LevelInfo
}

func (h *logfHandler) Handle(_ context.Context, r slog.Record) error {
	var b strings.Builder
	b.WriteString(r.Message)
	emit := func(a slog.Attr) {
		if a.Equal(slog.Attr{}) {
			return
		}
		key := a.Key
		if h.group != "" {
			key = h.group + "." + key
		}
		fmt.Fprintf(&b, " %s=%v", key, a.Value.Resolve().Any())
	}
	for _, a := range h.attrs {
		emit(a)
	}
	r.Attrs(func(a slog.Attr) bool { emit(a); return true })
	h.logf("%s", b.String())
	return nil
}

func (h *logfHandler) WithAttrs(attrs []slog.Attr) slog.Handler {
	nh := *h
	nh.attrs = append(append([]slog.Attr(nil), h.attrs...), attrs...)
	return &nh
}

func (h *logfHandler) WithGroup(name string) slog.Handler {
	nh := *h
	if nh.group != "" {
		nh.group += "." + name
	} else {
		nh.group = name
	}
	return &nh
}
