package obs

// Telemetry bundles the two halves of the observability layer — the
// metrics registry and the sim-time tracer — into the single optional
// handle components accept. A nil *Telemetry (the default everywhere) is a
// complete no-op: every accessor returns a nil metric or track, and those
// are no-op receivers themselves.
type Telemetry struct {
	Reg    *Registry
	Tracer *Tracer

	// trackPrefix namespaces stage track names, so multi-lane deployments
	// (dual ELM+LSTM sessions) get distinct per-lane timelines while
	// sharing one registry and one trace file.
	trackPrefix string
	// metricSuffix namespaces registry metric names the same way (appended
	// to every Counter/Gauge/Histogram name, e.g. "_elm").
	metricSuffix string
}

// New returns a telemetry bundle with a fresh registry and tracer.
func New() *Telemetry {
	return &Telemetry{Reg: NewRegistry(), Tracer: NewTracer()}
}

// NewMetricsOnly returns a bundle that records metrics but no trace —
// the fleet configuration, where per-session traces would interleave.
func NewMetricsOnly() *Telemetry {
	return &Telemetry{Reg: NewRegistry()}
}

// Sub derives a telemetry handle sharing this bundle's registry and tracer
// but prefixing track names with prefix (e.g. "elm/"). Returns nil on a
// nil receiver.
func (t *Telemetry) Sub(prefix string) *Telemetry {
	if t == nil {
		return nil
	}
	return &Telemetry{
		Reg: t.Reg, Tracer: t.Tracer,
		trackPrefix:  t.trackPrefix + prefix,
		metricSuffix: t.metricSuffix,
	}
}

// Lane derives a per-lane handle: track names gain "name/" and metric names
// gain "_name", so a dual ELM+LSTM session reports two distinct judgment
// latency histograms over one registry. Returns nil on a nil receiver.
func (t *Telemetry) Lane(name string) *Telemetry {
	if t == nil {
		return nil
	}
	return &Telemetry{
		Reg: t.Reg, Tracer: t.Tracer,
		trackPrefix:  t.trackPrefix + name + "/",
		metricSuffix: t.metricSuffix + "_" + name,
	}
}

// Counter returns the named registry counter (nil on a nil bundle).
func (t *Telemetry) Counter(name string) *Counter {
	if t == nil {
		return nil
	}
	return t.Reg.Counter(name + t.metricSuffix)
}

// Gauge returns the named registry gauge (nil on a nil bundle).
func (t *Telemetry) Gauge(name string) *Gauge {
	if t == nil {
		return nil
	}
	return t.Reg.Gauge(name + t.metricSuffix)
}

// Histogram returns the named registry histogram (nil on a nil bundle).
func (t *Telemetry) Histogram(name string, bounds []float64) *Histogram {
	if t == nil {
		return nil
	}
	return t.Reg.Histogram(name+t.metricSuffix, bounds)
}

// Track returns the (domain, thread) trace track with the bundle's lane
// prefix applied (nil on a nil bundle or when no tracer is attached).
func (t *Telemetry) Track(domain, thread string) *Track {
	if t == nil || t.Tracer == nil {
		return nil
	}
	return t.Tracer.Track(domain, t.trackPrefix+thread)
}
