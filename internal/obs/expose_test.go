package obs

import (
	"context"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"
)

// TestServerGracefulShutdown pins the drain contract: a scrape already in
// flight when Shutdown starts runs to completion, and only then does
// Shutdown return.
func TestServerGracefulShutdown(t *testing.T) {
	started := make(chan struct{})
	release := make(chan struct{})
	slow := http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		close(started)
		<-release
		io.WriteString(w, "slow-scrape-done")
	})
	s, err := Serve("127.0.0.1:0", NewRegistry(), Route{Pattern: "/slow", Handler: slow})
	if err != nil {
		t.Fatal(err)
	}

	type resp struct {
		body string
		err  error
	}
	got := make(chan resp, 1)
	go func() {
		r, err := http.Get("http://" + s.Addr() + "/slow")
		if err != nil {
			got <- resp{err: err}
			return
		}
		defer r.Body.Close()
		body, err := io.ReadAll(r.Body)
		got <- resp{body: string(body), err: err}
	}()
	<-started

	shutdownDone := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		shutdownDone <- s.Shutdown(ctx)
	}()

	// Shutdown must wait for the in-flight response, not race past it.
	select {
	case err := <-shutdownDone:
		t.Fatalf("Shutdown returned (%v) while a scrape was still in flight", err)
	case <-time.After(100 * time.Millisecond):
	}
	close(release)

	r := <-got
	if r.err != nil {
		t.Fatalf("in-flight scrape failed across shutdown: %v", r.err)
	}
	if r.body != "slow-scrape-done" {
		t.Fatalf("in-flight scrape body = %q, truncated by shutdown", r.body)
	}
	if err := <-shutdownDone; err != nil {
		t.Fatalf("Shutdown: %v", err)
	}

	// The listener is gone: new scrapes are refused.
	if _, err := http.Get("http://" + s.Addr() + "/slow"); err == nil {
		t.Error("scrape succeeded after shutdown")
	}
}

// TestServerShutdownDeadline pins the other half: a scrape that never
// finishes cannot hold Shutdown past its context deadline.
func TestServerShutdownDeadline(t *testing.T) {
	hung := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		<-r.Context().Done() // never writes; released by the force-close
	})
	s, err := Serve("127.0.0.1:0", NewRegistry(), Route{Pattern: "/hang", Handler: hung})
	if err != nil {
		t.Fatal(err)
	}
	go func() { _, _ = http.Get("http://" + s.Addr() + "/hang") }()

	// Give the request a moment to arrive, then shut down with a short fuse.
	time.Sleep(50 * time.Millisecond)
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	start := time.Now()
	err = s.Shutdown(ctx)
	if err == nil {
		// The request may not have landed yet on a slow host; either way
		// Shutdown must have returned promptly.
	} else if !strings.Contains(err.Error(), "deadline") {
		t.Fatalf("Shutdown error = %v, want a deadline error", err)
	}
	if took := time.Since(start); took > 5*time.Second {
		t.Fatalf("Shutdown took %v with a 100ms deadline", took)
	}
}
