package obs

import (
	"encoding/json"
	"fmt"
	"strings"
	"testing"
)

func TestFlightRecorderNilSafety(t *testing.T) {
	var f *FlightRecorder
	f.Record("s", "ev", nil)
	f.End("s")
	if d := f.Dump("s"); d != nil {
		t.Errorf("nil recorder Dump = %v", d)
	}
	if s := f.Sessions(); s != nil {
		t.Errorf("nil recorder Sessions = %v", s)
	}
	var b strings.Builder
	if err := f.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), `"sessions"`) {
		t.Errorf("nil recorder JSON = %q", b.String())
	}
}

func TestFlightRingBoundAndOrder(t *testing.T) {
	f := NewFlightRecorder(4, 0)
	for i := 0; i < 10; i++ {
		f.Record("s-1", fmt.Sprintf("ev%d", i), map[string]any{"i": i})
	}
	got := f.Dump("s-1")
	if len(got) != 4 {
		t.Fatalf("ring kept %d events, want 4", len(got))
	}
	// Oldest-first across the wrap point: the last 4 of 10 records.
	for i, ev := range got {
		if want := fmt.Sprintf("ev%d", i+6); ev.Event != want {
			t.Errorf("event %d = %s, want %s", i, ev.Event, want)
		}
	}

	// A ring that never wraps dumps exactly what was recorded.
	f.Record("s-2", "only", nil)
	if d := f.Dump("s-2"); len(d) != 1 || d[0].Event != "only" {
		t.Errorf("unwrapped dump = %v", d)
	}
	if d := f.Dump("nope"); d != nil {
		t.Errorf("unknown session dump = %v", d)
	}
}

func TestFlightAttrsCopied(t *testing.T) {
	f := NewFlightRecorder(0, 0)
	attrs := map[string]any{"k": "v1"}
	f.Record("s", "ev", attrs)
	attrs["k"] = "v2" // caller reuses its map; the ring must not see this
	if got := f.Dump("s")[0].Attrs["k"]; got != "v1" {
		t.Errorf("recorded attr = %v, want the value at record time", got)
	}
}

func TestFlightEviction(t *testing.T) {
	f := NewFlightRecorder(8, 3)
	f.Record("a", "ev", nil)
	f.Record("b", "ev", nil)
	f.Record("c", "ev", nil)
	f.End("b")
	// At capacity: the oldest *ended* ring (b) goes first, not the oldest (a).
	f.Record("d", "ev", nil)
	if got := f.Sessions(); !equalStrings(got, []string{"a", "c", "d"}) {
		t.Errorf("after ended-first eviction: %v, want [a c d]", got)
	}
	// No ended rings left: the oldest outright (a) is evicted.
	f.Record("e", "ev", nil)
	if got := f.Sessions(); !equalStrings(got, []string{"c", "d", "e"}) {
		t.Errorf("after oldest eviction: %v, want [c d e]", got)
	}
	// Recording onto a live ring never evicts.
	f.Record("c", "ev2", nil)
	if got := f.Sessions(); !equalStrings(got, []string{"c", "d", "e"}) {
		t.Errorf("recording on a live ring changed the set: %v", got)
	}
}

func TestFlightWriteJSON(t *testing.T) {
	f := NewFlightRecorder(0, 0)
	f.Record("s-1", "open", map[string]any{"benchmark": "458.sjeng"})
	f.Record("s-1", "eos", nil)
	var b strings.Builder
	if err := f.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Sessions map[string][]FlightEvent `json:"sessions"`
	}
	if err := json.Unmarshal([]byte(b.String()), &doc); err != nil {
		t.Fatal(err)
	}
	evs := doc.Sessions["s-1"]
	if len(evs) != 2 || evs[0].Event != "open" || evs[1].Event != "eos" {
		t.Fatalf("round-tripped events = %+v", evs)
	}
	if evs[0].Attrs["benchmark"] != "458.sjeng" {
		t.Errorf("attrs lost in JSON: %+v", evs[0].Attrs)
	}
	if evs[0].Time.IsZero() {
		t.Error("event timestamp did not survive the round trip")
	}
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
