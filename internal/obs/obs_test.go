package obs

import (
	"bytes"
	"strings"
	"sync"
	"testing"
)

// TestNilSafety exercises every recording path through nil receivers; the
// whole instrumentation layer must be a no-op when telemetry is off.
func TestNilSafety(t *testing.T) {
	var tel *Telemetry
	tel.Counter("c").Add(3)
	tel.Counter("c").Inc()
	tel.Gauge("g").Set(7)
	tel.Gauge("g").Max(9)
	tel.Histogram("h", ExpBuckets(1, 2, 4)).Observe(2)
	tel.Track("cpu", "core").Span("s", 0, 10, nil)
	tel.Track("cpu", "core").Instant("i", 5, nil)
	tel.Track("cpu", "core").Counter("depth", 5, 1)
	if tel.Sub("lane/") != nil {
		t.Fatalf("nil telemetry Sub should stay nil")
	}
	if got := tel.Counter("c").Value(); got != 0 {
		t.Fatalf("nil counter value = %d", got)
	}
	var reg *Registry
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil || buf.Len() != 0 {
		t.Fatalf("nil registry exposition: err=%v len=%d", err, buf.Len())
	}
	if reg.Snapshot() != nil {
		t.Fatalf("nil registry snapshot should be nil")
	}
	var tr *Tracer
	buf.Reset()
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatalf("nil tracer export: %v", err)
	}
	if !strings.Contains(buf.String(), "traceEvents") {
		t.Fatalf("nil tracer export missing traceEvents: %q", buf.String())
	}
}

// TestRegistryConcurrency hammers one registry from 8 goroutines; run under
// -race this is the goroutine-safety proof for the metrics layer.
func TestRegistryConcurrency(t *testing.T) {
	const workers = 8
	const perWorker = 10_000
	reg := NewRegistry()
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			c := reg.Counter("obs_test_ops_total")
			g := reg.Gauge("obs_test_progress")
			hw := reg.Gauge("obs_test_highwater")
			h := reg.Histogram("obs_test_latency", ExpBuckets(1, 2, 8))
			for i := 0; i < perWorker; i++ {
				c.Inc()
				g.Set(int64(i))
				hw.Max(int64(w*perWorker + i))
				h.Observe(float64(i % 300))
			}
		}(w)
	}
	wg.Wait()
	if got := reg.Counter("obs_test_ops_total").Value(); got != workers*perWorker {
		t.Fatalf("counter = %d, want %d", got, workers*perWorker)
	}
	h := reg.Histogram("obs_test_latency", nil)
	if h.Count() != workers*perWorker {
		t.Fatalf("histogram count = %d, want %d", h.Count(), workers*perWorker)
	}
	var want float64
	for i := 0; i < perWorker; i++ {
		want += float64(i % 300)
	}
	if got := h.Sum(); got != want*workers {
		t.Fatalf("histogram sum = %v, want %v", got, want*workers)
	}
	if got := reg.Gauge("obs_test_progress").Value(); got < 0 || got >= perWorker {
		t.Fatalf("gauge = %d, want in [0,%d)", got, perWorker)
	}
	if got := reg.Gauge("obs_test_highwater").Value(); got != workers*perWorker-1 {
		t.Fatalf("high-water gauge = %d, want %d", got, workers*perWorker-1)
	}
}

// TestHistogramBuckets pins the le-bound semantics: an observation lands in
// the first bucket whose bound is >= the value.
func TestHistogramBuckets(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("h", []float64{1, 2, 4})
	for _, v := range []float64{0.5, 1, 1.0000001, 2, 3.9, 4, 5, 100} {
		h.Observe(v)
	}
	bounds, cum := h.Buckets()
	if len(bounds) != 3 {
		t.Fatalf("bounds = %v", bounds)
	}
	// le=1: 0.5, 1 -> 2; le=2: +1.0000001, 2 -> 4; le=4: +3.9, 4 -> 6; +Inf: 8.
	wantCum := []int64{2, 4, 6}
	for i := range wantCum {
		if cum[i] != wantCum[i] {
			t.Fatalf("cumulative[%d] = %d, want %d (all %v)", i, cum[i], wantCum[i], cum)
		}
	}
	if h.Count() != 8 {
		t.Fatalf("count = %d", h.Count())
	}
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	for _, line := range []string{
		"# TYPE h histogram",
		`h_bucket{le="1"} 2`,
		`h_bucket{le="2"} 4`,
		`h_bucket{le="4"} 6`,
		`h_bucket{le="+Inf"} 8`,
		"h_count 8",
	} {
		if !strings.Contains(buf.String(), line) {
			t.Fatalf("exposition missing %q:\n%s", line, buf.String())
		}
	}
}

// TestBucketHelpers pins the generator shapes.
func TestBucketHelpers(t *testing.T) {
	exp := ExpBuckets(0.5, 2, 4)
	for i, want := range []float64{0.5, 1, 2, 4} {
		if exp[i] != want {
			t.Fatalf("ExpBuckets[%d] = %v, want %v", i, exp[i], want)
		}
	}
	lin := LinearBuckets(10, 5, 3)
	for i, want := range []float64{10, 15, 20} {
		if lin[i] != want {
			t.Fatalf("LinearBuckets[%d] = %v, want %v", i, lin[i], want)
		}
	}
}

// TestRegistryMerge checks the serial fleet-level merge: counters and
// histograms add, gauges take the source value.
func TestRegistryMerge(t *testing.T) {
	dst, a, b := NewRegistry(), NewRegistry(), NewRegistry()
	a.Counter("jobs").Add(2)
	b.Counter("jobs").Add(3)
	a.Gauge("cycles").Set(10)
	b.Gauge("cycles").Set(20)
	bounds := []float64{1, 10}
	a.Histogram("lat", bounds).Observe(0.5)
	a.Histogram("lat", bounds).Observe(5)
	b.Histogram("lat", bounds).Observe(50)
	dst.Merge(a)
	dst.Merge(b)
	if got := dst.Counter("jobs").Value(); got != 5 {
		t.Fatalf("merged counter = %d", got)
	}
	if got := dst.Gauge("cycles").Value(); got != 20 {
		t.Fatalf("merged gauge = %d (last merge wins)", got)
	}
	h := dst.Histogram("lat", bounds)
	if h.Count() != 3 || h.Sum() != 55.5 {
		t.Fatalf("merged histogram count=%d sum=%v", h.Count(), h.Sum())
	}
	_, cum := h.Buckets()
	if cum[0] != 1 || cum[1] != 2 {
		t.Fatalf("merged cumulative = %v", cum)
	}
}

// TestSnapshotDeterminism: two identically-driven registries snapshot to
// identical structures and expositions.
func TestSnapshotDeterminism(t *testing.T) {
	mk := func() *Registry {
		r := NewRegistry()
		r.Counter("z_last").Add(1)
		r.Counter("a_first").Add(2)
		r.Gauge("mid").Set(3)
		r.Histogram("h", []float64{1, 2}).Observe(1.5)
		return r
	}
	var b1, b2 bytes.Buffer
	if err := mk().WritePrometheus(&b1); err != nil {
		t.Fatal(err)
	}
	if err := mk().WritePrometheus(&b2); err != nil {
		t.Fatal(err)
	}
	if b1.String() != b2.String() {
		t.Fatalf("exposition not deterministic:\n%s\nvs\n%s", b1.String(), b2.String())
	}
	// Names must come out sorted.
	if ai, zi := strings.Index(b1.String(), "a_first"), strings.Index(b1.String(), "z_last"); ai > zi {
		t.Fatalf("exposition not sorted:\n%s", b1.String())
	}
}
