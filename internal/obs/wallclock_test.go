package obs

import (
	"encoding/json"
	"strings"
	"testing"
	"time"
)

func TestWallTracerNilSafety(t *testing.T) {
	var w *WallTracer
	w.SetEventLimit(10)
	if got := w.Events(); got != 0 {
		t.Errorf("nil tracer Events = %d", got)
	}
	if !w.Epoch().IsZero() {
		t.Error("nil tracer Epoch not zero")
	}
	tk := w.Track("d", "t")
	if tk != nil {
		t.Fatal("nil tracer returned a non-nil track")
	}
	tk.Span("s", time.Now(), time.Now(), nil)
	tk.Since("s", time.Now(), nil)
	tk.Instant("i", nil)
	tk.Counter("c", 1)
	var b strings.Builder
	if err := w.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "traceEvents") {
		t.Errorf("nil tracer JSON = %q, want an empty trace document", b.String())
	}
}

func TestWallTracerSpans(t *testing.T) {
	w := NewWallTracer()
	epoch := w.Epoch()
	tk := w.Track("serve", "s-1")
	// Fixed instants relative to the epoch make the µs offsets exact.
	tk.Span("admission", epoch.Add(10*time.Microsecond), epoch.Add(35*time.Microsecond),
		map[string]any{"session": "s-1"})
	tk.Instant("eos", nil)
	// 3 = thread_name metadata (from Track) + span + instant.
	if w.Events() != 3 {
		t.Fatalf("Events = %d, want 3", w.Events())
	}

	var b strings.Builder
	if err := w.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(b.String()), &doc); err != nil {
		t.Fatal(err)
	}
	var span map[string]any
	for _, ev := range doc.TraceEvents {
		if ev["ph"] == "X" {
			span = ev
		}
	}
	if span == nil {
		t.Fatal("no complete-span event in the trace")
	}
	// The wall domain maps ns→ps, so trace timestamps are µs since epoch.
	if ts := span["ts"].(float64); ts != 10 {
		t.Errorf("span ts = %v µs, want 10", ts)
	}
	if dur := span["dur"].(float64); dur != 25 {
		t.Errorf("span dur = %v µs, want 25", dur)
	}
	args := span["args"].(map[string]any)
	if args["session"] != "s-1" {
		t.Errorf("span args = %v, want session s-1", args)
	}
}

func TestWallTrackSince(t *testing.T) {
	w := NewWallTracer()
	tk := w.Track("serve", "batcher")
	start := time.Now()
	tk.Since("flush", start, map[string]any{"reason": "window"})
	// 2 = thread_name metadata (from Track) + the span.
	if w.Events() != 2 {
		t.Fatalf("Events = %d, want 2", w.Events())
	}
	var b strings.Builder
	if err := w.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(b.String()), &doc); err != nil {
		t.Fatal(err)
	}
	for _, ev := range doc.TraceEvents {
		if ev["ph"] != "X" {
			continue
		}
		if ts := ev["ts"].(float64); ts < 0 {
			t.Errorf("span starts before the epoch: ts = %v", ts)
		}
		if dur := ev["dur"].(float64); dur < 0 {
			t.Errorf("negative span duration %v", dur)
		}
		return
	}
	t.Fatal("no span event found")
}
