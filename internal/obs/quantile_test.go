package obs

import (
	"math"
	"strings"
	"testing"
)

func TestQuantileEmpty(t *testing.T) {
	var nilH *Histogram
	if v := nilH.Quantile(0.5); !math.IsNaN(v) {
		t.Errorf("nil histogram Quantile = %v, want NaN", v)
	}
	h := NewRegistry().Histogram("h", []float64{1, 2, 4})
	if v := h.Quantile(0.5); !math.IsNaN(v) {
		t.Errorf("empty histogram Quantile = %v, want NaN", v)
	}
	if v := (HistogramSnapshot{}).Quantile(0.99); !math.IsNaN(v) {
		t.Errorf("empty snapshot Quantile = %v, want NaN", v)
	}
}

func TestQuantileSingleBucket(t *testing.T) {
	// All observations land in the first bucket [0, 10]: the estimator
	// interpolates linearly from the implicit 0 lower edge, exactly like
	// Prometheus's histogram_quantile.
	h := NewRegistry().Histogram("h", []float64{10})
	for i := 0; i < 4; i++ {
		h.Observe(3)
	}
	if got := h.Quantile(0.5); got != 5 {
		t.Errorf("single-bucket p50 = %v, want 5 (rank 2 of 4 in [0,10])", got)
	}
	if got := h.Quantile(1); got != 10 {
		t.Errorf("single-bucket p100 = %v, want the bucket bound 10", got)
	}
}

func TestQuantileInterpolation(t *testing.T) {
	h := NewRegistry().Histogram("h", []float64{1, 2, 4})
	// 2 obs in (0,1], 2 in (1,2], none in (2,4].
	h.Observe(0.5)
	h.Observe(0.5)
	h.Observe(1.5)
	h.Observe(1.5)
	// rank(0.75) = 3 → second bucket, 1 of its 2 obs past the lower
	// edge: 1 + (2-1)*(3-2)/2 = 1.5
	if got := h.Quantile(0.75); got != 1.5 {
		t.Errorf("p75 = %v, want 1.5", got)
	}
	// rank(0.25) = 1 → first bucket midpoint region: 0 + 1*(1/2) = 0.5
	if got := h.Quantile(0.25); got != 0.5 {
		t.Errorf("p25 = %v, want 0.5", got)
	}
	// Out-of-range q clamps rather than extrapolating.
	if got, want := h.Quantile(-1), h.Quantile(0); got != want {
		t.Errorf("Quantile(-1) = %v, want Quantile(0) = %v", got, want)
	}
}

func TestQuantileInfOverflow(t *testing.T) {
	// Observations past the last finite bound live in the +Inf bucket; any
	// quantile landing there clamps to the largest finite bound — "at
	// least this bad", never an invented number.
	h := NewRegistry().Histogram("h", []float64{1, 2})
	h.Observe(0.5)
	h.Observe(100)
	h.Observe(200)
	if got := h.Quantile(0.99); got != 2 {
		t.Errorf("p99 with overflow = %v, want clamp to 2", got)
	}
	// A histogram with no finite buckets at all has nothing to clamp to.
	snap := HistogramSnapshot{Count: 3}
	if v := snap.Quantile(0.5); !math.IsNaN(v) {
		t.Errorf("no-finite-buckets Quantile = %v, want NaN", v)
	}
}

func TestParsePrometheusHistogramRoundTrip(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("rtad_serve_chunk_judgment_seconds", ExpBuckets(1e-6, 2, 20))
	for _, v := range []float64{1e-5, 3e-5, 1e-4, 1e-4, 2e-3, 5} {
		h.Observe(v)
	}
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	snap, ok := ParsePrometheusHistogram(b.String(), "rtad_serve_chunk_judgment_seconds")
	if !ok {
		t.Fatal("histogram not found in exposition text")
	}
	if snap.Count != h.Count() {
		t.Errorf("parsed count %d, want %d", snap.Count, h.Count())
	}
	if snap.Sum != h.Sum() {
		t.Errorf("parsed sum %v, want %v", snap.Sum, h.Sum())
	}
	for _, q := range []float64{0.1, 0.5, 0.9, 0.99} {
		if got, want := snap.Quantile(q), h.Quantile(q); got != want {
			t.Errorf("Quantile(%v): parsed %v, live %v", q, got, want)
		}
	}
	if _, ok := ParsePrometheusHistogram(b.String(), "no_such_metric"); ok {
		t.Error("found a histogram that is not there")
	}
}
