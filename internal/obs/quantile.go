package obs

import (
	"bufio"
	"math"
	"strconv"
	"strings"
)

// Quantile estimates the q-th quantile (0 <= q <= 1) of the observations
// by linear interpolation inside the bucket the rank falls into — the
// same estimator Prometheus's histogram_quantile applies, so a loadgen
// SLO snapshot computed here matches what a dashboard over the scraped
// /metrics would show. Returns NaN when the histogram is empty (or nil).
//
// Ranks that fall in the +Inf overflow bucket clamp to the largest finite
// bound: the histogram cannot see past its buckets, and a clamped p99 is
// still the right alerting signal ("at least this bad").
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return math.NaN()
	}
	bounds, cum := h.Buckets()
	return quantileFromBuckets(bounds, cum, h.Count(), q)
}

// Quantile estimates the q-th quantile from a captured snapshot, with the
// same semantics as Histogram.Quantile. This is what consumers of scraped
// or serialized histograms (loadgen, benchinfo) use.
func (s HistogramSnapshot) Quantile(q float64) float64 {
	return quantileFromBuckets(s.Bounds, s.Cumulative, s.Count, q)
}

// quantileFromBuckets is the shared estimator over Prometheus-style
// cumulative buckets (bounds exclusive of +Inf; total includes the +Inf
// overflow).
func quantileFromBuckets(bounds []float64, cum []int64, total int64, q float64) float64 {
	if total <= 0 {
		return math.NaN()
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(total)
	for i, b := range bounds {
		if float64(cum[i]) < rank {
			continue
		}
		// The rank lands in bucket i: interpolate between the bucket's
		// lower and upper bound by the rank's position inside it.
		var prev int64
		lower := 0.0
		if i > 0 {
			prev = cum[i-1]
			lower = bounds[i-1]
		} else if b <= 0 {
			// All-negative-or-zero first bucket: no meaningful lower
			// edge, report the bound itself.
			return b
		}
		n := cum[i] - prev
		if n <= 0 {
			return b
		}
		return lower + (b-lower)*(rank-float64(prev))/float64(n)
	}
	// Rank fell in the +Inf overflow bucket: clamp to the largest finite
	// bound; with no finite buckets at all there is nothing to report.
	if len(bounds) == 0 {
		return math.NaN()
	}
	return bounds[len(bounds)-1]
}

// ParsePrometheusHistogram reconstructs one named histogram from
// Prometheus text exposition (the /metrics payload): the _bucket lines
// become bounds and cumulative counts, _sum and _count fill the rest.
// ok is false when the metric is absent. Only the single-histogram shape
// WritePrometheus emits is understood — labels other than le are not.
func ParsePrometheusHistogram(text, name string) (snap HistogramSnapshot, ok bool) {
	sc := bufio.NewScanner(strings.NewReader(text))
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	bucketPrefix := name + `_bucket{le="`
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, bucketPrefix):
			rest := line[len(bucketPrefix):]
			end := strings.Index(rest, `"`)
			if end < 0 {
				continue
			}
			le, valStr := rest[:end], strings.TrimSpace(strings.TrimPrefix(rest[end:], `"}`))
			n, err := strconv.ParseInt(valStr, 10, 64)
			if err != nil {
				continue
			}
			if le == "+Inf" {
				ok = true
				continue // the overflow count is Count minus the last bound's
			}
			b, err := strconv.ParseFloat(le, 64)
			if err != nil {
				continue
			}
			snap.Bounds = append(snap.Bounds, b)
			snap.Cumulative = append(snap.Cumulative, n)
			ok = true
		case strings.HasPrefix(line, name+"_sum "):
			if v, err := strconv.ParseFloat(strings.TrimPrefix(line, name+"_sum "), 64); err == nil {
				snap.Sum = v
				ok = true
			}
		case strings.HasPrefix(line, name+"_count "):
			if v, err := strconv.ParseInt(strings.TrimPrefix(line, name+"_count "), 10, 64); err == nil {
				snap.Count = v
				ok = true
			}
		}
	}
	return snap, ok
}
