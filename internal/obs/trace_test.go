package obs

import (
	"bytes"
	"encoding/json"
	"testing"
)

// buildTrace records a small fixed timeline.
func buildTrace() *Tracer {
	tr := NewTracer()
	tel := &Telemetry{Tracer: tr}
	cpu := tel.Track("cpu", "core0")
	fab := tel.Track("fabric", "ptm")
	cpu.Span("run", 0, 4_000_000, map[string]any{"instr": 100})
	fab.Span("release", 1_000_000, 1_512_000, map[string]any{"bytes": 64})
	fab.Instant("vector", 2_000_000, nil)
	fab.Counter("fifo_depth", 2_000_000, 3)
	return tr
}

// golden is the exact expected export of buildTrace. It pins the format:
// ts/dur in microseconds, metadata first, events in record order.
const golden = `{"traceEvents":[
{"name":"process_name","ph":"M","pid":1,"args":{"name":"cpu"}},
{"name":"process_name","ph":"M","pid":2,"args":{"name":"fabric"}},
{"name":"thread_name","ph":"M","pid":1,"tid":1,"args":{"name":"core0"}},
{"name":"thread_name","ph":"M","pid":2,"tid":2,"args":{"name":"ptm"}},
{"name":"run","ph":"X","ts":0,"dur":4,"pid":1,"tid":1,"args":{"instr":100}},
{"name":"release","ph":"X","ts":1,"dur":0.512,"pid":2,"tid":2,"args":{"bytes":64}},
{"name":"vector","ph":"i","ts":2,"pid":2,"tid":2,"s":"t"},
{"name":"fifo_depth","ph":"C","ts":2,"pid":2,"tid":2,"args":{"value":3}}
]}
`

// TestTraceGolden pins the trace export byte-for-byte and checks it is
// valid JSON in the trace_event shape Perfetto expects.
func TestTraceGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := buildTrace().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.String() != golden {
		t.Fatalf("trace export mismatch:\n--- got ---\n%s\n--- want ---\n%s", buf.String(), golden)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) != 8 {
		t.Fatalf("got %d events, want 8", len(doc.TraceEvents))
	}
	for _, ev := range doc.TraceEvents {
		if _, ok := ev["ph"]; !ok {
			t.Fatalf("event missing ph: %v", ev)
		}
	}
}

// TestTraceDeterminism: recording the same timeline twice exports
// byte-identical files.
func TestTraceDeterminism(t *testing.T) {
	var b1, b2 bytes.Buffer
	if err := buildTrace().WriteJSON(&b1); err != nil {
		t.Fatal(err)
	}
	if err := buildTrace().WriteJSON(&b2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
		t.Fatalf("trace export not deterministic")
	}
}

// TestTraceEventLimit: past the cap, events are counted dropped, the export
// stays valid, and the drop count is declared in otherData.
func TestTraceEventLimit(t *testing.T) {
	tr := NewTracer()
	tr.SetEventLimit(3)
	tk := tr.Track("cpu", "core0") // thread_name metadata consumes one slot
	for i := 0; i < 10; i++ {
		tk.Instant("e", int64(i), nil)
	}
	if tr.Events() != 3 {
		t.Fatalf("events = %d, want 3", tr.Events())
	}
	if tr.Dropped() != 8 {
		t.Fatalf("dropped = %d, want 8", tr.Dropped())
	}
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if !json.Valid(buf.Bytes()) {
		t.Fatalf("truncated export invalid:\n%s", buf.String())
	}
	if !bytes.Contains(buf.Bytes(), []byte(`"droppedEvents":"8"`)) {
		t.Fatalf("export missing drop marker:\n%s", buf.String())
	}
}

// TestSubPrefix: lane-prefixed telemetry lands on distinct tracks of the
// same tracer.
func TestSubPrefix(t *testing.T) {
	tel := New()
	a := tel.Sub("elm/").Track("fabric", "mcm")
	b := tel.Sub("lstm/").Track("fabric", "mcm")
	if a == b {
		t.Fatalf("prefixed tracks should differ")
	}
	names := tel.Tracer.TrackNames()
	want := map[string]bool{"fabric/elm/mcm": false, "fabric/lstm/mcm": false}
	for _, n := range names {
		if _, ok := want[n]; ok {
			want[n] = true
		}
	}
	for n, seen := range want {
		if !seen {
			t.Fatalf("missing track %q in %v", n, names)
		}
	}
	if tel.Sub("elm/").Reg != tel.Reg {
		t.Fatalf("Sub must share the registry")
	}
}
