// Package mcm implements RTAD's ML Computing Module (§III-B, Fig 3): the
// block between IGM and ML-MIAOW. It contains the internal vector FIFO
// (whose overflow under branch pressure is the 471.omnetpp effect of Fig 8),
// the control FSM stepping through WAIT_INPUT → READ_INPUT → WRITE_INPUT →
// WAIT_DONE → READ_RESULT, the TX engine that writes input vectors and
// control registers into ML-MIAOW memory, the protocol converter that
// adapts IGM class IDs to the model's input alphabet, the RX engine that
// reads results back, and the interrupt manager that raises the host IRQ
// on an anomaly verdict.
package mcm

import (
	"fmt"

	"rtad/internal/axi"
	"rtad/internal/igm"
	"rtad/internal/kernels"
	"rtad/internal/obs"
	"rtad/internal/sim"
)

// State enumerates the control FSM states of Fig 3.
type State uint8

// FSM states.
const (
	WaitInput State = iota
	ReadInput
	WriteInput
	WaitDone
	ReadResult
)

var stateNames = []string{"WAIT_INPUT", "READ_INPUT", "WRITE_INPUT", "WAIT_DONE", "READ_RESULT"}

// String names the state.
func (s State) String() string {
	if int(s) < len(stateNames) {
		return stateNames[s]
	}
	return fmt.Sprintf("state(%d)", uint8(s))
}

// Engine abstracts the inference engine running on ML-MIAOW. It is the
// kernels.Backend contract: the cycle-accurate GPU engines, the native
// fixed-point backend and the calibrated-timing backend all satisfy it,
// and the MCM is agnostic to which one it drives — every backend returns
// bit-identical judgments and a cycle cost for the WAIT_DONE phase.
type Engine = kernels.Backend

// Config parameterises the module.
type Config struct {
	Engine Engine
	// Translate is the protocol converter: it maps an IGM class ID to the
	// model's class alphabet. Nil means identity. A negative result drops
	// the element (vector is skipped as malformed).
	Translate func(int32) int32
	// FIFODepth is the internal vector FIFO capacity.
	FIFODepth int
	// Bus is the SoC interconnect the TX/RX engines master; nil builds
	// the standard RTAD topology (axi.RTADTopology).
	Bus *axi.Interconnect
	// Shared, when non-nil, serialises this module's compute phase with
	// other MCM instances driving the same ML-MIAOW — the configuration
	// where several models are deployed "at the user's disposal" (§II) on
	// one MLPU. Pass the same *SharedEngine to every participating MCM.
	Shared *SharedEngine
	// Clock is the MCM fabric domain; GPUClock the ML-MIAOW domain.
	Clock    *sim.Clock
	GPUClock *sim.Clock
	// Telemetry, when non-nil, records each vector's service as a span on
	// the fabric/mcm track (start -> judgment done), FIFO depth as a
	// counter series, and drop/anomaly counters. Observation-only.
	Telemetry *obs.Telemetry
}

// Microarchitectural constants in MCM fabric cycles. Data movement costs
// come from the interconnect model: the ML-MIAOW base hardware exposes a
// register-style AXI interface ("bus masters deliver data... ML-MIAOW
// stores the data in its internal memory"), so the TX engine issues
// single-beat writes per input word plus two control-register writes —
// which reproduces the ~0.78 µs "successive write operations to the
// ML-MIAOW memory" of Fig 7 for a 9–16 word vector.
const (
	DefaultFIFODepth = 8

	readInputCycles = 1 // FIFO pop into the TX engine
	ctrlWrites      = 2 // CU control registers + start command
	resultWords     = 3 // flag, margin, smoothed score
	irqCycles       = 2 // interrupt manager latch
)

// Record traces one input vector through the module.
type Record struct {
	Seq       int64 // IGM vector sequence number
	Arrived   sim.Time
	Started   sim.Time // READ_INPUT time (leaves the FIFO)
	Done      sim.Time // READ_RESULT complete; judgment available
	IRQAt     sim.Time // interrupt time (zero value if no anomaly)
	Judgment  kernels.Judgment
	GPUCycles int64
	// Pending marks a deferred record: the timeline above is final but the
	// Judgment (and IRQAt) will only be filled in by Settle/Complete. See
	// the deferred-judgment notes on Push.
	Pending bool
}

// Stats aggregates module activity.
type Stats struct {
	Accepted     int64
	Dropped      int64 // vectors lost to FIFO overflow
	Anomalies    int64
	MaxOccupancy int
	BusyTime     sim.Time // engine busy time (WRITE_INPUT..READ_RESULT)
}

// SharedEngine tracks the busy horizon of a compute engine multiplexed
// between several MCM front-ends.
type SharedEngine struct {
	freeAt sim.Time
}

// NewSharedEngine returns an idle shared-engine token.
func NewSharedEngine() *SharedEngine { return &SharedEngine{} }

// FreeAt reports when the engine next becomes idle.
func (s *SharedEngine) FreeAt() sim.Time { return s.freeAt }

// MCM is the module instance. Vectors are pushed in arrival order; the
// module computes each one's full timeline analytically (the pipeline is
// feed-forward, so no event scheduler is needed).
type MCM struct {
	cfg    Config
	freeAt sim.Time // engine pipeline free time
	// starts holds the service-start times of accepted-but-not-started
	// vectors, to compute FIFO occupancy at each arrival. Entries before
	// startsHd have already been observed in the past by a monotone query
	// and can never count again.
	starts      []sim.Time
	startsHd    int
	lastArrival sim.Time
	stats       Stats
	state       State
	// winBuf is the protocol-conversion scratch window, reused across Push
	// calls; engines copy their input immediately, so it never escapes.
	winBuf []int32

	// Deferred-judgment state. fixed is the engine's FixedCoster view (nil
	// if unsupported, or if tracing is on — deferral would skip the per-span
	// anomaly annotations). pendArena holds the converted windows of every
	// deferred vector since the last Settle, back to back; pendWins is the
	// per-window view rebuilt over it at settle time.
	fixed     kernels.FixedCoster
	pendArena []int32
	pendWins  [][]int32

	obsAccepted  *obs.Counter
	obsDropped   *obs.Counter
	obsAnomalies *obs.Counter
	obsBusyPS    *obs.Counter
	obsOcc       *obs.Gauge
	track        *obs.Track
}

// New returns an MCM with cfg applied.
func New(cfg Config) (*MCM, error) {
	if cfg.Engine == nil {
		return nil, fmt.Errorf("mcm: no engine configured")
	}
	if cfg.FIFODepth <= 0 {
		cfg.FIFODepth = DefaultFIFODepth
	}
	if cfg.Clock == nil {
		cfg.Clock = sim.FabricClock
	}
	if cfg.GPUClock == nil {
		cfg.GPUClock = sim.GPUClock
	}
	if cfg.Bus == nil {
		bus, err := axi.RTADTopology()
		if err != nil {
			return nil, err
		}
		cfg.Bus = bus
	}
	m := &MCM{cfg: cfg, state: WaitInput}
	if tel := cfg.Telemetry; tel != nil {
		m.obsAccepted = tel.Counter("rtad_mcm_accepted_total")
		m.obsDropped = tel.Counter("rtad_mcm_dropped_total")
		m.obsAnomalies = tel.Counter("rtad_mcm_anomalies_total")
		m.obsBusyPS = tel.Counter("rtad_mcm_busy_ps_total")
		m.obsOcc = tel.Gauge("rtad_mcm_fifo_max_occupancy")
		// Per-backend label: the backend choice is constant for an MCM's
		// lifetime, so it is exposed as a labelled info gauge and stamped
		// once on the track rather than on every span.
		tel.Gauge(`rtad_mcm_backend_info{backend="` + cfg.Engine.Name() + `"}`).Set(1)
		m.track = tel.Track("fabric", "mcm")
		if m.track != nil {
			m.track.Instant("backend", 0, map[string]any{"backend": cfg.Engine.Name()})
		}
	}
	if m.track == nil {
		// Deferred judgment needs the per-vector span annotations off: the
		// infer span records the judgment at push time. Metrics-only and
		// untelemetered runs keep the fast path.
		m.fixed, _ = cfg.Engine.(kernels.FixedCoster)
	}
	return m, nil
}

// State returns the FSM state as of the last Push (WaitInput when idle).
func (m *MCM) State() State { return m.state }

// Stats returns the aggregate counters.
func (m *MCM) Stats() Stats { return m.stats }

// StageName identifies the MCM in pipeline stage listings.
func (m *MCM) StageName() string { return "mcm" }

// QueueStats reports the vector FIFO as a uniform queue snapshot: occupancy
// as of the last vector arrival (the FIFO timeline is computed analytically),
// the high-water mark, and vectors lost to overflow — the Fig 8 loss mode.
func (m *MCM) QueueStats() sim.QueueStats {
	return sim.QueueStats{
		Len:       m.occupancyAt(m.lastArrival),
		MaxDepth:  m.stats.MaxOccupancy,
		Overflows: m.stats.Dropped,
		Accepted:  m.stats.Accepted,
		Dropped:   m.stats.Dropped,
	}
}

// occupancyAt counts vectors still waiting in the FIFO at time t. starts is
// monotone non-decreasing (each service begins after the previous one ends)
// and queries arrive in time order (vector arrivals), so entries that have
// fallen behind t are pruned from the front once instead of rescanned on
// every arrival.
func (m *MCM) occupancyAt(t sim.Time) int {
	for m.startsHd < len(m.starts) && m.starts[m.startsHd] <= t {
		m.startsHd++
	}
	return len(m.starts) - m.startsHd
}

// Push offers one IGM vector to the module. It returns the vector's record
// and whether it was accepted; a false return means the FIFO was full and
// the vector was lost (counted in Stats.Dropped), the loss mode §IV-C
// describes for branch-heavy benchmarks.
func (m *MCM) Push(v igm.Vector) (Record, bool, error) {
	if len(v.Classes) != m.cfg.Engine.Window() {
		return Record{}, false, fmt.Errorf("mcm: vector length %d, engine window %d",
			len(v.Classes), m.cfg.Engine.Window())
	}
	// FIFO admission.
	m.lastArrival = v.At
	occ := m.occupancyAt(v.At)
	if occ >= m.cfg.FIFODepth {
		m.stats.Dropped++
		m.obsDropped.Inc()
		if m.track != nil {
			m.track.Instant("drop", int64(v.At), map[string]any{"seq": v.Seq})
		}
		return Record{}, false, nil
	}
	if occ+1 > m.stats.MaxOccupancy {
		m.stats.MaxOccupancy = occ + 1
	}
	if m.track != nil {
		m.track.Counter("fifo_depth", int64(v.At), float64(occ+1))
	}

	// Protocol conversion, into the reused scratch window.
	if cap(m.winBuf) < len(v.Classes) {
		m.winBuf = make([]int32, len(v.Classes))
	}
	window := m.winBuf[:len(v.Classes)]
	for i, c := range v.Classes {
		if m.cfg.Translate != nil {
			c = m.cfg.Translate(c)
		}
		if c < 0 {
			return Record{}, false, fmt.Errorf("mcm: class %d has no model mapping", v.Classes[i])
		}
		window[i] = c
	}

	// FSM timeline: the vector starts when the engine frees up (including
	// any other front-end sharing the compute engine).
	clk := m.cfg.Clock
	start := clk.NextEdge(v.At)
	if m.freeAt > start {
		start = m.freeAt
	}
	if m.cfg.Shared != nil && m.cfg.Shared.freeAt > start {
		start = m.cfg.Shared.freeAt
	}
	m.state = ReadInput
	t := start + clk.Duration(readInputCycles)
	m.state = WriteInput
	// TX engine: the input words plus the control/start registers go out
	// as single-beat writes through the protocol converter.
	t, err := m.cfg.Bus.SingleBeatSeries(axi.Write, t, axi.MLMIAOWBase, len(window)+ctrlWrites)
	if err != nil {
		return Record{}, false, fmt.Errorf("mcm: TX: %w", err)
	}

	m.state = WaitDone
	if m.fixed != nil {
		if cycles, ok := m.fixed.FixedCost(); ok {
			return m.pushDeferred(v, window, start, t, cycles)
		}
	}
	j, gpuCycles, err := m.cfg.Engine.Infer(window)
	if err != nil {
		return Record{}, false, fmt.Errorf("mcm: inference: %w", err)
	}
	t += m.cfg.GPUClock.Duration(gpuCycles)

	m.state = ReadResult
	t, err = m.cfg.Bus.SingleBeatSeries(axi.Read, t, axi.MLMIAOWBase+0x1000, resultWords)
	if err != nil {
		return Record{}, false, fmt.Errorf("mcm: RX: %w", err)
	}

	rec := Record{
		Seq: v.Seq, Arrived: v.At, Started: start, Done: t,
		Judgment: j, GPUCycles: gpuCycles,
	}
	if j.Anomaly {
		rec.IRQAt = t + clk.Duration(irqCycles)
		m.stats.Anomalies++
		m.obsAnomalies.Inc()
		if m.track != nil {
			m.track.Instant("irq", int64(rec.IRQAt), map[string]any{"seq": v.Seq})
		}
	}
	if m.track != nil {
		m.track.Span("infer", int64(start), int64(t), map[string]any{
			"seq": v.Seq, "gpu_cycles": gpuCycles, "anomaly": j.Anomaly,
		})
	}
	m.finish(start, t)
	return rec, true, nil
}

// pushDeferred completes a Push whose WAIT_DONE cost is known before the
// inference runs. Everything timing-dependent — FIFO admission of later
// vectors, Done, engine busy accounting — is already decided by the fixed
// cycle cost, so the arithmetic itself is postponed: the converted window
// is queued and the record returns with Pending set. Settle later judges
// all queued windows in one fused InferBatch call, and Complete threads
// each judgment back into its record. Per-session judgment streams are
// bit-identical to the synchronous path; only host-side call structure
// changes, which is what lets a serving batcher coalesce whole trace
// chunks instead of parking every vector.
func (m *MCM) pushDeferred(v igm.Vector, window []int32, start, t sim.Time, cycles int64) (Record, bool, error) {
	t += m.cfg.GPUClock.Duration(cycles)
	m.state = ReadResult
	t, err := m.cfg.Bus.SingleBeatSeries(axi.Read, t, axi.MLMIAOWBase+0x1000, resultWords)
	if err != nil {
		return Record{}, false, fmt.Errorf("mcm: RX: %w", err)
	}
	m.pendArena = append(m.pendArena, window...)
	rec := Record{
		Seq: v.Seq, Arrived: v.At, Started: start, Done: t,
		GPUCycles: cycles, Pending: true,
	}
	m.finish(start, t)
	return rec, true, nil
}

// finish applies the bookkeeping every accepted vector shares: aggregate
// stats, engine busy horizon, and the FIFO start log.
func (m *MCM) finish(start, t sim.Time) {
	m.stats.Accepted++
	m.obsAccepted.Inc()
	m.obsBusyPS.Add(int64(t - start))
	m.obsOcc.Max(int64(m.stats.MaxOccupancy))
	m.stats.BusyTime += t - start
	m.freeAt = t
	if m.cfg.Shared != nil {
		m.cfg.Shared.freeAt = t
	}
	m.starts = append(m.starts, start)
	// Garbage-collect pruned starts: they can no longer affect occupancy.
	if m.startsHd > 2*m.cfg.FIFODepth {
		n := copy(m.starts, m.starts[m.startsHd:])
		m.starts = m.starts[:n]
		m.startsHd = 0
	}
	m.state = WaitInput
}

// Settle judges every deferred vector queued since the last Settle in one
// fused Engine.InferBatch call and returns the judgments in push order
// (nil if nothing is pending). The slice is the engine's batch scratch —
// consume it before the next engine call. Callers thread each judgment
// back into its pending Record via Complete.
func (m *MCM) Settle() ([]kernels.Judgment, error) {
	if len(m.pendArena) == 0 {
		return nil, nil
	}
	win := m.cfg.Engine.Window()
	n := len(m.pendArena) / win
	wins := m.pendWins[:0]
	for i := 0; i < n; i++ {
		wins = append(wins, m.pendArena[i*win:(i+1)*win:(i+1)*win])
	}
	m.pendWins = wins
	js, _, err := m.cfg.Engine.InferBatch(wins)
	m.pendArena = m.pendArena[:0]
	if err != nil {
		return nil, fmt.Errorf("mcm: settle: %w", err)
	}
	return js, nil
}

// Complete fills a deferred record with its settled judgment. Anomaly
// bookkeeping (IRQ time, counters) happens here so Stats end up identical
// to the synchronous path's.
func (m *MCM) Complete(rec *Record, j kernels.Judgment) {
	rec.Judgment = j
	rec.Pending = false
	if j.Anomaly {
		rec.IRQAt = rec.Done + m.cfg.Clock.Duration(irqCycles)
		m.stats.Anomalies++
		m.obsAnomalies.Inc()
	}
}
