package mcm

import (
	"testing"

	"rtad/internal/igm"
	"rtad/internal/kernels"
	"rtad/internal/sim"
)

// fakeEngine is a deterministic Engine with a fixed service cost.
type fakeEngine struct {
	window    int
	gpuCycles int64
	anomalyAt map[int64]bool // by call index
	calls     int64
	seen      [][]int32
}

func (f *fakeEngine) Name() string { return "fake" }
func (f *fakeEngine) Window() int  { return f.window }
func (f *fakeEngine) Infer(w []int32) (kernels.Judgment, int64, error) {
	f.seen = append(f.seen, append([]int32(nil), w...))
	j := kernels.Judgment{MarginQ: int32(f.calls)}
	if f.anomalyAt[f.calls] {
		j.Anomaly = true
	}
	f.calls++
	return j, f.gpuCycles, nil
}
func (f *fakeEngine) InferBatch(ws [][]int32) ([]kernels.Judgment, []int64, error) {
	return kernels.InferLoop(f, ws)
}

func vec(seq int64, at sim.Time, classes ...int32) igm.Vector {
	return igm.Vector{Seq: seq, At: at, Classes: classes}
}

func TestSingleVectorTimeline(t *testing.T) {
	eng := &fakeEngine{window: 3, gpuCycles: 100}
	m, err := New(Config{Engine: eng})
	if err != nil {
		t.Fatal(err)
	}
	rec, ok, err := m.Push(vec(0, 1000*sim.Nanosecond, 1, 2, 3))
	if err != nil || !ok {
		t.Fatal(err, ok)
	}
	if rec.Started < 1000*sim.Nanosecond {
		t.Error("started before arrival")
	}
	// Expected: read 1 + TX of (3 words + 2 control writes) at 6 fabric
	// cycles per single-beat write, + 100 GPU cycles, + RX of 3 result
	// words at 6 cycles each.
	want := rec.Started + sim.FabricClock.Duration(readInputCycles+(3+ctrlWrites)*6+resultWords*6) +
		sim.GPUClock.Duration(100)
	if rec.Done != want {
		t.Errorf("Done = %v, want %v", rec.Done, want)
	}
	if rec.IRQAt != 0 {
		t.Error("IRQ raised without anomaly")
	}
	if m.State() != WaitInput {
		t.Errorf("FSM not back to WAIT_INPUT: %v", m.State())
	}
}

func TestAnomalyRaisesIRQ(t *testing.T) {
	eng := &fakeEngine{window: 2, gpuCycles: 10, anomalyAt: map[int64]bool{0: true}}
	m, _ := New(Config{Engine: eng})
	rec, ok, err := m.Push(vec(0, 0, 1, 2))
	if err != nil || !ok {
		t.Fatal(err, ok)
	}
	if rec.IRQAt == 0 || rec.IRQAt <= rec.Done {
		t.Errorf("IRQ time %v not after Done %v", rec.IRQAt, rec.Done)
	}
	if m.Stats().Anomalies != 1 {
		t.Error("anomaly not counted")
	}
}

func TestQueueingDelaysBursts(t *testing.T) {
	eng := &fakeEngine{window: 1, gpuCycles: 1000} // 20 us service
	m, _ := New(Config{Engine: eng, FIFODepth: 16})
	// Three vectors arriving back-to-back must serialise.
	var recs []Record
	for i := int64(0); i < 3; i++ {
		r, ok, err := m.Push(vec(i, sim.Time(i)*sim.Microsecond, 5))
		if err != nil || !ok {
			t.Fatal(err, ok)
		}
		recs = append(recs, r)
	}
	if recs[1].Started < recs[0].Done || recs[2].Started < recs[1].Done {
		t.Error("engine overlapped two inferences")
	}
	wait2 := recs[2].Started - recs[2].Arrived
	wait0 := recs[0].Started - recs[0].Arrived
	if wait2 <= wait0 {
		t.Error("queueing wait did not grow during burst")
	}
}

func TestFIFOOverflowDropsVectors(t *testing.T) {
	eng := &fakeEngine{window: 1, gpuCycles: 50_000} // 1 ms service
	m, _ := New(Config{Engine: eng, FIFODepth: 2})
	var accepted, dropped int
	for i := int64(0); i < 10; i++ {
		_, ok, err := m.Push(vec(i, sim.Time(i)*sim.Microsecond, 1))
		if err != nil {
			t.Fatal(err)
		}
		if ok {
			accepted++
		} else {
			dropped++
		}
	}
	if dropped == 0 {
		t.Fatal("no drops despite overloaded engine and tiny FIFO")
	}
	st := m.Stats()
	if st.Dropped != int64(dropped) || st.Accepted != int64(accepted) {
		t.Errorf("stats %+v inconsistent with %d/%d", st, accepted, dropped)
	}
	if st.MaxOccupancy > 2 {
		t.Errorf("occupancy %d exceeded FIFO depth", st.MaxOccupancy)
	}
	// Dropped vectors never reach the engine.
	if eng.calls != int64(accepted) {
		t.Errorf("engine saw %d vectors, accepted %d", eng.calls, accepted)
	}
}

func TestNoDropsWhenArrivalSlowerThanService(t *testing.T) {
	eng := &fakeEngine{window: 1, gpuCycles: 100} // 2 us service
	m, _ := New(Config{Engine: eng, FIFODepth: 2})
	for i := int64(0); i < 50; i++ {
		_, ok, err := m.Push(vec(i, sim.Time(i)*10*sim.Microsecond, 1))
		if err != nil || !ok {
			t.Fatalf("vector %d dropped under light load", i)
		}
	}
	if m.Stats().Dropped != 0 {
		t.Error("drops under light load")
	}
}

func TestProtocolConverter(t *testing.T) {
	eng := &fakeEngine{window: 2, gpuCycles: 1}
	m, _ := New(Config{Engine: eng, Translate: func(c int32) int32 { return c - 1024 }})
	_, ok, err := m.Push(vec(0, 0, 1030, 1024))
	if err != nil || !ok {
		t.Fatal(err, ok)
	}
	if eng.seen[0][0] != 6 || eng.seen[0][1] != 0 {
		t.Errorf("translated window = %v", eng.seen[0])
	}
	// Untranslatable class is an error, not silence.
	if _, _, err := m.Push(vec(1, 0, 5, 5)); err == nil {
		t.Error("negative translated class accepted")
	}
}

func TestWindowLengthValidation(t *testing.T) {
	eng := &fakeEngine{window: 4, gpuCycles: 1}
	m, _ := New(Config{Engine: eng})
	if _, _, err := m.Push(vec(0, 0, 1, 2)); err == nil {
		t.Error("short vector accepted")
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("nil engine accepted")
	}
}

func TestStateNames(t *testing.T) {
	for s := WaitInput; s <= ReadResult; s++ {
		if s.String() == "" {
			t.Errorf("state %d unnamed", s)
		}
	}
}
