package tracefile

import (
	"bytes"
	"testing"
	"testing/quick"

	"rtad/internal/isa"
)

func sampleProgram(t *testing.T) *isa.Program {
	t.Helper()
	p, err := isa.Assemble("start:\n mov r0, #1\n b start", 0x8000)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestRoundTrip(t *testing.T) {
	f := &File{
		Broadcast: true,
		Program:   sampleProgram(t),
		Stream:    []byte{0, 0, 0, 0, 0, 0x80, 0x08, 1, 2, 3, 4, 5},
	}
	var buf bytes.Buffer
	if err := Write(&buf, f); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Broadcast {
		t.Error("broadcast flag lost")
	}
	if got.Program.Base != f.Program.Base || len(got.Program.Words) != len(f.Program.Words) {
		t.Error("program image lost")
	}
	for i := range f.Program.Words {
		if got.Program.Words[i] != f.Program.Words[i] {
			t.Fatalf("program word %d differs", i)
		}
	}
	if !bytes.Equal(got.Stream, f.Stream) {
		t.Error("stream lost")
	}
}

func TestCorruptionDetected(t *testing.T) {
	f := &File{Program: sampleProgram(t), Stream: []byte{1, 2, 3}}
	var buf bytes.Buffer
	if err := Write(&buf, f); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	// Flip a stream byte: checksum must catch it.
	data[len(data)-6] ^= 0xFF
	if _, err := Read(bytes.NewReader(data)); err == nil {
		t.Error("corrupted file accepted")
	}
}

func TestRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		[]byte("short"),
		[]byte("NOTMAGIC________________"),
	}
	for _, c := range cases {
		if _, err := Read(bytes.NewReader(c)); err == nil {
			t.Errorf("garbage %q accepted", c)
		}
	}
	// Valid magic but truncated body.
	f := &File{Program: sampleProgram(t), Stream: []byte{1, 2, 3, 4}}
	var buf bytes.Buffer
	Write(&buf, f)
	if _, err := Read(bytes.NewReader(buf.Bytes()[:20])); err == nil {
		t.Error("truncated file accepted")
	}
}

func TestWriteRejectsNilProgram(t *testing.T) {
	if err := Write(&bytes.Buffer{}, &File{}); err == nil {
		t.Error("nil program accepted")
	}
}

// Property: any stream content round-trips byte-exact.
func TestStreamRoundTripProperty(t *testing.T) {
	prog := sampleProgram(t)
	propFn := func(stream []byte, broadcast bool) bool {
		f := &File{Broadcast: broadcast, Program: prog, Stream: stream}
		var buf bytes.Buffer
		if err := Write(&buf, f); err != nil {
			return false
		}
		got, err := Read(&buf)
		if err != nil {
			return false
		}
		return got.Broadcast == broadcast && bytes.Equal(got.Stream, stream)
	}
	if err := quick.Check(propFn, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
