// Package tracefile defines a small container for captured PTM traces so
// they can be moved between tools (capture with cmd/tracegen, inspect with
// cmd/traceanalyze, replay through IGM in tests). A file carries the raw
// packet stream plus everything offline decoding needs: the traced
// program's image (for atom-mode reconstruction) and the capture mode.
//
// Layout (little-endian):
//
//	magic    [8]byte  "RTADTRC\x01"
//	flags    uint32   bit0 = branch-broadcast capture
//	base     uint32   program base address
//	nwords   uint32   program length in instruction words
//	words    [nwords]uint32
//	nstream  uint32   trace length in bytes
//	stream   [nstream]byte
//	crc      uint32   IEEE CRC-32 of everything above
package tracefile

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"

	"rtad/internal/isa"
)

var magic = [8]byte{'R', 'T', 'A', 'D', 'T', 'R', 'C', 1}

// FlagBroadcast marks a branch-broadcast capture (every taken branch has an
// address packet; no program image needed to interpret it).
const FlagBroadcast uint32 = 1 << 0

// File is a decoded trace container.
type File struct {
	Broadcast bool
	Program   *isa.Program
	Stream    []byte
}

// maxSaneWords bounds allocation when reading untrusted files.
const maxSaneWords = 64 << 20

// Write serialises f.
func Write(w io.Writer, f *File) error {
	if f.Program == nil {
		return fmt.Errorf("tracefile: nil program")
	}
	crc := crc32.NewIEEE()
	mw := io.MultiWriter(w, crc)
	put := func(v uint32) error { return binary.Write(mw, binary.LittleEndian, v) }

	if _, err := mw.Write(magic[:]); err != nil {
		return err
	}
	var flags uint32
	if f.Broadcast {
		flags |= FlagBroadcast
	}
	if err := put(flags); err != nil {
		return err
	}
	if err := put(f.Program.Base); err != nil {
		return err
	}
	if err := put(uint32(len(f.Program.Words))); err != nil {
		return err
	}
	if err := binary.Write(mw, binary.LittleEndian, f.Program.Words); err != nil {
		return err
	}
	if err := put(uint32(len(f.Stream))); err != nil {
		return err
	}
	if _, err := mw.Write(f.Stream); err != nil {
		return err
	}
	return binary.Write(w, binary.LittleEndian, crc.Sum32())
}

// Read parses a trace container, verifying magic and checksum.
func Read(r io.Reader) (*File, error) {
	crc := crc32.NewIEEE()
	tr := io.TeeReader(r, crc)
	get := func() (uint32, error) {
		var v uint32
		err := binary.Read(tr, binary.LittleEndian, &v)
		return v, err
	}

	var m [8]byte
	if _, err := io.ReadFull(tr, m[:]); err != nil {
		return nil, fmt.Errorf("tracefile: short header: %w", err)
	}
	if m != magic {
		return nil, fmt.Errorf("tracefile: bad magic %q", m[:])
	}
	flags, err := get()
	if err != nil {
		return nil, err
	}
	base, err := get()
	if err != nil {
		return nil, err
	}
	nwords, err := get()
	if err != nil {
		return nil, err
	}
	if nwords == 0 || nwords > maxSaneWords {
		return nil, fmt.Errorf("tracefile: implausible program size %d words", nwords)
	}
	words := make([]uint32, nwords)
	if err := binary.Read(tr, binary.LittleEndian, words); err != nil {
		return nil, fmt.Errorf("tracefile: truncated program: %w", err)
	}
	nstream, err := get()
	if err != nil {
		return nil, err
	}
	if nstream > maxSaneWords {
		return nil, fmt.Errorf("tracefile: implausible stream size %d", nstream)
	}
	stream := make([]byte, nstream)
	if _, err := io.ReadFull(tr, stream); err != nil {
		return nil, fmt.Errorf("tracefile: truncated stream: %w", err)
	}
	want := crc.Sum32()
	var got uint32
	if err := binary.Read(r, binary.LittleEndian, &got); err != nil {
		return nil, fmt.Errorf("tracefile: missing checksum: %w", err)
	}
	if got != want {
		return nil, fmt.Errorf("tracefile: checksum mismatch (%#x vs %#x)", got, want)
	}
	prog := &isa.Program{Base: base, Words: words, Symbols: map[string]uint32{}}
	return &File{
		Broadcast: flags&FlagBroadcast != 0,
		Program:   prog,
		Stream:    stream,
	}, nil
}
