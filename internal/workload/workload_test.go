package workload

import (
	"testing"

	"rtad/internal/cpu"
)

func TestProfilesComplete(t *testing.T) {
	ps := Profiles()
	if len(ps) != 12 {
		t.Fatalf("suite has %d benchmarks, want 12 (SPEC CINT2006)", len(ps))
	}
	seen := map[string]bool{}
	for _, p := range ps {
		if seen[p.Name] {
			t.Errorf("duplicate profile %s", p.Name)
		}
		seen[p.Name] = true
	}
	for _, name := range []string{"400.perlbench", "471.omnetpp", "483.xalancbmk"} {
		if !seen[name] {
			t.Errorf("missing benchmark %s", name)
		}
	}
}

func TestByName(t *testing.T) {
	if _, ok := ByName("471.omnetpp"); !ok {
		t.Error("full-name lookup failed")
	}
	p, ok := ByName("omnetpp")
	if !ok || p.Name != "471.omnetpp" {
		t.Error("short-name lookup failed")
	}
	if _, ok := ByName("no-such"); ok {
		t.Error("bogus lookup succeeded")
	}
	if p.Short() != "omnetpp" {
		t.Errorf("Short() = %q", p.Short())
	}
}

func TestGenerateDeterministic(t *testing.T) {
	p, _ := ByName("403.gcc")
	a, err := p.Generate()
	if err != nil {
		t.Fatal(err)
	}
	b, err := p.Generate()
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Words) != len(b.Words) {
		t.Fatalf("sizes differ: %d vs %d", len(a.Words), len(b.Words))
	}
	for i := range a.Words {
		if a.Words[i] != b.Words[i] {
			t.Fatalf("word %d differs", i)
		}
	}
}

// runBenchmark executes n instructions of profile p and returns the stats.
func runBenchmark(t *testing.T, p Profile, n int64, sink cpu.Sink) cpu.Stats {
	t.Helper()
	prog, err := p.Generate()
	if err != nil {
		t.Fatalf("%s: %v", p.Name, err)
	}
	mode := cpu.ModeBaseline
	if sink != nil {
		mode = cpu.ModeRTAD
	}
	c := cpu.New(prog, cpu.Config{Sink: sink, Mode: mode})
	ran, err := c.Run(n)
	if err != nil {
		t.Fatalf("%s: after %d instructions: %v", p.Name, ran, err)
	}
	if c.Halted() {
		t.Fatalf("%s: benchmark halted (must run forever)", p.Name)
	}
	return c.Stats()
}

func TestAllBenchmarksExecute(t *testing.T) {
	const budget = 600_000
	for _, p := range Profiles() {
		st := runBenchmark(t, p, budget, nil)
		density := float64(st.Branches) / float64(st.Instret)
		if density < 0.05 || density > 0.40 {
			t.Errorf("%s: branch density %.3f outside [0.05, 0.40]", p.Name, density)
		}
		if st.Syscalls == 0 {
			t.Errorf("%s: no syscalls in %d instructions", p.Name, budget)
		}
		if st.Calls == 0 || st.Returns == 0 {
			t.Errorf("%s: calls=%d returns=%d, want both > 0", p.Name, st.Calls, st.Returns)
		}
		if st.Indirects == 0 {
			t.Errorf("%s: no indirect transfers", p.Name)
		}
		// Syscalls must be orders of magnitude rarer than branches.
		if st.Syscalls*50 > st.Branches {
			t.Errorf("%s: syscall rate too high (%d syscalls, %d branches)",
				p.Name, st.Syscalls, st.Branches)
		}
	}
}

func TestBenchmarkCharacterDiffers(t *testing.T) {
	const budget = 300_000
	get := func(name string) cpu.Stats {
		p, ok := ByName(name)
		if !ok {
			t.Fatalf("missing %s", name)
		}
		return runBenchmark(t, p, budget, nil)
	}
	omnetpp := get("471.omnetpp")
	hmmer := get("456.hmmer")
	perl := get("400.perlbench")

	dOmnet := float64(omnetpp.Branches) / float64(omnetpp.Instret)
	dHmmer := float64(hmmer.Branches) / float64(hmmer.Instret)
	if dOmnet <= dHmmer*1.5 {
		t.Errorf("omnetpp branch density %.3f not well above hmmer %.3f", dOmnet, dHmmer)
	}
	cPerl := float64(perl.Calls) / float64(perl.Instret)
	cHmmer := float64(hmmer.Calls) / float64(hmmer.Instret)
	if cPerl <= cHmmer {
		t.Errorf("perlbench call density %.4f not above hmmer %.4f", cPerl, cHmmer)
	}
}

func TestBranchEventStreamProperties(t *testing.T) {
	p, _ := ByName("458.sjeng")
	sink := &cpu.CollectSink{TakenOnly: true}
	runBenchmark(t, p, 100_000, sink)
	if len(sink.Events) < 1000 {
		t.Fatalf("only %d taken-branch events", len(sink.Events))
	}
	// Targets must be inside the program image or the kernel entry region.
	prog, _ := p.Generate()
	distinct := map[uint32]bool{}
	for _, ev := range sink.Events {
		if ev.Kind == cpu.KindSyscall {
			if ev.Target < cpu.SyscallBase {
				t.Fatalf("syscall target %#x below SyscallBase", ev.Target)
			}
			continue
		}
		if !prog.Contains(ev.Target) {
			t.Fatalf("branch target %#x outside program", ev.Target)
		}
		distinct[ev.Target] = true
	}
	// A realistic benchmark revisits a moderate set of targets.
	if len(distinct) < 20 {
		t.Errorf("only %d distinct branch targets — too degenerate to model", len(distinct))
	}
	// The target sequence must not be constant (temporal structure exists).
	varies := false
	for i := 1; i < len(sink.Events); i++ {
		if sink.Events[i].Target != sink.Events[0].Target {
			varies = true
			break
		}
	}
	if !varies {
		t.Error("branch target sequence is constant")
	}
}

func TestSyscallNumbersWithinSet(t *testing.T) {
	p, _ := ByName("400.perlbench")
	sink := &cpu.CollectSink{TakenOnly: true}
	runBenchmark(t, p, 2_000_000, sink)
	nums := map[int32]bool{}
	for _, ev := range sink.Events {
		if ev.Kind == cpu.KindSyscall {
			n := cpu.SyscallNumber(ev.Target)
			if n < 1 || n > 31 {
				t.Fatalf("syscall number %d out of range", n)
			}
			nums[n] = true
		}
	}
	if len(nums) == 0 {
		t.Fatal("no syscalls observed")
	}
	if len(nums) > p.SvcsPerRun {
		t.Errorf("%d distinct services, profile allows %d", len(nums), p.SvcsPerRun)
	}
}

func TestGenerateRejectsBadFuncs(t *testing.T) {
	p, _ := ByName("401.bzip2")
	p.Funcs = 12 // not a power of two
	if _, err := p.Generate(); err == nil {
		t.Error("non-power-of-two Funcs accepted")
	}
	p.Funcs = 32
	if _, err := p.Generate(); err == nil {
		t.Error("Funcs > 16 accepted")
	}
}
