package workload

import (
	"fmt"
	"math/rand"

	"rtad/internal/isa"
)

// Register conventions of generated code (on top of the cpu package's
// loader conventions: SP = stack top, R10 = data base):
//
//	r0,r1,r2,r12 — scratch, clobbered freely
//	r3           — current function index (Markov dispatch state)
//	r4           — dispatch target
//	r6           — in-program xorshift/LCG state (drives data-dependent branches)
//	r7           — LCG multiplier constant
//	r8           — syscall pacing threshold
//	r9           — syscall pacing counter
//	r11          — inner-loop counter
//
// Data-memory layout (byte offsets from R10):
//
//	[0,   64)  function-pointer table (one word per dispatched function)
//	[64, 320)  Markov successor table (four function indices per function)
//	[384, 640) per-function computed-goto tables (two code addresses each)
//	[1024, 3072) scratch array touched by generated loads/stores
const (
	funcTblOff  = 0
	nextTblOff  = 64
	jumpTblOff  = 384
	scratchOff  = 1024
	scratchSize = 2048
)

// lcgMul is the in-program LCG multiplier (fits LoadConst's 24-bit range).
const lcgMul = 1664525 & 0xffffff

// ProgramBase is where generated benchmarks are linked.
const ProgramBase uint32 = 0x8000

// Generate builds the benchmark binary for p. The program never halts — it
// is an endless main loop dispatching functions through a learned-structure
// Markov successor table — so callers bound execution with cpu.Run budgets,
// the way the evaluation bounds SPEC runs.
func (p Profile) Generate() (*isa.Program, error) {
	if p.Funcs <= 0 || p.Funcs > 16 || p.Funcs&(p.Funcs-1) != 0 {
		return nil, fmt.Errorf("workload %s: Funcs must be a power of two in [1,16], got %d", p.Name, p.Funcs)
	}
	g := &generator{
		p:   p,
		rng: rand.New(rand.NewSource(p.Seed)),
		b:   isa.NewBuilder(ProgramBase),
	}
	g.plan()
	g.emitInit()
	g.emitMainLoop()
	for i := range g.funcs {
		g.emitFunction(i)
	}
	for i := 0; i < p.Leaves; i++ {
		g.emitLeaf(i)
	}
	return g.b.Build()
}

// funcPlan is the pre-computed shape of one dispatched function.
type funcPlan struct {
	blocks     int
	loopBlock  int // block index hosting the counted loop, -1 if none
	loopIters  int
	jumpBlock  int           // block index ending in a computed goto, -1 if none
	svcBlocks  map[int]int32 // block index -> service number
	successors [4]int        // Markov successor function indices
}

type generator struct {
	p     Profile
	rng   *rand.Rand
	b     *isa.Builder
	funcs []funcPlan
}

func (g *generator) intIn(lohi [2]int) int {
	if lohi[1] <= lohi[0] {
		return lohi[0]
	}
	return lohi[0] + g.rng.Intn(lohi[1]-lohi[0]+1)
}

// plan decides the static structure of every function up front so that
// init-time table filling knows each function's labels.
func (g *generator) plan() {
	p := g.p
	g.funcs = make([]funcPlan, p.Funcs)
	// Distribute the benchmark's syscall sites across functions.
	type site struct{ fn, seq int }
	var svcSites []site
	for s := 0; s < p.SvcsPerRun; s++ {
		svcSites = append(svcSites, site{fn: g.rng.Intn(p.Funcs), seq: s})
	}
	for i := range g.funcs {
		f := &g.funcs[i]
		f.blocks = g.intIn(p.BlocksPerFunc)
		f.loopBlock, f.jumpBlock = -1, -1
		if g.rng.Float64() < p.LoopFrac {
			f.loopBlock = g.rng.Intn(f.blocks)
			f.loopIters = g.intIn(p.LoopIters)
		}
		// Call/indirect-heavy benchmarks get computed gotos in some
		// functions (switch dispatch, virtual calls).
		if p.Funcs >= 16 && i%4 == 0 && f.blocks >= 3 {
			f.jumpBlock = g.rng.Intn(f.blocks - 2) // must have 2 later targets
		}
		f.svcBlocks = map[int]int32{}
		// Markov successors: a repeated favourite biases the chain
		// (learnable temporal structure); the ring successor keeps the
		// chain strongly connected so every function is eventually
		// dispatched.
		a := g.rng.Intn(p.Funcs)
		b := g.rng.Intn(p.Funcs)
		f.successors = [4]int{a, a, b, (i + 1) % p.Funcs}
	}
	for _, s := range svcSites {
		// Sites live in block 0 so reaching the function guarantees the
		// pacing guard executes (later blocks can be skipped over).
		g.funcs[s.fn].svcBlocks[0] = int32(1 + g.rng.Intn(31))
	}
}

func fnLabel(i int) string         { return fmt.Sprintf("f%d", i) }
func leafLabel(i int) string       { return fmt.Sprintf("leaf%d", i) }
func blockLabel(f, blk int) string { return fmt.Sprintf("f%d_b%d", f, blk) }
func epilogueLabel(f int) string   { return fmt.Sprintf("f%d_epi", f) }

// emitInit fills the dispatch tables and seeds the in-program RNG and
// syscall pacing registers.
func (g *generator) emitInit() {
	b := g.b
	p := g.p
	b.Label("init")
	b.LoadConst(isa.R7, lcgMul)
	b.LoadConst(isa.R6, uint32(p.Seed*2654435+12345)&0xffffff|1)
	b.LoadConst(isa.R8, uint32(p.SyscallInterval))
	b.MovImm(isa.R9, 0)
	b.MovImm(isa.R3, 0) // start dispatch at f0
	for i := 0; i < p.Funcs; i++ {
		b.LoadAddr(isa.R0, fnLabel(i))
		b.Str(isa.R0, isa.R10, int32(funcTblOff+i*4))
	}
	for i, f := range g.funcs {
		for s, succ := range f.successors {
			b.MovImm(isa.R0, int32(succ))
			b.Str(isa.R0, isa.R10, int32(nextTblOff+i*16+s*4))
		}
		if f.jumpBlock >= 0 {
			// Two forward targets for the computed goto.
			t1 := f.jumpBlock + 1
			t2 := f.jumpBlock + 2
			b.LoadAddr(isa.R0, blockLabel(i, t1))
			b.Str(isa.R0, isa.R10, int32(jumpTblOff+i*8))
			b.LoadAddr(isa.R0, blockLabel(i, t2))
			b.Str(isa.R0, isa.R10, int32(jumpTblOff+i*8+4))
		}
	}
}

// emitMainLoop emits the endless dispatcher: advance the RNG, bump the
// syscall pacer, follow the Markov successor table, and indirect-call the
// chosen function.
func (g *generator) emitMainLoop() {
	b := g.b
	b.Label("mainloop")
	// r6 = r6 * lcgMul + 2039 (any odd increment keeps the LCG full-period)
	b.Op3(isa.MUL, isa.R6, isa.R6, isa.R7)
	b.Op3i(isa.ADD, isa.R6, isa.R6, 2039)
	b.Op3i(isa.ADD, isa.R9, isa.R9, 1)
	// next = nextTbl[r3][ (r6>>5) & 3 ]
	b.Op3i(isa.LSL, isa.R0, isa.R3, 4)
	b.Op3i(isa.LSR, isa.R1, isa.R6, 5)
	b.Op3i(isa.AND, isa.R1, isa.R1, 3)
	b.Op3i(isa.LSL, isa.R1, isa.R1, 2)
	b.Op3(isa.ADD, isa.R0, isa.R0, isa.R1)
	b.Op3(isa.ADD, isa.R0, isa.R0, isa.R10)
	b.Ldr(isa.R3, isa.R0, nextTblOff)
	// target = funcTbl[r3]
	b.Op3i(isa.LSL, isa.R0, isa.R3, 2)
	b.Op3(isa.ADD, isa.R0, isa.R0, isa.R10)
	b.Ldr(isa.R4, isa.R0, funcTblOff)
	b.Blr(isa.R4)
	b.Branch(isa.B, "mainloop")
}

var scratchRegs = []isa.Reg{isa.R0, isa.R1, isa.R2, isa.R12}

// emitStraightLine emits n data-processing/memory instructions.
func (g *generator) emitStraightLine(n int) {
	b := g.b
	ops := []isa.Op{isa.ADD, isa.SUB, isa.EOR, isa.ORR, isa.AND, isa.LSL, isa.LSR, isa.MUL}
	for k := 0; k < n; k++ {
		if g.rng.Float64() < g.p.MemFrac {
			off := int32(scratchOff + 4*g.rng.Intn(scratchSize/4))
			r := scratchRegs[g.rng.Intn(len(scratchRegs))]
			if g.rng.Intn(2) == 0 {
				b.Ldr(r, isa.R10, off)
			} else {
				b.Str(r, isa.R10, off)
			}
			continue
		}
		op := ops[g.rng.Intn(len(ops))]
		rd := scratchRegs[g.rng.Intn(len(scratchRegs))]
		rn := scratchRegs[g.rng.Intn(len(scratchRegs))]
		switch op {
		case isa.LSL, isa.LSR:
			b.Op3i(op, rd, rn, int32(1+g.rng.Intn(7)))
		default:
			if g.rng.Intn(2) == 0 {
				b.Op3i(op, rd, rn, int32(g.rng.Intn(256)))
			} else {
				rm := scratchRegs[g.rng.Intn(len(scratchRegs))]
				b.Op3(op, rd, rn, rm)
			}
		}
	}
}

// emitRNGTap advances the in-program RNG so later conditionals see fresh
// bits; emitted roughly once per block.
func (g *generator) emitRNGTap() {
	g.b.Op3(isa.MUL, isa.R6, isa.R6, isa.R7)
	g.b.Op3i(isa.ADD, isa.R6, isa.R6, int32(g.rng.Intn(4096)))
}

// emitConditional emits a data-dependent conditional branch to target,
// taken with approximately probability bias.
func (g *generator) emitConditional(target string, bias float64) {
	b := g.b
	shift := int32(g.rng.Intn(16))
	cut := int32(bias * 256)
	if cut < 1 {
		cut = 1
	}
	if cut > 255 {
		cut = 255
	}
	b.Op3i(isa.LSR, isa.R1, isa.R6, shift)
	b.Op3i(isa.AND, isa.R1, isa.R1, 255)
	b.CmpImm(isa.R1, cut)
	b.Branch(isa.BLT, target) // P(r1 < cut) ≈ cut/256
}

// blockSize samples a straight-line length, bimodal when the profile is
// bursty (omnetpp-style tight branch clusters).
func (g *generator) blockSize() int {
	if g.p.Burst && g.rng.Float64() < 0.6 {
		return 1 + g.rng.Intn(2)
	}
	return g.intIn(g.p.BlockALU)
}

// emitFunction emits dispatched function i: prologue (it makes calls), the
// planned blocks with loops / computed gotos / guarded syscalls, epilogue.
func (g *generator) emitFunction(i int) {
	b := g.b
	f := g.funcs[i]
	b.Label(fnLabel(i))
	// Prologue: save lr (dispatched functions may call leaves).
	b.Op3i(isa.SUB, isa.SP, isa.SP, 8)
	b.Str(isa.LR, isa.SP, 0)

	for blk := 0; blk < f.blocks; blk++ {
		b.Label(blockLabel(i, blk))

		if blk == f.loopBlock {
			b.MovImm(isa.R11, int32(f.loopIters))
			b.Label(blockLabel(i, blk) + "_loop")
		}

		g.emitStraightLine(g.blockSize())
		if g.rng.Float64() < 0.5 {
			g.emitRNGTap()
		}
		if svc, ok := f.svcBlocks[blk]; ok {
			// Guarded syscall: fires only when the pacing counter has
			// reached the benchmark's interval.
			skip := fmt.Sprintf("f%d_b%d_nosvc", i, blk)
			b.Cmp(isa.R9, isa.R8)
			b.Branch(isa.BLT, skip)
			b.MovImm(isa.R9, 0)
			b.Svc(svc)
			b.Label(skip)
		}
		if g.rng.Float64() < g.p.CallFrac && g.p.Leaves > 0 {
			b.Branch(isa.BL, leafLabel(g.rng.Intn(g.p.Leaves)))
		}

		if blk == f.loopBlock {
			b.Op3i(isa.SUB, isa.R11, isa.R11, 1)
			b.CmpImm(isa.R11, 0)
			b.Branch(isa.BNE, blockLabel(i, blk)+"_loop")
		}

		switch {
		case blk == f.jumpBlock:
			// Computed goto through the per-function jump table.
			b.Op3i(isa.LSR, isa.R1, isa.R6, 3)
			b.Op3i(isa.AND, isa.R1, isa.R1, 1)
			b.Op3i(isa.LSL, isa.R1, isa.R1, 2)
			b.Op3(isa.ADD, isa.R1, isa.R1, isa.R10)
			b.Ldr(isa.R1, isa.R1, int32(jumpTblOff+i*8))
			b.Br(isa.R1)
		case blk < f.blocks-1:
			// Conditional skip forward to a random later block (or the
			// epilogue), else fall through.
			target := epilogueLabel(i)
			if later := blk + 1 + g.rng.Intn(f.blocks-blk-1); later < f.blocks && g.rng.Intn(4) != 0 {
				target = blockLabel(i, later)
			}
			g.emitConditional(target, g.p.TakenBias)
		}
	}

	b.Label(epilogueLabel(i))
	b.Ldr(isa.LR, isa.SP, 0)
	b.Op3i(isa.ADD, isa.SP, isa.SP, 8)
	b.Ret()
}

// emitLeaf emits helper function i: short straight-line work with at most
// one forward conditional, no calls, no frame.
func (g *generator) emitLeaf(i int) {
	b := g.b
	b.Label(leafLabel(i))
	g.emitStraightLine(1 + g.rng.Intn(4))
	if g.rng.Intn(2) == 0 {
		skip := fmt.Sprintf("leaf%d_skip", i)
		g.emitConditional(skip, 0.5)
		g.emitStraightLine(1 + g.rng.Intn(3))
		b.Label(skip)
	}
	b.Ret()
}
