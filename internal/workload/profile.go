// Package workload generates the SPEC CINT2006-like benchmark programs the
// RTAD evaluation runs on the host CPU. Each of the twelve benchmarks is a
// real executable program over the host ISA — functions, loops, data-
// dependent conditional branches, indirect dispatch through a function-
// pointer table, and paced supervisor calls — whose *dynamic* control-flow
// statistics (branch density, call density, syscall interval, burstiness)
// are configured per benchmark to mirror the published character of the
// suite. The paper's figures depend only on these dynamic statistics, which
// is what makes this substitution sound (see DESIGN.md §6).
package workload

import "fmt"

// Profile parameterises one synthetic benchmark. Generation is fully
// deterministic from the profile (including Seed), so every run of the
// evaluation sees identical binaries.
type Profile struct {
	Name string
	Seed int64

	// Static structure.
	Funcs         int    // dispatched functions (power of two for masking)
	Leaves        int    // leaf helper functions
	BlocksPerFunc [2]int // min,max basic blocks per function

	// Dynamic behaviour.
	BlockALU   [2]int  // min,max straight-line ops per block (sets branch density)
	Burst      bool    // bimodal block sizes: tight branchy stretches (omnetpp-like)
	MemFrac    float64 // fraction of straight-line slots that are loads/stores
	LoopFrac   float64 // fraction of functions with an inner counted loop
	LoopIters  [2]int  // min,max iterations of inner loops
	CallFrac   float64 // per-block probability of a direct leaf call
	TakenBias  float64 // probability a conditional branch is taken
	SvcsPerRun int     // distinct syscall services this benchmark uses

	// SyscallInterval is the number of main-loop iterations between
	// supervisor calls. One iteration executes on the order of a few
	// hundred instructions, so an interval of 1000 is roughly one syscall
	// per few hundred thousand instructions — SPEC-like sparsity.
	SyscallInterval int32
}

// profiles lists the twelve benchmarks of SPEC CINT2006 with dynamic
// parameters chosen to reflect each program's published character:
// perlbench/gcc/xalancbmk are call- and indirect-heavy; hmmer and h264ref
// are long-basic-block loop nests with few branches; omnetpp is the
// branch-dense, bursty discrete-event simulator whose trace pressure
// overflows the MCM FIFO in the paper; mcf is memory bound.
var profiles = []Profile{
	{Name: "400.perlbench", Seed: 400, Funcs: 16, Leaves: 6, BlocksPerFunc: [2]int{4, 9},
		BlockALU: [2]int{2, 6}, MemFrac: 0.30, LoopFrac: 0.4, LoopIters: [2]int{2, 6},
		CallFrac: 0.30, TakenBias: 0.55, SvcsPerRun: 8, SyscallInterval: 900},
	{Name: "401.bzip2", Seed: 401, Funcs: 8, Leaves: 3, BlocksPerFunc: [2]int{3, 7},
		BlockALU: [2]int{4, 10}, MemFrac: 0.35, LoopFrac: 0.7, LoopIters: [2]int{4, 12},
		CallFrac: 0.10, TakenBias: 0.62, SvcsPerRun: 4, SyscallInterval: 1600},
	{Name: "403.gcc", Seed: 403, Funcs: 16, Leaves: 8, BlocksPerFunc: [2]int{4, 10},
		BlockALU: [2]int{2, 6}, MemFrac: 0.28, LoopFrac: 0.45, LoopIters: [2]int{2, 5},
		CallFrac: 0.25, TakenBias: 0.58, SvcsPerRun: 8, SyscallInterval: 1100},
	{Name: "429.mcf", Seed: 429, Funcs: 8, Leaves: 2, BlocksPerFunc: [2]int{3, 6},
		BlockALU: [2]int{3, 8}, MemFrac: 0.45, LoopFrac: 0.6, LoopIters: [2]int{3, 9},
		CallFrac: 0.08, TakenBias: 0.6, SvcsPerRun: 3, SyscallInterval: 2000},
	{Name: "445.gobmk", Seed: 445, Funcs: 16, Leaves: 6, BlocksPerFunc: [2]int{4, 8},
		BlockALU: [2]int{2, 7}, MemFrac: 0.25, LoopFrac: 0.5, LoopIters: [2]int{2, 6},
		CallFrac: 0.22, TakenBias: 0.52, SvcsPerRun: 6, SyscallInterval: 1300},
	{Name: "456.hmmer", Seed: 456, Funcs: 4, Leaves: 2, BlocksPerFunc: [2]int{3, 5},
		BlockALU: [2]int{10, 22}, MemFrac: 0.35, LoopFrac: 0.9, LoopIters: [2]int{8, 20},
		CallFrac: 0.05, TakenBias: 0.7, SvcsPerRun: 3, SyscallInterval: 1200},
	{Name: "458.sjeng", Seed: 458, Funcs: 16, Leaves: 5, BlocksPerFunc: [2]int{4, 8},
		BlockALU: [2]int{2, 6}, MemFrac: 0.22, LoopFrac: 0.4, LoopIters: [2]int{2, 5},
		CallFrac: 0.20, TakenBias: 0.5, SvcsPerRun: 5, SyscallInterval: 1400},
	{Name: "462.libquantum", Seed: 462, Funcs: 4, Leaves: 2, BlocksPerFunc: [2]int{3, 5},
		BlockALU: [2]int{6, 14}, MemFrac: 0.30, LoopFrac: 0.85, LoopIters: [2]int{6, 16},
		CallFrac: 0.07, TakenBias: 0.68, SvcsPerRun: 3, SyscallInterval: 1100},
	{Name: "464.h264ref", Seed: 464, Funcs: 8, Leaves: 3, BlocksPerFunc: [2]int{3, 6},
		BlockALU: [2]int{9, 20}, MemFrac: 0.35, LoopFrac: 0.85, LoopIters: [2]int{6, 16},
		CallFrac: 0.10, TakenBias: 0.66, SvcsPerRun: 4, SyscallInterval: 1200},
	{Name: "471.omnetpp", Seed: 471, Funcs: 16, Leaves: 8, BlocksPerFunc: [2]int{5, 10},
		BlockALU: [2]int{1, 2}, Burst: true, MemFrac: 0.25, LoopFrac: 0.35, LoopIters: [2]int{2, 4},
		CallFrac: 0.30, TakenBias: 0.5, SvcsPerRun: 8, SyscallInterval: 1000},
	{Name: "473.astar", Seed: 473, Funcs: 8, Leaves: 3, BlocksPerFunc: [2]int{3, 7},
		BlockALU: [2]int{3, 9}, MemFrac: 0.38, LoopFrac: 0.6, LoopIters: [2]int{3, 8},
		CallFrac: 0.12, TakenBias: 0.57, SvcsPerRun: 4, SyscallInterval: 1800},
	{Name: "483.xalancbmk", Seed: 483, Funcs: 16, Leaves: 8, BlocksPerFunc: [2]int{4, 9},
		BlockALU: [2]int{1, 5}, MemFrac: 0.28, LoopFrac: 0.4, LoopIters: [2]int{2, 5},
		CallFrac: 0.32, TakenBias: 0.53, SvcsPerRun: 8, SyscallInterval: 1000},
}

// Profiles returns the twelve SPEC CINT2006-like benchmark profiles in suite
// order. The slice is a copy; callers may modify it.
func Profiles() []Profile {
	out := make([]Profile, len(profiles))
	copy(out, profiles)
	return out
}

// ByName looks up a profile by its full name ("471.omnetpp") or short name
// ("omnetpp").
func ByName(name string) (Profile, bool) {
	for _, p := range profiles {
		if p.Name == name || shortName(p.Name) == name {
			return p, true
		}
	}
	return Profile{}, false
}

func shortName(full string) string {
	for i := 0; i < len(full); i++ {
		if full[i] == '.' {
			return full[i+1:]
		}
	}
	return full
}

// Short returns the profile name without the SPEC number prefix.
func (p Profile) Short() string { return shortName(p.Name) }

// String implements fmt.Stringer.
func (p Profile) String() string {
	return fmt.Sprintf("%s{funcs=%d blockALU=%v svcInt=%d}", p.Name, p.Funcs, p.BlockALU, p.SyscallInterval)
}
