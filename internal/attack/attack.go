// Package attack emulates the paper's attack model (§IV-C): at a chosen
// point in the victim's execution, a burst of *legitimate* branch events —
// addresses that do occur during normal execution, replayed out of their
// normal context — is inserted into the retired-branch stream, the way
// control-flow-manipulating exploits (ROP-style chains, data-only attacks)
// execute legitimate code in attacker-chosen order. Inserting arbitrary
// addresses would be trivial to detect; legitimate-but-resequenced data is
// the hard case the detector must catch.
package attack

import (
	"fmt"
	"math/rand"

	"rtad/internal/cpu"
)

// Config parameterises an injection.
type Config struct {
	// TriggerBranch fires the attack after this many retired taken
	// transfers of the victim.
	TriggerBranch int64
	// BurstLen is the number of legitimate events replayed.
	BurstLen int
	// SpacingCycles is the CPU-cycle gap between injected events (the
	// attacker's gadget chain executes at normal machine speed).
	SpacingCycles int64
	// Pool is the legitimate-event reservoir, typically a trace recorded
	// from an earlier normal run of the same binary.
	Pool []cpu.BranchEvent
	// Segment replays a contiguous pool segment (mimicry-style replay of
	// a gadget trace) instead of independently sampled events.
	Segment bool
	// Repeat fires the attack again every RepeatEvery victim taken
	// transfers after the first burst — a low-and-slow campaign rather
	// than a single hit. Zero means one burst.
	Repeat      int
	RepeatEvery int64
	Seed        int64
}

// Injector wraps a downstream cpu.Sink. Until the trigger it forwards the
// victim's events untouched; at the trigger it splices the burst in and
// shifts all subsequent victim events forward in time by the burst's
// duration (inserted events execute on the CPU, so they consume real time).
type Injector struct {
	cfg  Config
	next cpu.Sink
	rng  *rand.Rand

	takenSeen   int64
	cycleOffset int64
	seqOffset   int64
	fired       bool
	bursts      int
	nextTrigger int64

	// InjectedAtCycle is the (pre-offset) CPU cycle of the first injected
	// event; InjectedEvents counts taken injected transfers.
	InjectedAtCycle int64
	InjectedEvents  int64
}

// New validates cfg and wraps next.
func New(cfg Config, next cpu.Sink) (*Injector, error) {
	if next == nil {
		return nil, fmt.Errorf("attack: nil downstream sink")
	}
	if cfg.BurstLen <= 0 {
		return nil, fmt.Errorf("attack: burst length must be positive")
	}
	if len(cfg.Pool) == 0 {
		return nil, fmt.Errorf("attack: empty legitimate-event pool")
	}
	if cfg.SpacingCycles <= 0 {
		cfg.SpacingCycles = 8
	}
	return &Injector{cfg: cfg, next: next, rng: rand.New(rand.NewSource(cfg.Seed))}, nil
}

// Fired reports whether the attack has been injected.
func (in *Injector) Fired() bool { return in.fired }

// BranchRetired implements cpu.Sink.
func (in *Injector) BranchRetired(ev cpu.BranchEvent) int64 {
	if ev.Taken {
		in.takenSeen++
		if in.bursts == 0 && in.takenSeen > in.cfg.TriggerBranch {
			in.fire(ev)
		} else if in.bursts > 0 && in.bursts <= in.cfg.Repeat && in.takenSeen > in.nextTrigger {
			in.fire(ev)
		}
	}
	ev.Cycle += in.cycleOffset
	ev.Seq += in.seqOffset
	// The victim stalls while the attacker's chain runs, so any stall the
	// sink requests applies to the victim as usual.
	return in.next.BranchRetired(ev)
}

// fire injects one burst at the current event and arms the next repeat.
func (in *Injector) fire(ev cpu.BranchEvent) {
	if !in.fired {
		in.fired = true
		in.InjectedAtCycle = ev.Cycle
	}
	in.bursts++
	if in.cfg.RepeatEvery > 0 {
		in.nextTrigger = in.takenSeen + in.cfg.RepeatEvery
	} else {
		in.nextTrigger = 1 << 62
	}
	in.inject(ev.Cycle+in.cycleOffset, ev.Seq+in.seqOffset)
}

// inject replays the burst starting at the given cycle.
func (in *Injector) inject(cycle, seq int64) {
	start := 0
	if in.cfg.Segment {
		if len(in.cfg.Pool) > in.cfg.BurstLen {
			start = in.rng.Intn(len(in.cfg.Pool) - in.cfg.BurstLen)
		}
	}
	for k := 0; k < in.cfg.BurstLen; k++ {
		var src cpu.BranchEvent
		if in.cfg.Segment {
			src = in.cfg.Pool[(start+k)%len(in.cfg.Pool)]
		} else {
			src = in.cfg.Pool[in.rng.Intn(len(in.cfg.Pool))]
		}
		ev := cpu.BranchEvent{
			Seq:    seq + int64(k),
			Cycle:  cycle + int64(k)*in.cfg.SpacingCycles,
			PC:     src.PC,
			Target: src.Target,
			Kind:   src.Kind,
			Taken:  src.Taken,
		}
		if ev.Taken {
			in.InjectedEvents++
		}
		in.next.BranchRetired(ev)
	}
	in.cycleOffset += int64(in.cfg.BurstLen) * in.cfg.SpacingCycles
	in.seqOffset += int64(in.cfg.BurstLen)
}

// RecordPool captures a legitimate-event pool by running profile events
// through a collector; callers typically pass the events of a prior normal
// run. Only taken transfers are useful as replay material.
func RecordPool(events []cpu.BranchEvent) []cpu.BranchEvent {
	var pool []cpu.BranchEvent
	for _, ev := range events {
		if ev.Taken {
			pool = append(pool, ev)
		}
	}
	return pool
}
