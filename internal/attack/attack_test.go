package attack

import (
	"testing"

	"rtad/internal/cpu"
	"rtad/internal/workload"
)

func makePool(n int) []cpu.BranchEvent {
	pool := make([]cpu.BranchEvent, n)
	for i := range pool {
		pool[i] = cpu.BranchEvent{
			Cycle: int64(i * 10), PC: 0x8000 + uint32(i)*4,
			Target: 0x9000 + uint32(i%32)*4, Kind: cpu.KindDirect, Taken: true,
		}
	}
	return pool
}

func victimEvents(n int) []cpu.BranchEvent {
	evs := make([]cpu.BranchEvent, n)
	for i := range evs {
		evs[i] = cpu.BranchEvent{
			Seq: int64(i), Cycle: int64(100 + i*20),
			PC: 0x8100, Target: 0x8200, Kind: cpu.KindDirect, Taken: true,
		}
	}
	return evs
}

func TestInjectionSplicesBurst(t *testing.T) {
	var got []cpu.BranchEvent
	sink := cpu.SinkFunc(func(ev cpu.BranchEvent) int64 {
		got = append(got, ev)
		return 0
	})
	inj, err := New(Config{TriggerBranch: 5, BurstLen: 10, SpacingCycles: 4, Pool: makePool(64)}, sink)
	if err != nil {
		t.Fatal(err)
	}
	for _, ev := range victimEvents(20) {
		inj.BranchRetired(ev)
	}
	if !inj.Fired() {
		t.Fatal("attack did not fire")
	}
	if len(got) != 30 {
		t.Fatalf("downstream saw %d events, want 20 victim + 10 injected", len(got))
	}
	// Monotonic cycle stamps throughout the spliced stream.
	for i := 1; i < len(got); i++ {
		if got[i].Cycle < got[i-1].Cycle {
			t.Fatalf("cycle order broken at %d: %d < %d", i, got[i].Cycle, got[i-1].Cycle)
		}
	}
	// Victim events after the burst are shifted by burst duration.
	last := got[len(got)-1]
	wantShift := int64(10 * 4)
	if last.Cycle != 100+19*20+wantShift {
		t.Errorf("final victim event at cycle %d, want %d", last.Cycle, 100+19*20+wantShift)
	}
	if inj.InjectedEvents != 10 {
		t.Errorf("InjectedEvents = %d, want 10", inj.InjectedEvents)
	}
}

func TestInjectedEventsAreLegitimate(t *testing.T) {
	pool := makePool(16)
	legit := map[uint32]bool{}
	for _, ev := range pool {
		legit[ev.Target] = true
	}
	var burst []cpu.BranchEvent
	sink := cpu.SinkFunc(func(ev cpu.BranchEvent) int64 {
		if ev.PC != 0x8100 { // not a victim event
			burst = append(burst, ev)
		}
		return 0
	})
	inj, _ := New(Config{TriggerBranch: 1, BurstLen: 30, Pool: pool, Seed: 3}, sink)
	for _, ev := range victimEvents(5) {
		inj.BranchRetired(ev)
	}
	if len(burst) != 30 {
		t.Fatalf("burst length %d", len(burst))
	}
	for _, ev := range burst {
		if !legit[ev.Target] {
			t.Fatalf("injected target %#x not in the legitimate pool", ev.Target)
		}
	}
}

func TestSegmentReplayIsContiguous(t *testing.T) {
	pool := makePool(100)
	var burst []cpu.BranchEvent
	sink := cpu.SinkFunc(func(ev cpu.BranchEvent) int64 {
		if ev.PC != 0x8100 {
			burst = append(burst, ev)
		}
		return 0
	})
	inj, _ := New(Config{TriggerBranch: 0, BurstLen: 10, Pool: pool, Segment: true, Seed: 9}, sink)
	for _, ev := range victimEvents(3) {
		inj.BranchRetired(ev)
	}
	for i := 1; i < len(burst); i++ {
		if burst[i].PC != burst[i-1].PC+4 {
			t.Fatalf("segment replay not contiguous at %d", i)
		}
	}
}

func TestTriggerCountsOnlyTaken(t *testing.T) {
	sink := cpu.SinkFunc(func(ev cpu.BranchEvent) int64 { return 0 })
	inj, _ := New(Config{TriggerBranch: 3, BurstLen: 1, Pool: makePool(4)}, sink)
	nt := cpu.BranchEvent{Taken: false}
	for i := 0; i < 10; i++ {
		inj.BranchRetired(nt)
	}
	if inj.Fired() {
		t.Error("not-taken events advanced the trigger")
	}
}

func TestConfigValidation(t *testing.T) {
	sink := cpu.SinkFunc(func(ev cpu.BranchEvent) int64 { return 0 })
	if _, err := New(Config{BurstLen: 5, Pool: makePool(1)}, nil); err == nil {
		t.Error("nil sink accepted")
	}
	if _, err := New(Config{BurstLen: 0, Pool: makePool(1)}, sink); err == nil {
		t.Error("zero burst accepted")
	}
	if _, err := New(Config{BurstLen: 5}, sink); err == nil {
		t.Error("empty pool accepted")
	}
}

func TestRecordPoolFiltersNotTaken(t *testing.T) {
	evs := []cpu.BranchEvent{{Taken: true}, {Taken: false}, {Taken: true}}
	if got := RecordPool(evs); len(got) != 2 {
		t.Errorf("RecordPool kept %d events, want 2", len(got))
	}
}

func TestInjectionIntoRealWorkload(t *testing.T) {
	p, _ := workload.ByName("458.sjeng")
	prog, err := p.Generate()
	if err != nil {
		t.Fatal(err)
	}
	// Record a legitimate pool from a normal run.
	rec := &cpu.CollectSink{TakenOnly: true}
	c := cpu.New(prog, cpu.Config{Mode: cpu.ModeRTAD, Sink: rec})
	if _, err := c.Run(100_000); err != nil {
		t.Fatal(err)
	}
	pool := RecordPool(rec.Events)
	if len(pool) < 1000 {
		t.Fatalf("pool too small: %d", len(pool))
	}
	// Victim run with injection.
	out := &cpu.CollectSink{}
	inj, err := New(Config{TriggerBranch: 2000, BurstLen: 500, Pool: pool, Segment: true}, out)
	if err != nil {
		t.Fatal(err)
	}
	c2 := cpu.New(prog, cpu.Config{Mode: cpu.ModeRTAD, Sink: inj})
	if _, err := c2.Run(100_000); err != nil {
		t.Fatal(err)
	}
	if !inj.Fired() {
		t.Fatal("attack never fired")
	}
	// Stream stays monotonic through the splice.
	for i := 1; i < len(out.Events); i++ {
		if out.Events[i].Cycle < out.Events[i-1].Cycle {
			t.Fatal("cycle monotonicity broken")
		}
	}
}

func TestRepeatedBursts(t *testing.T) {
	var count int64
	sink := cpu.SinkFunc(func(ev cpu.BranchEvent) int64 {
		if ev.PC != 0x8100 {
			count++
		}
		return 0
	})
	inj, err := New(Config{
		TriggerBranch: 2, BurstLen: 5, Pool: makePool(32),
		Repeat: 3, RepeatEvery: 4,
	}, sink)
	if err != nil {
		t.Fatal(err)
	}
	var lastCycle int64 = -1
	mono := true
	check := cpu.SinkFunc(func(ev cpu.BranchEvent) int64 {
		if ev.Cycle < lastCycle {
			mono = false
		}
		lastCycle = ev.Cycle
		return sink(ev)
	})
	inj2, _ := New(Config{
		TriggerBranch: 2, BurstLen: 5, Pool: makePool(32),
		Repeat: 3, RepeatEvery: 4,
	}, check)
	_ = inj
	for _, ev := range victimEvents(40) {
		inj2.BranchRetired(ev)
	}
	// First burst + 3 repeats = 4 bursts of 5 events.
	if got := inj2.InjectedEvents; got != 20 {
		t.Errorf("injected %d events, want 20 (4 bursts)", got)
	}
	if !mono {
		t.Error("cycle monotonicity broken across repeated bursts")
	}
}
