package experiments

import (
	"strings"
	"testing"

	"rtad/internal/core"
	"rtad/internal/cpu"
	"rtad/internal/sim"
)

// quickOpts keeps unit-test budgets small; the full budgets run in the
// benchmark harness (bench_test.go) and cmd/experiments.
func quickOpts() Options {
	return Options{
		Benchmarks:     []string{"458.sjeng", "471.omnetpp", "456.hmmer"},
		OverheadInstr:  400_000,
		DetectInstr:    2_000_000,
		TrainELMInstr:  10_000_000,
		TrainLSTMInstr: 1_200_000,
	}
}

func TestTableIIExperiment(t *testing.T) {
	res, err := TableII(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Trim.Verified {
		t.Error("trim not verified")
	}
	red := res.Trim.MLMIAOW.Reduction(res.Trim.MIAOW)
	if red < 0.75 || red > 0.88 {
		t.Errorf("ML-MIAOW reduction %.2f outside band", red)
	}
	s := res.String()
	for _, frag := range []string{"MIAOW", "MIAOW2.0", "ML-MIAOW", "perf/area"} {
		if !strings.Contains(s, frag) {
			t.Errorf("rendering missing %q", frag)
		}
	}
}

func TestTableIExperiment(t *testing.T) {
	res, err := TableI(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if res.Table.Total.BRAMs != 150 {
		t.Errorf("total BRAMs %d, want 150", res.Table.Total.BRAMs)
	}
	if !strings.Contains(res.String(), "ML-MIAOW (5 CUs)") {
		t.Error("rendering missing engine row")
	}
}

func TestFig6Experiment(t *testing.T) {
	res, err := Fig6(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("%d rows, want 3", len(res.Rows))
	}
	g := res.Geomean
	if !(g[cpu.ModeRTAD] < g[cpu.ModeSWSys] &&
		g[cpu.ModeSWSys] < g[cpu.ModeSWFunc] &&
		g[cpu.ModeSWFunc] < g[cpu.ModeSWAll]) {
		t.Errorf("geomean ordering broken: %v", g)
	}
	if g[cpu.ModeRTAD] > 0.005 {
		t.Errorf("RTAD geomean %.4f%% too high", g[cpu.ModeRTAD]*100)
	}
	if !strings.Contains(res.String(), "geomean") {
		t.Error("rendering missing geomean row")
	}
}

func TestFig7Experiment(t *testing.T) {
	o := quickOpts()
	res, err := Fig7(o, "401.bzip2")
	if err != nil {
		t.Fatal(err)
	}
	if res.RTAD.Total() >= res.SW.Total() {
		t.Errorf("RTAD %v not faster than SW %v", res.RTAD.Total(), res.SW.Total())
	}
	if !strings.Contains(res.String(), "vectorize") {
		t.Error("rendering missing stages")
	}
}

func TestFig8ExperimentQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("fig8 is the heaviest experiment")
	}
	o := quickOpts()
	o.Benchmarks = []string{"458.sjeng", "471.omnetpp"}
	res, err := Fig8(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.ELM) != 2 || len(res.LSTM) != 2 {
		t.Fatalf("rows: %d ELM, %d LSTM", len(res.ELM), len(res.LSTM))
	}
	for _, rows := range [][]Fig8Row{res.ELM, res.LSTM} {
		for _, row := range rows {
			if row.Speedup <= 1.0 {
				t.Errorf("%s/%v: ML-MIAOW not faster (%.2fx)", row.Benchmark, row.Kind, row.Speedup)
			}
		}
	}
	if res.MeanSpeedup < 1.5 || res.MeanSpeedup > 5.0 {
		t.Errorf("mean speedup %.2fx outside plausible band (paper 2.75x)", res.MeanSpeedup)
	}
	// The paper's asymmetry: ELM gains more from the extra CUs than LSTM.
	if res.ELM[0].Speedup <= res.LSTM[0].Speedup {
		t.Logf("note: ELM speedup %.2f vs LSTM %.2f (paper has ELM higher)",
			res.ELM[0].Speedup, res.LSTM[0].Speedup)
	}
	if !strings.Contains(res.String(), "mean speedup") {
		t.Error("rendering incomplete")
	}
	if core.ModelELM.String() != "ELM" {
		t.Error("sanity")
	}
}

func TestOptionsValidation(t *testing.T) {
	o := Options{Benchmarks: []string{"no-such-benchmark"}}
	if _, err := Fig6(o); err == nil {
		t.Error("unknown benchmark accepted")
	}
}

func TestFig8RowHelpers(t *testing.T) {
	rows := []Fig8Row{
		{Benchmark: "a", MIAOW: 100 * sim.Microsecond, MLMIAOW: 30 * sim.Microsecond},
		{Benchmark: "b", MIAOW: 200 * sim.Microsecond, MLMIAOW: 70 * sim.Microsecond},
		{Benchmark: "c", MIAOW: 300 * sim.Microsecond, MLMIAOW: 50 * sim.Microsecond},
	}
	if got := MeanLatency(rows, false); got != 200*sim.Microsecond {
		t.Errorf("MIAOW mean = %v", got)
	}
	if got := MeanLatency(rows, true); got != 50*sim.Microsecond {
		t.Errorf("ML-MIAOW mean = %v", got)
	}
	lo, hi := LatencySpread(rows)
	if lo != 30*sim.Microsecond || hi != 70*sim.Microsecond {
		t.Errorf("spread = %v..%v", lo, hi)
	}
	if MeanLatency(nil, true) != 0 {
		t.Error("empty mean not zero")
	}
	if lo, hi := LatencySpread(nil); lo != 0 || hi != 0 {
		t.Error("empty spread not zero")
	}
}
