package experiments

import (
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"rtad/internal/kernels"
)

// TestReportSchemaStableForDefaultBackend pins the compatibility contract:
// a default-backend report keeps schema v1 and never grows the backend or
// calibration keys, so its JSON stays byte-identical to older builds.
func TestReportSchemaStableForDefaultBackend(t *testing.T) {
	for _, backend := range []string{"", kernels.BackendGPU} {
		o := quickOpts()
		o.Backend = backend
		r := NewReport(o)
		if r.Schema != ReportSchema {
			t.Errorf("backend %q: schema %q, want %q", backend, r.Schema, ReportSchema)
		}
		r.RecordCalibration(nil)                      // nil table: no-op
		r.RecordCalibration(kernels.NewCalibration()) // empty table: no-op
		blob, err := json.Marshal(r)
		if err != nil {
			t.Fatal(err)
		}
		for _, key := range []string{`"backend"`, `"calibration"`} {
			if strings.Contains(string(blob), key) {
				t.Errorf("backend %q: default report JSON contains %s: %s", backend, key, blob)
			}
		}
	}
}

func TestReportSchemaV2ForNativeBackends(t *testing.T) {
	for _, backend := range []string{kernels.BackendNative, kernels.BackendNativeCalibrated} {
		o := quickOpts()
		o.Backend = backend
		r := NewReport(o)
		if r.Schema != ReportSchemaV2 {
			t.Errorf("backend %s: schema %q, want %q", backend, r.Schema, ReportSchemaV2)
		}
		if r.Backend != backend {
			t.Errorf("backend field %q, want %q", r.Backend, backend)
		}
	}

	c := kernels.NewCalibration()
	c.Record(kernels.CalKey{Model: "lstm", Window: 16, CUs: 5}, 777)
	o := quickOpts()
	o.Backend = kernels.BackendNativeCalibrated
	r := NewReport(o)
	r.RecordCalibration(c)
	blob, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	for _, frag := range []string{ReportSchemaV2, `"backend":"native-calibrated"`, `"cycles":777`} {
		if !strings.Contains(string(blob), frag) {
			t.Errorf("v2 report JSON missing %s: %s", frag, blob)
		}
	}
}

// TestFig8GridBackendEquivalence is the acceptance check for the backend
// refactor at grid scale: the full Fig 8 benchmark × model × CU sweep must
// produce identical rows — latencies, drops, detection verdicts — on the
// native backends as on the cycle-accurate GPU reference.
func TestFig8GridBackendEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("fig8 is the heaviest experiment")
	}
	o := quickOpts()
	o.Benchmarks = []string{"458.sjeng", "456.hmmer"}
	ref, err := Fig8(o)
	if err != nil {
		t.Fatal(err)
	}
	for _, backend := range []string{kernels.BackendNative, kernels.BackendNativeCalibrated} {
		bo := o
		bo.Backend = backend
		got, err := Fig8(bo)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, ref) {
			t.Errorf("%s grid diverges from gpu:\n  got  %+v\n  want %+v", backend, got, ref)
		}
	}
}

// TestFig6GridBackendEquivalence: Fig 6 measures CPU-side collection
// overhead, so the backend cannot change it — but the option must thread
// through without disturbing the grid.
func TestFig6GridBackendEquivalence(t *testing.T) {
	o := quickOpts()
	ref, err := Fig6(o)
	if err != nil {
		t.Fatal(err)
	}
	bo := o
	bo.Backend = kernels.BackendNative
	got, err := Fig6(bo)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, ref) {
		t.Errorf("native Fig6 grid diverges from gpu:\n  got  %+v\n  want %+v", got, ref)
	}
}
