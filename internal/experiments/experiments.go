// Package experiments regenerates every table and figure of the paper's
// evaluation (§IV) from the simulated RTAD system: Table I (synthesis),
// Table II (trimming), Fig 6 (host overhead), Fig 7 (transfer latency) and
// Fig 8 (detection latency). Each experiment returns a structured result
// plus a text rendering; the cmd/experiments binary and the repository's
// benchmark suite both drive this package, and EXPERIMENTS.md records its
// output against the published numbers.
package experiments

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"rtad/internal/core"
	"rtad/internal/cpu"
	"rtad/internal/gpu"
	"rtad/internal/kernels"
	"rtad/internal/ml"
	"rtad/internal/obs"
	"rtad/internal/sim"
	"rtad/internal/synth"
	"rtad/internal/trim"
	"rtad/internal/workload"
)

// Options tunes experiment budgets. Zero values take defaults sized to
// finish the full suite in a few minutes on a laptop.
type Options struct {
	// Benchmarks restricts the suite (short or full names); empty = all 12.
	Benchmarks []string
	// OverheadInstr is the per-run budget of Fig 6.
	OverheadInstr int64
	// DetectInstr is the per-run budget of Fig 8 detection runs.
	DetectInstr int64
	// TrainELMInstr / TrainLSTMInstr override the training budgets.
	TrainELMInstr  int64
	TrainLSTMInstr int64
	// Workers sizes the session fleet the grid experiments (Fig 6, Fig 8)
	// fan out over; <= 0 uses one worker per available CPU. Results are
	// bit-identical at any width — each cell is an independent session.
	Workers int
	// Backend selects the inference backend for the detection pipelines
	// (Fig 7, Fig 8): kernels.BackendGPU, BackendNative or
	// BackendNativeCalibrated; empty picks the cycle-accurate default.
	// Judgment streams — and therefore every reported number — are
	// bit-identical across backends; only the wall clock changes.
	Backend string
	// StagedTrace runs every detection pipeline on the staged byte/word
	// trace-delivery reference path instead of the fused fast path. The
	// report is byte-identical either way — the CI differential job diffs
	// the two JSON outputs across all backends to prove it.
	StagedTrace bool
	// Calibration is the shared cycle-cost table for the native backends.
	// Nil with BackendNativeCalibrated gets one table created in
	// withDefaults, shared by every pipeline of the run; nil with
	// BackendNative lets each pipeline self-calibrate lazily.
	Calibration *kernels.Calibration
	// Telemetry, when non-nil, collects metrics across the grid runs: each
	// Fig 8 cell records into a private registry and the registries merge
	// into Telemetry.Reg serially in cell order, so the aggregate — like the
	// results — is bit-identical at any worker count. Nil (the default)
	// leaves every run un-instrumented and the output byte-identical to an
	// un-instrumented build.
	Telemetry *obs.Telemetry
}

// fleet builds the run fleet for the configured width.
func (o Options) fleet() *core.Fleet { return core.NewFleet(o.Workers) }

func (o Options) profiles() ([]workload.Profile, error) {
	if len(o.Benchmarks) == 0 {
		return workload.Profiles(), nil
	}
	var out []workload.Profile
	for _, name := range o.Benchmarks {
		p, ok := workload.ByName(name)
		if !ok {
			return nil, fmt.Errorf("experiments: unknown benchmark %q", name)
		}
		out = append(out, p)
	}
	return out, nil
}

func (o Options) withDefaults() Options {
	if o.OverheadInstr <= 0 {
		o.OverheadInstr = 2_000_000
	}
	if o.DetectInstr <= 0 {
		o.DetectInstr = 6_000_000
	}
	if o.Backend == kernels.BackendNativeCalibrated && o.Calibration == nil {
		o.Calibration = kernels.NewCalibration()
	}
	return o
}

// pipelineConfig builds a detection-pipeline config carrying the options'
// backend choice.
func (o Options) pipelineConfig(cus int, tel *obs.Telemetry) core.PipelineConfig {
	return core.PipelineConfig{
		CUs:         cus,
		Telemetry:   tel,
		Backend:     o.Backend,
		Calibration: o.Calibration,
		StagedTrace: o.StagedTrace,
	}
}

// trainModels builds the ELM+LSTM model pair used by the trimming and
// synthesis experiments (any benchmark's models exercise the same blocks).
func trainModels(o Options) (*ml.ELM, *ml.LSTM, error) {
	p, _ := workload.ByName("458.sjeng")
	ecfg := core.DefaultTrainConfig(p, core.ModelELM)
	if o.TrainELMInstr > 0 {
		ecfg.TrainInstr = o.TrainELMInstr
	}
	edep, err := core.Train(ecfg)
	if err != nil {
		return nil, nil, err
	}
	lcfg := core.DefaultTrainConfig(p, core.ModelLSTM)
	if o.TrainLSTMInstr > 0 {
		lcfg.TrainInstr = o.TrainLSTMInstr
	}
	ldep, err := core.Train(lcfg)
	if err != nil {
		return nil, nil, err
	}
	return edep.ELM, ldep.LSTM, nil
}

// ---------------------------------------------------------------- Table II

// TableIIResult is the trimming comparison.
type TableIIResult struct {
	Trim *trim.Result
}

// TableII runs the full trimming flow on the deployed models.
func TableII(o Options) (*TableIIResult, error) {
	o = o.withDefaults()
	elm, lstm, err := trainModels(o)
	if err != nil {
		return nil, err
	}
	res, err := trim.Run(trim.StandardWorkloads(elm, lstm, 10))
	if err != nil {
		return nil, err
	}
	return &TableIIResult{Trim: res}, nil
}

// String renders the comparison in the paper's layout.
func (r *TableIIResult) String() string {
	var b strings.Builder
	t := r.Trim
	fmt.Fprintf(&b, "%-16s %8s %8s %8s %8s\n", "", "LUTs", "FFs", "Sum", "Area")
	fmt.Fprintf(&b, "%-16s %8d %8d %8d %8s\n", "MIAOW", t.MIAOW.LUTs, t.MIAOW.FFs, t.MIAOW.Sum(), "-")
	fmt.Fprintf(&b, "%-16s %8d %8d %8d %7.0f%%\n", "MIAOW2.0", t.MIAOW20.LUTs, t.MIAOW20.FFs, t.MIAOW20.Sum(), -100*t.MIAOW20.Reduction(t.MIAOW))
	fmt.Fprintf(&b, "%-16s %8d %8d %8d %7.0f%%\n", "ML-MIAOW (ours)", t.MLMIAOW.LUTs, t.MLMIAOW.FFs, t.MLMIAOW.Sum(), -100*t.MLMIAOW.Reduction(t.MIAOW))
	fmt.Fprintf(&b, "perf/area vs MIAOW2.0: %.1fx (paper: 3.2x); trimmed blocks: %d; verified: %v\n",
		t.PerfPerAreaVsMIAOW20(), len(t.Trimmed), t.Verified)
	return b.String()
}

// ----------------------------------------------------------------- Table I

// TableIResult wraps the synthesis table.
type TableIResult struct {
	Table synth.TableI
	Keep  gpu.CoverageSet
}

// TableI runs trimming then the synthesis model.
func TableI(o Options) (*TableIResult, error) {
	t2, err := TableII(o)
	if err != nil {
		return nil, err
	}
	keep := t2.Trim.Coverage
	return &TableIResult{Table: synth.BuildTableI(&keep), Keep: keep}, nil
}

// String renders Table I.
func (r *TableIResult) String() string { return r.Table.String() }

// ------------------------------------------------------------------- Fig 6

// Fig6Modes lists the collection configurations in the figure's order.
var Fig6Modes = []cpu.Mode{cpu.ModeRTAD, cpu.ModeSWSys, cpu.ModeSWFunc, cpu.ModeSWAll}

// Fig6Row is one benchmark's bars.
type Fig6Row struct {
	Benchmark string
	Overhead  map[cpu.Mode]float64
}

// Fig6Result is the overhead study.
type Fig6Result struct {
	Rows    []Fig6Row
	Geomean map[cpu.Mode]float64
}

// Fig6 measures the execution-time overhead of every collection mode over
// the baseline for each benchmark.
func Fig6(o Options) (*Fig6Result, error) {
	o = o.withDefaults()
	profiles, err := o.profiles()
	if err != nil {
		return nil, err
	}
	// One fleet job per benchmark: each job measures all four collection
	// modes for its profile. Rows land at their profile's index, so output
	// order — and, below, floating-point accumulation order — is identical
	// to a serial run at any worker count.
	rows := make([]Fig6Row, len(profiles))
	err = o.fleet().Run(len(profiles), func(i int) error {
		p := profiles[i]
		row := Fig6Row{Benchmark: p.Name, Overhead: map[cpu.Mode]float64{}}
		for _, mode := range Fig6Modes {
			m, err := core.MeasureOverhead(p, mode, o.OverheadInstr)
			if err != nil {
				return err
			}
			row.Overhead[mode] = m.Overhead
		}
		rows[i] = row
		return nil
	})
	if err != nil {
		return nil, err
	}
	res := &Fig6Result{Rows: rows, Geomean: map[cpu.Mode]float64{}}
	logsum := map[cpu.Mode]float64{}
	for _, row := range rows {
		for _, mode := range Fig6Modes {
			// Geomean over slowdown factors (1+overhead), as the paper's
			// "geometric mean" of normalized execution times.
			logsum[mode] += math.Log1p(row.Overhead[mode])
		}
	}
	for _, mode := range Fig6Modes {
		res.Geomean[mode] = math.Expm1(logsum[mode] / float64(len(profiles)))
	}
	return res, nil
}

// String renders the per-benchmark overhead table.
func (r *Fig6Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-16s", "benchmark")
	for _, m := range Fig6Modes {
		fmt.Fprintf(&b, " %9s", m)
	}
	b.WriteString("\n")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-16s", row.Benchmark)
		for _, m := range Fig6Modes {
			fmt.Fprintf(&b, " %8.3f%%", row.Overhead[m]*100)
		}
		b.WriteString("\n")
	}
	fmt.Fprintf(&b, "%-16s", "geomean")
	for _, m := range Fig6Modes {
		fmt.Fprintf(&b, " %8.3f%%", r.Geomean[m]*100)
	}
	fmt.Fprintf(&b, "\n(paper geomeans: RTAD 0.052%%, SW_SYS 0.6%%, SW_FUNC 10.7%%, SW_ALL 43.4%%)\n")
	return b.String()
}

// ------------------------------------------------------------------- Fig 7

// Fig7Result is the data-transfer-latency comparison.
type Fig7Result struct {
	Benchmark string
	SW        core.TransferBreakdown
	RTAD      core.TransferBreakdown
	Vectors   int
}

// Fig7 measures the SW and RTAD delivery paths on one benchmark.
func Fig7(o Options, bench string) (*Fig7Result, error) {
	o = o.withDefaults()
	p, ok := workload.ByName(bench)
	if !ok {
		return nil, fmt.Errorf("experiments: unknown benchmark %q", bench)
	}
	cfg := core.DefaultTrainConfig(p, core.ModelLSTM)
	if o.TrainLSTMInstr > 0 {
		cfg.TrainInstr = o.TrainLSTMInstr
	}
	dep, err := core.Train(cfg)
	if err != nil {
		return nil, err
	}
	pcfg := o.pipelineConfig(5, nil)
	pcfg.Stride = 64
	rtad, n, err := core.MeasureRTADTransfer(dep, pcfg, o.OverheadInstr)
	if err != nil {
		return nil, err
	}
	return &Fig7Result{
		Benchmark: p.Name,
		SW:        core.SWTransfer(dep.Window()),
		RTAD:      rtad,
		Vectors:   n,
	}, nil
}

// String renders the stage breakdown.
func (r *Fig7Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "data transfer latency on %s (%d vectors averaged)\n", r.Benchmark, r.Vectors)
	fmt.Fprintf(&b, "%-6s %12s %12s %12s %12s\n", "", "(1) read", "(2) vectorize", "(3) write", "total")
	row := func(name string, t core.TransferBreakdown) {
		fmt.Fprintf(&b, "%-6s %12v %12v %12v %12v\n", name, t.Read, t.Vectorize, t.Write, t.Total())
	}
	row("SW", r.SW)
	row("RTAD", r.RTAD)
	fmt.Fprintf(&b, "(paper: SW 20.0us total — copy 11.5us, vectorize 7.38us; RTAD 3.62us total — vectorize 16ns, write 0.78us)\n")
	return b.String()
}

// ------------------------------------------------------------------- Fig 8

// Fig8Row is one benchmark × model measurement pair.
type Fig8Row struct {
	Benchmark string
	Kind      core.ModelKind
	MIAOW     sim.Time // 1-CU detection latency
	MLMIAOW   sim.Time // 5-CU detection latency
	Speedup   float64
	DroppedM  int64 // MCM FIFO drops under MIAOW
	DroppedML int64 // drops under ML-MIAOW
	Detected  bool  // anomaly IRQ raised on the ML-MIAOW run
}

// Fig8Result is the detection-latency study.
type Fig8Result struct {
	ELM  []Fig8Row
	LSTM []Fig8Row
	// MeanSpeedup is the average latency improvement of ML-MIAOW over
	// MIAOW across every row (the paper's 2.75x headline).
	MeanSpeedup float64
}

// Fig8 trains a deployment per benchmark and model, injects the attack, and
// measures the judgment latency under MIAOW (1 CU) and ML-MIAOW (5 CUs).
func Fig8(o Options) (*Fig8Result, error) {
	o = o.withDefaults()
	profiles, err := o.profiles()
	if err != nil {
		return nil, err
	}
	// The benchmark × model grid in kind-major order, one fleet job per
	// cell. Each job trains its own deployment and runs both engine
	// configurations through independent sessions, so cells share nothing
	// and the grid parallelises freely; rows land at their cell's index,
	// keeping output and mean-speedup accumulation order identical to a
	// serial run.
	type cell struct {
		kind core.ModelKind
		p    workload.Profile
	}
	var cells []cell
	for _, kind := range []core.ModelKind{core.ModelELM, core.ModelLSTM} {
		for _, p := range profiles {
			cells = append(cells, cell{kind: kind, p: p})
		}
	}
	rows := make([]Fig8Row, len(cells))
	var regs []*obs.Registry
	if o.Telemetry != nil && o.Telemetry.Reg != nil {
		regs = make([]*obs.Registry, len(cells))
	}
	err = o.fleet().Run(len(cells), func(i int) error {
		kind, p := cells[i].kind, cells[i].p
		var jt *obs.Telemetry
		if regs != nil {
			jt = obs.NewMetricsOnly()
			regs[i] = jt.Reg
		}
		cfg := core.DefaultTrainConfig(p, kind)
		if kind == core.ModelELM && o.TrainELMInstr > 0 {
			cfg.TrainInstr = o.TrainELMInstr
		}
		if kind == core.ModelLSTM && o.TrainLSTMInstr > 0 {
			cfg.TrainInstr = o.TrainLSTMInstr
		}
		dep, err := core.Train(cfg)
		if err != nil {
			return fmt.Errorf("fig8 %s/%v: %w", p.Name, kind, err)
		}
		aspec := core.AttackSpec{Seed: p.Seed}
		detInstr := o.DetectInstr
		if kind == core.ModelELM {
			// Syscall windows are sparse; give the run room for
			// several post-injection judgments.
			detInstr *= 2
		}
		detect := func(cus int, tel *obs.Telemetry) (*core.DetectionResult, error) {
			s, err := core.Open(core.Deployments{dep},
				core.WithConfig(o.pipelineConfig(cus, tel)),
				core.WithAttack(aspec.Resolve(detInstr)))
			if err != nil {
				return nil, err
			}
			return s.Detect(detInstr)
		}
		m1, err := detect(1, jt.Lane("miaow"))
		if err != nil {
			return fmt.Errorf("fig8 %s/%v MIAOW: %w", p.Name, kind, err)
		}
		m5, err := detect(5, jt.Lane("mlmiaow"))
		if err != nil {
			return fmt.Errorf("fig8 %s/%v ML-MIAOW: %w", p.Name, kind, err)
		}
		rows[i] = Fig8Row{
			Benchmark: p.Name, Kind: kind,
			MIAOW: m1.Latency, MLMIAOW: m5.Latency,
			Speedup:  float64(m1.Latency) / float64(m5.Latency),
			DroppedM: m1.Dropped, DroppedML: m5.Dropped,
			Detected: m5.Detected,
		}
		return nil
	})
	// Serial, cell-order merge: the aggregate registry is independent of how
	// the pool interleaved the cells.
	if regs != nil {
		for _, r := range regs {
			if r != nil {
				o.Telemetry.Reg.Merge(r)
			}
		}
	}
	if err != nil {
		return nil, err
	}
	res := &Fig8Result{}
	var sum float64
	for _, row := range rows {
		sum += row.Speedup
		if row.Kind == core.ModelELM {
			res.ELM = append(res.ELM, row)
		} else {
			res.LSTM = append(res.LSTM, row)
		}
	}
	res.MeanSpeedup = sum / float64(len(rows))
	return res, nil
}

// MeanLatency averages a row set's latencies for one engine.
func MeanLatency(rows []Fig8Row, mlmiaow bool) sim.Time {
	if len(rows) == 0 {
		return 0
	}
	var sum sim.Time
	for _, r := range rows {
		if mlmiaow {
			sum += r.MLMIAOW
		} else {
			sum += r.MIAOW
		}
	}
	return sum / sim.Time(len(rows))
}

// LatencySpread reports min and max ML-MIAOW latencies of a row set, the
// across-benchmark variability Fig 8 discusses.
func LatencySpread(rows []Fig8Row) (lo, hi sim.Time) {
	if len(rows) == 0 {
		return 0, 0
	}
	lats := make([]sim.Time, len(rows))
	for i, r := range rows {
		lats[i] = r.MLMIAOW
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	return lats[0], lats[len(lats)-1]
}

// String renders the per-benchmark latency table.
func (r *Fig8Result) String() string {
	var b strings.Builder
	section := func(name string, rows []Fig8Row) {
		fmt.Fprintf(&b, "%s detection latency (MIAOW -> ML-MIAOW)\n", name)
		fmt.Fprintf(&b, "%-16s %12s %12s %8s %18s %9s\n", "benchmark", "MIAOW", "ML-MIAOW", "speedup", "drops (M -> ML)", "detected")
		for _, row := range rows {
			fmt.Fprintf(&b, "%-16s %12v %12v %7.2fx %8d -> %7d %9v\n",
				row.Benchmark, row.MIAOW, row.MLMIAOW, row.Speedup,
				row.DroppedM, row.DroppedML, row.Detected)
		}
		fmt.Fprintf(&b, "%-16s %12v %12v\n", "mean", MeanLatency(rows, false), MeanLatency(rows, true))
	}
	section("ELM", r.ELM)
	section("LSTM", r.LSTM)
	fmt.Fprintf(&b, "mean speedup: %.2fx (paper: 2.75x; ELM 13.83->4.21us, LSTM 53.16->23.98us)\n", r.MeanSpeedup)
	return b.String()
}
