// Machine-readable reporting: every experiment result converts into a
// JSON-friendly shape, and cmd/experiments -json accumulates them into one
// Report document. Times are microseconds (the unit the paper quotes),
// overheads percent.
package experiments

import (
	"rtad/internal/core"
	"rtad/internal/kernels"
	"rtad/internal/obs"
	"rtad/internal/sim"
)

// ReportSchema versions the JSON layout.
const ReportSchema = "rtad-experiments/1"

// ReportSchemaV2 adds the backend and calibration fields. It is emitted
// only when a non-default inference backend ran; default-backend reports
// keep ReportSchema and stay byte-identical to older builds.
const ReportSchemaV2 = "rtad-experiments/2"

// Report is one cmd/experiments run.
type Report struct {
	Schema     string   `json:"schema"`
	Benchmarks []string `json:"benchmarks,omitempty"` // empty = all 12
	Workers    int      `json:"workers"`              // fleet width used
	// Backend names the inference backend the detection pipelines ran on
	// (schema v2); omitted for the default cycle-accurate GPU backend.
	Backend string `json:"backend,omitempty"`
	// Calibration embeds the recorded per-shape cycle costs the native
	// backends replayed (schema v2); omitted unless a calibration table
	// was shared across the run. Populate via RecordCalibration after the
	// experiments finish.
	Calibration []kernels.CalEntry `json:"calibration,omitempty"`
	// WallSeconds records each experiment's wall-clock time, keyed by the
	// same names the JSON payload uses (table1, fig6, ...). With Workers
	// varied it documents the fleet speedup alongside unchanged results.
	WallSeconds map[string]float64 `json:"wall_seconds,omitempty"`

	TableI  *TableIReport  `json:"table1,omitempty"`
	TableII *TableIIReport `json:"table2,omitempty"`
	Fig6    *Fig6Report    `json:"fig6,omitempty"`
	Fig7    *Fig7Report    `json:"fig7,omitempty"`
	Fig8    *Fig8Report    `json:"fig8,omitempty"`

	// Metrics is the end-of-run registry snapshot when the run was made
	// with Options.Telemetry (cmd/experiments -metrics); absent otherwise,
	// keeping un-instrumented reports byte-identical to older builds.
	Metrics *obs.Snapshot `json:"metrics,omitempty"`
}

// NewReport starts a report for the given options.
func NewReport(o Options) *Report {
	r := &Report{
		Schema:      ReportSchema,
		Benchmarks:  o.Benchmarks,
		Workers:     o.fleet().Workers(),
		WallSeconds: map[string]float64{},
	}
	if o.Backend != "" && o.Backend != kernels.DefaultBackend {
		r.Schema = ReportSchemaV2
		r.Backend = o.Backend
	}
	return r
}

// RecordCalibration embeds the shared cycle-cost table's entries (sorted,
// deterministic). A nil or empty table leaves the report untouched, so
// default-backend reports remain byte-identical to schema v1.
func (r *Report) RecordCalibration(c *kernels.Calibration) {
	if c.Len() == 0 {
		return
	}
	r.Calibration = c.Entries()
}

// TableIReport is the synthesized-results table.
type TableIReport struct {
	Rows  []TableIRowReport `json:"rows"`
	Total AreaReport        `json:"total"`
}

// TableIRowReport is one module line.
type TableIRowReport struct {
	Module    string     `json:"module"`
	Submodule string     `json:"submodule,omitempty"`
	Area      AreaReport `json:"area"`
}

// AreaReport is a synthesis area in device resources.
type AreaReport struct {
	LUTs  int `json:"luts"`
	FFs   int `json:"ffs"`
	BRAMs int `json:"brams,omitempty"`
	Gates int `json:"gates,omitempty"`
}

// Report converts the synthesis table.
func (r *TableIResult) Report() *TableIReport {
	out := &TableIReport{Total: AreaReport{
		LUTs: r.Table.Total.LUTs, FFs: r.Table.Total.FFs,
		BRAMs: r.Table.Total.BRAMs, Gates: r.Table.Total.Gates,
	}}
	for _, row := range r.Table.Rows {
		out.Rows = append(out.Rows, TableIRowReport{
			Module: row.Module, Submodule: row.Submodule,
			Area: AreaReport{
				LUTs: row.Area.LUTs, FFs: row.Area.FFs,
				BRAMs: row.Area.BRAMs, Gates: row.Area.Gates,
			},
		})
	}
	return out
}

// TableIIReport is the trimming comparison.
type TableIIReport struct {
	MIAOW   AreaReport `json:"miaow"`
	MIAOW20 AreaReport `json:"miaow2_0"`
	MLMIAOW AreaReport `json:"mlmiaow"`
	// ReductionPct are LUT+FF reductions versus MIAOW (negative = smaller).
	MIAOW20ReductionPct float64 `json:"miaow2_0_reduction_pct"`
	MLMIAOWReductionPct float64 `json:"mlmiaow_reduction_pct"`
	PerfPerAreaVsMIAOW2 float64 `json:"perf_per_area_vs_miaow2_0"`
	TrimmedBlocks       int     `json:"trimmed_blocks"`
	Verified            bool    `json:"verified"`
}

// Report converts the trimming result.
func (r *TableIIResult) Report() *TableIIReport {
	t := r.Trim
	return &TableIIReport{
		MIAOW:               AreaReport{LUTs: t.MIAOW.LUTs, FFs: t.MIAOW.FFs, BRAMs: t.MIAOW.BRAMs},
		MIAOW20:             AreaReport{LUTs: t.MIAOW20.LUTs, FFs: t.MIAOW20.FFs, BRAMs: t.MIAOW20.BRAMs},
		MLMIAOW:             AreaReport{LUTs: t.MLMIAOW.LUTs, FFs: t.MLMIAOW.FFs, BRAMs: t.MLMIAOW.BRAMs},
		MIAOW20ReductionPct: -100 * t.MIAOW20.Reduction(t.MIAOW),
		MLMIAOWReductionPct: -100 * t.MLMIAOW.Reduction(t.MIAOW),
		PerfPerAreaVsMIAOW2: t.PerfPerAreaVsMIAOW20(),
		TrimmedBlocks:       len(t.Trimmed),
		Verified:            t.Verified,
	}
}

// Fig6Report is the overhead study.
type Fig6Report struct {
	Rows []Fig6RowReport `json:"rows"`
	// GeomeanPct is keyed by collection-mode name (rtad, sw_sys, ...).
	GeomeanPct map[string]float64 `json:"geomean_pct"`
}

// Fig6RowReport is one benchmark's overheads by mode name, in percent.
type Fig6RowReport struct {
	Benchmark   string             `json:"benchmark"`
	OverheadPct map[string]float64 `json:"overhead_pct"`
}

// Report converts the overhead study.
func (r *Fig6Result) Report() *Fig6Report {
	out := &Fig6Report{GeomeanPct: map[string]float64{}}
	for _, row := range r.Rows {
		rr := Fig6RowReport{Benchmark: row.Benchmark, OverheadPct: map[string]float64{}}
		for _, m := range Fig6Modes {
			rr.OverheadPct[m.String()] = 100 * row.Overhead[m]
		}
		out.Rows = append(out.Rows, rr)
	}
	for _, m := range Fig6Modes {
		out.GeomeanPct[m.String()] = 100 * r.Geomean[m]
	}
	return out
}

// Fig7Report is the transfer-latency comparison, stages in microseconds.
type Fig7Report struct {
	Benchmark string         `json:"benchmark"`
	Vectors   int            `json:"vectors_averaged"`
	SW        TransferReport `json:"sw"`
	RTAD      TransferReport `json:"rtad"`
}

// TransferReport is one delivery path's stage breakdown in microseconds.
type TransferReport struct {
	ReadUS      float64 `json:"read_us"`
	VectorizeUS float64 `json:"vectorize_us"`
	WriteUS     float64 `json:"write_us"`
	TotalUS     float64 `json:"total_us"`
}

func transferReport(t core.TransferBreakdown) TransferReport {
	return TransferReport{
		ReadUS:      t.Read.Microseconds(),
		VectorizeUS: t.Vectorize.Microseconds(),
		WriteUS:     t.Write.Microseconds(),
		TotalUS:     t.Total().Microseconds(),
	}
}

// Report converts the transfer-latency comparison.
func (r *Fig7Result) Report() *Fig7Report {
	return &Fig7Report{
		Benchmark: r.Benchmark,
		Vectors:   r.Vectors,
		SW:        transferReport(r.SW),
		RTAD:      transferReport(r.RTAD),
	}
}

// Fig8Report is the detection-latency study.
type Fig8Report struct {
	ELM         []Fig8RowReport `json:"elm"`
	LSTM        []Fig8RowReport `json:"lstm"`
	MeanSpeedup float64         `json:"mean_speedup"`
	// Mean ML-MIAOW / MIAOW latencies per model, microseconds.
	MeanUS map[string]float64 `json:"mean_us"`
}

// Fig8RowReport is one benchmark × model cell.
type Fig8RowReport struct {
	Benchmark      string  `json:"benchmark"`
	MIAOWUS        float64 `json:"miaow_us"`
	MLMIAOWUS      float64 `json:"mlmiaow_us"`
	Speedup        float64 `json:"speedup"`
	DroppedMIAOW   int64   `json:"dropped_miaow"`
	DroppedMLMIAOW int64   `json:"dropped_mlmiaow"`
	Detected       bool    `json:"detected"`
}

// Report converts the detection-latency study.
func (r *Fig8Result) Report() *Fig8Report {
	conv := func(rows []Fig8Row) []Fig8RowReport {
		out := make([]Fig8RowReport, len(rows))
		for i, row := range rows {
			out[i] = Fig8RowReport{
				Benchmark:      row.Benchmark,
				MIAOWUS:        row.MIAOW.Microseconds(),
				MLMIAOWUS:      row.MLMIAOW.Microseconds(),
				Speedup:        row.Speedup,
				DroppedMIAOW:   row.DroppedM,
				DroppedMLMIAOW: row.DroppedML,
				Detected:       row.Detected,
			}
		}
		return out
	}
	us := func(t sim.Time) float64 { return t.Microseconds() }
	return &Fig8Report{
		ELM:         conv(r.ELM),
		LSTM:        conv(r.LSTM),
		MeanSpeedup: r.MeanSpeedup,
		MeanUS: map[string]float64{
			"elm_miaow":    us(MeanLatency(r.ELM, false)),
			"elm_mlmiaow":  us(MeanLatency(r.ELM, true)),
			"lstm_miaow":   us(MeanLatency(r.LSTM, false)),
			"lstm_mlmiaow": us(MeanLatency(r.LSTM, true)),
		},
	}
}
