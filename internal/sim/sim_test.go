package sim

import (
	"testing"
	"testing/quick"
)

func TestClockPeriods(t *testing.T) {
	tests := []struct {
		clock  *Clock
		period Time
	}{
		{CPUClock, 4 * Nanosecond},
		{FabricClock, 8 * Nanosecond},
		{GPUClock, 20 * Nanosecond},
	}
	for _, tt := range tests {
		if got := tt.clock.Period(); got != tt.period {
			t.Errorf("%v period = %v, want %v", tt.clock, got, tt.period)
		}
	}
}

func TestClockDurationCycles(t *testing.T) {
	c := NewClock("t", 125_000_000)
	if got := c.Duration(2); got != 16*Nanosecond {
		t.Errorf("Duration(2) = %v, want 16ns", got)
	}
	if got := c.Cycles(100 * Nanosecond); got != 12 {
		t.Errorf("Cycles(100ns) = %d, want 12", got)
	}
	if got := c.CyclesCeil(100 * Nanosecond); got != 13 {
		t.Errorf("CyclesCeil(100ns) = %d, want 13", got)
	}
	if got := c.CyclesCeil(96 * Nanosecond); got != 12 {
		t.Errorf("CyclesCeil(96ns) = %d, want 12", got)
	}
}

func TestClockNextEdge(t *testing.T) {
	c := NewClock("t", 250_000_000) // 4ns
	cases := []struct{ in, want Time }{
		{0, 0},
		{1, 4 * Nanosecond},
		{4 * Nanosecond, 4 * Nanosecond},
		{5 * Nanosecond, 8 * Nanosecond},
	}
	for _, cse := range cases {
		if got := c.NextEdge(cse.in); got != cse.want {
			t.Errorf("NextEdge(%v) = %v, want %v", cse.in, got, cse.want)
		}
	}
}

func TestClockPanics(t *testing.T) {
	for _, hz := range []int64{0, -1, 3_000_000_007} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewClock(%d) did not panic", hz)
				}
			}()
			NewClock("bad", hz)
		}()
	}
}

func TestTimeString(t *testing.T) {
	cases := []struct {
		in   Time
		want string
	}{
		{0, "0s"},
		{16 * Nanosecond, "16ns"},
		{3620 * Nanosecond, "3.62us"},
		{2 * Millisecond, "2ms"},
		{Second, "1s"},
		{500, "500ps"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("(%d).String() = %q, want %q", int64(c.in), got, c.want)
		}
	}
}

func TestSchedulerOrdering(t *testing.T) {
	s := NewScheduler()
	var order []int
	s.At(30*Nanosecond, func() { order = append(order, 3) })
	s.At(10*Nanosecond, func() { order = append(order, 1) })
	s.At(20*Nanosecond, func() { order = append(order, 2) })
	// Equal timestamps fire in scheduling order.
	s.At(20*Nanosecond, func() { order = append(order, 4) })
	s.Run()
	want := []int{1, 2, 4, 3}
	if len(order) != len(want) {
		t.Fatalf("order = %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
	if s.Now() != 30*Nanosecond {
		t.Errorf("Now = %v, want 30ns", s.Now())
	}
	if s.Fired() != 4 {
		t.Errorf("Fired = %d, want 4", s.Fired())
	}
}

func TestSchedulerCascade(t *testing.T) {
	s := NewScheduler()
	depth := 0
	var recurse func()
	recurse = func() {
		depth++
		if depth < 100 {
			s.After(Nanosecond, recurse)
		}
	}
	s.After(Nanosecond, recurse)
	s.Run()
	if depth != 100 {
		t.Errorf("depth = %d, want 100", depth)
	}
	if s.Now() != 100*Nanosecond {
		t.Errorf("Now = %v, want 100ns", s.Now())
	}
}

func TestSchedulerPastPanics(t *testing.T) {
	s := NewScheduler()
	s.At(10*Nanosecond, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		s.At(5*Nanosecond, func() {})
	})
	s.Run()
}

func TestSchedulerRunUntil(t *testing.T) {
	s := NewScheduler()
	var fired []Time
	for _, d := range []Time{5, 10, 15, 20} {
		d := d * Nanosecond
		s.At(d, func() { fired = append(fired, d) })
	}
	s.RunUntil(12 * Nanosecond)
	if len(fired) != 2 {
		t.Fatalf("fired %d events, want 2", len(fired))
	}
	if s.Now() != 12*Nanosecond {
		t.Errorf("Now = %v, want 12ns", s.Now())
	}
	if s.Pending() != 2 {
		t.Errorf("Pending = %d, want 2", s.Pending())
	}
	s.Run()
	if len(fired) != 4 {
		t.Errorf("fired %d events after Run, want 4", len(fired))
	}
}

func TestSchedulerHalt(t *testing.T) {
	s := NewScheduler()
	count := 0
	for i := 1; i <= 10; i++ {
		s.At(Time(i)*Nanosecond, func() {
			count++
			if count == 3 {
				s.Halt()
			}
		})
	}
	s.Run()
	if count != 3 {
		t.Errorf("count = %d, want 3 (halt after third event)", count)
	}
	if !s.Halted() {
		t.Error("Halted() = false, want true")
	}
}

func TestSchedulerAfterCycles(t *testing.T) {
	s := NewScheduler()
	var at Time
	s.AfterCycles(GPUClock, 5, func() { at = s.Now() })
	s.Run()
	if at != 100*Nanosecond {
		t.Errorf("event at %v, want 100ns (5 GPU cycles)", at)
	}
}

func TestFIFOBasics(t *testing.T) {
	f := NewFIFO[int](3)
	if !f.Empty() || f.Full() || f.Cap() != 3 {
		t.Fatal("fresh FIFO state wrong")
	}
	for i := 1; i <= 3; i++ {
		if !f.Push(i) {
			t.Fatalf("Push(%d) failed on non-full FIFO", i)
		}
	}
	if !f.Full() {
		t.Error("FIFO should be full")
	}
	if f.Push(4) {
		t.Error("Push on full FIFO should fail")
	}
	if f.Overflows() != 1 {
		t.Errorf("Overflows = %d, want 1", f.Overflows())
	}
	if v, ok := f.Peek(); !ok || v != 1 {
		t.Errorf("Peek = %d,%v want 1,true", v, ok)
	}
	for want := 1; want <= 3; want++ {
		v, ok := f.Pop()
		if !ok || v != want {
			t.Errorf("Pop = %d,%v want %d,true", v, ok, want)
		}
	}
	if _, ok := f.Pop(); ok {
		t.Error("Pop on empty FIFO should fail")
	}
	if f.MaxDepth() != 3 {
		t.Errorf("MaxDepth = %d, want 3", f.MaxDepth())
	}
}

func TestFIFOWraparound(t *testing.T) {
	f := NewFIFO[int](4)
	next := 0
	for round := 0; round < 10; round++ {
		for i := 0; i < 3; i++ {
			f.Push(next)
			next++
		}
		for i := 0; i < 3; i++ {
			v, ok := f.Pop()
			if !ok {
				t.Fatal("unexpected empty FIFO")
			}
			if want := next - 3 + i; v != want {
				t.Fatalf("round %d: Pop = %d, want %d", round, v, want)
			}
		}
	}
}

func TestFIFOReset(t *testing.T) {
	f := NewFIFO[byte](2)
	f.Push(1)
	f.Push(2)
	f.Push(3) // overflow
	f.Reset()
	if !f.Empty() || f.Overflows() != 0 || f.Pushes() != 0 || f.MaxDepth() != 0 {
		t.Error("Reset did not clear state")
	}
	if !f.Push(9) {
		t.Error("Push after Reset failed")
	}
}

// Property: a FIFO is order-preserving and loss happens only when full.
func TestFIFOOrderProperty(t *testing.T) {
	prop := func(vals []uint16, capSeed uint8) bool {
		capacity := int(capSeed%16) + 1
		f := NewFIFO[uint16](capacity)
		var accepted []uint16
		for _, v := range vals {
			if f.Push(v) {
				accepted = append(accepted, v)
			} else if f.Len() != capacity {
				return false // drop while not full
			}
		}
		for i := 0; ; i++ {
			v, ok := f.Pop()
			if !ok {
				return i == len(accepted)
			}
			if i >= len(accepted) || v != accepted[i] {
				return false
			}
		}
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: interleaved pushes and pops keep Len consistent with
// Pushes - Pops and never exceed capacity.
func TestFIFOAccountingProperty(t *testing.T) {
	prop := func(ops []bool, capSeed uint8) bool {
		capacity := int(capSeed%8) + 1
		f := NewFIFO[int](capacity)
		for i, push := range ops {
			if push {
				f.Push(i)
			} else {
				f.Pop()
			}
			if f.Len() != int(f.Pushes()-f.Pops()) {
				return false
			}
			if f.Len() > capacity || f.Len() < 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestClockStringAndStd(t *testing.T) {
	if got := CPUClock.String(); got != "cpu@250MHz" {
		t.Errorf("Clock.String = %q", got)
	}
	if CPUClock.Name() != "cpu" {
		t.Error("Name wrong")
	}
	if got := (3 * Microsecond).Std(); got.Microseconds() != 3 {
		t.Errorf("Std = %v", got)
	}
	if got := (1500 * Nanosecond).Microseconds(); got != 1.5 {
		t.Errorf("Microseconds = %g", got)
	}
	if got := (2 * Microsecond).Nanoseconds(); got != 2000 {
		t.Errorf("Nanoseconds = %g", got)
	}
}
