// Package sim provides the discrete-event simulation kernel used by every
// hardware model in the RTAD reproduction: a picosecond-resolution time base,
// per-domain clocks (the FPGA prototype runs the CPU at 250 MHz, the MLPU
// fabric at 125 MHz and ML-MIAOW at 50 MHz), and an event scheduler that
// orders cross-domain interactions deterministically.
package sim

import (
	"fmt"
	"time"
)

// Time is a simulated instant or duration in picoseconds. Picosecond
// resolution lets every clock period used by the prototype (4 ns, 8 ns,
// 20 ns) be represented exactly while still covering about 106 days of
// simulated time in an int64, far beyond any run in this repository.
type Time int64

// Common durations.
const (
	Picosecond  Time = 1
	Nanosecond  Time = 1000 * Picosecond
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// Microseconds reports t as a floating-point microsecond count, the unit the
// paper uses for every latency figure.
func (t Time) Microseconds() float64 { return float64(t) / float64(Microsecond) }

// Nanoseconds reports t as a floating-point nanosecond count.
func (t Time) Nanoseconds() float64 { return float64(t) / float64(Nanosecond) }

// Std converts t to a time.Duration (nanosecond resolution, rounding down).
func (t Time) Std() time.Duration { return time.Duration(t / Nanosecond) }

// String formats t with an auto-selected unit, e.g. "3.62us" or "16ns".
func (t Time) String() string {
	switch {
	case t == 0:
		return "0s"
	case t%Second == 0:
		return fmt.Sprintf("%ds", t/Second)
	case t >= Millisecond:
		return fmt.Sprintf("%gms", float64(t)/float64(Millisecond))
	case t >= Microsecond:
		return fmt.Sprintf("%gus", float64(t)/float64(Microsecond))
	case t >= Nanosecond:
		return fmt.Sprintf("%gns", float64(t)/float64(Nanosecond))
	default:
		return fmt.Sprintf("%dps", int64(t))
	}
}

// A Clock describes one clock domain: a name and an exact period. All
// hardware latencies in the models are expressed as cycle counts and
// converted to Time through the component's Clock, mirroring how the RTL
// prototype derives wall-clock latency from cycle counts at a domain
// frequency.
type Clock struct {
	name   string
	period Time
}

// NewClock returns a clock domain running at hz hertz. It panics if the
// period is not an integral number of picoseconds, because a drifting clock
// would make cross-domain event ordering nondeterministic.
func NewClock(name string, hz int64) *Clock {
	if hz <= 0 {
		panic("sim: clock frequency must be positive")
	}
	if int64(Second)%hz != 0 {
		panic(fmt.Sprintf("sim: %d Hz has a non-integral picosecond period", hz))
	}
	return &Clock{name: name, period: Time(int64(Second) / hz)}
}

// Prototype clock domains from the paper's ZC706 configuration (§IV).
var (
	// CPUClock models the Cortex-A9 host, lowered to 250 MHz to emulate
	// the host/coprocessor frequency ratio of production AP systems.
	CPUClock = NewClock("cpu", 250_000_000)
	// FabricClock models the RTAD fabric (IGM, MCM, interconnect) at 125 MHz.
	FabricClock = NewClock("fabric", 125_000_000)
	// GPUClock models ML-MIAOW, which closes timing at 50 MHz on the FPGA.
	GPUClock = NewClock("gpu", 50_000_000)
)

// Name returns the domain name.
func (c *Clock) Name() string { return c.name }

// Period returns the exact clock period.
func (c *Clock) Period() Time { return c.period }

// Duration converts a cycle count in this domain to simulated time.
func (c *Clock) Duration(cycles int64) Time { return Time(cycles) * c.period }

// Cycles reports how many full periods of this clock fit in d.
func (c *Clock) Cycles(d Time) int64 { return int64(d / c.period) }

// CyclesCeil reports the number of periods needed to cover d completely,
// i.e. the cycle count a synchronous circuit needs to wait at least d.
func (c *Clock) CyclesCeil(d Time) int64 {
	return int64((d + c.period - 1) / c.period)
}

// NextEdge returns the earliest clock edge at or after t. Components that
// sample asynchronous inputs use it to model synchroniser alignment.
func (c *Clock) NextEdge(t Time) Time {
	rem := t % c.period
	if rem == 0 {
		return t
	}
	return t + c.period - rem
}

// String implements fmt.Stringer.
func (c *Clock) String() string {
	return fmt.Sprintf("%s@%gMHz", c.name, float64(Second)/float64(c.period)/1e6)
}
