package sim

// FIFO is a bounded hardware-style queue. Unlike a growable Go slice queue,
// pushing into a full FIFO drops the new element and counts an overflow —
// exactly the loss mode the paper observes on the MCM input FIFO under heavy
// branch pressure (471.omnetpp, §IV-C). The element type is generic so the
// same primitive backs byte-stream FIFOs (PTM, TPIU) and vector FIFOs (MCM).
type FIFO[T any] struct {
	buf       []T
	head      int // index of the oldest element
	size      int
	pushes    int64
	pops      int64
	overflows int64
	maxDepth  int
}

// NewFIFO returns a FIFO with the given capacity. Capacity must be positive.
func NewFIFO[T any](capacity int) *FIFO[T] {
	if capacity <= 0 {
		panic("sim: FIFO capacity must be positive")
	}
	return &FIFO[T]{buf: make([]T, capacity)}
}

// Cap returns the FIFO capacity in elements.
func (f *FIFO[T]) Cap() int { return len(f.buf) }

// Len returns the current occupancy.
func (f *FIFO[T]) Len() int { return f.size }

// Empty reports whether the FIFO holds no elements.
func (f *FIFO[T]) Empty() bool { return f.size == 0 }

// Full reports whether a push would overflow.
func (f *FIFO[T]) Full() bool { return f.size == len(f.buf) }

// Push enqueues v. If the FIFO is full the element is dropped, the overflow
// counter increments, and Push reports false. This models a hardware FIFO
// with no backpressure on its write port.
func (f *FIFO[T]) Push(v T) bool {
	if f.size == len(f.buf) {
		f.overflows++
		return false
	}
	f.buf[(f.head+f.size)%len(f.buf)] = v
	f.size++
	f.pushes++
	if f.size > f.maxDepth {
		f.maxDepth = f.size
	}
	return true
}

// Pop dequeues the oldest element. ok is false when the FIFO is empty.
func (f *FIFO[T]) Pop() (v T, ok bool) {
	if f.size == 0 {
		return v, false
	}
	v = f.buf[f.head]
	var zero T
	f.buf[f.head] = zero
	f.head = (f.head + 1) % len(f.buf)
	f.size--
	f.pops++
	return v, true
}

// Peek returns the oldest element without removing it.
func (f *FIFO[T]) Peek() (v T, ok bool) {
	if f.size == 0 {
		return v, false
	}
	return f.buf[f.head], true
}

// Overflows reports how many pushes were dropped because the FIFO was full.
func (f *FIFO[T]) Overflows() int64 { return f.overflows }

// Pushes reports the number of accepted pushes.
func (f *FIFO[T]) Pushes() int64 { return f.pushes }

// Pops reports the number of pops.
func (f *FIFO[T]) Pops() int64 { return f.pops }

// MaxDepth reports the high-water mark reached since construction, useful
// for sizing studies and the FIFO-pressure analysis behind Fig 8.
func (f *FIFO[T]) MaxDepth() int { return f.maxDepth }

// QueueStats is the uniform occupancy/loss snapshot every buffering stage of
// the trace-delivery chain exposes: current depth, high-water mark, elements
// lost to overflow, and the accepted/dropped totals that make the stage's
// loss rate computable from one snapshot (loss = Dropped/(Accepted+Dropped)).
// It is the statistics set a FIFO keeps natively; stages that model their
// buffer analytically construct the same set from their own counters. For
// lossless stages (the PTM port backpressures, the TPIU formatter always
// buffers, the IGM filters rather than drops) Dropped and Overflows are 0 by
// construction, and Accepted still counts admitted elements.
type QueueStats struct {
	Len       int
	MaxDepth  int
	Overflows int64
	// Accepted counts elements admitted into the stage's buffer.
	Accepted int64
	// Dropped counts elements refused by the stage. For a hardware FIFO
	// with no write-port backpressure this equals Overflows; stages with
	// other loss modes may count additional losses here.
	Dropped int64
}

// LossRate reports the fraction of offered elements the stage lost
// (0 when nothing was offered).
func (q QueueStats) LossRate() float64 {
	offered := q.Accepted + q.Dropped
	if offered == 0 {
		return 0
	}
	return float64(q.Dropped) / float64(offered)
}

// QueueStats returns the FIFO's occupancy/loss snapshot.
func (f *FIFO[T]) QueueStats() QueueStats {
	return QueueStats{
		Len: f.size, MaxDepth: f.maxDepth, Overflows: f.overflows,
		Accepted: f.pushes, Dropped: f.overflows,
	}
}

// Reset empties the FIFO and clears all statistics.
func (f *FIFO[T]) Reset() {
	var zero T
	for i := range f.buf {
		f.buf[i] = zero
	}
	f.head, f.size = 0, 0
	f.pushes, f.pops, f.overflows, f.maxDepth = 0, 0, 0, 0
}
