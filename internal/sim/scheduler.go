package sim

import (
	"fmt"

	"rtad/internal/obs"
)

// An event is one scheduled callback. Events at equal times fire in
// scheduling order (seq), which keeps multi-domain runs deterministic.
// Events are stored by value: the scheduler's containers reuse their
// backing arrays across the run, so steady-state scheduling allocates
// nothing (the vacated slots are the closure free-list).
type event struct {
	at  Time
	seq int64
	fn  func()
}

// before orders events by (time, scheduling sequence).
func (e event) before(o event) bool {
	if e.at != o.at {
		return e.at < o.at
	}
	return e.seq < o.seq
}

// Scheduler is a single-threaded discrete-event executor. Hardware models
// post callbacks at absolute or relative times; Run drains them in time
// order. It is deliberately not goroutine-safe: RTL-style models are easier
// to reason about (and to reproduce cycle-exact results with) when all state
// mutation happens on one logical timeline.
//
// Internally the queue is split in two:
//
//   - lane, a FIFO ring holding events appended in non-decreasing time
//     order. The dominant scheduling pattern — "post at now+Δ, pop
//     immediately", and the monotone judgment-delivery bursts of
//     core.Session — stays entirely in this lane: O(1) append, O(1) pop,
//     no heap churn.
//   - queue, a value-typed binary min-heap catching the rare out-of-order
//     posting.
//
// Step always fires the globally earliest event (ties broken by scheduling
// sequence), so the split is invisible to callers: event order is identical
// to a single heap. Popped slots are cleared and reused, so a scheduler in
// steady state performs zero allocations.
type Scheduler struct {
	now    Time
	queue  []event // min-heap ordered by event.before
	lane   []event // FIFO ring of monotone-time events; laneHead is the front
	laneHd int
	seq    int64
	fired  int64
	halted bool

	// Telemetry hooks, nil by default (see Observe). They record executed
	// events and the timeline head; nil metric receivers make the Step hot
	// path a single pointer test when telemetry is off.
	obsEvents *obs.Counter
	obsNow    *obs.Gauge
}

// NewScheduler returns an empty scheduler at time zero.
func NewScheduler() *Scheduler { return &Scheduler{} }

// Observe attaches telemetry: executed events count into
// rtad_sim_events_total and the timeline head lands in rtad_sim_now_ps.
// A nil bundle detaches. Observation never alters event order or timing,
// so instrumented runs stay bit-identical.
func (s *Scheduler) Observe(tel *obs.Telemetry) {
	s.obsEvents = tel.Counter("rtad_sim_events_total")
	s.obsNow = tel.Gauge("rtad_sim_now_ps")
}

// Now returns the current simulated time.
func (s *Scheduler) Now() Time { return s.now }

// Fired reports how many events have executed, a cheap progress metric for
// tests and the CLI tools.
func (s *Scheduler) Fired() int64 { return s.fired }

// Pending reports the number of queued events.
func (s *Scheduler) Pending() int { return len(s.queue) + len(s.lane) - s.laneHd }

// At schedules fn at absolute time t. Scheduling in the past panics: it
// always indicates a model bug (a component reacting before its stimulus).
func (s *Scheduler) At(t Time, fn func()) {
	if t < s.now {
		panic(fmt.Sprintf("sim: event scheduled at %v before now %v", t, s.now))
	}
	s.seq++
	ev := event{at: t, seq: s.seq, fn: fn}
	// Fast lane: events posted in non-decreasing time order form a FIFO
	// that is already sorted (equal times fall back to seq order, which is
	// append order). Only an out-of-order post pays for the heap.
	if len(s.lane) == s.laneHd || t >= s.lane[len(s.lane)-1].at {
		s.lane = append(s.lane, ev)
		return
	}
	s.heapPush(ev)
}

// After schedules fn d after the current time.
func (s *Scheduler) After(d Time, fn func()) { s.At(s.now+d, fn) }

// AfterCycles schedules fn n cycles of clock c after the current time.
func (s *Scheduler) AfterCycles(c *Clock, n int64, fn func()) {
	s.At(s.now+c.Duration(n), fn)
}

// Halt stops Run/RunUntil after the in-flight event completes. Components
// use it to end a simulation early (e.g. once an interrupt has been
// delivered and measured).
func (s *Scheduler) Halt() { s.halted = true }

// Halted reports whether Halt has been called.
func (s *Scheduler) Halted() bool { return s.halted }

// peek returns the earliest pending event without removing it.
func (s *Scheduler) peek() (event, bool) {
	laneOK := s.laneHd < len(s.lane)
	heapOK := len(s.queue) > 0
	switch {
	case laneOK && heapOK:
		if s.queue[0].before(s.lane[s.laneHd]) {
			return s.queue[0], true
		}
		return s.lane[s.laneHd], true
	case laneOK:
		return s.lane[s.laneHd], true
	case heapOK:
		return s.queue[0], true
	}
	return event{}, false
}

// pop removes and returns the earliest pending event. The vacated slot is
// cleared so the GC can reclaim the closure while the backing array is
// retained for reuse.
func (s *Scheduler) pop() event {
	laneOK := s.laneHd < len(s.lane)
	if laneOK && (len(s.queue) == 0 || s.lane[s.laneHd].before(s.queue[0])) {
		e := s.lane[s.laneHd]
		s.lane[s.laneHd].fn = nil
		s.laneHd++
		if s.laneHd == len(s.lane) {
			s.lane = s.lane[:0]
			s.laneHd = 0
		} else if s.laneHd > 1024 && s.laneHd*2 >= len(s.lane) {
			// Amortised compaction bounds lane memory when the ring never
			// fully drains (a producer always one event ahead).
			n := copy(s.lane, s.lane[s.laneHd:])
			s.lane = s.lane[:n]
			s.laneHd = 0
		}
		return e
	}
	return s.heapPop()
}

// Step executes the earliest pending event and returns true, or returns
// false if the queue is empty or the scheduler is halted.
func (s *Scheduler) Step() bool {
	if s.halted || s.Pending() == 0 {
		return false
	}
	e := s.pop()
	s.now = e.at
	s.fired++
	if s.obsEvents != nil {
		s.obsEvents.Inc()
		s.obsNow.Set(int64(s.now))
	}
	e.fn()
	return true
}

// Run drains the event queue until it is empty or Halt is called.
func (s *Scheduler) Run() {
	for s.Step() {
	}
}

// RunUntil executes events with timestamps <= deadline, then advances the
// clock to the deadline (if it is in the future). Events scheduled beyond
// the deadline remain queued.
func (s *Scheduler) RunUntil(deadline Time) {
	for !s.halted {
		e, ok := s.peek()
		if !ok || e.at > deadline {
			break
		}
		s.Step()
	}
	if !s.halted && s.now < deadline {
		s.now = deadline
	}
}

// heapPush inserts ev into the overflow min-heap (sift-up).
func (s *Scheduler) heapPush(ev event) {
	s.queue = append(s.queue, ev)
	i := len(s.queue) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !s.queue[i].before(s.queue[parent]) {
			break
		}
		s.queue[i], s.queue[parent] = s.queue[parent], s.queue[i]
		i = parent
	}
}

// heapPop removes the overflow heap's minimum (sift-down).
func (s *Scheduler) heapPop() event {
	e := s.queue[0]
	n := len(s.queue) - 1
	s.queue[0] = s.queue[n]
	s.queue[n].fn = nil
	s.queue = s.queue[:n]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		min := i
		if l < n && s.queue[l].before(s.queue[min]) {
			min = l
		}
		if r < n && s.queue[r].before(s.queue[min]) {
			min = r
		}
		if min == i {
			break
		}
		s.queue[i], s.queue[min] = s.queue[min], s.queue[i]
		i = min
	}
	return e
}
