package sim

import (
	"container/heap"
	"fmt"

	"rtad/internal/obs"
)

// An event is one scheduled callback. Events at equal times fire in
// scheduling order (seq), which keeps multi-domain runs deterministic.
type event struct {
	at  Time
	seq int64
	fn  func()
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// Scheduler is a single-threaded discrete-event executor. Hardware models
// post callbacks at absolute or relative times; Run drains them in time
// order. It is deliberately not goroutine-safe: RTL-style models are easier
// to reason about (and to reproduce cycle-exact results with) when all state
// mutation happens on one logical timeline.
type Scheduler struct {
	now    Time
	queue  eventHeap
	seq    int64
	fired  int64
	halted bool

	// Telemetry hooks, nil by default (see Observe). They record executed
	// events and the timeline head; nil metric receivers make the Step hot
	// path a single pointer test when telemetry is off.
	obsEvents *obs.Counter
	obsNow    *obs.Gauge
}

// NewScheduler returns an empty scheduler at time zero.
func NewScheduler() *Scheduler { return &Scheduler{} }

// Observe attaches telemetry: executed events count into
// rtad_sim_events_total and the timeline head lands in rtad_sim_now_ps.
// A nil bundle detaches. Observation never alters event order or timing,
// so instrumented runs stay bit-identical.
func (s *Scheduler) Observe(tel *obs.Telemetry) {
	s.obsEvents = tel.Counter("rtad_sim_events_total")
	s.obsNow = tel.Gauge("rtad_sim_now_ps")
}

// Now returns the current simulated time.
func (s *Scheduler) Now() Time { return s.now }

// Fired reports how many events have executed, a cheap progress metric for
// tests and the CLI tools.
func (s *Scheduler) Fired() int64 { return s.fired }

// Pending reports the number of queued events.
func (s *Scheduler) Pending() int { return len(s.queue) }

// At schedules fn at absolute time t. Scheduling in the past panics: it
// always indicates a model bug (a component reacting before its stimulus).
func (s *Scheduler) At(t Time, fn func()) {
	if t < s.now {
		panic(fmt.Sprintf("sim: event scheduled at %v before now %v", t, s.now))
	}
	s.seq++
	heap.Push(&s.queue, &event{at: t, seq: s.seq, fn: fn})
}

// After schedules fn d after the current time.
func (s *Scheduler) After(d Time, fn func()) { s.At(s.now+d, fn) }

// AfterCycles schedules fn n cycles of clock c after the current time.
func (s *Scheduler) AfterCycles(c *Clock, n int64, fn func()) {
	s.At(s.now+c.Duration(n), fn)
}

// Halt stops Run/RunUntil after the in-flight event completes. Components
// use it to end a simulation early (e.g. once an interrupt has been
// delivered and measured).
func (s *Scheduler) Halt() { s.halted = true }

// Halted reports whether Halt has been called.
func (s *Scheduler) Halted() bool { return s.halted }

// Step executes the earliest pending event and returns true, or returns
// false if the queue is empty or the scheduler is halted.
func (s *Scheduler) Step() bool {
	if s.halted || len(s.queue) == 0 {
		return false
	}
	e := heap.Pop(&s.queue).(*event)
	s.now = e.at
	s.fired++
	if s.obsEvents != nil {
		s.obsEvents.Inc()
		s.obsNow.Set(int64(s.now))
	}
	e.fn()
	return true
}

// Run drains the event queue until it is empty or Halt is called.
func (s *Scheduler) Run() {
	for s.Step() {
	}
}

// RunUntil executes events with timestamps <= deadline, then advances the
// clock to the deadline (if it is in the future). Events scheduled beyond
// the deadline remain queued.
func (s *Scheduler) RunUntil(deadline Time) {
	for !s.halted && len(s.queue) > 0 && s.queue[0].at <= deadline {
		s.Step()
	}
	if !s.halted && s.now < deadline {
		s.now = deadline
	}
}
