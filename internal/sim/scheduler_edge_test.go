package sim

import (
	"math/rand"
	"testing"
)

// TestSchedulerEqualTimeFIFO checks that events posted at the same instant
// fire in scheduling order regardless of which internal container (fast lane
// or overflow heap) holds them.
func TestSchedulerEqualTimeFIFO(t *testing.T) {
	s := NewScheduler()
	var got []int
	// Force some equal-time events through the heap: post a far event first
	// so later, earlier-time posts are out of order.
	s.At(100, func() { got = append(got, 100) })
	for i := 0; i < 8; i++ {
		i := i
		s.At(50, func() { got = append(got, i) })
	}
	// And an equal-time batch through the lane (posted after everything at
	// earlier times already drained below them in the queue).
	for i := 8; i < 12; i++ {
		i := i
		s.At(100, func() { got = append(got, 200+i) })
	}
	s.Run()
	want := []int{0, 1, 2, 3, 4, 5, 6, 7, 100, 208, 209, 210, 211}
	if len(got) != len(want) {
		t.Fatalf("fired %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("fired %v, want %v", got, want)
		}
	}
}

// TestSchedulerFreeListDeterminism runs the same randomised schedule twice
// through one scheduler instance (so the second run replays over recycled
// slots) and checks the firing order is identical: slot reuse must never
// affect event order.
func TestSchedulerFreeListDeterminism(t *testing.T) {
	run := func(s *Scheduler, base Time) []Time {
		rng := rand.New(rand.NewSource(7))
		var fired []Time
		var post func(depth int)
		post = func(depth int) {
			if depth == 0 {
				return
			}
			d := Time(rng.Intn(50))
			s.After(d, func() {
				fired = append(fired, s.Now()-base)
				post(depth - 1)
			})
		}
		for i := 0; i < 16; i++ {
			s.At(base+Time(rng.Intn(200)), func() { fired = append(fired, s.Now()-base) })
		}
		post(64)
		s.Run()
		return fired
	}
	s := NewScheduler()
	first := run(s, 0)
	second := run(s, s.Now()) // replays over the free-listed slots
	if len(first) != len(second) {
		t.Fatalf("first run fired %d, second %d", len(first), len(second))
	}
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("divergence at event %d: %v vs %v", i, first[i], second[i])
		}
	}
}

// TestSchedulerRunUntilExact checks the boundary semantics: RunUntil fires
// events AT the deadline, leaves later ones queued, and lands now exactly on
// the deadline.
func TestSchedulerRunUntilExact(t *testing.T) {
	s := NewScheduler()
	var atDeadline, after bool
	s.At(10, func() { atDeadline = true })
	s.At(11, func() { after = true })
	s.RunUntil(10)
	if !atDeadline {
		t.Fatal("event at the exact deadline did not fire")
	}
	if after {
		t.Fatal("event after the deadline fired")
	}
	if s.Now() != 10 {
		t.Fatalf("now = %v, want 10", s.Now())
	}
	if s.Pending() != 1 {
		t.Fatalf("pending = %d, want 1", s.Pending())
	}
	// A second RunUntil past the remaining event drains it.
	s.RunUntil(20)
	if !after {
		t.Fatal("remaining event did not fire")
	}
	if s.Now() != 20 {
		t.Fatalf("now = %v, want 20 (idle advance)", s.Now())
	}
}

// TestSchedulerHaltMidDrain halts from inside an event and checks that the
// remaining events stay queued, then that clearing is NOT implicit: a fresh
// Run after un-halting (new scheduler semantics keep Halt sticky) does not
// fire them.
func TestSchedulerHaltMidDrain(t *testing.T) {
	s := NewScheduler()
	var fired []int
	for i := 0; i < 10; i++ {
		i := i
		s.At(Time(i), func() {
			fired = append(fired, i)
			if i == 4 {
				s.Halt()
			}
		})
	}
	s.Run()
	if len(fired) != 5 {
		t.Fatalf("fired %d events, want 5 (halt after the in-flight event)", len(fired))
	}
	if s.Pending() != 5 {
		t.Fatalf("pending = %d, want 5", s.Pending())
	}
	if !s.Halted() {
		t.Fatal("Halted() = false after Halt")
	}
	// Halt is sticky: further Step/Run calls are no-ops.
	if s.Step() {
		t.Fatal("Step succeeded on a halted scheduler")
	}
	s.Run()
	if len(fired) != 5 {
		t.Fatal("Run fired events on a halted scheduler")
	}
}

// TestSchedulerOutOfOrderStress interleaves monotone and out-of-order posts
// so both containers stay populated, and verifies global (time, seq) order.
func TestSchedulerOutOfOrderStress(t *testing.T) {
	s := NewScheduler()
	rng := rand.New(rand.NewSource(42))
	type stamp struct {
		at  Time
		idx int
	}
	var fired []stamp
	n := 5000
	for i := 0; i < n; i++ {
		i := i
		var at Time
		if i%3 == 0 {
			at = Time(rng.Intn(10000)) // out of order: heap path
		} else {
			at = Time(i * 2) // monotone: lane path
		}
		s.At(at, func() { fired = append(fired, stamp{at: s.Now(), idx: i}) })
	}
	s.Run()
	if len(fired) != n {
		t.Fatalf("fired %d, want %d", len(fired), n)
	}
	for i := 1; i < n; i++ {
		if fired[i].at < fired[i-1].at {
			t.Fatalf("time went backwards at %d: %v after %v", i, fired[i].at, fired[i-1].at)
		}
	}
}

// TestSchedulerSteadyStateAllocs drives the dominant scheduling pattern
// (post at now+Δ, pop immediately) and asserts the steady state allocates
// nothing per event: the lane ring and cleared slots are reused.
func TestSchedulerSteadyStateAllocs(t *testing.T) {
	s := NewScheduler()
	var tick func()
	n := 0
	tick = func() {
		n++
		if n < 10000 {
			s.After(8, tick)
		}
	}
	// Warm up the ring and let append growth settle.
	s.After(8, tick)
	s.Run()

	allocs := testing.AllocsPerRun(100, func() {
		s.After(8, func() {})
		s.Step()
	})
	if allocs > 0 {
		t.Fatalf("steady-state schedule+step allocates %.1f objects/op, want 0", allocs)
	}
}

// TestSchedulerLaneCompaction keeps the lane permanently non-empty (the
// producer is always one event ahead) long enough to cross the compaction
// threshold, and checks ordering and memory bounds survive it.
func TestSchedulerLaneCompaction(t *testing.T) {
	s := NewScheduler()
	var last Time = -1
	var steps int
	var tick func()
	tick = func() {
		if s.Now() < last {
			t.Fatalf("time went backwards: %v after %v", s.Now(), last)
		}
		last = s.Now()
		steps++
		if steps < 5000 {
			// Two pending at all times: the lane never fully drains, so only
			// the compaction path can reclaim popped slots.
			s.After(2, tick)
		}
	}
	s.After(1, tick)
	s.After(2, func() {})
	s.Run()
	if steps != 5000 {
		t.Fatalf("steps = %d, want 5000", steps)
	}
	if cap(s.lane) > 8192 {
		t.Fatalf("lane capacity grew to %d; compaction is not bounding it", cap(s.lane))
	}
}
