package gpu

import (
	"fmt"

	"rtad/internal/obs"
)

// Q is the fixed-point scale: values are Q16.16 (1.0 == 1<<16).
const Q = 16

// QOne is 1.0 in Q16.16.
const QOne int32 = 1 << Q

// MulQ multiplies two Q16.16 values with a 64-bit intermediate, the
// reference semantics of v_mul_q16.
func MulQ(a, b int32) int32 { return int32(int64(a) * int64(b) >> Q) }

// Device is a MIAOW-style compute device: shared global memory plus a
// number of identical compute units. MIAOW proper fits a single CU on the
// ZC706; the trimmed ML-MIAOW fits five (§IV-A). One Device instance
// represents either, depending on NumCU and the trim set.
type Device struct {
	Mem   []uint32
	NumCU int

	coverage *CoverageSet
	keep     *CoverageSet // non-nil: trimmed device, only these blocks exist

	obsDispatches *obs.Counter
	obsWavefronts *obs.Counter
	obsInstrs     *obs.Counter
	obsCycles     *obs.Counter
}

// Observe attaches telemetry counters for dispatches, wavefronts, dynamic
// instructions and makespan cycles. A nil bundle detaches. The device has
// no sim-time notion of its own (the MCM anchors kernel makespans on the
// timeline), so it contributes counters, not trace spans.
func (d *Device) Observe(tel *obs.Telemetry) {
	d.obsDispatches = tel.Counter("rtad_gpu_dispatches_total")
	d.obsWavefronts = tel.Counter("rtad_gpu_wavefronts_total")
	d.obsInstrs = tel.Counter("rtad_gpu_instructions_total")
	d.obsCycles = tel.Counter("rtad_gpu_cycles_total")
}

// DispatchOverheadCycles is the fixed cost of launching one wavefront on a
// CU (control-register writes and fetch warm-up).
const DispatchOverheadCycles int64 = 12

// DefaultMaxInstrs bounds runaway kernels.
const DefaultMaxInstrs int64 = 4 << 20

// NewDevice returns a device with memWords of global memory and numCU
// compute units.
func NewDevice(memWords, numCU int) *Device {
	if numCU <= 0 {
		numCU = 1
	}
	return &Device{
		Mem:   make([]uint32, memWords),
		NumCU: numCU,
	}
}

// EnableCoverage starts block-coverage collection (the "coverage on" switch
// of the trimming flow's dynamic simulation step).
func (d *Device) EnableCoverage() {
	d.coverage = &CoverageSet{}
}

// Coverage returns the collected coverage set.
func (d *Device) Coverage() CoverageSet {
	if d.coverage == nil {
		return CoverageSet{}
	}
	return *d.coverage
}

// SetTrim restricts the device to the given block set: the trimmed
// ML-MIAOW. Executing an instruction that needs a missing block returns a
// trap error from Run.
func (d *Device) SetTrim(keep CoverageSet) {
	k := keep
	d.keep = &k
}

// Trimmed reports whether the device is a trimmed variant.
func (d *Device) Trimmed() bool { return d.keep != nil }

// WriteWords copies words into global memory at word address addr.
func (d *Device) WriteWords(addr uint32, words []uint32) error {
	if int(addr)+len(words) > len(d.Mem) {
		return fmt.Errorf("gpu: write beyond memory at %#x+%d", addr, len(words))
	}
	copy(d.Mem[addr:], words)
	return nil
}

// ReadWords copies n words from global memory at word address addr.
func (d *Device) ReadWords(addr uint32, n int) ([]uint32, error) {
	if int(addr)+n > len(d.Mem) {
		return nil, fmt.Errorf("gpu: read beyond memory at %#x+%d", addr, n)
	}
	out := make([]uint32, n)
	copy(out, d.Mem[addr:])
	return out, nil
}

// Dispatch describes one kernel launch.
type Dispatch struct {
	Kernel *Kernel
	// Wavefronts is the grid size; wavefront w sees its index in s15.
	Wavefronts int
	// LanesPerWave sets the initial EXEC mask width (1–64; 0 means 64).
	LanesPerWave int
	// SArgs preloads s0.. with kernel arguments (pointers, sizes).
	SArgs []uint32
	// MaxInstrs bounds per-wavefront execution (0 = DefaultMaxInstrs).
	MaxInstrs int64
}

// Result reports a completed dispatch.
type Result struct {
	// Cycles is the makespan: dispatch start to last wavefront retired,
	// with wavefronts scheduled greedily across the CUs.
	Cycles int64
	// Instructions is the total dynamic instruction count.
	Instructions int64
	// WaveCycles is each wavefront's own execution time.
	WaveCycles []int64
}

// WaveIDSGPR is the SGPR carrying the wavefront index at launch.
const WaveIDSGPR = 15

// Run executes a dispatch to completion and returns its timing. The device
// memory reflects all stores afterwards. Wavefronts run sequentially in
// wave order (the model is single-issue per CU with no preemption), so
// results are deterministic regardless of CU count.
func (d *Device) Run(disp Dispatch) (*Result, error) {
	if disp.Kernel == nil || len(disp.Kernel.Code) == 0 {
		return nil, fmt.Errorf("gpu: empty kernel")
	}
	waves := disp.Wavefronts
	if waves <= 0 {
		waves = 1
	}
	lanes := disp.LanesPerWave
	if lanes <= 0 || lanes > WaveLanes {
		lanes = WaveLanes
	}
	maxInstrs := disp.MaxInstrs
	if maxInstrs <= 0 {
		maxInstrs = DefaultMaxInstrs
	}

	res := &Result{WaveCycles: make([]int64, 0, waves)}
	for w := 0; w < waves; w++ {
		cycles, instrs, err := d.runWave(disp.Kernel, uint32(w), lanes, disp.SArgs, maxInstrs)
		if err != nil {
			return nil, fmt.Errorf("gpu: kernel %s wave %d: %w", disp.Kernel.Name, w, err)
		}
		res.WaveCycles = append(res.WaveCycles, cycles+DispatchOverheadCycles)
		res.Instructions += instrs
	}
	// Greedy earliest-free scheduling of the wavefronts onto the CUs.
	free := make([]int64, d.NumCU)
	var makespan int64
	for _, wc := range res.WaveCycles {
		best := 0
		for i := 1; i < len(free); i++ {
			if free[i] < free[best] {
				best = i
			}
		}
		free[best] += wc
		if free[best] > makespan {
			makespan = free[best]
		}
	}
	res.Cycles = makespan
	d.obsDispatches.Inc()
	d.obsWavefronts.Add(int64(waves))
	d.obsInstrs.Add(res.Instructions)
	d.obsCycles.Add(res.Cycles)
	return res, nil
}

// wavefront execution state.
type waveState struct {
	sgpr [NumSGPR]uint32
	vgpr [NumVGPR][WaveLanes]int32
	exec [WaveLanes]bool
	vcc  [WaveLanes]bool
	scc  bool
	lds  []uint32
}

// touch records coverage and enforces trims for one op.
func (d *Device) touch(op Op) error {
	if d.coverage != nil {
		for _, b := range infraBlocks {
			d.coverage[b] = true
		}
		for _, b := range OpBlocks(op) {
			d.coverage[b] = true
		}
	}
	if d.keep != nil {
		for _, b := range OpBlocks(op) {
			if !d.keep[b] {
				return fmt.Errorf("trap: %v requires trimmed block %v", op, b)
			}
		}
	}
	return nil
}

func (d *Device) runWave(k *Kernel, waveID uint32, lanes int, sargs []uint32, maxInstrs int64) (cycles, instrs int64, err error) {
	st := &waveState{lds: make([]uint32, LDSWords)}
	for i, v := range sargs {
		if i >= NumSGPR {
			break
		}
		st.sgpr[i] = v
	}
	st.sgpr[WaveIDSGPR] = waveID
	for l := 0; l < lanes; l++ {
		st.exec[l] = true
		st.vgpr[0][l] = int32(l) // v0 = lane id, as at SI dispatch
	}

	sval := func(o Operand) int32 {
		switch o.Kind {
		case OpSReg:
			return int32(st.sgpr[o.Reg])
		case OpImm:
			return o.Imm
		}
		return 0
	}
	vval := func(o Operand, lane int) int32 {
		switch o.Kind {
		case OpVReg:
			return st.vgpr[o.Reg][lane]
		case OpSReg:
			return int32(st.sgpr[o.Reg])
		case OpImm:
			return o.Imm
		}
		return 0
	}

	pc := 0
	for {
		if pc < 0 || pc >= len(k.Code) {
			return cycles, instrs, fmt.Errorf("pc %d out of kernel", pc)
		}
		ins := k.Code[pc]
		if err := d.touch(ins.Op); err != nil {
			return cycles, instrs, err
		}
		instrs++
		cycles += ins.Op.Cycles()
		if instrs > maxInstrs {
			return cycles, instrs, fmt.Errorf("instruction budget exceeded (%d)", maxInstrs)
		}
		next := pc + 1

		switch ins.Op {
		case SNOP, SBARRIER:
		case SENDPGM:
			return cycles, instrs, nil
		case SMOV:
			st.sgpr[ins.Dst.Reg] = uint32(sval(ins.A))
		case SADD:
			st.sgpr[ins.Dst.Reg] = uint32(sval(ins.A) + sval(ins.B))
		case SSUB:
			st.sgpr[ins.Dst.Reg] = uint32(sval(ins.A) - sval(ins.B))
		case SMUL:
			st.sgpr[ins.Dst.Reg] = uint32(sval(ins.A) * sval(ins.B))
		case SAND:
			st.sgpr[ins.Dst.Reg] = uint32(sval(ins.A) & sval(ins.B))
		case SOR:
			st.sgpr[ins.Dst.Reg] = uint32(sval(ins.A) | sval(ins.B))
		case SXOR:
			st.sgpr[ins.Dst.Reg] = uint32(sval(ins.A) ^ sval(ins.B))
		case SLSL:
			st.sgpr[ins.Dst.Reg] = uint32(sval(ins.A)) << (uint32(sval(ins.B)) & 31)
		case SLSR:
			st.sgpr[ins.Dst.Reg] = uint32(sval(ins.A)) >> (uint32(sval(ins.B)) & 31)
		case SCMPLT:
			st.scc = sval(ins.A) < sval(ins.B)
		case SCMPLE:
			st.scc = sval(ins.A) <= sval(ins.B)
		case SCMPEQ:
			st.scc = sval(ins.A) == sval(ins.B)
		case SCMPNE:
			st.scc = sval(ins.A) != sval(ins.B)
		case SCMPGT:
			st.scc = sval(ins.A) > sval(ins.B)
		case SCMPGE:
			st.scc = sval(ins.A) >= sval(ins.B)
		case SBRANCH:
			next = int(ins.Imm)
			cycles += BranchTakenPenalty
		case SCBRANCH1:
			if st.scc {
				next = int(ins.Imm)
				cycles += BranchTakenPenalty
			}
		case SCBRANCH0:
			if !st.scc {
				next = int(ins.Imm)
				cycles += BranchTakenPenalty
			}
		case SSETEXECALL:
			for l := range st.exec {
				st.exec[l] = true
			}
		case SSETEXECVCC:
			st.exec = st.vcc
		case SSETEXECCNT:
			for l := range st.exec {
				st.exec[l] = l < int(ins.Imm)
			}
		case SLOADW:
			addr := uint32(sval(ins.A)) + uint32(ins.Imm)
			if int(addr) >= len(d.Mem) {
				return cycles, instrs, fmt.Errorf("s_load out of memory at %#x", addr)
			}
			st.sgpr[ins.Dst.Reg] = d.Mem[addr]
		case SSTOREW:
			addr := uint32(sval(ins.B)) + uint32(ins.Imm)
			if int(addr) >= len(d.Mem) {
				return cycles, instrs, fmt.Errorf("s_store out of memory at %#x", addr)
			}
			d.Mem[addr] = uint32(sval(ins.A))

		case VMOV, VADD, VSUB, VMUL, VMULQ, VMACQ, VAND, VOR, VXOR,
			VLSL, VLSR, VASR, VMIN, VMAX, VCNDMASK:
			for l := 0; l < WaveLanes; l++ {
				if !st.exec[l] {
					continue
				}
				a := vval(ins.A, l)
				b := vval(ins.B, l)
				var r int32
				switch ins.Op {
				case VMOV:
					r = a
				case VADD:
					r = a + b
				case VSUB:
					r = a - b
				case VMUL:
					r = a * b
				case VMULQ:
					r = MulQ(a, b)
				case VMACQ:
					r = st.vgpr[ins.Dst.Reg][l] + MulQ(a, b)
				case VAND:
					r = a & b
				case VOR:
					r = a | b
				case VXOR:
					r = a ^ b
				case VLSL:
					r = int32(uint32(a) << (uint32(b) & 31))
				case VLSR:
					r = int32(uint32(a) >> (uint32(b) & 31))
				case VASR:
					r = a >> (uint32(b) & 31)
				case VMIN:
					if r = a; b < a {
						r = b
					}
				case VMAX:
					if r = a; b > a {
						r = b
					}
				case VCNDMASK:
					if r = b; st.vcc[l] {
						r = a
					}
				}
				st.vgpr[ins.Dst.Reg][l] = r
			}
		case VCMPLT, VCMPEQ, VCMPGT:
			for l := 0; l < WaveLanes; l++ {
				if !st.exec[l] {
					st.vcc[l] = false
					continue
				}
				a := vval(ins.A, l)
				b := vval(ins.B, l)
				switch ins.Op {
				case VCMPLT:
					st.vcc[l] = a < b
				case VCMPEQ:
					st.vcc[l] = a == b
				case VCMPGT:
					st.vcc[l] = a > b
				}
			}
		case VREADLANE:
			st.sgpr[ins.Dst.Reg] = uint32(st.vgpr[ins.A.Reg][ins.Imm])

		case DSREAD, DSWRITE:
			for l := 0; l < WaveLanes; l++ {
				if !st.exec[l] {
					continue
				}
				var addr uint32
				if ins.Op == DSREAD {
					addr = uint32(vval(ins.A, l)) + uint32(ins.Imm)
				} else {
					addr = uint32(vval(ins.B, l)) + uint32(ins.Imm)
				}
				if int(addr) >= LDSWords {
					return cycles, instrs, fmt.Errorf("LDS access out of range at %#x", addr)
				}
				if ins.Op == DSREAD {
					st.vgpr[ins.Dst.Reg][l] = int32(st.lds[addr])
				} else {
					st.lds[addr] = uint32(vval(ins.A, l))
				}
			}
		case FLATLOAD, FLATSTORE:
			for l := 0; l < WaveLanes; l++ {
				if !st.exec[l] {
					continue
				}
				var addr uint32
				if ins.Op == FLATLOAD {
					addr = uint32(vval(ins.A, l)) + uint32(ins.Imm)
				} else {
					addr = uint32(vval(ins.B, l)) + uint32(ins.Imm)
				}
				if int(addr) >= len(d.Mem) {
					return cycles, instrs, fmt.Errorf("flat access out of memory at %#x", addr)
				}
				if ins.Op == FLATLOAD {
					st.vgpr[ins.Dst.Reg][l] = int32(d.Mem[addr])
				} else {
					d.Mem[addr] = uint32(vval(ins.A, l))
				}
			}
		default:
			return cycles, instrs, fmt.Errorf("unimplemented op %v", ins.Op)
		}
		pc = next
	}
}
