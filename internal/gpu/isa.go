// Package gpu implements the MIAOW-derived compute engine at the heart of
// RTAD's ML computing module. It is a programmable SIMT core executing a
// Southern-Islands-flavoured instruction subset: scalar ALU + control flow,
// a 64-lane vector datapath (issued over four beats of a 16-lane ALU, as in
// SI hardware), scalar and vector memory, and an LDS scratchpad. Integer
// and Q16.16 fixed-point arithmetic cover the inference kernels' needs.
//
// Two properties make this a faithful stand-in for the paper's RTL:
//
//  1. Cycle accounting. Every instruction charges a documented cost, so a
//     kernel's cycle count at the 50 MHz prototype clock gives the same
//     latency quantity the paper measures in Figs 7–8.
//  2. HDL-block coverage. Every instruction maps to named hardware blocks
//     (decode sub-blocks, execution units, datapath infrastructure). Running
//     kernels with coverage enabled marks blocks, exactly like HDL line
//     coverage in the paper's Incisive flow, and the trimming pass
//     (internal/trim) removes unmarked blocks. Executing an instruction
//     whose block was trimmed is a hardware trap.
package gpu

import "fmt"

// WaveLanes is the wavefront width; VALULanes the physical vector ALU width
// (a wavefront issues over WaveLanes/VALULanes beats).
const (
	WaveLanes = 64
	VALULanes = 16
	ValuBeats = WaveLanes / VALULanes
)

// Register-file and LDS sizing per compute unit.
const (
	NumSGPR  = 32
	NumVGPR  = 32
	LDSWords = 16 * 1024
)

// Op enumerates the instruction opcodes.
type Op uint8

// Opcodes. Grouped by datapath; the groups matter for block mapping.
const (
	// Scalar ALU.
	SMOV Op = iota
	SADD
	SSUB
	SMUL
	SAND
	SOR
	SXOR
	SLSL
	SLSR
	// Scalar compare -> SCC.
	SCMPLT
	SCMPLE
	SCMPEQ
	SCMPNE
	SCMPGT
	SCMPGE
	// Scalar control flow.
	SBRANCH
	SCBRANCH1 // branch if SCC
	SCBRANCH0 // branch if !SCC
	SSETEXECALL
	SSETEXECVCC
	SSETEXECCNT // enable first imm lanes
	SBARRIER
	SNOP
	SENDPGM
	// Scalar memory.
	SLOADW  // s_d = mem[s_base + imm]
	SSTOREW // mem[s_base + imm] = s_s
	// Vector ALU (integer / fixed point).
	VMOV
	VADD
	VSUB
	VMUL  // low 32-bit integer multiply
	VMULQ // Q16.16 multiply
	VMACQ // Q16.16 multiply-accumulate into dst
	VAND
	VOR
	VXOR
	VLSL
	VLSR
	VASR
	VMIN
	VMAX
	// Vector compare -> VCC (per lane).
	VCMPLT
	VCMPEQ
	VCMPGT
	VCNDMASK  // dst = VCC ? srcA : srcB
	VREADLANE // s_d = v_a[imm lane]
	// Vector memory.
	DSREAD    // v_d = LDS[v_addr + imm]
	DSWRITE   // LDS[v_addr + imm] = v_s
	FLATLOAD  // v_d = mem[v_addr + imm]
	FLATSTORE // mem[v_addr + imm] = v_s

	numOps
)

var opNames = [numOps]string{
	SMOV: "s_mov", SADD: "s_add", SSUB: "s_sub", SMUL: "s_mul",
	SAND: "s_and", SOR: "s_or", SXOR: "s_xor", SLSL: "s_lsl", SLSR: "s_lsr",
	SCMPLT: "s_cmp_lt", SCMPLE: "s_cmp_le", SCMPEQ: "s_cmp_eq",
	SCMPNE: "s_cmp_ne", SCMPGT: "s_cmp_gt", SCMPGE: "s_cmp_ge",
	SBRANCH: "s_branch", SCBRANCH1: "s_cbranch_scc1", SCBRANCH0: "s_cbranch_scc0",
	SSETEXECALL: "s_setexec_all", SSETEXECVCC: "s_setexec_vcc", SSETEXECCNT: "s_setexec_cnt",
	SBARRIER: "s_barrier", SNOP: "s_nop", SENDPGM: "s_endpgm",
	SLOADW: "s_load", SSTOREW: "s_store",
	VMOV: "v_mov", VADD: "v_add", VSUB: "v_sub", VMUL: "v_mul",
	VMULQ: "v_mul_q16", VMACQ: "v_mac_q16",
	VAND: "v_and", VOR: "v_or", VXOR: "v_xor",
	VLSL: "v_lsl", VLSR: "v_lsr", VASR: "v_asr",
	VMIN: "v_min", VMAX: "v_max",
	VCMPLT: "v_cmp_lt", VCMPEQ: "v_cmp_eq", VCMPGT: "v_cmp_gt",
	VCNDMASK: "v_cndmask", VREADLANE: "v_readlane",
	DSREAD: "ds_read", DSWRITE: "ds_write",
	FLATLOAD: "flat_load", FLATSTORE: "flat_store",
}

// String returns the assembler mnemonic.
func (op Op) String() string {
	if int(op) < len(opNames) && opNames[op] != "" {
		return opNames[op]
	}
	return fmt.Sprintf("gop(%d)", uint8(op))
}

// Cycles returns the issue-to-complete cost of op in GPU cycles on the
// in-order MIAOW-style pipeline: scalar single-cycle, vector ops occupy the
// 16-lane ALU for four beats, LDS adds bank access, flat memory goes to the
// shared SoC SRAM.
func (op Op) Cycles() int64 {
	switch {
	case op >= VMOV && op <= VREADLANE:
		return int64(ValuBeats)
	case op == DSREAD || op == DSWRITE:
		return int64(ValuBeats) + 2
	case op == FLATLOAD:
		// Global accesses hit ML-MIAOW's internal SRAM (the paper's
		// "internal memory" the MCM TX engine fills), not off-chip DRAM.
		return int64(ValuBeats) + 4
	case op == FLATSTORE:
		return int64(ValuBeats) + 2
	case op == SLOADW:
		return 4
	case op == SSTOREW:
		return 3
	default:
		return 1
	}
}

// BranchTakenPenalty is the pipeline refill cost of a taken scalar branch.
const BranchTakenPenalty int64 = 2

// OperandKind distinguishes instruction operand classes.
type OperandKind uint8

// Operand kinds.
const (
	OpNone OperandKind = iota
	OpSReg
	OpVReg
	OpImm
	OpLabel
)

// Operand is one instruction operand.
type Operand struct {
	Kind OperandKind
	Reg  uint8 // SGPR/VGPR index
	Imm  int32 // immediate, label target (resolved to PC), or lane index
}

func sreg(n uint8) Operand  { return Operand{Kind: OpSReg, Reg: n} }
func vreg(n uint8) Operand  { return Operand{Kind: OpVReg, Reg: n} }
func immOp(v int32) Operand { return Operand{Kind: OpImm, Imm: v} }

// Instr is one decoded instruction. Memory forms use A as the address base
// operand and Imm as the word offset.
type Instr struct {
	Op   Op
	Dst  Operand
	A, B Operand
	Imm  int32 // memory offset, branch target PC, or lane index
}

// String renders the instruction in assembler syntax.
func (i Instr) String() string {
	opnd := func(o Operand) string {
		switch o.Kind {
		case OpSReg:
			return fmt.Sprintf("s%d", o.Reg)
		case OpVReg:
			return fmt.Sprintf("v%d", o.Reg)
		case OpImm:
			return fmt.Sprintf("#%d", o.Imm)
		}
		return "?"
	}
	switch i.Op {
	case SENDPGM, SNOP, SBARRIER, SSETEXECALL, SSETEXECVCC:
		return i.Op.String()
	case SSETEXECCNT:
		return fmt.Sprintf("%s #%d", i.Op, i.Imm)
	case SBRANCH, SCBRANCH1, SCBRANCH0:
		return fmt.Sprintf("%s @%d", i.Op, i.Imm)
	case SLOADW, FLATLOAD, DSREAD:
		return fmt.Sprintf("%s %s, [%s+#%d]", i.Op, opnd(i.Dst), opnd(i.A), i.Imm)
	case SSTOREW, FLATSTORE, DSWRITE:
		return fmt.Sprintf("%s %s, [%s+#%d]", i.Op, opnd(i.A), opnd(i.B), i.Imm)
	case VREADLANE:
		return fmt.Sprintf("%s %s, %s, #%d", i.Op, opnd(i.Dst), opnd(i.A), i.Imm)
	case SMOV, VMOV:
		return fmt.Sprintf("%s %s, %s", i.Op, opnd(i.Dst), opnd(i.A))
	case SCMPLT, SCMPLE, SCMPEQ, SCMPNE, SCMPGT, SCMPGE, VCMPLT, VCMPEQ, VCMPGT:
		return fmt.Sprintf("%s %s, %s", i.Op, opnd(i.A), opnd(i.B))
	default:
		return fmt.Sprintf("%s %s, %s, %s", i.Op, opnd(i.Dst), opnd(i.A), opnd(i.B))
	}
}
