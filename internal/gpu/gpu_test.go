package gpu

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

// Table II targets: per-CU footprints of MIAOW and the two trimmed flows.
const (
	miaowLUTs = 180902
	miaowFFs  = 107001
)

func TestBlockTableCalibration(t *testing.T) {
	var lutAll, ffAll int
	for _, b := range Blocks() {
		if b.LUTs <= 0 || b.FFs <= 0 {
			t.Errorf("block %s has non-positive area", b.Name)
		}
		lutAll += b.LUTs
		ffAll += b.FFs
	}
	if lutAll != miaowLUTs {
		t.Errorf("total LUTs = %d, want %d (MIAOW, Table II)", lutAll, miaowLUTs)
	}
	if ffAll != miaowFFs {
		t.Errorf("total FFs = %d, want %d (MIAOW, Table II)", ffAll, miaowFFs)
	}
}

func TestEveryOpHasBlocks(t *testing.T) {
	for op := Op(0); op < numOps; op++ {
		if len(OpBlocks(op)) == 0 {
			t.Errorf("op %v maps to no HDL blocks", op)
		}
	}
}

func TestMulQ(t *testing.T) {
	cases := []struct{ a, b, want int32 }{
		{QOne, QOne, QOne},
		{QOne / 2, QOne / 2, QOne / 4},
		{3 * QOne, -2 * QOne, -6 * QOne},
		{0, QOne, 0},
		{QOne + QOne/2, 2 * QOne, 3 * QOne},
	}
	for _, c := range cases {
		if got := MulQ(c.a, c.b); got != c.want {
			t.Errorf("MulQ(%d,%d) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
	// Property: MulQ(a, QOne) == a (no 32-bit overflow in intermediate).
	prop := func(a int32) bool { return MulQ(a, QOne) == a }
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func run(t *testing.T, src string, disp Dispatch) (*Device, *Result) {
	t.Helper()
	k, err := Assemble("test", src)
	if err != nil {
		t.Fatal(err)
	}
	d := NewDevice(4096, 1)
	disp.Kernel = k
	res, err := d.Run(disp)
	if err != nil {
		t.Fatal(err)
	}
	return d, res
}

func TestScalarALUAndBranch(t *testing.T) {
	// Sum 1..10 in s2, store at mem[100].
	d, _ := run(t, `
		s_mov s1, #0     ; i
		s_mov s2, #0     ; sum
	loop:
		s_add s1, s1, #1
		s_add s2, s2, s1
		s_cmp_lt s1, #10
		s_cbranch_scc1 loop
		s_mov s3, #100
		s_store s2, [s3+#0]
		s_endpgm
	`, Dispatch{})
	if d.Mem[100] != 55 {
		t.Errorf("mem[100] = %d, want 55", d.Mem[100])
	}
}

func TestVectorLanesAndExecMask(t *testing.T) {
	// Each enabled lane writes laneid*2+5 to mem[200+lane]; only the first
	// 8 lanes are enabled.
	d, _ := run(t, `
		s_setexec_cnt #8
		v_mov v1, #2
		v_mul v2, v0, v1
		v_add v2, v2, #5
		v_mov v3, #200
		v_add v3, v3, v0
		flat_store v2, [v3+#0]
		s_endpgm
	`, Dispatch{})
	for l := 0; l < 8; l++ {
		if got := d.Mem[200+l]; got != uint32(l*2+5) {
			t.Errorf("lane %d: mem = %d, want %d", l, got, l*2+5)
		}
	}
	if d.Mem[208] != 0 {
		t.Error("disabled lane 8 wrote memory")
	}
}

func TestLDSRoundTripAndReadlane(t *testing.T) {
	d, _ := run(t, `
		v_mov v1, v0
		ds_write v1, [v0+#0]
		ds_read v2, [v0+#0]
		v_readlane s4, v2, #7
		s_mov s5, #300
		s_store s4, [s5+#0]
		s_endpgm
	`, Dispatch{})
	if d.Mem[300] != 7 {
		t.Errorf("readlane got %d, want 7", d.Mem[300])
	}
}

func TestVCmpCndmask(t *testing.T) {
	// dst = lane < 4 ? 111 : 222
	d, _ := run(t, `
		v_cmp_lt v0, #4
		v_mov v1, #111
		v_mov v2, #222
		v_cndmask v3, v1, v2
		v_mov v4, #400
		v_add v4, v4, v0
		flat_store v3, [v4+#0]
		s_endpgm
	`, Dispatch{})
	for l := 0; l < WaveLanes; l++ {
		want := uint32(222)
		if l < 4 {
			want = 111
		}
		if d.Mem[400+l] != want {
			t.Errorf("lane %d = %d, want %d", l, d.Mem[400+l], want)
		}
	}
}

func TestQ16MatvecAgainstReference(t *testing.T) {
	// y[r] = sum_k W[r][k] * x[k] for 64 rows x 16 cols, row per lane.
	const rows, cols = WaveLanes, 16
	const wBase, xBase, yBase = 0, 2048, 3000
	d := NewDevice(4096, 1)
	// Deterministic Q16.16 test data.
	wv := make([]uint32, rows*cols)
	xv := make([]uint32, cols)
	for i := range wv {
		wv[i] = uint32(int32(i%17-8) * (QOne / 8))
	}
	for i := range xv {
		xv[i] = uint32(int32(i%5-2) * (QOne / 4))
	}
	d.WriteWords(wBase, wv)
	d.WriteWords(xBase, xv)

	src := `
		; s0=W base, s1=x base, s2=y base, s3=cols
		v_mov v1, s3
		v_mul v1, v0, v1   ; row offset = lane*cols
		v_add v1, v1, s0   ; &W[row][0]
		v_mov v2, s1       ; &x[0]
		v_mov v3, #0       ; acc
		s_mov s4, #0       ; k
	loop:
		flat_load v4, [v1+#0]
		flat_load v5, [v2+#0]
		v_mac_q16 v3, v4, v5
		v_add v1, v1, #1
		v_add v2, v2, #1
		s_add s4, s4, #1
		s_cmp_lt s4, s3
		s_cbranch_scc1 loop
		v_mov v6, s2
		v_add v6, v6, v0
		flat_store v3, [v6+#0]
		s_endpgm
	`
	k, err := Assemble("matvec", src)
	if err != nil {
		t.Fatal(err)
	}
	res, err := d.Run(Dispatch{Kernel: k, SArgs: []uint32{wBase, xBase, yBase, cols}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Cycles <= 0 || res.Instructions <= 0 {
		t.Error("no timing recorded")
	}
	for r := 0; r < rows; r++ {
		var want int32
		for c := 0; c < cols; c++ {
			want += MulQ(int32(wv[r*cols+c]), int32(xv[c]))
		}
		if got := int32(d.Mem[yBase+r]); got != want {
			t.Fatalf("row %d: got %d, want %d", r, got, want)
		}
	}
}

func TestMultiWavefrontAndCUScheduling(t *testing.T) {
	// Each wavefront stores its ID; makespan scales with CU count.
	src := `
		v_mov v1, s15
		v_mov v2, #500
		v_add v2, v2, s15
		s_setexec_cnt #1
		flat_store v1, [v2+#0]
		s_endpgm
	`
	k := MustAssemble("waves", src)
	d1 := NewDevice(4096, 1)
	r1, err := d1.Run(Dispatch{Kernel: k, Wavefronts: 10})
	if err != nil {
		t.Fatal(err)
	}
	for w := 0; w < 10; w++ {
		if d1.Mem[500+w] != uint32(w) {
			t.Errorf("wave %d wrote %d", w, d1.Mem[500+w])
		}
	}
	d5 := NewDevice(4096, 5)
	r5, err := d5.Run(Dispatch{Kernel: k, Wavefronts: 10})
	if err != nil {
		t.Fatal(err)
	}
	if r5.Cycles >= r1.Cycles {
		t.Errorf("5 CUs (%d cycles) not faster than 1 CU (%d)", r5.Cycles, r1.Cycles)
	}
	// Ideal scaling bound: 10 identical waves on 5 CUs = 2 rounds.
	if want := r1.Cycles / 5; r5.Cycles != want {
		t.Errorf("5-CU makespan = %d, want %d", r5.Cycles, want)
	}
}

func TestCoverageCollection(t *testing.T) {
	k := MustAssemble("cov", `
		v_mov v1, #3
		v_mul_q16 v2, v1, v1
		s_endpgm
	`)
	d := NewDevice(1024, 1)
	d.EnableCoverage()
	if _, err := d.Run(Dispatch{Kernel: k}); err != nil {
		t.Fatal(err)
	}
	cov := d.Coverage()
	for _, b := range []BlockID{BFetch, BIssue, BDecVALU, BVALUMulQ, BVALULogic, BBranchUnit} {
		if !cov[b] {
			t.Errorf("block %v not covered", b)
		}
	}
	for _, b := range []BlockID{BVALUF32FMA, BTexSampler, BAtomics, BLDSCtrl} {
		if cov[b] {
			t.Errorf("block %v covered but never exercised", b)
		}
	}
}

func TestTrimTrap(t *testing.T) {
	k := MustAssemble("trap", `
		ds_write v0, [v0+#0]
		s_endpgm
	`)
	// Build a keep-set without the LDS block.
	var keep CoverageSet
	for i := range keep {
		keep[i] = true
	}
	keep[BLDSCtrl] = false
	d := NewDevice(1024, 1)
	d.SetTrim(keep)
	if !d.Trimmed() {
		t.Fatal("Trimmed() = false")
	}
	_, err := d.Run(Dispatch{Kernel: k})
	if err == nil || !strings.Contains(err.Error(), "trap") {
		t.Fatalf("trimmed-block execution did not trap: %v", err)
	}
}

func TestRunawayKernelBudget(t *testing.T) {
	k := MustAssemble("spin", `
	top:
		s_branch top
	`)
	d := NewDevice(64, 1)
	if _, err := d.Run(Dispatch{Kernel: k, MaxInstrs: 1000}); err == nil {
		t.Error("runaway kernel not stopped")
	}
}

func TestMemoryBounds(t *testing.T) {
	cases := []string{
		"s_mov s1, #99999\n s_load s2, [s1+#0]\n s_endpgm",
		"v_mov v1, #99999\n flat_store v0, [v1+#0]\n s_endpgm",
		"v_mov v1, #999999\n ds_read v2, [v1+#0]\n s_endpgm",
	}
	for _, src := range cases {
		k := MustAssemble("oob", src)
		d := NewDevice(64, 1)
		if _, err := d.Run(Dispatch{Kernel: k}); err == nil {
			t.Errorf("out-of-bounds access not caught: %q", src)
		}
	}
}

func TestAssemblerErrors(t *testing.T) {
	bad := []string{
		"bogus s1, s2",
		"s_branch nowhere",
		"s_mov v1, #0",           // wrong reg class
		"v_readlane s1, v1, #99", // lane out of range
		"v_mov v1",               // missing operand
		"flat_load s1, [v1+#0]",  // scalar dst on vector load
		"ds_write v1, v2",        // missing brackets
		"dup:\ndup:\ns_endpgm",   // duplicate label
		"s_mov s40, #0",          // register out of range
	}
	for _, src := range bad {
		if _, err := Assemble("bad", src); err == nil {
			t.Errorf("assembled invalid source %q", src)
		}
	}
}

func TestDisassemblyStrings(t *testing.T) {
	k := MustAssemble("str", `
		s_mov s1, #5
		v_mac_q16 v3, v1, v2
		flat_load v4, [v1+#8]
		ds_write v4, [v2+#0]
		v_readlane s2, v4, #3
		s_endpgm
	`)
	want := []string{
		"s_mov s1, #5",
		"v_mac_q16 v3, v1, v2",
		"flat_load v4, [v1+#8]",
		"ds_write v4, [v2+#0]",
		"v_readlane s2, v4, #3",
		"s_endpgm",
	}
	for i, ins := range k.Code {
		if got := ins.String(); got != want[i] {
			t.Errorf("instr %d String = %q, want %q", i, got, want[i])
		}
	}
}

func TestVectorOpCosts(t *testing.T) {
	if SADD.Cycles() != 1 {
		t.Error("scalar add should be single-cycle")
	}
	if VADD.Cycles() != int64(ValuBeats) {
		t.Errorf("vector op cost %d, want %d beats", VADD.Cycles(), ValuBeats)
	}
	if FLATLOAD.Cycles() <= DSREAD.Cycles() {
		t.Error("global load must cost more than LDS read")
	}
	if DSREAD.Cycles() <= VADD.Cycles() {
		t.Error("LDS read must cost more than a vector ALU op")
	}
}

func TestExecMaskInteractions(t *testing.T) {
	// Narrow, compute, widen: disabled lanes must keep their old values,
	// and s_setexec_vcc must adopt the compare result as the new mask.
	d, _ := run(t, `
		v_mov v1, #7          ; all 64 lanes
		s_setexec_cnt #4
		v_mov v1, #9          ; lanes 0-3 only
		s_setexec_all
		v_cmp_lt v0, #2
		s_setexec_vcc         ; lanes 0,1
		v_mov v1, #5
		s_setexec_all
		v_mov v2, #600
		v_add v2, v2, v0
		flat_store v1, [v2+#0]
		s_endpgm
	`, Dispatch{})
	want := func(l int) uint32 {
		switch {
		case l < 2:
			return 5
		case l < 4:
			return 9
		default:
			return 7
		}
	}
	for l := 0; l < WaveLanes; l++ {
		if got := d.Mem[600+l]; got != want(l) {
			t.Errorf("lane %d = %d, want %d", l, got, want(l))
		}
	}
}

func TestVCmpClearsVCCForDisabledLanes(t *testing.T) {
	d, _ := run(t, `
		s_setexec_cnt #2
		v_cmp_lt v0, #64       ; true for enabled lanes only
		s_setexec_all
		v_mov v1, #1
		v_mov v2, #0
		v_cndmask v3, v1, v2   ; 1 where vcc
		v_mov v4, #700
		v_add v4, v4, v0
		flat_store v3, [v4+#0]
		s_endpgm
	`, Dispatch{})
	for l := 0; l < WaveLanes; l++ {
		want := uint32(0)
		if l < 2 {
			want = 1
		}
		if got := d.Mem[700+l]; got != want {
			t.Errorf("lane %d vcc-select = %d, want %d", l, got, want)
		}
	}
}

func TestDispatchLanesPerWave(t *testing.T) {
	k := MustAssemble("partial", `
		v_mov v1, #800
		v_add v1, v1, v0
		flat_store v0, [v1+#0]
		s_endpgm
	`)
	d := NewDevice(1024, 1)
	if _, err := d.Run(Dispatch{Kernel: k, LanesPerWave: 5}); err != nil {
		t.Fatal(err)
	}
	for l := 0; l < 8; l++ {
		got := d.Mem[800+l]
		if l < 5 && got != uint32(l) {
			t.Errorf("enabled lane %d wrote %d", l, got)
		}
		if l >= 5 && got != 0 {
			t.Errorf("disabled lane %d wrote %d", l, got)
		}
	}
}

func TestScalarShiftAndCompareVariants(t *testing.T) {
	d, _ := run(t, `
		s_mov s1, #-8
		s_lsr s2, s1, #28     ; logical shift of a negative value
		s_mov s3, #3
		s_cmp_le s3, #3
		s_cbranch_scc0 bad
		s_cmp_ne s3, #4
		s_cbranch_scc0 bad
		s_cmp_ge s3, #4
		s_cbranch_scc1 bad
		s_mov s4, #1
		s_mov s5, #900
		s_store s4, [s5+#0]
		s_store s2, [s5+#1]
		s_endpgm
	bad:
		s_endpgm
	`, Dispatch{})
	if d.Mem[900] != 1 {
		t.Fatal("scalar compare chain took the wrong path")
	}
	if d.Mem[901] != 0xF {
		t.Errorf("s_lsr of -8>>28 = %#x, want 0xF", d.Mem[901])
	}
}

func TestVectorASRSignExtends(t *testing.T) {
	d, _ := run(t, `
		v_mov v1, #-256
		v_asr v2, v1, #4
		v_lsr v3, v1, #4
		s_setexec_cnt #1
		v_mov v4, #950
		flat_store v2, [v4+#0]
		flat_store v3, [v4+#1]
		s_endpgm
	`, Dispatch{})
	if int32(d.Mem[950]) != -16 {
		t.Errorf("v_asr(-256,4) = %d, want -16", int32(d.Mem[950]))
	}
	if int32(d.Mem[951]) == -16 {
		t.Error("v_lsr behaved like v_asr")
	}
}

// TestRandomScalarProgramsDifferential generates random straight-line
// scalar ALU programs and checks the machine against a direct Go
// evaluation of the same operations — a differential test of the scalar
// datapath beyond the hand-written cases.
func TestRandomScalarProgramsDifferential(t *testing.T) {
	r := rand.New(rand.NewSource(23))
	ops := []Op{SADD, SSUB, SMUL, SAND, SOR, SXOR, SLSL, SLSR}
	for trial := 0; trial < 60; trial++ {
		k := &Kernel{Name: "rand", Labels: map[string]int{}}
		ref := [NumSGPR]uint32{}
		// Seed a few registers.
		for rgt := 1; rgt <= 6; rgt++ {
			v := int32(r.Intn(1 << 12))
			k.Code = append(k.Code, Instr{Op: SMOV, Dst: sreg(uint8(rgt)), A: immOp(v)})
			ref[rgt] = uint32(v)
		}
		for n := 0; n < 40; n++ {
			op := ops[r.Intn(len(ops))]
			rd := uint8(1 + r.Intn(10))
			ra := uint8(1 + r.Intn(10))
			rb := uint8(1 + r.Intn(10))
			k.Code = append(k.Code, Instr{Op: op, Dst: sreg(rd), A: sreg(ra), B: sreg(rb)})
			a, b := ref[ra], ref[rb]
			switch op {
			case SADD:
				ref[rd] = a + b
			case SSUB:
				ref[rd] = a - b
			case SMUL:
				ref[rd] = uint32(int32(a) * int32(b))
			case SAND:
				ref[rd] = a & b
			case SOR:
				ref[rd] = a | b
			case SXOR:
				ref[rd] = a ^ b
			case SLSL:
				ref[rd] = a << (b & 31)
			case SLSR:
				ref[rd] = a >> (b & 31)
			}
		}
		// Store every live register to memory for comparison.
		base := uint8(12)
		k.Code = append(k.Code, Instr{Op: SMOV, Dst: sreg(base), A: immOp(100)})
		for rgt := 1; rgt <= 10; rgt++ {
			k.Code = append(k.Code, Instr{
				Op: SSTOREW, A: sreg(uint8(rgt)), B: sreg(base), Imm: int32(rgt),
			})
		}
		k.Code = append(k.Code, Instr{Op: SENDPGM})
		d := NewDevice(1024, 1)
		if _, err := d.Run(Dispatch{Kernel: k}); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		for rgt := 1; rgt <= 10; rgt++ {
			if got := d.Mem[100+rgt]; got != ref[rgt] {
				t.Fatalf("trial %d: s%d = %#x, reference %#x", trial, rgt, got, ref[rgt])
			}
		}
	}
}
