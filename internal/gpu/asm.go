package gpu

import (
	"fmt"
	"strconv"
	"strings"
)

// Kernel is an assembled GPU program.
type Kernel struct {
	Name   string
	Code   []Instr
	Labels map[string]int
}

var gpuOpByName = func() map[string]Op {
	m := make(map[string]Op, numOps)
	for op := Op(0); op < numOps; op++ {
		m[op.String()] = op
	}
	return m
}()

// Assemble translates kernel assembly into a Kernel. Syntax: one
// instruction per line; "label:" lines; ";" or "//" comments; registers
// s0–s31 and v0–v31; immediates "#n"; memory operands "[reg+#off]"; branch
// targets are labels. Stores are written "op value, [base+#off]".
func Assemble(name, src string) (*Kernel, error) {
	type pending struct {
		line int
		text string
	}
	labels := make(map[string]int)
	var insns []pending
	for lineNo, raw := range strings.Split(src, "\n") {
		line := raw
		if i := strings.Index(line, ";"); i >= 0 {
			line = line[:i]
		}
		if i := strings.Index(line, "//"); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		for {
			i := strings.Index(line, ":")
			if i < 0 || strings.ContainsAny(line[:i], " \t,#[") {
				break
			}
			name := line[:i]
			if name == "" {
				return nil, fmt.Errorf("gpu asm: line %d: empty label", lineNo+1)
			}
			if _, dup := labels[name]; dup {
				return nil, fmt.Errorf("gpu asm: line %d: duplicate label %q", lineNo+1, name)
			}
			labels[name] = len(insns)
			line = strings.TrimSpace(line[i+1:])
		}
		if line == "" {
			continue
		}
		insns = append(insns, pending{lineNo + 1, line})
	}

	k := &Kernel{Name: name, Labels: labels, Code: make([]Instr, 0, len(insns))}
	for _, pd := range insns {
		ins, err := parseGPUInstr(pd.text, labels)
		if err != nil {
			return nil, fmt.Errorf("gpu asm: line %d: %v", pd.line, err)
		}
		k.Code = append(k.Code, ins)
	}
	return k, nil
}

// MustAssemble panics on assembly errors; for the fixed kernels shipped in
// internal/kernels, which are validated by tests.
func MustAssemble(name, src string) *Kernel {
	k, err := Assemble(name, src)
	if err != nil {
		panic(err)
	}
	return k
}

func parseGPUReg(s string) (Operand, error) {
	if len(s) >= 2 {
		n, err := strconv.Atoi(s[1:])
		if err == nil {
			switch s[0] {
			case 's':
				if n >= 0 && n < NumSGPR {
					return sreg(uint8(n)), nil
				}
			case 'v':
				if n >= 0 && n < NumVGPR {
					return vreg(uint8(n)), nil
				}
			}
		}
	}
	return Operand{}, fmt.Errorf("bad register %q", s)
}

func parseGPUOperand(s string) (Operand, error) {
	if strings.HasPrefix(s, "#") {
		n, err := strconv.ParseInt(s[1:], 0, 64)
		if err != nil || n < -(1<<31) || n > 1<<31-1 {
			return Operand{}, fmt.Errorf("bad immediate %q", s)
		}
		return immOp(int32(n)), nil
	}
	return parseGPUReg(s)
}

// parseMem parses "[reg+#off]" (offset optional) into base operand + offset.
func parseMem(s string) (Operand, int32, error) {
	if !strings.HasPrefix(s, "[") || !strings.HasSuffix(s, "]") {
		return Operand{}, 0, fmt.Errorf("memory operand must be [reg+#off]: %q", s)
	}
	body := s[1 : len(s)-1]
	base := body
	off := int32(0)
	if i := strings.Index(body, "+"); i >= 0 {
		base = strings.TrimSpace(body[:i])
		immStr := strings.TrimSpace(body[i+1:])
		if !strings.HasPrefix(immStr, "#") {
			return Operand{}, 0, fmt.Errorf("offset must be immediate: %q", s)
		}
		n, err := strconv.ParseInt(immStr[1:], 0, 32)
		if err != nil {
			return Operand{}, 0, fmt.Errorf("bad offset in %q", s)
		}
		off = int32(n)
	}
	reg, err := parseGPUReg(strings.TrimSpace(base))
	if err != nil {
		return Operand{}, 0, err
	}
	return reg, off, nil
}

func parseGPUInstr(text string, labels map[string]int) (Instr, error) {
	fields := strings.SplitN(text, " ", 2)
	op, ok := gpuOpByName[strings.ToLower(fields[0])]
	if !ok {
		return Instr{}, fmt.Errorf("unknown mnemonic %q", fields[0])
	}
	rest := ""
	if len(fields) == 2 {
		rest = strings.TrimSpace(fields[1])
	}
	var ops []string
	depth := 0
	start := 0
	for i, ch := range rest {
		switch ch {
		case '[':
			depth++
		case ']':
			depth--
		case ',':
			if depth == 0 {
				ops = append(ops, strings.TrimSpace(rest[start:i]))
				start = i + 1
			}
		}
	}
	if tail := strings.TrimSpace(rest[start:]); tail != "" {
		ops = append(ops, tail)
	}

	ins := Instr{Op: op}
	need := func(n int) error {
		if len(ops) != n {
			return fmt.Errorf("%s needs %d operand(s), got %d", op, n, len(ops))
		}
		return nil
	}
	wantKind := func(o Operand, k OperandKind, what string) error {
		if o.Kind != k {
			return fmt.Errorf("%s: %s operand has wrong kind", op, what)
		}
		return nil
	}

	switch op {
	case SENDPGM, SNOP, SBARRIER, SSETEXECALL, SSETEXECVCC:
		return ins, need(0)

	case SSETEXECCNT:
		if err := need(1); err != nil {
			return ins, err
		}
		o, err := parseGPUOperand(ops[0])
		if err != nil || o.Kind != OpImm {
			return ins, fmt.Errorf("%s needs an immediate", op)
		}
		ins.Imm = o.Imm
		return ins, nil

	case SBRANCH, SCBRANCH1, SCBRANCH0:
		if err := need(1); err != nil {
			return ins, err
		}
		pc, ok := labels[ops[0]]
		if !ok {
			return ins, fmt.Errorf("undefined label %q", ops[0])
		}
		ins.Imm = int32(pc)
		return ins, nil

	case SLOADW, FLATLOAD, DSREAD:
		if err := need(2); err != nil {
			return ins, err
		}
		dst, err := parseGPUReg(ops[0])
		if err != nil {
			return ins, err
		}
		base, off, err := parseMem(ops[1])
		if err != nil {
			return ins, err
		}
		wantDst := OpVReg
		if op == SLOADW {
			wantDst = OpSReg
		}
		if err := wantKind(dst, wantDst, "destination"); err != nil {
			return ins, err
		}
		ins.Dst, ins.A, ins.Imm = dst, base, off
		return ins, nil

	case SSTOREW, FLATSTORE, DSWRITE:
		if err := need(2); err != nil {
			return ins, err
		}
		src, err := parseGPUReg(ops[0])
		if err != nil {
			return ins, err
		}
		base, off, err := parseMem(ops[1])
		if err != nil {
			return ins, err
		}
		wantSrc := OpVReg
		if op == SSTOREW {
			wantSrc = OpSReg
		}
		if err := wantKind(src, wantSrc, "source"); err != nil {
			return ins, err
		}
		ins.A, ins.B, ins.Imm = src, base, off
		return ins, nil

	case VREADLANE:
		if err := need(3); err != nil {
			return ins, err
		}
		dst, err := parseGPUReg(ops[0])
		if err != nil {
			return ins, err
		}
		a, err := parseGPUReg(ops[1])
		if err != nil {
			return ins, err
		}
		lane, err := parseGPUOperand(ops[2])
		if err != nil || lane.Kind != OpImm {
			return ins, fmt.Errorf("v_readlane lane must be an immediate")
		}
		if err := wantKind(dst, OpSReg, "destination"); err != nil {
			return ins, err
		}
		if err := wantKind(a, OpVReg, "source"); err != nil {
			return ins, err
		}
		if lane.Imm < 0 || lane.Imm >= WaveLanes {
			return ins, fmt.Errorf("lane %d out of range", lane.Imm)
		}
		ins.Dst, ins.A, ins.Imm = dst, a, lane.Imm
		return ins, nil

	case SMOV, VMOV:
		if err := need(2); err != nil {
			return ins, err
		}
		dst, err := parseGPUReg(ops[0])
		if err != nil {
			return ins, err
		}
		src, err := parseGPUOperand(ops[1])
		if err != nil {
			return ins, err
		}
		want := OpVReg
		if op == SMOV {
			want = OpSReg
		}
		if err := wantKind(dst, want, "destination"); err != nil {
			return ins, err
		}
		ins.Dst, ins.A = dst, src
		return ins, nil

	case SCMPLT, SCMPLE, SCMPEQ, SCMPNE, SCMPGT, SCMPGE,
		VCMPLT, VCMPEQ, VCMPGT:
		if err := need(2); err != nil {
			return ins, err
		}
		a, err := parseGPUOperand(ops[0])
		if err != nil {
			return ins, err
		}
		b, err := parseGPUOperand(ops[1])
		if err != nil {
			return ins, err
		}
		ins.A, ins.B = a, b
		return ins, nil

	default: // three-operand ALU (scalar or vector)
		if err := need(3); err != nil {
			return ins, err
		}
		dst, err := parseGPUReg(ops[0])
		if err != nil {
			return ins, err
		}
		a, err := parseGPUOperand(ops[1])
		if err != nil {
			return ins, err
		}
		b, err := parseGPUOperand(ops[2])
		if err != nil {
			return ins, err
		}
		want := OpVReg
		if op >= SMOV && op <= SSTOREW {
			want = OpSReg
		}
		if err := wantKind(dst, want, "destination"); err != nil {
			return ins, err
		}
		ins.Dst, ins.A, ins.B = dst, a, b
		return ins, nil
	}
}
