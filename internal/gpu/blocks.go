package gpu

import "fmt"

// BlockID names one HDL block of the compute unit: the granularity at which
// the paper's flow measures code coverage and trims logic (Fig 4). Block
// areas are calibrated so that the full set reproduces the published MIAOW
// footprint (Table II: 180,902 LUTs / 107,001 FFs per CU) and the subset
// exercised by the ELM+LSTM kernels reproduces the ML-MIAOW footprint
// (36,743 LUTs / 15,275 FFs, an 82 % trim).
type BlockID uint8

// Category groups blocks the way the MIAOW2.0 trimming tool sees the
// design: that tool analyses target-application instructions and trims only
// within ALU and instruction-decoder sub-blocks, while the RTAD flow trims
// any block whose HDL lines are uncovered (§II, Table II).
type Category uint8

// Block categories.
const (
	CatInfra  Category = iota // fetch/issue/regfile/wave control
	CatDecode                 // instruction decoder sub-blocks
	CatALU                    // scalar/vector execution units
	CatMem                    // memory-path blocks beyond the core ALUs
	CatOther                  // texture, interpolation, atomics, debug, ...
)

// Block is one trimmable hardware block with its FPGA footprint.
type Block struct {
	ID    BlockID
	Name  string
	Cat   Category
	LUTs  int
	FFs   int
	BRAMs int
}

// Block identifiers. The numeric order is also the report order.
const (
	// Infrastructure — exercised by any program.
	BFetch BlockID = iota
	BDecodeCore
	BIssue
	BSGPRFile
	BVGPRCtrl
	BExecMask
	BWaveCtrl
	BLDSCtrl
	BFlatIF
	// Execution units used by the inference kernels.
	BSALUInt
	BSALUCmp
	BBranchUnit
	BVALUAdd
	BVALULogic
	BVALUShift
	BVALUMulQ
	BVALUCmp
	BVALUCndMask
	BVALUReadLane
	// Decoder sub-blocks for the used classes.
	BDecSALU
	BDecVALU
	BDecMem
	BDecBranch
	// Floating-point and other datapaths a GPGPU carries but branch-ML
	// inference never touches (trimmed by both flows).
	BVALUF32Add
	BVALUF32Mul
	BVALUF32FMA
	BVALUF32Div
	BVALUF32Sqrt
	BVALUF64
	BVALUTrans
	BVALUInt64
	BVALUFmtConv
	BSALUUnused
	BDecFP
	BDecUnused
	// Non-ALU/decoder machinery only the coverage-driven flow removes.
	BTexSampler
	BImageStore
	BInterp
	BAtomics
	BGDS
	BMsgUnit
	BScalarCache
	BVCacheTags
	BMSHR
	BMultiWGBarrier
	BPerfDebug

	NumBlocks
)

// blockTable lists every block with its calibrated area. Sums:
//
//	all blocks:                 180,902 LUTs / 107,001 FFs  (MIAOW)
//	kernel-covered blocks:       35,943 LUTs /  15,025 FFs  (ML-MIAOW;
//	   the cross-lane readlane unit is listed with the used classes but the
//	   deployed kernels reduce through the LDS instead, so it trims too)
//	covered + non-ALU/decoder:   97,222 LUTs /  70,499 FFs  (MIAOW2.0)
var blockTable = [NumBlocks]Block{
	BFetch:        {BFetch, "fetch", CatInfra, 2243, 905, 0},
	BDecodeCore:   {BDecodeCore, "decode_core", CatInfra, 1800, 600, 0},
	BIssue:        {BIssue, "issue", CatInfra, 2600, 1100, 0},
	BSGPRFile:     {BSGPRFile, "sgpr_file", CatInfra, 900, 1100, 0},
	BVGPRCtrl:     {BVGPRCtrl, "vgpr_ctrl", CatInfra, 1400, 820, 16},
	BExecMask:     {BExecMask, "exec_mask", CatInfra, 700, 300, 0},
	BWaveCtrl:     {BWaveCtrl, "wave_ctrl", CatInfra, 1600, 900, 0},
	BLDSCtrl:      {BLDSCtrl, "lds_ctrl", CatInfra, 2400, 1000, 12},
	BFlatIF:       {BFlatIF, "flat_mem_if", CatInfra, 3200, 1400, 0},
	BSALUInt:      {BSALUInt, "salu_int", CatALU, 2800, 700, 0},
	BSALUCmp:      {BSALUCmp, "salu_cmp", CatALU, 600, 150, 0},
	BBranchUnit:   {BBranchUnit, "branch_unit", CatALU, 700, 220, 0},
	BVALUAdd:      {BVALUAdd, "valu_int_add", CatALU, 3500, 1000, 0},
	BVALULogic:    {BVALULogic, "valu_logic", CatALU, 1800, 500, 0},
	BVALUShift:    {BVALUShift, "valu_shift", CatALU, 2100, 450, 0},
	BVALUMulQ:     {BVALUMulQ, "valu_mul_q16", CatALU, 5200, 1500, 0},
	BVALUCmp:      {BVALUCmp, "valu_cmp", CatALU, 900, 300, 0},
	BVALUCndMask:  {BVALUCndMask, "valu_cndmask", CatALU, 500, 150, 0},
	BVALUReadLane: {BVALUReadLane, "valu_readlane", CatALU, 800, 250, 0},
	BDecSALU:      {BDecSALU, "dec_salu", CatDecode, 250, 400, 0},
	BDecVALU:      {BDecVALU, "dec_valu", CatDecode, 350, 600, 0},
	BDecMem:       {BDecMem, "dec_mem", CatDecode, 250, 500, 0},
	BDecBranch:    {BDecBranch, "dec_branch", CatDecode, 150, 430, 0},

	BVALUF32Add:  {BVALUF32Add, "valu_f32_add", CatALU, 9000, 2500, 0},
	BVALUF32Mul:  {BVALUF32Mul, "valu_f32_mul", CatALU, 11000, 3000, 0},
	BVALUF32FMA:  {BVALUF32FMA, "valu_f32_fma", CatALU, 16000, 8750, 0},
	BVALUF32Div:  {BVALUF32Div, "valu_f32_div", CatALU, 9500, 5752, 0},
	BVALUF32Sqrt: {BVALUF32Sqrt, "valu_f32_sqrt", CatALU, 4500, 1200, 0},
	BVALUF64:     {BVALUF64, "valu_f64", CatALU, 15580, 10000, 0},
	BVALUTrans:   {BVALUTrans, "valu_transcendental", CatALU, 6000, 1800, 0},
	BVALUInt64:   {BVALUInt64, "valu_int64", CatALU, 4000, 1100, 0},
	BVALUFmtConv: {BVALUFmtConv, "valu_fmt_conv", CatALU, 3000, 900, 0},
	BSALUUnused:  {BSALUUnused, "salu_unused_ops", CatALU, 1800, 500, 0},
	BDecFP:       {BDecFP, "dec_fp", CatDecode, 1500, 450, 0},
	BDecUnused:   {BDecUnused, "dec_unused", CatDecode, 1000, 300, 0},

	BTexSampler:     {BTexSampler, "texture_sampler", CatOther, 14000, 11000, 12},
	BImageStore:     {BImageStore, "image_store", CatOther, 7000, 6000, 0},
	BInterp:         {BInterp, "interpolator", CatOther, 6000, 5000, 0},
	BAtomics:        {BAtomics, "atomic_unit", CatMem, 5000, 4000, 0},
	BGDS:            {BGDS, "gds", CatMem, 4000, 3500, 8},
	BMsgUnit:        {BMsgUnit, "msg_unit", CatOther, 1500, 1200, 0},
	BScalarCache:    {BScalarCache, "scalar_cache", CatMem, 6000, 6500, 8},
	BVCacheTags:     {BVCacheTags, "vector_cache", CatMem, 7500, 8000, 16},
	BMSHR:           {BMSHR, "mshr", CatMem, 3500, 4500, 0},
	BMultiWGBarrier: {BMultiWGBarrier, "multi_wg_barrier", CatOther, 1200, 1500, 0},
	BPerfDebug:      {BPerfDebug, "perf_debug", CatOther, 5579, 4274, 0},
}

// Blocks returns the full block table (a copy).
func Blocks() []Block {
	out := make([]Block, NumBlocks)
	copy(out[:], blockTable[:])
	return out
}

// BlockInfo returns the table entry for id.
func BlockInfo(id BlockID) Block { return blockTable[id] }

// String names the block.
func (id BlockID) String() string {
	if id < NumBlocks {
		return blockTable[id].Name
	}
	return fmt.Sprintf("block(%d)", uint8(id))
}

// infraBlocks are touched by any executing wavefront.
var infraBlocks = []BlockID{
	BFetch, BDecodeCore, BIssue, BSGPRFile, BVGPRCtrl, BExecMask, BWaveCtrl,
}

// opBlocks maps each opcode to the HDL blocks its execution exercises
// beyond the infrastructure set.
var opBlocks = func() [numOps][]BlockID {
	var m [numOps][]BlockID
	salu := []BlockID{BDecSALU, BSALUInt}
	scmp := []BlockID{BDecSALU, BSALUCmp}
	br := []BlockID{BDecBranch, BBranchUnit}
	for op := SMOV; op <= SLSR; op++ {
		m[op] = salu
	}
	for op := SCMPLT; op <= SCMPGE; op++ {
		m[op] = scmp
	}
	for _, op := range []Op{SBRANCH, SCBRANCH1, SCBRANCH0, SENDPGM, SNOP, SBARRIER} {
		m[op] = br
	}
	for _, op := range []Op{SSETEXECALL, SSETEXECVCC, SSETEXECCNT} {
		m[op] = []BlockID{BDecSALU, BExecMask}
	}
	m[SLOADW] = []BlockID{BDecMem, BFlatIF}
	m[SSTOREW] = []BlockID{BDecMem, BFlatIF}
	m[VMOV] = []BlockID{BDecVALU, BVALULogic}
	m[VADD] = []BlockID{BDecVALU, BVALUAdd}
	m[VSUB] = []BlockID{BDecVALU, BVALUAdd}
	m[VMUL] = []BlockID{BDecVALU, BVALUMulQ}
	m[VMULQ] = []BlockID{BDecVALU, BVALUMulQ}
	m[VMACQ] = []BlockID{BDecVALU, BVALUMulQ, BVALUAdd}
	for _, op := range []Op{VAND, VOR, VXOR} {
		m[op] = []BlockID{BDecVALU, BVALULogic}
	}
	for _, op := range []Op{VLSL, VLSR, VASR} {
		m[op] = []BlockID{BDecVALU, BVALUShift}
	}
	for _, op := range []Op{VMIN, VMAX} {
		m[op] = []BlockID{BDecVALU, BVALUCmp, BVALUCndMask}
	}
	for _, op := range []Op{VCMPLT, VCMPEQ, VCMPGT} {
		m[op] = []BlockID{BDecVALU, BVALUCmp}
	}
	m[VCNDMASK] = []BlockID{BDecVALU, BVALUCndMask}
	m[VREADLANE] = []BlockID{BDecVALU, BVALUReadLane}
	m[DSREAD] = []BlockID{BDecMem, BLDSCtrl}
	m[DSWRITE] = []BlockID{BDecMem, BLDSCtrl}
	m[FLATLOAD] = []BlockID{BDecMem, BFlatIF}
	m[FLATSTORE] = []BlockID{BDecMem, BFlatIF}
	return m
}()

// OpBlocks returns the blocks op exercises (excluding infrastructure).
func OpBlocks(op Op) []BlockID {
	if int(op) < len(opBlocks) {
		return opBlocks[op]
	}
	return nil
}

// CoverageSet is the set of exercised blocks.
type CoverageSet [NumBlocks]bool

// Merge ORs other into c (the ICCR merge step of the trimming flow).
func (c *CoverageSet) Merge(other CoverageSet) {
	for i := range c {
		c[i] = c[i] || other[i]
	}
}

// Count returns the number of covered blocks.
func (c *CoverageSet) Count() int {
	n := 0
	for _, v := range c {
		if v {
			n++
		}
	}
	return n
}

// Uncovered lists blocks not in the set.
func (c *CoverageSet) Uncovered() []BlockID {
	var out []BlockID
	for i := BlockID(0); i < NumBlocks; i++ {
		if !c[i] {
			out = append(out, i)
		}
	}
	return out
}
