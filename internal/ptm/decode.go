package ptm

import "rtad/internal/cpu"

// StreamDecoder is the reference decoder for the PTM packet protocol. It
// consumes the stream one byte at a time — the same granularity as the
// hardware trace-analyzer units in IGM, which wrap this state machine with
// cycle timing — and produces Packet values as packets complete.
type StreamDecoder struct {
	state   dstate
	zeros   int
	need    int
	buf     [8]byte
	nbuf    int
	exc     bool
	chunks  [numChunks]uint32
	nchunks int

	prev     [numChunks]uint32
	havePrev bool

	// atomScratch backs the Atoms slice of packets returned by FeedByte,
	// so atom decoding allocates nothing.
	atomScratch [maxAtomsPerByte]bool

	// Errors counts protocol violations (unexpected bytes). The decoder
	// resynchronises at the next a-sync rather than failing hard, like
	// the hardware.
	Errors int
	// Bytes counts every byte fed.
	Bytes int64
}

type dstate uint8

const (
	stIdle dstate = iota
	stISync
	stTimestamp
	stBranch
	stBranchExc
	stSkipToSync // error recovery: hunt for a-sync
)

// NewStreamDecoder returns a decoder at stream start.
func NewStreamDecoder() *StreamDecoder { return &StreamDecoder{} }

// Feed consumes one byte and returns zero or more completed packets. It is
// a compat wrapper over FeedByte; the returned slice (and any Atoms payload)
// is freshly allocated and owned by the caller. Hot paths should prefer
// FeedByte.
func (d *StreamDecoder) Feed(b byte) []Packet {
	pkt, ok := d.FeedByte(b)
	if !ok {
		return nil
	}
	if pkt.Atoms != nil {
		pkt.Atoms = append([]bool(nil), pkt.Atoms...)
	}
	return []Packet{pkt}
}

// FeedByte consumes one byte and returns the completed packet, if any. At
// most one packet completes per byte, so this is the allocation-free form
// of Feed.
//
// Zero-allocation contract: a PktAtoms packet's Atoms slice is a window
// into the decoder's own scratch buffer and is only valid until the next
// FeedByte call. Consume (or copy) it before feeding the next byte.
func (d *StreamDecoder) FeedByte(b byte) (Packet, bool) {
	d.Bytes++
	// A-sync detection runs in every state: five zeros then 0x80 realigns
	// the decoder unconditionally (that is its purpose).
	if b == hdrAsyncZero {
		d.zeros++
		if d.state == stIdle && d.zeros <= asyncZeroCount {
			return Packet{}, false
		}
		if d.state == stSkipToSync || d.zeros >= asyncZeroCount {
			return Packet{}, false
		}
	}
	if b == hdrAsyncTerm && d.zeros >= asyncZeroCount {
		d.zeros = 0
		d.reset()
		return Packet{Type: PktASync}, true
	}
	zeros := d.zeros
	d.zeros = 0

	switch d.state {
	case stSkipToSync:
		return Packet{}, false

	case stIdle:
		return d.headerByte(b, zeros)

	case stISync:
		d.buf[d.nbuf] = b
		d.nbuf++
		if d.nbuf < 5 {
			return Packet{}, false
		}
		addr := uint32(d.buf[0]) | uint32(d.buf[1])<<8 | uint32(d.buf[2])<<16 | uint32(d.buf[3])<<24
		info := d.buf[4]
		d.state = stIdle
		d.havePrev = false
		return Packet{Type: PktISync, Addr: addr, Info: info}, true

	case stTimestamp:
		d.buf[d.nbuf] = b
		d.nbuf++
		if d.nbuf < 4 {
			return Packet{}, false
		}
		ts := uint32(d.buf[0]) | uint32(d.buf[1])<<8 | uint32(d.buf[2])<<16 | uint32(d.buf[3])<<24
		d.state = stIdle
		return Packet{Type: PktTimestamp, TS: ts}, true

	case stBranch:
		if d.nchunks < numChunks {
			d.chunks[d.nchunks] = uint32(b) & 0x7f
			d.nchunks++
		} else {
			d.Errors++
		}
		if b&continuationBit != 0 {
			return Packet{}, false
		}
		return d.finishBranch()

	case stBranchExc:
		d.state = stIdle
		if b&0xF0 != excByteBase&0xF0 {
			d.Errors++
		}
		kind := cpu.Kind(b & 0x0f)
		pkt := d.assembleBranch()
		pkt.Exc = true
		pkt.Kind = kind
		return pkt, true
	}
	return Packet{}, false
}

// headerByte classifies the first byte of a new packet.
func (d *StreamDecoder) headerByte(b byte, zeros int) (Packet, bool) {
	if zeros > 0 && b != hdrAsyncZero {
		// Zeros that did not complete an a-sync are a protocol error.
		d.Errors += zeros
	}
	switch {
	case b == hdrAsyncZero:
		return Packet{}, false // counted by caller
	case b == hdrISync:
		d.state, d.nbuf = stISync, 0
		return Packet{}, false
	case b == hdrTimestamp:
		d.state, d.nbuf = stTimestamp, 0
		return Packet{}, false
	case b == hdrOverflow:
		d.havePrev = false
		return Packet{Type: PktOverflow}, true
	case b&branchMarkerBit != 0:
		d.exc = b&branchExcBit != 0
		d.chunks = [numChunks]uint32{uint32(b>>2) & 0x1f}
		d.nchunks = 1
		if b&continuationBit != 0 {
			d.state = stBranch
			return Packet{}, false
		}
		return d.finishBranch()
	case b&0x03 == atomMarker:
		n := int(b>>2)&0x03 + 1
		for i := 0; i < n; i++ {
			d.atomScratch[i] = b&(1<<(4+i)) != 0
		}
		return Packet{Type: PktAtoms, Atoms: d.atomScratch[:n]}, true
	default:
		d.Errors++
		d.state = stSkipToSync
		return Packet{}, false
	}
}

// finishBranch completes a branch packet when the last address byte had a
// clear continuation bit.
func (d *StreamDecoder) finishBranch() (Packet, bool) {
	if d.exc {
		d.state = stBranchExc
		return Packet{}, false
	}
	d.state = stIdle
	return d.assembleBranch(), true
}

// assembleBranch reconstructs the target address: received low chunks plus
// inherited high chunks from the previous branch (prefix compression).
func (d *StreamDecoder) assembleBranch() Packet {
	if !d.havePrev && d.nchunks < numChunks {
		// Compressed packet with no baseline: the stream desynchronised.
		d.Errors++
	}
	ch := d.prev
	for i := 0; i < d.nchunks; i++ {
		ch[i] = d.chunks[i]
	}
	d.prev = ch
	d.havePrev = true
	return Packet{Type: PktBranch, Addr: chunksToAddr(ch), Kind: cpu.KindDirect}
}

// reset clears per-packet state after an a-sync.
func (d *StreamDecoder) reset() {
	d.state = stIdle
	d.nbuf = 0
	d.nchunks = 0
	d.havePrev = false
}

// DecodeAll is a convenience that feeds a whole buffer and collects packets.
func DecodeAll(stream []byte) ([]Packet, int) {
	d := NewStreamDecoder()
	var out []Packet
	for _, b := range stream {
		out = append(out, d.Feed(b)...)
	}
	return out, d.Errors
}
