package ptm

import "rtad/internal/cpu"

// Config parameterises the trace unit.
type Config struct {
	// BranchBroadcast forces a full branch-address packet for every taken
	// transfer (the CoreSight option RTAD relies on so that IGM sees all
	// branch targets). When false, only indirect transfers and exceptions
	// emit addresses and direct branches compress into atoms.
	BranchBroadcast bool
	// SyncEvery inserts an a-sync + i-sync pair after this many branch
	// packets, bounding how much stream a cold decoder must skip. 0 uses
	// the default.
	SyncEvery int
}

// DefaultSyncEvery matches typical CoreSight periodic-sync configuration
// (the driver programs a fairly tight sync period so a decoder joining the
// stream mid-run recovers quickly).
const DefaultSyncEvery = 256

// Encoder is the packetisation stage of the PTM: it turns retired-branch
// events into the byte stream described in this package's doc comment. It
// is a pure codec — FIFO capacity and drain timing live in Port so the same
// compression logic serves both the overhead study (Fig 6) and the latency
// pipeline (Figs 7–8).
type Encoder struct {
	cfg Config

	started    bool
	lastChunks [numChunks]uint32
	havePrev   bool
	atomBuf    []bool
	sinceSync  int
	syncs      int64

	// markBuf collects a PacketMark per completed packet while marking is
	// set (only during EncodeMarked/FlushMarked; the slice is held by value
	// so mark collection never forces a caller slice header to escape).
	markBuf []PacketMark
	marking bool
}

// PacketMark records one completed packet in the encoded byte stream: the
// offset just past its last byte (the byte whose arrival completes the
// packet at any conforming decoder) and, for branch-address packets, the
// address a decoder reconstructs. The fused trace-delivery fast path uses
// marks to skip re-decoding the stream the encoder just produced: packet
// boundaries plus the staged path's timing algebra determine exactly when
// each packet becomes visible to the IGM.
type PacketMark struct {
	// End is the offset just past the packet's last byte, within the slice
	// returned by the marked encode call.
	End int
	// Branch reports a branch-address packet — the only packet type the
	// IGM acts on; every other mark only advances the decode-packet count.
	Branch bool
	// Addr is the reconstructed branch target for Branch marks: the event
	// target with bit 0 dropped, exactly as the on-wire addr>>1 encoding
	// round-trips it.
	Addr uint32
}

// mark records one completed packet when mark collection is enabled.
func (e *Encoder) mark(end int, branch bool, addr uint32) {
	if e.marking {
		e.markBuf = append(e.markBuf, PacketMark{End: end, Branch: branch, Addr: addr})
	}
}

// Syncs reports how many a-sync/i-sync pairs the encoder has emitted
// (stream starts plus periodic synchronisation).
func (e *Encoder) Syncs() int64 { return e.syncs }

// NewEncoder returns an encoder with cfg applied.
func NewEncoder(cfg Config) *Encoder {
	if cfg.SyncEvery <= 0 {
		cfg.SyncEvery = DefaultSyncEvery
	}
	return &Encoder{cfg: cfg, atomBuf: make([]bool, 0, maxAtomsPerByte)}
}

// appendASync emits the alignment-synchronisation sequence.
func appendASync(dst []byte) []byte {
	for i := 0; i < asyncZeroCount; i++ {
		dst = append(dst, hdrAsyncZero)
	}
	return append(dst, hdrAsyncTerm)
}

// appendISync emits an instruction-synchronisation packet for addr.
func appendISync(dst []byte, addr uint32, info byte) []byte {
	dst = append(dst, hdrISync)
	dst = append(dst, byte(addr), byte(addr>>8), byte(addr>>16), byte(addr>>24))
	return append(dst, info)
}

// flushAtoms drains the pending atom buffer into dst, preserving program
// order ahead of any subsequent address packet. Each emitted atom byte is
// one complete packet at the decoder.
func (e *Encoder) flushAtoms(dst []byte) []byte {
	for len(e.atomBuf) > 0 {
		n := len(e.atomBuf)
		if n > maxAtomsPerByte {
			n = maxAtomsPerByte
		}
		b := byte(atomMarker) | byte(n-1)<<2
		for i := 0; i < n; i++ {
			if e.atomBuf[i] {
				b |= 1 << (4 + i)
			}
		}
		dst = append(dst, b)
		e.mark(len(dst), false, 0)
		e.atomBuf = e.atomBuf[:copy(e.atomBuf, e.atomBuf[n:])]
	}
	return dst
}

// appendBranch emits a prefix-compressed branch-address packet.
func (e *Encoder) appendBranch(dst []byte, addr uint32, exc bool, kind cpu.Kind) []byte {
	chunks := addrToChunks(addr)
	// How many low chunks must be sent so the receiver reconstructs addr?
	need := 1
	if e.havePrev {
		for i := numChunks - 1; i >= 1; i-- {
			if chunks[i] != e.lastChunks[i] {
				need = i + 1
				break
			}
		}
	} else {
		need = numChunks
	}
	for i := 0; i < need; i++ {
		var b byte
		if i == 0 {
			b = branchMarkerBit | byte(chunks[0])<<2
			if exc {
				b |= branchExcBit
			}
		} else {
			b = byte(chunks[i])
		}
		if i < need-1 {
			b |= continuationBit
		}
		dst = append(dst, b)
	}
	if exc {
		dst = append(dst, excByteBase|byte(kind)&0x0f)
	}
	e.lastChunks = chunks
	e.havePrev = true
	e.mark(len(dst), true, addr&^1)
	return dst
}

// Start emits the stream prologue (a-sync + i-sync at addr), as the trace
// unit does when tracing is enabled by the driver.
func (e *Encoder) Start(addr uint32) []byte { return e.StartInto(nil, addr) }

// StartInto appends the stream prologue to dst and returns the extended
// slice, the allocation-free form of Start.
func (e *Encoder) StartInto(dst []byte, addr uint32) []byte {
	e.started = true
	e.havePrev = false
	e.sinceSync = 0
	e.syncs++
	dst = appendASync(dst)
	e.mark(len(dst), false, 0)
	dst = appendISync(dst, addr, 0)
	e.mark(len(dst), false, 0)
	return dst
}

// Overflow emits the marker the PTM inserts after its internal FIFO dropped
// trace data; address compression state resets because the receiver lost
// context.
func (e *Encoder) Overflow() []byte {
	e.havePrev = false
	e.atomBuf = e.atomBuf[:0]
	return []byte{hdrOverflow}
}

// Timestamp emits a timestamp packet with the low 32 bits of cycles.
func (e *Encoder) Timestamp(cycles uint32) []byte {
	dst := e.flushAtoms(nil)
	return append(dst, hdrTimestamp, byte(cycles), byte(cycles>>8), byte(cycles>>16), byte(cycles>>24))
}

// Encode packetises one retired-branch event. The returned slice is freshly
// allocated only when non-empty; not-taken branches usually just buffer an
// atom bit and return nil until the atom byte fills.
//
// Deprecated: use EncodeInto with a recycled buffer
// (`buf = enc.EncodeInto(buf[:0], ev)`) — it is the hot-path form and
// encodes every event with zero steady-state allocations. CI rejects new
// in-repo Encode callers.
func (e *Encoder) Encode(ev cpu.BranchEvent) []byte { return e.EncodeInto(nil, ev) }

// EncodeInto packetises one retired-branch event into dst (appending) and
// returns the extended slice. This is the hot-path form: a caller that
// recycles dst (`buf = enc.EncodeInto(buf[:0], ev)`) encodes every event
// with zero allocations in steady state.
func (e *Encoder) EncodeInto(dst []byte, ev cpu.BranchEvent) []byte {
	if !e.started {
		// Lazily start the stream at the first event's source address.
		dst = e.StartInto(dst, ev.PC)
		return e.EncodeInto(dst, ev)
	}

	emitAddr := ev.Taken && (e.cfg.BranchBroadcast || ev.Kind.IsIndirectKind())
	switch {
	case emitAddr:
		dst = e.flushAtoms(dst)
		exc := ev.Kind == cpu.KindSyscall
		dst = e.appendBranch(dst, ev.Target, exc, ev.Kind)
		e.sinceSync++
		if e.sinceSync >= e.cfg.SyncEvery {
			e.sinceSync = 0
			e.syncs++
			dst = appendASync(dst)
			e.mark(len(dst), false, 0)
			dst = appendISync(dst, ev.Target, 0)
			e.mark(len(dst), false, 0)
			e.havePrev = false
		}
	default:
		// Atom: taken (direct, non-broadcast) or not-taken waypoint.
		e.atomBuf = append(e.atomBuf, ev.Taken)
		if len(e.atomBuf) >= maxAtomsPerByte {
			dst = e.flushAtoms(dst)
		}
	}
	return dst
}

// Flush drains any buffered atoms (used at end of trace windows).
func (e *Encoder) Flush() []byte { return e.flushAtoms(nil) }

// FlushInto is the allocation-free form of Flush: buffered atoms append to
// dst and the extended slice is returned.
func (e *Encoder) FlushInto(dst []byte) []byte { return e.flushAtoms(dst) }

// EncodeMarked is EncodeInto with packet-boundary reporting: every packet
// completed by this event appends a PacketMark to marks (offsets are into
// the returned byte slice). A caller recycling both slices encodes with
// zero steady-state allocations. The byte stream is byte-identical to
// EncodeInto's — marks are bookkeeping, not wire data.
func (e *Encoder) EncodeMarked(dst []byte, marks []PacketMark, ev cpu.BranchEvent) ([]byte, []PacketMark) {
	e.markBuf, e.marking = marks, true
	dst = e.EncodeInto(dst, ev)
	marks, e.markBuf, e.marking = e.markBuf, nil, false
	return dst, marks
}

// FlushMarked is FlushInto with packet-boundary reporting (see EncodeMarked).
func (e *Encoder) FlushMarked(dst []byte, marks []PacketMark) ([]byte, []PacketMark) {
	e.markBuf, e.marking = marks, true
	dst = e.flushAtoms(dst)
	marks, e.markBuf, e.marking = e.markBuf, nil, false
	return dst, marks
}
