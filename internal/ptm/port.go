package ptm

import (
	"rtad/internal/cpu"
	"rtad/internal/obs"
	"rtad/internal/sim"
)

// TimedByte is one trace byte with the simulated instant it becomes visible
// on the TPIU-facing port.
type TimedByte struct {
	At sim.Time
	B  byte
}

// PortConfig sizes the PTM output stage: the CPU-internal trace FIFO and
// the formatter policy that holds bytes back until enough have accumulated.
// That hold-back is the dominant component of RTAD's step-(1) latency in
// Fig 7 — "PTM does not send the packets until enough packets are buffered
// in the FIFO inside the ARM CPU".
type PortConfig struct {
	// DrainThreshold is the byte occupancy at which the formatter releases
	// the buffered stream. Smaller values cut trace-visibility latency at
	// the cost of more port transactions.
	DrainThreshold int
	// BytesPerCycle is the port width per fabric cycle: the TPIU-facing
	// interface moves this many bytes each 125 MHz cycle (4 = 32-bit port).
	BytesPerCycle int
	// QueueBytes bounds how far the port's departure schedule may run
	// ahead of the producer before the CPU stalls (sustained-bandwidth
	// backpressure). Zero uses the default.
	QueueBytes int
	// Clock is the fabric clock driving the port (defaults to sim.FabricClock).
	Clock *sim.Clock
	// Telemetry, when non-nil, records release bursts as spans on the
	// fabric/ptm track and keeps byte/release counters. Observation-only:
	// timing and output are bit-identical either way.
	Telemetry *obs.Telemetry
}

// Defaults matching the prototype configuration.
const (
	DefaultDrainThreshold = 256
	DefaultBytesPerCycle  = 4
	DefaultQueueBytes     = 512
)

func (c PortConfig) withDefaults() PortConfig {
	if c.DrainThreshold <= 0 {
		c.DrainThreshold = DefaultDrainThreshold
	}
	if c.BytesPerCycle <= 0 {
		c.BytesPerCycle = DefaultBytesPerCycle
	}
	if c.QueueBytes <= 0 {
		c.QueueBytes = DefaultQueueBytes
	}
	if c.Clock == nil {
		c.Clock = sim.FabricClock
	}
	return c
}

// Port models the PTM output stage. Bytes pushed at simulated times are
// buffered until the drain threshold is reached, then released onto the
// port at the configured width, one beat per fabric cycle. Released bytes
// appear on the Out slice with their departure times.
//
// The port runs in one of two modes, chosen by which Push family the
// caller uses. The staged mode (Push/Flush/TakeInto) materialises every
// released byte as a TimedByte. The counted fast-path mode
// (PushCounted/FlushCounted) keeps only occupancy and the departure
// horizon, and describes each release as an arithmetic-progression
// schedule (Release) instead — same timing algebra, no per-byte values.
// One port instance must stay in one mode.
type Port struct {
	cfg    PortConfig
	buf    []byte
	occ    int      // counted-mode occupancy (staged mode uses len(buf))
	freeAt sim.Time // next fabric instant the port can emit a beat
	// Out accumulates released bytes; callers consume it with Take.
	out []TimedByte

	releases  int64
	pushed    int64 // total bytes accepted into the hold-back buffer
	maxOccupy int

	obsBytes    *obs.Counter
	obsReleases *obs.Counter
	obsStallPS  *obs.Counter
	track       *obs.Track
}

// Release describes one drain burst's departure schedule on the fused fast
// path: Bytes leave in groups of Group per beat, beats Step apart, starting
// at Start. Byte j of the release therefore departs at Start + (j/Group)*Step
// — exactly the arithmetic progression the staged path materialises as
// TimedBytes. A zero Release (Bytes == 0) means the push did not cross the
// drain threshold.
type Release struct {
	Start sim.Time
	Bytes int
	Group int
	Step  sim.Time
}

// ByteAt is the departure instant of the release's j-th byte (0-based).
func (r Release) ByteAt(j int) sim.Time { return r.Start + sim.Time(j/r.Group)*r.Step }

// NewPort returns a port with cfg applied (zero fields take defaults).
func NewPort(cfg PortConfig) *Port {
	p := &Port{cfg: cfg.withDefaults()}
	if tel := p.cfg.Telemetry; tel != nil {
		p.obsBytes = tel.Counter("rtad_ptm_bytes_total")
		p.obsReleases = tel.Counter("rtad_ptm_releases_total")
		p.obsStallPS = tel.Counter("rtad_ptm_backpressure_ps_total")
		p.track = tel.Track("fabric", "ptm")
	}
	return p
}

// Occupancy returns bytes currently held back by the formatter (either
// materialised or counted, depending on mode).
func (p *Port) Occupancy() int { return len(p.buf) + p.occ }

// StageName identifies the port in pipeline stage listings.
func (p *Port) StageName() string { return "ptm" }

// QueueStats reports the hold-back buffer as a uniform queue snapshot. The
// port is lossless by construction — its only pressure-relief mechanism is
// the backpressure stall Push returns to the CPU, never a drop — so
// Overflows and Dropped are 0 by design (not merely unreported), and
// Accepted counts every byte admitted to the hold-back buffer.
func (p *Port) QueueStats() sim.QueueStats {
	return sim.QueueStats{Len: len(p.buf) + p.occ, MaxDepth: p.maxOccupy, Accepted: p.pushed}
}

// MaxOccupancy returns the high-water mark of the hold-back buffer.
func (p *Port) MaxOccupancy() int { return p.maxOccupy }

// Releases returns how many drain bursts the formatter has performed.
func (p *Port) Releases() int64 { return p.releases }

// Push buffers data produced at time at and returns how long (in simulated
// time) the producer must stall because the port's departure schedule has
// run more than QueueBytes ahead — the only backpressure path to the CPU.
func (p *Port) Push(at sim.Time, data []byte) sim.Time {
	p.buf = append(p.buf, data...)
	p.pushed += int64(len(data))
	p.obsBytes.Add(int64(len(data)))
	if len(p.buf) > p.maxOccupy {
		p.maxOccupy = len(p.buf)
	}
	if len(p.buf) >= p.cfg.DrainThreshold {
		p.release(at)
	}
	// Sustained-bandwidth backpressure: if the port is scheduled beyond
	// the queue horizon, the producer waits for the excess.
	horizon := p.cfg.Clock.Duration(int64(p.cfg.QueueBytes / p.cfg.BytesPerCycle))
	if lag := p.freeAt - at - horizon; lag > 0 {
		p.obsStallPS.Add(int64(lag))
		return lag
	}
	return 0
}

// Flush releases any held-back bytes regardless of the threshold (trace
// disable, or the driver forcing visibility).
func (p *Port) Flush(at sim.Time) {
	if len(p.buf) > 0 {
		p.release(at)
	}
}

// schedule records one drain burst of n bytes requested at time at: it
// advances the release counters and the departure horizon and emits the
// telemetry span, returning the burst's arithmetic-progression schedule.
// Shared by the staged and counted modes so both produce identical timing,
// counters, and spans.
func (p *Port) schedule(at sim.Time, n int) Release {
	p.releases++
	p.obsReleases.Inc()
	start := p.cfg.Clock.NextEdge(at)
	if start < p.freeAt {
		start = p.freeAt
	}
	step := p.cfg.Clock.Period()
	beats := (n + p.cfg.BytesPerCycle - 1) / p.cfg.BytesPerCycle
	end := start + sim.Time(beats)*step
	if p.track != nil {
		p.track.Span("release", int64(start), int64(end),
			map[string]any{"bytes": n})
	}
	p.freeAt = end
	return Release{Start: start, Bytes: n, Group: p.cfg.BytesPerCycle, Step: step}
}

// release schedules every buffered byte onto the port (staged mode).
func (p *Port) release(at sim.Time) {
	r := p.schedule(at, len(p.buf))
	beat := r.Start
	for i := 0; i < len(p.buf); i += p.cfg.BytesPerCycle {
		end := i + p.cfg.BytesPerCycle
		if end > len(p.buf) {
			end = len(p.buf)
		}
		for _, b := range p.buf[i:end] {
			p.out = append(p.out, TimedByte{At: beat, B: b})
		}
		beat += r.Step
	}
	p.buf = p.buf[:0]
}

// PushCounted is the fused fast-path form of Push: it accounts for n bytes
// produced at time at without materialising them. The returned Release
// carries the drain burst's departure schedule (Bytes == 0 when the push
// did not cross the threshold); the returned stall is the same
// backpressure duration Push reports. Timing, counters, and spans are
// bit-identical to pushing the same bytes through Push.
func (p *Port) PushCounted(at sim.Time, n int) (Release, sim.Time) {
	p.occ += n
	p.pushed += int64(n)
	p.obsBytes.Add(int64(n))
	if p.occ > p.maxOccupy {
		p.maxOccupy = p.occ
	}
	var rel Release
	if p.occ >= p.cfg.DrainThreshold {
		rel = p.schedule(at, p.occ)
		p.occ = 0
	}
	horizon := p.cfg.Clock.Duration(int64(p.cfg.QueueBytes / p.cfg.BytesPerCycle))
	if lag := p.freeAt - at - horizon; lag > 0 {
		p.obsStallPS.Add(int64(lag))
		return rel, lag
	}
	return rel, 0
}

// FlushCounted is the fused fast-path form of Flush: any counted occupancy
// is released regardless of the threshold. Bytes == 0 in the returned
// Release means nothing was held back.
func (p *Port) FlushCounted(at sim.Time) Release {
	var rel Release
	if p.occ > 0 {
		rel = p.schedule(at, p.occ)
		p.occ = 0
	}
	return rel
}

// Take returns and clears the released-byte stream. The returned slice is
// freshly allocated and owned by the caller.
//
// Deprecated: use TakeInto with a recycled buffer
// (`buf = port.TakeInto(buf[:0])`) — it is the primary hand-off API and
// drains the port with zero steady-state allocations. CI rejects new
// in-repo Take callers.
func (p *Port) Take() []TimedByte { return p.TakeInto(nil) }

// TakeInto appends the released-byte stream to dst, clears the internal
// queue (retaining its capacity for reuse), and returns the extended slice.
// A caller that recycles dst (`buf = port.TakeInto(buf[:0])`) drains the
// port with zero steady-state allocations.
func (p *Port) TakeInto(dst []TimedByte) []TimedByte {
	dst = append(dst, p.out...)
	p.out = p.out[:0]
	return dst
}

// syncStallCycles is the CPU-side cost of generating a synchronisation
// packet pair: the PTM snapshots architectural state for the i-sync, which
// holds retirement for a couple of cycles. This — not the data path — is
// why merely enabling the PTM interface shows a (negligible) overhead in
// Fig 6.
const syncStallCycles = 2

// OverheadSink wires Encoder and Port into a cpu.Sink for the Fig 6
// overhead study: every retired branch is encoded and pushed, and the
// returned stall is the CPU-cycle cost of trace collection.
type OverheadSink struct {
	Enc  *Encoder
	Port *Port

	cpuClock  *sim.Clock
	lastSyncs int64
	encBuf    []byte // recycled per-event encode buffer (zero-alloc contract)
}

// NewOverheadSink builds the standard RTAD collection path: broadcast
// encoder plus default port.
func NewOverheadSink(cfg Config, pcfg PortConfig) *OverheadSink {
	return &OverheadSink{
		Enc:      NewEncoder(cfg),
		Port:     NewPort(pcfg),
		cpuClock: sim.CPUClock,
	}
}

// BranchRetired implements cpu.Sink.
func (s *OverheadSink) BranchRetired(ev cpu.BranchEvent) int64 {
	at := s.cpuClock.Duration(ev.Cycle)
	s.encBuf = s.Enc.EncodeInto(s.encBuf[:0], ev)
	bytes := s.encBuf
	var stall int64
	if syncs := s.Enc.Syncs(); syncs != s.lastSyncs {
		s.lastSyncs = syncs
		stall += syncStallCycles
	}
	if len(bytes) > 0 {
		if lag := s.Port.Push(at, bytes); lag > 0 {
			stall += s.cpuClock.CyclesCeil(lag)
		}
	}
	return stall
}
