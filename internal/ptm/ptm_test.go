package ptm

import (
	"math/rand"
	"testing"
	"testing/quick"

	"rtad/internal/cpu"
	"rtad/internal/sim"
	"rtad/internal/workload"
)

func TestAddrChunksRoundTrip(t *testing.T) {
	prop := func(raw uint32) bool {
		addr := raw &^ 1 // addresses are at least halfword aligned
		return chunksToAddr(addrToChunks(addr)) == addr
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

func TestASyncRoundTrip(t *testing.T) {
	e := NewEncoder(Config{})
	stream := e.Start(0x8000)
	pkts, errs := DecodeAll(stream)
	if errs != 0 {
		t.Fatalf("%d decode errors", errs)
	}
	if len(pkts) != 2 || pkts[0].Type != PktASync || pkts[1].Type != PktISync {
		t.Fatalf("prologue decoded as %+v", pkts)
	}
	if pkts[1].Addr != 0x8000 {
		t.Errorf("i-sync addr = %#x", pkts[1].Addr)
	}
}

func branchEv(pc, target uint32, kind cpu.Kind, taken bool) cpu.BranchEvent {
	return cpu.BranchEvent{PC: pc, Target: target, Kind: kind, Taken: taken}
}

func TestBranchAddressRoundTrip(t *testing.T) {
	e := NewEncoder(Config{BranchBroadcast: true})
	targets := []uint32{0x8000, 0x8004, 0x8444, 0x9000, 0x8002, 0xFFFF0014, 0x8006}
	var stream []byte
	stream = append(stream, e.Start(0x8000)...)
	for _, tgt := range targets {
		stream = append(stream, e.Encode(branchEv(0x8000, tgt, cpu.KindDirect, true))...)
	}
	pkts, errs := DecodeAll(stream)
	if errs != 0 {
		t.Fatalf("%d decode errors", errs)
	}
	var got []uint32
	for _, p := range pkts {
		if p.Type == PktBranch {
			got = append(got, p.Addr)
		}
	}
	if len(got) != len(targets) {
		t.Fatalf("decoded %d branches, want %d", len(got), len(targets))
	}
	for i, want := range targets {
		if got[i] != want {
			t.Errorf("branch %d = %#x, want %#x", i, got[i], want)
		}
	}
}

func TestCompressionShrinksNearbyAddresses(t *testing.T) {
	e := NewEncoder(Config{BranchBroadcast: true})
	e.Start(0x8000)
	first := e.Encode(branchEv(0, 0x12345678&^1, cpu.KindDirect, true))
	near := e.Encode(branchEv(0, (0x12345678&^1)+4, cpu.KindDirect, true))
	if len(first) != maxBranchBytes {
		t.Errorf("cold branch packet = %d bytes, want %d", len(first), maxBranchBytes)
	}
	if len(near) >= len(first) {
		t.Errorf("nearby branch packet %d bytes not smaller than cold %d", len(near), len(first))
	}
	if len(near) != 1 {
		t.Errorf("delta-of-4 branch should fit one byte, got %d", len(near))
	}
}

func TestSyscallExceptionPacket(t *testing.T) {
	e := NewEncoder(Config{BranchBroadcast: true})
	var stream []byte
	stream = append(stream, e.Start(0x8000)...)
	stream = append(stream, e.Encode(branchEv(0x8010, cpu.SyscallTarget(7), cpu.KindSyscall, true))...)
	pkts, errs := DecodeAll(stream)
	if errs != 0 {
		t.Fatalf("%d decode errors", errs)
	}
	last := pkts[len(pkts)-1]
	if last.Type != PktBranch || !last.Exc || last.Kind != cpu.KindSyscall {
		t.Fatalf("syscall packet decoded as %+v", last)
	}
	if cpu.SyscallNumber(last.Addr) != 7 {
		t.Errorf("service number = %d, want 7", cpu.SyscallNumber(last.Addr))
	}
}

func TestAtomsAccumulateAndFlush(t *testing.T) {
	e := NewEncoder(Config{BranchBroadcast: true})
	e.Start(0x8000)
	var stream []byte
	// Three not-taken events buffer silently.
	for i := 0; i < 3; i++ {
		if out := e.Encode(branchEv(0x8000, 0, cpu.KindDirect, false)); len(out) != 0 {
			t.Fatalf("not-taken event %d emitted %d bytes early", i, len(out))
		}
	}
	// A taken branch must flush atoms *before* its address packet.
	stream = e.Encode(branchEv(0x8000, 0x9000, cpu.KindDirect, true))
	pkts, errs := DecodeAll(append(e.Start(0x0)[:0], stream...))
	_ = errs // compressed branch without baseline: decoder flags desync
	if len(pkts) < 2 || pkts[0].Type != PktAtoms || pkts[1].Type != PktBranch {
		t.Fatalf("flush ordering wrong: %+v", pkts)
	}
	if len(pkts[0].Atoms) != 3 {
		t.Errorf("flushed %d atoms, want 3", len(pkts[0].Atoms))
	}
	for i, a := range pkts[0].Atoms {
		if a {
			t.Errorf("atom %d = taken, want not-taken", i)
		}
	}
}

func TestAtomPacking(t *testing.T) {
	e := NewEncoder(Config{})
	e.Start(0x8000)
	var stream []byte
	pattern := []bool{true, false, true, true, false, true, false}
	for _, taken := range pattern {
		stream = append(stream, e.Encode(branchEv(0x8000, 0x8100, cpu.KindDirect, taken))...)
	}
	stream = append(stream, e.Flush()...)
	pkts, _ := DecodeAll(stream)
	var atoms []bool
	for _, p := range pkts {
		if p.Type == PktAtoms {
			atoms = append(atoms, p.Atoms...)
		}
	}
	if len(atoms) != len(pattern) {
		t.Fatalf("decoded %d atoms, want %d", len(atoms), len(pattern))
	}
	for i := range pattern {
		if atoms[i] != pattern[i] {
			t.Errorf("atom %d = %v, want %v", i, atoms[i], pattern[i])
		}
	}
}

func TestNonBroadcastEmitsAddressesOnlyForIndirect(t *testing.T) {
	e := NewEncoder(Config{BranchBroadcast: false})
	var stream []byte
	stream = append(stream, e.Start(0x8000)...)
	stream = append(stream, e.Encode(branchEv(0x8000, 0x8800, cpu.KindDirect, true))...)
	stream = append(stream, e.Encode(branchEv(0x8004, 0x8900, cpu.KindReturn, true))...)
	stream = append(stream, e.Flush()...)
	pkts, errs := DecodeAll(stream)
	if errs != 0 {
		t.Fatalf("%d decode errors", errs)
	}
	var branches, atoms int
	for _, p := range pkts {
		switch p.Type {
		case PktBranch:
			branches++
			if p.Addr != 0x8900 {
				t.Errorf("indirect address = %#x, want 0x8900", p.Addr)
			}
		case PktAtoms:
			atoms += len(p.Atoms)
		}
	}
	if branches != 1 || atoms != 1 {
		t.Errorf("branches=%d atoms=%d, want 1 and 1", branches, atoms)
	}
}

func TestPeriodicSync(t *testing.T) {
	e := NewEncoder(Config{BranchBroadcast: true, SyncEvery: 10})
	var stream []byte
	stream = append(stream, e.Start(0x8000)...)
	for i := 0; i < 25; i++ {
		stream = append(stream, e.Encode(branchEv(0x8000, 0x8000+uint32(i*4), cpu.KindDirect, true))...)
	}
	pkts, errs := DecodeAll(stream)
	if errs != 0 {
		t.Fatalf("%d decode errors", errs)
	}
	var isyncs int
	for _, p := range pkts {
		if p.Type == PktISync {
			isyncs++
		}
	}
	if isyncs != 3 { // start + 2 periodic
		t.Errorf("i-syncs = %d, want 3", isyncs)
	}
	if e.Syncs() != 3 {
		t.Errorf("Syncs() = %d, want 3", e.Syncs())
	}
}

func TestOverflowResetsCompression(t *testing.T) {
	e := NewEncoder(Config{BranchBroadcast: true})
	var stream []byte
	stream = append(stream, e.Start(0x8000)...)
	stream = append(stream, e.Encode(branchEv(0, 0x12340000, cpu.KindDirect, true))...)
	stream = append(stream, e.Overflow()...)
	post := e.Encode(branchEv(0, 0x12340004, cpu.KindDirect, true))
	if len(post) != maxBranchBytes {
		t.Errorf("post-overflow branch = %d bytes, want full %d", len(post), maxBranchBytes)
	}
	stream = append(stream, post...)
	pkts, errs := DecodeAll(stream)
	if errs != 0 {
		t.Fatalf("%d decode errors", errs)
	}
	sawOverflow := false
	for _, p := range pkts {
		if p.Type == PktOverflow {
			sawOverflow = true
		}
		if sawOverflow && p.Type == PktBranch && p.Addr != 0x12340004 {
			t.Errorf("post-overflow branch addr = %#x", p.Addr)
		}
	}
	if !sawOverflow {
		t.Error("overflow packet not decoded")
	}
}

func TestTimestampPacket(t *testing.T) {
	e := NewEncoder(Config{})
	stream := append(e.Start(0x8000), e.Timestamp(0xDEADBEEF)...)
	pkts, errs := DecodeAll(stream)
	if errs != 0 {
		t.Fatalf("%d decode errors", errs)
	}
	last := pkts[len(pkts)-1]
	if last.Type != PktTimestamp || last.TS != 0xDEADBEEF {
		t.Errorf("timestamp decoded as %+v", last)
	}
}

func TestDecoderErrorRecovery(t *testing.T) {
	d := NewStreamDecoder()
	// 0x80 with no preceding zeros is undefined at a packet boundary.
	for _, b := range []byte{0x80, 0x55, 0x66} {
		d.Feed(b)
	}
	if d.Errors == 0 {
		t.Fatal("garbage accepted without error")
	}
	// An a-sync must resynchronise the decoder.
	var pkts []Packet
	for _, b := range []byte{0, 0, 0, 0, 0, 0x80} {
		pkts = append(pkts, d.Feed(b)...)
	}
	if len(pkts) != 1 || pkts[0].Type != PktASync {
		t.Fatalf("a-sync recovery failed: %+v", pkts)
	}
	// Post-recovery stream decodes cleanly.
	e := NewEncoder(Config{BranchBroadcast: true})
	e.Start(0x8000)
	before := d.Errors
	for _, b := range e.appendBranch(nil, 0x8004, false, cpu.KindDirect) {
		pkts = append(pkts, d.Feed(b)...)
	}
	if d.Errors != before {
		t.Errorf("clean packet after recovery raised errors (%d -> %d)", before, d.Errors)
	}
}

// Property: a full workload trace window round-trips: every taken transfer
// appears as a branch packet with the right target, in order.
func TestWorkloadTraceRoundTrip(t *testing.T) {
	for _, name := range []string{"400.perlbench", "471.omnetpp", "456.hmmer"} {
		p, _ := workload.ByName(name)
		prog, err := p.Generate()
		if err != nil {
			t.Fatal(err)
		}
		enc := NewEncoder(Config{BranchBroadcast: true, SyncEvery: 64})
		var stream []byte
		var want []uint32
		sink := cpu.SinkFunc(func(ev cpu.BranchEvent) int64 {
			if ev.Taken {
				want = append(want, ev.Target)
			}
			stream = append(stream, enc.Encode(ev)...)
			return 0
		})
		c := cpu.New(prog, cpu.Config{Mode: cpu.ModeRTAD, Sink: sink})
		if _, err := c.Run(50_000); err != nil {
			t.Fatal(err)
		}
		stream = append(stream, enc.Flush()...)

		pkts, errs := DecodeAll(stream)
		if errs != 0 {
			t.Fatalf("%s: %d decode errors", name, errs)
		}
		var got []uint32
		for _, pk := range pkts {
			if pk.Type == PktBranch {
				got = append(got, pk.Addr)
			}
		}
		if len(got) != len(want) {
			t.Fatalf("%s: decoded %d branches, want %d", name, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%s: branch %d = %#x, want %#x", name, i, got[i], want[i])
			}
		}
		// Compression must actually compress: far fewer than 5 bytes per
		// taken branch on a hot trace.
		if ratio := float64(len(stream)) / float64(len(want)); ratio > 4.0 {
			t.Errorf("%s: %.2f stream bytes per branch — compression ineffective", name, ratio)
		}
	}
}

// Property: random event sequences round-trip through encode/decode.
func TestRandomEventsRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	for trial := 0; trial < 50; trial++ {
		enc := NewEncoder(Config{BranchBroadcast: true, SyncEvery: 16})
		var stream []byte
		var want []uint32
		stream = append(stream, enc.Start(0x8000)...)
		for i := 0; i < 200; i++ {
			taken := r.Intn(4) != 0
			target := (uint32(r.Intn(1<<20)) &^ 3) + 0x8000
			kind := cpu.KindDirect
			if r.Intn(10) == 0 {
				kind = cpu.KindSyscall
				target = cpu.SyscallTarget(int32(r.Intn(32)))
			}
			if taken {
				want = append(want, target)
			}
			stream = append(stream, enc.Encode(branchEv(0x8000, target, kind, taken))...)
		}
		stream = append(stream, enc.Flush()...)
		pkts, errs := DecodeAll(stream)
		if errs != 0 {
			t.Fatalf("trial %d: %d decode errors", trial, errs)
		}
		var got []uint32
		for _, pk := range pkts {
			if pk.Type == PktBranch {
				got = append(got, pk.Addr)
			}
		}
		if len(got) != len(want) {
			t.Fatalf("trial %d: %d branches, want %d", trial, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("trial %d: branch %d mismatch", trial, i)
			}
		}
	}
}

func TestPortThresholdHoldback(t *testing.T) {
	port := NewPort(PortConfig{DrainThreshold: 16, BytesPerCycle: 4})
	at := sim.Time(1000 * sim.Nanosecond)
	port.Push(at, make([]byte, 10))
	if got := port.Take(); len(got) != 0 {
		t.Fatalf("released %d bytes below threshold", len(got))
	}
	if port.Occupancy() != 10 {
		t.Errorf("occupancy = %d, want 10", port.Occupancy())
	}
	port.Push(at+sim.Microsecond, make([]byte, 10))
	out := port.Take()
	if len(out) != 20 {
		t.Fatalf("released %d bytes, want 20", len(out))
	}
	// Release times: 4 bytes per fabric cycle starting at the next edge.
	first := out[0].At
	if first < at+sim.Microsecond {
		t.Errorf("release before push: %v", first)
	}
	if out[4].At != first+sim.FabricClock.Period() {
		t.Errorf("beat pacing wrong: %v then %v", first, out[4].At)
	}
	if out[3].At != first {
		t.Errorf("bytes within a beat must share a timestamp")
	}
	if port.Releases() != 1 || port.Occupancy() != 0 {
		t.Errorf("releases=%d occupancy=%d", port.Releases(), port.Occupancy())
	}
}

func TestPortFlush(t *testing.T) {
	port := NewPort(PortConfig{DrainThreshold: 1000})
	port.Push(0, []byte{1, 2, 3})
	port.Flush(sim.Microsecond)
	out := port.Take()
	if len(out) != 3 {
		t.Fatalf("flush released %d bytes", len(out))
	}
	if out[0].At < sim.Microsecond {
		t.Error("flush release time precedes flush call")
	}
}

func TestPortBackpressure(t *testing.T) {
	// A tiny queue plus a flood of bytes must stall the producer.
	port := NewPort(PortConfig{DrainThreshold: 4, BytesPerCycle: 1, QueueBytes: 8})
	var stalled sim.Time
	for i := 0; i < 100; i++ {
		stalled += port.Push(0, []byte{1, 2, 3, 4})
	}
	if stalled == 0 {
		t.Error("no backpressure under sustained overload")
	}
}

func TestOverheadSinkNegligibleOnRealWorkload(t *testing.T) {
	p, _ := workload.ByName("458.sjeng")
	prog, err := p.Generate()
	if err != nil {
		t.Fatal(err)
	}
	base := cpu.New(prog, cpu.Config{Mode: cpu.ModeBaseline})
	base.Run(400_000)

	sink := NewOverheadSink(Config{BranchBroadcast: true}, PortConfig{})
	traced := cpu.New(prog, cpu.Config{Mode: cpu.ModeRTAD, Sink: sink})
	traced.Run(400_000)

	overhead := float64(traced.Cycles()-base.Cycles()) / float64(base.Cycles())
	if overhead < 0 {
		t.Fatalf("negative overhead %.5f", overhead)
	}
	if overhead > 0.005 {
		t.Errorf("RTAD overhead %.4f%% not negligible (paper: 0.052%%)", overhead*100)
	}
}

// Property: the decoder never panics and never emits more branch packets
// than plausible on arbitrary byte soup (robustness against a corrupted or
// hostile trace stream).
func TestDecoderRobustToGarbage(t *testing.T) {
	prop := func(stream []byte) bool {
		d := NewStreamDecoder()
		pkts := 0
		for _, b := range stream {
			pkts += len(d.Feed(b))
		}
		return pkts <= len(stream)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: interleaving overflow markers anywhere in a valid stream never
// produces decode errors for the packets after the next full-address
// branch (the compression reset contract).
func TestOverflowAnywhereRecovers(t *testing.T) {
	r := rand.New(rand.NewSource(17))
	for trial := 0; trial < 30; trial++ {
		enc := NewEncoder(Config{BranchBroadcast: true})
		var stream []byte
		stream = append(stream, enc.Start(0x8000)...)
		for i := 0; i < 100; i++ {
			if r.Intn(10) == 0 {
				stream = append(stream, enc.Overflow()...)
			}
			tgt := 0x8000 + uint32(r.Intn(1<<16))&^3
			stream = append(stream, enc.Encode(branchEv(0x8000, tgt, cpu.KindDirect, true))...)
		}
		if _, errs := DecodeAll(stream); errs != 0 {
			t.Fatalf("trial %d: %d errors with interleaved overflows", trial, errs)
		}
	}
}

func TestPortMaxOccupancyTracksHoldback(t *testing.T) {
	port := NewPort(PortConfig{DrainThreshold: 100})
	port.Push(0, make([]byte, 60))
	if port.MaxOccupancy() != 60 {
		t.Errorf("MaxOccupancy = %d, want 60", port.MaxOccupancy())
	}
	port.Push(0, make([]byte, 60)) // crosses threshold, releases
	if port.Occupancy() != 0 {
		t.Error("release did not empty the hold-back buffer")
	}
	if port.MaxOccupancy() != 120 {
		t.Errorf("MaxOccupancy = %d, want 120", port.MaxOccupancy())
	}
}
