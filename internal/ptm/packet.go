// Package ptm models the ARM CoreSight Program Trace Macrocell: the
// on-core unit that observes retired branches and emits a compressed packet
// stream describing the program's control flow. The packet protocol here is
// PFT-flavoured rather than register-exact ETMv3 — it keeps every property
// the RTAD evaluation depends on (byte-granular variable-length packets,
// prefix-compressed branch addresses, taken/not-taken atoms, periodic
// synchronisation, an internal FIFO whose drain threshold delays visibility
// of trace data, and a branch-broadcast mode that forces full addresses for
// all taken branches) while remaining small enough to verify exhaustively.
//
// Packet format (first byte classifies the packet):
//
//	0x00                 a-sync component; alignment sync is 0x00 ×5 then 0x80
//	0x80                 a-sync terminator
//	0x08                 i-sync: 4 little-endian address bytes + 1 info byte
//	0x04                 timestamp: 4 little-endian cycle-count bytes
//	0x10                 overflow marker: trace bytes were lost upstream
//	bit0 = 1             branch-address packet (1–5 address bytes):
//	                       byte0:  [C][a4..a0][E][1]
//	                       byteK:  [C][a 7 bits]          (while C of previous = 1)
//	                     address value is target>>1 assembled low-first;
//	                     chunks above the emitted ones are inherited from the
//	                     previous branch address (prefix compression).
//	                     If E=1 an exception byte [1110|kind] follows the last
//	                     address byte (used for supervisor-call entries).
//	bits[1:0] = 10       atom packet: [A3 A2 A1 A0][C1 C0][1][0] carries
//	                     count = C+1 atoms, A0 oldest; atom 1 = taken.
package ptm

import (
	"fmt"

	"rtad/internal/cpu"
)

// Header bytes and field masks.
const (
	hdrAsyncZero = 0x00
	hdrAsyncTerm = 0x80
	hdrISync     = 0x08
	hdrTimestamp = 0x04
	hdrOverflow  = 0x10

	branchMarkerBit = 0x01
	branchExcBit    = 0x02
	continuationBit = 0x80
	atomMarker      = 0x02 // bits[1:0] == 10
	excByteBase     = 0xE0
	maxAtomsPerByte = 4
	maxBranchBytes  = 5
	asyncZeroCount  = 5
)

// PacketType classifies a decoded packet.
type PacketType uint8

// Packet types produced by the decoder.
const (
	PktASync PacketType = iota
	PktISync
	PktBranch
	PktAtoms
	PktTimestamp
	PktOverflow
)

var pktNames = []string{"a-sync", "i-sync", "branch", "atoms", "timestamp", "overflow"}

// String names the packet type.
func (t PacketType) String() string {
	if int(t) < len(pktNames) {
		return pktNames[t]
	}
	return fmt.Sprintf("pkt(%d)", uint8(t))
}

// Packet is one decoded trace packet.
type Packet struct {
	Type  PacketType
	Addr  uint32   // PktBranch target, PktISync current address
	Kind  cpu.Kind // PktBranch with exception byte (syscalls); else KindDirect
	Exc   bool     // PktBranch carried an exception byte
	Atoms []bool   // PktAtoms payload, oldest first (true = taken)
	TS    uint32   // PktTimestamp payload
	Info  byte     // PktISync info byte
}

// addrChunks splits v = addr>>1 into the on-wire chunk widths: 5 bits in the
// first byte, then 7-bit groups. 5+7+7+7+5 covers the 31-bit value.
const numChunks = 5

var chunkWidth = [numChunks]uint{5, 7, 7, 7, 5}

func addrToChunks(addr uint32) [numChunks]uint32 {
	v := addr >> 1
	var out [numChunks]uint32
	for i := 0; i < numChunks; i++ {
		out[i] = v & (1<<chunkWidth[i] - 1)
		v >>= chunkWidth[i]
	}
	return out
}

func chunksToAddr(ch [numChunks]uint32) uint32 {
	var v uint32
	shift := uint(0)
	for i := 0; i < numChunks; i++ {
		v |= ch[i] << shift
		shift += chunkWidth[i]
	}
	return v << 1
}
