package ptm

import (
	"testing"

	"rtad/internal/cpu"
	"rtad/internal/sim"
)

// TestEncodeIntoSteadyStateZeroAlloc pins the encoder's hot-path contract:
// recycling the destination buffer encodes every event without allocating,
// including across periodic-sync boundaries.
func TestEncodeIntoSteadyStateZeroAlloc(t *testing.T) {
	e := NewEncoder(Config{BranchBroadcast: true})
	var buf []byte
	var cycle int64
	ev := func(target uint32) cpu.BranchEvent {
		cycle += 10
		return cpu.BranchEvent{PC: 0x8000, Target: target, Kind: cpu.KindDirect, Taken: true, Cycle: cycle}
	}
	// Warm-up grows buf past the largest sync+branch burst.
	for i := 0; i < 2048; i++ {
		buf = e.EncodeInto(buf[:0], ev(0x8000+uint32(i%64)*4))
	}
	allocs := testing.AllocsPerRun(500, func() {
		buf = e.EncodeInto(buf[:0], ev(0x8000+uint32(cycle%64)*4))
	})
	if allocs > 0 {
		t.Fatalf("EncodeInto allocates %.2f objects/op in steady state, want 0", allocs)
	}
}

// TestFeedByteZeroAlloc checks the decoder consumes a representative stream
// (syncs, branches, atoms) without allocating.
func TestFeedByteZeroAlloc(t *testing.T) {
	// Build a stream with every packet family.
	e := NewEncoder(Config{BranchBroadcast: false, SyncEvery: 32})
	var stream []byte
	var cycle int64
	for i := 0; i < 4096; i++ {
		cycle += 10
		taken := i%3 != 0
		kind := cpu.KindDirect
		if i%17 == 0 {
			kind = cpu.KindIndirect
		}
		stream = e.EncodeInto(stream, cpu.BranchEvent{
			PC: 0x8000, Target: 0x8000 + uint32(i%128)*4, Kind: kind, Taken: taken, Cycle: cycle,
		})
	}
	stream = e.FlushInto(stream)

	d := NewStreamDecoder()
	i := 0
	var pkts int
	allocs := testing.AllocsPerRun(len(stream)-1, func() {
		if _, ok := d.FeedByte(stream[i]); ok {
			pkts++
		}
		i++
	})
	if allocs > 0 {
		t.Fatalf("FeedByte allocates %.2f objects/op, want 0", allocs)
	}
	if pkts == 0 {
		t.Fatal("no packets decoded — the path under test did not run")
	}
}

// TestFeedByteMatchesFeed cross-checks the zero-alloc API against the compat
// wrapper on a mixed stream.
func TestFeedByteMatchesFeed(t *testing.T) {
	e := NewEncoder(Config{BranchBroadcast: false, SyncEvery: 16})
	var stream []byte
	var cycle int64
	for i := 0; i < 512; i++ {
		cycle += 10
		stream = e.EncodeInto(stream, cpu.BranchEvent{
			PC: 0x8000, Target: 0x8000 + uint32(i%32)*4,
			Kind: cpu.KindDirect, Taken: i%2 == 0, Cycle: cycle,
		})
	}
	stream = e.FlushInto(stream)

	da, db := NewStreamDecoder(), NewStreamDecoder()
	for _, b := range stream {
		want := da.Feed(b)
		pkt, ok := db.FeedByte(b)
		if ok != (len(want) == 1) {
			t.Fatalf("FeedByte ok=%v, Feed returned %d packets", ok, len(want))
		}
		if !ok {
			continue
		}
		w := want[0]
		if pkt.Type != w.Type || pkt.Addr != w.Addr || pkt.Exc != w.Exc || pkt.Kind != w.Kind {
			t.Fatalf("FeedByte packet %+v, Feed %+v", pkt, w)
		}
		if len(pkt.Atoms) != len(w.Atoms) {
			t.Fatalf("atoms length %d vs %d", len(pkt.Atoms), len(w.Atoms))
		}
		for i := range w.Atoms {
			if pkt.Atoms[i] != w.Atoms[i] {
				t.Fatalf("atom %d differs", i)
			}
		}
	}
	if da.Errors != db.Errors || da.Bytes != db.Bytes {
		t.Fatalf("counters diverge: (%d,%d) vs (%d,%d)", da.Errors, da.Bytes, db.Errors, db.Bytes)
	}
}

// TestPortTakeIntoZeroAlloc pins the port hand-off: pushing and draining
// through a recycled buffer allocates nothing once warm.
func TestPortTakeIntoZeroAlloc(t *testing.T) {
	p := NewPort(PortConfig{DrainThreshold: 16})
	var out []TimedByte
	data := []byte{1, 2, 3, 4, 5, 6, 7, 8}
	var at int64
	for i := 0; i < 256; i++ { // warm-up
		at += 1000
		p.Push(sim.Time(at), data)
		out = p.TakeInto(out[:0])
	}
	allocs := testing.AllocsPerRun(500, func() {
		at += 1000
		p.Push(sim.Time(at), data)
		out = p.TakeInto(out[:0])
	})
	if allocs > 0 {
		t.Fatalf("Push+TakeInto allocates %.2f objects/op in steady state, want 0", allocs)
	}
}
