package synth

import (
	"fmt"
	"strings"

	"rtad/internal/gpu"
	"rtad/internal/trim"
)

// Row is one Table I line.
type Row struct {
	Module    string
	Submodule string
	Area      Area
}

// TableI is the synthesized-results table.
type TableI struct {
	Rows  []Row
	Total Area
}

// ZC706 device capacity, for the utilisation figures quoted in §IV-A.
const (
	ZC706LUTs  = 218600
	ZC706FFs   = 437200
	ZC706BRAMs = 545
)

// MLMIAOWCUs is the number of trimmed compute units the prototype deploys.
const MLMIAOWCUs = 5

// BuildTableI assembles the table from the module netlists plus the
// compute-engine footprint derived from the trimmed block set. keep is the
// trimming result (trim.Run's coverage); a nil keep uses the full MIAOW
// block set (which would not fit five times, as §IV-A notes).
func BuildTableI(keep *gpu.CoverageSet) TableI {
	var t TableI
	add := func(module string, n *Netlist) {
		a := n.Estimate()
		t.Rows = append(t.Rows, Row{Module: module, Submodule: n.Name, Area: a})
		t.Total.Add(a)
	}
	add("IGM", TraceAnalyzer())
	add("IGM", P2S())
	add("IGM", InputVectorGenerator())
	add("MCM", InternalFIFO())
	add("MCM", MLMIAOWDriver())
	add("MCM", ControlFSM())
	add("MCM", InterruptManager())

	cu := trim.AreaOf(keep)
	engine := Area{
		LUTs:  cu.LUTs * MLMIAOWCUs,
		FFs:   cu.FFs * MLMIAOWCUs,
		BRAMs: cu.BRAMs * MLMIAOWCUs,
	}
	engine.Gates = GPUGates(engine.LUTs, engine.FFs, engine.BRAMs)
	t.Rows = append(t.Rows, Row{Module: "MCM", Submodule: fmt.Sprintf("ML-MIAOW (%d CUs)", MLMIAOWCUs), Area: engine})
	t.Total.Add(engine)
	return t
}

// Utilisation returns the MLPU's share of the ZC706 fabric, the §IV-A
// percentages (91.2 % LUTs, 18.5 % FFs, 27.5 % BRAMs).
func (t TableI) Utilisation() (lut, ff, bram float64) {
	return float64(t.Total.LUTs) / ZC706LUTs,
		float64(t.Total.FFs) / ZC706FFs,
		float64(t.Total.BRAMs) / ZC706BRAMs
}

// String renders the table in the paper's layout.
func (t TableI) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-6s %-24s %10s %8s %6s %12s\n", "Module", "Submodule", "LUTs", "FFs", "BRAMs", "Gate Counts")
	for _, r := range t.Rows {
		fmt.Fprintf(&b, "%-6s %-24s %10d %8d %6d %12d\n",
			r.Module, r.Submodule, r.Area.LUTs, r.Area.FFs, r.Area.BRAMs, r.Area.Gates)
	}
	fmt.Fprintf(&b, "%-6s %-24s %10d %8d %6d %12d\n", "Total", "",
		t.Total.LUTs, t.Total.FFs, t.Total.BRAMs, t.Total.Gates)
	lut, ff, bram := t.Utilisation()
	fmt.Fprintf(&b, "MLPU utilisation: %.1f%% LUTs, %.1f%% FFs, %.1f%% BRAMs of the ZC706\n",
		lut*100, ff*100, bram*100)
	return b.String()
}
