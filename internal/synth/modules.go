package synth

// Netlist builders for the RTAD modules, sized from the architecture
// parameters the behavioural models in this repository actually use
// (internal/igm, internal/mcm). Table I is the calibration target.

// TraceAnalyzer: four TA units, each a byte-serial PFT packet decoder —
// the decode tables dominate (conditional trees over packet headers,
// address-chunk reassembly), which is why this module is LUT-heavy and
// FF-light in Table I (11,962 / 350).
func TraceAnalyzer() *Netlist {
	n := &Netlist{Name: "Trace Analyzer"}
	const taUnits = 4
	// Per unit: packet classification + chunk steering decode trees.
	n.Add(Logic, 2900, taUnits)
	// Per unit: FSM state, chunk accumulator (31 b), byte counters.
	n.Add(Reg, 80, taUnits)
	// Stream merge/alignment across the four units.
	n.Add(Logic, 350, 1)
	n.Add(Reg, 32, 1)
	return n
}

// P2S: the parallel-to-serial converter between the four TA units and the
// IVG — skid buffers and an output queue built from registers (FF-heavy:
// 686 / 1,074 in Table I).
func P2S() *Netlist {
	n := &Netlist{Name: "P2S"}
	// Four double-buffered 32-bit address slots, two pipeline stages deep.
	n.Add(Reg, 32, 16)
	// Sixteen-deep 32-bit output queue in registers.
	n.Add(Reg, 32, 16)
	// Valid/credit tracking.
	n.Add(Reg, 50, 1)
	// 4:1 round-robin arbiter (three 2:1 mux stages of 32 bits).
	n.Add(Mux, 32, 3)
	// Grant/credit control logic.
	n.Add(Logic, 500, 1)
	// Queue pointers.
	n.Add(Adder, 8, 4)
	return n
}

// InputVectorGenerator: the address-mapper lookup table (distributed RAM,
// hash-probed) plus the vector encoder's window registers and conversion
// table (890 / 1,067 / 0 BRAM in Table I — the table is small enough to
// stay out of block RAM).
func InputVectorGenerator() *Netlist {
	n := &Netlist{Name: "Input Vector Generator"}
	// Mapper table: 64 entries x (32-bit tag + 10-bit class) in LUTRAM.
	n.Add(LUTRAM, 42, 64)
	// Conversion table: 32 x 16-bit encodings.
	n.Add(LUTRAM, 16, 32)
	// Window shift register: 16 positions x 10-bit class IDs.
	n.Add(Reg, 10, 16)
	// Pipeline registers (mapper stage, encoder stage) + stride counter.
	n.Add(Reg, 42, 2)
	n.Add(Reg, 32, 24)
	n.Add(Adder, 16, 2)
	// Hash/probe compare and encode logic.
	n.Add(Cmp, 32, 4)
	n.Add(Logic, 600, 1)
	n.Add(Mux, 40, 4)
	return n
}

// InternalFIFO: the MCM vector FIFO — block-RAM payload with a thin
// register/control shell (13 / 33 / 10 BRAMs / 262 GE in Table I; the
// ASIC flow places the payload as SRAM macros outside the gate count).
func InternalFIFO() *Netlist {
	n := &Netlist{Name: "Internal FIFO"}
	n.Add(RAM, BRAMBits, 10)
	n.Add(Reg, 33, 1)
	n.Add(Logic, 8, 1)
	n.Add(Adder, 5, 1)
	return n
}

// MLMIAOWDriver: the block issuing control-register writes and the start
// command to the compute engine (489 / 265 in Table I).
func MLMIAOWDriver() *Netlist {
	n := &Netlist{Name: "ML-MIAOW Driver"}
	n.Add(Reg, 32, 8)     // CU control shadow registers
	n.Add(Reg, 9, 1)      // sequencing state
	n.Add(LUTRAM, 64, 16) // command/descriptor queue
	n.Add(Logic, 450, 1)
	n.Add(Mux, 64, 2)
	n.Add(Adder, 16, 2)
	return n
}

// ControlFSM: the five-state MCM controller with its configuration
// registers, transaction counters and address generators (1,609 / 1,698).
func ControlFSM() *Netlist {
	n := &Netlist{Name: "Control FSM"}
	n.Add(Reg, 32, 48) // config + status register file
	n.Add(Reg, 114, 1) // state, timers, handshake trackers
	n.Add(Logic, 1150, 1)
	n.Add(Cmp, 32, 4)
	n.Add(Adder, 32, 3)
	n.Add(Mux, 64, 4)
	return n
}

// InterruptManager: IRQ latch, mask and cause registers (42 / 91).
func InterruptManager() *Netlist {
	n := &Netlist{Name: "Interrupt Manager"}
	n.Add(Reg, 91, 1)
	n.Add(Logic, 30, 1)
	n.Add(Mux, 16, 1)
	return n
}
