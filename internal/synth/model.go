// Package synth estimates the hardware footprint of every RTAD module,
// reproducing Table I: per-submodule LUT/FF/BRAM counts for the FPGA
// prototype and gate-equivalent counts for a 45 nm-style ASIC flow. Each
// module is described as a netlist of technology-independent primitives
// (registers, adders, muxes, comparators, raw logic terms, memories) sized
// from the actual architecture parameters used elsewhere in this
// repository; two cost models translate primitives into FPGA resources and
// gate equivalents (1 GE = one 2-input NAND).
//
// Fidelity note: the FPGA numbers are the calibrated layer (they are what
// the paper's prototype argument rests on); the ASIC gate counts are a
// coarser translation, as they are in any pre-synthesis estimate.
package synth

import (
	"fmt"
	"strings"
)

// Kind classifies a primitive.
type Kind uint8

// Primitive kinds.
const (
	Reg    Kind = iota // Bits flip-flop bits
	Adder              // Bits adder bit-slices
	Mux                // Bits 2:1 mux bit-slices
	Cmp                // Bits comparator bit-slices
	Logic              // Bits raw LUT-sized logic terms (decode tables, FSMs)
	RAM                // Bits memory bits; large arrays map to BRAM
	LUTRAM             // Bits small distributed-RAM bits
)

var kindNames = []string{"reg", "adder", "mux", "cmp", "logic", "ram", "lutram"}

// String names the kind.
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Primitive is one netlist element: Count instances of Bits bits each.
type Primitive struct {
	Kind  Kind
	Bits  int
	Count int
}

// Netlist is a module's structural description.
type Netlist struct {
	Name  string
	Prims []Primitive
}

// Add appends count instances of a primitive with the given bit width.
func (n *Netlist) Add(k Kind, bits, count int) {
	n.Prims = append(n.Prims, Primitive{Kind: k, Bits: bits, Count: count})
}

// Area is an estimated footprint.
type Area struct {
	LUTs  int
	FFs   int
	BRAMs int
	Gates int // gate equivalents (2-input NAND)
}

// Add accumulates b into a.
func (a *Area) Add(b Area) {
	a.LUTs += b.LUTs
	a.FFs += b.FFs
	a.BRAMs += b.BRAMs
	a.Gates += b.Gates
}

// BRAMBits is the capacity of one block RAM (RAMB18-style).
const BRAMBits = 18 * 1024

// FPGA cost model: LUTs/FFs/BRAMs per primitive bit.
var fpgaLUTPerBit = map[Kind]float64{
	Adder: 1.0, Mux: 0.5, Cmp: 0.4, Logic: 1.0, LUTRAM: 1.0 / 40,
}

// ASIC cost model: gate equivalents per primitive bit. RAM bits are
// excluded — an ASIC flow places them as SRAM macros whose area the gate
// count does not include (this is why Table I's "Internal FIFO" row shows
// 10 BRAMs but only 262 gates).
var gatePerBit = map[Kind]float64{
	Reg: 7.0, Adder: 5.5, Mux: 2.3, Cmp: 3.0, Logic: 0.85, LUTRAM: 0.9,
}

// Estimate translates the netlist through both cost models.
func (n *Netlist) Estimate() Area {
	var a Area
	var lutF, gateF float64
	for _, p := range n.Prims {
		bits := p.Bits * p.Count
		switch p.Kind {
		case Reg:
			a.FFs += bits
		case RAM:
			a.BRAMs += (bits + BRAMBits - 1) / BRAMBits
		}
		lutF += fpgaLUTPerBit[p.Kind] * float64(bits)
		gateF += gatePerBit[p.Kind] * float64(bits)
	}
	a.LUTs = int(lutF)
	a.Gates = int(gateF)
	return a
}

// GPU FPGA→gate translation weights, the estimation path for ML-MIAOW
// (whose footprint comes from the calibrated block table in internal/gpu
// rather than a primitive netlist). Calibrated against Table I's
// 1,865,989 GE for five trimmed CUs.
const (
	gpuGatePerLUT     = 6.5
	gpuGatePerFF      = 5.0
	gpuGatePerBRAMBit = 0.12
)

// GPUGates translates an FPGA footprint of the compute engine into gate
// equivalents.
func GPUGates(luts, ffs, brams int) int {
	return int(float64(luts)*gpuGatePerLUT +
		float64(ffs)*gpuGatePerFF +
		float64(brams*BRAMBits)*gpuGatePerBRAMBit)
}

// Describe renders the netlist's primitive inventory, one line per entry,
// for the synthesis report's transparency view.
func (n *Netlist) Describe() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s:\n", n.Name)
	for _, p := range n.Prims {
		fmt.Fprintf(&b, "  %-7s %5d x %4d bits\n", p.Kind, p.Count, p.Bits)
	}
	return b.String()
}
