package synth

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"rtad/internal/gpu"
	"rtad/internal/ml"
	"rtad/internal/trim"
)

// Published Table I rows (LUTs, FFs, BRAMs, gates).
var paperTableI = map[string][4]int{
	"Trace Analyzer":         {11962, 350, 0, 12375},
	"P2S":                    {686, 1074, 0, 14363},
	"Input Vector Generator": {890, 1067, 0, 10430},
	"Internal FIFO":          {13, 33, 10, 262},
	"ML-MIAOW Driver":        {489, 265, 0, 5971},
	"Control FSM":            {1609, 1698, 0, 16977},
	"Interrupt Manager":      {42, 91, 0, 927},
	"ML-MIAOW (5 CUs)":       {183715, 76375, 140, 1865989},
}

func within(got, want int, tol float64) bool {
	if want == 0 {
		return got == 0
	}
	return math.Abs(float64(got-want)) <= tol*float64(want)
}

func mlMIAOWKeep(t *testing.T) *gpu.CoverageSet {
	t.Helper()
	rng := rand.New(rand.NewSource(5))
	mk := func(vocab, window, n int) [][]int32 {
		out := make([][]int32, n)
		cur := int32(0)
		for i := range out {
			w := make([]int32, window)
			for j := range w {
				w[j] = cur
				cur = (cur + int32(rng.Intn(3))) % int32(vocab)
			}
			out[i] = w
		}
		return out
	}
	ecfg := ml.DefaultELMConfig()
	elm, err := ml.TrainELM(ecfg, mk(ecfg.Vocab, ecfg.Window, 400))
	if err != nil {
		t.Fatal(err)
	}
	lcfg := ml.DefaultLSTMConfig()
	lcfg.Epochs = 1
	lstm, err := ml.TrainLSTM(lcfg, mk(lcfg.Vocab, lcfg.Window, 150))
	if err != nil {
		t.Fatal(err)
	}
	res, err := trim.Run(trim.StandardWorkloads(elm, lstm, 6))
	if err != nil {
		t.Fatal(err)
	}
	return &res.Coverage
}

func TestTableIRowsMatchPaper(t *testing.T) {
	table := BuildTableI(mlMIAOWKeep(t))
	if len(table.Rows) != len(paperTableI) {
		t.Fatalf("%d rows, want %d", len(table.Rows), len(paperTableI))
	}
	for _, r := range table.Rows {
		want, ok := paperTableI[r.Submodule]
		if !ok {
			t.Errorf("unexpected row %q", r.Submodule)
			continue
		}
		// FPGA resources are the calibrated layer: hold rows to ±25%.
		if !within(r.Area.LUTs, want[0], 0.25) {
			t.Errorf("%s LUTs = %d, paper %d", r.Submodule, r.Area.LUTs, want[0])
		}
		if !within(r.Area.FFs, want[1], 0.25) {
			t.Errorf("%s FFs = %d, paper %d", r.Submodule, r.Area.FFs, want[1])
		}
		if r.Area.BRAMs != want[2] {
			t.Errorf("%s BRAMs = %d, paper %d", r.Submodule, r.Area.BRAMs, want[2])
		}
		// Gate counts are the coarse layer: ±50%.
		if !within(r.Area.Gates, want[3], 0.5) {
			t.Errorf("%s gates = %d, paper %d", r.Submodule, r.Area.Gates, want[3])
		}
	}
	// Totals (paper: 199,406 / 80,953 / 150 / 1,927,294).
	if !within(table.Total.LUTs, 199406, 0.10) {
		t.Errorf("total LUTs = %d, paper 199406", table.Total.LUTs)
	}
	if !within(table.Total.FFs, 80953, 0.10) {
		t.Errorf("total FFs = %d, paper 80953", table.Total.FFs)
	}
	if table.Total.BRAMs != 150 {
		t.Errorf("total BRAMs = %d, paper 150", table.Total.BRAMs)
	}
	if !within(table.Total.Gates, 1927294, 0.10) {
		t.Errorf("total gates = %d, paper 1927294", table.Total.Gates)
	}
}

func TestUtilisationMatchesPaper(t *testing.T) {
	table := BuildTableI(mlMIAOWKeep(t))
	lut, ff, bram := table.Utilisation()
	if math.Abs(lut-0.912) > 0.09 {
		t.Errorf("LUT utilisation %.3f, paper 0.912", lut)
	}
	if math.Abs(ff-0.185) > 0.05 {
		t.Errorf("FF utilisation %.3f, paper 0.185", ff)
	}
	if math.Abs(bram-0.275) > 0.05 {
		t.Errorf("BRAM utilisation %.3f, paper 0.275", bram)
	}
	// The whole point of trimming: five full-MIAOW CUs would NOT fit.
	fullTable := BuildTableI(nil)
	if fullTable.Total.LUTs < ZC706LUTs {
		t.Errorf("five untrimmed MIAOW CUs (%d LUTs) should exceed the ZC706 (%d)",
			fullTable.Total.LUTs, ZC706LUTs)
	}
}

func TestEstimateAccountsEveryPrimitive(t *testing.T) {
	n := &Netlist{Name: "probe"}
	n.Add(Reg, 10, 2)
	n.Add(Adder, 8, 1)
	n.Add(Mux, 4, 2)
	n.Add(Cmp, 10, 1)
	n.Add(Logic, 100, 1)
	n.Add(RAM, BRAMBits, 3)
	n.Add(LUTRAM, 40, 2)
	a := n.Estimate()
	if a.FFs != 20 {
		t.Errorf("FFs = %d, want 20", a.FFs)
	}
	if a.BRAMs != 3 {
		t.Errorf("BRAMs = %d, want 3", a.BRAMs)
	}
	wantLUT := int(8.0 + 4.0 + 4.0 + 100.0 + 80.0/40)
	if a.LUTs != wantLUT {
		t.Errorf("LUTs = %d, want %d", a.LUTs, wantLUT)
	}
	if a.Gates <= 0 {
		t.Error("no gates estimated")
	}
	// RAM bits contribute no gates (SRAM macros).
	n2 := &Netlist{Name: "ram-only"}
	n2.Add(RAM, BRAMBits, 5)
	if g := n2.Estimate().Gates; g != 0 {
		t.Errorf("RAM-only netlist has %d gates, want 0", g)
	}
}

func TestTableIString(t *testing.T) {
	s := BuildTableI(mlMIAOWKeep(t)).String()
	for _, frag := range []string{"Trace Analyzer", "ML-MIAOW (5 CUs)", "Total", "utilisation"} {
		if !strings.Contains(s, frag) {
			t.Errorf("rendered table missing %q", frag)
		}
	}
}

func TestKindString(t *testing.T) {
	for k := Reg; k <= LUTRAM; k++ {
		if strings.HasPrefix(k.String(), "kind(") {
			t.Errorf("kind %d unnamed", k)
		}
	}
}

func TestNetlistDescribe(t *testing.T) {
	s := P2S().Describe()
	if !strings.Contains(s, "P2S") || !strings.Contains(s, "reg") {
		t.Errorf("Describe output incomplete: %q", s)
	}
}
