package soc

import (
	"testing"

	"rtad/internal/cpu"
	"rtad/internal/igm"
	"rtad/internal/kernels"
	"rtad/internal/mcm"
	"rtad/internal/ptm"
	"rtad/internal/sim"
	"rtad/internal/tpiu"
	"rtad/internal/workload"
)

// analyticVectors runs the same record through internal/core's stage models
// (the analytic path, reproduced here from its building blocks to avoid an
// import cycle with core's training machinery).
func analyticVectors(events []cpu.BranchEvent, cfg Config) []igm.Vector {
	enc := ptm.NewEncoder(ptm.Config{BranchBroadcast: true})
	port := ptm.NewPort(ptm.PortConfig{DrainThreshold: cfg.DrainThreshold})
	fmtr := tpiu.NewFormatter(tpiu.Config{})
	g := igm.New(igm.Config{Mapper: cfg.Mapper, Window: cfg.Window, Stride: cfg.Stride})
	var last sim.Time
	for _, ev := range events {
		last = sim.CPUClock.Duration(ev.Cycle)
		port.Push(last, enc.Encode(ev))
	}
	port.Push(last, enc.Flush())
	port.Flush(last)
	for _, tb := range port.Take() {
		fmtr.Push(tb.At, tb.B)
	}
	fmtr.Flush(last)
	for _, w := range fmtr.Take() {
		g.FeedWord(w)
	}
	return g.Take()
}

func record(t *testing.T, bench string, instr int64) ([]cpu.BranchEvent, *igm.AddressMap) {
	t.Helper()
	p, ok := workload.ByName(bench)
	if !ok {
		t.Fatalf("unknown benchmark %s", bench)
	}
	prog, err := p.Generate()
	if err != nil {
		t.Fatal(err)
	}
	rec := &cpu.CollectSink{}
	c := cpu.New(prog, cpu.Config{Mode: cpu.ModeRTAD, Sink: rec})
	if _, err := c.Run(instr); err != nil {
		t.Fatal(err)
	}
	// Vocabulary: the eight hottest targets keep the test focused.
	counts := map[uint32]int{}
	for _, ev := range rec.Events {
		if ev.Taken {
			counts[ev.Target]++
		}
	}
	mapper := igm.NewAddressMap()
	for n := 0; n < 48; n++ {
		best, bestN := uint32(0), 0
		for a, c := range counts {
			if c > bestN {
				best, bestN = a, c
			}
		}
		if bestN == 0 {
			break
		}
		mapper.Add(best)
		delete(counts, best)
	}
	return rec.Events, mapper
}

// TestCycleModelMatchesAnalyticModel is the co-simulation cross-check: the
// cycle-stepped hardware and the analytic availability-time algebra must
// produce the identical vector stream, with emission times agreeing to
// within a handful of fabric cycles (the models register data at slightly
// different points).
func TestCycleModelMatchesAnalyticModel(t *testing.T) {
	for _, bench := range []string{"458.sjeng", "456.hmmer"} {
		events, mapper := record(t, bench, 40_000)
		cfg := Config{Mapper: mapper, Window: 4, Stride: 4, DrainThreshold: 64}

		want := analyticVectors(events, cfg)
		got, err := Run(events, cfg)
		if err != nil {
			t.Fatalf("%s: %v", bench, err)
		}
		if len(got.Vectors) != len(want) {
			t.Fatalf("%s: cycle model emitted %d vectors, analytic %d",
				bench, len(got.Vectors), len(want))
		}
		const tol = 40 * 8 * sim.Nanosecond // 40 fabric cycles
		var worst sim.Time
		for i := range want {
			g, w := got.Vectors[i], want[i]
			if len(g.Classes) != len(w.Classes) {
				t.Fatalf("%s: vector %d class length mismatch", bench, i)
			}
			for j := range w.Classes {
				if g.Classes[j] != w.Classes[j] {
					t.Fatalf("%s: vector %d classes %v vs %v", bench, i, g.Classes, w.Classes)
				}
			}
			d := g.At - w.At
			if d < 0 {
				d = -d
			}
			if d > worst {
				worst = d
			}
			if d > tol {
				t.Fatalf("%s: vector %d emission %v vs %v (Δ %v > %v)",
					bench, i, g.At, w.At, d, tol)
			}
		}
		t.Logf("%s: %d vectors, worst timing disagreement %v", bench, len(want), worst)
	}
}

func TestCycleModelMonotonicEmission(t *testing.T) {
	events, mapper := record(t, "403.gcc", 30_000)
	got, err := Run(events, Config{Mapper: mapper, Window: 3, Stride: 2, DrainThreshold: 32})
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Vectors) < 10 {
		t.Fatalf("only %d vectors", len(got.Vectors))
	}
	for i := 1; i < len(got.Vectors); i++ {
		if got.Vectors[i].At < got.Vectors[i-1].At {
			t.Fatal("emission times not monotonic")
		}
		if got.Vectors[i].Seq != got.Vectors[i-1].Seq+1 {
			t.Fatal("sequence numbering broken")
		}
	}
	if got.Bytes == 0 || got.Cycles == 0 {
		t.Error("no activity recorded")
	}
}

func TestRunValidation(t *testing.T) {
	if _, err := Run(nil, Config{}); err == nil {
		t.Error("nil mapper accepted")
	}
	// Empty record: terminates promptly with no vectors.
	res, err := Run(nil, Config{Mapper: igm.NewAddressMap()})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Vectors) != 0 {
		t.Error("vectors from an empty record")
	}
}

// TestFullPathCoSimulationAgreesWithMCM drives the cycle model's vector
// stream through the same admission/service rules as internal/mcm and
// checks the judgment timeline against the analytic module fed the same
// vectors: same accepted count, same drop count, Done times within the
// trace-path tolerance.
func TestFullPathCoSimulationAgreesWithMCM(t *testing.T) {
	events, mapper := record(t, "458.sjeng", 50_000)
	cfg := Config{Mapper: mapper, Window: 4, Stride: 8, DrainThreshold: 64}

	// A deterministic "engine": service cost varies with the window so
	// queueing patterns are non-trivial.
	service := func(w []int32) (int64, error) {
		var s int64 = 900
		for _, c := range w {
			s += int64(c % 7)
		}
		return s, nil
	}
	_, judged, drops, err := RunWithEngine(events, cfg, EngineConfig{
		Service: service, TXWrites: 6, RXReads: 3, FIFODepth: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(judged) < 20 {
		t.Fatalf("only %d judgments", len(judged))
	}

	// Analytic reference: the same vectors through mcm.MCM.
	eng := &timedEngine{window: cfg.Window, service: service}
	mod, err := mcm.New(mcm.Config{Engine: eng, FIFODepth: 4})
	if err != nil {
		t.Fatal(err)
	}
	want := analyticVectors(events, cfg)
	var wantDone []sim.Time
	var wantDrops int64
	for _, v := range want {
		rec, ok, err := mod.Push(v)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			wantDrops++
			continue
		}
		wantDone = append(wantDone, rec.Done)
	}
	if int64(len(judged)) != int64(len(wantDone)) || drops != wantDrops {
		t.Fatalf("cycle model judged %d (drops %d), analytic %d (drops %d)",
			len(judged), drops, len(wantDone), wantDrops)
	}
	const tol = 60 * 8 * sim.Nanosecond
	for i := range judged {
		d := judged[i].Done - wantDone[i]
		if d < 0 {
			d = -d
		}
		if d > tol {
			t.Fatalf("judgment %d done %v vs %v (Δ %v)", i, judged[i].Done, wantDone[i], d)
		}
	}
}

// timedEngine adapts a service function to the mcm.Engine contract.
type timedEngine struct {
	window  int
	service func([]int32) (int64, error)
}

func (e *timedEngine) Name() string { return "timed" }
func (e *timedEngine) Window() int  { return e.window }
func (e *timedEngine) Infer(w []int32) (kernels.Judgment, int64, error) {
	c, err := e.service(w)
	return kernels.Judgment{}, c, err
}
func (e *timedEngine) InferBatch(ws [][]int32) ([]kernels.Judgment, []int64, error) {
	return kernels.InferLoop(e, ws)
}
