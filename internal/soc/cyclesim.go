// Package soc contains a cycle-stepped co-simulation of RTAD's trace
// delivery path. internal/core computes the pipeline's timing analytically
// (availability-time algebra per stage); this package re-implements the
// same hardware — the PTM output FIFO with its drain threshold, the TPIU
// formatter on the 32-bit port, IGM's four trace-analyzer units, the P2S
// converter and the IVG pipeline — as state machines advanced one 125 MHz
// fabric cycle at a time. Running both against the same retired-branch
// record and requiring the same vectors at (nearly) the same instants is
// the cross-check that the analytic model is not just self-consistent but
// equivalent to a straightforward RTL-style implementation.
package soc

import (
	"fmt"

	"rtad/internal/cpu"
	"rtad/internal/igm"
	"rtad/internal/ptm"
	"rtad/internal/sim"
	"rtad/internal/tpiu"
)

// Config sizes the cycle model to match a core.Pipeline configuration.
type Config struct {
	Mapper         *igm.AddressMap
	Window         int
	Stride         int
	DrainThreshold int
}

// Vector is one IVG output with its cycle-model emission time.
type Vector struct {
	Seq     int64
	At      sim.Time
	Classes []int32
}

// Result is a finished co-simulation.
type Result struct {
	Vectors []Vector
	Cycles  int64 // fabric cycles simulated
	Bytes   int64 // trace bytes moved through the port
}

// cyclesim state machines. All queues are modelled at byte/word granularity
// and advanced in a single tick() per fabric cycle.
type cyclesim struct {
	cfg    Config
	clk    *sim.Clock
	now    sim.Time
	enc    *ptm.Encoder
	events []cpu.BranchEvent
	nextEv int

	// PTM output stage: hold-back buffer, then the 4-byte-per-cycle port.
	holdback []byte
	portQ    []byte

	// TPIU formatter state.
	frameBuf []byte
	wordQ    []uint32

	// IGM: the PFT decoder consumes up to 4 bytes per cycle (four TA
	// units); decoded addresses serialise through P2S at one per cycle,
	// then take two pipeline cycles through mapper + vector encoder.
	deframer *tpiu.Deframer
	dec      *ptm.StreamDecoder
	taQ      []byte
	addrQ    []uint32
	// ivgPipe holds addresses in flight through the 2-stage IVG.
	ivgPipe [2]struct {
		valid bool
		addr  uint32
	}

	window    []int32
	sinceEmit int
	seq       int64
	accepted  int64

	out   Result
	errct int
}

// Run replays a retired-branch record through the cycle model.
func Run(events []cpu.BranchEvent, cfg Config) (*Result, error) {
	if cfg.Mapper == nil {
		return nil, fmt.Errorf("soc: nil mapper")
	}
	if cfg.Window <= 0 {
		cfg.Window = 1
	}
	if cfg.Stride <= 0 {
		cfg.Stride = 1
	}
	if cfg.DrainThreshold <= 0 {
		cfg.DrainThreshold = 64
	}
	cs := &cyclesim{
		cfg:      cfg,
		clk:      sim.FabricClock,
		enc:      ptm.NewEncoder(ptm.Config{BranchBroadcast: true}),
		events:   events,
		deframer: tpiu.NewDeframer(0),
		dec:      ptm.NewStreamDecoder(),
	}
	// Start at the first event's fabric edge.
	if len(events) > 0 {
		cs.now = cs.clk.NextEdge(sim.CPUClock.Duration(events[0].Cycle))
	}

	idle := 0
	for {
		cs.tick()
		cs.now += cs.clk.Period()
		cs.out.Cycles++
		if cs.busy() {
			idle = 0
		} else {
			idle++
			// A few flush cycles after everything drains.
			if idle == 2 && cs.nextEv >= len(cs.events) {
				cs.flush()
			}
			if idle > 64 {
				break
			}
		}
		if cs.out.Cycles > 1<<32 {
			return nil, fmt.Errorf("soc: runaway co-simulation")
		}
	}
	if cs.errct != 0 {
		return nil, fmt.Errorf("soc: %d decode errors in cycle model", cs.errct)
	}
	return &cs.out, nil
}

func (cs *cyclesim) busy() bool {
	return cs.nextEv < len(cs.events) ||
		len(cs.holdback) >= cs.cfg.DrainThreshold ||
		len(cs.portQ) > 0 ||
		len(cs.wordQ) > 0 || len(cs.taQ) > 0 || len(cs.addrQ) > 0 ||
		cs.ivgPipe[0].valid || cs.ivgPipe[1].valid
}

// flush pushes out the stragglers (encoder atoms, partial frames) the way
// the driver's stop sequence does at the end of a trace window.
func (cs *cyclesim) flush() {
	cs.holdback = append(cs.holdback, cs.enc.Flush()...)
	cs.portQ = append(cs.portQ, cs.holdback...)
	cs.holdback = cs.holdback[:0]
	if len(cs.frameBuf) > 0 {
		cs.emitFrame()
	}
}

// tick advances every stage by one fabric cycle, downstream-first so data
// takes at least a cycle per stage, like registered hardware.
func (cs *cyclesim) tick() {
	// IVG stage 2: vector encoder.
	if p := cs.ivgPipe[1]; p.valid {
		cs.ivgPipe[1].valid = false
		cs.acceptVE(p.addr)
	}
	// IVG stage 1: address mapper.
	if p := cs.ivgPipe[0]; p.valid {
		cs.ivgPipe[0].valid = false
		if _, ok := cs.cfg.Mapper.Lookup(p.addr); ok {
			cs.ivgPipe[1] = p
			cs.ivgPipe[1].valid = true
		}
	}
	// P2S: one address per cycle enters the IVG.
	if len(cs.addrQ) > 0 && !cs.ivgPipe[0].valid {
		cs.ivgPipe[0].valid = true
		cs.ivgPipe[0].addr = cs.addrQ[0]
		cs.addrQ = cs.addrQ[:copy(cs.addrQ, cs.addrQ[1:])]
	}
	// TA units: up to four payload bytes decoded per cycle.
	n := len(cs.taQ)
	if n > 4 {
		n = 4
	}
	for i := 0; i < n; i++ {
		for _, pkt := range cs.dec.Feed(cs.taQ[i]) {
			if pkt.Type == ptm.PktBranch {
				cs.addrQ = append(cs.addrQ, pkt.Addr)
			}
		}
	}
	cs.taQ = cs.taQ[:copy(cs.taQ, cs.taQ[n:])]
	cs.errct = cs.dec.Errors

	// TPIU port: one 32-bit word per cycle to the TA input.
	if len(cs.wordQ) > 0 {
		w := cs.wordQ[0]
		cs.wordQ = cs.wordQ[:copy(cs.wordQ, cs.wordQ[1:])]
		cs.taQ = append(cs.taQ, cs.deframer.Feed(w)...)
	}
	// TPIU formatter: pack port bytes into frames.
	take := len(cs.portQ)
	if take > 4 {
		take = 4
	}
	cs.frameBuf = append(cs.frameBuf, cs.portQ[:take]...)
	cs.portQ = cs.portQ[:copy(cs.portQ, cs.portQ[take:])]
	cs.out.Bytes += int64(take)
	if len(cs.frameBuf) >= tpiu.PayloadBytes {
		cs.emitFrame()
	}

	// PTM formatter: release the hold-back buffer past the threshold.
	if len(cs.holdback) >= cs.cfg.DrainThreshold {
		cs.portQ = append(cs.portQ, cs.holdback...)
		cs.holdback = cs.holdback[:0]
	}
	// Retired branches whose time has come enter the encoder.
	for cs.nextEv < len(cs.events) {
		ev := cs.events[cs.nextEv]
		if sim.CPUClock.Duration(ev.Cycle) > cs.now {
			break
		}
		cs.holdback = cs.enc.EncodeInto(cs.holdback, ev)
		cs.nextEv++
	}
}

// emitFrame packages the first PayloadBytes into a frame and queues its
// four port words.
func (cs *cyclesim) emitFrame() {
	n := len(cs.frameBuf)
	if n > tpiu.PayloadBytes {
		n = tpiu.PayloadBytes
	}
	var frame [tpiu.FrameBytes]byte
	frame[0] = tpiu.DefaultSourceID
	copy(frame[1:1+n], cs.frameBuf[:n])
	frame[tpiu.FrameBytes-1] = byte(n)
	cs.frameBuf = cs.frameBuf[:copy(cs.frameBuf, cs.frameBuf[n:])]
	for i := 0; i < tpiu.FrameBytes; i += 4 {
		w := uint32(frame[i]) | uint32(frame[i+1])<<8 |
			uint32(frame[i+2])<<16 | uint32(frame[i+3])<<24
		cs.wordQ = append(cs.wordQ, w)
	}
}

// acceptVE is the vector-encoder stage: windowing and stride pacing.
func (cs *cyclesim) acceptVE(addr uint32) {
	class, _ := cs.cfg.Mapper.Lookup(addr)
	cs.accepted++
	cs.window = append(cs.window, class)
	if len(cs.window) > cs.cfg.Window {
		cs.window = cs.window[len(cs.window)-cs.cfg.Window:]
	}
	if len(cs.window) < cs.cfg.Window {
		return
	}
	cs.sinceEmit++
	if cs.sinceEmit < cs.cfg.Stride && cs.seq > 0 {
		return
	}
	cs.sinceEmit = 0
	cs.out.Vectors = append(cs.out.Vectors, Vector{
		Seq:     cs.seq,
		At:      cs.now,
		Classes: append([]int32(nil), cs.window...),
	})
	cs.seq++
}

// Judgment extends the co-simulation across the MCM: vector FIFO admission,
// the TX/compute/RX service window, and the judgment-ready instant.
type Judgment struct {
	Vector Vector
	Start  sim.Time
	Done   sim.Time
}

// EngineConfig adds the back half of the SoC to a co-simulation run.
type EngineConfig struct {
	// Service returns the ML-MIAOW cycle count for one window (an
	// mcm.Engine's Infer result; state-bearing engines see windows in
	// admission order, exactly as in the analytic model).
	Service func(window []int32) (int64, error)
	// TXWrites is the number of single-beat writes per vector (window
	// words + control registers); RXReads the result reads.
	TXWrites, RXReads int
	// PerWriteCycles is the interconnect cost per single-beat access.
	PerWriteCycles int64
	FIFODepth      int
}

// RunWithEngine co-simulates the full path and returns both the vectors and
// their judgments, plus the number of FIFO drops.
func RunWithEngine(events []cpu.BranchEvent, cfg Config, ecfg EngineConfig) (*Result, []Judgment, int64, error) {
	if ecfg.Service == nil {
		return nil, nil, 0, fmt.Errorf("soc: nil engine service")
	}
	if ecfg.FIFODepth <= 0 {
		ecfg.FIFODepth = 8
	}
	if ecfg.PerWriteCycles <= 0 {
		ecfg.PerWriteCycles = 6
	}
	res, err := Run(events, cfg)
	if err != nil {
		return nil, nil, 0, err
	}
	// The MCM stage is fed by the cycle-model vector stream; its own
	// timing is stepped with the same admission rules as the hardware:
	// a vector arriving while the FIFO holds FIFODepth waiting entries
	// is lost.
	clk := sim.FabricClock
	var judged []Judgment
	var drops int64
	var freeAt sim.Time
	var starts []sim.Time
	for _, v := range res.Vectors {
		waiting := 0
		for _, s := range starts {
			if s > v.At {
				waiting++
			}
		}
		if waiting >= ecfg.FIFODepth {
			drops++
			continue
		}
		start := clk.NextEdge(v.At)
		if freeAt > start {
			start = freeAt
		}
		gpuCycles, err := ecfg.Service(v.Classes)
		if err != nil {
			return nil, nil, 0, err
		}
		done := start + clk.Duration(1) + // FIFO pop
			clk.Duration(int64(ecfg.TXWrites)*ecfg.PerWriteCycles) +
			sim.GPUClock.Duration(gpuCycles) +
			clk.Duration(int64(ecfg.RXReads)*ecfg.PerWriteCycles)
		judged = append(judged, Judgment{Vector: v, Start: start, Done: done})
		freeAt = done
		starts = append(starts, start)
		if len(starts) > 4*ecfg.FIFODepth {
			starts = append(starts[:0], starts[len(starts)-2*ecfg.FIFODepth:]...)
		}
	}
	return res, judged, drops, nil
}
