// Package igm implements RTAD's Input Generation Module (§III-A, Fig 2):
// the hardware block between the CoreSight trace port and the ML computing
// module. It contains the trace analyzer (four TA units decoding the PTM
// byte stream, one byte per unit per cycle), the parallel-to-serial
// converter (a 32-bit word can decode into as many as four branch
// addresses, which must be serialised), and the input vector generator —
// an address mapper that passes only addresses present in a configurable
// lookup table, and a vector encoder that turns the surviving class IDs
// into the input-vector format of the target ML model.
package igm

import (
	"fmt"
	"sort"

	"rtad/internal/cpu"
	"rtad/internal/obs"
	"rtad/internal/ptm"
	"rtad/internal/sim"
	"rtad/internal/tpiu"
)

// MaxMapEntries bounds the address-mapper lookup table, which in hardware
// is a fixed-capacity CAM.
const MaxMapEntries = 1024

// syscallClassBase is where syscall service classes start in the class ID
// space, above any branch-address classes.
const syscallClassBase = MaxMapEntries

// AddressMap is the IGM lookup table: branch target address -> class ID.
// Users configure it with the branches their model cares about — system
// calls, critical API entry points, or (for general-branch models like the
// LSTM) the frequent branch targets of the monitored program.
type AddressMap struct {
	classes  map[uint32]int32
	next     int32
	syscalls bool
}

// NewAddressMap returns an empty table.
func NewAddressMap() *AddressMap {
	return &AddressMap{classes: make(map[uint32]int32)}
}

// Add registers addr and returns its class ID; re-adding returns the
// existing ID. It panics when the CAM capacity is exceeded — a static
// configuration error, not a runtime condition.
func (m *AddressMap) Add(addr uint32) int32 {
	if id, ok := m.classes[addr]; ok {
		return id
	}
	if len(m.classes) >= MaxMapEntries {
		panic(fmt.Sprintf("igm: address map exceeds %d entries", MaxMapEntries))
	}
	id := m.next
	m.next++
	m.classes[addr] = id
	return id
}

// AddSyscalls admits every kernel service entry (the ELM configuration).
// Service n maps to class syscallClassBase+n, independent of branch classes.
func (m *AddressMap) AddSyscalls() { m.syscalls = true }

// Lookup resolves addr to a class ID; ok is false for filtered addresses.
func (m *AddressMap) Lookup(addr uint32) (int32, bool) {
	if m.syscalls && addr >= cpu.SyscallBase {
		return int32(syscallClassBase) + cpu.SyscallNumber(addr), true
	}
	id, ok := m.classes[addr]
	return id, ok
}

// SyscallClass converts a service number to its class ID, for callers
// preparing training data consistent with the hardware mapping.
func SyscallClass(n int32) int32 { return int32(syscallClassBase) + n }

// Size reports configured branch entries (excluding the syscall range).
func (m *AddressMap) Size() int { return len(m.classes) }

// Vector is one generated ML input: the sliding window of the most recent
// accepted class IDs (oldest first), stamped with the time the vector
// encoder finished producing it.
type Vector struct {
	At  sim.Time
	Seq int64
	// AcceptedIdx is the 1-based ordinal (among mapper-accepted events) of
	// the event that completed this vector. The SoC layer uses it to
	// recover the completing branch's retirement time for latency
	// measurements (Fig 8 anchors on the branch the judgment is about).
	AcceptedIdx int64
	Addr        uint32  // the branch that completed this vector
	Classes     []int32 // length = Config.Window
}

// Config parameterises the IGM.
type Config struct {
	Mapper *AddressMap
	// Window is the input-vector length in class IDs. The vector encoder
	// emits a vector per accepted event once the window has filled.
	Window int
	// Stride paces emission: a vector is produced every Stride-th
	// accepted event (after the window fills). 1 — the default — emits on
	// every accepted event; larger strides subsample dense streams so the
	// inference engine's service rate can keep up (the conversion-table
	// configuration knob of §III-A).
	Stride int
	// Clock is the IGM clock domain (defaults to sim.FabricClock).
	Clock *sim.Clock
	// Telemetry, when non-nil, records emitted vectors as instants on the
	// fabric/igm track plus accept/filter/vector counters. Observation-only.
	Telemetry *obs.Telemetry
}

// Pipeline latencies in IGM cycles. Decode is the TA unit latency; the
// mapper and encoder stages give the two-cycle vector-generation figure the
// paper reports for step (2) of Fig 7.
const (
	taDecodeCycles  = 1
	mapperCycles    = 1
	vecEncodeCycles = 1
)

// IGM is the module instance.
type IGM struct {
	cfg  Config
	defr *tpiu.Deframer
	dec  *ptm.StreamDecoder
	// win is the sliding window as a fixed-capacity ring (hardware shift
	// register): winHd indexes the oldest element once winN == Window, so
	// sliding is one store instead of a copy.
	win       []int32
	winHd     int
	winN      int
	free      [][]int32 // recycled Classes buffers (see Recycle)
	out       []Vector
	maxOut    int
	seq       int64
	sinceEmit int
	// serFreeAt is when the P2S serialiser frees up: decoded addresses
	// from the four TA units leave it one per cycle.
	serFreeAt sim.Time

	stats Stats

	obsAccepted *obs.Counter
	obsFiltered *obs.Counter
	obsVectors  *obs.Counter
	track       *obs.Track
}

// Stats counts IGM activity for the evaluation harness.
type Stats struct {
	Words     int64 // 32-bit port words consumed
	Packets   int64 // trace packets decoded
	Branches  int64 // branch-address packets seen
	Accepted  int64 // addresses passing the mapper
	Filtered  int64 // addresses rejected by the mapper
	Vectors   int64 // vectors emitted
	DecErrors int   // PTM protocol errors
}

// New returns an IGM with cfg applied.
func New(cfg Config) *IGM {
	if cfg.Mapper == nil {
		cfg.Mapper = NewAddressMap()
	}
	if cfg.Window <= 0 {
		cfg.Window = 1
	}
	if cfg.Stride <= 0 {
		cfg.Stride = 1
	}
	if cfg.Clock == nil {
		cfg.Clock = sim.FabricClock
	}
	g := &IGM{
		cfg:  cfg,
		defr: tpiu.NewDeframer(0),
		dec:  ptm.NewStreamDecoder(),
		win:  make([]int32, cfg.Window),
	}
	if tel := cfg.Telemetry; tel != nil {
		g.obsAccepted = tel.Counter("rtad_igm_accepted_total")
		g.obsFiltered = tel.Counter("rtad_igm_filtered_total")
		g.obsVectors = tel.Counter("rtad_igm_vectors_total")
		g.track = tel.Track("fabric", "igm")
	}
	return g
}

// FeedWord consumes one timed 32-bit word from the TPIU port, advancing the
// TA/P2S/IVG pipeline. Completed vectors accumulate for Take.
func (g *IGM) FeedWord(w tpiu.TimedWord) {
	g.stats.Words++
	payload := g.defr.Feed(w.W)
	if len(payload) == 0 {
		return
	}
	// The four TA units decode the word's payload bytes in parallel; the
	// results are valid one cycle after the word arrives.
	decodeAt := w.At + g.cfg.Clock.Duration(taDecodeCycles)
	for _, b := range payload {
		pkt, ok := g.dec.FeedByte(b)
		if !ok {
			continue
		}
		g.stats.Packets++
		if pkt.Type != ptm.PktBranch {
			continue
		}
		g.stats.Branches++
		g.acceptBranch(decodeAt, pkt.Addr)
	}
	g.stats.DecErrors = g.dec.Errors
}

// acceptBranch runs one decoded address through P2S, the mapper and the
// vector encoder.
func (g *IGM) acceptBranch(decodeAt sim.Time, addr uint32) {
	// P2S: one address per cycle leaves the converter.
	at := decodeAt
	if g.serFreeAt > at {
		at = g.serFreeAt
	}
	g.serFreeAt = at + g.cfg.Clock.Period()

	class, ok := g.cfg.Mapper.Lookup(addr)
	if !ok {
		g.stats.Filtered++
		g.obsFiltered.Inc()
		return
	}
	g.stats.Accepted++
	g.obsAccepted.Inc()
	at += g.cfg.Clock.Duration(mapperCycles + vecEncodeCycles)

	if g.winN < g.cfg.Window {
		g.win[(g.winHd+g.winN)%g.cfg.Window] = class
		g.winN++
	} else {
		g.win[g.winHd] = class
		g.winHd = (g.winHd + 1) % g.cfg.Window
	}
	if g.winN < g.cfg.Window {
		return
	}
	g.sinceEmit++
	if g.sinceEmit < g.cfg.Stride && g.seq > 0 {
		return
	}
	g.sinceEmit = 0
	classes := g.classBuf()
	for i := range classes {
		classes[i] = g.win[(g.winHd+i)%g.cfg.Window]
	}
	vec := Vector{
		At: at, Seq: g.seq, AcceptedIdx: g.stats.Accepted,
		Addr: addr, Classes: classes,
	}
	g.seq++
	g.stats.Vectors++
	g.obsVectors.Inc()
	if g.track != nil {
		g.track.Instant("vector", int64(at), map[string]any{"seq": vec.Seq})
	}
	g.out = append(g.out, vec)
	if len(g.out) > g.maxOut {
		g.maxOut = len(g.out)
	}
}

// StageName identifies the IGM in pipeline stage listings.
func (g *IGM) StageName() string { return "igm" }

// QueueStats reports the emitted-but-unconsumed vector queue as a uniform
// snapshot. The IGM never drops vectors (the mapper *filters* addresses,
// which is selection, not overflow), so Overflows and Dropped are 0 and
// Accepted counts emitted vectors.
func (g *IGM) QueueStats() sim.QueueStats {
	return sim.QueueStats{Len: len(g.out), MaxDepth: g.maxOut, Accepted: g.stats.Vectors}
}

// classBuf returns a Window-length buffer for a new vector's Classes,
// reusing a recycled one when available.
func (g *IGM) classBuf() []int32 {
	if n := len(g.free); n > 0 {
		buf := g.free[n-1]
		g.free = g.free[:n-1]
		return buf[:g.cfg.Window]
	}
	return make([]int32, g.cfg.Window)
}

// Recycle returns a Vector's Classes buffer to the IGM for reuse by a later
// vector. Callers that are done with a vector (after copying or translating
// its window) can recycle it to make vector emission allocation-free in
// steady state; callers that retain Classes simply never call Recycle.
// The buffer must not be used after recycling.
func (g *IGM) Recycle(classes []int32) {
	if cap(classes) < g.cfg.Window {
		return
	}
	g.free = append(g.free, classes)
}

// Take returns and clears the emitted vectors. The returned slice is
// freshly allocated and owned by the caller.
//
// Deprecated: use TakeInto with a recycled buffer
// (`vecs = ig.TakeInto(vecs[:0])`) — it is the primary hand-off API and
// drains the IGM with zero steady-state allocations. CI rejects new
// in-repo Take callers.
func (g *IGM) Take() []Vector { return g.TakeInto(nil) }

// TakeInto appends the emitted vectors to dst, clears the internal queue
// (retaining its capacity for reuse), and returns the extended slice. A
// caller that recycles dst (`vecs = ig.TakeInto(vecs[:0])`) drains the IGM
// with zero steady-state allocations.
func (g *IGM) TakeInto(dst []Vector) []Vector {
	dst = append(dst, g.out...)
	for i := range g.out {
		g.out[i] = Vector{}
	}
	g.out = g.out[:0]
	return dst
}

// Stats returns the activity counters.
func (g *IGM) Stats() Stats { return g.stats }

// Entry is one serialisable lookup-table row.
type Entry struct {
	Addr  uint32
	Class int32
}

// Entries exports the table contents (branch rows only; the syscall range
// is a flag, not rows), sorted by class for determinism.
func (m *AddressMap) Entries() []Entry {
	out := make([]Entry, 0, len(m.classes))
	for addr, class := range m.classes {
		out = append(out, Entry{Addr: addr, Class: class})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Class < out[j].Class })
	return out
}

// HasSyscalls reports whether the syscall range is admitted.
func (m *AddressMap) HasSyscalls() bool { return m.syscalls }

// NewAddressMapFromEntries reconstructs a table from exported rows,
// preserving the original class IDs.
func NewAddressMapFromEntries(entries []Entry, syscalls bool) *AddressMap {
	m := NewAddressMap()
	m.syscalls = syscalls
	for _, e := range entries {
		m.classes[e.Addr] = e.Class
		if e.Class >= m.next {
			m.next = e.Class + 1
		}
	}
	return m
}
