// Package igm implements RTAD's Input Generation Module (§III-A, Fig 2):
// the hardware block between the CoreSight trace port and the ML computing
// module. It contains the trace analyzer (four TA units decoding the PTM
// byte stream, one byte per unit per cycle), the parallel-to-serial
// converter (a 32-bit word can decode into as many as four branch
// addresses, which must be serialised), and the input vector generator —
// an address mapper that passes only addresses present in a configurable
// lookup table, and a vector encoder that turns the surviving class IDs
// into the input-vector format of the target ML model.
package igm

import (
	"fmt"
	"sort"

	"rtad/internal/cpu"
	"rtad/internal/obs"
	"rtad/internal/ptm"
	"rtad/internal/sim"
	"rtad/internal/tpiu"
)

// MaxMapEntries bounds the address-mapper lookup table, which in hardware
// is a fixed-capacity CAM.
const MaxMapEntries = 1024

// syscallClassBase is where syscall service classes start in the class ID
// space, above any branch-address classes.
const syscallClassBase = MaxMapEntries

// mapSlots is the initial open-addressed table size: the next power of two
// with load factor <= 0.5 at the full 1024-entry CAM capacity, so linear
// probes stay short and termination is guaranteed.
const mapSlots = 2048

// AddressMap is the IGM lookup table: branch target address -> class ID.
// Users configure it with the branches their model cares about — system
// calls, critical API entry points, or (for general-branch models like the
// LSTM) the frequent branch targets of the monitored program.
//
// The table is a flat open-addressed array (multiplicative hash, linear
// probing) rather than a Go map: Lookup sits on the per-taken-branch hot
// path and the CAM it models is a fixed 1024-entry structure, so two
// parallel arrays beat the map's hashing and bucket indirection.
type AddressMap struct {
	addrs    []uint32 // probed keys; meaningful only where slots[i] != 0
	slots    []int32  // class ID + 1; 0 marks an empty slot (so addr 0 is storable)
	shift    uint     // 32 - log2(len(slots)): multiplicative hash keeps the top bits
	count    int
	next     int32
	syscalls bool
}

// NewAddressMap returns an empty table.
func NewAddressMap() *AddressMap {
	return &AddressMap{
		addrs: make([]uint32, mapSlots),
		slots: make([]int32, mapSlots),
		shift: 21,
	}
}

// find probes for addr, returning the index of its slot (occupied with
// addr) or of the empty slot where it would be inserted.
func (m *AddressMap) find(addr uint32) int {
	mask := len(m.slots) - 1
	i := int((addr * 2654435761) >> m.shift)
	for m.slots[i] != 0 && m.addrs[i] != addr {
		i = (i + 1) & mask
	}
	return i
}

// insert places class at slot i (which find located for addr), growing the
// table when the load factor would exceed 1/2.
func (m *AddressMap) insert(i int, addr uint32, class int32) {
	m.addrs[i] = addr
	m.slots[i] = class + 1
	m.count++
	if m.count*2 > len(m.slots) {
		m.grow()
	}
}

// grow doubles the table and rehashes every entry. With Add capped at
// MaxMapEntries this never fires for the hardware CAM; it only serves
// NewAddressMapFromEntries round-tripping an oversized synthetic table.
func (m *AddressMap) grow() {
	oldAddrs, oldSlots := m.addrs, m.slots
	n := len(oldSlots) * 2
	m.addrs = make([]uint32, n)
	m.slots = make([]int32, n)
	m.shift--
	m.count = 0
	for i, s := range oldSlots {
		if s != 0 {
			j := m.find(oldAddrs[i])
			m.addrs[j] = oldAddrs[i]
			m.slots[j] = s
			m.count++
		}
	}
}

// Add registers addr and returns its class ID; re-adding returns the
// existing ID. It panics when the CAM capacity is exceeded — a static
// configuration error, not a runtime condition.
func (m *AddressMap) Add(addr uint32) int32 {
	i := m.find(addr)
	if s := m.slots[i]; s != 0 {
		return s - 1
	}
	if m.count >= MaxMapEntries {
		panic(fmt.Sprintf("igm: address map exceeds %d entries", MaxMapEntries))
	}
	id := m.next
	m.next++
	m.insert(i, addr, id)
	return id
}

// AddSyscalls admits every kernel service entry (the ELM configuration).
// Service n maps to class syscallClassBase+n, independent of branch classes.
func (m *AddressMap) AddSyscalls() { m.syscalls = true }

// Lookup resolves addr to a class ID; ok is false for filtered addresses.
func (m *AddressMap) Lookup(addr uint32) (int32, bool) {
	if m.syscalls && addr >= cpu.SyscallBase {
		return int32(syscallClassBase) + cpu.SyscallNumber(addr), true
	}
	if s := m.slots[m.find(addr)]; s != 0 {
		return s - 1, true
	}
	return 0, false
}

// SyscallClass converts a service number to its class ID, for callers
// preparing training data consistent with the hardware mapping.
func SyscallClass(n int32) int32 { return int32(syscallClassBase) + n }

// Size reports configured branch entries (excluding the syscall range).
func (m *AddressMap) Size() int { return m.count }

// Vector is one generated ML input: the sliding window of the most recent
// accepted class IDs (oldest first), stamped with the time the vector
// encoder finished producing it.
type Vector struct {
	At  sim.Time
	Seq int64
	// AcceptedIdx is the 1-based ordinal (among mapper-accepted events) of
	// the event that completed this vector. The SoC layer uses it to
	// recover the completing branch's retirement time for latency
	// measurements (Fig 8 anchors on the branch the judgment is about).
	AcceptedIdx int64
	Addr        uint32  // the branch that completed this vector
	Classes     []int32 // length = Config.Window
}

// Config parameterises the IGM.
type Config struct {
	Mapper *AddressMap
	// Window is the input-vector length in class IDs. The vector encoder
	// emits a vector per accepted event once the window has filled.
	Window int
	// Stride paces emission: a vector is produced every Stride-th
	// accepted event (after the window fills). 1 — the default — emits on
	// every accepted event; larger strides subsample dense streams so the
	// inference engine's service rate can keep up (the conversion-table
	// configuration knob of §III-A).
	Stride int
	// Clock is the IGM clock domain (defaults to sim.FabricClock).
	Clock *sim.Clock
	// Telemetry, when non-nil, records emitted vectors as instants on the
	// fabric/igm track plus accept/filter/vector counters. Observation-only.
	Telemetry *obs.Telemetry
}

// Pipeline latencies in IGM cycles. Decode is the TA unit latency; the
// mapper and encoder stages give the two-cycle vector-generation figure the
// paper reports for step (2) of Fig 7.
const (
	taDecodeCycles  = 1
	mapperCycles    = 1
	vecEncodeCycles = 1
)

// IGM is the module instance.
type IGM struct {
	cfg  Config
	defr *tpiu.Deframer
	dec  *ptm.StreamDecoder
	// win is the sliding window as a fixed-capacity ring (hardware shift
	// register): winHd indexes the oldest element once winN == Window, so
	// sliding is one store instead of a copy.
	win       []int32
	winHd     int
	winN      int
	free      [][]int32 // recycled Classes buffers (see Recycle)
	out       []Vector
	maxOut    int
	seq       int64
	sinceEmit int
	// serFreeAt is when the P2S serialiser frees up: decoded addresses
	// from the four TA units leave it one per cycle.
	serFreeAt sim.Time

	stats Stats

	obsAccepted *obs.Counter
	obsFiltered *obs.Counter
	obsVectors  *obs.Counter
	track       *obs.Track
}

// Stats counts IGM activity for the evaluation harness.
type Stats struct {
	Words     int64 // 32-bit port words consumed
	Packets   int64 // trace packets decoded
	Branches  int64 // branch-address packets seen
	Accepted  int64 // addresses passing the mapper
	Filtered  int64 // addresses rejected by the mapper
	Vectors   int64 // vectors emitted
	DecErrors int   // PTM protocol errors
}

// New returns an IGM with cfg applied.
func New(cfg Config) *IGM {
	if cfg.Mapper == nil {
		cfg.Mapper = NewAddressMap()
	}
	if cfg.Window <= 0 {
		cfg.Window = 1
	}
	if cfg.Stride <= 0 {
		cfg.Stride = 1
	}
	if cfg.Clock == nil {
		cfg.Clock = sim.FabricClock
	}
	g := &IGM{
		cfg:  cfg,
		defr: tpiu.NewDeframer(0),
		dec:  ptm.NewStreamDecoder(),
		win:  make([]int32, cfg.Window),
	}
	if tel := cfg.Telemetry; tel != nil {
		g.obsAccepted = tel.Counter("rtad_igm_accepted_total")
		g.obsFiltered = tel.Counter("rtad_igm_filtered_total")
		g.obsVectors = tel.Counter("rtad_igm_vectors_total")
		g.track = tel.Track("fabric", "igm")
	}
	return g
}

// FeedWord consumes one timed 32-bit word from the TPIU port, advancing the
// TA/P2S/IVG pipeline. Completed vectors accumulate for Take.
func (g *IGM) FeedWord(w tpiu.TimedWord) {
	g.stats.Words++
	payload := g.defr.Feed(w.W)
	if len(payload) == 0 {
		return
	}
	// The four TA units decode the word's payload bytes in parallel; the
	// results are valid one cycle after the word arrives.
	decodeAt := w.At + g.cfg.Clock.Duration(taDecodeCycles)
	for _, b := range payload {
		pkt, ok := g.dec.FeedByte(b)
		if !ok {
			continue
		}
		g.stats.Packets++
		if pkt.Type != ptm.PktBranch {
			continue
		}
		g.stats.Branches++
		g.acceptBranch(decodeAt, pkt.Addr)
	}
	g.stats.DecErrors = g.dec.Errors
}

// acceptBranch runs one decoded address through P2S, the mapper and the
// vector encoder (staged path: the class is looked up here).
func (g *IGM) acceptBranch(decodeAt sim.Time, addr uint32) {
	at := g.p2s(decodeAt)
	class, ok := g.cfg.Mapper.Lookup(addr)
	if !ok {
		g.stats.Filtered++
		g.obsFiltered.Inc()
		return
	}
	g.admit(at, addr, class)
}

// p2s serialises one decoded address out of the parallel-to-serial
// converter: one address per cycle leaves it.
func (g *IGM) p2s(decodeAt sim.Time) sim.Time {
	at := decodeAt
	if g.serFreeAt > at {
		at = g.serFreeAt
	}
	g.serFreeAt = at + g.cfg.Clock.Period()
	return at
}

// admit runs a mapper-accepted class through the vector-encoder stage:
// window update, stride pacing, and vector emission.
func (g *IGM) admit(at sim.Time, addr uint32, class int32) {
	g.stats.Accepted++
	g.obsAccepted.Inc()
	at += g.cfg.Clock.Duration(mapperCycles + vecEncodeCycles)

	if g.winN < g.cfg.Window {
		// Fill phase: winHd stays 0 until the window first fills, so the
		// write lands at the plain winN offset.
		g.win[g.winN] = class
		g.winN++
	} else {
		g.win[g.winHd] = class
		g.winHd++
		if g.winHd == g.cfg.Window {
			g.winHd = 0
		}
	}
	if g.winN < g.cfg.Window {
		return
	}
	g.sinceEmit++
	if g.sinceEmit < g.cfg.Stride && g.seq > 0 {
		return
	}
	g.sinceEmit = 0
	classes := g.classBuf()
	// Oldest-first snapshot: the ring's tail segment then its head segment.
	n := copy(classes, g.win[g.winHd:])
	copy(classes[n:], g.win[:g.winHd])
	vec := Vector{
		At: at, Seq: g.seq, AcceptedIdx: g.stats.Accepted,
		Addr: addr, Classes: classes,
	}
	g.seq++
	g.stats.Vectors++
	g.obsVectors.Inc()
	if g.track != nil {
		g.track.Instant("vector", int64(at), map[string]any{"seq": vec.Seq})
	}
	g.out = append(g.out, vec)
	if len(g.out) > g.maxOut {
		g.maxOut = len(g.out)
	}
}

// FrameArrived accounts one fused-fast-path frame delivery: the four port
// words of a frame whose last word lands at lastWordAt. It returns the
// instant the frame's payload finishes TA decode — the decode timestamp
// shared by every packet the frame completes, exactly as FeedWord computes
// it for the frame's final word.
func (g *IGM) FrameArrived(lastWordAt sim.Time) sim.Time {
	g.stats.Words += tpiu.FrameBytes / 4
	return lastWordAt + g.cfg.Clock.Duration(taDecodeCycles)
}

// PacketDecoded accounts one non-branch packet (a-sync, i-sync, atoms, ...)
// completed by a fused-path frame: only the decoded-packet count advances,
// as in the staged decoder.
func (g *IGM) PacketDecoded() { g.stats.Packets++ }

// BranchDecoded is the fused fast path's direct entry point for one
// branch-address packet completing at decodeAt. The mapper lookup has
// already happened upstream — the fast path resolves each taken branch's
// class once and threads it through — so the IGM only applies the P2S and
// (for accepted addresses) mapper/encoder latencies. Stats, telemetry, and
// emitted vectors are bit-identical to the staged decode of the same
// packet stream.
func (g *IGM) BranchDecoded(decodeAt sim.Time, addr uint32, class int32, accepted bool) {
	g.stats.Packets++
	g.stats.Branches++
	at := g.p2s(decodeAt)
	if !accepted {
		g.stats.Filtered++
		g.obsFiltered.Inc()
		return
	}
	g.admit(at, addr, class)
}

// StageName identifies the IGM in pipeline stage listings.
func (g *IGM) StageName() string { return "igm" }

// QueueStats reports the emitted-but-unconsumed vector queue as a uniform
// snapshot. The IGM never drops vectors (the mapper *filters* addresses,
// which is selection, not overflow), so Overflows and Dropped are 0 and
// Accepted counts emitted vectors.
func (g *IGM) QueueStats() sim.QueueStats {
	return sim.QueueStats{Len: len(g.out), MaxDepth: g.maxOut, Accepted: g.stats.Vectors}
}

// classBuf returns a Window-length buffer for a new vector's Classes,
// reusing a recycled one when available.
func (g *IGM) classBuf() []int32 {
	if n := len(g.free); n > 0 {
		buf := g.free[n-1]
		g.free = g.free[:n-1]
		return buf[:g.cfg.Window]
	}
	return make([]int32, g.cfg.Window)
}

// Recycle returns a Vector's Classes buffer to the IGM for reuse by a later
// vector. Callers that are done with a vector (after copying or translating
// its window) can recycle it to make vector emission allocation-free in
// steady state; callers that retain Classes simply never call Recycle.
// The buffer must not be used after recycling.
func (g *IGM) Recycle(classes []int32) {
	if cap(classes) < g.cfg.Window {
		return
	}
	g.free = append(g.free, classes)
}

// Take returns and clears the emitted vectors. The returned slice is
// freshly allocated and owned by the caller.
//
// Deprecated: use TakeInto with a recycled buffer
// (`vecs = ig.TakeInto(vecs[:0])`) — it is the primary hand-off API and
// drains the IGM with zero steady-state allocations. CI rejects new
// in-repo Take callers.
func (g *IGM) Take() []Vector { return g.TakeInto(nil) }

// TakeInto appends the emitted vectors to dst, clears the internal queue
// (retaining its capacity for reuse), and returns the extended slice. A
// caller that recycles dst (`vecs = ig.TakeInto(vecs[:0])`) drains the IGM
// with zero steady-state allocations.
func (g *IGM) TakeInto(dst []Vector) []Vector {
	dst = append(dst, g.out...)
	for i := range g.out {
		g.out[i] = Vector{}
	}
	g.out = g.out[:0]
	return dst
}

// Stats returns the activity counters.
func (g *IGM) Stats() Stats { return g.stats }

// Entry is one serialisable lookup-table row.
type Entry struct {
	Addr  uint32
	Class int32
}

// Entries exports the table contents (branch rows only; the syscall range
// is a flag, not rows), sorted by class for determinism.
func (m *AddressMap) Entries() []Entry {
	out := make([]Entry, 0, m.count)
	for i, s := range m.slots {
		if s != 0 {
			out = append(out, Entry{Addr: m.addrs[i], Class: s - 1})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Class < out[j].Class })
	return out
}

// HasSyscalls reports whether the syscall range is admitted.
func (m *AddressMap) HasSyscalls() bool { return m.syscalls }

// NewAddressMapFromEntries reconstructs a table from exported rows,
// preserving the original class IDs (later duplicates of an address win,
// as with the previous map-backed table).
func NewAddressMapFromEntries(entries []Entry, syscalls bool) *AddressMap {
	m := NewAddressMap()
	m.syscalls = syscalls
	for _, e := range entries {
		if i := m.find(e.Addr); m.slots[i] != 0 {
			m.slots[i] = e.Class + 1
		} else {
			m.insert(i, e.Addr, e.Class)
		}
		if e.Class >= m.next {
			m.next = e.Class + 1
		}
	}
	return m
}
