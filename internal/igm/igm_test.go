package igm

import (
	"testing"

	"rtad/internal/cpu"
	"rtad/internal/ptm"
	"rtad/internal/sim"
	"rtad/internal/tpiu"
)

// pushTrace runs branch events through the full PTM->TPIU->IGM path and
// returns the vectors plus the IGM.
func pushTrace(t *testing.T, g *IGM, events []cpu.BranchEvent) []Vector {
	t.Helper()
	enc := ptm.NewEncoder(ptm.Config{BranchBroadcast: true})
	port := ptm.NewPort(ptm.PortConfig{DrainThreshold: 16})
	fmtr := tpiu.NewFormatter(tpiu.Config{})
	var now sim.Time
	for _, ev := range events {
		now = sim.CPUClock.Duration(ev.Cycle)
		port.Push(now, enc.Encode(ev))
	}
	port.Push(now, enc.Flush())
	port.Flush(now)
	for _, tb := range port.Take() {
		fmtr.Push(tb.At, tb.B)
	}
	fmtr.Flush(now)
	for _, w := range fmtr.Take() {
		g.FeedWord(w)
	}
	return g.Take()
}

func takenBranches(targets []uint32) []cpu.BranchEvent {
	evs := make([]cpu.BranchEvent, len(targets))
	for i, tgt := range targets {
		evs[i] = cpu.BranchEvent{Cycle: int64(i * 10), PC: 0x8000, Target: tgt, Kind: cpu.KindDirect, Taken: true}
	}
	return evs
}

func TestAddressMapBasics(t *testing.T) {
	m := NewAddressMap()
	a := m.Add(0x8000)
	b := m.Add(0x8004)
	if a == b {
		t.Error("distinct addresses share a class")
	}
	if again := m.Add(0x8000); again != a {
		t.Error("re-adding changed the class")
	}
	if _, ok := m.Lookup(0x9000); ok {
		t.Error("unregistered address passed the filter")
	}
	if got, ok := m.Lookup(0x8004); !ok || got != b {
		t.Error("lookup of registered address failed")
	}
	if m.Size() != 2 {
		t.Errorf("Size = %d, want 2", m.Size())
	}
}

func TestAddressMapSyscalls(t *testing.T) {
	m := NewAddressMap()
	m.AddSyscalls()
	id, ok := m.Lookup(cpu.SyscallTarget(5))
	if !ok {
		t.Fatal("syscall filtered")
	}
	if id != SyscallClass(5) {
		t.Errorf("class = %d, want %d", id, SyscallClass(5))
	}
	// Branch classes and syscall classes must not collide.
	br := m.Add(0x8000)
	if br == id {
		t.Error("branch class collides with syscall class")
	}
}

func TestAddressMapCapacity(t *testing.T) {
	m := NewAddressMap()
	for i := 0; i < MaxMapEntries; i++ {
		m.Add(uint32(i * 4))
	}
	defer func() {
		if recover() == nil {
			t.Error("exceeding CAM capacity did not panic")
		}
	}()
	m.Add(0xFFFFFF0)
}

func TestFilteringAndWindow(t *testing.T) {
	m := NewAddressMap()
	cA := m.Add(0x8000)
	cB := m.Add(0x8010)
	g := New(Config{Mapper: m, Window: 3})

	targets := []uint32{0x8000, 0x9999 &^ 3, 0x8010, 0x8000, 0x8010, 0x8010}
	vecs := pushTrace(t, g, takenBranches(targets))

	// 5 accepted (0x9998 filtered); window fills after 3 -> 3 vectors.
	st := g.Stats()
	if st.Accepted != 5 || st.Filtered != 1 {
		t.Errorf("accepted=%d filtered=%d, want 5/1", st.Accepted, st.Filtered)
	}
	if len(vecs) != 3 {
		t.Fatalf("got %d vectors, want 3", len(vecs))
	}
	want := [][]int32{{cA, cB, cA}, {cB, cA, cB}, {cA, cB, cB}}
	for i, v := range vecs {
		if len(v.Classes) != 3 {
			t.Fatalf("vector %d length %d", i, len(v.Classes))
		}
		for j := range want[i] {
			if v.Classes[j] != want[i][j] {
				t.Errorf("vector %d = %v, want %v", i, v.Classes, want[i])
			}
		}
	}
	if st.DecErrors != 0 {
		t.Errorf("decode errors: %d", st.DecErrors)
	}
}

func TestVectorTimingMonotonicAndPipelined(t *testing.T) {
	m := NewAddressMap()
	targets := make([]uint32, 64)
	for i := range targets {
		targets[i] = 0x8000 + uint32(i%8)*4
		m.Add(targets[i])
	}
	g := New(Config{Mapper: m, Window: 1})
	vecs := pushTrace(t, g, takenBranches(targets))
	if len(vecs) != len(targets) {
		t.Fatalf("got %d vectors, want %d", len(vecs), len(targets))
	}
	for i := 1; i < len(vecs); i++ {
		if vecs[i].At < vecs[i-1].At {
			t.Fatal("vector times not monotonic")
		}
		// P2S serialises to at most one vector per fabric cycle.
		if vecs[i].At-vecs[i-1].At < sim.FabricClock.Period() {
			t.Fatalf("vectors %d and %d closer than one cycle", i-1, i)
		}
	}
	if vecs[0].Seq != 0 || vecs[1].Seq != 1 {
		t.Error("sequence numbers wrong")
	}
}

func TestVectorGenerationLatencyIsTwoCyclesPastSerialiser(t *testing.T) {
	// The paper's step (2): IGM turns a decoded address into a vector in
	// 2 cycles (16 ns at 125 MHz).
	if got := sim.FabricClock.Duration(mapperCycles + vecEncodeCycles); got != 16*sim.Nanosecond {
		t.Errorf("IVG latency = %v, want 16ns", got)
	}
}

func TestSyscallPipelineForELM(t *testing.T) {
	m := NewAddressMap()
	m.AddSyscalls()
	g := New(Config{Mapper: m, Window: 4})

	var evs []cpu.BranchEvent
	// Interleave syscalls with direct branches that must be filtered.
	nums := []int32{3, 1, 4, 1, 5, 9, 2, 6}
	cyc := int64(0)
	for _, n := range nums {
		cyc += 100
		evs = append(evs, cpu.BranchEvent{Cycle: cyc, PC: 0x8000, Target: 0x8004, Kind: cpu.KindDirect, Taken: true})
		cyc += 100
		evs = append(evs, cpu.BranchEvent{Cycle: cyc, PC: 0x8008, Target: cpu.SyscallTarget(n), Kind: cpu.KindSyscall, Taken: true})
	}
	vecs := pushTrace(t, g, evs)
	if len(vecs) != len(nums)-3 {
		t.Fatalf("got %d vectors, want %d", len(vecs), len(nums)-3)
	}
	last := vecs[len(vecs)-1]
	want := []int32{SyscallClass(9), SyscallClass(2), SyscallClass(6)}
	got := last.Classes[1:]
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("final window = %v", last.Classes)
		}
	}
	if st := g.Stats(); st.Filtered != int64(len(nums)) {
		t.Errorf("filtered %d, want %d direct branches", st.Filtered, len(nums))
	}
}

func TestStatsCounters(t *testing.T) {
	m := NewAddressMap()
	m.Add(0x8000)
	g := New(Config{Mapper: m, Window: 1})
	pushTrace(t, g, takenBranches([]uint32{0x8000, 0x8000, 0x8000}))
	st := g.Stats()
	if st.Words == 0 || st.Packets == 0 {
		t.Error("word/packet counters not advancing")
	}
	if st.Branches != 3 || st.Vectors != 3 {
		t.Errorf("branches=%d vectors=%d, want 3/3", st.Branches, st.Vectors)
	}
}

func TestStridePacing(t *testing.T) {
	m := NewAddressMap()
	targets := make([]uint32, 40)
	for i := range targets {
		targets[i] = 0x8000 + uint32(i%4)*4
		m.Add(targets[i])
	}
	g := New(Config{Mapper: m, Window: 4, Stride: 8})
	vecs := pushTrace(t, g, takenBranches(targets))
	// Window fills at event 4 (first emission), then every 8th accepted.
	if len(vecs) != 5 {
		t.Fatalf("got %d vectors, want 5 (first fill + 4 strides)", len(vecs))
	}
	if vecs[0].AcceptedIdx != 4 {
		t.Errorf("first vector AcceptedIdx = %d, want 4", vecs[0].AcceptedIdx)
	}
	for i := 1; i < len(vecs); i++ {
		if vecs[i].AcceptedIdx-vecs[i-1].AcceptedIdx != 8 {
			t.Errorf("stride between vectors %d and %d is %d, want 8",
				i-1, i, vecs[i].AcceptedIdx-vecs[i-1].AcceptedIdx)
		}
	}
}

func TestAddressMapEntriesRoundTrip(t *testing.T) {
	m := NewAddressMap()
	m.AddSyscalls()
	a := m.Add(0x8000)
	b := m.Add(0x9000)
	entries := m.Entries()
	if len(entries) != 2 {
		t.Fatalf("%d entries, want 2", len(entries))
	}
	clone := NewAddressMapFromEntries(entries, m.HasSyscalls())
	if got, ok := clone.Lookup(0x8000); !ok || got != a {
		t.Error("entry 0x8000 lost")
	}
	if got, ok := clone.Lookup(0x9000); !ok || got != b {
		t.Error("entry 0x9000 lost")
	}
	if !clone.HasSyscalls() {
		t.Error("syscall flag lost")
	}
	// Classes added after reconstruction must not collide.
	c := clone.Add(0xA000)
	if c == a || c == b {
		t.Error("new class collides with restored classes")
	}
}

// Failure injection: garbage bytes spliced into the port stream must not
// wedge the IGM — errors are counted and decoding resumes at the next
// a-sync (the hardware's realignment behaviour).
func TestTraceCorruptionRecovery(t *testing.T) {
	m := NewAddressMap()
	targets := make([]uint32, 64)
	for i := range targets {
		targets[i] = 0x8000 + uint32(i%8)*4
		m.Add(targets[i])
	}
	g := New(Config{Mapper: m, Window: 1})

	enc := ptm.NewEncoder(ptm.Config{BranchBroadcast: true, SyncEvery: 16})
	fmtr := tpiu.NewFormatter(tpiu.Config{})
	var now sim.Time
	half := len(targets) / 2
	push := func(bytes []byte) {
		for _, b := range bytes {
			fmtr.Push(now, b)
		}
	}
	for i, tgt := range targets {
		now = sim.Time(i*100) * sim.Nanosecond
		ev := cpu.BranchEvent{Cycle: int64(i * 25), PC: 0x8000, Target: tgt, Kind: cpu.KindDirect, Taken: true}
		push(enc.Encode(ev))
		if i == half {
			// Corruption: a burst of junk that is not valid PFT.
			push([]byte{0xFF, 0x80, 0xFF, 0x55, 0x80})
		}
	}
	push(enc.Flush())
	fmtr.Flush(now)
	for _, w := range fmtr.Take() {
		g.FeedWord(w)
	}
	st := g.Stats()
	if st.DecErrors == 0 {
		t.Fatal("corruption not flagged")
	}
	// Most branches still decode: everything before the junk, plus
	// everything after the next periodic sync.
	if st.Accepted < int64(len(targets)*3/4) {
		t.Errorf("only %d/%d branches recovered after corruption", st.Accepted, len(targets))
	}
}
