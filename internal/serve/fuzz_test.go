package serve

import (
	"bytes"
	"testing"
)

// FuzzReadFrame drives the frame decoder with arbitrary byte streams: it
// must never panic, never allocate beyond MaxFrame, and everything it does
// accept must survive a write/read round trip byte-identically. The seed
// corpus under testdata/fuzz pins the interesting shapes (valid frames,
// truncations, oversize lengths, unknown types); CI runs the corpus as
// plain tests, `go test -fuzz=FuzzReadFrame ./internal/serve` explores.
func FuzzReadFrame(f *testing.F) {
	// Valid frames of each type.
	var b bytes.Buffer
	WriteFrame(&b, FrameHello, []byte(`{"proto":"rtad-wire/1","benchmark":"458.sjeng","model":"lstm"}`))
	f.Add(b.Bytes())
	b.Reset()
	WriteFrame(&b, FrameChunk, []byte{0x80, 0x01, 0x02, 0x03})
	f.Add(b.Bytes())
	b.Reset()
	WriteFrame(&b, FrameEOS, nil)
	f.Add(b.Bytes())
	b.Reset()
	WriteFrame(&b, FrameJudgment, AppendJudgment(nil, Judgment{Seq: 7, Anomaly: true}))
	f.Add(b.Bytes())
	// Hostile shapes.
	f.Add([]byte{0x00, 0x00, 0x00, 0x00, 0x01})             // zero length
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0x7F, 0x03})             // huge length
	f.Add([]byte{0x05, 0x00, 0x00, 0x00, 0x03, 0x01})       // truncated payload
	f.Add([]byte{0x01, 0x00, 0x00, 0x00, 0xFE})             // unknown type
	f.Add([]byte{0x02, 0x00})                               // short header
	f.Add(bytes.Repeat([]byte{0x01, 0x00, 0x00, 0x00}, 16)) // header soup

	f.Fuzz(func(t *testing.T, data []byte) {
		r := bytes.NewReader(data)
		var buf []byte
		for {
			typ, payload, nbuf, err := ReadFrame(r, buf)
			buf = nbuf
			if err != nil {
				return // rejection is fine; panics and hangs are not
			}
			if len(payload)+1 > MaxFrame {
				t.Fatalf("accepted %d-byte payload beyond MaxFrame", len(payload))
			}
			// Round trip: re-encoding an accepted frame must reproduce it.
			var out bytes.Buffer
			if err := WriteFrame(&out, typ, payload); err != nil {
				t.Fatalf("re-encode of accepted frame failed: %v", err)
			}
			t2, p2, _, err := ReadFrame(&out, nil)
			if err != nil || t2 != typ || !bytes.Equal(p2, payload) {
				t.Fatalf("round trip diverged: %v/%v err=%v", typ, t2, err)
			}
			if typ == FrameJudgment && len(payload) == JudgmentSize {
				if j, err := DecodeJudgment(payload); err == nil {
					if got := AppendJudgment(nil, j); !bytes.Equal(got, payload) {
						t.Fatalf("judgment re-encode diverged:\n got % x\nwant % x", got, payload)
					}
				}
			}
		}
	})
}
