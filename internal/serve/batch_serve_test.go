package serve

import (
	"context"
	"errors"
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"rtad/internal/kernels"
	"rtad/internal/obs"
)

// compareJudgments requires two wire judgment streams to be identical; the
// 41-byte frame encoding is a pure function of the struct, so struct
// equality is byte equality on the wire.
func compareJudgments(t *testing.T, label string, got, want []Judgment) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: judged %d vectors, want %d", label, len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("%s: judgment %d diverged:\n got %+v\nwant %+v", label, i, got[i], want[i])
		}
	}
}

// TestBatchedE2EBitIdentical is the tentpole acceptance test: with
// micro-batching enabled and several sessions of *different backends*
// streaming concurrently (mixed batches), every session's judgment stream
// and detection summary are byte-identical to the unbatched in-process
// reference for its backend. Run under -race in CI.
func TestBatchedE2EBitIdentical(t *testing.T) {
	dep, stream := fixtures(t)
	short := stream[:len(stream)/4]
	backends := []string{kernels.BackendGPU, kernels.BackendNative, kernels.BackendNativeCalibrated}

	wantJ := map[string][]Judgment{}
	for _, b := range backends {
		wantJ[b], _ = referenceRun(t, dep, b, short)
		if len(wantJ[b]) == 0 {
			t.Fatal("reference run judged nothing; lengthen the fixture")
		}
	}

	tel := obs.NewMetricsOnly()
	addr := startServer(t, []Option{
		WithWorkers(4),
		WithBatching(100*time.Microsecond, 8),
		WithTelemetry(tel),
	}, dep)

	// Two clients per backend, all concurrent: batches mix backends and
	// sessions freely.
	var wg sync.WaitGroup
	errs := make([]error, 2*len(backends))
	for i := 0; i < len(errs); i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			backend := backends[i%len(backends)]
			c, err := Dial(addr, Hello{
				Benchmark: fixBench, Model: "lstm", Backend: backend, Attack: testAttack,
			}, nil)
			if err != nil {
				errs[i] = err
				return
			}
			chunk := 2048 * (i + 1)
			for off := 0; off < len(short); off += chunk {
				end := off + chunk
				if end > len(short) {
					end = len(short)
				}
				if err := c.Send(short[off:end]); err != nil {
					errs[i] = err
					return
				}
			}
			sum, err := c.Finish()
			if err != nil {
				errs[i] = err
				return
			}
			got := c.Judgments()
			want := wantJ[backend]
			if len(got) != len(want) {
				errs[i] = fmt.Errorf("client %d (%s): judged %d, want %d", i, backend, len(got), len(want))
				return
			}
			for k := range got {
				if got[k] != want[k] {
					errs[i] = fmt.Errorf("client %d (%s): judgment %d diverged under batching:\n got %+v\nwant %+v",
						i, backend, k, got[k], want[k])
					return
				}
			}
			if sum.Judged != len(want) {
				errs[i] = fmt.Errorf("client %d (%s): summary judged %d, want %d", i, backend, sum.Judged, len(want))
			}
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Error(err)
		}
	}

	if rows := tel.Reg.Counter("rtad_serve_batch_rows_total").Value(); rows == 0 {
		t.Error("no inferences went through the batching coordinator")
	}
	if n := tel.Reg.Histogram("rtad_serve_batch_size", BatchSizeBuckets).Count(); n == 0 {
		t.Error("batch-size histogram recorded nothing")
	}
	if n := tel.Reg.Histogram("rtad_serve_batch_infer_latency_us", BatchLatencyBuckets).Count(); n == 0 {
		t.Error("batch-latency histogram recorded nothing")
	}
	flushes := tel.Reg.Counter("rtad_serve_batch_flush_window_total").Value() +
		tel.Reg.Counter("rtad_serve_batch_flush_full_total").Value() +
		tel.Reg.Counter("rtad_serve_batch_flush_starve_total").Value() +
		tel.Reg.Counter("rtad_serve_batch_flush_drain_total").Value()
	if flushes == 0 {
		t.Error("no batch flushes counted")
	}
}

// TestBatchedVsUnbatchedSoloClient pins the window-0 contract from the
// other side: one client against a batched server equals the same client
// against an unbatched server (batch size 1, window flushes).
func TestBatchedVsUnbatchedSoloClient(t *testing.T) {
	dep, stream := fixtures(t)
	short := stream[:len(stream)/8]

	run := func(opts []Option) []Judgment {
		addr := startServer(t, opts, dep)
		c, err := Dial(addr, Hello{Benchmark: fixBench, Model: "lstm", Backend: kernels.BackendNative}, nil)
		if err != nil {
			t.Fatal(err)
		}
		streamChunks(t, c, short, 8192)
		return c.Judgments()
	}
	unbatched := run(nil)
	batched := run([]Option{WithBatching(50*time.Microsecond, 4)})
	if len(unbatched) == 0 {
		t.Fatal("no judgments; lengthen the fixture")
	}
	compareJudgments(t, "solo batched client", batched, unbatched)
}

// TestDrainFlushesPartialBatches: with a window far longer than the test
// and an unreachable BatchMax, nothing times out or fills — only starve
// flushes (batch-size adaptation) and the shutdown drain can release
// parked work. Every in-flight session must still deliver its full
// judgment stream and summary frame through Shutdown, and the streams must
// match the unbatched reference. (Whether any batch is actually pending at
// the drain instant depends on scheduling, so the drain counter itself is
// pinned by the deterministic TestBatcherDrainReleasesParked below.)
func TestDrainFlushesPartialBatches(t *testing.T) {
	dep, stream := fixtures(t)
	short := stream[:len(stream)/8]
	want, _ := referenceRun(t, dep, kernels.BackendNative, short)

	tel := obs.NewMetricsOnly()
	srv := New(nil,
		WithWorkers(2),
		WithBatching(10*time.Minute, 1<<20), // never expires, never fills
		WithTelemetry(tel),
	)
	srv.Deploy(dep)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve(ln) }()
	addr := ln.Addr().String()

	const clients = 3
	type result struct {
		sum *Summary
		js  []Judgment
		err error
	}
	results := make([]result, clients)
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c, err := Dial(addr, Hello{
				Benchmark: fixBench, Model: "lstm", Backend: kernels.BackendNative, Attack: testAttack,
			}, nil)
			if err != nil {
				results[i].err = err
				return
			}
			for off := 0; off < len(short); off += 8192 {
				end := off + 8192
				if end > len(short) {
					end = len(short)
				}
				if err := c.Send(short[off:end]); err != nil {
					results[i].err = err
					return
				}
			}
			// Finish blocks: the session is parked in a batch that only a
			// drain flush will release.
			results[i].sum, results[i].err = c.Finish()
			results[i].js = c.Judgments()
		}(i)
	}

	// Let the sessions reach their first parked inference, then shut down.
	time.Sleep(300 * time.Millisecond)
	srv.Shutdown(time.Minute)
	wg.Wait()
	if err := <-serveDone; err != nil {
		t.Fatalf("Serve: %v", err)
	}

	for i, r := range results {
		if r.err != nil {
			t.Fatalf("client %d did not finish cleanly through the drain: %v", i, r.err)
		}
		if r.sum == nil {
			t.Fatalf("client %d got no summary frame", i)
		}
		compareJudgments(t, fmt.Sprintf("client %d", i), r.js, want)
	}
	if n := tel.Reg.Counter("rtad_serve_batch_flush_window_total").Value(); n != 0 {
		t.Errorf("window flushes counted (%d) with a 10-minute window", n)
	}
	if n := tel.Reg.Counter("rtad_serve_batch_flush_full_total").Value(); n != 0 {
		t.Errorf("full flushes counted (%d) with an unreachable BatchMax", n)
	}
}

// stubBackend is a minimal deterministic Backend for coordinator unit
// tests: the judgment echoes the first window word, so delivery mixups
// are visible.
type stubBackend struct{ calls int }

func (s *stubBackend) Name() string { return "stub" }
func (s *stubBackend) Window() int  { return 3 }
func (s *stubBackend) Infer(w []int32) (kernels.Judgment, int64, error) {
	s.calls++
	return kernels.Judgment{MarginQ: w[0]}, 7, nil
}
func (s *stubBackend) InferBatch(ws [][]int32) ([]kernels.Judgment, []int64, error) {
	return kernels.InferLoop(s, ws)
}

// waitParked polls until n requests are parked with the coordinator.
func waitParked(t *testing.T, b *batcher, n int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		b.mu.Lock()
		cur := len(b.cur)
		b.mu.Unlock()
		if cur >= n {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("batch never reached %d parked requests (have %d)", n, cur)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestBatcherDrainReleasesParked pins the drain flush deterministically:
// with two registered producers, a lone submitter parks (the coordinator
// expects the second producer to contribute or flush), and only startDrain
// releases it.
func TestBatcherDrainReleasesParked(t *testing.T) {
	tel := obs.NewMetricsOnly()
	b := newBatcher(10*time.Minute, 1<<20, tel, nil)
	b.producerUp()
	b.producerUp() // a second live producer keeps the submitter parked
	e := b.wrap(&stubBackend{}).(*batchedEngine)
	done := make(chan error, 1)
	go func() {
		js, cycles, err := e.InferBatch([][]int32{{1, 2, 3}, {4, 5, 6}})
		if err == nil {
			if len(js) != 2 || len(cycles) != 2 || js[0].MarginQ != 1 || js[1].MarginQ != 4 {
				err = fmt.Errorf("bad results: js=%+v cycles=%v", js, cycles)
			}
		}
		done <- err
	}()
	waitParked(t, b, 1)
	select {
	case err := <-done:
		t.Fatalf("parked inference returned before drain (err=%v)", err)
	case <-time.After(50 * time.Millisecond):
	}
	b.startDrain()
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if n := b.mFlushDrain.Value(); n != 1 {
		t.Fatalf("drain flushes = %d, want 1", n)
	}
	if n := b.mFlushStarve.Value(); n != 0 {
		t.Fatalf("starve flushes = %d, want 0", n)
	}
	b.producerDown()
	b.producerDown()
	b.close()
}

// TestBatcherStarveFlush pins the starve rule: when every registered
// producer is parked in the batch, the last submitter yields once and then
// flushes inline rather than waiting out the window.
func TestBatcherStarveFlush(t *testing.T) {
	tel := obs.NewMetricsOnly()
	b := newBatcher(10*time.Minute, 1<<20, tel, nil)
	b.producerUp()
	e := b.wrap(&stubBackend{}).(*batchedEngine)
	j, cycles, err := e.Infer([]int32{9, 8, 7}) // sole producer: flushes itself
	if err != nil {
		t.Fatal(err)
	}
	if j.MarginQ != 9 || cycles != 7 {
		t.Fatalf("bad result: %+v / %d", j, cycles)
	}
	if n := b.mFlushStarve.Value(); n != 1 {
		t.Fatalf("starve flushes = %d, want 1", n)
	}
	b.producerDown()
	b.close()
}

// TestBatcherProducerExitFlushes pins the producer-exit path: a parked
// batch whose last outside producer leaves flushes on that producer's way
// out instead of waiting for the window.
func TestBatcherProducerExitFlushes(t *testing.T) {
	tel := obs.NewMetricsOnly()
	b := newBatcher(10*time.Minute, 1<<20, tel, nil)
	b.producerUp()
	b.producerUp()
	e := b.wrap(&stubBackend{}).(*batchedEngine)
	done := make(chan error, 1)
	go func() {
		_, _, err := e.InferBatch([][]int32{{5, 5, 5}})
		done <- err
	}()
	waitParked(t, b, 1)
	b.producerDown() // the non-submitting producer exits its chunk
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if n := b.mFlushStarve.Value(); n != 1 {
		t.Fatalf("starve flushes = %d, want 1", n)
	}
	b.producerDown()
	b.close()
}

// TestHelloStride: a client-selected stride is honoured, echoed in the
// welcome, and denser than the default; a negative stride is rejected.
func TestHelloStride(t *testing.T) {
	dep, stream := fixtures(t)
	short := stream[:len(stream)/8]
	addr := startServer(t, nil, dep)

	run := func(stride int) (*Welcome, []Judgment) {
		c, err := Dial(addr, Hello{Benchmark: fixBench, Model: "lstm", Stride: stride}, nil)
		if err != nil {
			t.Fatal(err)
		}
		w := c.Welcome()
		streamChunks(t, c, short, 8192)
		return &w, c.Judgments()
	}
	wDefault, jDefault := run(0)
	if wDefault.Stride == 0 {
		t.Fatal("welcome did not echo the resolved stride")
	}
	wDense, jDense := run(wDefault.Stride / 4)
	if wDense.Stride != wDefault.Stride/4 {
		t.Fatalf("welcome stride %d, asked for %d", wDense.Stride, wDefault.Stride/4)
	}
	if len(jDense) <= len(jDefault) {
		t.Fatalf("quarter stride judged %d vectors, default stride %d — expected denser", len(jDense), len(jDefault))
	}

	_, err := Dial(addr, Hello{Benchmark: fixBench, Model: "lstm", Stride: -1}, nil)
	var em *ErrorMsg
	if !errors.As(err, &em) || em.Code != ErrBadHello {
		t.Fatalf("negative stride: got %v, want bad-hello rejection", err)
	}
}

// TestClientContextCancel: cancelling the DialContext context unblocks a
// client mid-session with a context-attributed error.
func TestClientContextCancel(t *testing.T) {
	dep, stream := fixtures(t)
	addr := startServer(t, nil, dep)

	ctx, cancel := context.WithCancel(context.Background())
	c, err := DialContext(ctx, addr, Hello{Benchmark: fixBench, Model: "lstm"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Send(stream[:4096]); err != nil {
		t.Fatal(err)
	}
	cancel()
	_, err = c.Finish()
	if err == nil {
		t.Fatal("Finish succeeded after the context was cancelled")
	}
	if !errors.Is(err, context.Canceled) && !strings.Contains(err.Error(), "cancel") &&
		!strings.Contains(err.Error(), "closed") {
		t.Fatalf("Finish error not attributable to cancellation: %v", err)
	}

	// An already-cancelled context never dials.
	cancelled, cancel2 := context.WithCancel(context.Background())
	cancel2()
	if _, err := DialContext(cancelled, addr, Hello{Benchmark: fixBench, Model: "lstm"}, nil); err == nil {
		t.Fatal("DialContext succeeded with a cancelled context")
	}
}

// TestClientOpTimeout: a server that stops responding trips the per-op
// timeout rather than hanging the client forever.
func TestClientOpTimeout(t *testing.T) {
	// A listener that completes the handshake and then goes silent.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		buf := make([]byte, 1<<16)
		if _, _, _, err := ReadFrame(conn, buf); err != nil { // hello
			return
		}
		writeJSON(conn, FrameWelcome, &Welcome{Proto: Proto, Session: "s-silent"})
		time.Sleep(time.Minute) // never answer again
	}()

	c, err := Dial(ln.Addr().String(), Hello{Benchmark: "x", Model: "lstm"}, nil,
		WithOpTimeout(200*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	_, err = c.Finish()
	if err == nil {
		t.Fatal("Finish succeeded against a silent server")
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("per-op timeout did not bound the wait: %v", elapsed)
	}
}
