package serve

import (
	"log/slog"
	"time"

	"rtad/internal/obs"
	"rtad/internal/registry"
)

// Option tunes a Server built by New. The zero configuration is usable:
// unlimited sessions, fleet width GOMAXPROCS, 16-chunk queues, block
// backpressure, one-minute I/O deadlines, no batching, no telemetry.
type Option func(*Config)

// WithMaxSessions bounds concurrently live sessions; a hello beyond the
// bound is rejected with an explicit ErrBusy frame rather than queued
// invisibly. 0 (the default) means unlimited.
func WithMaxSessions(n int) Option { return func(c *Config) { c.MaxSessions = n } }

// WithWorkers sets the Fleet width the session runners share; 0 sizes it
// to GOMAXPROCS.
func WithWorkers(n int) Option { return func(c *Config) { c.Workers = n } }

// WithQueueDepth bounds each session's decoded-chunk queue (0 = 16).
func WithQueueDepth(n int) Option { return func(c *Config) { c.QueueDepth = n } }

// WithShed switches backpressure from block (lossless, TCP holds the
// client) to shed (drop the newest chunk when a session's queue is full).
// Shedding changes the judgment stream; lossless replay needs block.
func WithShed() Option { return func(c *Config) { c.Shed = true } }

// WithTimeouts bounds the gap between client frames (read) and one
// response write (write). 0 keeps the 1-minute default for that side.
func WithTimeouts(read, write time.Duration) Option {
	return func(c *Config) { c.ReadTimeout, c.WriteTimeout = read, write }
}

// WithGapCycles sets the replay pacing offered to clients that don't ask
// for one (0 = core.DefaultReplayGap).
func WithGapCycles(gap int64) Option { return func(c *Config) { c.GapCycles = gap } }

// WithBatching enables cross-session micro-batched inference: pending
// vectors from all admitted sessions (shadow lanes included) are collected
// for up to window wall time — or until max of them are waiting — and
// judged in one fused pass. Judgment streams are bit-identical to the
// unbatched path. window 0 disables batching; max 0 uses DefaultBatchMax.
func WithBatching(window time.Duration, max int) Option {
	return func(c *Config) { c.BatchWindow, c.BatchMax = window, max }
}

// WithStagedTrace runs every session's trace-delivery chain on the staged
// byte/word reference path instead of the fused analytic fast path
// (bit-identical; a cross-checking escape hatch).
func WithStagedTrace() Option { return func(c *Config) { c.StagedTrace = true } }

// WithTelemetry records serve metrics — and the registry's
// rtad_serve_model_* lifecycle series — into tel.
func WithTelemetry(tel *obs.Telemetry) Option { return func(c *Config) { c.Telemetry = tel } }

// WithLogger routes structured logs (session lifecycle, swap/canary
// transitions, errors, drain progress) to l.
func WithLogger(l *slog.Logger) Option { return func(c *Config) { c.Logger = l } }

// WithWallTracer records wall-clock spans of the serving path, exportable
// as Perfetto JSON.
func WithWallTracer(w *obs.WallTracer) Option { return func(c *Config) { c.WallTracer = w } }

// WithFlight retains a bounded ring of recent per-session events, dumped
// on panic, protocol violation, or abort.
func WithFlight(f *obs.FlightRecorder) Option { return func(c *Config) { c.Flight = f } }

// New builds a server that admits sessions from reg, the versioned model
// registry: every hello is admitted on the newest promoted version of its
// benchmark/model key and keeps that version until the session ends, so
// Promote swaps traffic atomically with zero downtime and zero rejected
// frames. A nil reg gets a fresh empty registry (populate it via Deploy or
// the admin endpoints).
func New(reg *registry.Registry, opts ...Option) *Server {
	var cfg Config
	for _, o := range opts {
		o(&cfg)
	}
	return newServer(reg, cfg)
}
