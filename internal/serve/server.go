package serve

import (
	"encoding/json"
	"fmt"
	"log/slog"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"rtad/internal/core"
	"rtad/internal/kernels"
	"rtad/internal/obs"
	"rtad/internal/registry"
)

// Config sizes and paces a Server. The zero value is usable: unlimited
// sessions, fleet width GOMAXPROCS, 16-chunk queues, block backpressure,
// one-minute I/O deadlines.
type Config struct {
	// MaxSessions bounds concurrently live sessions; a hello beyond the
	// bound is rejected with an explicit ErrBusy frame rather than queued
	// invisibly. 0 means unlimited.
	MaxSessions int
	// Workers is the Fleet width the session runners share; 0 sizes it to
	// GOMAXPROCS. Sessions beyond the width stay admitted but wait for a
	// worker, buffered by their chunk queues and ultimately TCP.
	Workers int
	// QueueDepth bounds each session's decoded-chunk queue (0 = 16 chunks).
	// The queue decouples the connection reader from the simulation.
	QueueDepth int
	// Shed switches the backpressure policy when a session's chunk queue is
	// full. Default (false) is block: the reader stops reading the socket
	// and TCP flow control holds the client — lossless, the right choice
	// when the trace source can pause. Shed (true) drops the newest chunk
	// and counts it — bounded memory and latency at the cost of trace loss
	// (decode resynchronises at the next a-sync), for sources that cannot
	// pause. Shedding changes the judgment stream; lossless replay needs
	// the block policy.
	Shed bool
	// ReadTimeout bounds the gap between client frames; WriteTimeout bounds
	// one response write. 0 means 1 minute each.
	ReadTimeout  time.Duration
	WriteTimeout time.Duration
	// GapCycles is the replay pacing offered to clients that don't ask for
	// one (0 = core.DefaultReplayGap).
	GapCycles int64
	// BatchWindow enables cross-session micro-batched inference: pending
	// vectors from all admitted sessions are collected for up to this much
	// wall time (or until BatchMax of them are waiting) and judged in one
	// fused pass. 0 disables batching entirely — every session infers
	// inline, the pre-batching behaviour. Judgment streams are bit-identical
	// either way; the window only trades per-vector wait for aggregate
	// throughput.
	BatchWindow time.Duration
	// BatchMax caps one micro-batch (0 = DefaultBatchMax). A full batch
	// flushes without waiting out the window.
	BatchMax int
	// StagedTrace runs every session's trace-delivery chain on the staged
	// byte/word reference path instead of the fused analytic fast path.
	// Judgment streams are bit-identical either way (the fused path's
	// contract, enforced by the differential CI job); this is an escape
	// hatch for cross-checking a live deployment against the reference.
	StagedTrace bool
	// Telemetry records serve metrics (sessions, rejections, queue depth,
	// bytes, judgments, wall-clock stage latencies) alongside whatever the
	// registry already holds.
	Telemetry *obs.Telemetry
	// Logger receives structured logs — session lifecycle, errors, drain
	// progress — each session-scoped line tagged with the obs.SessionKey
	// attribute carrying the SessionID from the welcome frame. Nil falls
	// back to Logf (wrapped), or to silence when that is nil too.
	Logger *slog.Logger
	// WallTracer, when set, records wall-clock spans of the serving path —
	// frame reads, admission, chunk feeds, batch flushes, judgment writes —
	// tagged with session IDs, exportable as Perfetto JSON. Nil records
	// nothing.
	WallTracer *obs.WallTracer
	// Flight, when set, retains a bounded ring of recent per-session events
	// and is dumped (via Logger, as JSON) when a session panics, violates
	// the protocol, or aborts. Nil records nothing.
	Flight *obs.FlightRecorder
	// Logf, when set and Logger is nil, receives one rendered line per
	// session lifecycle event.
	//
	// Deprecated: set Logger. Logf survives as a compatibility shim and is
	// wrapped into a *slog.Logger internally.
	Logf func(format string, args ...any)
}

// ServeSecondsBuckets bound the rtad_serve_*_seconds stage-latency
// histograms: exponential, 1µs .. ~33s. Every serving-plane SLO histogram
// shares them so quantiles are comparable across stages.
var ServeSecondsBuckets = obs.ExpBuckets(1e-6, 2, 26)

// Server multiplexes rtad-wire sessions onto a bounded pool of pre-loaded
// read-only deployments. Trained Deployments are immutable during inference
// (the Fleet contract), so every session — and any number of concurrent
// sessions — may share one deployment; each session owns its private
// scheduler, pipeline and replay clock, so concurrent sessions produce
// bit-identical judgment streams to a solo in-process run over the same
// bytes.
type Server struct {
	cfg Config
	// reg is the versioned model registry behind admission: a session is
	// welcomed on the newest promoted version of its key and holds exactly
	// that version until it ends, which is the whole zero-downtime story —
	// Promote moves new admissions atomically while in-flight streams stay
	// byte-for-byte on the weights that welcomed them.
	reg   *registry.Registry
	pool  *core.Fleet
	batch *batcher // nil when BatchWindow is 0 (unbatched path)
	// calib is the server-wide cycle-cost table shared by every session's
	// native backend: the first session of a (model, window, CUs) shape
	// pays the one-time GPU calibration pass, and every later session
	// replays it — which also makes deferred judgment (and so chunk-level
	// batching) available from those sessions' first vector.
	calib *kernels.Calibration

	log *slog.Logger

	mu       sync.Mutex
	live     int
	draining bool
	closed   bool
	nextID   int64
	conns    map[net.Conn]struct{}
	states   map[string]*sessionState // live sessions, for /debug/sessions
	ln       net.Listener

	sessions sync.WaitGroup // live admitted sessions
	connWG   sync.WaitGroup // all connection goroutines

	// metrics (nil-safe when cfg.Telemetry is nil)
	mLive      *obs.Gauge
	mTotal     *obs.Counter
	mBusy      *obs.Counter
	mDraining  *obs.Counter
	mShed      *obs.Counter
	mPanics    *obs.Counter
	mBytes     *obs.Counter
	mJudgments *obs.Counter
	mQueueMax  *obs.Gauge

	// wall-clock SLO histograms (rtad_serve_*_seconds), nil-safe too
	mReadSec  *obs.Histogram // one successful frame read (incl. client gap)
	mAdmitSec *obs.Histogram // hello parsed -> welcome written
	mFeedSec  *obs.Histogram // one chunk through FeedTrace (decode+sim+infer)
	mWriteSec *obs.Histogram // one judgment-burst socket write
	mE2ESec   *obs.Histogram // chunk read off the socket -> its last judgment written
}

// NewServer builds a server over cfg with its own empty registry.
// Deployments are registered with Deploy before Serve.
//
// Deprecated: use New with a *registry.Registry and functional options;
// NewServer survives as a compatibility shim over it.
func NewServer(cfg Config) *Server { return newServer(nil, cfg) }

// newServer is the one construction path behind New and the NewServer
// shim. A nil reg gets a fresh empty registry.
func newServer(reg *registry.Registry, cfg Config) *Server {
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 16
	}
	if cfg.ReadTimeout <= 0 {
		cfg.ReadTimeout = time.Minute
	}
	if cfg.WriteTimeout <= 0 {
		cfg.WriteTimeout = time.Minute
	}
	logger := cfg.Logger
	if logger == nil {
		if cfg.Logf != nil {
			logger = obs.LogfLogger(cfg.Logf)
		} else {
			logger = obs.DiscardLogger()
		}
	}
	tel := cfg.Telemetry
	var batch *batcher
	if cfg.BatchWindow > 0 {
		batch = newBatcher(cfg.BatchWindow, cfg.BatchMax, tel, cfg.WallTracer)
	}
	if reg == nil {
		reg = registry.New()
	}
	if tel != nil {
		reg.Observe(tel)
	}
	return &Server{
		cfg:        cfg,
		reg:        reg,
		pool:       core.NewFleet(cfg.Workers),
		batch:      batch,
		calib:      kernels.NewCalibration(),
		log:        logger,
		conns:      map[net.Conn]struct{}{},
		states:     map[string]*sessionState{},
		mLive:      tel.Gauge("rtad_serve_sessions_live"),
		mTotal:     tel.Counter("rtad_serve_sessions_total"),
		mBusy:      tel.Counter("rtad_serve_rejected_busy_total"),
		mDraining:  tel.Counter("rtad_serve_rejected_draining_total"),
		mShed:      tel.Counter("rtad_serve_shed_chunks_total"),
		mPanics:    tel.Counter("rtad_serve_panics_total"),
		mBytes:     tel.Counter("rtad_serve_bytes_in_total"),
		mJudgments: tel.Counter("rtad_serve_judgments_total"),
		mQueueMax:  tel.Gauge("rtad_serve_queue_depth_max"),
		mReadSec:   tel.Histogram("rtad_serve_frame_read_seconds", ServeSecondsBuckets),
		mAdmitSec:  tel.Histogram("rtad_serve_admission_seconds", ServeSecondsBuckets),
		mFeedSec:   tel.Histogram("rtad_serve_feed_seconds", ServeSecondsBuckets),
		mWriteSec:  tel.Histogram("rtad_serve_judgment_write_seconds", ServeSecondsBuckets),
		mE2ESec:    tel.Histogram("rtad_serve_chunk_judgment_seconds", ServeSecondsBuckets),
	}
}

// Deploy registers a trained deployment under benchmark/model and promotes
// it active immediately — the bootstrap path for models loaded before
// Serve. The deployment must not be mutated afterwards — every admitted
// session reads it concurrently. For the staged load → canary → promote
// lifecycle, register through Registry() (or the /debug/models admin
// endpoints) instead.
func (s *Server) Deploy(dep *core.Deployment) {
	v, err := s.reg.Register(dep, registry.Meta{Origin: "deploy"})
	if err != nil {
		s.log.Error("serve: deploy rejected", "err", err)
		return
	}
	if err := s.reg.Promote(v.Key(), v.ID()); err != nil {
		s.log.Error("serve: deploy promotion failed", "model", v.Key(), "version", v.ID(), "err", err)
	}
}

// Registry exposes the server's model registry — the handle admin surfaces
// use to load, canary, promote and retire versions while the server runs.
func (s *Server) Registry() *registry.Registry { return s.reg }

// Models lists the benchmark/model keys with an active version — the set a
// hello can currently be admitted on — sorted lexically.
func (s *Server) Models() []string { return s.reg.ActiveKeys() }

func depKey(bench, model string) string { return bench + "/" + model }

// Serve accepts connections on ln until Shutdown (or a fatal listener
// error). It blocks; run it in a goroutine when the caller also handles
// signals. The listener stays open while draining so that late clients get
// an explicit "draining" error frame instead of a connection refusal.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return fmt.Errorf("serve: server closed")
	}
	s.ln = ln
	s.mu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		s.connWG.Add(1)
		go func() {
			defer s.connWG.Done()
			s.handle(conn)
		}()
	}
}

// Shutdown drains the server: sessions in flight finish and deliver their
// summaries; new hellos are rejected with ErrDraining while the drain is in
// progress. If the drain outlasts timeout, remaining connections are
// force-closed. The listener closes last, after which Serve returns nil.
func (s *Server) Shutdown(timeout time.Duration) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.draining = true
	s.mu.Unlock()
	if s.batch != nil {
		// Flush the pending batch now and every later arrival immediately:
		// sessions blocked in a parked inference must progress to their
		// summary frames for the drain to complete.
		s.batch.startDrain()
	}

	drainStart := time.Now()
	done := make(chan struct{})
	go func() { s.sessions.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(timeout):
		s.log.Warn("serve: drain timeout, force-closing connections", "timeout", timeout)
		s.mu.Lock()
		for c := range s.conns {
			c.Close()
		}
		s.mu.Unlock()
		<-done
	}
	s.cfg.WallTracer.Track("serve", "server").Since("drain", drainStart, nil)

	s.mu.Lock()
	s.closed = true
	ln := s.ln
	s.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
	s.connWG.Wait()
	s.pool.Close()
	if s.batch != nil {
		// All sessions are done, so nothing can submit anymore.
		s.batch.close()
	}
}

// track registers a connection for force-close; untrack forgets it.
func (s *Server) track(c net.Conn) {
	s.mu.Lock()
	s.conns[c] = struct{}{}
	s.mu.Unlock()
}

func (s *Server) untrack(c net.Conn) {
	s.mu.Lock()
	delete(s.conns, c)
	s.mu.Unlock()
}

// inMsg is one unit of the reader→runner queue: a copied trace chunk, or
// the end-of-stream mark. at stamps the moment the chunk left the socket —
// the start of the end-to-end chunk→last-judgment SLO clock.
type inMsg struct {
	data []byte
	at   time.Time
	eos  bool
}

// handle runs a connection's read side: handshake, admission, then frame
// reading into the session's bounded chunk queue. All post-welcome writes —
// judgments, summary, errors — belong to the session runner, which also
// closes the connection; the split keeps exactly one writer per socket.
func (s *Server) handle(conn net.Conn) {
	s.track(conn)
	defer s.untrack(conn)

	hello, err := s.readHello(conn)
	if err != nil {
		s.refuse(conn, ErrBadHello, err.Error())
		return
	}
	if hello.Proto != Proto {
		s.refuse(conn, ErrProto, fmt.Sprintf("unsupported protocol %q (want %s)", hello.Proto, Proto))
		return
	}
	admitStart := time.Now() // hello parsed; stops when the welcome is written

	// Admission control, under one lock so the live count is exact.
	s.mu.Lock()
	switch {
	case s.draining:
		s.mu.Unlock()
		s.mDraining.Inc()
		s.refuse(conn, ErrDraining, "server is draining")
		return
	case s.cfg.MaxSessions > 0 && s.live >= s.cfg.MaxSessions:
		s.mu.Unlock()
		s.mBusy.Inc()
		s.refuse(conn, ErrBusy, fmt.Sprintf("all %d sessions in use", s.cfg.MaxSessions))
		return
	}
	// Acquire pins this session to the key's active version (and carves the
	// canary slice) while s.mu still serialises admissions, so the version
	// a session holds is exactly the newest promotion at its admission
	// instant.
	ver, shadowVer, err := s.reg.Acquire(depKey(hello.Benchmark, hello.Model))
	if err != nil {
		s.mu.Unlock()
		s.refuse(conn, ErrBadHello, fmt.Sprintf("no deployment %s/%s (have: %s)",
			hello.Benchmark, hello.Model, strings.Join(s.reg.ActiveKeys(), ", ")))
		return
	}
	s.live++
	s.nextID++
	id := fmt.Sprintf("s-%d", s.nextID)
	live := s.live
	s.mu.Unlock()

	s.sessions.Add(1)
	s.mTotal.Inc()
	s.mLive.Set(int64(live))
	admitted := false
	defer func() {
		if !admitted {
			s.endSession(id, ver, shadowVer)
		}
	}()

	sess, shadow, welcome, err := s.openSession(id, ver, shadowVer, hello)
	if err != nil {
		s.refuse(conn, ErrBadHello, err.Error())
		return
	}
	if shadow == nil && shadowVer != nil {
		// The shadow lane failed to open; the client session proceeds
		// unshadowed (openSession already logged why).
		s.reg.Release(shadowVer)
		shadowVer = nil
	}
	if err := s.writeFrame(conn, FrameWelcome, welcome); err != nil {
		conn.Close()
		return
	}
	admitted = true
	s.mAdmitSec.Observe(time.Since(admitStart).Seconds())

	remote := fmt.Sprint(conn.RemoteAddr())
	state := &sessionState{
		id: id, benchmark: hello.Benchmark, model: hello.Model,
		backend: welcome.Backend, remote: remote, started: time.Now(),
		version: ver.ID(),
	}
	if shadowVer != nil {
		state.shadowVersion = shadowVer.ID()
	}
	state.touch()
	s.mu.Lock()
	s.states[id] = state
	s.mu.Unlock()

	log := obs.SessionLogger(s.log, id)
	flight := s.cfg.Flight
	wall := s.cfg.WallTracer.Track("serve", id)
	wall.Since("admission", admitStart, map[string]any{
		obs.SessionKey: id, "benchmark": hello.Benchmark, "model": hello.Model,
		"model_version": ver.ID(),
	})
	log.Info("serve: session open",
		"benchmark", hello.Benchmark, "model", hello.Model,
		"backend", welcome.Backend, "remote", remote,
		"model_version", ver.ID(), "shadow_version", state.shadowVersion)
	flight.Record(id, "open", map[string]any{
		"benchmark": hello.Benchmark, "model": hello.Model,
		"backend": welcome.Backend, "remote": remote,
		"model_version": ver.ID(), "shadow_version": state.shadowVersion,
	})

	// The bounded chunk queue between this reader and the runner. The
	// reader is the only sender and closes it; the runner drains it.
	q := make(chan inMsg, s.cfg.QueueDepth)
	var shed atomic.Int64

	r := &runner{srv: s, id: id, conn: conn, sess: sess, q: q, shed: &shed,
		log: log, state: state, wall: wall,
		ver: ver, shadowVer: shadowVer, shadow: shadow}
	s.pool.Go(r.run)

	// Reader loop: frames in, chunks queued. Exiting closes q, which is the
	// runner's end-of-input whatever the cause.
	defer close(q)
	buf := make([]byte, 0, 64<<10)
	for {
		conn.SetReadDeadline(time.Now().Add(s.cfg.ReadTimeout))
		readStart := time.Now()
		t, payload, nbuf, err := ReadFrame(conn, buf)
		at := time.Now()
		buf = nbuf
		if err != nil {
			return // disconnect or protocol garbage; runner sees closed q
		}
		s.mReadSec.Observe(at.Sub(readStart).Seconds())
		switch t {
		case FrameChunk:
			s.mBytes.Add(int64(len(payload)))
			state.chunks.Add(1)
			state.traceBytes.Add(int64(len(payload)))
			state.touch()
			flight.Record(id, "chunk", map[string]any{"bytes": len(payload)})
			msg := inMsg{data: append([]byte(nil), payload...), at: at}
			if s.cfg.Shed {
				select {
				case q <- msg:
				default:
					// Queue full: shed the newest chunk rather than stall
					// the socket. The decoder resynchronises downstream.
					s.mShed.Inc()
					shed.Add(1)
					flight.Record(id, "shed", map[string]any{"bytes": len(payload)})
				}
			} else {
				q <- msg // block: TCP holds the client until space frees
			}
			s.mQueueMax.Max(int64(len(q)))
		case FrameEOS:
			flight.Record(id, "eos", nil)
			q <- inMsg{eos: true, at: at}
			return
		default:
			// Client protocol violation: drop the session, with the flight
			// recorder's recent history dumped for the post-mortem.
			flight.Record(id, "proto-error", map[string]any{"frame": t.String()})
			log.Error("serve: protocol violation, dropping session", "frame", t.String())
			s.dumpFlight(log, id)
			return
		}
	}
}

// endSession decrements the live count (and its gauge), retires the
// introspection row, releases the session's registry holds (the admitted
// version plus any canary shadow), and marks the flight-recorder ring
// evictable — exactly once per admitted-or-aborted session. Releasing the
// holds is what lets a retired version finally leave the registry once its
// last in-flight session finishes.
func (s *Server) endSession(id string, held ...*registry.Version) {
	s.mu.Lock()
	s.live--
	live := s.live
	delete(s.states, id)
	s.mu.Unlock()
	for _, v := range held {
		s.reg.Release(v) // nil-safe
	}
	s.mLive.Set(int64(live))
	s.cfg.Flight.End(id)
	s.sessions.Done()
}

// dumpFlight logs the session's flight-recorder ring as one JSON blob —
// the post-mortem attached to every panic, protocol error, and abort.
func (s *Server) dumpFlight(log *slog.Logger, id string) {
	events := s.cfg.Flight.Dump(id)
	if len(events) == 0 {
		return
	}
	blob, err := json.Marshal(events)
	if err != nil {
		return
	}
	log.Error("serve: flight recorder dump", "events", len(events), "ring", json.RawMessage(blob))
}

// openSession validates the negotiable parts of hello against the admitted
// version's deployment and opens the trace-replay core session — plus, when
// the admission fell into the canary slice, a shadow session on the
// candidate version with the identical configuration (same backend, gap,
// stride, attack, calibration table, batching wrap), so the two judge
// exactly the same replayed stream. A shadow that fails to open is logged
// and dropped (shadow == nil); it never fails the client session.
func (s *Server) openSession(id string, ver, shadowVer *registry.Version, hello *Hello) (sess, shadow *core.Session, welcome *Welcome, err error) {
	dep := ver.Deployment()
	backend := hello.Backend
	if backend == "" {
		backend = kernels.BackendGPU
	}
	switch backend {
	case kernels.BackendGPU, kernels.BackendNative, kernels.BackendNativeCalibrated:
	default:
		return nil, nil, nil, fmt.Errorf("unknown backend %q", hello.Backend)
	}
	if hello.Window != 0 && hello.Window != dep.Window() {
		return nil, nil, nil, fmt.Errorf("window mismatch: client expects %d, %s/%s judges %d-windows",
			hello.Window, hello.Benchmark, hello.Model, dep.Window())
	}
	gap := hello.GapCycles
	if gap <= 0 {
		gap = s.cfg.GapCycles
	}
	if gap <= 0 {
		gap = core.DefaultReplayGap
	}
	if hello.Stride < 0 {
		return nil, nil, nil, fmt.Errorf("stride must be non-negative, got %d", hello.Stride)
	}
	stride := hello.Stride
	if stride == 0 {
		if dep.Kind == core.ModelELM {
			stride = core.DefaultELMStride
		} else {
			stride = core.DefaultLSTMStride
		}
	}
	open := func(d *core.Deployment) (*core.Session, error) {
		opts := []core.Option{
			core.WithConfig(core.PipelineConfig{
				CUs: hello.CUs, Backend: backend, Stride: stride,
				Calibration: s.calib, StagedTrace: s.cfg.StagedTrace,
			}),
			core.WithTraceInput(gap),
		}
		if s.batch != nil {
			opts = append(opts, core.WithEngineWrap(s.batch.wrap))
		}
		if a := hello.Attack; a != nil {
			if a.BurstLen <= 0 {
				return nil, fmt.Errorf("attack burst_len must be positive, got %d", a.BurstLen)
			}
			opts = append(opts, core.WithAttack(core.AttackSpec{
				TriggerBranch: a.TriggerBranch,
				BurstLen:      a.BurstLen,
				Mimicry:       a.Mimicry,
				Seed:          a.Seed,
			}))
		}
		return core.Open(core.Deployments{d}, opts...)
	}
	sess, err = open(dep)
	if err != nil {
		return nil, nil, nil, err
	}
	if shadowVer != nil {
		shadow, err = open(shadowVer.Deployment())
		if err != nil {
			s.log.Warn("serve: canary shadow failed to open, session proceeds unshadowed",
				obs.SessionKey, id, "model", ver.Key(), "candidate_version", shadowVer.ID(), "err", err)
			shadow, err = nil, nil
		}
	}
	welcome = &Welcome{
		Proto:        Proto,
		Session:      id,
		SessionID:    id,
		Benchmark:    hello.Benchmark,
		Model:        hello.Model,
		Backend:      backend,
		Window:       dep.Window(),
		GapCycles:    gap,
		Stride:       stride,
		ModelVersion: ver.ID(),
	}
	return sess, shadow, welcome, nil
}

// refuse writes one error frame and closes the connection — the pre-session
// exit path (bad hello, busy, draining).
func (s *Server) refuse(conn net.Conn, code, msg string) {
	s.writeFrame(conn, FrameError, &ErrorMsg{Code: code, Msg: msg})
	conn.Close()
}

func (s *Server) readHello(conn net.Conn) (*Hello, error) {
	conn.SetReadDeadline(time.Now().Add(s.cfg.ReadTimeout))
	t, payload, _, err := ReadFrame(conn, nil)
	if err != nil {
		return nil, fmt.Errorf("reading hello: %w", err)
	}
	if t != FrameHello {
		return nil, fmt.Errorf("expected hello, got %v", t)
	}
	var h Hello
	if err := json.Unmarshal(payload, &h); err != nil {
		return nil, fmt.Errorf("hello: %w", err)
	}
	return &h, nil
}

// writeFrame applies the write deadline and emits one JSON frame.
func (s *Server) writeFrame(conn net.Conn, t FrameType, v any) error {
	conn.SetWriteDeadline(time.Now().Add(s.cfg.WriteTimeout))
	return writeJSON(conn, t, v)
}

// runner drives one admitted session on a fleet worker: chunks in,
// judgments out, summary at end-of-stream. It owns every post-welcome write
// and the connection's close.
type runner struct {
	srv   *Server
	id    string
	conn  net.Conn
	sess  *core.Session
	q     <-chan inMsg
	shed  *atomic.Int64
	log   *slog.Logger
	state *sessionState
	wall  *obs.WallTrack

	// Registry holds: ver is the version the session was admitted on (its
	// judgments and anomaly counts tally against it); shadowVer is the
	// canary candidate when this admission fell in the canary slice. Both
	// are released by endSession.
	ver       *registry.Version
	shadowVer *registry.Version
	// shadow is the candidate's invisible session over the same trace
	// bytes. Its judgments feed the registry's per-version delta — never
	// the socket — and a shadow failure nils it without touching the
	// client session.
	shadow *core.Session
}

// run executes the session to completion. A panic anywhere in the
// simulation is confined to this session: it is counted, logged (with the
// flight recorder's recent history), reported to the client as an internal
// error, and the server keeps serving.
func (r *runner) run() error {
	s := r.srv
	defer s.endSession(r.id, r.ver, r.shadowVer)
	defer r.conn.Close()
	// The reader blocks sending into q when the queue policy is block; keep
	// draining after exit so it can always make progress to its own close.
	defer func() {
		for range r.q {
		}
	}()
	defer func() {
		if p := recover(); p != nil {
			s.mPanics.Inc()
			s.cfg.Flight.Record(r.id, "panic", map[string]any{"value": fmt.Sprint(p)})
			r.log.Error("serve: session panic", "panic", p)
			s.dumpFlight(r.log, r.id)
			r.writeError(ErrInternal, fmt.Sprintf("session panic: %v", p))
		}
	}()

	// The producer brackets tell the batching coordinator when this runner
	// is inside a chunk — the only stretches where it can park a vector.
	// Socket writes and queue waits stay outside so a stalled client never
	// holds a batch open. The shadow session is fed the same bytes inside
	// the same bracket, sequentially after the primary, so a canary's
	// inference rides the same micro-batches as live traffic.
	feed := func(data []byte) error {
		s.batch.producerUp()
		defer s.batch.producerDown()
		if err := r.sess.FeedTrace(data); err != nil {
			return err
		}
		r.feedShadow(data)
		return nil
	}
	var judgBuf []byte
	sawEOS := false
	for msg := range r.q {
		if msg.eos {
			sawEOS = true
			break
		}
		feedStart := time.Now()
		if err := feed(msg.data); err != nil {
			s.cfg.Flight.Record(r.id, "error", map[string]any{"err": err.Error()})
			r.log.Error("serve: feed failed", "err", err)
			s.dumpFlight(r.log, r.id)
			r.writeError(ErrInternal, err.Error())
			return fmt.Errorf("serve: %s: %w", r.id, err)
		}
		s.mFeedSec.Observe(time.Since(feedStart).Seconds())
		r.wall.Since("feed", feedStart, map[string]any{obs.SessionKey: r.id, "bytes": len(msg.data)})
		wrote, anoms, err := r.flushJudgments(&judgBuf)
		if err != nil {
			return nil // client gone; nothing left to deliver
		}
		r.collectShadow(int64(wrote), anoms)
		if wrote > 0 {
			// The headline serving SLO: this chunk left the socket at
			// msg.at; its last judgment is on the wire now.
			s.mE2ESec.Observe(time.Since(msg.at).Seconds())
		}
	}
	if !sawEOS {
		// Reader closed the queue without EOS: disconnect or timeout. The
		// session dies with it; there is no one to summarise to.
		s.cfg.Flight.Record(r.id, "abort", nil)
		r.log.Warn("serve: session aborted before eos")
		s.dumpFlight(r.log, r.id)
		return nil
	}
	err := func() error {
		s.batch.producerUp()
		defer s.batch.producerDown()
		drainStart := time.Now()
		defer r.wall.Since("drain", drainStart, map[string]any{obs.SessionKey: r.id})
		if err := r.sess.Drain(); err != nil {
			return err
		}
		r.drainShadow()
		return nil
	}()
	if err != nil {
		s.cfg.Flight.Record(r.id, "error", map[string]any{"err": err.Error()})
		r.log.Error("serve: drain failed", "err", err)
		s.dumpFlight(r.log, r.id)
		r.writeError(ErrInternal, err.Error())
		return fmt.Errorf("serve: %s drain: %w", r.id, err)
	}
	wrote, anoms, err := r.flushJudgments(&judgBuf)
	if err != nil {
		return nil
	}
	r.collectShadow(int64(wrote), anoms)
	sum := r.summary()
	if err := s.writeFrame(r.conn, FrameSummary, sum); err != nil {
		return nil
	}
	s.cfg.Flight.Record(r.id, "summary", map[string]any{
		"judged": sum.Judged, "events": sum.Events, "trace_bytes": sum.TraceBytes,
	})
	r.log.Info("serve: session done",
		"judged", sum.Judged, "events", sum.Events, "trace_bytes", sum.TraceBytes)
	return nil
}

// flushJudgments sends every newly delivered judgment, in delivery (time)
// order, and tallies the burst (count and anomalies) against the session's
// registry version. The frames are assembled back to back in buf and
// written with one syscall — a chunk typically yields a burst of judgments,
// and per-frame writes would make the socket the hot path at serving rates.
// The byte stream is identical to writing each frame alone.
func (r *runner) flushJudgments(buf *[]byte) (int, int64, error) {
	res := r.sess.Results()
	if len(res) == 0 {
		return 0, 0, nil
	}
	*buf = (*buf)[:0]
	var anoms int64
	for _, j := range res {
		if j.Rec.Judgment.Anomaly {
			anoms++
		}
		*buf = appendJudgmentFrame(*buf, Judgment{
			Seq:         j.Vector.Seq,
			Done:        int64(j.Rec.Done),
			FinalRetire: int64(j.FinalRetire),
			IRQAt:       int64(j.Rec.IRQAt),
			MarginQ:     j.Rec.Judgment.MarginQ,
			EwmaQ:       j.Rec.Judgment.EwmaQ,
			Anomaly:     j.Rec.Judgment.Anomaly,
		})
	}
	r.conn.SetWriteDeadline(time.Now().Add(r.srv.cfg.WriteTimeout))
	writeStart := time.Now()
	if _, err := r.conn.Write(*buf); err != nil {
		return 0, 0, err
	}
	r.srv.mWriteSec.Observe(time.Since(writeStart).Seconds())
	r.wall.Since("judgment_write", writeStart,
		map[string]any{obs.SessionKey: r.id, "judgments": len(res)})
	r.srv.mJudgments.Add(int64(len(res)))
	r.srv.reg.RecordJudgments(r.ver, int64(len(res)), anoms)
	r.state.judged.Add(int64(len(res)))
	r.state.touch()
	r.srv.cfg.Flight.Record(r.id, "judgments", map[string]any{"count": len(res)})
	return len(res), anoms, nil
}

// feedShadow replays the chunk into the canary shadow session. A shadow
// failure is confined to the shadow: it is logged, flight-recorded, and the
// shadow lane is dropped for the rest of the session — the client stream is
// never touched.
func (r *runner) feedShadow(data []byte) {
	if r.shadow == nil {
		return
	}
	if err := r.shadow.FeedTrace(data); err != nil {
		r.dropShadow("feed", err)
	}
}

// drainShadow finishes the shadow session at end-of-stream (inside the
// same producer bracket as the primary drain).
func (r *runner) drainShadow() {
	if r.shadow == nil {
		return
	}
	if err := r.shadow.Drain(); err != nil {
		r.dropShadow("drain", err)
	}
}

func (r *runner) dropShadow(stage string, err error) {
	r.srv.cfg.Flight.Record(r.id, "shadow-error", map[string]any{"stage": stage, "err": err.Error()})
	r.log.Warn("serve: canary shadow dropped, session continues unshadowed",
		"stage", stage, "candidate_version", r.shadowVer.ID(), "err", err)
	r.shadow = nil
}

// collectShadow drains the shadow session's newly judged vectors into the
// registry's canary tally, paired with the primary burst judged over the
// same bytes (the baseline side of the anomaly-rate delta). Shadow
// judgments end here by construction — nothing on this path writes to the
// connection.
func (r *runner) collectShadow(baseJudged, baseAnoms int64) {
	if r.shadow == nil {
		return
	}
	res := r.shadow.Results()
	if len(res) == 0 && baseJudged == 0 {
		return
	}
	var anoms int64
	for _, j := range res {
		if j.Rec.Judgment.Anomaly {
			anoms++
		}
	}
	r.srv.reg.RecordShadow(r.shadowVer, int64(len(res)), anoms, baseJudged, baseAnoms)
	r.state.shadowJudged.Add(int64(len(res)))
	if len(res) > 0 {
		r.srv.cfg.Flight.Record(r.id, "shadow", map[string]any{
			"count": len(res), "candidate_version": r.shadowVer.ID(),
		})
	}
}

// summary assembles the end-of-stream summary from the drained session.
func (r *runner) summary() *Summary {
	bytes, events, decErrs := r.sess.ReplayStats()
	stats := r.sess.MCMStats()
	sum := &Summary{
		Judged:       int(stats.Accepted),
		Dropped:      stats.Dropped,
		MaxOccupancy: stats.MaxOccupancy,
		TraceBytes:   bytes,
		Events:       events,
		DecodeErrors: decErrs,
		ShedChunks:   r.shed.Load(),
		AttackFired:  r.sess.AttackFired(),
	}
	if sum.AttackFired {
		if res, err := r.sess.Summary(); err == nil {
			sum.Detection = &Detection{
				Detected:      res.Detected,
				InjectTimePS:  int64(res.InjectTime),
				LatencyPS:     int64(res.Latency),
				MeanLatencyPS: int64(res.MeanLatency),
				IRQTimePS:     int64(res.IRQTime),
				FirstSeq:      res.First.Vector.Seq,
			}
		}
	}
	return sum
}

func (r *runner) writeError(code, msg string) {
	r.conn.SetWriteDeadline(time.Now().Add(r.srv.cfg.WriteTimeout))
	writeJSON(r.conn, FrameError, &ErrorMsg{Code: code, Msg: msg})
}
