package serve

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"net/url"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"rtad/internal/core"
	"rtad/internal/kernels"
	"rtad/internal/obs"
	"rtad/internal/registry"
)

// Second shared deployment: same benchmark, smaller training budget, so it
// has different weights (distinct fingerprint, distinct judgment stream)
// while negotiating the same hello. This is the "retrained model" of the
// lifecycle tests.
var (
	fixOnceB sync.Once
	fixErrB  error
	fixDepB  *core.Deployment
)

func fixturesB(t *testing.T) *core.Deployment {
	t.Helper()
	depA, _ := fixtures(t)
	fixOnceB.Do(func() {
		cfg := core.DefaultTrainConfig(depA.Profile, core.ModelLSTM)
		cfg.TrainInstr = 800_000
		fixDepB, fixErrB = core.Train(cfg)
	})
	if fixErrB != nil {
		t.Fatal(fixErrB)
	}
	if fixDepB.Fingerprint() == depA.Fingerprint() {
		t.Fatal("retrained fixture has the same fingerprint as the original; lifecycle tests would be vacuous")
	}
	return fixDepB
}

// lifecycleServer starts a server with its registry exposed, deploys A as
// the active version, and returns the address plus the registry handle.
func lifecycleServer(t *testing.T, tel *obs.Telemetry, depA *core.Deployment) (string, *registry.Registry) {
	t.Helper()
	opts := []Option{WithWorkers(4)}
	if tel != nil {
		opts = append(opts, WithTelemetry(tel))
	}
	srv := New(nil, opts...)
	srv.Deploy(depA)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	t.Cleanup(func() {
		srv.Shutdown(10 * time.Second)
		if err := <-done; err != nil {
			t.Errorf("Serve: %v", err)
		}
	})
	return ln.Addr().String(), srv.Registry()
}

func findVersion(t *testing.T, reg *registry.Registry, key string, id int64) registry.VersionInfo {
	t.Helper()
	for _, mi := range reg.Snapshot() {
		if mi.Model != key {
			continue
		}
		for _, vi := range mi.Versions {
			if vi.Version == id {
				return vi
			}
		}
	}
	t.Fatalf("version %s@%d not in registry snapshot", key, id)
	return registry.VersionInfo{}
}

// TestHotSwapUnderLoad is the zero-downtime acceptance test. A client is
// admitted on v1 and mid-stream the registry promotes a retrained v2:
//
//   - the in-flight session must finish on v1 with a judgment stream
//     byte-identical to a no-swap run (admission pins the version);
//   - a session opened after the swap must judge on v2, byte-identical to
//     a fresh v2-only server, and its welcome must carry model_version 2;
//   - no frame is rejected at any point — the swap is invisible to clients
//     except through the version field.
//
// Run under -race in CI: the promote races the in-flight session's feed
// path by construction.
func TestHotSwapUnderLoad(t *testing.T) {
	depA, stream := fixtures(t)
	depB := fixturesB(t)
	short := stream[:len(stream)/8]

	// Ground truth from single-version servers: what each model says about
	// this exact trace when no swap ever happens.
	refA, _ := referenceRun(t, depA, kernels.BackendGPU, short)
	refB, _ := referenceRun(t, depB, kernels.BackendGPU, short)
	if len(refA) == 0 || len(refB) == 0 {
		t.Fatal("reference runs judged nothing; lengthen the fixture")
	}

	tel := obs.NewMetricsOnly()
	addr, reg := lifecycleServer(t, tel, depA)
	key := depKey(fixBench, "lstm")

	// Client 1 admitted on v1; stream the first half before the swap.
	c1, err := Dial(addr, Hello{Benchmark: fixBench, Model: "lstm", Attack: testAttack}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := c1.ModelVersion(); got != 1 {
		t.Fatalf("pre-swap welcome model_version = %d, want 1", got)
	}
	half := len(short) / 2
	for off := 0; off < half; off += 4096 {
		end := off + 4096
		if end > half {
			end = half
		}
		if err := c1.Send(short[off:end]); err != nil {
			t.Fatalf("pre-swap send: %v", err)
		}
	}

	// The swap: load the retrained model and promote it while c1 is live.
	v2, err := reg.Register(depB, registry.Meta{Origin: "test:retrained"})
	if err != nil {
		t.Fatal(err)
	}
	if err := reg.Promote(key, v2.ID()); err != nil {
		t.Fatal(err)
	}

	// Client 2 dials after the promote: new admissions land on v2.
	c2, err := Dial(addr, Hello{Benchmark: fixBench, Model: "lstm", Attack: testAttack}, nil)
	if err != nil {
		t.Fatalf("post-swap dial: %v", err)
	}
	if got := c2.ModelVersion(); got != 2 {
		t.Fatalf("post-swap welcome model_version = %d, want 2", got)
	}

	// Both clients finish their full streams concurrently — c1 across the
	// swap on v1, c2 entirely on v2.
	var wg sync.WaitGroup
	errs := make([]error, 2)
	wg.Add(2)
	go func() {
		defer wg.Done()
		for off := half; off < len(short); off += 4096 {
			end := off + 4096
			if end > len(short) {
				end = len(short)
			}
			if err := c1.Send(short[off:end]); err != nil {
				errs[0] = fmt.Errorf("post-swap send on old session: %w", err)
				return
			}
		}
		if _, err := c1.Finish(); err != nil {
			errs[0] = fmt.Errorf("old session finish: %w", err)
		}
	}()
	go func() {
		defer wg.Done()
		for off := 0; off < len(short); off += 4096 {
			end := off + 4096
			if end > len(short) {
				end = len(short)
			}
			if err := c2.Send(short[off:end]); err != nil {
				errs[1] = fmt.Errorf("new session send: %w", err)
				return
			}
		}
		if _, err := c2.Finish(); err != nil {
			errs[1] = fmt.Errorf("new session finish: %w", err)
		}
	}()
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}

	compareJudgments(t, "in-flight session across the swap (v1)", c1.Judgments(), refA)
	compareJudgments(t, "post-swap session (v2)", c2.Judgments(), refB)

	if n := tel.Reg.Counter("rtad_serve_rejected_busy_total").Value() +
		tel.Reg.Counter("rtad_serve_rejected_draining_total").Value(); n != 0 {
		t.Errorf("%d sessions rejected during the swap, want 0", n)
	}
	if n := tel.Reg.Counter("rtad_serve_model_swaps_total").Value(); n != 1 {
		t.Errorf("swap counter = %d, want 1", n)
	}

	// v1 was retired by the promote and c1 — its last holder — has drained,
	// so the registry dropped it entirely: retired versions release their
	// deployment memory at the last session's exit, they don't linger.
	for _, mi := range reg.Snapshot() {
		for _, vi := range mi.Versions {
			if mi.Model == key && vi.Version == 1 {
				t.Errorf("drained retired v1 still in the registry: %+v", vi)
			}
		}
	}
	v2Info := findVersion(t, reg, key, 2)
	if v2Info.State != "active" || v2Info.Judged != int64(len(refB)) {
		t.Errorf("v2 state=%s judged=%d, want active/%d", v2Info.State, v2Info.Judged, len(refB))
	}
}

// TestCanaryShadowNeverLeaks runs a full-slice canary (fraction 1.0, every
// session shadowed) and pins the two sides of the shadow contract: the
// client's judgment stream is exactly the active version's — not one byte
// of the candidate's output reaches the wire — while the registry's shadow
// tallies show the candidate judged the same traffic in full.
func TestCanaryShadowNeverLeaks(t *testing.T) {
	depA, stream := fixtures(t)
	depB := fixturesB(t)
	short := stream[:len(stream)/8]
	refA, _ := referenceRun(t, depA, kernels.BackendGPU, short)
	refB, _ := referenceRun(t, depB, kernels.BackendGPU, short)
	if len(refA) == 0 {
		t.Fatal("reference run judged nothing; lengthen the fixture")
	}

	addr, reg := lifecycleServer(t, nil, depA)
	key := depKey(fixBench, "lstm")
	v2, err := reg.Register(depB, registry.Meta{Origin: "test:canary"})
	if err != nil {
		t.Fatal(err)
	}
	if err := reg.StartCanary(key, v2.ID(), 1.0); err != nil {
		t.Fatal(err)
	}

	c, err := Dial(addr, Hello{Benchmark: fixBench, Model: "lstm", Attack: testAttack}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := c.ModelVersion(); got != 1 {
		t.Fatalf("canaried session admitted on version %d, want active version 1", got)
	}
	streamChunks(t, c, short, 4096)
	compareJudgments(t, "canaried client vs active-only reference", c.Judgments(), refA)

	// The candidate shadow-judged the whole stream: the tally matches what
	// a v2-only run produces, and the baseline pairing covers the same
	// traffic, so the anomaly-rate delta is meaningful.
	vi := findVersion(t, reg, key, v2.ID())
	if vi.State != "canary" {
		t.Errorf("candidate state = %s, want canary", vi.State)
	}
	if vi.ShadowSessions != 1 {
		t.Errorf("shadow sessions = %d, want 1", vi.ShadowSessions)
	}
	if vi.ShadowJudged != int64(len(refB)) {
		t.Errorf("shadow judged %d vectors, want %d (the v2-only reference)", vi.ShadowJudged, len(refB))
	}
	if vi.BaselineJudged != int64(len(refA)) {
		t.Errorf("baseline judged %d, want %d — delta must compare identical traffic", vi.BaselineJudged, len(refA))
	}

	// Promote after a clean canary: the next session lands on v2.
	if err := reg.Promote(key, v2.ID()); err != nil {
		t.Fatal(err)
	}
	c2, err := Dial(addr, Hello{Benchmark: fixBench, Model: "lstm"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := c2.ModelVersion(); got != v2.ID() {
		t.Fatalf("post-promotion model_version = %d, want %d", got, v2.ID())
	}
	streamChunks(t, c2, short[:len(short)/4], 8192)
}

// TestWelcomeModelVersionBackCompat pins the wire shape of the new field
// the same way session_id was pinned: it is JSON-additive (omitted when
// zero, so pre-registry servers and golden payloads are unchanged), and a
// client of an old server reads version 0, never an error.
func TestWelcomeModelVersionBackCompat(t *testing.T) {
	// A welcome from a pre-registry server: no model_version key at all.
	legacy := Client{}
	if err := json.Unmarshal([]byte(`{"proto":"rtad-wire/1","session":"s-old"}`), &legacy.welcome); err != nil {
		t.Fatal(err)
	}
	if got := legacy.ModelVersion(); got != 0 {
		t.Errorf("legacy ModelVersion = %d, want 0", got)
	}

	blob, err := json.Marshal(Welcome{Proto: Proto, Session: "s-9"})
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(blob), "model_version") {
		t.Errorf("zero model_version serialised: %s — breaks byte-stable golden payloads", blob)
	}
	var raw map[string]any
	blob, err = json.Marshal(Welcome{Proto: Proto, Session: "s-9", ModelVersion: 3})
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(blob, &raw); err != nil {
		t.Fatal(err)
	}
	if raw["model_version"] != float64(3) {
		t.Errorf("welcome JSON = %v, want model_version 3", raw)
	}
}

// TestModelsAdminEndToEnd drives the whole lifecycle through the HTTP
// admin surface exactly as ops would: save a retrained model to disk, POST
// load+canary, watch /debug/models, POST promote, POST retire the old
// version — and verify a serving client sees the new version.
func TestModelsAdminEndToEnd(t *testing.T) {
	depA, stream := fixtures(t)
	depB := fixturesB(t)
	short := stream[:len(stream)/16]

	depFile := filepath.Join(t.TempDir(), "retrained.dep")
	if err := depB.SaveFile(depFile); err != nil {
		t.Fatal(err)
	}

	opts := []Option{WithWorkers(2)}
	srv := New(nil, opts...)
	srv.Deploy(depA)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	t.Cleanup(func() {
		srv.Shutdown(10 * time.Second)
		if err := <-done; err != nil {
			t.Errorf("Serve: %v", err)
		}
	})

	mux := http.NewServeMux()
	mux.Handle("/debug/models", srv.ModelsHandler())
	mux.Handle("/debug/models/", srv.ModelsAdminHandler())
	admin := httptest.NewServer(mux)
	defer admin.Close()

	post := func(path string, params url.Values) (int, []registry.ModelInfo) {
		t.Helper()
		resp, err := http.PostForm(admin.URL+path, params)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var doc struct {
			Models []registry.ModelInfo `json:"models"`
			Error  string               `json:"error"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
			t.Fatalf("POST %s: malformed response: %v", path, err)
		}
		if doc.Error != "" && resp.StatusCode == http.StatusOK {
			t.Fatalf("POST %s: 200 with error %q", path, doc.Error)
		}
		return resp.StatusCode, doc.Models
	}

	// Load the retrained file as a full-slice canary.
	status, models := post("/debug/models/load", url.Values{
		"file": {depFile}, "canary": {"1.0"},
	})
	if status != http.StatusOK {
		t.Fatalf("load+canary: status %d", status)
	}
	if len(models) != 1 || models[0].CanaryVersion != 2 || models[0].ActiveVersion != 1 {
		t.Fatalf("after load+canary: %+v", models)
	}
	key := models[0].Model

	// Re-loading the same file is idempotent (fingerprint dedupe): still
	// two versions, no third registration.
	if status, models = post("/debug/models/load", url.Values{"file": {depFile}}); status != http.StatusOK {
		t.Fatalf("reload: status %d", status)
	}
	if n := len(models[0].Versions); n != 2 {
		t.Fatalf("reload registered a duplicate: %d versions", n)
	}

	// A session under the canary: client output is v1's, candidate shadows.
	c, err := Dial(ln.Addr().String(), Hello{Benchmark: fixBench, Model: "lstm"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	streamChunks(t, c, short, 8192)

	// GET snapshot: the candidate has shadow tallies.
	resp, err := http.Get(admin.URL + "/debug/models")
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Models []registry.ModelInfo `json:"models"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	var candidate *registry.VersionInfo
	for i := range doc.Models[0].Versions {
		if doc.Models[0].Versions[i].Version == 2 {
			candidate = &doc.Models[0].Versions[i]
		}
	}
	if candidate == nil || candidate.ShadowJudged == 0 {
		t.Fatalf("candidate did not shadow-judge the canaried session: %+v", doc.Models[0])
	}

	// Promote the candidate; the old version retires automatically and the
	// next client is served by v2.
	if status, models = post("/debug/models/promote", url.Values{
		"model": {key}, "version": {"2"},
	}); status != http.StatusOK || models[0].ActiveVersion != 2 {
		t.Fatalf("promote: status %d, models %+v", status, models)
	}
	c2, err := Dial(ln.Addr().String(), Hello{Benchmark: fixBench, Model: "lstm"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := c2.ModelVersion(); got != 2 {
		t.Fatalf("post-promote client model_version = %d, want 2", got)
	}
	streamChunks(t, c2, short, 8192)

	// Lifecycle-rule violations surface as 400s, not server faults.
	if status, _ = post("/debug/models/retire", url.Values{
		"model": {key}, "version": {"2"},
	}); status != http.StatusBadRequest {
		t.Fatalf("retiring the active version: status %d, want 400", status)
	}
	if status, _ = post("/debug/models/canary", url.Values{
		"model": {key}, "version": {"99"}, "fraction": {"0.5"},
	}); status != http.StatusBadRequest {
		t.Fatalf("canarying an unknown version: status %d, want 400", status)
	}
}
