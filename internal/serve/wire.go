// Package serve turns the in-process detection engine into a long-lived
// network service: a TCP daemon (cmd/rtadd) that accepts raw CoreSight PTM
// byte streams — the format cmd/tracegen captures and internal/tracefile
// carries — over a small length-prefixed wire protocol, multiplexes many
// concurrent client sessions onto a bounded pool of pre-loaded read-only
// core.Deployments, and streams judgments back as the inference engine
// produces them. This is the deployment shape of the paper's always-on
// monitor (§IV): the monitored SoC is elsewhere; only its trace bytes reach
// the detector.
//
// # Wire protocol (rtad-wire/1)
//
// Every frame is a little-endian uint32 length followed by that many bytes,
// of which the first is the frame type:
//
//	| len uint32 LE | type uint8 | payload [len-1]byte |
//
// len counts the type byte, so len >= 1; frames above MaxFrame are a
// protocol error. The conversation is strictly client-speaks-first:
//
//	C -> S  hello    JSON: proto, benchmark, model, backend, cus, window,
//	                 pacing, optional attack spec
//	S -> C  welcome  JSON: negotiated session parameters
//	                 (or error: busy | draining | bad request)
//	C -> S  chunk*   raw PTM trace bytes, any chunking
//	C -> S  eos      end of stream
//	S -> C  judgment* fixed 41-byte binary records, interleaved with chunks
//	S -> C  summary  JSON: counts plus the DetectionResult fields when an
//	                 attack was armed and fired
//
// Judgment frames use a fixed binary layout (not JSON) because a busy
// session emits thousands of them; everything negotiated once per session
// is JSON for debuggability.
package serve

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
)

// Proto is the protocol identifier exchanged in hello/welcome.
const Proto = "rtad-wire/1"

// MaxFrame bounds a frame's length field (type byte + payload). Trace
// chunks larger than this must be split; the cap keeps a malicious or
// corrupt length prefix from driving a large allocation.
const MaxFrame = 1 << 20

// FrameType tags a frame's payload.
type FrameType uint8

// Frame types. The zero value is invalid so an all-zeroes frame is caught.
const (
	FrameHello    FrameType = 1 // C->S: session negotiation (JSON Hello)
	FrameWelcome  FrameType = 2 // S->C: negotiation result (JSON Welcome)
	FrameChunk    FrameType = 3 // C->S: raw PTM trace bytes
	FrameEOS      FrameType = 4 // C->S: end of trace stream
	FrameJudgment FrameType = 5 // S->C: one judgment (binary, JudgmentSize)
	FrameSummary  FrameType = 6 // S->C: end-of-stream summary (JSON Summary)
	FrameError    FrameType = 7 // S->C: terminal error (JSON ErrorMsg)
)

var frameNames = map[FrameType]string{
	FrameHello: "hello", FrameWelcome: "welcome", FrameChunk: "chunk",
	FrameEOS: "eos", FrameJudgment: "judgment", FrameSummary: "summary",
	FrameError: "error",
}

// String names the frame type.
func (t FrameType) String() string {
	if n, ok := frameNames[t]; ok {
		return n
	}
	return fmt.Sprintf("frame(%d)", uint8(t))
}

// WriteFrame emits one frame.
func WriteFrame(w io.Writer, t FrameType, payload []byte) error {
	if len(payload)+1 > MaxFrame {
		return fmt.Errorf("serve: frame payload %d bytes exceeds MaxFrame", len(payload))
	}
	var hdr [5]byte
	binary.LittleEndian.PutUint32(hdr[:4], uint32(len(payload)+1))
	hdr[4] = byte(t)
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	if len(payload) == 0 {
		return nil
	}
	_, err := w.Write(payload)
	return err
}

// ReadFrame reads one frame, reusing buf for the payload when it is large
// enough. The returned payload aliases the (possibly grown) buffer, which
// is also returned for reuse; it is valid until the next ReadFrame with the
// same buffer.
func ReadFrame(r io.Reader, buf []byte) (t FrameType, payload, newBuf []byte, err error) {
	var hdr [5]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, buf, err
	}
	n := binary.LittleEndian.Uint32(hdr[:4])
	if n == 0 {
		return 0, nil, buf, fmt.Errorf("serve: zero-length frame")
	}
	if n > MaxFrame {
		return 0, nil, buf, fmt.Errorf("serve: frame length %d exceeds MaxFrame %d", n, MaxFrame)
	}
	t = FrameType(hdr[4])
	if _, ok := frameNames[t]; !ok {
		return 0, nil, buf, fmt.Errorf("serve: unknown frame type %d", hdr[4])
	}
	body := int(n) - 1
	if cap(buf) < body {
		buf = make([]byte, body)
	}
	buf = buf[:cap(buf)]
	if body > 0 {
		if _, err := io.ReadFull(r, buf[:body]); err != nil {
			return 0, nil, buf, fmt.Errorf("serve: truncated %v frame: %w", t, err)
		}
	}
	return t, buf[:body], buf, nil
}

// AttackSpec is the wire form of core.AttackSpec: arming it in hello makes
// the server splice the deployment's legitimate-event pool into the
// replayed stream, so a remote session measures detection latency exactly
// like the in-process experiments.
type AttackSpec struct {
	// TriggerBranch fires the burst after this many taken transfers
	// (0 = on the very next one, the strict Session.Inject semantics).
	TriggerBranch int64 `json:"trigger_branch"`
	// BurstLen is the injected legitimate-event count; must be positive.
	BurstLen int   `json:"burst_len"`
	Mimicry  bool  `json:"mimicry,omitempty"`
	Seed     int64 `json:"seed,omitempty"`
}

// Hello is the client's opening negotiation.
type Hello struct {
	Proto     string `json:"proto"`
	Benchmark string `json:"benchmark"`
	Model     string `json:"model"`             // "elm" | "lstm"
	Backend   string `json:"backend,omitempty"` // "" = server default (gpu)
	CUs       int    `json:"cus,omitempty"`     // 0 = 5 (ML-MIAOW)
	// Window, when non-zero, asserts the input-vector length the client
	// expects; the server rejects a mismatch rather than silently judging
	// different features.
	Window int `json:"window,omitempty"`
	// GapCycles is the replay pacing (synthesized CPU cycles per branch
	// event); 0 accepts the server's default.
	GapCycles int64 `json:"gap_cycles,omitempty"`
	// Stride, when non-zero, overrides the deployment's IGM emission
	// stride (vectors per accepted branch window). Smaller strides judge
	// more densely; the stride changes which vectors exist, so all
	// sessions being compared must use the same value.
	Stride int         `json:"stride,omitempty"`
	Attack *AttackSpec `json:"attack,omitempty"`
}

// Welcome is the server's negotiation result.
type Welcome struct {
	Proto   string `json:"proto"`
	Session string `json:"session"`
	// SessionID duplicates Session under the key the observability plane
	// uses everywhere else — log lines, wall-trace span args, flight
	// recorder, /debug/sessions. A pure JSON addition: old clients ignore
	// it, old servers omit it, no wire version bump. New code should read
	// SessionID (via Client.SessionID, which falls back to Session).
	SessionID string `json:"session_id,omitempty"`
	Benchmark string `json:"benchmark"`
	Model     string `json:"model"`
	Backend   string `json:"backend"`
	Window    int    `json:"window"`
	GapCycles int64  `json:"gap_cycles"`
	Stride    int    `json:"stride,omitempty"`
	// ModelVersion is the registry version id of the deployment this
	// session was admitted on. The session judges on exactly this version
	// for its whole life, hot-swaps notwithstanding — the field is how a
	// client proves which weights judged its stream. Another pure JSON
	// addition (like SessionID): old clients ignore it, pre-registry
	// servers omit it, no wire version bump. Read it via
	// Client.ModelVersion, which reports 0 for old servers.
	ModelVersion int64 `json:"model_version,omitempty"`
}

// Error codes carried by FrameError.
const (
	ErrBusy     = "busy"     // admission control: MaxSessions live sessions
	ErrDraining = "draining" // graceful shutdown in progress
	ErrBadHello = "bad-hello"
	ErrProto    = "proto"
	ErrInternal = "internal"
)

// ErrorMsg is the payload of FrameError.
type ErrorMsg struct {
	Code string `json:"code"`
	Msg  string `json:"msg"`
}

// Error implements error so clients can surface the frame directly.
func (e *ErrorMsg) Error() string { return fmt.Sprintf("serve: %s: %s", e.Code, e.Msg) }

// Judgment is one judged vector on the wire — the fields of core.Judged
// that survive transport. All times are picoseconds of simulated time.
type Judgment struct {
	Seq         int64 // IGM vector sequence number
	Done        int64 // judgment available at the MCM RX engine
	FinalRetire int64 // retirement of the branch that completed the vector
	IRQAt       int64 // anomaly interrupt time (0 = no anomaly)
	MarginQ     int32 // this vector's margin score (Q16.16)
	EwmaQ       int32 // smoothed score the threshold compares against
	Anomaly     bool
}

// JudgmentSize is the fixed encoding length of a Judgment payload.
const JudgmentSize = 8 + 8 + 8 + 8 + 4 + 4 + 1

// AppendJudgment encodes j onto dst in the fixed little-endian layout.
// appendJudgmentFrame appends one complete judgment frame — header plus
// payload — so a burst of judgments can go out in a single write.
func appendJudgmentFrame(dst []byte, j Judgment) []byte {
	var hdr [5]byte
	binary.LittleEndian.PutUint32(hdr[:4], uint32(JudgmentSize+1))
	hdr[4] = byte(FrameJudgment)
	return AppendJudgment(append(dst, hdr[:]...), j)
}

func AppendJudgment(dst []byte, j Judgment) []byte {
	var b [JudgmentSize]byte
	binary.LittleEndian.PutUint64(b[0:], uint64(j.Seq))
	binary.LittleEndian.PutUint64(b[8:], uint64(j.Done))
	binary.LittleEndian.PutUint64(b[16:], uint64(j.FinalRetire))
	binary.LittleEndian.PutUint64(b[24:], uint64(j.IRQAt))
	binary.LittleEndian.PutUint32(b[32:], uint32(j.MarginQ))
	binary.LittleEndian.PutUint32(b[36:], uint32(j.EwmaQ))
	if j.Anomaly {
		b[40] = 1
	}
	return append(dst, b[:]...)
}

// DecodeJudgment parses a FrameJudgment payload.
func DecodeJudgment(p []byte) (Judgment, error) {
	if len(p) != JudgmentSize {
		return Judgment{}, fmt.Errorf("serve: judgment payload %d bytes, want %d", len(p), JudgmentSize)
	}
	j := Judgment{
		Seq:         int64(binary.LittleEndian.Uint64(p[0:])),
		Done:        int64(binary.LittleEndian.Uint64(p[8:])),
		FinalRetire: int64(binary.LittleEndian.Uint64(p[16:])),
		IRQAt:       int64(binary.LittleEndian.Uint64(p[24:])),
		MarginQ:     int32(binary.LittleEndian.Uint32(p[32:])),
		EwmaQ:       int32(binary.LittleEndian.Uint32(p[36:])),
	}
	switch p[40] {
	case 0:
	case 1:
		j.Anomaly = true
	default:
		return Judgment{}, fmt.Errorf("serve: judgment anomaly flag %d", p[40])
	}
	return j, nil
}

// Latency is the Fig 8 quantity for a wire judgment, in picoseconds.
func (j Judgment) Latency() int64 { return j.Done - j.FinalRetire }

// Detection carries the DetectionResult fields of a session whose armed
// attack fired. All times are picoseconds of simulated time.
type Detection struct {
	Detected      bool  `json:"detected"`
	InjectTimePS  int64 `json:"inject_time_ps"`
	LatencyPS     int64 `json:"latency_ps"`
	MeanLatencyPS int64 `json:"mean_latency_ps"`
	IRQTimePS     int64 `json:"irq_time_ps"`
	FirstSeq      int64 `json:"first_seq"`
}

// Summary closes a session: pipeline counts always, detection figures when
// an attack was armed and fired.
type Summary struct {
	Judged       int   `json:"judged"`
	Dropped      int64 `json:"dropped"`
	MaxOccupancy int   `json:"max_occupancy"`
	TraceBytes   int64 `json:"trace_bytes"`
	Events       int64 `json:"events"`
	DecodeErrors int   `json:"decode_errors,omitempty"`
	// ShedChunks counts trace chunks dropped by the server's shed
	// backpressure policy (always 0 under the default block policy).
	ShedChunks  int64      `json:"shed_chunks,omitempty"`
	AttackFired bool       `json:"attack_fired,omitempty"`
	Detection   *Detection `json:"detection,omitempty"`
}

// writeJSON marshals v and writes it as one frame of type t.
func writeJSON(w io.Writer, t FrameType, v any) error {
	blob, err := json.Marshal(v)
	if err != nil {
		return err
	}
	return WriteFrame(w, t, blob)
}

// unmarshalFrame parses a JSON frame payload.
func unmarshalFrame(payload []byte, v any) error {
	if err := json.Unmarshal(payload, v); err != nil {
		return fmt.Errorf("serve: malformed %T payload: %w", v, err)
	}
	return nil
}

// decodeErrorFrame turns a FrameError payload into an *ErrorMsg error.
func decodeErrorFrame(payload []byte) error {
	var e ErrorMsg
	if err := json.Unmarshal(payload, &e); err != nil {
		return fmt.Errorf("serve: malformed error frame: %w", err)
	}
	return &e
}
