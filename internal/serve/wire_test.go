package serve

import (
	"bytes"
	"encoding/json"
	"errors"
	"io"
	"strings"
	"testing"
)

// TestFrameGolden pins the exact bytes of the rtad-wire framing: a length
// prefix that counts the type byte, little-endian, then type, then payload.
// A change here is a protocol break, not a refactor.
func TestFrameGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, FrameChunk, []byte{0xAA, 0xBB, 0xCC}); err != nil {
		t.Fatal(err)
	}
	want := []byte{
		0x04, 0x00, 0x00, 0x00, // len = 4 (type + 3 payload), LE
		0x03,             // FrameChunk
		0xAA, 0xBB, 0xCC, // payload
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("chunk frame bytes:\n got % x\nwant % x", buf.Bytes(), want)
	}

	buf.Reset()
	if err := WriteFrame(&buf, FrameEOS, nil); err != nil {
		t.Fatal(err)
	}
	want = []byte{0x01, 0x00, 0x00, 0x00, 0x04}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("eos frame bytes:\n got % x\nwant % x", buf.Bytes(), want)
	}
}

// TestJudgmentGolden pins the 41-byte judgment layout.
func TestJudgmentGolden(t *testing.T) {
	j := Judgment{
		Seq:         0x0102030405060708,
		Done:        0x1112131415161718,
		FinalRetire: 0x2122232425262728,
		IRQAt:       0x3132333435363738,
		MarginQ:     -2,
		EwmaQ:       0x41424344,
		Anomaly:     true,
	}
	b := AppendJudgment(nil, j)
	want := []byte{
		0x08, 0x07, 0x06, 0x05, 0x04, 0x03, 0x02, 0x01,
		0x18, 0x17, 0x16, 0x15, 0x14, 0x13, 0x12, 0x11,
		0x28, 0x27, 0x26, 0x25, 0x24, 0x23, 0x22, 0x21,
		0x38, 0x37, 0x36, 0x35, 0x34, 0x33, 0x32, 0x31,
		0xFE, 0xFF, 0xFF, 0xFF, // MarginQ = -2
		0x44, 0x43, 0x42, 0x41,
		0x01,
	}
	if !bytes.Equal(b, want) {
		t.Fatalf("judgment bytes:\n got % x\nwant % x", b, want)
	}
	if len(b) != JudgmentSize {
		t.Fatalf("judgment size %d, want %d", len(b), JudgmentSize)
	}
	back, err := DecodeJudgment(b)
	if err != nil {
		t.Fatal(err)
	}
	if back != j {
		t.Fatalf("round trip: got %+v want %+v", back, j)
	}
}

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	payloads := map[FrameType][]byte{
		FrameHello:   []byte(`{"proto":"rtad-wire/1"}`),
		FrameChunk:   bytes.Repeat([]byte{0x55}, 70_000), // forces buffer growth
		FrameEOS:     nil,
		FrameSummary: []byte(`{"judged":3}`),
	}
	for typ, p := range payloads {
		buf.Reset()
		if err := WriteFrame(&buf, typ, p); err != nil {
			t.Fatal(err)
		}
		gt, gp, _, err := ReadFrame(&buf, nil)
		if err != nil {
			t.Fatalf("%v: %v", typ, err)
		}
		if gt != typ || !bytes.Equal(gp, p) {
			t.Fatalf("%v: round trip mismatch (%d bytes in, %d out)", typ, len(p), len(gp))
		}
	}
}

func TestReadFrameRejectsGarbage(t *testing.T) {
	cases := map[string][]byte{
		"zero length":  {0x00, 0x00, 0x00, 0x00, 0x01},
		"over max":     {0xFF, 0xFF, 0xFF, 0xFF, 0x01},
		"unknown type": {0x01, 0x00, 0x00, 0x00, 0x99},
		"truncated":    {0x0A, 0x00, 0x00, 0x00, 0x03, 0x01},
	}
	for name, in := range cases {
		if _, _, _, err := ReadFrame(bytes.NewReader(in), nil); err == nil {
			t.Errorf("%s: ReadFrame accepted % x", name, in)
		}
	}
	// A short header is io.EOF / ErrUnexpectedEOF territory, not a panic.
	if _, _, _, err := ReadFrame(strings.NewReader("\x01"), nil); err == nil {
		t.Error("short header accepted")
	}
}

func TestWriteFrameRejectsOversize(t *testing.T) {
	if err := WriteFrame(io.Discard, FrameChunk, make([]byte, MaxFrame)); err == nil {
		t.Fatal("oversize payload accepted")
	}
}

func TestReadFrameReusesBuffer(t *testing.T) {
	var stream bytes.Buffer
	for i := 0; i < 3; i++ {
		if err := WriteFrame(&stream, FrameChunk, []byte{byte(i), byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	buf := make([]byte, 0, 64)
	orig := &buf[:1][0]
	for i := 0; i < 3; i++ {
		_, p, nbuf, err := ReadFrame(&stream, buf)
		if err != nil {
			t.Fatal(err)
		}
		if p[0] != byte(i) {
			t.Fatalf("frame %d payload %x", i, p)
		}
		buf = nbuf
	}
	if &buf[:1][0] != orig {
		t.Fatal("small frames reallocated the read buffer")
	}
}

func TestErrorMsgIsError(t *testing.T) {
	blob, _ := json.Marshal(&ErrorMsg{Code: ErrBusy, Msg: "all 4 sessions in use"})
	err := decodeErrorFrame(blob)
	var em *ErrorMsg
	if !errors.As(err, &em) || em.Code != ErrBusy {
		t.Fatalf("decoded error frame = %#v", err)
	}
	if !strings.Contains(err.Error(), "busy") {
		t.Fatalf("error text %q", err.Error())
	}
}
