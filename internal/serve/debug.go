package serve

import (
	"encoding/json"
	"net/http"
	"sort"
	"sync/atomic"
	"time"
)

// Live session introspection: the server keeps one sessionState per
// admitted session, updated lock-free from the reader and runner
// goroutines, and /debug/sessions renders a JSON snapshot of all of them
// — the "what is this daemon doing right now" endpoint.

// sessionState is the mutable, concurrently updated record behind one
// /debug/sessions row. Identity fields are written once at admission;
// progress fields are atomics bumped from the hot(ish) serving path.
type sessionState struct {
	id        string
	benchmark string
	model     string
	backend   string
	remote    string
	started   time.Time
	// version is the registry version the session was admitted on;
	// shadowVersion is the canary candidate shadow-judging this session's
	// traffic (0 when the admission fell outside the canary slice).
	version       int64
	shadowVersion int64

	chunks       atomic.Int64
	traceBytes   atomic.Int64
	judged       atomic.Int64
	shadowJudged atomic.Int64
	lastActive   atomic.Int64 // unix nanoseconds of the last chunk/judgment
}

func (st *sessionState) touch() {
	st.lastActive.Store(time.Now().UnixNano())
}

// SessionInfo is one live session's introspection snapshot.
type SessionInfo struct {
	ID            string    `json:"id"`
	Benchmark     string    `json:"benchmark"`
	Model         string    `json:"model"`
	Backend       string    `json:"backend"`
	Remote        string    `json:"remote"`
	StartedAt     time.Time `json:"started_at"`
	ModelVersion  int64     `json:"model_version"`
	ShadowVersion int64     `json:"shadow_version,omitempty"`
	Chunks        int64     `json:"chunks"`
	TraceBytes    int64     `json:"trace_bytes"`
	Judged        int64     `json:"judged"`
	ShadowJudged  int64     `json:"shadow_judged,omitempty"`
	LastActivity  time.Time `json:"last_activity"`
}

// Sessions snapshots every live session, sorted by ID for stable output.
func (s *Server) Sessions() []SessionInfo {
	s.mu.Lock()
	states := make([]*sessionState, 0, len(s.states))
	for _, st := range s.states {
		states = append(states, st)
	}
	s.mu.Unlock()
	out := make([]SessionInfo, 0, len(states))
	for _, st := range states {
		out = append(out, SessionInfo{
			ID:            st.id,
			Benchmark:     st.benchmark,
			Model:         st.model,
			Backend:       st.backend,
			Remote:        st.remote,
			StartedAt:     st.started,
			ModelVersion:  st.version,
			ShadowVersion: st.shadowVersion,
			Chunks:        st.chunks.Load(),
			TraceBytes:    st.traceBytes.Load(),
			Judged:        st.judged.Load(),
			ShadowJudged:  st.shadowJudged.Load(),
			LastActivity:  time.Unix(0, st.lastActive.Load()),
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// SessionsHandler serves the live-session snapshot as JSON — mount it at
// /debug/sessions on the obs exposition server.
func (s *Server) SessionsHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		doc := struct {
			Sessions []SessionInfo `json:"sessions"`
		}{Sessions: s.Sessions()}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(&doc)
	})
}

// FlightHandler serves the server's flight recorder (every retained
// session ring) as JSON — mount it at /debug/flightrecorder. Serves an
// empty document when no recorder is configured.
func (s *Server) FlightHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = s.cfg.Flight.WriteJSON(w)
	})
}
