package serve

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"rtad/internal/core"
	"rtad/internal/cpu"
	"rtad/internal/kernels"
	"rtad/internal/obs"
	"rtad/internal/ptm"
	"rtad/internal/workload"
)

// Shared fixtures: training dominates test time, so the deployment and the
// captured victim trace are built once and shared read-only by every test —
// the same immutability contract the server itself relies on.
var (
	fixOnce   sync.Once
	fixErr    error
	fixDep    *core.Deployment
	fixStream []byte
)

const (
	fixBench = "458.sjeng"
	fixInstr = 2_000_000
)

func fixtures(t *testing.T) (*core.Deployment, []byte) {
	t.Helper()
	fixOnce.Do(func() {
		p, ok := workload.ByName(fixBench)
		if !ok {
			fixErr = fmt.Errorf("unknown benchmark %s", fixBench)
			return
		}
		cfg := core.DefaultTrainConfig(p, core.ModelLSTM)
		cfg.TrainInstr = 1_200_000
		fixDep, fixErr = core.Train(cfg)
		if fixErr != nil {
			return
		}
		fixStream, fixErr = captureTrace(p, fixInstr)
	})
	if fixErr != nil {
		t.Fatal(fixErr)
	}
	return fixDep, fixStream
}

// captureTrace records a victim run as the raw branch-broadcast PTM stream
// a CoreSight probe would emit (what cmd/tracegen captures).
func captureTrace(p workload.Profile, instr int64) ([]byte, error) {
	prog, err := p.Generate()
	if err != nil {
		return nil, err
	}
	enc := ptm.NewEncoder(ptm.Config{BranchBroadcast: true})
	var stream []byte
	c := cpu.New(prog, cpu.Config{Mode: cpu.ModeRTAD, Sink: cpu.SinkFunc(func(ev cpu.BranchEvent) int64 {
		stream = append(stream, enc.Encode(ev)...)
		return 0
	})})
	if _, err := c.Run(instr); err != nil {
		return nil, err
	}
	return append(stream, enc.Flush()...), nil
}

// startServer runs a server over dep on a loopback listener and returns its
// address; the server is shut down with the test.
func startServer(t *testing.T, opts []Option, deps ...*core.Deployment) string {
	t.Helper()
	srv := New(nil, opts...)
	for _, d := range deps {
		srv.Deploy(d)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	t.Cleanup(func() {
		srv.Shutdown(10 * time.Second)
		if err := <-done; err != nil {
			t.Errorf("Serve: %v", err)
		}
	})
	return ln.Addr().String()
}

var testAttack = &AttackSpec{TriggerBranch: 1000, BurstLen: 16384, Seed: 7}

// referenceRun replays stream through an in-process trace-input session —
// the ground truth the wire path must reproduce bit-identically.
func referenceRun(t *testing.T, dep *core.Deployment, backend string, stream []byte) ([]Judgment, *core.DetectionResult) {
	t.Helper()
	s, err := core.Open(core.Deployments{dep},
		core.WithConfig(core.PipelineConfig{Backend: backend}),
		core.WithTraceInput(0),
		core.WithAttack(core.AttackSpec{
			TriggerBranch: testAttack.TriggerBranch,
			BurstLen:      testAttack.BurstLen,
			Seed:          testAttack.Seed,
		}))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.FeedTrace(stream); err != nil {
		t.Fatal(err)
	}
	if err := s.Drain(); err != nil {
		t.Fatal(err)
	}
	var out []Judgment
	for _, j := range s.Results() {
		out = append(out, Judgment{
			Seq:         j.Vector.Seq,
			Done:        int64(j.Rec.Done),
			FinalRetire: int64(j.FinalRetire),
			IRQAt:       int64(j.Rec.IRQAt),
			MarginQ:     j.Rec.Judgment.MarginQ,
			EwmaQ:       j.Rec.Judgment.EwmaQ,
			Anomaly:     j.Rec.Judgment.Anomaly,
		})
	}
	res, err := s.Summary()
	if err != nil {
		t.Fatal(err)
	}
	return out, res
}

// streamChunks sends the trace in fixed-size chunks and finishes.
func streamChunks(t *testing.T, c *Client, stream []byte, chunk int) *Summary {
	t.Helper()
	for off := 0; off < len(stream); off += chunk {
		end := off + chunk
		if end > len(stream) {
			end = len(stream)
		}
		if err := c.Send(stream[off:end]); err != nil {
			t.Fatal(err)
		}
	}
	sum, err := c.Finish()
	if err != nil {
		t.Fatal(err)
	}
	return sum
}

// TestE2EBitIdenticalAcrossBackends is the acceptance test: a trace
// streamed through rtadd yields the exact judgment sequence and detection
// summary of the in-process Session path, for every inference backend.
func TestE2EBitIdenticalAcrossBackends(t *testing.T) {
	dep, stream := fixtures(t)
	addr := startServer(t, nil, dep)
	for _, backend := range []string{
		kernels.BackendGPU, kernels.BackendNative, kernels.BackendNativeCalibrated,
	} {
		t.Run(backend, func(t *testing.T) {
			wantJ, wantRes := referenceRun(t, dep, backend, stream)
			c, err := Dial(addr, Hello{
				Benchmark: fixBench, Model: "lstm", Backend: backend, Attack: testAttack,
			}, nil)
			if err != nil {
				t.Fatal(err)
			}
			sum := streamChunks(t, c, stream, 4096)
			gotJ := c.Judgments()

			if len(gotJ) != len(wantJ) {
				t.Fatalf("wire session judged %d vectors, in-process %d", len(gotJ), len(wantJ))
			}
			for i := range gotJ {
				if gotJ[i] != wantJ[i] {
					t.Fatalf("judgment %d diverged:\n wire %+v\n ref  %+v", i, gotJ[i], wantJ[i])
				}
			}
			if !sum.AttackFired || sum.Detection == nil {
				t.Fatalf("summary reports no attack: %+v", sum)
			}
			d := sum.Detection
			if d.Detected != wantRes.Detected ||
				d.InjectTimePS != int64(wantRes.InjectTime) ||
				d.LatencyPS != int64(wantRes.Latency) ||
				d.MeanLatencyPS != int64(wantRes.MeanLatency) ||
				d.IRQTimePS != int64(wantRes.IRQTime) ||
				d.FirstSeq != wantRes.First.Vector.Seq {
				t.Fatalf("detection summary diverged:\n wire %+v\n ref  %+v", d, wantRes)
			}
			if sum.Judged != wantRes.Judged || sum.Dropped != wantRes.Dropped {
				t.Fatalf("pipeline counts diverged: wire %d/%d, ref %d/%d",
					sum.Judged, sum.Dropped, wantRes.Judged, wantRes.Dropped)
			}
			if sum.TraceBytes != int64(len(stream)) {
				t.Fatalf("summary counted %d trace bytes, sent %d", sum.TraceBytes, len(stream))
			}
		})
	}
}

// TestChunkingInvariance: byte-at-a-time wire delivery matches one big
// chunk — the replay clock depends only on the decoded event sequence.
func TestChunkingInvariance(t *testing.T) {
	dep, stream := fixtures(t)
	short := stream[:len(stream)/8]
	addr := startServer(t, nil, dep)

	run := func(chunk int) []Judgment {
		c, err := Dial(addr, Hello{Benchmark: fixBench, Model: "lstm"}, nil)
		if err != nil {
			t.Fatal(err)
		}
		streamChunks(t, c, short, chunk)
		return c.Judgments()
	}
	big := run(len(short))
	tiny := run(37)
	if len(big) == 0 {
		t.Fatal("no judgments from the short stream; lengthen the fixture")
	}
	if len(big) != len(tiny) {
		t.Fatalf("chunking changed judgment count: %d vs %d", len(big), len(tiny))
	}
	for i := range big {
		if big[i] != tiny[i] {
			t.Fatalf("judgment %d depends on chunking:\n %+v\n %+v", i, big[i], tiny[i])
		}
	}
}

// TestConcurrentClients streams from 8 clients at once (run under -race in
// CI) and requires every session to match the single-client reference.
func TestConcurrentClients(t *testing.T) {
	dep, stream := fixtures(t)
	short := stream[:len(stream)/4]
	addr := startServer(t, []Option{WithWorkers(4)}, dep)

	ref, err := Dial(addr, Hello{Benchmark: fixBench, Model: "lstm"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	streamChunks(t, ref, short, 8192)
	want := ref.Judgments()
	if len(want) == 0 {
		t.Fatal("reference session judged nothing")
	}

	const clients = 8
	var wg sync.WaitGroup
	errs := make([]error, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c, err := Dial(addr, Hello{Benchmark: fixBench, Model: "lstm"}, nil)
			if err != nil {
				errs[i] = err
				return
			}
			chunk := 1024 * (i + 1) // different chunking per client
			for off := 0; off < len(short); off += chunk {
				end := off + chunk
				if end > len(short) {
					end = len(short)
				}
				if err := c.Send(short[off:end]); err != nil {
					errs[i] = err
					return
				}
			}
			if _, err := c.Finish(); err != nil {
				errs[i] = err
				return
			}
			got := c.Judgments()
			if len(got) != len(want) {
				errs[i] = fmt.Errorf("client %d judged %d, want %d", i, len(got), len(want))
				return
			}
			for k := range got {
				if got[k] != want[k] {
					errs[i] = fmt.Errorf("client %d judgment %d diverged", i, k)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Error(err)
		}
	}
}

// TestBusyRejection: with MaxSessions=1 the second hello gets an explicit
// busy error frame, and admission reopens once the first session ends.
func TestBusyRejection(t *testing.T) {
	dep, stream := fixtures(t)
	tel := obs.NewMetricsOnly()
	addr := startServer(t, []Option{WithMaxSessions(1), WithTelemetry(tel)}, dep)

	c1, err := Dial(addr, Hello{Benchmark: fixBench, Model: "lstm"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := c1.Send(stream[:4096]); err != nil {
		t.Fatal(err)
	}

	_, err = Dial(addr, Hello{Benchmark: fixBench, Model: "lstm"}, nil)
	var em *ErrorMsg
	if !errors.As(err, &em) || em.Code != ErrBusy {
		t.Fatalf("second dial: got %v, want busy rejection", err)
	}
	if got := tel.Reg.Counter("rtad_serve_rejected_busy_total").Value(); got != 1 {
		t.Fatalf("busy rejections counter = %d, want 1", got)
	}

	if _, err := c1.Finish(); err != nil {
		t.Fatal(err)
	}
	// The slot frees once the session fully ends; poll briefly.
	deadline := time.Now().Add(5 * time.Second)
	for {
		c3, err := Dial(addr, Hello{Benchmark: fixBench, Model: "lstm"}, nil)
		if err == nil {
			if _, err := c3.Finish(); err != nil {
				t.Fatal(err)
			}
			break
		}
		if !errors.As(err, &em) || em.Code != ErrBusy || time.Now().After(deadline) {
			t.Fatalf("post-finish dial: %v", err)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if got := tel.Reg.Gauge("rtad_serve_sessions_live").Value(); got != 0 {
		t.Fatalf("live sessions gauge = %d after all sessions ended", got)
	}
}

// TestGracefulShutdown: in-flight sessions drain to a full summary while
// hellos arriving mid-drain get an explicit draining rejection.
func TestGracefulShutdown(t *testing.T) {
	dep, stream := fixtures(t)
	short := stream[:len(stream)/8]

	srv := New(nil)
	srv.Deploy(dep)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve(ln) }()
	addr := ln.Addr().String()

	c, err := Dial(addr, Hello{Benchmark: fixBench, Model: "lstm"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Send(short[:len(short)/2]); err != nil {
		t.Fatal(err)
	}

	shutdownDone := make(chan struct{})
	go func() { srv.Shutdown(30 * time.Second); close(shutdownDone) }()

	// A hello racing the drain must get the explicit draining error, not a
	// refused connection: the listener stays open until the drain ends.
	var sawDraining bool
	for i := 0; i < 100; i++ {
		_, err := Dial(addr, Hello{Benchmark: fixBench, Model: "lstm"}, nil)
		var em *ErrorMsg
		if errors.As(err, &em) && em.Code == ErrDraining {
			sawDraining = true
			break
		}
		select {
		case <-shutdownDone:
			t.Fatal("shutdown completed while a session was still streaming")
		default:
		}
		time.Sleep(5 * time.Millisecond)
	}
	if !sawDraining {
		t.Fatal("never saw a draining rejection during shutdown")
	}

	// The in-flight session finishes normally, summary included.
	if err := c.Send(short[len(short)/2:]); err != nil {
		t.Fatal(err)
	}
	sum, err := c.Finish()
	if err != nil {
		t.Fatalf("in-flight session did not drain cleanly: %v", err)
	}
	if sum.Events == 0 || len(c.Judgments()) == 0 {
		t.Fatalf("drained session summary is empty: %+v", sum)
	}

	<-shutdownDone
	if err := <-serveDone; err != nil {
		t.Fatalf("Serve returned %v after graceful shutdown", err)
	}
}

// TestHelloRejections covers the negotiation error paths.
func TestHelloRejections(t *testing.T) {
	dep, _ := fixtures(t)
	addr := startServer(t, nil, dep)
	cases := []struct {
		name  string
		hello Hello
		code  string
	}{
		{"unknown model", Hello{Benchmark: fixBench, Model: "elm"}, ErrBadHello},
		{"unknown benchmark", Hello{Benchmark: "no-such", Model: "lstm"}, ErrBadHello},
		{"bad proto", Hello{Proto: "rtad-wire/99", Benchmark: fixBench, Model: "lstm"}, ErrProto},
		{"window mismatch", Hello{Benchmark: fixBench, Model: "lstm", Window: 3}, ErrBadHello},
		{"bad backend", Hello{Benchmark: fixBench, Model: "lstm", Backend: "tpu"}, ErrBadHello},
		{"bad attack", Hello{Benchmark: fixBench, Model: "lstm", Attack: &AttackSpec{}}, ErrBadHello},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Dial(addr, tc.hello, nil)
			var em *ErrorMsg
			if !errors.As(err, &em) || em.Code != tc.code {
				t.Fatalf("got %v, want %s rejection", err, tc.code)
			}
		})
	}
}

// TestServeMetrics checks the serving gauges and counters end to end.
func TestServeMetrics(t *testing.T) {
	dep, stream := fixtures(t)
	short := stream[:len(stream)/8]
	tel := obs.NewMetricsOnly()
	addr := startServer(t, []Option{WithTelemetry(tel)}, dep)

	c, err := Dial(addr, Hello{Benchmark: fixBench, Model: "lstm"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	streamChunks(t, c, short, 2048)

	if got := tel.Reg.Counter("rtad_serve_sessions_total").Value(); got != 1 {
		t.Errorf("sessions_total = %d", got)
	}
	if got := tel.Reg.Counter("rtad_serve_bytes_in_total").Value(); got != int64(len(short)) {
		t.Errorf("bytes_in_total = %d, want %d", got, len(short))
	}
	if got := tel.Reg.Counter("rtad_serve_judgments_total").Value(); got != int64(len(c.Judgments())) {
		t.Errorf("judgments_total = %d, want %d", got, len(c.Judgments()))
	}
}
