package serve

import (
	"bytes"
	"encoding/json"
	"io"
	"log/slog"
	"net"
	"net/http"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"rtad/internal/kernels"
	"rtad/internal/obs"
)

// TestObservabilityIsObservationOnly pins the core contract of this layer:
// turning on every observer at once — metrics, structured logs, wall
// tracing, flight recording — must not change a single judgment byte, in
// either the unbatched or the micro-batched configuration. Observation
// never mutates simulation state.
func TestObservabilityIsObservationOnly(t *testing.T) {
	dep, stream := fixtures(t)
	short := stream[:len(stream)/8]

	type obsState struct {
		log    *bytes.Buffer
		wall   *obs.WallTracer
		flight *obs.FlightRecorder
	}
	run := func(opts []Option, st *obsState) []Judgment {
		srv := New(nil, opts...)
		srv.Deploy(dep)
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		done := make(chan error, 1)
		go func() { done <- srv.Serve(ln) }()
		c, err := Dial(ln.Addr().String(), Hello{
			Benchmark: fixBench, Model: "lstm", Backend: kernels.BackendNative, Attack: testAttack,
		}, nil)
		if err != nil {
			t.Fatal(err)
		}
		streamChunks(t, c, short, 4096)
		js := c.Judgments()
		srv.Shutdown(10 * time.Second)
		if err := <-done; err != nil {
			t.Fatalf("Serve: %v", err)
		}
		if st != nil {
			// Guard against a vacuous pass: every observer must actually
			// have observed the session.
			if st.log.Len() == 0 {
				t.Error("full observability on, but no log lines")
			}
			if st.wall.Events() == 0 {
				t.Error("full observability on, but no wall-trace events")
			}
			if len(st.flight.Sessions()) == 0 {
				t.Error("full observability on, but no flight-recorder rings")
			}
		}
		return js
	}
	observed := func(base []Option) ([]Option, *obsState) {
		st := &obsState{
			log:    &bytes.Buffer{},
			wall:   obs.NewWallTracer(),
			flight: obs.NewFlightRecorder(8, 4), // tight bounds: wrap + evict on purpose
		}
		logger, err := obs.NewLogger(st.log, "text", slog.LevelDebug)
		if err != nil {
			t.Fatal(err)
		}
		opts := append(append([]Option(nil), base...),
			WithTelemetry(obs.NewMetricsOnly()),
			WithLogger(logger),
			WithWallTracer(st.wall),
			WithFlight(st.flight),
		)
		return opts, st
	}

	for _, mode := range []struct {
		name string
		opts []Option
	}{
		{"unbatched", nil},
		{"batched", []Option{WithBatching(100*time.Microsecond, 8)}},
	} {
		plain := run(mode.opts, nil)
		if len(plain) == 0 {
			t.Fatalf("%s: no judgments; lengthen the fixture", mode.name)
		}
		obsOpts, st := observed(mode.opts)
		full := run(obsOpts, st)
		compareJudgments(t, mode.name+" observed vs plain", full, plain)
	}
}

// TestDebugEndpointsConcurrentWithDrain scrapes /metrics, /debug/sessions
// and /debug/flightrecorder in a tight loop while sessions stream and the
// server drains — the shutdown race a real deployment hits every deploy.
// Run under -race in CI; the assertions here are "nothing breaks and the
// snapshots are well-formed", the data race detector does the rest.
func TestDebugEndpointsConcurrentWithDrain(t *testing.T) {
	dep, stream := fixtures(t)
	short := stream[:len(stream)/8]

	tel := obs.NewMetricsOnly()
	srv := New(nil,
		WithWorkers(2),
		WithBatching(100*time.Microsecond, 8),
		WithTelemetry(tel),
		WithFlight(obs.NewFlightRecorder(0, 0)),
		WithWallTracer(obs.NewWallTracer()),
	)
	srv.Deploy(dep)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve(ln) }()

	msrv, err := obs.Serve("127.0.0.1:0", tel.Reg,
		obs.Route{Pattern: "/debug/sessions", Handler: srv.SessionsHandler()},
		obs.Route{Pattern: "/debug/flightrecorder", Handler: srv.FlightHandler()},
	)
	if err != nil {
		t.Fatal(err)
	}

	const clients = 3
	var wg sync.WaitGroup
	errs := make([]error, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c, err := Dial(ln.Addr().String(), Hello{
				Benchmark: fixBench, Model: "lstm", Backend: kernels.BackendNative,
			}, nil)
			if err != nil {
				errs[i] = err
				return
			}
			for off := 0; off < len(short); off += 4096 {
				end := off + 4096
				if end > len(short) {
					end = len(short)
				}
				if err := c.Send(short[off:end]); err != nil {
					errs[i] = err
					return
				}
			}
			_, errs[i] = c.Finish()
		}(i)
	}

	// Scrapers hammer all three endpoints until told to stop — through the
	// streaming phase AND the drain.
	var sawSession atomic.Bool
	stopScrape := make(chan struct{})
	var scrapeWG sync.WaitGroup
	scrapeWG.Add(1)
	go func() {
		defer scrapeWG.Done()
		for {
			select {
			case <-stopScrape:
				return
			default:
			}
			for _, path := range []string{"/metrics", "/debug/sessions", "/debug/flightrecorder"} {
				resp, err := http.Get("http://" + msrv.Addr() + path)
				if err != nil {
					t.Errorf("scrape %s: %v", path, err)
					return
				}
				body, err := io.ReadAll(resp.Body)
				resp.Body.Close()
				if err != nil {
					t.Errorf("scrape %s: %v", path, err)
					return
				}
				if path == "/debug/sessions" {
					var doc struct {
						Sessions []SessionInfo `json:"sessions"`
					}
					if err := json.Unmarshal(body, &doc); err != nil {
						t.Errorf("malformed /debug/sessions: %v\n%s", err, body)
						return
					}
					for _, s := range doc.Sessions {
						if s.ID == "" {
							t.Errorf("session row without an id: %+v", s)
						}
						sawSession.Store(true)
					}
				}
			}
		}
	}()

	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("client %d: %v", i, err)
		}
	}
	// Drain while the scrapers are still hitting every endpoint.
	srv.Shutdown(time.Minute)
	if err := <-serveDone; err != nil {
		t.Fatalf("Serve: %v", err)
	}
	close(stopScrape)
	scrapeWG.Wait()
	if err := msrv.Close(); err != nil {
		t.Fatalf("metrics endpoint close: %v", err)
	}

	if !sawSession.Load() {
		t.Log("no scrape caught a live session (timing-dependent); endpoint shape still verified")
	}
	if got := len(srv.Sessions()); got != 0 {
		t.Errorf("%d sessions still live after drain", got)
	}
}

// TestWelcomeSessionIDBackCompat pins the wire shape: the welcome frame
// carries the new session_id field alongside the legacy session field with
// the same value, and Client.SessionID prefers the new one — old servers
// (no session_id) fall back to the legacy field.
func TestWelcomeSessionIDBackCompat(t *testing.T) {
	dep, stream := fixtures(t)
	addr := startServer(t, nil, dep)
	c, err := Dial(addr, Hello{Benchmark: fixBench, Model: "lstm"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	w := c.Welcome()
	if w.SessionID == "" {
		t.Fatal("welcome frame missing session_id")
	}
	if w.Session != w.SessionID {
		t.Errorf("legacy session %q != session_id %q", w.Session, w.SessionID)
	}
	if got := c.SessionID(); got != w.SessionID {
		t.Errorf("Client.SessionID = %q, want %q", got, w.SessionID)
	}
	streamChunks(t, c, stream[:len(stream)/16], 8192)

	// A server that predates session_id: the accessor falls back.
	legacy := Client{welcome: Welcome{Session: "s-old"}}
	if got := legacy.SessionID(); got != "s-old" {
		t.Errorf("legacy fallback SessionID = %q, want s-old", got)
	}

	var raw map[string]any
	blob, err := json.Marshal(Welcome{Session: "s-9", SessionID: "s-9"})
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(blob, &raw); err != nil {
		t.Fatal(err)
	}
	if raw["session"] != "s-9" || raw["session_id"] != "s-9" {
		t.Errorf("welcome JSON = %v, want both session and session_id", raw)
	}
}

// TestFlightRecorderDumpsOnProtocolError drives a session into a protocol
// violation and checks the flight recorder kept the session's recent
// events — the post-mortem the recorder exists for.
func TestFlightRecorderDumpsOnProtocolError(t *testing.T) {
	dep, _ := fixtures(t)
	flight := obs.NewFlightRecorder(0, 0)
	var logBuf bytes.Buffer
	logger, err := obs.NewLogger(&logBuf, "text", slog.LevelDebug)
	if err != nil {
		t.Fatal(err)
	}

	srv := New(nil, WithFlight(flight), WithLogger(logger))
	srv.Deploy(dep)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()

	c, err := Dial(ln.Addr().String(), Hello{Benchmark: fixBench, Model: "lstm"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	id := c.SessionID()
	// A second hello mid-session is a protocol violation.
	if err := WriteFrame(c.conn, FrameHello, []byte(`{}`)); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Finish(); err == nil {
		t.Fatal("protocol violation went unnoticed")
	}
	srv.Shutdown(10 * time.Second)
	if err := <-done; err != nil {
		t.Fatalf("Serve: %v", err)
	}

	events := flight.Dump(id)
	if len(events) == 0 {
		t.Fatalf("no flight events retained for session %s", id)
	}
	var sawOpen, sawProto bool
	for _, ev := range events {
		switch ev.Event {
		case "open":
			sawOpen = true
		case "proto-error":
			sawProto = true
		}
	}
	if !sawOpen || !sawProto {
		t.Errorf("flight ring missing open/proto-error: %+v", events)
	}
	if !bytes.Contains(logBuf.Bytes(), []byte("flight recorder dump")) {
		t.Error("protocol error did not dump the flight recorder to the log")
	}
	if !bytes.Contains(logBuf.Bytes(), []byte(obs.SessionKey+"="+id)) {
		t.Errorf("log lines not correlated with session %s:\n%s", id, logBuf.String())
	}
}
