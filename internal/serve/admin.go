package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"rtad/internal/core"
	"rtad/internal/registry"
)

// Model-lifecycle admin surface. ModelsHandler serves the registry
// snapshot at /debug/models; ModelsAdminHandler mounts the mutating verbs
// under /debug/models/:
//
//	GET  /debug/models                    registry snapshot (per-version
//	                                      states, refs, anomaly-rate deltas)
//	POST /debug/models/load?file=F        load a .dep file as a candidate
//	          [&canary=FRAC][&promote=1]  optionally canary or promote it
//	POST /debug/models/canary?model=K&version=N&fraction=F
//	POST /debug/models/promote?model=K&version=N
//	POST /debug/models/retire?model=K&version=N
//	POST /debug/models/canary/stop?model=K&version=N
//
// Every mutation answers with the updated registry snapshot, so one call
// both acts and observes. This is the drive shaft of the zero-downtime
// lifecycle: load → canary → (watch the delta) → promote → retire, all
// against a serving daemon.

// ModelsHandler serves the registry snapshot as JSON — mount it at
// /debug/models on the obs exposition server.
func (s *Server) ModelsHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		s.writeModels(w)
	})
}

func (s *Server) writeModels(w http.ResponseWriter) {
	w.Header().Set("Content-Type", "application/json")
	doc := struct {
		Models []registry.ModelInfo `json:"models"`
	}{Models: s.reg.Snapshot()}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(&doc)
}

// adminError answers a failed mutation. Registry-rule violations (unknown
// version, canarying the active version, retiring the active version, …)
// are client errors, not server faults.
func adminError(w http.ResponseWriter, status int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
}

// ModelsAdminHandler serves the mutating lifecycle verbs — mount it at
// /debug/models/ (note the trailing slash) next to ModelsHandler.
func (s *Server) ModelsAdminHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodPost {
			adminError(w, http.StatusMethodNotAllowed, fmt.Errorf("model lifecycle verbs are POST"))
			return
		}
		var err error
		switch req.URL.Path {
		case "/debug/models/load":
			err = s.adminLoad(req)
		case "/debug/models/canary":
			err = s.adminVersionVerb(req, func(key string, id int64) error {
				frac, ferr := strconv.ParseFloat(req.FormValue("fraction"), 64)
				if ferr != nil {
					return fmt.Errorf("fraction: %w", ferr)
				}
				return s.reg.StartCanary(key, id, frac)
			})
		case "/debug/models/canary/stop":
			err = s.adminVersionVerb(req, s.reg.StopCanary)
		case "/debug/models/promote":
			err = s.adminVersionVerb(req, func(key string, id int64) error {
				if perr := s.reg.Promote(key, id); perr != nil {
					return perr
				}
				s.log.Info("serve: model promoted", "model", key, "version", id)
				return nil
			})
		case "/debug/models/retire":
			err = s.adminVersionVerb(req, s.reg.Retire)
		default:
			adminError(w, http.StatusNotFound, fmt.Errorf("unknown lifecycle verb %q", req.URL.Path))
			return
		}
		if err != nil {
			adminError(w, http.StatusBadRequest, err)
			return
		}
		s.writeModels(w)
	})
}

// adminVersionVerb parses the model/version pair every per-version verb
// takes and applies fn.
func (s *Server) adminVersionVerb(req *http.Request, fn func(key string, id int64) error) error {
	key := req.FormValue("model")
	if key == "" {
		return fmt.Errorf("missing model parameter (benchmark/model key)")
	}
	id, err := strconv.ParseInt(req.FormValue("version"), 10, 64)
	if err != nil {
		return fmt.Errorf("version: %w", err)
	}
	return fn(key, id)
}

// adminLoad loads a deployment file into the registry as a candidate, and
// optionally canaries (canary=FRACTION) or promotes (promote=1) it in the
// same call. Re-loading a file whose content the registry already holds is
// idempotent (fingerprint dedupe), so the verb is safe to retry.
func (s *Server) adminLoad(req *http.Request) error {
	path := req.FormValue("file")
	if path == "" {
		return fmt.Errorf("missing file parameter")
	}
	dep, err := core.LoadDeploymentFile(path)
	if err != nil {
		return err
	}
	v, err := s.reg.Register(dep, registry.Meta{Origin: "file:" + path, LoadedAt: time.Now()})
	if err != nil {
		return err
	}
	s.log.Info("serve: model loaded", "model", v.Key(), "version", v.ID(), "file", path)
	if frac := req.FormValue("canary"); frac != "" {
		f, ferr := strconv.ParseFloat(frac, 64)
		if ferr != nil {
			return fmt.Errorf("canary: %w", ferr)
		}
		if err := s.reg.StartCanary(v.Key(), v.ID(), f); err != nil {
			return err
		}
		s.log.Info("serve: canary started", "model", v.Key(), "version", v.ID(), "fraction", f)
	}
	if req.FormValue("promote") == "1" {
		if err := s.reg.Promote(v.Key(), v.ID()); err != nil {
			return err
		}
		s.log.Info("serve: model promoted", "model", v.Key(), "version", v.ID())
	}
	return nil
}
