package serve

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"rtad/internal/kernels"
	"rtad/internal/obs"
)

// Cross-session micro-batching. Every session's MCM calls its engine
// synchronously on its fleet worker, so a blocking proxy in front of the
// engine is all it takes to batch across sessions: the proxy parks the
// pending work with the coordinator and the worker sleeps until the batch
// flushes. Pending work from all admitted sessions accumulates until the
// batch is due — full, starved of producers, or past the wall-time window
// — then one fused kernels.GroupRunner pass judges it all and wakes each
// waiter with its own results. Per-session streams are bit-identical to
// the unbatched path — the group pass reproduces each engine's arithmetic
// and state exactly — so batching is purely a host-throughput trade: work
// waits (bounded by the window) for co-scheduling, and in exchange the
// per-call host overhead is paid once per batch instead of once per
// session call.
//
// The unit of batching is whatever the MCM submits per engine call. With
// deferred judgment (calibrated native backends; see kernels.FixedCoster)
// that is a whole trace chunk's worth of windows in one InferBatch — the
// session parks once per chunk, and a flush runs sessions×steps fused
// rows with weights and scratch hot throughout. Engines without a fixed
// cost submit per-vector Infer calls and batch at vector granularity.
//
// The coordinator is worker-driven: there is no dispatcher goroutine.
// Submitters append to the pending batch under a mutex, and the submitter
// (or producer-exit, or timer) that makes the batch due swaps it out and
// runs the fused pass inline, delivering every waiter's result. The
// flusher's own vector therefore never parks — in the degenerate
// single-session case every "batch" is flushed by its only submitter and
// the path costs two mutex acquisitions over plain inference.
//
// Flush reasons:
//   - full: BatchMax vectors are pending
//   - starve: every session runner currently inside a trace chunk is
//     parked in the batch, so no further vector can arrive until this
//     one flushes — waiting out the window would idle the host. Starvation
//     is declared only after the candidate yields the CPU once and the
//     batch still has not grown: producers that are runnable but unscheduled
//     get one pass to contribute, which is what lets batches accumulate at
//     all on a single-core host. This is the common steady-state flush: the
//     batch size adapts to the actual inference concurrency instead of a
//     wall-clock guess, and a lone session degrades to near-inline
//     inference automatically.
//   - window: the wall-time window expired — the fallback bound on
//     waiting when the producer count over-estimates (for example a
//     runner stalled mid-chunk by the OS), and the latency ceiling the
//     operator actually configures.
//   - drain: the server is shutting down; pending vectors flush
//     immediately so blocked sessions can finish and deliver summaries

// DefaultBatchMax bounds a micro-batch (in parked sessions) when
// Config.BatchMax is zero.
const DefaultBatchMax = 32

// pendingInfer is one parked engine call: the request plus the channel its
// session worker sleeps on and the owned result buffers the flusher copies
// into (the GroupRunner's result slices are scratch, reused by the next
// fused pass). The channel is buffered so a flusher never blocks
// delivering, and the flusher's own result is simply waiting for it.
type pendingInfer struct {
	req    kernels.BatchRequest
	js     []kernels.Judgment
	cycles []int64
	err    error
	done   chan struct{}
}

var pendingPool = sync.Pool{
	New: func() any { return &pendingInfer{done: make(chan struct{}, 1)} },
}

// batcher is the per-server batching coordinator.
type batcher struct {
	window time.Duration
	max    int

	// mu guards the batch under assembly. It is held only for appends and
	// swaps — never across the fused pass itself.
	mu     sync.Mutex
	cur    []*pendingInfer
	gen    uint64 // bumped by takeLocked; detects "my batch already flushed"
	closed bool
	timer  *time.Timer // fires a window flush for the batch under assembly

	// runnerMu serializes fused passes: the GroupRunner owns gather and
	// result scratch, and with inline flushing two flushers can overlap.
	runnerMu sync.Mutex
	runner   *kernels.GroupRunner
	reqs     []kernels.BatchRequest

	free [][]*pendingInfer // recycled batch slices

	draining atomic.Bool
	drainOne sync.Once

	// producers counts session runners currently inside a trace chunk
	// (FeedTrace or Drain) — the only goroutines that can still add a
	// vector to the pending batch before it flushes. When every producer
	// is parked in the batch, waiting any longer is pure idle time.
	producers atomic.Int64

	mSize        *obs.Histogram
	mLatency     *obs.Histogram
	mInferSec    *obs.Histogram // one fused GroupRunner.InferBatch pass, seconds
	mRows        *obs.Counter
	mFlushWindow *obs.Counter
	mFlushFull   *obs.Counter
	mFlushStarve *obs.Counter
	mFlushDrain  *obs.Counter

	wall *obs.WallTrack // wall-clock flush spans, labelled by reason
}

// BatchSizeBuckets are the batch-size histogram bounds: exponential 1..256.
var BatchSizeBuckets = obs.ExpBuckets(1, 2, 9)

// BatchLatencyBuckets bound the per-batch fused-inference host latency
// histogram, in microseconds: 1us .. ~8ms.
var BatchLatencyBuckets = obs.ExpBuckets(1, 2, 14)

func newBatcher(window time.Duration, max int, tel *obs.Telemetry, wall *obs.WallTracer) *batcher {
	if max <= 0 {
		max = DefaultBatchMax
	}
	b := &batcher{
		window:       window,
		max:          max,
		runner:       kernels.NewGroupRunner(),
		mSize:        tel.Histogram("rtad_serve_batch_size", BatchSizeBuckets),
		mLatency:     tel.Histogram("rtad_serve_batch_infer_latency_us", BatchLatencyBuckets),
		mInferSec:    tel.Histogram("rtad_serve_infer_batch_seconds", ServeSecondsBuckets),
		mRows:        tel.Counter("rtad_serve_batch_rows_total"),
		mFlushWindow: tel.Counter("rtad_serve_batch_flush_window_total"),
		mFlushFull:   tel.Counter("rtad_serve_batch_flush_full_total"),
		mFlushStarve: tel.Counter("rtad_serve_batch_flush_starve_total"),
		mFlushDrain:  tel.Counter("rtad_serve_batch_flush_drain_total"),
		wall:         wall.Track("serve", "batcher"),
	}
	b.timer = time.AfterFunc(time.Hour, b.onTimer)
	b.timer.Stop()
	return b
}

// wrap is the core.WithEngineWrap hook: the session's engine, proxied
// through the coordinator.
func (b *batcher) wrap(be kernels.Backend) kernels.Backend {
	return &batchedEngine{Backend: be, b: b}
}

// producerUp marks one session runner as inside a trace chunk. Both
// methods accept a nil receiver so the unbatched server needs no guards.
func (b *batcher) producerUp() {
	if b != nil {
		b.producers.Add(1)
	}
}

// producerDown marks the chunk finished; with one producer fewer the
// pending batch may now be starved, in which case the leaving runner
// flushes it on its way out.
func (b *batcher) producerDown() {
	if b == nil {
		return
	}
	left := b.producers.Add(-1)
	b.mu.Lock()
	if len(b.cur) > 0 && int64(len(b.cur)) >= left {
		batch := b.takeLocked()
		b.mu.Unlock()
		b.flush(batch, flushStarve)
		return
	}
	b.mu.Unlock()
}

// startDrain switches the coordinator to drain mode: the pending batch
// flushes now, and every later arrival flushes immediately, so sessions
// blocked in inference always progress toward their summary frame.
func (b *batcher) startDrain() {
	b.drainOne.Do(func() {
		b.draining.Store(true)
		b.mu.Lock()
		batch := b.takeLocked()
		b.mu.Unlock()
		if batch != nil {
			b.flush(batch, flushDrain)
		}
	})
}

// close stops the coordinator. Callers must first guarantee no session can
// submit again (the server waits out its sessions before closing); any
// still-pending vectors flush so no waiter is stranded.
func (b *batcher) close() {
	b.mu.Lock()
	b.closed = true
	batch := b.takeLocked()
	b.mu.Unlock()
	if batch != nil {
		b.flush(batch, flushDrain)
	}
}

// takeLocked swaps the batch under assembly for an empty one and disarms
// the window timer. Callers hold b.mu; nil means nothing was pending.
func (b *batcher) takeLocked() []*pendingInfer {
	if len(b.cur) == 0 {
		return nil
	}
	batch := b.cur
	if n := len(b.free); n > 0 {
		b.cur = b.free[n-1]
		b.free = b.free[:n-1]
	} else {
		b.cur = make([]*pendingInfer, 0, b.max)
	}
	b.gen++
	b.timer.Stop()
	return batch
}

// onTimer is the window expiry: whatever is pending has waited long enough.
// A flush racing the callback can leave it a smaller batch than it armed
// for; that is harmless, so no generation tracking is needed.
func (b *batcher) onTimer() {
	b.mu.Lock()
	batch := b.takeLocked()
	b.mu.Unlock()
	if batch != nil {
		b.flush(batch, flushWindow)
	}
}

// inferBatch parks one engine call — a session's windows, in stream order
// — with the coordinator and blocks until its batch flushes. The submitter
// that makes the batch due — full, starved, or draining — runs the fused
// pass itself, so its own work costs no sleep at all. After close (a
// straggler racing server shutdown) it degrades to the session's own
// engine. The returned slices are the proxy's buffers, valid until its
// next call — the same lifetime the Backend contract grants.
func (b *batcher) inferBatch(e *batchedEngine, windows [][]int32) ([]kernels.Judgment, []int64, error) {
	// The previous call's pendingInfer was handed to the session as its
	// result buffers; its lifetime — "until the next call on this backend"
	// — ends here, so it can recycle now.
	if h := e.held; h != nil {
		e.held = nil
		h.req = kernels.BatchRequest{}
		h.err = nil
		pendingPool.Put(h)
	}
	p := pendingPool.Get().(*pendingInfer)
	p.req = kernels.BatchRequest{Backend: e.Backend, Windows: windows}

	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		p.req = kernels.BatchRequest{}
		pendingPool.Put(p)
		return e.Backend.InferBatch(windows)
	}
	b.cur = append(b.cur, p)
	if len(b.cur) == 1 {
		b.timer.Reset(b.window)
	}
	gen := b.gen
	stamp := -1 // batch length at the last yield; -1 = not yielded yet
	for {
		switch {
		case b.draining.Load():
			batch := b.takeLocked()
			b.mu.Unlock()
			b.flush(batch, flushDrain)
		case len(b.cur) >= b.max:
			batch := b.takeLocked()
			b.mu.Unlock()
			b.flush(batch, flushFull)
		case int64(len(b.cur)) < b.producers.Load():
			// Producers outside the batch are mid-chunk; they will grow it
			// or flush it. Park.
			b.mu.Unlock()
		case len(b.cur) == stamp:
			// Starved: every producer is parked here, and a full scheduler
			// pass brought no new vector. Waiting longer would only idle.
			batch := b.takeLocked()
			b.mu.Unlock()
			b.flush(batch, flushStarve)
		default:
			// Starve candidate: every producer is accounted for in the
			// batch, but some may simply not have been scheduled yet on
			// this pass. Yield the CPU once so runnable producers can
			// contribute; flush above only if nothing arrived.
			stamp = len(b.cur)
			b.mu.Unlock()
			runtime.Gosched()
			b.mu.Lock()
			if b.gen == gen {
				continue
			}
			// The batch this vector joined flushed while yielding.
			b.mu.Unlock()
		}
		break
	}
	<-p.done
	// Hand the pendingInfer's owned buffers straight back as the result —
	// no copy — and keep p out of the pool until this engine's next call,
	// the exact lifetime the Backend contract grants the slices.
	e.held = p
	return p.js, p.cycles, p.err
}

// Flush reasons, as both counter selectors and wall-trace span labels.
const (
	flushWindow = "window"
	flushFull   = "full"
	flushStarve = "starve"
	flushDrain  = "drain"
)

func (b *batcher) flushCounter(reason string) *obs.Counter {
	switch reason {
	case flushWindow:
		return b.mFlushWindow
	case flushFull:
		return b.mFlushFull
	case flushStarve:
		return b.mFlushStarve
	default:
		return b.mFlushDrain
	}
}

// flush runs one fused pass over a taken batch and wakes every waiter.
func (b *batcher) flush(batch []*pendingInfer, reason string) {
	b.runnerMu.Lock()
	reqs := b.reqs[:0]
	for _, p := range batch {
		reqs = append(reqs, p.req)
	}
	b.reqs = reqs
	t0 := time.Now()
	results := b.runner.InferGroup(reqs)
	infer := time.Since(t0)
	b.mLatency.Observe(float64(infer) / float64(time.Microsecond))
	b.mInferSec.Observe(infer.Seconds())
	b.mSize.Observe(float64(len(batch)))
	rows := 0
	// Result copies happen under runnerMu: the result slices are the
	// runner's arenas, reused by the next fused pass. Each waiter gets its
	// results in its pendingInfer's owned buffers.
	for i, p := range batch {
		r := results[i]
		p.js = append(p.js[:0], r.Js...)
		p.cycles = append(p.cycles[:0], r.Cycles...)
		p.err = r.Err
		rows += len(p.req.Windows)
		p.done <- struct{}{} // buffered: never blocks, flusher's own included
		batch[i] = nil
	}
	b.mRows.Add(int64(rows))
	b.flushCounter(reason).Inc()
	b.wall.Since("flush", t0, map[string]any{
		"reason": reason, "size": len(batch), "rows": rows,
	})
	b.runnerMu.Unlock()
	b.mu.Lock()
	b.free = append(b.free, batch[:0])
	b.mu.Unlock()
}

// batchedEngine is the per-session engine proxy: every inference entry
// point parks with the coordinator; Name and Window pass through. The
// session's results live in the pendingInfer retained on `held` (one call
// in flight at a time, like any Backend), and FixedCost is forwarded so
// the MCM's deferred judgment — the mechanism that turns per-vector calls
// into per-chunk InferBatch calls — survives the wrapping (interface
// embedding only promotes the Backend methods).
type batchedEngine struct {
	kernels.Backend
	b    *batcher
	held *pendingInfer // last call's result buffers, recycled on the next call
	one  [1][]int32    // single-window scratch for Infer
}

func (e *batchedEngine) Infer(window []int32) (kernels.Judgment, int64, error) {
	e.one[0] = window
	js, cycles, err := e.b.inferBatch(e, e.one[:])
	e.one[0] = nil
	if err != nil {
		return kernels.Judgment{}, 0, err
	}
	return js[0], cycles[0], nil
}

func (e *batchedEngine) InferBatch(windows [][]int32) ([]kernels.Judgment, []int64, error) {
	return e.b.inferBatch(e, windows)
}

// FixedCost reports the wrapped engine's fixed cost, if any.
func (e *batchedEngine) FixedCost() (int64, bool) {
	if fc, ok := e.Backend.(kernels.FixedCoster); ok {
		return fc.FixedCost()
	}
	return 0, false
}
