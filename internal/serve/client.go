package serve

import (
	"context"
	"fmt"
	"net"
	"sync"
	"time"
)

// Client is the Go client for an rtad-wire session: dial, stream trace
// bytes, receive judgments as the engine produces them, finish with the
// summary. A Client is safe for one streaming goroutine; judgments are
// delivered on the client's internal reader goroutine.
//
//	c, err := serve.Dial(addr, serve.Hello{
//		Proto: serve.Proto, Benchmark: "458.sjeng", Model: "lstm",
//	}, func(j serve.Judgment) { fmt.Println(j.Seq, j.Anomaly) })
//	c.Send(traceBytes)
//	sum, err := c.Finish()
type Client struct {
	conn    net.Conn
	welcome Welcome
	timeout time.Duration
	ctx     context.Context

	onJudgment func(Judgment)
	mu         sync.Mutex
	judgments  []Judgment

	readerDone chan struct{}
	sum        *Summary
	err        error
}

// DialTimeout bounds the handshake and each subsequent read/write unless
// WithOpTimeout overrides it.
const DialTimeout = time.Minute

// ClientOption tunes a Dial/DialContext call.
type ClientOption func(*Client)

// WithOpTimeout sets the per-operation deadline applied to every write
// (Send, Finish) and to the gap between received frames — the bound that
// keeps a stalled daemon from hanging the client. 0 or negative keeps
// DialTimeout.
func WithOpTimeout(d time.Duration) ClientOption {
	return func(c *Client) {
		if d > 0 {
			c.timeout = d
		}
	}
}

// Dial connects to an rtadd server, negotiates a session with hello
// (hello.Proto defaults to Proto if empty), and starts receiving. A non-nil
// onJudgment is called from the reader goroutine for every judgment as it
// arrives; with nil, judgments accumulate and Judgments returns them after
// Finish. A server rejection (busy, draining, bad hello) is returned as an
// *ErrorMsg error.
func Dial(addr string, hello Hello, onJudgment func(Judgment), opts ...ClientOption) (*Client, error) {
	return DialContext(context.Background(), addr, hello, onJudgment, opts...)
}

// DialContext is Dial under a context: the dial and handshake observe
// ctx's deadline and cancellation, and cancelling ctx after the handshake
// closes the connection, unblocking any Send/Finish in flight (which then
// return ctx's error).
func DialContext(ctx context.Context, addr string, hello Hello, onJudgment func(Judgment), opts ...ClientOption) (*Client, error) {
	d := net.Dialer{Timeout: DialTimeout}
	conn, err := d.DialContext(ctx, "tcp", addr)
	if err != nil {
		return nil, err
	}
	c := &Client{
		conn:       conn,
		timeout:    DialTimeout,
		ctx:        ctx,
		onJudgment: onJudgment,
		readerDone: make(chan struct{}),
	}
	for _, opt := range opts {
		opt(c)
	}
	if hello.Proto == "" {
		hello.Proto = Proto
	}
	// The handshake runs before the reader goroutine exists, so ctx
	// cancellation is enforced by a temporary watcher.
	handshakeDone := make(chan struct{})
	if ctx.Done() != nil {
		go func() {
			select {
			case <-ctx.Done():
				conn.Close()
			case <-handshakeDone:
			}
		}()
	}
	hsErr := func(err error) error {
		if cerr := ctx.Err(); cerr != nil {
			return fmt.Errorf("serve: dial: %w", cerr)
		}
		return err
	}
	conn.SetWriteDeadline(time.Now().Add(c.timeout))
	if err := writeJSON(conn, FrameHello, &hello); err != nil {
		close(handshakeDone)
		conn.Close()
		return nil, hsErr(fmt.Errorf("serve: sending hello: %w", err))
	}
	conn.SetReadDeadline(time.Now().Add(c.timeout))
	t, payload, _, err := ReadFrame(conn, nil)
	if err != nil {
		close(handshakeDone)
		conn.Close()
		return nil, hsErr(fmt.Errorf("serve: reading welcome: %w", err))
	}
	close(handshakeDone)
	switch t {
	case FrameWelcome:
		if err := unmarshalFrame(payload, &c.welcome); err != nil {
			conn.Close()
			return nil, err
		}
	case FrameError:
		defer conn.Close()
		return nil, decodeErrorFrame(payload)
	default:
		conn.Close()
		return nil, fmt.Errorf("serve: expected welcome, got %v", t)
	}
	if ctx.Done() != nil {
		// Post-handshake watcher: cancellation closes the connection, which
		// unblocks the reader and any in-flight write.
		go func() {
			select {
			case <-ctx.Done():
				c.conn.Close()
			case <-c.readerDone:
			}
		}()
	}
	go c.readLoop()
	return c, nil
}

// Welcome returns the negotiated session parameters.
func (c *Client) Welcome() Welcome { return c.welcome }

// SessionID returns the server-minted session identifier — the value to
// correlate with the server's structured logs, wall-trace spans and
// /debug/sessions rows. Falls back to the legacy Session field when the
// server predates SessionID.
func (c *Client) SessionID() string {
	if c.welcome.SessionID != "" {
		return c.welcome.SessionID
	}
	return c.welcome.Session
}

// ModelVersion returns the registry version id of the model this session
// judges on — fixed at admission for the session's whole life, so a client
// can attribute every judgment to exact weights across hot-swaps. Returns 0
// when the server predates the model registry (legacy welcome payload).
func (c *Client) ModelVersion() int64 { return c.welcome.ModelVersion }

// Send streams raw PTM trace bytes, transparently splitting data into
// MaxFrame-sized chunks. Chunk boundaries never affect the judgment stream.
func (c *Client) Send(data []byte) error {
	const max = MaxFrame - 1
	for len(data) > 0 {
		n := len(data)
		if n > max {
			n = max
		}
		c.conn.SetWriteDeadline(time.Now().Add(c.timeout))
		if err := WriteFrame(c.conn, FrameChunk, data[:n]); err != nil {
			// A send failure usually means the server already sent the real
			// error; surface it if the reader has it.
			if rerr := c.waitReader(time.Second); rerr != nil {
				return rerr
			}
			return err
		}
		data = data[n:]
	}
	return nil
}

// Finish signals end-of-stream, waits for the remaining judgments and the
// summary, and closes the connection.
func (c *Client) Finish() (*Summary, error) {
	c.conn.SetWriteDeadline(time.Now().Add(c.timeout))
	if err := WriteFrame(c.conn, FrameEOS, nil); err != nil {
		if rerr := c.waitReader(time.Second); rerr != nil {
			return nil, rerr
		}
		return nil, err
	}
	<-c.readerDone
	c.conn.Close()
	if c.err != nil {
		return nil, c.err
	}
	if c.sum == nil {
		return nil, fmt.Errorf("serve: connection closed before summary")
	}
	return c.sum, nil
}

// Close aborts the session without waiting for a summary.
func (c *Client) Close() error {
	err := c.conn.Close()
	<-c.readerDone
	return err
}

// Judgments returns the accumulated judgments (only populated when Dial was
// given a nil onJudgment). Call after Finish for the complete stream.
func (c *Client) Judgments() []Judgment {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.judgments
}

// waitReader waits briefly for the reader goroutine to surface a terminal
// error (used to prefer the server's error frame over a local write error).
func (c *Client) waitReader(d time.Duration) error {
	select {
	case <-c.readerDone:
		return c.err
	case <-time.After(d):
		return nil
	}
}

// readLoop consumes server frames until summary, error frame, or
// disconnect. It is the only reader of the connection after the handshake.
func (c *Client) readLoop() {
	defer close(c.readerDone)
	var buf []byte
	for {
		c.conn.SetReadDeadline(time.Now().Add(c.timeout))
		t, payload, nbuf, err := ReadFrame(c.conn, buf)
		buf = nbuf
		if err != nil {
			if c.ctx != nil && c.ctx.Err() != nil {
				c.err = fmt.Errorf("serve: session cancelled: %w", c.ctx.Err())
			} else {
				c.err = fmt.Errorf("serve: connection lost: %w", err)
			}
			return
		}
		switch t {
		case FrameJudgment:
			j, err := DecodeJudgment(payload)
			if err != nil {
				c.err = err
				return
			}
			if c.onJudgment != nil {
				c.onJudgment(j)
			} else {
				c.mu.Lock()
				c.judgments = append(c.judgments, j)
				c.mu.Unlock()
			}
		case FrameSummary:
			var sum Summary
			if err := unmarshalFrame(payload, &sum); err != nil {
				c.err = err
				return
			}
			c.sum = &sum
			return
		case FrameError:
			c.err = decodeErrorFrame(payload)
			return
		default:
			c.err = fmt.Errorf("serve: unexpected %v frame from server", t)
			return
		}
	}
}
