package core

import "rtad/internal/sim"

// Stage is one block of the CPU→PTM→TPIU→IGM→MCM trace-delivery chain,
// viewed through the uniform occupancy/loss triple every buffering stage
// keeps (the Len/MaxDepth/Overflows statistics of sim.FIFO). The pipeline,
// the dual-model fan-out and the Fig 7 measurement path all report stage
// pressure through this one interface instead of per-stage ad hoc getters.
type Stage interface {
	// StageName is a short stable identifier ("ptm", "tpiu", "igm", "mcm").
	StageName() string
	// QueueStats snapshots the stage's buffer occupancy and losses.
	QueueStats() sim.QueueStats
}

// StageSnapshot is one stage's statistics captured at a point in time,
// serialisable for the experiment reports.
type StageSnapshot struct {
	Name string `json:"name"`
	sim.QueueStats
}

// SnapshotStages captures every stage's current statistics in chain order.
func SnapshotStages(stages []Stage) []StageSnapshot {
	out := make([]StageSnapshot, len(stages))
	for i, st := range stages {
		out[i] = StageSnapshot{Name: st.StageName(), QueueStats: st.QueueStats()}
	}
	return out
}

// Stages lists the pipeline's trace-delivery blocks in chain order.
func (p *Pipeline) Stages() []Stage {
	return []Stage{p.port, p.fmtr, p.ig, p.mod}
}
