package core

import (
	"encoding/gob"
	"fmt"
	"io"
	"os"

	"rtad/internal/cpu"
	"rtad/internal/igm"
	"rtad/internal/ml"
	"rtad/internal/workload"
)

// Training a deployment is the expensive part of the flow (§III-C runs the
// target application "in advance"), so deployments are serialisable: train
// once with cmd/rtadsim or your own harness, save, and reload into any
// number of pipelines. The on-disk format is a versioned gob of the model
// parameters, the IGM table contents and the legitimate-event pool.

// persistVersion guards the format; bump on incompatible changes.
const persistVersion = 1

// deploymentDTO is the serialised form of a Deployment. The protocol
// converter (a func) and the mapper (unexported internals) are rebuilt on
// load from Kind and the table entries.
type deploymentDTO struct {
	Version      int
	ProfileName  string
	Kind         ModelKind
	MapEntries   []igm.Entry
	MapSyscalls  bool
	ELM          *ml.ELM
	LSTM         *ml.LSTM
	Pool         []cpu.BranchEvent
	TrainWindows int
}

// Save writes the deployment to w.
func (d *Deployment) Save(w io.Writer) error {
	dto := deploymentDTO{
		Version:      persistVersion,
		ProfileName:  d.Profile.Name,
		Kind:         d.Kind,
		MapEntries:   d.Mapper.Entries(),
		MapSyscalls:  d.Mapper.HasSyscalls(),
		ELM:          d.ELM,
		LSTM:         d.LSTM,
		Pool:         d.Pool,
		TrainWindows: d.TrainWindows,
	}
	return gob.NewEncoder(w).Encode(&dto)
}

// SaveFile writes the deployment to path.
func (d *Deployment) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := d.Save(f); err != nil {
		return err
	}
	return f.Close()
}

// LoadDeployment reads a deployment written by Save. The benchmark profile
// is resolved by name, so the generated victim binary is identical to the
// one the deployment was trained against.
func LoadDeployment(r io.Reader) (*Deployment, error) {
	var dto deploymentDTO
	if err := gob.NewDecoder(r).Decode(&dto); err != nil {
		return nil, fmt.Errorf("core: decoding deployment: %w", err)
	}
	if dto.Version != persistVersion {
		return nil, fmt.Errorf("core: deployment format v%d, want v%d", dto.Version, persistVersion)
	}
	dep, err := rebuildDeployment(&dto)
	if err != nil {
		return nil, err
	}
	return dep, nil
}

// LoadDeploymentFile reads a deployment from path.
func LoadDeploymentFile(path string) (*Deployment, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return LoadDeployment(f)
}

func rebuildDeployment(dto *deploymentDTO) (*Deployment, error) {
	profile, ok := workload.ByName(dto.ProfileName)
	if !ok {
		return nil, fmt.Errorf("core: deployment references unknown benchmark %q", dto.ProfileName)
	}
	dep := &Deployment{
		Profile:      profile,
		Kind:         dto.Kind,
		Mapper:       igm.NewAddressMapFromEntries(dto.MapEntries, dto.MapSyscalls),
		ELM:          dto.ELM,
		LSTM:         dto.LSTM,
		Pool:         dto.Pool,
		TrainWindows: dto.TrainWindows,
	}
	switch dep.Kind {
	case ModelELM:
		if dep.ELM == nil {
			return nil, fmt.Errorf("core: ELM deployment without a model")
		}
		dep.Translate = elmTranslate
	case ModelLSTM:
		if dep.LSTM == nil {
			return nil, fmt.Errorf("core: LSTM deployment without a model")
		}
	default:
		return nil, fmt.Errorf("core: unknown model kind %d", dep.Kind)
	}
	return dep, nil
}
