package core

import (
	"errors"
	"fmt"
	"reflect"
	"runtime"
	"testing"
)

// TestFleetParallelSessionsShareDeployment is the race-audit enforcement
// test (run it under -race): eight sessions execute concurrently over ONE
// trained deployment — shared mapper, model weights, translation function
// and attack pool — and every run must come out identical to a serial run.
// Any mutation of Deployment state on the inference path shows up here as a
// data race or a diverging result.
func TestFleetParallelSessionsShareDeployment(t *testing.T) {
	dep := trainLSTMDeployment(t, "458.sjeng")
	job := Job{
		Dep:    dep,
		Config: PipelineConfig{CUs: 5, Stride: 512},
		Attack: AttackSpec{Seed: 3},
		Instr:  1_500_000,
	}
	serial, err := RunDetection(job.Dep, job.Config, job.Attack, job.Instr)
	if err != nil {
		t.Fatal(err)
	}

	const parallel = 8
	jobs := make([]Job, parallel)
	for i := range jobs {
		jobs[i] = job
	}
	results, err := NewFleet(parallel).Detect(jobs)
	if err != nil {
		t.Fatal(err)
	}
	for i, res := range results {
		if !reflect.DeepEqual(res, serial) {
			t.Errorf("parallel run %d diverges from the serial run", i)
		}
	}
}

// TestFleetMixedJobsOrderAndErrors checks result ordering for heterogeneous
// jobs and deterministic (lowest-index) error reporting.
func TestFleetMixedJobsOrderAndErrors(t *testing.T) {
	dep := trainLSTMDeployment(t, "401.bzip2")
	jobs := []Job{
		{Dep: dep, Config: PipelineConfig{CUs: 1, Stride: 256}, Attack: AttackSpec{Seed: 1}, Instr: 1_200_000},
		{Dep: dep, Config: PipelineConfig{CUs: 5, Stride: 256}, Attack: AttackSpec{Seed: 1}, Instr: 1_200_000},
	}
	results, err := NewFleet(2).Detect(jobs)
	if err != nil {
		t.Fatal(err)
	}
	if results[0].CUs != 1 || results[1].CUs != 5 {
		t.Errorf("results out of job order: CUs %d,%d", results[0].CUs, results[1].CUs)
	}

	wantErr := errors.New("boom")
	err = NewFleet(4).Run(10, func(i int) error {
		if i == 7 || i == 3 {
			return fmt.Errorf("job %d: %w", i, wantErr)
		}
		return nil
	})
	if err == nil || !errors.Is(err, wantErr) {
		t.Fatalf("fleet error lost: %v", err)
	}
	if got := err.Error(); got != "job 3: boom" {
		t.Errorf("fleet reported %q, want the lowest-index failure", got)
	}
}

func TestFleetDefaults(t *testing.T) {
	if w := NewFleet(0).Workers(); w != runtime.GOMAXPROCS(0) {
		t.Errorf("default width %d != GOMAXPROCS %d", w, runtime.GOMAXPROCS(0))
	}
	if w := NewFleet(3).Workers(); w != 3 {
		t.Errorf("explicit width %d != 3", w)
	}
	if err := NewFleet(4).Run(0, func(int) error { return errors.New("never") }); err != nil {
		t.Errorf("empty fleet run errored: %v", err)
	}
}
