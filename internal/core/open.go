package core

import (
	"fmt"

	"rtad/internal/axi"
	"rtad/internal/cpu"
	"rtad/internal/kernels"
	"rtad/internal/mcm"
	"rtad/internal/obs"
	"rtad/internal/sim"
)

// Deployments names the model set a session deploys against one victim:
// one deployment for a single-lane session, or two — the ELM in lane 0 and
// the LSTM in lane 1 — for a dual session where both detectors
// time-multiplex one compute engine (§II's multi-model deployment).
type Deployments []*Deployment

// Option configures Open. Options compose left to right; later options win
// where they overlap (e.g. a WithLaneConfig overrides WithConfig for that
// lane).
type Option func(*openConfig)

type openConfig struct {
	base    PipelineConfig
	lane    map[int]PipelineConfig
	laneSet map[int]bool
	tel     *obs.Telemetry
	telSet  bool
	attack  *AttackSpec
	replay  bool
	gap     int64
}

// WithConfig sets the base pipeline configuration applied to every lane.
func WithConfig(cfg PipelineConfig) Option {
	return func(o *openConfig) { o.base = cfg }
}

// WithLaneConfig overrides the pipeline configuration of one lane (0-based),
// letting dual sessions diverge per lane — most usefully in Backend, running
// e.g. the ELM natively while the LSTM stays on the cycle-accurate engine.
func WithLaneConfig(lane int, cfg PipelineConfig) Option {
	return func(o *openConfig) {
		if o.lane == nil {
			o.lane = map[int]PipelineConfig{}
			o.laneSet = map[int]bool{}
		}
		o.lane[lane] = cfg
		o.laneSet[lane] = true
	}
}

// WithBackend selects the inference backend for every lane
// (kernels.BackendGPU, BackendNative, BackendNativeCalibrated); it applies
// on top of WithConfig. Judgment streams are bit-identical across backends.
func WithBackend(name string) Option {
	return func(o *openConfig) { o.base.Backend = name }
}

// WithEngineWrap installs an inference-engine interceptor on every lane
// (PipelineConfig.EngineWrap); it applies on top of WithConfig. The serving
// layer uses this to route each session's Infer calls through a
// cross-session batching coordinator without the session noticing.
func WithEngineWrap(wrap func(kernels.Backend) kernels.Backend) Option {
	return func(o *openConfig) { o.base.EngineWrap = wrap }
}

// WithTelemetry attaches the observability bundle to the session: scheduler
// and victim gauges, per-stage spans and queue counters, and the judgment
// latency histogram. It overrides any Telemetry set on the pipeline configs.
func WithTelemetry(tel *obs.Telemetry) Option {
	return func(o *openConfig) { o.tel = tel; o.telSet = true }
}

// WithAttack arms the attack at open, exactly as Session.Inject would before
// the first Step: spec is taken literally (BurstLen must be positive; use
// AttackSpec.Resolve to apply the classic experiment defaults first).
func WithAttack(spec AttackSpec) Option {
	return func(o *openConfig) { o.attack = &spec }
}

// WithTraceInput switches the session's front-end from an executing victim
// CPU to a raw PTM trace stream fed via Session.FeedTrace — the serving
// shape, where the monitored SoC is elsewhere and only its CoreSight bytes
// reach the detector. Branch retirements are re-synthesised from the stream
// at a fixed pacing of gapCycles CPU cycles per branch event (plus any
// backpressure stall the trace path reports); gapCycles <= 0 picks
// DefaultReplayGap. Replay is deterministic: the same byte stream yields a
// bit-identical judgment stream however it is chunked.
func WithTraceInput(gapCycles int64) Option {
	return func(o *openConfig) { o.replay = true; o.gap = gapCycles }
}

// Resolve applies the classic experiment defaults to an attack spec for a
// run of instr instructions: a 32768-event burst and a trigger at 1/40 of
// the expected taken transfers. It is the defaulting RunDetection always
// applied, exported so Open(WithAttack(spec.Resolve(instr))) reproduces the
// batch wrappers exactly.
func (a AttackSpec) Resolve(instr int64) AttackSpec { return a.withDefaults(instr) }

// Open is the single entry point for detection sessions: it deploys deps
// (one lane, or ELM+LSTM dual lanes) on the simulated MPSoC and returns a
// streaming Session. With no options it behaves like the deprecated
// NewSession/NewDualSession constructors; options select per-lane configs,
// backends, telemetry, attack arming, and the trace-replay front-end.
//
//	s, err := core.Open(core.Deployments{dep},
//		core.WithConfig(core.PipelineConfig{CUs: 5}),
//		core.WithAttack(spec.Resolve(instr)))
//	res, err := s.Detect(instr)
func Open(deps Deployments, opts ...Option) (*Session, error) {
	var o openConfig
	for _, opt := range opts {
		opt(&o)
	}
	var (
		s   *Session
		err error
	)
	switch len(deps) {
	case 1:
		s, err = openSingle(deps[0], &o)
	case 2:
		s, err = openDual(deps[0], deps[1], &o)
	default:
		return nil, fmt.Errorf("core: Open needs 1 deployment (single lane) or 2 (ELM+LSTM dual), got %d", len(deps))
	}
	if err != nil {
		return nil, err
	}
	if o.attack != nil {
		if err := s.Inject(*o.attack); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// laneConfig resolves lane i's pipeline configuration from the options.
func (o *openConfig) laneConfig(i int) PipelineConfig {
	if o.laneSet[i] {
		return o.lane[i]
	}
	return o.base
}

// frontEnd attaches the victim front-end: the executing CPU model, or the
// trace-replay decoder when WithTraceInput was given.
func (s *Session) frontEnd(dep *Deployment, o *openConfig) error {
	if o.replay {
		s.front = newTraceFront(o.gap)
		return nil
	}
	prog, tcache, err := dep.victimProgram()
	if err != nil {
		return err
	}
	s.cpu = cpu.New(prog, cpu.Config{Mode: cpu.ModeRTAD, Sink: s.swap, Cache: tcache})
	return nil
}

func openSingle(dep *Deployment, o *openConfig) (*Session, error) {
	cfg := o.laneConfig(0)
	if o.telSet {
		cfg.Telemetry = o.tel
	}
	pipe, err := NewPipeline(dep, cfg)
	if err != nil {
		return nil, err
	}
	s := &Session{
		sched: sim.NewScheduler(),
		fan:   &fanSink{pipes: []*Pipeline{pipe}},
		lanes: []*lane{{dep: dep, pipe: pipe, cfg: cfg.withDefaults(dep.Kind)}},
		pool:  dep.Pool,
	}
	s.swap = &swapSink{next: s.fan}
	if err := s.frontEnd(dep, o); err != nil {
		return nil, err
	}
	s.observe(cfg.Telemetry)
	return s, nil
}

func openDual(elmDep, lstmDep *Deployment, o *openConfig) (*Session, error) {
	if elmDep.Kind != ModelELM || lstmDep.Kind != ModelLSTM {
		return nil, fmt.Errorf("core: dual deployment needs one ELM (lane 0) and one LSTM (lane 1)")
	}
	if elmDep.Profile.Name != lstmDep.Profile.Name {
		return nil, fmt.Errorf("core: deployments monitor different benchmarks (%s vs %s)",
			elmDep.Profile.Name, lstmDep.Profile.Name)
	}
	bus, err := axi.RTADTopology()
	if err != nil {
		return nil, err
	}
	shared := mcm.NewSharedEngine()

	elmCfg, lstmCfg := o.laneConfig(0), o.laneConfig(1)
	tel := elmCfg.Telemetry
	if tel == nil {
		tel = lstmCfg.Telemetry
	}
	if o.telSet {
		tel = o.tel
	}
	elmCfg = elmCfg.withDefaults(ModelELM)
	elmCfg.SharedEngine, elmCfg.Bus = shared, bus
	elmCfg.Telemetry = tel.Lane("elm")
	lstmCfg = lstmCfg.withDefaults(ModelLSTM)
	lstmCfg.SharedEngine, lstmCfg.Bus = shared, bus
	lstmCfg.Telemetry = tel.Lane("lstm")
	elmPipe, err := NewPipeline(elmDep, elmCfg)
	if err != nil {
		return nil, err
	}
	lstmPipe, err := NewPipeline(lstmDep, lstmCfg)
	if err != nil {
		return nil, err
	}
	s := &Session{
		sched: sim.NewScheduler(),
		fan:   &fanSink{pipes: []*Pipeline{elmPipe, lstmPipe}},
		lanes: []*lane{
			{dep: elmDep, pipe: elmPipe, cfg: elmCfg},
			{dep: lstmDep, pipe: lstmPipe, cfg: lstmCfg},
		},
		pool:   lstmDep.Pool,
		shared: shared,
	}
	s.swap = &swapSink{next: s.fan}
	if err := s.frontEnd(elmDep, o); err != nil {
		return nil, err
	}
	s.observe(tel)
	return s, nil
}

// Detect drives the session to completion as the batch experiments do:
// Step(instr), Drain, verify the armed attack fired, and return lane 0's
// DetectionResult. The attack must have been armed (WithAttack or Inject).
func (s *Session) Detect(instr int64) (*DetectionResult, error) {
	if _, err := s.Step(instr); err != nil {
		return nil, err
	}
	if err := s.Drain(); err != nil {
		return nil, err
	}
	if !s.AttackFired() {
		return nil, fmt.Errorf("core: attack never fired in %d instructions", instr)
	}
	res, err := s.Summary()
	if err != nil {
		return nil, fmt.Errorf("core: %w (all post-injection vectors dropped?)", err)
	}
	return res, nil
}

// DetectDual is Detect for dual sessions: both lanes' results plus the
// shared-engine contention horizon.
func (s *Session) DetectDual(instr int64) (*DualResult, error) {
	if _, err := s.Step(instr); err != nil {
		return nil, err
	}
	if err := s.Drain(); err != nil {
		return nil, err
	}
	if !s.AttackFired() {
		return nil, fmt.Errorf("core: attack never fired in %d instructions", instr)
	}
	out := &DualResult{SharedBusyAt: s.SharedBusyAt()}
	var err error
	out.ELM, err = s.LaneSummary(0)
	if err != nil {
		return nil, fmt.Errorf("core: dual ELM: %w", err)
	}
	out.LSTM, err = s.LaneSummary(1)
	if err != nil {
		return nil, fmt.Errorf("core: dual LSTM: %w", err)
	}
	return out, nil
}
