package core

import (
	"testing"

	"rtad/internal/cpu"
	"rtad/internal/obs"
)

// feedBranches drives n synthetic taken branches to target through the
// pipeline's cpu.Sink interface, advancing the cycle counter so every stage
// sees monotone time.
func feedBranches(p *Pipeline, cycle *int64, n int, target uint32, kind cpu.Kind) {
	for i := 0; i < n; i++ {
		*cycle += 20
		p.BranchRetired(cpu.BranchEvent{
			PC: 0x8000, Target: target, Kind: kind, Taken: true, Cycle: *cycle,
		})
	}
}

// TestFrontendSteadyStateZeroAlloc is the tentpole's allocation contract:
// once warm, a retired branch whose target the mapper filters — the common
// case, since the IGM table admits only the monitored addresses — must drive
// the whole encode → port → frame → deframe → decode → map path without a
// single heap allocation.
func TestFrontendSteadyStateZeroAlloc(t *testing.T) {
	dep := trainLSTMDeployment(t, "458.sjeng")
	p, err := NewPipeline(dep, PipelineConfig{CUs: 5, Stride: 256, Backend: "native-calibrated"})
	if err != nil {
		t.Fatal(err)
	}
	// 0xDEAD0000 is outside the program image, so the mapper filters it.
	const filtered = 0xDEAD0000
	if _, ok := dep.Mapper.Lookup(filtered); ok {
		t.Fatal("test address unexpectedly mapped")
	}
	var cycle int64
	// Warm-up: grow every stage buffer to steady state, cross several
	// periodic-sync boundaries (SyncEvery=256) and port drains.
	feedBranches(p, &cycle, 20000, filtered, cpu.KindDirect)

	allocs := testing.AllocsPerRun(200, func() {
		feedBranches(p, &cycle, 64, filtered, cpu.KindDirect)
	})
	if allocs > 0 {
		t.Fatalf("steady-state front-end allocates %.2f objects per 64 branches, want 0", allocs)
	}
	if p.Err() != nil {
		t.Fatal(p.Err())
	}
	if p.IGMStats().Filtered == 0 {
		t.Fatal("no branches reached the mapper — the path under test did not run")
	}
}

// TestTelemetryOffJudgmentPathAllocs pins the telemetry guard in drain: with
// Telemetry nil the judgment-recording block must be skipped entirely, so a
// judged vector allocates no telemetry objects (no counter work, no latency
// conversion, no trace-instant argument map). The test compares per-judgment
// allocations against an identical pipeline with a tracer attached, which
// must pay extra for exactly those objects.
func TestTelemetryOffJudgmentPathAllocs(t *testing.T) {
	dep := trainELMDeployment(t, "400.perlbench")

	build := func(tel *obs.Telemetry) *Pipeline {
		p, err := NewPipeline(dep, PipelineConfig{
			CUs: 5, Backend: "native-calibrated", Telemetry: tel,
		})
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	measure := func(p *Pipeline) float64 {
		var cycle int64
		// Syscall branches pass the ELM mapper, so each one (after the
		// window fills) emits a vector and produces a judgment.
		feedBranches(p, &cycle, 4096, cpu.SyscallTarget(3), cpu.KindSyscall)
		before := len(p.judged)
		const batch = 64
		allocs := testing.AllocsPerRun(50, func() {
			feedBranches(p, &cycle, batch, cpu.SyscallTarget(3), cpu.KindSyscall)
		})
		if p.Err() != nil {
			t.Fatal(p.Err())
		}
		if len(p.judged) <= before {
			t.Fatal("no judgments produced — the path under test did not run")
		}
		return allocs
	}

	off := build(nil)
	if off.obsJudgments != nil || off.latHist != nil || off.judgTrack != nil {
		t.Fatal("telemetry-off pipeline holds telemetry objects")
	}
	offAllocs := measure(off)

	tel := obs.New()
	on := build(tel)
	if on.judgTrack == nil {
		t.Fatal("tracer pipeline missing judgment track — comparison is vacuous")
	}
	onAllocs := measure(on)

	if offAllocs >= onAllocs {
		t.Fatalf("telemetry-off batch allocates %.1f objects, tracer-on %.1f: the guard is not skipping telemetry work",
			offAllocs, onAllocs)
	}
}
