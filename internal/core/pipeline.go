package core

import (
	"fmt"

	"rtad/internal/axi"
	"rtad/internal/cpu"
	"rtad/internal/gpu"
	"rtad/internal/igm"
	"rtad/internal/kernels"
	"rtad/internal/mcm"
	"rtad/internal/obs"
	"rtad/internal/ptm"
	"rtad/internal/sim"
	"rtad/internal/tpiu"
)

// PipelineConfig sizes the runtime system.
type PipelineConfig struct {
	// CUs is the compute-unit count: 1 models the original MIAOW (only a
	// single CU fits the FPGA), 5 the trimmed ML-MIAOW (§IV-A).
	CUs int
	// Stride is the IGM emission stride; 0 picks the deployment default
	// (every syscall window for ELM, DefaultLSTMStride accepted branches
	// for the LSTM — tuned so ML-MIAOW's service rate keeps up, §IV-C).
	Stride int
	// FIFODepth is the MCM vector FIFO capacity.
	FIFODepth int
	// DrainThreshold is the PTM formatter hold-back in bytes.
	DrainThreshold int
	// Backend selects the inference engine implementation
	// (kernels.BackendGPU, kernels.BackendNative,
	// kernels.BackendNativeCalibrated); empty picks the cycle-accurate
	// default. All backends produce bit-identical judgment streams — the
	// native ones just skip the per-inference GPU interpretation.
	Backend string
	// Calibration, when non-nil, is the shared cycle-cost table the native
	// backends replay WAIT_DONE timing from; passing one table to every
	// pipeline in a run amortises the one-time GPU calibration pass.
	Calibration *kernels.Calibration
	// EngineWrap, when non-nil, wraps the constructed inference backend
	// before the MCM sees it. This is the serving layer's interception
	// point: a cross-session batching coordinator substitutes an engine
	// whose Infer parks the vector in a shared micro-batch. Wrappers must
	// preserve the Backend contract — same judgments, cycles and errors as
	// the wrapped engine would produce on the same stream.
	EngineWrap func(kernels.Backend) kernels.Backend
	// SharedEngine and Bus support multi-model deployments: pass the same
	// token/interconnect to several pipelines so their MCMs contend for
	// one compute engine and one switch (see RunDualDetection).
	SharedEngine *mcm.SharedEngine
	Bus          *axi.Interconnect
	// Telemetry, when non-nil, threads the observability layer through
	// every stage of this pipeline (and, via Session, the scheduler and
	// victim CPU): stage spans and queue counters on the tracer, plus the
	// branch-retire -> judgment latency histogram — the Fig 8 quantity.
	// Nil (the default) keeps the whole chain a no-op and the run's
	// outputs bit-identical to an un-instrumented build.
	Telemetry *obs.Telemetry
	// StagedTrace selects the staged byte/word trace-delivery reference
	// path: every PTM byte is materialised as a TimedByte, pushed through
	// the TPIU formatter one call each, framed into TimedWords, deframed,
	// and PTM-re-decoded by the IGM. The default (false) uses the fused
	// fast path, which computes the identical delivery timestamps
	// analytically from the encoder's packet boundaries and the port's
	// release schedules — bit-identical judgments, stats, and stage
	// snapshots (see DESIGN §13), at a fraction of the per-branch cost.
	StagedTrace bool
}

// Default runtime strides.
const (
	DefaultELMStride = 1
	// DefaultLSTMStride paces general-branch vectors so the inference
	// engine's service rate keeps up on MIAOW for all but the densest
	// benchmarks (471.omnetpp overflows, as in Fig 8's discussion), and
	// comfortably on ML-MIAOW.
	DefaultLSTMStride = 3840
	// DefaultDrainThreshold gives the ~2–3 µs trace-visibility latency of
	// Fig 7's RTAD step (1) at typical branch rates.
	DefaultDrainThreshold = 64
)

func (c PipelineConfig) withDefaults(kind ModelKind) PipelineConfig {
	if c.CUs <= 0 {
		c.CUs = 5
	}
	if c.Stride <= 0 {
		if kind == ModelELM {
			c.Stride = DefaultELMStride
		} else {
			c.Stride = DefaultLSTMStride
		}
	}
	if c.DrainThreshold <= 0 {
		c.DrainThreshold = DefaultDrainThreshold
	}
	if c.Backend == "" {
		c.Backend = kernels.DefaultBackend
	}
	return c
}

// Judged is one vector's complete journey through the SoC.
type Judged struct {
	Vector igm.Vector
	Rec    mcm.Record
	// FinalRetire is the CPU retirement time of the branch that completed
	// the vector — the anchor of the paper's detection-latency metric.
	FinalRetire sim.Time
}

// JudgmentLatency is the Fig 8 quantity: retirement of the judged branch to
// judgment available at the MCM RX engine.
func (j Judged) JudgmentLatency() sim.Time { return j.Rec.Done - j.FinalRetire }

// Pipeline is the live RTAD system for one deployment.
type Pipeline struct {
	dep *Deployment
	cfg PipelineConfig

	dev    *gpu.Device
	engine mcm.Engine
	enc    *ptm.Encoder
	port   *ptm.Port
	fmtr   *tpiu.Formatter
	ig     *igm.IGM
	mod    *mcm.MCM

	// acceptedRetire records the retirement time of each mapper-accepted
	// taken branch; vectors index it by AcceptedIdx to recover FinalRetire.
	// It is pruned behind retireBase: acceptedRetire[i] belongs to accepted
	// ordinal retireBase+i+1, and ordinals at or below the highest consumed
	// AcceptedIdx are compacted away (amortised), so capacity stays bounded
	// by the stride gap instead of growing for the life of the session.
	acceptedRetire []sim.Time
	retireBase     int64
	judged         []Judged
	// pendIdx indexes the judged entries whose Rec.Pending is set: vectors
	// the MCM has fully timed but not yet judged (deferred judgment). They
	// resolve in one fused engine call at SettleJudgments.
	pendIdx []int
	err     error

	// Per-branch scratch buffers: BranchRetired and drain run once per
	// retired branch, so every stage hand-off reuses these instead of
	// allocating fresh slices (the Take()/Encode() compat paths do that).
	encBuf     []byte
	tbScratch  []ptm.TimedByte
	twScratch  []tpiu.TimedWord
	vecScratch []igm.Vector

	// Fused fast-path state (cfg.StagedTrace == false). The encoder reports
	// packet boundaries as byte offsets; pend holds them (with the class
	// resolved at retire time) until the frame carrying a packet's last
	// byte emits, at which point the packet is handed straight to the IGM.
	staged    bool
	markBuf   []ptm.PacketMark
	pend      []pendPkt
	pendHd    int
	encBase   int64 // trace bytes encoded so far (global stream offset)
	fedBytes  int64 // payload bytes delivered to the IGM via emitted frames
	feScratch []tpiu.FrameEmit

	// Judgment telemetry lives here rather than in Session.deliver so the
	// recording order follows the instruction stream, keeping trace output
	// invariant to how callers slice Step().
	latHist      *obs.Histogram
	obsJudgments *obs.Counter
	judgTrack    *obs.Track
}

// pendPkt is one encoded-but-undelivered trace packet on the fused fast
// path: it completes at any decoder once the byte just before end has been
// carried by an emitted frame.
type pendPkt struct {
	end      int64  // global stream offset just past the packet's last byte
	addr     uint32 // decoded branch target (branch packets only)
	class    int32  // mapper class, resolved once at retire time
	branch   bool
	accepted bool
}

// JudgmentLatencyBuckets are the histogram bounds for the Fig 8 latency, in
// microseconds: 0.5us .. ~4ms exponential, bracketing the paper's 4–54us
// range with room for queueing tails.
var JudgmentLatencyBuckets = obs.ExpBuckets(0.5, 2, 14)

// NewPipeline instantiates the SoC for a deployment.
func NewPipeline(dep *Deployment, cfg PipelineConfig) (*Pipeline, error) {
	cfg = cfg.withDefaults(dep.Kind)
	var (
		dev  *gpu.Device
		spec kernels.Spec
	)
	switch dep.Kind {
	case ModelELM:
		dev = gpu.NewDevice(kernels.ELMMemEnd, cfg.CUs)
		spec = kernels.Spec{Dev: dev, ELM: dep.ELM}
	case ModelLSTM:
		dev = gpu.NewDevice(kernels.LSTMMemEnd, cfg.CUs)
		spec = kernels.Spec{Dev: dev, LSTM: dep.LSTM}
	default:
		return nil, fmt.Errorf("core: unknown model kind")
	}
	spec.Calibration = cfg.Calibration
	engine, err := kernels.NewBackend(cfg.Backend, spec)
	if err != nil {
		return nil, err
	}
	if cfg.EngineWrap != nil {
		engine = cfg.EngineWrap(engine)
	}
	mod, err := mcm.New(mcm.Config{
		Engine:    engine,
		Translate: dep.Translate,
		FIFODepth: cfg.FIFODepth,
		Bus:       cfg.Bus,
		Shared:    cfg.SharedEngine,
		Telemetry: cfg.Telemetry,
	})
	if err != nil {
		return nil, err
	}
	dev.Observe(cfg.Telemetry)
	p := &Pipeline{
		dep:    dep,
		cfg:    cfg,
		dev:    dev,
		engine: engine,
		enc:    ptm.NewEncoder(ptm.Config{BranchBroadcast: true}),
		port:   ptm.NewPort(ptm.PortConfig{DrainThreshold: cfg.DrainThreshold, Telemetry: cfg.Telemetry}),
		fmtr:   tpiu.NewFormatter(tpiu.Config{Telemetry: cfg.Telemetry}),
		ig: igm.New(igm.Config{
			Mapper:    dep.Mapper,
			Window:    dep.Window(),
			Stride:    cfg.Stride,
			Telemetry: cfg.Telemetry,
		}),
		mod:    mod,
		staged: cfg.StagedTrace,
	}
	if tel := cfg.Telemetry; tel != nil {
		p.latHist = tel.Histogram("rtad_judgment_latency_us", JudgmentLatencyBuckets)
		p.obsJudgments = tel.Counter("rtad_judgments_total")
		p.judgTrack = tel.Track("fabric", "judgments")
	}
	return p, nil
}

// BranchRetired implements cpu.Sink: it drives the whole CoreSight → IGM →
// MCM path for one retired branch, advancing every stage's timing model.
func (p *Pipeline) BranchRetired(ev cpu.BranchEvent) int64 {
	if p.staged {
		return p.branchRetiredStaged(ev)
	}
	at := sim.CPUClock.Duration(ev.Cycle)
	// Single mapper lookup per taken branch: the class the IGM will need is
	// resolved here (on the wire-decoded even address — the encoding drops
	// bit 0) and threaded through the pending-packet queue.
	var (
		class    int32
		accepted bool
	)
	if ev.Taken {
		class, accepted = p.dep.Mapper.Lookup(ev.Target &^ 1)
		if ev.Target&1 != 0 {
			// Odd target: the retire-time record keys the raw address (the
			// staged path's semantics), which may resolve differently from
			// the wire-decoded one. Rare enough to afford a second lookup.
			if _, ok := p.dep.Mapper.Lookup(ev.Target); ok {
				p.acceptedRetire = append(p.acceptedRetire, at)
			}
		} else if accepted {
			p.acceptedRetire = append(p.acceptedRetire, at)
		}
	}
	p.encBuf, p.markBuf = p.enc.EncodeMarked(p.encBuf[:0], p.markBuf[:0], ev)
	p.queueMarks(class, accepted)
	rel, stall := p.port.PushCounted(at, len(p.encBuf))
	p.feedRelease(rel)
	p.drainVectors()
	return sim.CPUClock.CyclesCeil(stall)
}

// branchRetiredStaged is the byte/word reference path (cfg.StagedTrace).
func (p *Pipeline) branchRetiredStaged(ev cpu.BranchEvent) int64 {
	at := sim.CPUClock.Duration(ev.Cycle)
	if ev.Taken {
		if _, ok := p.dep.Mapper.Lookup(ev.Target); ok {
			p.acceptedRetire = append(p.acceptedRetire, at)
		}
	}
	p.encBuf = p.enc.EncodeInto(p.encBuf[:0], ev)
	stall := p.port.Push(at, p.encBuf)
	p.drain()
	return sim.CPUClock.CyclesCeil(stall)
}

// queueMarks appends the packets just encoded into encBuf to the pending
// queue at their global stream offsets. class/accepted apply to the branch
// packet the event may have produced (an event encodes at most one).
func (p *Pipeline) queueMarks(class int32, accepted bool) {
	for _, mk := range p.markBuf {
		p.pend = append(p.pend, pendPkt{
			end:      p.encBase + int64(mk.End),
			addr:     mk.Addr,
			class:    class,
			branch:   mk.Branch,
			accepted: accepted,
		})
	}
	p.encBase += int64(len(p.encBuf))
}

// feedRelease advances the formatter by one port release schedule and
// delivers every frame it completes.
func (p *Pipeline) feedRelease(rel ptm.Release) {
	if rel.Bytes == 0 {
		return
	}
	p.feScratch = p.fmtr.PushCounted(rel.Start, rel.Step, rel.Group, rel.Bytes, p.feScratch[:0])
	for _, fe := range p.feScratch {
		p.deliverFrame(fe)
	}
}

// deliverFrame hands every packet completed by one emitted frame to the
// IGM. Frames emit in stream order, so each pending packet is delivered by
// the frame carrying its last byte and shares that frame's TA decode time —
// exactly the staged Deframer/StreamDecoder behaviour.
func (p *Pipeline) deliverFrame(fe tpiu.FrameEmit) {
	decodeAt := p.ig.FrameArrived(fe.LastWordAt)
	p.fedBytes += int64(fe.Payload)
	for p.pendHd < len(p.pend) && p.pend[p.pendHd].end <= p.fedBytes {
		pk := p.pend[p.pendHd]
		p.pendHd++
		if pk.branch {
			p.ig.BranchDecoded(decodeAt, pk.addr, pk.class, pk.accepted)
		} else {
			p.ig.PacketDecoded()
		}
	}
	// Amortised compaction of the consumed prefix keeps pend bounded by the
	// drain threshold's worth of in-flight packets.
	if p.pendHd >= 64 && p.pendHd*2 >= len(p.pend) {
		n := copy(p.pend, p.pend[p.pendHd:])
		p.pend = p.pend[:n]
		p.pendHd = 0
	}
}

// drain moves whatever each stage has produced into the next stage (staged
// path). All hand-offs go through the TakeInto scratch buffers, so in
// steady state — in particular for every filtered or non-emitting branch —
// a drain pass allocates nothing.
func (p *Pipeline) drain() {
	p.tbScratch = p.port.TakeInto(p.tbScratch[:0])
	for _, tb := range p.tbScratch {
		p.fmtr.Push(tb.At, tb.B)
	}
	p.twScratch = p.fmtr.TakeInto(p.twScratch[:0])
	for _, w := range p.twScratch {
		p.ig.FeedWord(w)
	}
	p.drainVectors()
}

// drainVectors moves completed vectors into the MCM and records judgments;
// it is the shared tail of both trace paths.
func (p *Pipeline) drainVectors() {
	p.vecScratch = p.ig.TakeInto(p.vecScratch[:0])
	for _, v := range p.vecScratch {
		rec, ok, err := p.mod.Push(v)
		if err != nil {
			if p.err == nil {
				p.err = err
			}
			p.ig.Recycle(v.Classes)
			p.pruneRetire(v.AcceptedIdx)
			continue
		}
		if !ok {
			// Dropped at the MCM FIFO: the vector dies here, so its pooled
			// window goes back to the IGM.
			p.ig.Recycle(v.Classes)
			p.pruneRetire(v.AcceptedIdx)
			continue
		}
		idx := v.AcceptedIdx - 1 - p.retireBase
		var retire sim.Time
		if idx >= 0 && idx < int64(len(p.acceptedRetire)) {
			retire = p.acceptedRetire[idx]
		}
		p.pruneRetire(v.AcceptedIdx)
		// Judged retains the vector (and its Classes buffer), so it is not
		// recycled — ownership transfers to the judgment record.
		j := Judged{Vector: v, Rec: rec, FinalRetire: retire}
		p.judged = append(p.judged, j)
		if rec.Pending {
			p.pendIdx = append(p.pendIdx, len(p.judged)-1)
		}
		if p.obsJudgments != nil {
			p.obsJudgments.Inc()
			latUS := float64(j.JudgmentLatency()) / float64(sim.Microsecond)
			p.latHist.Observe(latUS)
			// Deferred records have no judgment yet; the track instant needs
			// it, but deferral is only enabled when tracing is off.
			if p.judgTrack != nil && !rec.Pending {
				p.judgTrack.Instant("judgment", int64(rec.Done), map[string]any{
					"seq": v.Seq, "latency_us": latUS, "anomaly": rec.Judgment.Anomaly,
				})
			}
		}
	}
}

// pruneRetire discards acceptedRetire entries for accepted ordinals at or
// below consumed. AcceptedIdx is strictly increasing across vectors, so a
// consumed ordinal is never read again — including ordinals that never
// produced a vector (stride skips) or whose vector the MCM dropped.
// Compaction is amortised: it runs only when the dead prefix is both large
// and the majority of the slice, bounding per-branch cost at O(1) and the
// slice length at roughly twice the live window.
func (p *Pipeline) pruneRetire(consumed int64) {
	dead := consumed - p.retireBase
	if dead > int64(len(p.acceptedRetire)) {
		dead = int64(len(p.acceptedRetire))
	}
	if dead < 1024 || dead*2 < int64(len(p.acceptedRetire)) {
		return
	}
	n := copy(p.acceptedRetire, p.acceptedRetire[dead:])
	p.acceptedRetire = p.acceptedRetire[:n]
	p.retireBase += dead
}

// Flush pushes out any residual trace data at time at (end of a window).
func (p *Pipeline) Flush(at sim.Time) {
	if p.staged {
		p.encBuf = p.enc.FlushInto(p.encBuf[:0])
		p.port.Push(at, p.encBuf)
		p.port.Flush(at)
		p.drain()
		p.fmtr.Flush(at)
		p.twScratch = p.fmtr.TakeInto(p.twScratch[:0])
		for _, w := range p.twScratch {
			p.ig.FeedWord(w)
		}
		p.drain()
		return
	}
	p.encBuf, p.markBuf = p.enc.FlushMarked(p.encBuf[:0], p.markBuf[:0])
	p.queueMarks(0, false)
	rel, _ := p.port.PushCounted(at, len(p.encBuf))
	p.feedRelease(rel)
	p.feedRelease(p.port.FlushCounted(at))
	// Drain at the same two points as the staged Flush (after the port
	// flush, and again after the formatter flush) so the IGM out-queue's
	// high-water mark groups vectors identically.
	p.drainVectors()
	if fe, ok := p.fmtr.FlushCounted(at); ok {
		p.deliverFrame(fe)
	}
	p.drainVectors()
}

// SettleJudgments resolves every deferred judgment in one fused engine
// call (a no-op when nothing is pending). Callers must settle before
// reading Judged entries appended since the last settle — Session.deliver
// does, so streaming consumers never see a pending record.
func (p *Pipeline) SettleJudgments() {
	if len(p.pendIdx) == 0 {
		return
	}
	js, err := p.mod.Settle()
	if err != nil {
		if p.err == nil {
			p.err = err
		}
		p.pendIdx = p.pendIdx[:0]
		return
	}
	for k, idx := range p.pendIdx {
		p.mod.Complete(&p.judged[idx].Rec, js[k])
	}
	p.pendIdx = p.pendIdx[:0]
}

// Judged returns every vector that reached a judgment, in order.
func (p *Pipeline) Judged() []Judged { return p.judged }

// Backend names the inference backend this pipeline runs on.
func (p *Pipeline) Backend() string { return p.engine.Name() }

// Err returns the first pipeline error, if any.
func (p *Pipeline) Err() error { return p.err }

// MCMStats exposes the module counters (drops, occupancy).
func (p *Pipeline) MCMStats() mcm.Stats { return p.mod.Stats() }

// IGMStats exposes the IGM counters.
func (p *Pipeline) IGMStats() igm.Stats { return p.ig.Stats() }

// AttackSpec configures the detection experiment's injection.
type AttackSpec struct {
	// TriggerBranch fires the attack after this many victim taken
	// transfers; 0 picks 40 % of the expected run's transfers.
	TriggerBranch int64
	// BurstLen is the injected legitimate-event count.
	BurstLen int
	// Mimicry replays a *contiguous* legitimate trace segment instead of
	// independently sampled events — the evasion technique the LSTM
	// branch models of [8] are designed to resist. Expect weaker margins:
	// only the splice boundaries look anomalous.
	Mimicry bool
	Seed    int64
}

// DetectionResult is one Fig 8 measurement.
type DetectionResult struct {
	Benchmark string
	Kind      ModelKind
	CUs       int

	InjectTime sim.Time
	// First is the first judged vector completed by a branch at or after
	// the injection: the judgment the paper times.
	First *Judged
	// Latency = First.JudgmentLatency().
	Latency sim.Time
	// MeanLatency averages the judgment latency over every post-injection
	// vector (queueing and contention effects show up here).
	MeanLatency sim.Time
	// IRQTime is when the anomaly interrupt reached the CPU (0 if the
	// detector never flagged within the run).
	IRQTime sim.Time
	// Detected reports whether any post-injection vector was flagged.
	Detected bool

	Judged  int
	Dropped int64
	MaxOcc  int

	// Stages is the end-of-run snapshot of the trace-delivery chain
	// (ptm/tpiu/igm/mcm), each stage reporting the uniform Len/MaxDepth/
	// Overflows triple.
	Stages []StageSnapshot
}

// withDefaults resolves the experiment defaults for a run of instr
// instructions.
func (a AttackSpec) withDefaults(instr int64) AttackSpec {
	if a.BurstLen <= 0 {
		// Long enough that several input vectors land fully inside the
		// attack even at the widest stride (~1 ms of hijacked execution).
		a.BurstLen = 32768
	}
	if a.TriggerBranch <= 0 {
		// Early enough that even branch-sparse benchmarks reach the
		// trigger and leave room for post-attack judgments.
		a.TriggerBranch = instr / 40
	}
	return a
}

// RunDetection trains nothing: it takes an existing deployment, runs the
// victim with the attack injected, and measures the judgment latency. It is
// a thin wrapper over a single streaming Session run to completion.
//
// Deprecated: use Open(Deployments{dep}, WithConfig(pcfg),
// WithAttack(aspec.Resolve(instr))) followed by Session.Detect(instr).
func RunDetection(dep *Deployment, pcfg PipelineConfig, aspec AttackSpec, instr int64) (*DetectionResult, error) {
	s, err := Open(Deployments{dep}, WithConfig(pcfg), WithAttack(aspec.Resolve(instr)))
	if err != nil {
		return nil, err
	}
	return s.Detect(instr)
}
