package core

import (
	"fmt"

	"rtad/internal/cpu"
	"rtad/internal/ptm"
	"rtad/internal/sim"
	"rtad/internal/workload"
)

// OverheadResult is one Fig 6 bar: the relative execution-time increase of
// a collection mode over the uninstrumented baseline.
type OverheadResult struct {
	Benchmark string
	Mode      cpu.Mode
	Baseline  int64 // cycles
	Cycles    int64
	Overhead  float64 // (Cycles-Baseline)/Baseline
}

// MeasureOverhead runs one benchmark under one collection mode and the
// baseline, both for instr instructions, and reports the slowdown.
func MeasureOverhead(p workload.Profile, mode cpu.Mode, instr int64) (OverheadResult, error) {
	prog, err := p.Generate()
	if err != nil {
		return OverheadResult{}, err
	}
	base := cpu.New(prog, cpu.Config{Mode: cpu.ModeBaseline})
	if _, err := base.Run(instr); err != nil {
		return OverheadResult{}, err
	}

	var sink cpu.Sink
	if mode == cpu.ModeRTAD {
		// The RTAD path's only host cost is the CoreSight port.
		sink = ptm.NewOverheadSink(
			ptm.Config{BranchBroadcast: true},
			ptm.PortConfig{DrainThreshold: DefaultDrainThreshold},
		)
	}
	run := cpu.New(prog, cpu.Config{Mode: mode, Sink: sink})
	if _, err := run.Run(instr); err != nil {
		return OverheadResult{}, err
	}
	res := OverheadResult{
		Benchmark: p.Name,
		Mode:      mode,
		Baseline:  base.Cycles(),
		Cycles:    run.Cycles(),
	}
	res.Overhead = float64(res.Cycles-res.Baseline) / float64(res.Baseline)
	return res, nil
}

// TransferBreakdown is one Fig 7 bar: the three stages between a branch
// retiring and its input vector being ready inside ML-MIAOW's memory.
type TransferBreakdown struct {
	// Read: branch data visible to the vectorising logic (for RTAD, PTM
	// buffering + TPIU framing + TA decode; for SW, the instrumented
	// read of the trace buffer).
	Read sim.Time
	// Vectorize: input-vector construction (IGM's two cycles vs the
	// software loop's table lookups).
	Vectorize sim.Time
	// Write: delivery into ML-MIAOW memory (MCM TX engine vs a CPU-driven
	// uncached AXI copy).
	Write sim.Time
}

// Total sums the stages.
func (t TransferBreakdown) Total() sim.Time { return t.Read + t.Vectorize + t.Write }

// Software-baseline cost model (Fig 7's "SW" bars), constants expressed in
// the units the work actually happens in. The host reads each trace word
// from the instrumentation buffer and unpacks it; vectorisation hashes each
// element against the relevant-branch table; the copy is a CPU-driven
// uncached write sequence across the NIC-301 into peripheral memory, paced
// by the 125 MHz fabric.
const (
	swReadCyclesPerElem = 16  // CPU cycles: load + unpack per element
	swReadFixedCycles   = 100 // syscall into the collector, buffer check
	swVecCyclesPerElem  = 110 // CPU cycles: hash, table probe, encode
	swVecFixedCycles    = 80
	swCopyFabricPerWord = 85 // uncached single-beat AXI write, incl. driver
	swCopyFabricFixed   = 80 // mapping + completion check
)

// SWTransfer models the pure-software delivery path for a vector of n
// elements.
func SWTransfer(n int) TransferBreakdown {
	return TransferBreakdown{
		Read:      sim.CPUClock.Duration(int64(n)*swReadCyclesPerElem + swReadFixedCycles),
		Vectorize: sim.CPUClock.Duration(int64(n)*swVecCyclesPerElem + swVecFixedCycles),
		Write:     sim.FabricClock.Duration(int64(n)*swCopyFabricPerWord + swCopyFabricFixed),
	}
}

// ivgLatency is IGM's mapper+encoder latency (2 fabric cycles = 16 ns).
const ivgCycles = 2

// MeasureRTADTransfer runs the deployment's pipeline on a normal window of
// instr instructions and averages the three stages across all judged
// vectors. The TX time is reconstructed from the MCM's published
// microarchitectural costs; the Read stage is whatever remains between
// retirement and vector emission, dominated by PTM hold-back buffering
// (Fig 7's discussion).
func MeasureRTADTransfer(dep *Deployment, pcfg PipelineConfig, instr int64) (TransferBreakdown, int, error) {
	// A session with no attack armed is exactly the clean-window pipeline
	// run the figure needs.
	s, err := Open(Deployments{dep}, WithConfig(pcfg))
	if err != nil {
		return TransferBreakdown{}, 0, err
	}
	if _, err := s.Step(instr); err != nil {
		return TransferBreakdown{}, 0, err
	}
	if err := s.Drain(); err != nil {
		return TransferBreakdown{}, 0, err
	}
	judged := s.Results()
	if len(judged) == 0 {
		return TransferBreakdown{}, 0, fmt.Errorf("core: no vectors produced in %d instructions", instr)
	}
	var sum TransferBreakdown
	ivg := sim.FabricClock.Duration(ivgCycles)
	for _, j := range judged {
		// Vector.At marks the vector leaving the IVG; subtract the IVG
		// stage to place the decode point.
		decode := j.Vector.At - ivg
		if decode < j.FinalRetire {
			decode = j.FinalRetire
		}
		sum.Read += decode - j.FinalRetire
		sum.Vectorize += ivg
		sum.Write += txDuration(dep.Window())
	}
	n := sim.Time(len(judged))
	return TransferBreakdown{
		Read:      sum.Read / n,
		Vectorize: sum.Vectorize / n,
		Write:     sum.Write / n,
	}, len(judged), nil
}

// txDuration reconstructs the MCM TX engine's write time for an n-word
// vector: n+2 single-beat writes (words + control/start registers) at the
// interconnect's per-write cost (decode 2 + accept 3 + beat 1 cycles),
// mirroring internal/mcm's use of the axi model.
func txDuration(n int) sim.Time {
	const perWrite = 6
	return sim.FabricClock.Duration(int64(n+2) * perWrite)
}
