package core

import (
	"fmt"
	"sync"
	"testing"

	"rtad/internal/cpu"
	"rtad/internal/kernels"
	"rtad/internal/sim"
	"rtad/internal/workload"
)

// Shared fixtures for the trace-path differential suite: training is the
// expensive part, so both deployments and the calibration table are built
// once per process and reused by every grid cell and fuzz iteration.
var (
	tpOnce  sync.Once
	tpELM   *Deployment
	tpLSTM  *Deployment
	tpCalib *kernels.Calibration
	tpErr   error
)

func tracePathFixtures(t testing.TB) (elm, lstm *Deployment, calib *kernels.Calibration) {
	t.Helper()
	tpOnce.Do(func() {
		build := func(bench string, kind ModelKind, instr int64) (*Deployment, error) {
			p, ok := workload.ByName(bench)
			if !ok {
				return nil, fmt.Errorf("unknown benchmark %s", bench)
			}
			cfg := DefaultTrainConfig(p, kind)
			cfg.TrainInstr = instr
			return Train(cfg)
		}
		tpELM, tpErr = build("400.perlbench", ModelELM, 12_000_000)
		if tpErr == nil {
			tpLSTM, tpErr = build("458.sjeng", ModelLSTM, 1_200_000)
		}
		tpCalib = kernels.NewCalibration()
	})
	if tpErr != nil {
		t.Fatal(tpErr)
	}
	return tpELM, tpLSTM, tpCalib
}

// runTracePathDiff replays one synthesized branch/flush op stream through a
// staged-reference pipeline and a fused fast-path pipeline in lockstep and
// fails on any observable divergence: per-event backpressure stalls, the
// full judged stream (vector timestamps, windows, MCM records, retirement
// anchors), stage statistics, and end-of-run stage snapshots.
//
// Each op byte encodes one action from the event vocabulary the encoder
// distinguishes: mapped/unmapped direct branches (address packets under
// branch-broadcast), not-taken waypoints (atoms), syscalls (exception
// packets), odd-bit targets (the wire drops address bit 0), and pipeline
// flushes; the top bits jitter the inter-event cycle gap.
func runTracePathDiff(t *testing.T, dep *Deployment, calib *kernels.Calibration, stride, threshold int, ops []byte) {
	t.Helper()
	build := func(stagedMode bool) *Pipeline {
		p, err := NewPipeline(dep, PipelineConfig{
			CUs: 5, Stride: stride, DrainThreshold: threshold,
			Backend: kernels.BackendNativeCalibrated, Calibration: calib,
			StagedTrace: stagedMode,
		})
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	sp, fp := build(true), build(false)
	addrs := dep.Mapper.Entries()
	var cycle int64
	for i, b := range ops {
		cycle += int64(3 + b>>5)
		op := b & 7
		var ev cpu.BranchEvent
		switch {
		case op == 6:
			at := sim.CPUClock.Duration(cycle)
			sp.Flush(at)
			fp.Flush(at)
			continue
		case op == 7 && len(addrs) > 0:
			ev = cpu.BranchEvent{PC: 0x8000, Target: addrs[int(b>>3)%len(addrs)].Addr | 1,
				Kind: cpu.KindIndirect, Taken: true, Cycle: cycle}
		case op == 5:
			ev = cpu.BranchEvent{PC: 0x8000, Target: cpu.SyscallTarget(int32(b>>3) & 15),
				Kind: cpu.KindSyscall, Taken: true, Cycle: cycle}
		case op == 4:
			ev = cpu.BranchEvent{PC: 0x8000, Target: 0x9000, Kind: cpu.KindDirect, Cycle: cycle}
		case op == 3 || len(addrs) == 0:
			ev = cpu.BranchEvent{PC: 0x8000, Target: 0xDEAD0000 | uint32(b)<<4,
				Kind: cpu.KindDirect, Taken: true, Cycle: cycle}
		default:
			ev = cpu.BranchEvent{PC: 0x8000, Target: addrs[int(b>>3)%len(addrs)].Addr,
				Kind: cpu.KindDirect, Taken: true, Cycle: cycle}
		}
		s1 := sp.BranchRetired(ev)
		s2 := fp.BranchRetired(ev)
		if s1 != s2 {
			t.Fatalf("op %d: backpressure stall diverged: staged=%d fused=%d", i, s1, s2)
		}
		cycle += s1
	}
	at := sim.CPUClock.Duration(cycle + 64)
	sp.Flush(at)
	fp.Flush(at)
	sp.SettleJudgments()
	fp.SettleJudgments()
	comparePipelines(t, sp, fp)
}

// comparePipelines asserts full observable equality between the staged
// reference and the fused fast path.
func comparePipelines(t *testing.T, sp, fp *Pipeline) {
	t.Helper()
	if (sp.Err() == nil) != (fp.Err() == nil) {
		t.Fatalf("error divergence: staged=%v fused=%v", sp.Err(), fp.Err())
	}
	sj, fj := sp.Judged(), fp.Judged()
	if len(sj) != len(fj) {
		t.Fatalf("judged count diverged: staged=%d fused=%d", len(sj), len(fj))
	}
	for i := range sj {
		a, b := sj[i], fj[i]
		if a.Rec != b.Rec {
			t.Fatalf("judged[%d] record diverged:\nstaged %+v\nfused  %+v", i, a.Rec, b.Rec)
		}
		if a.FinalRetire != b.FinalRetire {
			t.Fatalf("judged[%d] FinalRetire diverged: staged=%d fused=%d", i, a.FinalRetire, b.FinalRetire)
		}
		av, bv := a.Vector, b.Vector
		if av.At != bv.At || av.Seq != bv.Seq || av.AcceptedIdx != bv.AcceptedIdx || av.Addr != bv.Addr {
			t.Fatalf("judged[%d] vector diverged:\nstaged %+v\nfused  %+v", i, av, bv)
		}
		if len(av.Classes) != len(bv.Classes) {
			t.Fatalf("judged[%d] window length diverged: %d vs %d", i, len(av.Classes), len(bv.Classes))
		}
		for k := range av.Classes {
			if av.Classes[k] != bv.Classes[k] {
				t.Fatalf("judged[%d] window[%d] diverged: %d vs %d", i, k, av.Classes[k], bv.Classes[k])
			}
		}
	}
	if s, f := sp.IGMStats(), fp.IGMStats(); s != f {
		t.Fatalf("IGM stats diverged:\nstaged %+v\nfused  %+v", s, f)
	}
	if s, f := sp.MCMStats(), fp.MCMStats(); s != f {
		t.Fatalf("MCM stats diverged:\nstaged %+v\nfused  %+v", s, f)
	}
	ss, fs := SnapshotStages(sp.Stages()), SnapshotStages(fp.Stages())
	for i := range ss {
		if ss[i] != fs[i] {
			t.Fatalf("stage %q snapshot diverged:\nstaged %+v\nfused  %+v", ss[i].Name, ss[i], fs[i])
		}
	}
}

// TestTracePathEquivalenceGrid is the deterministic flush-order/chunk-shape
// property check: for both deployments, every DrainThreshold in {1, 64,
// 256}, and both sparse and dense strides, a fixed pseudo-random op stream
// (including mid-stream flushes, filtered targets, atoms, syscalls, and
// odd-bit addresses) must drive the fused path to bit-identical output.
func TestTracePathEquivalenceGrid(t *testing.T) {
	elm, lstm, calib := tracePathFixtures(t)
	ops := make([]byte, 6000)
	x := uint32(0x2545F491)
	for i := range ops {
		// xorshift: deterministic, full byte coverage.
		x ^= x << 13
		x ^= x >> 17
		x ^= x << 5
		ops[i] = byte(x)
	}
	for _, tc := range []struct {
		name   string
		dep    *Deployment
		stride int
	}{
		{"elm-stride1", elm, 1},
		{"lstm-stride7", lstm, 7},
		{"lstm-stride256", lstm, 256},
	} {
		for _, threshold := range []int{1, 64, 256} {
			tc, threshold := tc, threshold
			t.Run(fmt.Sprintf("%s-thresh%d", tc.name, threshold), func(t *testing.T) {
				runTracePathDiff(t, tc.dep, calib, tc.stride, threshold, ops)
			})
		}
	}
}

// FuzzTracePathDifferential fuzzes the staged-vs-fused equivalence over
// random op streams and configuration draws. The committed corpus under
// testdata/fuzz covers the structural edge cases (threshold-1 ports, frame
// boundaries straddling packets, flush storms, odd addresses); `go test`
// replays it on every CI run.
func FuzzTracePathDifferential(f *testing.F) {
	f.Add([]byte{0, 0, 0, 1, 9, 17, 33, 4, 6, 2})
	f.Add([]byte{1, 1, 1, 255, 254, 253, 6, 6, 6, 0, 0, 0, 0, 0, 0, 0, 0})
	f.Add([]byte{0, 2, 2, 5, 13, 21, 29, 37, 45, 53, 61, 69, 77, 85, 93, 101})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 4 {
			return
		}
		elm, lstm, calib := tracePathFixtures(t)
		dep := lstm
		if data[0]&1 == 0 {
			dep = elm
		}
		strides := [...]int{1, 7, 256, 3840}
		thresholds := [...]int{1, 64, 256}
		stride := strides[int(data[1])%len(strides)]
		threshold := thresholds[int(data[2])%len(thresholds)]
		ops := data[3:]
		if len(ops) > 1<<16 {
			ops = ops[:1<<16]
		}
		runTracePathDiff(t, dep, calib, stride, threshold, ops)
	})
}

// TestAcceptedRetireBounded is the long-run pruning check: a pipeline that
// streams accepted branches forever must not grow the retirement-anchor
// slice without bound (it previously kept one entry per accepted branch for
// the life of the pipeline). FinalRetire integrity is pinned two ways: the
// staged and fused paths must agree entry for entry here, and the
// experiments-JSON byte-identity suite pins both against the pre-pruning
// recorded judgment streams.
func TestAcceptedRetireBounded(t *testing.T) {
	elm, _, calib := tracePathFixtures(t)
	build := func(stagedMode bool) *Pipeline {
		p, err := NewPipeline(elm, PipelineConfig{
			CUs: 5, Backend: kernels.BackendNativeCalibrated, Calibration: calib,
			StagedTrace: stagedMode,
		})
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	sp, fp := build(true), build(false)
	const branches = 300_000
	var cycle int64
	for i := 0; i < branches; i++ {
		cycle += 40
		ev := cpu.BranchEvent{PC: 0x8000, Target: cpu.SyscallTarget(int32(i) & 15),
			Kind: cpu.KindSyscall, Taken: true, Cycle: cycle}
		cycle += sp.BranchRetired(ev)
		fp.BranchRetired(ev)
	}
	at := sim.CPUClock.Duration(cycle + 64)
	sp.Flush(at)
	fp.Flush(at)
	sp.SettleJudgments()
	fp.SettleJudgments()
	if fp.IGMStats().Accepted < branches/2 {
		t.Fatalf("only %d accepted branches — the path under test did not run", fp.IGMStats().Accepted)
	}
	// The pruned ring must stay small relative to the accepted stream: the
	// live window is the stride gap plus compaction slack, far below the
	// 300k entries the unbounded slice would hold.
	if got := len(fp.acceptedRetire); got > 16384 {
		t.Fatalf("acceptedRetire holds %d entries after %d branches — pruning is not engaging", got, branches)
	}
	if fp.retireBase == 0 {
		t.Fatal("retireBase never advanced — pruning is not engaging")
	}
	comparePipelines(t, sp, fp)
}
