package core

import (
	"testing"

	"rtad/internal/cpu"
	"rtad/internal/kernels"
	"rtad/internal/ptm"
)

// captureStream records a benchmark run as the raw branch-broadcast PTM
// byte stream, the input of trace-replay sessions.
func captureStream(t *testing.T, bench string, instr int64) []byte {
	t.Helper()
	dep := trainLSTMDeployment(t, bench) // profile lookup is validated here
	prog, err := dep.Profile.Generate()
	if err != nil {
		t.Fatal(err)
	}
	enc := ptm.NewEncoder(ptm.Config{BranchBroadcast: true})
	var stream []byte
	c := cpu.New(prog, cpu.Config{Mode: cpu.ModeRTAD, Sink: cpu.SinkFunc(func(ev cpu.BranchEvent) int64 {
		stream = append(stream, enc.Encode(ev)...)
		return 0
	})})
	if _, err := c.Run(instr); err != nil {
		t.Fatal(err)
	}
	return append(stream, enc.Flush()...)
}

// TestOpenMatchesRunDetection: the options path must reproduce the classic
// batch wrapper bit for bit — same judgments, same detection summary.
func TestOpenMatchesRunDetection(t *testing.T) {
	dep := trainLSTMDeployment(t, "458.sjeng")
	const instr = 2_000_000
	spec := AttackSpec{BurstLen: 16384, Seed: 3}

	want, err := RunDetection(dep, PipelineConfig{CUs: 5}, spec, instr)
	if err != nil {
		t.Fatal(err)
	}
	s, err := Open(Deployments{dep},
		WithConfig(PipelineConfig{CUs: 5}),
		WithAttack(spec.Resolve(instr)))
	if err != nil {
		t.Fatal(err)
	}
	got, err := s.Detect(instr)
	if err != nil {
		t.Fatal(err)
	}
	if got.InjectTime != want.InjectTime || got.Latency != want.Latency ||
		got.MeanLatency != want.MeanLatency || got.IRQTime != want.IRQTime ||
		got.Judged != want.Judged || got.Dropped != want.Dropped ||
		got.Detected != want.Detected {
		t.Fatalf("Open path diverged from RunDetection:\n got %+v\nwant %+v", got, want)
	}
}

// TestOpenBackendOption: WithBackend routes every lane and stays
// bit-identical to the config-field spelling.
func TestOpenBackendOption(t *testing.T) {
	dep := trainLSTMDeployment(t, "458.sjeng")
	const instr = 2_000_000
	spec := AttackSpec{BurstLen: 16384, Seed: 3}
	run := func(opts ...Option) *DetectionResult {
		s, err := Open(Deployments{dep}, append(opts, WithAttack(spec.Resolve(instr)))...)
		if err != nil {
			t.Fatal(err)
		}
		res, err := s.Detect(instr)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	viaOption := run(WithConfig(PipelineConfig{CUs: 5}), WithBackend(kernels.BackendNative))
	viaField := run(WithConfig(PipelineConfig{CUs: 5, Backend: kernels.BackendNative}))
	if viaOption.Latency != viaField.Latency || viaOption.Judged != viaField.Judged {
		t.Fatalf("WithBackend diverged from PipelineConfig.Backend: %+v vs %+v", viaOption, viaField)
	}
}

// TestOpenRejectsBadDeployments covers the arity and dual-lane validation.
func TestOpenRejectsBadDeployments(t *testing.T) {
	dep := trainLSTMDeployment(t, "458.sjeng")
	if _, err := Open(Deployments{}); err == nil {
		t.Error("Open accepted zero deployments")
	}
	if _, err := Open(Deployments{dep, dep}); err == nil {
		t.Error("Open accepted LSTM in the ELM lane")
	}
	if _, err := Open(Deployments{dep}, WithAttack(AttackSpec{})); err == nil {
		t.Error("Open accepted an attack with no burst length")
	}
}

// TestFeedTraceChunkingInvariance: a replayed stream yields bit-identical
// judgments whether fed byte-by-byte or in one call — the property the
// serving layer's framing relies on.
func TestFeedTraceChunkingInvariance(t *testing.T) {
	dep := trainLSTMDeployment(t, "458.sjeng")
	stream := captureStream(t, "458.sjeng", 600_000)

	run := func(chunk int) []Judged {
		s, err := Open(Deployments{dep}, WithTraceInput(0))
		if err != nil {
			t.Fatal(err)
		}
		for off := 0; off < len(stream); off += chunk {
			end := off + chunk
			if end > len(stream) {
				end = len(stream)
			}
			if err := s.FeedTrace(stream[off:end]); err != nil {
				t.Fatal(err)
			}
		}
		if err := s.Drain(); err != nil {
			t.Fatal(err)
		}
		return s.Results()
	}
	whole := run(len(stream))
	byteAtATime := run(1)
	if len(whole) == 0 {
		t.Fatal("no judgments from replay; lengthen the capture")
	}
	if len(whole) != len(byteAtATime) {
		t.Fatalf("chunking changed judgment count: %d vs %d", len(whole), len(byteAtATime))
	}
	for i := range whole {
		a, b := whole[i], byteAtATime[i]
		if a.Vector.Seq != b.Vector.Seq || a.Rec.Done != b.Rec.Done ||
			a.FinalRetire != b.FinalRetire || a.Rec.Judgment != b.Rec.Judgment {
			t.Fatalf("judgment %d depends on chunking", i)
		}
	}
	bytes, events, decErrs := func() (int64, int64, int) {
		s, err := Open(Deployments{dep}, WithTraceInput(0))
		if err != nil {
			t.Fatal(err)
		}
		if err := s.FeedTrace(stream); err != nil {
			t.Fatal(err)
		}
		return s.ReplayStats()
	}()
	if bytes != int64(len(stream)) || events == 0 || decErrs != 0 {
		t.Fatalf("ReplayStats = (%d, %d, %d) for a %d-byte clean stream", bytes, events, decErrs, len(stream))
	}
}

// TestTraceInputFrontEndExclusivity: Step and FeedTrace belong to different
// front-ends and must reject each other's sessions.
func TestTraceInputFrontEndExclusivity(t *testing.T) {
	dep := trainLSTMDeployment(t, "458.sjeng")
	replay, err := Open(Deployments{dep}, WithTraceInput(0))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := replay.Step(1000); err == nil {
		t.Error("Step accepted a trace-input session")
	}
	live, err := Open(Deployments{dep})
	if err != nil {
		t.Fatal(err)
	}
	if err := live.FeedTrace([]byte{0x00}); err == nil {
		t.Error("FeedTrace accepted a live-CPU session")
	}
	if live.Instret() != 0 || replay.Instret() != 0 {
		t.Error("fresh sessions report nonzero instret")
	}
	if replay.Halted() {
		t.Error("trace-input session reports Halted")
	}
}

// TestReplayAttackInjection: the injector splices the burst into a replayed
// stream exactly as it does into a live run, and the summary works.
func TestReplayAttackInjection(t *testing.T) {
	dep := trainLSTMDeployment(t, "458.sjeng")
	stream := captureStream(t, "458.sjeng", 2_000_000)
	s, err := Open(Deployments{dep}, WithTraceInput(0),
		WithAttack(AttackSpec{TriggerBranch: 1000, BurstLen: 16384, Seed: 7}))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.FeedTrace(stream); err != nil {
		t.Fatal(err)
	}
	if err := s.Drain(); err != nil {
		t.Fatal(err)
	}
	if !s.AttackFired() {
		t.Fatal("attack never fired in the replayed stream")
	}
	res, err := s.Summary()
	if err != nil {
		t.Fatal(err)
	}
	if res.First == nil || res.Latency <= 0 {
		t.Fatalf("replay detection summary implausible: %+v", res)
	}
	if s.MCMStats().Accepted == 0 {
		t.Fatal("MCMStats reports nothing accepted")
	}
}

// countingEngine is a pass-through Backend wrapper counting Infer calls.
type countingEngine struct {
	kernels.Backend
	calls int
}

func (c *countingEngine) Infer(w []int32) (kernels.Judgment, int64, error) {
	c.calls++
	return c.Backend.Infer(w)
}

// TestOpenEngineWrap: WithEngineWrap intercepts every lane's Infer calls
// and a contract-preserving wrapper leaves the judgment stream untouched.
func TestOpenEngineWrap(t *testing.T) {
	dep := trainLSTMDeployment(t, "458.sjeng")
	stream := captureStream(t, "458.sjeng", 600_000)

	run := func(opts ...Option) []Judged {
		s, err := Open(Deployments{dep}, append([]Option{WithTraceInput(0)}, opts...)...)
		if err != nil {
			t.Fatal(err)
		}
		if err := s.FeedTrace(stream); err != nil {
			t.Fatal(err)
		}
		if err := s.Drain(); err != nil {
			t.Fatal(err)
		}
		return s.Results()
	}
	want := run()
	var wrapped *countingEngine
	got := run(WithEngineWrap(func(b kernels.Backend) kernels.Backend {
		wrapped = &countingEngine{Backend: b}
		return wrapped
	}))
	if wrapped == nil || wrapped.calls == 0 {
		t.Fatal("EngineWrap wrapper never saw an Infer call")
	}
	if len(got) != len(want) {
		t.Fatalf("wrapped session judged %d vectors, unwrapped %d", len(got), len(want))
	}
	for i := range got {
		if got[i].Rec.Judgment != want[i].Rec.Judgment || got[i].Rec.Done != want[i].Rec.Done {
			t.Fatalf("judgment %d diverged under EngineWrap: %+v vs %+v", i, got[i].Rec, want[i].Rec)
		}
	}
	if wrapped.calls != len(got) {
		t.Fatalf("wrapper saw %d Infer calls for %d judgments", wrapped.calls, len(got))
	}
}
