package core

import (
	"fmt"

	"rtad/internal/cpu"
	"rtad/internal/ptm"
)

// DefaultReplayGap is the synthesized inter-branch pacing of trace-replay
// sessions, in CPU cycles per branch event. Taken branches retire every
// handful of cycles on the in-order host model; 8 cycles keeps the replayed
// stream inside the trace path's sustainable bandwidth, matching the
// attack injector's default gadget-chain spacing.
const DefaultReplayGap = 8

// traceFront is the trace-replay front-end: where a live session's victim
// CPU retires branches into the sink chain, a replay session re-synthesises
// retirements from a raw PTM byte stream (branch-broadcast capture, the
// format cmd/tracegen and internal/tracefile carry). The stream has no
// timestamps — CoreSight timing packets are optional and the RTAD capture
// omits them — so retirement times are synthesized on a fixed pacing: each
// branch event advances the replay clock by gap cycles plus whatever
// backpressure stall the trace path reports, exactly as the stall would
// have held back a live CPU.
type traceFront struct {
	dec   *ptm.StreamDecoder
	gap   int64
	cycle int64 // synthesized CPU cycle of the next retirement
	seq   int64
	// events counts synthesized branch retirements; bytes counts stream
	// bytes consumed.
	events int64
	bytes  int64
}

func newTraceFront(gap int64) *traceFront {
	if gap <= 0 {
		gap = DefaultReplayGap
	}
	return &traceFront{dec: ptm.NewStreamDecoder(), gap: gap}
}

// ReplayStats reports a trace-replay session's progress: stream bytes
// consumed, branch events synthesized, and PTM protocol errors the decoder
// recovered from (it resynchronises at the next a-sync, like the hardware).
func (s *Session) ReplayStats() (bytes, events int64, decodeErrors int) {
	if s.front == nil {
		return 0, 0, 0
	}
	return s.front.bytes, s.front.events, s.front.dec.Errors
}

// FeedTrace pushes raw PTM trace bytes through the session. Only sessions
// opened with WithTraceInput accept it; Step is the live-CPU counterpart
// and the two front-ends are mutually exclusive. Chunking is free: feeding
// a stream byte-by-byte or in one call yields bit-identical judgments,
// because every synthesized time depends only on the decoded event sequence.
// Judgments completed so far are delivered to Results after each call.
func (s *Session) FeedTrace(data []byte) error {
	if s.front == nil {
		return fmt.Errorf("core: session has a live CPU front-end (open with WithTraceInput to feed traces)")
	}
	if s.drained {
		return fmt.Errorf("core: session already drained")
	}
	if s.err != nil {
		return s.err
	}
	f := s.front
	for _, b := range data {
		f.bytes++
		pkt, ok := f.dec.FeedByte(b)
		if !ok || pkt.Type != ptm.PktBranch {
			// Atoms/i-sync/a-sync packets carry no broadcast-mode branch
			// events; the IGM's own decoder sees them again after
			// re-encoding, so nothing is lost by skipping them here.
			continue
		}
		kind := cpu.KindDirect
		if pkt.Exc {
			kind = pkt.Kind
		}
		ev := cpu.BranchEvent{
			Seq:    f.seq,
			Cycle:  f.cycle,
			Target: pkt.Addr,
			Kind:   kind,
			Taken:  true,
		}
		f.seq++
		f.events++
		stall := s.swap.BranchRetired(ev)
		f.cycle += f.gap + stall
	}
	s.deliver()
	s.sample()
	return s.err
}

// frontCycles is the victim-time cycle count regardless of front-end: the
// CPU's elapsed cycles, or the replay clock.
func (s *Session) frontCycles() int64 {
	if s.front != nil {
		return s.front.cycle
	}
	return s.cpu.Cycles()
}
