package core

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"rtad/internal/obs"
)

// TestTelemetryObservationOnly checks the zero-perturbation contract: the
// same detection run with and without a telemetry bundle produces identical
// DetectionResults, and the instrumented run fills the Fig 8 judgment
// latency histogram.
func TestTelemetryObservationOnly(t *testing.T) {
	dep := trainLSTMDeployment(t, "458.sjeng")
	aspec := AttackSpec{Seed: 7}
	const instr = 1_500_000

	plain, err := RunDetection(dep, PipelineConfig{CUs: 5, Stride: 512}, aspec, instr)
	if err != nil {
		t.Fatal(err)
	}
	tel := obs.New()
	observed, err := RunDetection(dep, PipelineConfig{CUs: 5, Stride: 512, Telemetry: tel}, aspec, instr)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plain, observed) {
		t.Errorf("telemetry perturbed the run:\nplain    %+v\nobserved %+v", plain, observed)
	}

	h := tel.Reg.Histogram("rtad_judgment_latency_us", JudgmentLatencyBuckets)
	if h.Count() == 0 {
		t.Fatal("judgment latency histogram is empty after an instrumented run")
	}
	if got := tel.Reg.Counter("rtad_judgments_total").Value(); got != h.Count() {
		t.Errorf("judgments counter %d != histogram count %d", got, h.Count())
	}
	if tel.Tracer.Events() == 0 {
		t.Fatal("no trace events recorded")
	}
	var buf bytes.Buffer
	if err := tel.Reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"rtad_judgment_latency_us_bucket", "rtad_ptm_bytes_total",
		"rtad_tpiu_frames_total", "rtad_igm_vectors_total",
		"rtad_mcm_accepted_total", "rtad_gpu_dispatches_total",
		"rtad_cpu_cycles", "rtad_sim_events_total",
	} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("exposition missing %s", want)
		}
	}
}

// TestTraceStepSlicingInvariance pins the tracer design rule: every trace
// event is anchored on a sim time produced by the stages themselves, never
// on a Step() boundary, so the exported trace bytes are identical however
// the caller slices the run. Final metric values must agree too.
func TestTraceStepSlicingInvariance(t *testing.T) {
	dep := trainLSTMDeployment(t, "458.sjeng")
	aspec := AttackSpec{TriggerBranch: 40_000, BurstLen: 32768, Seed: 7}
	const instr = 1_500_000

	run := func(chunks []int64) (trace, metrics []byte) {
		t.Helper()
		tel := obs.New()
		s, err := NewSession(dep, PipelineConfig{CUs: 5, Stride: 512, Telemetry: tel})
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Inject(aspec); err != nil {
			t.Fatal(err)
		}
		for _, c := range chunks {
			if _, err := s.Step(c); err != nil {
				t.Fatal(err)
			}
		}
		if err := s.Drain(); err != nil {
			t.Fatal(err)
		}
		if !s.AttackFired() {
			t.Fatal("attack never fired")
		}
		var tb, mb bytes.Buffer
		if err := tel.Tracer.WriteJSON(&tb); err != nil {
			t.Fatal(err)
		}
		if err := tel.Reg.WritePrometheus(&mb); err != nil {
			t.Fatal(err)
		}
		return tb.Bytes(), mb.Bytes()
	}

	wholeTrace, wholeMetrics := run([]int64{instr})
	chunkTrace, chunkMetrics := run([]int64{123_457, 300_001, 1, instr - 123_457 - 300_001 - 1})

	if !bytes.Equal(wholeTrace, chunkTrace) {
		t.Errorf("trace bytes depend on Step slicing (%d vs %d bytes)",
			len(wholeTrace), len(chunkTrace))
	}
	if !bytes.Equal(wholeMetrics, chunkMetrics) {
		t.Errorf("final metrics depend on Step slicing:\n--- whole\n%s\n--- chunked\n%s",
			wholeMetrics, chunkMetrics)
	}
	if len(wholeTrace) == 0 || !bytes.Contains(wholeTrace, []byte("attack_injected")) {
		t.Error("trace missing the attack_injected instant")
	}
}

// TestFleetTelemetryWorkerInvariance checks the serial-merge contract: the
// fleet's aggregate registry is bit-identical at any worker count (the
// rtad_fleet_workers gauge line is the one legitimate difference).
func TestFleetTelemetryWorkerInvariance(t *testing.T) {
	dep := trainLSTMDeployment(t, "458.sjeng")
	jobs := []Job{
		{Dep: dep, Config: PipelineConfig{CUs: 5, Stride: 512}, Attack: AttackSpec{Seed: 7}, Instr: 1_500_000},
		{Dep: dep, Config: PipelineConfig{CUs: 1, Stride: 512}, Attack: AttackSpec{Seed: 9}, Instr: 1_500_000},
	}

	expose := func(workers int) string {
		t.Helper()
		tel := obs.NewMetricsOnly()
		f := NewFleet(workers)
		f.Observe(tel)
		if _, err := f.Detect(jobs); err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := tel.Reg.WritePrometheus(&buf); err != nil {
			t.Fatal(err)
		}
		var keep []string
		for _, line := range strings.Split(buf.String(), "\n") {
			if strings.Contains(line, "rtad_fleet_workers") {
				continue
			}
			keep = append(keep, line)
		}
		return strings.Join(keep, "\n")
	}

	serial := expose(1)
	wide := expose(4)
	if serial != wide {
		t.Errorf("fleet metrics depend on worker count:\n--- 1 worker\n%s\n--- 4 workers\n%s", serial, wide)
	}
	if !strings.Contains(serial, "rtad_judgment_latency_us_bucket") {
		t.Error("fleet aggregate missing the judgment latency histogram")
	}
	if !strings.Contains(serial, "rtad_fleet_jobs_done_total 2") {
		t.Error("fleet aggregate missing job completion counter")
	}
}

// TestDualSessionLaneTelemetry checks the per-lane namespacing: a dual
// ELM+LSTM session registers lane-suffixed metrics and lane-prefixed tracks
// over one shared registry and tracer.
func TestDualSessionLaneTelemetry(t *testing.T) {
	elm := trainELMDeployment(t, "458.sjeng")
	lstm := trainLSTMDeployment(t, "458.sjeng")
	tel := obs.New()
	s, err := NewDualSession(elm, lstm, PipelineConfig{CUs: 5, Telemetry: tel})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Step(200_000); err != nil {
		t.Fatal(err)
	}
	if err := s.Drain(); err != nil {
		t.Fatal(err)
	}

	snap := tel.Reg.Snapshot()
	for _, want := range []string{"rtad_judgment_latency_us_elm", "rtad_judgment_latency_us_lstm"} {
		if _, ok := snap.Histograms[want]; !ok {
			t.Errorf("registry missing per-lane histogram %s", want)
		}
	}
	tracks := strings.Join(tel.Tracer.TrackNames(), " ")
	for _, want := range []string{"fabric/elm/ptm", "fabric/lstm/ptm", "fabric/elm/mcm", "fabric/lstm/mcm"} {
		if !strings.Contains(tracks, want) {
			t.Errorf("tracer missing lane track %s (have: %s)", want, tracks)
		}
	}
}
