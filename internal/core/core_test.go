package core

import (
	"testing"

	"rtad/internal/cpu"
	"rtad/internal/sim"
	"rtad/internal/workload"
)

// trainLSTMDeployment builds a small LSTM deployment for tests (reduced
// budgets keep the suite fast).
func trainLSTMDeployment(t *testing.T, bench string) *Deployment {
	t.Helper()
	p, ok := workload.ByName(bench)
	if !ok {
		t.Fatalf("unknown benchmark %s", bench)
	}
	cfg := DefaultTrainConfig(p, ModelLSTM)
	cfg.TrainInstr = 1_200_000
	dep, err := Train(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return dep
}

func trainELMDeployment(t *testing.T, bench string) *Deployment {
	t.Helper()
	p, ok := workload.ByName(bench)
	if !ok {
		t.Fatalf("unknown benchmark %s", bench)
	}
	cfg := DefaultTrainConfig(p, ModelELM)
	cfg.TrainInstr = 12_000_000
	dep, err := Train(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return dep
}

func TestTrainLSTMDeployment(t *testing.T) {
	dep := trainLSTMDeployment(t, "458.sjeng")
	if dep.LSTM == nil || dep.Mapper == nil {
		t.Fatal("incomplete deployment")
	}
	if dep.TrainWindows < 100 {
		t.Errorf("only %d training windows", dep.TrainWindows)
	}
	if dep.Mapper.Size() == 0 || dep.Mapper.Size() > 64 {
		t.Errorf("vocabulary size %d outside (0,64]", dep.Mapper.Size())
	}
	if dep.LSTM.Threshold <= 0 {
		t.Errorf("threshold %g not calibrated", dep.LSTM.Threshold)
	}
	if len(dep.Pool) == 0 {
		t.Error("no legitimate-event pool recorded")
	}
}

func TestTrainELMDeployment(t *testing.T) {
	dep := trainELMDeployment(t, "400.perlbench")
	if dep.ELM == nil {
		t.Fatal("no ELM model")
	}
	if dep.TrainWindows < 80 {
		t.Errorf("only %d training windows (need >= hidden width)", dep.TrainWindows)
	}
	// The ELM path maps syscalls only: translation must land in [0,32).
	if dep.Translate == nil {
		t.Fatal("no protocol translation configured")
	}
	if got := dep.Translate(1024 + 5); got != 5 {
		t.Errorf("Translate(syscall class 5) = %d", got)
	}
}

func TestLSTMPipelineEndToEnd(t *testing.T) {
	dep := trainLSTMDeployment(t, "458.sjeng")
	pipe, err := NewPipeline(dep, PipelineConfig{CUs: 5, Stride: 256})
	if err != nil {
		t.Fatal(err)
	}
	prog, _ := dep.Profile.Generate()
	c := cpu.New(prog, cpu.Config{Mode: cpu.ModeRTAD, Sink: pipe})
	if _, err := c.Run(800_000); err != nil {
		t.Fatal(err)
	}
	pipe.Flush(sim.CPUClock.Duration(c.Cycles()))
	if err := pipe.Err(); err != nil {
		t.Fatal(err)
	}
	judged := pipe.Judged()
	if len(judged) < 5 {
		t.Fatalf("only %d judged vectors", len(judged))
	}
	if pipe.IGMStats().DecErrors != 0 {
		t.Errorf("PTM decode errors: %d", pipe.IGMStats().DecErrors)
	}
	for i, j := range judged {
		if j.FinalRetire == 0 {
			t.Fatalf("vector %d missing retirement anchor", i)
		}
		if j.Rec.Done <= j.FinalRetire {
			t.Fatalf("vector %d judged before its branch retired", i)
		}
		lat := j.JudgmentLatency()
		if lat <= 0 || lat > 10*sim.Millisecond {
			t.Fatalf("vector %d latency %v implausible", i, lat)
		}
	}
}

func TestDetectionLatencyELMConstantAndFasterOnMLMIAOW(t *testing.T) {
	dep := trainELMDeployment(t, "400.perlbench")
	run := func(cus int) *DetectionResult {
		res, err := RunDetection(dep, PipelineConfig{CUs: cus},
			AttackSpec{BurstLen: 4096, Seed: 1}, 4_000_000)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	miaow := run(1)
	mlmiaow := run(5)
	if miaow.Latency <= mlmiaow.Latency {
		t.Errorf("MIAOW latency %v not above ML-MIAOW %v", miaow.Latency, mlmiaow.Latency)
	}
	ratio := float64(miaow.Latency) / float64(mlmiaow.Latency)
	if ratio < 1.5 || ratio > 6 {
		t.Errorf("ELM speedup %.2fx outside plausible band (paper 3.29x)", ratio)
	}
	// ELM judgments are effectively constant-time: syscall spacing far
	// exceeds service time, so there is no queueing component.
	if mlmiaow.Dropped != 0 {
		t.Errorf("ELM path dropped %d vectors", mlmiaow.Dropped)
	}
}

func TestDetectionLSTMQueueingAndOverflow(t *testing.T) {
	dep := trainLSTMDeployment(t, "471.omnetpp")
	// Branch-dense omnetpp with a deliberately hot stride: the 1-CU MIAOW
	// engine must overflow the MCM FIFO; the 5-CU ML-MIAOW should drop
	// far less (Fig 8's discussion).
	pcfgM := PipelineConfig{CUs: 1, Stride: 192, FIFODepth: 8}
	pcfgML := PipelineConfig{CUs: 5, Stride: 192, FIFODepth: 8}
	miaow, err := RunDetection(dep, pcfgM, AttackSpec{BurstLen: 6000, Seed: 2}, 2_500_000)
	if err != nil {
		t.Fatal(err)
	}
	mlmiaow, err := RunDetection(dep, pcfgML, AttackSpec{BurstLen: 6000, Seed: 2}, 2_500_000)
	if err != nil {
		t.Fatal(err)
	}
	if miaow.Dropped == 0 {
		t.Error("MIAOW under omnetpp pressure should overflow the MCM FIFO")
	}
	if mlmiaow.Dropped >= miaow.Dropped {
		t.Errorf("ML-MIAOW drops (%d) not below MIAOW drops (%d)",
			mlmiaow.Dropped, miaow.Dropped)
	}
	if miaow.Latency <= mlmiaow.Latency {
		t.Errorf("MIAOW latency %v should exceed ML-MIAOW %v", miaow.Latency, mlmiaow.Latency)
	}
}

func TestOverheadOrderingAcrossModes(t *testing.T) {
	p, _ := workload.ByName("403.gcc")
	const instr = 400_000
	get := func(mode cpu.Mode) float64 {
		res, err := MeasureOverhead(p, mode, instr)
		if err != nil {
			t.Fatal(err)
		}
		return res.Overhead
	}
	rtad := get(cpu.ModeRTAD)
	sys := get(cpu.ModeSWSys)
	fn := get(cpu.ModeSWFunc)
	all := get(cpu.ModeSWAll)
	if !(rtad < sys && sys < fn && fn < all) {
		t.Errorf("Fig 6 ordering broken: rtad=%.4f sys=%.4f func=%.4f all=%.4f",
			rtad, sys, fn, all)
	}
	if rtad > 0.005 {
		t.Errorf("RTAD overhead %.4f%% not negligible", rtad*100)
	}
	if all < 0.10 {
		t.Errorf("SW_ALL overhead %.1f%% implausibly low", all*100)
	}
}

func TestTransferLatencyShape(t *testing.T) {
	dep := trainLSTMDeployment(t, "401.bzip2")
	rtad, n, err := MeasureRTADTransfer(dep, PipelineConfig{CUs: 5, Stride: 64}, 600_000)
	if err != nil {
		t.Fatal(err)
	}
	if n < 10 {
		t.Fatalf("only %d vectors measured", n)
	}
	sw := SWTransfer(dep.Window())

	// Fig 7 shape: RTAD total well below SW total; the SW copy step
	// dominates SW; the RTAD read (PTM buffering) dominates RTAD; the
	// RTAD vectorise step is exactly 2 fabric cycles.
	if rtad.Total() >= sw.Total() {
		t.Errorf("RTAD transfer %v not below SW %v", rtad.Total(), sw.Total())
	}
	if !(sw.Write > sw.Vectorize && sw.Vectorize > sw.Read) {
		t.Errorf("SW stage ordering wrong: %+v", sw)
	}
	if rtad.Vectorize != 16*sim.Nanosecond {
		t.Errorf("RTAD vectorise = %v, want 16ns", rtad.Vectorize)
	}
	if !(rtad.Read > rtad.Write && rtad.Write > rtad.Vectorize) {
		t.Errorf("RTAD stage ordering wrong: %+v", rtad)
	}
	// Magnitudes within a factor of a few of the paper's numbers.
	if sw.Total() < 10*sim.Microsecond || sw.Total() > 60*sim.Microsecond {
		t.Errorf("SW total %v far from the paper's 20us", sw.Total())
	}
	if rtad.Total() > 15*sim.Microsecond {
		t.Errorf("RTAD total %v far above the paper's 3.62us", rtad.Total())
	}
}

func TestModelKindString(t *testing.T) {
	if ModelELM.String() != "ELM" || ModelLSTM.String() != "LSTM" {
		t.Error("kind names wrong")
	}
}

func TestDualModelDeployment(t *testing.T) {
	elm := trainELMDeployment(t, "400.perlbench")
	lstm := func() *Deployment {
		p, _ := workload.ByName("400.perlbench")
		cfg := DefaultTrainConfig(p, ModelLSTM)
		cfg.TrainInstr = 1_200_000
		dep, err := Train(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return dep
	}()

	dual, err := RunDualDetection(elm, lstm, PipelineConfig{CUs: 5},
		AttackSpec{Seed: 5}, 8_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if dual.ELM.First == nil || dual.LSTM.First == nil {
		t.Fatal("one model produced no judgment")
	}
	// Both judged the same attack window.
	if dual.ELM.InjectTime != dual.LSTM.InjectTime {
		t.Error("models saw different injection times")
	}
	// Contention: the LSTM's judgment latency under sharing must be at
	// least its solo latency (the ELM's syscall windows steal engine time).
	solo, err := RunDetection(lstm, PipelineConfig{CUs: 5}, AttackSpec{Seed: 5}, 8_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if dual.LSTM.Latency < solo.Latency {
		t.Errorf("shared-engine LSTM latency %v below solo %v", dual.LSTM.Latency, solo.Latency)
	}
	// Mismatched deployments are rejected.
	if _, err := RunDualDetection(lstm, lstm, PipelineConfig{}, AttackSpec{}, 1000); err == nil {
		t.Error("two LSTMs accepted as a dual deployment")
	}
}

// TestPipelineCausalInvariants replays a full detection run's events
// through the discrete-event scheduler and checks the SoC's causal
// ordering: engine service is serialised (Started/Done monotone), every
// judgment postdates its branch retirement and its vector emission, and
// IRQs delivered through the scheduler arrive in timestamp order.
func TestPipelineCausalInvariants(t *testing.T) {
	dep := trainLSTMDeployment(t, "445.gobmk")
	res, err := RunDetection(dep, PipelineConfig{CUs: 5, Stride: 512},
		AttackSpec{Seed: 6}, 1_500_000)
	if err != nil {
		t.Fatal(err)
	}
	_ = res

	pipe, err := NewPipeline(dep, PipelineConfig{CUs: 5, Stride: 512})
	if err != nil {
		t.Fatal(err)
	}
	prog, _ := dep.Profile.Generate()
	c := cpu.New(prog, cpu.Config{Mode: cpu.ModeRTAD, Sink: pipe})
	if _, err := c.Run(1_500_000); err != nil {
		t.Fatal(err)
	}
	pipe.Flush(sim.CPUClock.Duration(c.Cycles()))
	judged := pipe.Judged()
	if len(judged) < 10 {
		t.Fatalf("only %d judged vectors", len(judged))
	}

	sched := sim.NewScheduler()
	var delivered []sim.Time
	for i := 1; i < len(judged); i++ {
		prev, cur := judged[i-1], judged[i]
		if cur.Rec.Started < prev.Rec.Done {
			t.Fatalf("vector %d started (%v) before %d finished (%v): engine overlap",
				i, cur.Rec.Started, i-1, prev.Rec.Done)
		}
		if cur.Rec.Done <= cur.Vector.At || cur.Rec.Done <= cur.FinalRetire {
			t.Fatalf("vector %d judged before its inputs existed", i)
		}
	}
	for _, j := range judged {
		at := j.Rec.Done
		sched.At(at, func() { delivered = append(delivered, sched.Now()) })
	}
	sched.Run()
	if len(delivered) != len(judged) {
		t.Fatalf("scheduler delivered %d of %d events", len(delivered), len(judged))
	}
	for i := 1; i < len(delivered); i++ {
		if delivered[i] < delivered[i-1] {
			t.Fatal("scheduler delivery out of order")
		}
	}
}
