package core

import (
	"fmt"
	"runtime"
	"sync"
)

// Fleet runs independent detection sessions concurrently. Each session owns
// its scheduler, CPU and pipeline, so runs stay bit-deterministic no matter
// how they interleave; trained Deployments are read-only during inference
// and safely shared across every worker (the contract DESIGN.md §4 states
// and the -race fleet test enforces).
type Fleet struct {
	workers int
}

// NewFleet returns a fleet of the given width; workers <= 0 sizes it to
// runtime.GOMAXPROCS(0).
func NewFleet(workers int) *Fleet {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Fleet{workers: workers}
}

// Workers reports the pool width.
func (f *Fleet) Workers() int { return f.workers }

// Run executes fn(0..n-1) across the worker pool and returns the
// lowest-index error (every index runs regardless of other indices'
// failures, keeping error reporting deterministic under concurrency).
func (f *Fleet) Run(n int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	w := f.workers
	if w > n {
		w = n
	}
	errs := make([]error, n)
	idx := make(chan int)
	var wg sync.WaitGroup
	wg.Add(w)
	for k := 0; k < w; k++ {
		go func() {
			defer wg.Done()
			for i := range idx {
				errs[i] = fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		idx <- i
	}
	close(idx)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// Job is one detection run for Detect: a trained deployment (shared
// read-only across jobs), the pipeline sizing, the attack, and the
// instruction budget.
type Job struct {
	Dep    *Deployment
	Config PipelineConfig
	Attack AttackSpec
	Instr  int64
}

// Detect fans the jobs over the pool and returns results in job order.
func (f *Fleet) Detect(jobs []Job) ([]*DetectionResult, error) {
	out := make([]*DetectionResult, len(jobs))
	err := f.Run(len(jobs), func(i int) error {
		res, err := RunDetection(jobs[i].Dep, jobs[i].Config, jobs[i].Attack, jobs[i].Instr)
		if err != nil {
			return fmt.Errorf("core: fleet job %d (%s): %w", i, jobs[i].Dep.Profile.Name, err)
		}
		out[i] = res
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
