package core

import (
	"fmt"
	"runtime"
	"sync"

	"rtad/internal/obs"
)

// Fleet runs independent detection sessions concurrently. Each session owns
// its scheduler, CPU and pipeline, so runs stay bit-deterministic no matter
// how they interleave; trained Deployments are read-only during inference
// and safely shared across every worker (the contract DESIGN.md §4 states
// and the -race fleet test enforces).
type Fleet struct {
	workers int
	tel     *obs.Telemetry

	// The persistent submission path (Go/Wait). Workers start lazily on
	// the first Go and live until Close, so long-lived servers (rtadd) and
	// one-shot grids (cmd/experiments) share one pool implementation.
	mu   sync.Mutex
	jobs chan func()
	next int64 // submission index, for deterministic first-error reporting
	wg   sync.WaitGroup

	errMu  sync.Mutex
	err    error
	errSeq int64
}

// NewFleet returns a fleet of the given width; workers <= 0 sizes it to
// runtime.GOMAXPROCS(0).
func NewFleet(workers int) *Fleet {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Fleet{workers: workers}
}

// Workers reports the pool width.
func (f *Fleet) Workers() int { return f.workers }

// Observe attaches a telemetry bundle to the fleet. Detect then gives each
// job a private metrics-only registry and merges them into tel's registry
// serially in job order after the pool drains — counter and histogram totals
// are therefore bit-identical at any worker count. Per-job traces are not
// recorded (concurrent sessions would interleave one tracer); use a
// single-session run for tracing.
func (f *Fleet) Observe(tel *obs.Telemetry) { f.tel = tel }

// Go submits one job to the worker pool, starting the workers on first
// use. Jobs run concurrently up to the fleet width; a submission beyond
// width+queue blocks until a worker frees up — the natural admission
// queue for servers that bound in-flight work upstream (see
// internal/serve). Every submitted job runs regardless of other jobs'
// failures; the first error in *submission order* is reported by the next
// Wait, keeping error reporting deterministic under concurrency.
func (f *Fleet) Go(fn func() error) {
	f.mu.Lock()
	if f.jobs == nil {
		// Workers range over a captured local, not the f.jobs field: an
		// idle worker that never received a job has no happens-before edge
		// with a later Close, so a field read here would race its nil-ing.
		ch := make(chan func(), f.workers)
		f.jobs = ch
		for k := 0; k < f.workers; k++ {
			go func() {
				for job := range ch {
					job()
				}
			}()
		}
	}
	seq := f.next
	f.next++
	jobs := f.jobs
	f.mu.Unlock()

	f.wg.Add(1)
	jobs <- func() {
		defer f.wg.Done()
		if err := fn(); err != nil {
			f.errMu.Lock()
			if f.err == nil || seq < f.errSeq {
				f.err, f.errSeq = err, seq
			}
			f.errMu.Unlock()
		}
	}
}

// Wait blocks until every job submitted so far has finished and returns
// the error of the earliest-submitted failing job (nil if all succeeded),
// clearing it for the next batch. One logical stream of work at a time:
// interleaving Go/Wait batches from multiple goroutines gives each Wait an
// arbitrary batch boundary, though every job still runs exactly once.
func (f *Fleet) Wait() error {
	f.wg.Wait()
	f.errMu.Lock()
	err := f.err
	f.err = nil
	f.errMu.Unlock()
	return err
}

// Close stops the worker goroutines after in-flight jobs finish. Go after
// Close restarts the pool; a nil or never-used fleet is a no-op.
func (f *Fleet) Close() {
	f.mu.Lock()
	jobs := f.jobs
	f.jobs = nil
	f.mu.Unlock()
	if jobs != nil {
		close(jobs)
	}
}

// Run executes fn(0..n-1) across the worker pool and returns the
// lowest-index error (every index runs regardless of other indices'
// failures, keeping error reporting deterministic under concurrency). It
// is Go/Wait over the index range.
func (f *Fleet) Run(n int, fn func(i int) error) error {
	for i := 0; i < n; i++ {
		i := i
		f.Go(func() error { return fn(i) })
	}
	return f.Wait()
}

// Job is one detection run for Detect: a trained deployment (shared
// read-only across jobs), the pipeline sizing, the attack, and the
// instruction budget.
type Job struct {
	Dep    *Deployment
	Config PipelineConfig
	Attack AttackSpec
	Instr  int64
}

// Detect fans the jobs over the pool and returns results in job order. With
// an Observe'd telemetry bundle, every job records into its own registry;
// the registries are merged into the bundle serially in job order once the
// pool drains, so the aggregate is independent of scheduling.
func (f *Fleet) Detect(jobs []Job) ([]*DetectionResult, error) {
	out := make([]*DetectionResult, len(jobs))
	var regs []*obs.Registry
	observed := f.tel != nil && f.tel.Reg != nil
	if observed {
		regs = make([]*obs.Registry, len(jobs))
	}
	jobsDone := f.tel.Counter("rtad_fleet_jobs_done_total")
	jobsFailed := f.tel.Counter("rtad_fleet_jobs_failed_total")
	f.tel.Gauge("rtad_fleet_workers").Set(int64(f.workers))
	f.tel.Gauge("rtad_fleet_jobs").Set(int64(len(jobs)))
	err := f.Run(len(jobs), func(i int) error {
		cfg := jobs[i].Config
		if observed && cfg.Telemetry == nil {
			jt := obs.NewMetricsOnly()
			regs[i] = jt.Reg
			cfg.Telemetry = jt
		}
		res, err := func() (*DetectionResult, error) {
			s, err := Open(Deployments{jobs[i].Dep}, WithConfig(cfg),
				WithAttack(jobs[i].Attack.Resolve(jobs[i].Instr)))
			if err != nil {
				return nil, err
			}
			return s.Detect(jobs[i].Instr)
		}()
		if err != nil {
			jobsFailed.Inc()
			return fmt.Errorf("core: fleet job %d (%s): %w", i, jobs[i].Dep.Profile.Name, err)
		}
		jobsDone.Inc()
		out[i] = res
		return nil
	})
	if observed {
		for _, r := range regs {
			if r != nil {
				f.tel.Reg.Merge(r)
			}
		}
	}
	if err != nil {
		return nil, err
	}
	return out, nil
}
