// Package core integrates the RTAD MPSoC (Fig 1): the host CPU running a
// monitored workload, the CoreSight PTM/TPIU trace path, IGM, MCM and the
// ML-MIAOW inference engine, wired end to end with consistent simulated
// time. It provides the deployment flow of §III-C — collect normal traces,
// train a model, configure the IGM tables, load the model into engine
// memory — and the measurement harnesses behind Figs 6–8.
package core

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"rtad/internal/cpu"
	"rtad/internal/igm"
	"rtad/internal/isa"
	"rtad/internal/kernels"
	"rtad/internal/ml"
	"rtad/internal/workload"
)

// ModelKind selects the deployed detector.
type ModelKind uint8

// Detector kinds (§IV-C).
const (
	ModelELM ModelKind = iota
	ModelLSTM
)

// String names the kind.
func (k ModelKind) String() string {
	if k == ModelELM {
		return "ELM"
	}
	return "LSTM"
}

// TrainConfig parameterises the offline phase.
type TrainConfig struct {
	Profile workload.Profile
	Kind    ModelKind
	// TrainInstr is the instruction budget of the normal-trace collection
	// run (§III-C: "running the target application in advance and
	// extracting the branch traces").
	TrainInstr int64
	// TrainStride paces the LSTM training vectors (denser than the
	// runtime stride so the trainer sees enough sequence).
	TrainStride int
	// CalibFraction of the collected windows is held out for threshold
	// calibration.
	CalibFraction float64
	// ThresholdMargin is added above the calibration quantile.
	ThresholdMargin float64
}

// DefaultTrainConfig returns the budgets used throughout the evaluation.
func DefaultTrainConfig(p workload.Profile, kind ModelKind) TrainConfig {
	cfg := TrainConfig{
		Profile: p, Kind: kind,
		TrainStride:     64,
		CalibFraction:   0.2,
		ThresholdMargin: 0.05,
	}
	if kind == ModelELM {
		// Syscalls are sparse: a long run is needed to gather enough
		// windows for the ridge solve.
		cfg.TrainInstr = 30_000_000
	} else {
		cfg.TrainInstr = 2_500_000
	}
	return cfg
}

// Deployment is a trained detector bound to one benchmark: the model, the
// IGM table configuration, and the legitimate-event pool used by the attack
// emulation.
type Deployment struct {
	Profile workload.Profile
	Kind    ModelKind
	Mapper  *igm.AddressMap
	// Translate is the MCM protocol-converter mapping from IGM class IDs
	// to the model alphabet.
	Translate func(int32) int32
	ELM       *ml.ELM
	LSTM      *ml.LSTM
	Pool      []cpu.BranchEvent
	// TrainWindows reports how many windows the model was fitted on.
	TrainWindows int

	// victimOnce memoizes the generated victim binary and the basic-block
	// translation cache built over it, so every session opened against this
	// deployment executes the same immutable image and shares one lazily
	// filled cache — each block translates once per deployment, not once
	// per session. Sharing is lock-free and race-free (see cpu.Cache).
	victimOnce  sync.Once
	victimProg  *isa.Program
	victimCache *cpu.Cache
	victimErr   error

	// refs counts live holds on this deployment: registry versions plus the
	// sessions admitted on them. The deployment's data is immutable during
	// inference — the count never gates reads — it only tells a lifecycle
	// manager (internal/registry) when a retired version's memory, including
	// the shared translation cache above, can actually be let go.
	refs atomic.Int64
}

// Retain records one live hold on the deployment (a registry version, an
// admitted session). Pair with Release.
func (d *Deployment) Retain() { d.refs.Add(1) }

// Release drops one hold and returns the holds remaining. Releasing below
// zero panics: it means a session released a deployment it never retained,
// which would let a lifecycle manager free memory still in use.
func (d *Deployment) Release() int64 {
	n := d.refs.Add(-1)
	if n < 0 {
		panic("core: Deployment.Release without a matching Retain")
	}
	return n
}

// Refs reports the current hold count.
func (d *Deployment) Refs() int64 { return d.refs.Load() }

// Fingerprint is the deployment's content identity: a 64-bit hash over the
// model kind, the trained weight image (ml fingerprints), and the IGM
// lookup table. Two deployments fingerprint equal exactly when they would
// judge identically; the registry uses this to recognise a re-loaded file
// as a version it already serves.
func (d *Deployment) Fingerprint() uint64 {
	const prime = 1099511628211
	h := uint64(14695981039346656037)
	mix := func(w uint64) {
		for i := 0; i < 64; i += 8 {
			h ^= uint64(byte(w >> i))
			h *= prime
		}
	}
	mix(uint64(d.Kind))
	switch {
	case d.ELM != nil:
		mix(d.ELM.Fingerprint())
	case d.LSTM != nil:
		mix(d.LSTM.Fingerprint())
	}
	if d.Mapper != nil {
		entries := d.Mapper.Entries()
		mix(uint64(len(entries)))
		for _, e := range entries {
			mix(uint64(e.Addr)<<32 | uint64(uint32(e.Class)))
		}
		if d.Mapper.HasSyscalls() {
			mix(1)
		}
	}
	return h
}

// victimProgram returns the deployment's generated victim binary and the
// shared translation cache over it, generating both on first use. The
// profile's generator is deterministic, so memoizing changes nothing
// architecturally — it only makes the image's identity (and hence cache
// sharing) explicit.
func (d *Deployment) victimProgram() (*isa.Program, *cpu.Cache, error) {
	d.victimOnce.Do(func() {
		d.victimProg, d.victimErr = d.Profile.Generate()
		if d.victimErr == nil {
			d.victimCache = cpu.NewCache(d.victimProg)
		}
	})
	return d.victimProg, d.victimCache, d.victimErr
}

// Window returns the deployment's input-vector length.
func (d *Deployment) Window() int {
	if d.Kind == ModelELM {
		return kernels.ELMWindow
	}
	return kernels.LSTMWindow
}

// collectWindows filters a retired-event stream through the mapper exactly
// as the IGM would, translating classes into the model alphabet, and slices
// it into windows at the given stride. This is the offline training path:
// it sees the same data the hardware pipeline delivers, without paying for
// packet encode/decode on tens of millions of instructions.
func collectWindows(events []cpu.BranchEvent, mapper *igm.AddressMap,
	translate func(int32) int32, window, stride int) [][]int32 {
	var classes []int32
	for _, ev := range events {
		if !ev.Taken {
			continue
		}
		c, ok := mapper.Lookup(ev.Target)
		if !ok {
			continue
		}
		if translate != nil {
			c = translate(c)
		}
		classes = append(classes, c)
	}
	var out [][]int32
	for i := window; i <= len(classes); i += stride {
		out = append(out, append([]int32(nil), classes[i-window:i]...))
	}
	return out
}

// elmTranslate maps IGM syscall classes to ELM model classes.
func elmTranslate(c int32) int32 { return c - igm.SyscallClass(0) }

// Train runs the offline deployment flow for cfg.
func Train(cfg TrainConfig) (*Deployment, error) {
	prog, err := cfg.Profile.Generate()
	if err != nil {
		return nil, err
	}
	// Normal-trace collection run.
	rec := &cpu.CollectSink{TakenOnly: true}
	c := cpu.New(prog, cpu.Config{Mode: cpu.ModeRTAD, Sink: rec})
	if _, err := c.Run(cfg.TrainInstr); err != nil {
		return nil, fmt.Errorf("core: trace collection: %w", err)
	}

	dep := &Deployment{Profile: cfg.Profile, Kind: cfg.Kind, Pool: rec.Events}
	switch cfg.Kind {
	case ModelELM:
		dep.Mapper = igm.NewAddressMap()
		dep.Mapper.AddSyscalls()
		dep.Translate = elmTranslate
		// Syscall density varies an order of magnitude across the suite;
		// extend the collection run until the ridge solve has enough
		// windows (or the hard cap is hit).
		need := int(float64(ml.DefaultELMConfig().Hidden)/(1-cfg.CalibFraction)) + 40
		const collectCap = int64(90_000_000) // extra-instruction hard cap
		for extra := int64(0); extra < collectCap; extra += cfg.TrainInstr {
			if len(collectWindows(rec.Events, dep.Mapper, dep.Translate, kernels.ELMWindow, 1)) >= need {
				break
			}
			if _, err := c.Run(cfg.TrainInstr); err != nil {
				return nil, fmt.Errorf("core: extended trace collection: %w", err)
			}
			dep.Pool = rec.Events
		}
		windows := collectWindows(rec.Events, dep.Mapper, dep.Translate, kernels.ELMWindow, 1)
		train, calib := splitWindows(windows, cfg.CalibFraction)
		dep.TrainWindows = len(train)
		model, err := ml.TrainELM(ml.DefaultELMConfig(), train)
		if err != nil {
			return nil, fmt.Errorf("core: ELM training on %s: %w", cfg.Profile.Name, err)
		}
		var scores []float64
		for _, w := range calib {
			scores = append(scores, model.Score(w))
		}
		model.Threshold = ml.CalibrateThreshold(smoothScores(scores), 1.0, cfg.ThresholdMargin)
		dep.ELM = model

	case ModelLSTM:
		dep.Mapper = buildBranchVocab(rec.Events, kernels.LSTMVocab)
		dep.Translate = nil // vocabulary classes are already 0..Vocab-1
		stride := cfg.TrainStride
		if stride <= 0 {
			stride = 64
		}
		windows := collectWindows(rec.Events, dep.Mapper, nil, kernels.LSTMWindow, stride)
		train, calib := splitWindows(windows, cfg.CalibFraction)
		dep.TrainWindows = len(train)
		model, err := ml.TrainLSTM(ml.DefaultLSTMConfig(), train)
		if err != nil {
			return nil, fmt.Errorf("core: LSTM training on %s: %w", cfg.Profile.Name, err)
		}
		st := model.NewState()
		var scores []float64
		for _, w := range calib {
			s, err := model.Score(st, w)
			if err != nil {
				return nil, err
			}
			scores = append(scores, s)
		}
		model.Threshold = ml.CalibrateThreshold(smoothScores(scores), 1.0, cfg.ThresholdMargin)
		dep.LSTM = model

	default:
		return nil, fmt.Errorf("core: unknown model kind %d", cfg.Kind)
	}
	return dep, nil
}

// smoothScores applies the same EWMA the inference engine keeps in device
// memory, so the threshold is calibrated against the quantity the hardware
// actually compares (kernels.DefaultEwmaAlpha).
func smoothScores(scores []float64) []float64 {
	out := make([]float64, len(scores))
	ew := 0.0
	for i, s := range scores {
		ew += kernels.DefaultEwmaAlpha * (s - ew)
		out[i] = ew
	}
	return out
}

// splitWindows separates calibration data from training data.
func splitWindows(windows [][]int32, calibFraction float64) (train, calib [][]int32) {
	n := len(windows)
	cut := n - int(float64(n)*calibFraction)
	if cut < 1 {
		cut = 1
	}
	if cut > n {
		cut = n
	}
	return windows[:cut], windows[cut:]
}

// buildBranchVocab configures the IGM lookup table with the most frequent
// branch targets of the normal trace — the user-configured "branches
// related to their ML models" of §III-A. Class IDs are assigned in
// frequency order, so they double as the model alphabet.
func buildBranchVocab(events []cpu.BranchEvent, vocab int) *igm.AddressMap {
	counts := map[uint32]int64{}
	for _, ev := range events {
		if ev.Taken {
			counts[ev.Target]++
		}
	}
	type tc struct {
		target uint32
		n      int64
	}
	var all []tc
	for t, n := range counts {
		all = append(all, tc{t, n})
	}
	// Sort by count descending, target ascending for determinism.
	sort.Slice(all, func(i, j int) bool {
		if all[i].n != all[j].n {
			return all[i].n > all[j].n
		}
		return all[i].target < all[j].target
	})
	m := igm.NewAddressMap()
	for i := 0; i < len(all) && i < vocab; i++ {
		m.Add(all[i].target)
	}
	return m
}
