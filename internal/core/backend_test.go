package core

import (
	"reflect"
	"testing"

	"rtad/internal/kernels"
)

// runJudged runs one streaming detection session to completion and returns
// the full judged stream. Comparing whole streams element-by-element (every
// vector, every judgment, every timestamp) is the strongest session-level
// backend-equivalence check: a single cycle of divergence anywhere in the
// pipeline shows up.
func runJudged(t *testing.T, dep *Deployment, cfg PipelineConfig, aspec AttackSpec, instr int64) []Judged {
	t.Helper()
	s, err := NewSession(dep, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Inject(aspec.withDefaults(instr)); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Step(instr); err != nil {
		t.Fatal(err)
	}
	if err := s.Drain(); err != nil {
		t.Fatal(err)
	}
	return s.Results()
}

func checkJudgedEqual(t *testing.T, backend string, got, want []Judged) {
	t.Helper()
	if len(want) == 0 {
		t.Fatal("reference run produced no judgments")
	}
	if len(got) != len(want) {
		t.Fatalf("%s: %d judgments, gpu reference %d", backend, len(got), len(want))
	}
	for i := range want {
		if !reflect.DeepEqual(got[i], want[i]) {
			t.Fatalf("%s: judgment %d diverges:\n  got  %+v\n  want %+v", backend, i, got[i], want[i])
		}
	}
}

func TestSessionBackendsBitIdenticalLSTM(t *testing.T) {
	dep := trainLSTMDeployment(t, "458.sjeng")
	aspec := AttackSpec{Seed: 1}
	const instr = 2_000_000
	for _, cus := range []int{1, 5} {
		ref := runJudged(t, dep, PipelineConfig{CUs: cus}, aspec, instr)
		for _, backend := range []string{kernels.BackendNative, kernels.BackendNativeCalibrated} {
			got := runJudged(t, dep, PipelineConfig{CUs: cus, Backend: backend}, aspec, instr)
			checkJudgedEqual(t, backend, got, ref)
		}
	}
}

func TestSessionBackendsBitIdenticalELM(t *testing.T) {
	dep := trainELMDeployment(t, "400.perlbench")
	aspec := AttackSpec{BurstLen: 4096, Seed: 1}
	const instr = 4_000_000
	ref := runJudged(t, dep, PipelineConfig{CUs: 5}, aspec, instr)
	for _, backend := range []string{kernels.BackendNative, kernels.BackendNativeCalibrated} {
		got := runJudged(t, dep, PipelineConfig{CUs: 5, Backend: backend}, aspec, instr)
		checkJudgedEqual(t, backend, got, ref)
	}
}

// TestSessionBackendSharedCalibration reuses one calibration table across
// sessions: the second session must skip the GPU pass entirely (the table
// already holds its shape) and still reproduce the reference stream.
func TestSessionBackendSharedCalibration(t *testing.T) {
	dep := trainLSTMDeployment(t, "456.hmmer")
	aspec := AttackSpec{Seed: 2}
	const instr = 1_500_000
	ref := runJudged(t, dep, PipelineConfig{CUs: 5}, aspec, instr)

	calib := kernels.NewCalibration()
	cfg := PipelineConfig{CUs: 5, Backend: kernels.BackendNativeCalibrated, Calibration: calib}
	first := runJudged(t, dep, cfg, aspec, instr)
	checkJudgedEqual(t, "native-calibrated (cold table)", first, ref)
	if calib.Len() != 1 {
		t.Fatalf("table holds %d shapes after one LSTM session, want 1", calib.Len())
	}
	entries := calib.Entries()
	second := runJudged(t, dep, cfg, aspec, instr)
	checkJudgedEqual(t, "native-calibrated (warm table)", second, ref)
	if !reflect.DeepEqual(calib.Entries(), entries) {
		t.Error("warm run altered the calibration table")
	}
}

// TestDualSessionBackendsBitIdentical checks backend equivalence where the
// contention model is most intertwined with timing: both models sharing one
// engine. It also exercises mixed lanes — one model native, the other on the
// cycle-accurate GPU — which must match the all-GPU reference too, since
// both backends charge identical cycles.
func TestDualSessionBackendsBitIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("dual-session runs are heavy")
	}
	elm := trainELMDeployment(t, "458.sjeng")
	lstm := trainLSTMDeployment(t, "458.sjeng")
	aspec := AttackSpec{Seed: 5}
	const instr = 8_000_000

	runDual := func(elmCfg, lstmCfg PipelineConfig) (elmJ, lstmJ []Judged) {
		t.Helper()
		s, err := NewDualSessionLanes(elm, lstm, elmCfg, lstmCfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Inject(aspec.withDefaults(instr)); err != nil {
			t.Fatal(err)
		}
		if _, err := s.Step(instr); err != nil {
			t.Fatal(err)
		}
		if err := s.Drain(); err != nil {
			t.Fatal(err)
		}
		return s.LaneResults(0), s.LaneResults(1)
	}

	gpuCfg := PipelineConfig{CUs: 5}
	natCfg := PipelineConfig{CUs: 5, Backend: kernels.BackendNative}
	refELM, refLSTM := runDual(gpuCfg, gpuCfg)

	natELM, natLSTM := runDual(natCfg, natCfg)
	checkJudgedEqual(t, "dual native (elm lane)", natELM, refELM)
	checkJudgedEqual(t, "dual native (lstm lane)", natLSTM, refLSTM)

	mixELM, mixLSTM := runDual(natCfg, gpuCfg)
	checkJudgedEqual(t, "mixed lanes (elm native)", mixELM, refELM)
	checkJudgedEqual(t, "mixed lanes (lstm gpu)", mixLSTM, refLSTM)
}
