package core

import (
	"fmt"

	"rtad/internal/attack"
	"rtad/internal/cpu"
	"rtad/internal/mcm"
	"rtad/internal/obs"
	"rtad/internal/sim"
)

// Session is a streaming detection run: one victim CPU driving one or more
// model pipelines, advanced incrementally. Where RunDetection executes a
// whole experiment to completion, a session lets the caller interleave
// execution with observation — run a few hundred thousand instructions,
// consume the judgments produced so far, arm an attack mid-run, inspect
// stage queues, repeat — while producing *bit-identical* event streams to
// the batch path (the CPU, trace chain and MCM models are untouched; the
// session only changes who calls them and when).
//
// Each session owns a private deterministic sim.Scheduler that delivers
// completed judgments in time order, and shares nothing mutable with other
// sessions: a trained Deployment is read-only during inference, so any
// number of sessions may run concurrently over one deployment (see Fleet).
// A session itself is not goroutine-safe — one timeline, one goroutine.
type Session struct {
	sched *sim.Scheduler
	// Exactly one front-end drives the sink chain: cpu executes the victim
	// program (Step), front replays a raw PTM byte stream (FeedTrace).
	cpu   *cpu.CPU
	front *traceFront
	swap  *swapSink
	fan   *fanSink
	lanes []*lane
	// pool is the legitimate-event reservoir Inject draws from (the lone
	// deployment's pool, or the LSTM's for dual sessions, matching
	// RunDualDetection).
	pool []cpu.BranchEvent
	inj  *attack.Injector
	// shared is the engine token multiplexing the lanes' MCMs on one
	// ML-MIAOW (nil for single-lane sessions).
	shared  *mcm.SharedEngine
	stepped int64
	drained bool
	err     error

	// Telemetry (all nil when the session is un-instrumented). Victim-CPU
	// progress gauges are sampled at Step/Drain boundaries — they converge
	// to the same final values however the run is sliced — while trace
	// events are recorded only where sim times are produced, so the trace
	// bytes are invariant to slicing.
	tel         *obs.Telemetry
	obsCycles   *obs.Gauge
	obsInstret  *obs.Gauge
	obsStall    *obs.Gauge
	obsInstrCyc *obs.Gauge
	attackTrack *obs.Track
	attackNoted bool
}

// lane is one model's view of the shared victim: its pipeline plus the
// judgments delivered to — but not yet consumed by — the caller.
type lane struct {
	dep     *Deployment
	pipe    *Pipeline
	cfg     PipelineConfig // defaults resolved
	pending []Judged
	// delivered counts pipeline judgments already scheduled for delivery.
	delivered int
}

// swapSink is the replaceable head of the CPU's sink chain. cpu.Config.Sink
// is fixed at construction, so arming an attack mid-run (Inject) swaps the
// downstream here instead of rebuilding the core.
type swapSink struct {
	next cpu.Sink
}

func (s *swapSink) BranchRetired(ev cpu.BranchEvent) int64 {
	return s.next.BranchRetired(ev)
}

// fanSink fans one retired-branch stream out to every lane's pipeline, in
// lane order, and stalls the CPU by the slowest lane's backpressure — the
// generalisation of the old two-model dualSink.
type fanSink struct {
	pipes []*Pipeline
}

func (f *fanSink) BranchRetired(ev cpu.BranchEvent) int64 {
	var max int64
	for _, p := range f.pipes {
		if s := p.BranchRetired(ev); s > max {
			max = s
		}
	}
	return max
}

// NewSession builds a single-model streaming session over dep.
//
// Deprecated: use Open(Deployments{dep}, WithConfig(cfg)).
func NewSession(dep *Deployment, cfg PipelineConfig) (*Session, error) {
	return Open(Deployments{dep}, WithConfig(cfg))
}

// observe attaches the telemetry bundle to the session-level pieces (the
// scheduler and victim-CPU gauges). Safe with a nil bundle.
func (s *Session) observe(tel *obs.Telemetry) {
	s.tel = tel
	s.sched.Observe(tel)
	s.obsCycles = tel.Gauge("rtad_cpu_cycles")
	s.obsInstret = tel.Gauge("rtad_cpu_instret")
	s.obsStall = tel.Gauge("rtad_cpu_stall_cycles")
	s.obsInstrCyc = tel.Gauge("rtad_cpu_instrumentation_cycles")
	s.attackTrack = tel.Track("cpu", "attack")
}

// sample refreshes the progress gauges. No trace events are emitted here —
// sampling frequency follows the caller's Step slicing, which must not
// change the trace bytes.
func (s *Session) sample() {
	if s.tel == nil {
		return
	}
	if s.cpu != nil {
		s.obsCycles.Set(s.cpu.Cycles())
		s.obsInstret.Set(s.cpu.Instret())
		s.obsStall.Set(s.cpu.StallCycles())
		s.obsInstrCyc.Set(s.cpu.InstrumentationCycles())
	} else {
		s.obsCycles.Set(s.front.cycle)
	}
	for _, ln := range s.lanes {
		tel := ln.cfg.Telemetry
		if tel == nil {
			continue
		}
		for _, st := range ln.pipe.Stages() {
			qs := st.QueueStats()
			name := "rtad_stage_" + st.StageName()
			tel.Gauge(name + "_len").Set(int64(qs.Len))
			tel.Gauge(name + "_max_depth").Set(int64(qs.MaxDepth))
		}
	}
}

// NewDualSession deploys both models on one MLPU against one victim: each
// lane has its own IGM context, and the two MCM front-ends time-multiplex
// one compute engine over one interconnect. Lane 0 is the ELM, lane 1 the
// LSTM.
//
// Deprecated: use Open(Deployments{elmDep, lstmDep}, WithConfig(cfg)).
func NewDualSession(elmDep, lstmDep *Deployment, cfg PipelineConfig) (*Session, error) {
	return Open(Deployments{elmDep, lstmDep}, WithConfig(cfg))
}

// NewDualSessionLanes is NewDualSession with per-lane pipeline configs.
//
// Deprecated: use Open(Deployments{elmDep, lstmDep},
// WithLaneConfig(0, elmCfg), WithLaneConfig(1, lstmCfg)).
func NewDualSessionLanes(elmDep, lstmDep *Deployment, elmCfg, lstmCfg PipelineConfig) (*Session, error) {
	return Open(Deployments{elmDep, lstmDep},
		WithLaneConfig(0, elmCfg), WithLaneConfig(1, lstmCfg))
}

// Inject arms the attack. Called before the first Step it reproduces the
// batch experiments exactly; called mid-run it models an attacker striking
// partway through the monitored window (TriggerBranch then counts victim
// taken transfers from the arming point, and 0 fires on the very next one).
// BurstLen must be positive — the instruction budget isn't known here, so
// no defaulting happens; RunDetection applies the classic defaults.
func (s *Session) Inject(spec AttackSpec) error {
	if s.inj != nil {
		return fmt.Errorf("core: session already has an armed attack")
	}
	if s.drained {
		return fmt.Errorf("core: session already drained")
	}
	inj, err := attack.New(attack.Config{
		TriggerBranch: spec.TriggerBranch,
		BurstLen:      spec.BurstLen,
		Pool:          s.pool,
		// Default: independently sampled legitimate events — the paper's
		// "randomly inserting legitimate branch data in normal traces".
		// Mimicry switches to contiguous segment replay.
		Segment: spec.Mimicry,
		Seed:    spec.Seed,
	}, s.swap.next)
	if err != nil {
		return err
	}
	s.swap.next = inj
	s.inj = inj
	if s.attackTrack != nil {
		s.attackTrack.Instant("attack_armed",
			int64(sim.CPUClock.Duration(s.frontCycles())),
			map[string]any{"trigger_branch": spec.TriggerBranch, "burst_len": spec.BurstLen})
	}
	return nil
}

// Step runs the victim for up to maxInstr further instructions (stopping
// early at HALT), then delivers every judgment completed so far. It returns
// the number of instructions retired during this call.
func (s *Session) Step(maxInstr int64) (int64, error) {
	if s.err != nil {
		return 0, s.err
	}
	if s.drained {
		return 0, fmt.Errorf("core: session already drained")
	}
	if s.cpu == nil {
		return 0, fmt.Errorf("core: session has a trace-input front-end (feed it with FeedTrace)")
	}
	n, err := s.cpu.Run(maxInstr)
	s.stepped += n
	if err != nil {
		s.err = err
		return n, err
	}
	s.deliver()
	s.sample()
	return n, s.err
}

// Drain ends the run: residual trace data is flushed through every lane at
// the victim's final cycle (matching the batch paths' end-of-window flush)
// and the last judgments are delivered. Idempotent.
func (s *Session) Drain() error {
	if s.drained || s.err != nil {
		return s.err
	}
	end := sim.CPUClock.Duration(s.frontCycles())
	for _, ln := range s.lanes {
		ln.pipe.Flush(end)
	}
	s.deliver()
	// The injection instant is recorded here — not at the Step that first
	// notices the fired attack — so its position in the event stream does
	// not depend on how the run was sliced. Its timestamp is the true
	// injection time regardless.
	if s.attackTrack != nil && s.AttackFired() && !s.attackNoted {
		s.attackNoted = true
		s.attackTrack.Instant("attack_injected", int64(s.InjectTime()), nil)
	}
	s.sample()
	s.drained = true
	return s.err
}

// deliver schedules each lane's newly judged vectors on the session
// scheduler at their judgment-ready times and runs it, moving them into the
// lanes' pending queues in deterministic time order. Judgment Done times are
// monotone per engine, so the clamp to Now only guards the cross-lane case
// where one lane's inference tail has already advanced the timeline.
func (s *Session) deliver() {
	for _, ln := range s.lanes {
		ln := ln
		// Deferred judgments must resolve before the records are copied
		// into delivery closures below.
		ln.pipe.SettleJudgments()
		judged := ln.pipe.Judged()
		for i := ln.delivered; i < len(judged); i++ {
			j := judged[i]
			at := j.Rec.Done
			if now := s.sched.Now(); at < now {
				at = now
			}
			s.sched.At(at, func() {
				ln.pending = append(ln.pending, j)
			})
		}
		ln.delivered = len(judged)
		if err := ln.pipe.Err(); err != nil && s.err == nil {
			s.err = err
		}
	}
	s.sched.Run()
}

// Results returns and clears lane 0's delivered-but-unconsumed judgments —
// the streaming read for single-model sessions.
func (s *Session) Results() []Judged { return s.LaneResults(0) }

// LaneResults returns and clears lane i's delivered judgments.
func (s *Session) LaneResults(i int) []Judged {
	out := s.lanes[i].pending
	s.lanes[i].pending = nil
	return out
}

// Summary builds lane 0's DetectionResult (requires a drained session with
// a fired attack). It is unaffected by streaming consumption via Results.
func (s *Session) Summary() (*DetectionResult, error) { return s.LaneSummary(0) }

// LaneSummary builds lane i's DetectionResult.
func (s *Session) LaneSummary(i int) (*DetectionResult, error) {
	if !s.drained {
		return nil, fmt.Errorf("core: session not drained")
	}
	if s.inj == nil || !s.inj.Fired() {
		return nil, fmt.Errorf("core: attack never fired")
	}
	ln := s.lanes[i]
	return summarise(ln.dep, ln.pipe, ln.cfg, sim.CPUClock.Duration(s.inj.InjectedAtCycle))
}

// Lanes reports the model-lane count (1, or 2 for dual sessions).
func (s *Session) Lanes() int { return len(s.lanes) }

// Stages snapshots lane 0's trace-delivery chain.
func (s *Session) Stages() []StageSnapshot { return s.LaneStages(0) }

// LaneStages snapshots lane i's trace-delivery chain.
func (s *Session) LaneStages(i int) []StageSnapshot {
	return SnapshotStages(s.lanes[i].pipe.Stages())
}

// Now is the session scheduler's time: the ready time of the latest
// delivered judgment (which can run past the victim's last cycle while the
// inference tail completes).
func (s *Session) Now() sim.Time { return s.sched.Now() }

// Scheduler exposes the session's private event scheduler, for callers
// that want to co-schedule their own observation events.
func (s *Session) Scheduler() *sim.Scheduler { return s.sched }

// Cycles is the victim's elapsed cycle count: executed cycles for a live
// CPU, the synthesized replay clock for a trace-input session.
func (s *Session) Cycles() int64 { return s.frontCycles() }

// Instret is the victim's retired-instruction count (0 for trace-input
// sessions — the stream carries branches, not every instruction).
func (s *Session) Instret() int64 {
	if s.cpu == nil {
		return 0
	}
	return s.cpu.Instret()
}

// Halted reports whether the victim hit HALT (never for trace-input
// sessions — the stream simply ends).
func (s *Session) Halted() bool { return s.cpu != nil && s.cpu.Halted() }

// MCMStats exposes lane 0's module counters (drops, occupancy) — the
// pipeline health figures a summary needs even when no attack was armed
// (where Summary, which reconstructs the detection experiment, errors).
func (s *Session) MCMStats() mcm.Stats { return s.LaneMCMStats(0) }

// LaneMCMStats exposes lane i's module counters.
func (s *Session) LaneMCMStats(i int) mcm.Stats { return s.lanes[i].pipe.MCMStats() }

// AttackFired reports whether an armed attack has triggered.
func (s *Session) AttackFired() bool { return s.inj != nil && s.inj.Fired() }

// InjectTime is when the first burst event hit the stream (zero before the
// attack fires).
func (s *Session) InjectTime() sim.Time {
	if !s.AttackFired() {
		return 0
	}
	return sim.CPUClock.Duration(s.inj.InjectedAtCycle)
}

// SharedBusyAt reports the multiplexed engine's busy horizon for dual
// sessions (zero for single-lane sessions).
func (s *Session) SharedBusyAt() sim.Time {
	if s.shared == nil {
		return 0
	}
	return s.shared.FreeAt()
}

// Err returns the first session error, if any.
func (s *Session) Err() error { return s.err }
