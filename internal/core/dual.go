package core

import (
	"fmt"

	"rtad/internal/attack"
	"rtad/internal/axi"
	"rtad/internal/cpu"
	"rtad/internal/mcm"
	"rtad/internal/sim"
)

// Dual-model deployment: §II claims RTAD "is able to support many different
// ML models whereas others support fixed models... users may realize and
// deploy several models at their disposal". This file runs the ELM and the
// LSTM *simultaneously* against one victim: both models' images are
// resident in ML-MIAOW memory, each has its own IGM vector-generation
// context (window, stride, mapper table), and their MCM front-ends
// time-multiplex the one compute engine and share the SoC interconnect —
// so syscall-window judgments contend with branch-window judgments exactly
// as they would on the prototype.

// DualResult pairs the two models' detection results from one victim run.
type DualResult struct {
	ELM  *DetectionResult
	LSTM *DetectionResult
	// Contention is the extra engine wait the busier model imposed on the
	// other, visible as elevated latencies relative to solo runs.
	SharedBusyAt sim.Time
}

// dualSink fans one retired-branch stream out to both pipelines.
type dualSink struct {
	a, b *Pipeline
}

func (d *dualSink) BranchRetired(ev cpu.BranchEvent) int64 {
	sa := d.a.BranchRetired(ev)
	sb := d.b.BranchRetired(ev)
	if sb > sa {
		return sb
	}
	return sa
}

// RunDualDetection deploys both models on one MLPU and injects the attack
// once; both detectors judge the same aberrant behaviour.
func RunDualDetection(elmDep, lstmDep *Deployment, cfg PipelineConfig, aspec AttackSpec, instr int64) (*DualResult, error) {
	if elmDep.Kind != ModelELM || lstmDep.Kind != ModelLSTM {
		return nil, fmt.Errorf("core: RunDualDetection needs one ELM and one LSTM deployment")
	}
	if elmDep.Profile.Name != lstmDep.Profile.Name {
		return nil, fmt.Errorf("core: deployments monitor different benchmarks (%s vs %s)",
			elmDep.Profile.Name, lstmDep.Profile.Name)
	}
	prog, err := elmDep.Profile.Generate()
	if err != nil {
		return nil, err
	}
	bus, err := axi.RTADTopology()
	if err != nil {
		return nil, err
	}
	shared := mcm.NewSharedEngine()

	elmCfg := cfg.withDefaults(ModelELM)
	elmCfg.SharedEngine, elmCfg.Bus = shared, bus
	lstmCfg := cfg.withDefaults(ModelLSTM)
	lstmCfg.SharedEngine, lstmCfg.Bus = shared, bus
	elmPipe, err := NewPipeline(elmDep, elmCfg)
	if err != nil {
		return nil, err
	}
	lstmPipe, err := NewPipeline(lstmDep, lstmCfg)
	if err != nil {
		return nil, err
	}

	if aspec.BurstLen <= 0 {
		aspec.BurstLen = 32768
	}
	if aspec.TriggerBranch <= 0 {
		aspec.TriggerBranch = instr / 40
	}
	inj, err := attack.New(attack.Config{
		TriggerBranch: aspec.TriggerBranch,
		BurstLen:      aspec.BurstLen,
		Pool:          lstmDep.Pool,
		Segment:       aspec.Mimicry,
		Seed:          aspec.Seed,
	}, &dualSink{a: elmPipe, b: lstmPipe})
	if err != nil {
		return nil, err
	}
	c := cpu.New(prog, cpu.Config{Mode: cpu.ModeRTAD, Sink: inj})
	if _, err := c.Run(instr); err != nil {
		return nil, err
	}
	end := sim.CPUClock.Duration(c.Cycles())
	elmPipe.Flush(end)
	lstmPipe.Flush(end)
	if err := elmPipe.Err(); err != nil {
		return nil, err
	}
	if err := lstmPipe.Err(); err != nil {
		return nil, err
	}
	if !inj.Fired() {
		return nil, fmt.Errorf("core: attack never fired in %d instructions", instr)
	}
	injectTime := sim.CPUClock.Duration(inj.InjectedAtCycle)

	out := &DualResult{SharedBusyAt: shared.FreeAt()}
	out.ELM, err = summarise(elmDep, elmPipe, elmCfg, injectTime)
	if err != nil {
		return nil, fmt.Errorf("core: dual ELM: %w", err)
	}
	out.LSTM, err = summarise(lstmDep, lstmPipe, lstmCfg, injectTime)
	if err != nil {
		return nil, fmt.Errorf("core: dual LSTM: %w", err)
	}
	return out, nil
}

// summarise builds a DetectionResult from a finished pipeline.
func summarise(dep *Deployment, pipe *Pipeline, cfg PipelineConfig, injectTime sim.Time) (*DetectionResult, error) {
	res := &DetectionResult{
		Benchmark:  dep.Profile.Name,
		Kind:       dep.Kind,
		CUs:        cfg.CUs,
		InjectTime: injectTime,
		Judged:     len(pipe.Judged()),
		Dropped:    pipe.MCMStats().Dropped,
		MaxOcc:     pipe.MCMStats().MaxOccupancy,
	}
	var latSum sim.Time
	var latN int64
	for i := range pipe.judged {
		j := &pipe.judged[i]
		if j.FinalRetire < injectTime {
			continue
		}
		if res.First == nil {
			res.First = j
			res.Latency = j.JudgmentLatency()
		}
		latSum += j.JudgmentLatency()
		latN++
		if j.Rec.Judgment.Anomaly {
			res.Detected = true
			if res.IRQTime == 0 {
				res.IRQTime = j.Rec.IRQAt
			}
		}
	}
	if latN > 0 {
		res.MeanLatency = latSum / sim.Time(latN)
	}
	if res.First == nil {
		return nil, fmt.Errorf("no post-injection vector judged on %s", dep.Profile.Name)
	}
	return res, nil
}
