package core

import (
	"fmt"

	"rtad/internal/sim"
)

// Dual-model deployment: §II claims RTAD "is able to support many different
// ML models whereas others support fixed models... users may realize and
// deploy several models at their disposal". This file runs the ELM and the
// LSTM *simultaneously* against one victim: both models' images are
// resident in ML-MIAOW memory, each has its own IGM vector-generation
// context (window, stride, mapper table), and their MCM front-ends
// time-multiplex the one compute engine and share the SoC interconnect —
// so syscall-window judgments contend with branch-window judgments exactly
// as they would on the prototype. The wiring lives in NewDualSession; this
// is the batch wrapper.

// DualResult pairs the two models' detection results from one victim run.
type DualResult struct {
	ELM  *DetectionResult
	LSTM *DetectionResult
	// Contention is the extra engine wait the busier model imposed on the
	// other, visible as elevated latencies relative to solo runs.
	SharedBusyAt sim.Time
}

// RunDualDetection deploys both models on one MLPU and injects the attack
// once; both detectors judge the same aberrant behaviour. It is a thin
// wrapper over a dual streaming Session run to completion.
//
// Deprecated: use Open(Deployments{elmDep, lstmDep}, WithConfig(cfg),
// WithAttack(aspec.Resolve(instr))) followed by Session.DetectDual(instr).
func RunDualDetection(elmDep, lstmDep *Deployment, cfg PipelineConfig, aspec AttackSpec, instr int64) (*DualResult, error) {
	s, err := Open(Deployments{elmDep, lstmDep}, WithConfig(cfg), WithAttack(aspec.Resolve(instr)))
	if err != nil {
		return nil, err
	}
	return s.DetectDual(instr)
}

// summarise builds a DetectionResult from a finished pipeline.
func summarise(dep *Deployment, pipe *Pipeline, cfg PipelineConfig, injectTime sim.Time) (*DetectionResult, error) {
	res := &DetectionResult{
		Benchmark:  dep.Profile.Name,
		Kind:       dep.Kind,
		CUs:        cfg.CUs,
		InjectTime: injectTime,
		Judged:     len(pipe.Judged()),
		Dropped:    pipe.MCMStats().Dropped,
		MaxOcc:     pipe.MCMStats().MaxOccupancy,
		Stages:     SnapshotStages(pipe.Stages()),
	}
	var latSum sim.Time
	var latN int64
	for i := range pipe.judged {
		j := &pipe.judged[i]
		if j.FinalRetire < injectTime {
			continue
		}
		if res.First == nil {
			res.First = j
			res.Latency = j.JudgmentLatency()
		}
		latSum += j.JudgmentLatency()
		latN++
		if j.Rec.Judgment.Anomaly {
			res.Detected = true
			if res.IRQTime == 0 {
				res.IRQTime = j.Rec.IRQAt
			}
		}
	}
	if latN > 0 {
		res.MeanLatency = latSum / sim.Time(latN)
	}
	if res.First == nil {
		return nil, fmt.Errorf("no post-injection vector judged on %s", dep.Profile.Name)
	}
	return res, nil
}
