package core

import (
	"fmt"
	"reflect"
	"testing"

	"rtad/internal/attack"
	"rtad/internal/cpu"
	"rtad/internal/sim"
)

// runDetectionLegacy is a frozen copy of the pre-Session RunDetection: the
// batch plumbing (injector wrapping the pipeline as the CPU sink, one Run,
// one Flush). It anchors the determinism contract — the streaming Session
// must reproduce its event stream bit for bit, however the run is chunked.
func runDetectionLegacy(dep *Deployment, pcfg PipelineConfig, aspec AttackSpec, instr int64) (*DetectionResult, []Judged, sim.Time, error) {
	prog, err := dep.Profile.Generate()
	if err != nil {
		return nil, nil, 0, err
	}
	pipe, err := NewPipeline(dep, pcfg)
	if err != nil {
		return nil, nil, 0, err
	}
	if aspec.BurstLen <= 0 {
		aspec.BurstLen = 32768
	}
	if aspec.TriggerBranch <= 0 {
		aspec.TriggerBranch = instr / 40
	}
	inj, err := attack.New(attack.Config{
		TriggerBranch: aspec.TriggerBranch,
		BurstLen:      aspec.BurstLen,
		Pool:          dep.Pool,
		Segment:       aspec.Mimicry,
		Seed:          aspec.Seed,
	}, pipe)
	if err != nil {
		return nil, nil, 0, err
	}
	c := cpu.New(prog, cpu.Config{Mode: cpu.ModeRTAD, Sink: inj})
	if _, err := c.Run(instr); err != nil {
		return nil, nil, 0, err
	}
	end := sim.CPUClock.Duration(c.Cycles())
	pipe.Flush(end)
	if err := pipe.Err(); err != nil {
		return nil, nil, 0, err
	}
	if !inj.Fired() {
		return nil, nil, 0, fmt.Errorf("core: attack never fired in %d instructions", instr)
	}
	res, err := summarise(dep, pipe, pcfg.withDefaults(dep.Kind), sim.CPUClock.Duration(inj.InjectedAtCycle))
	if err != nil {
		return nil, nil, 0, err
	}
	return res, pipe.Judged(), end, nil
}

// TestSessionMatchesLegacyBitForBit is the tentpole regression: the same
// (deployment, config, attack, budget) through the legacy batch plumbing,
// through one whole-run Session, and through a Session stepped in uneven
// chunks must yield identical Judged streams, identical final times and
// identical DetectionResults.
func TestSessionMatchesLegacyBitForBit(t *testing.T) {
	dep := trainLSTMDeployment(t, "458.sjeng")
	pcfg := PipelineConfig{CUs: 5, Stride: 512}
	aspec := AttackSpec{Seed: 7}
	const instr = 1_500_000

	legacyRes, legacyJudged, legacyEnd, err := runDetectionLegacy(dep, pcfg, aspec, instr)
	if err != nil {
		t.Fatal(err)
	}
	if len(legacyJudged) < 10 {
		t.Fatalf("only %d judged vectors in the reference run", len(legacyJudged))
	}

	runSession := func(chunks []int64) (*DetectionResult, []Judged, sim.Time) {
		t.Helper()
		s, err := NewSession(dep, pcfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Inject(aspec.withDefaults(instr)); err != nil {
			t.Fatal(err)
		}
		var done int64
		for _, c := range chunks {
			n, err := s.Step(c)
			if err != nil {
				t.Fatal(err)
			}
			done += n
		}
		if done != instr && !s.Halted() {
			t.Fatalf("session retired %d of %d instructions", done, instr)
		}
		if err := s.Drain(); err != nil {
			t.Fatal(err)
		}
		res, err := s.Summary()
		if err != nil {
			t.Fatal(err)
		}
		return res, s.lanes[0].pipe.Judged(), sim.CPUClock.Duration(s.Cycles())
	}

	whole, wholeJudged, wholeEnd := runSession([]int64{instr})
	chunked, chunkedJudged, chunkedEnd := runSession([]int64{123_457, 300_001, 1, instr - 123_457 - 300_001 - 1})

	for name, got := range map[string][]Judged{"whole-run": wholeJudged, "chunked": chunkedJudged} {
		if !reflect.DeepEqual(got, legacyJudged) {
			t.Errorf("%s session Judged stream diverges from legacy (%d vs %d vectors)",
				name, len(got), len(legacyJudged))
		}
	}
	if wholeEnd != legacyEnd || chunkedEnd != legacyEnd {
		t.Errorf("final times diverge: legacy %v, whole %v, chunked %v",
			legacyEnd, wholeEnd, chunkedEnd)
	}
	if !reflect.DeepEqual(whole, legacyRes) {
		t.Errorf("whole-run DetectionResult diverges from legacy:\n got %+v\nwant %+v", whole, legacyRes)
	}
	if !reflect.DeepEqual(chunked, legacyRes) {
		t.Errorf("chunked DetectionResult diverges from legacy")
	}

	// And the public wrapper is the session, so it must agree too.
	wrapped, err := RunDetection(dep, pcfg, aspec, instr)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(wrapped, legacyRes) {
		t.Errorf("RunDetection wrapper diverges from legacy")
	}
}

// TestSessionStreamingConsumption checks the incremental read path: results
// consumed step by step, concatenated, equal the full judged stream, and
// each delivery batch arrives in nondecreasing judgment-time order.
func TestSessionStreamingConsumption(t *testing.T) {
	dep := trainLSTMDeployment(t, "401.bzip2")
	pcfg := PipelineConfig{CUs: 5, Stride: 256}
	s, err := NewSession(dep, pcfg)
	if err != nil {
		t.Fatal(err)
	}
	var streamed []Judged
	const chunk = 150_000
	for i := 0; i < 8; i++ {
		if _, err := s.Step(chunk); err != nil {
			t.Fatal(err)
		}
		streamed = append(streamed, s.Results()...)
	}
	if len(streamed) == 0 {
		t.Fatal("no judgments streamed before drain")
	}
	if err := s.Drain(); err != nil {
		t.Fatal(err)
	}
	streamed = append(streamed, s.Results()...)

	full := s.lanes[0].pipe.Judged()
	if !reflect.DeepEqual(streamed, full) {
		t.Fatalf("streamed %d judgments != pipeline's %d", len(streamed), len(full))
	}
	for i := 1; i < len(streamed); i++ {
		if streamed[i].Rec.Done < streamed[i-1].Rec.Done {
			t.Fatalf("delivery %d out of time order", i)
		}
	}
	if s.Now() < streamed[len(streamed)-1].Rec.Done {
		t.Errorf("session time %v behind last delivery %v", s.Now(), streamed[len(streamed)-1].Rec.Done)
	}
	// Drained sessions refuse further work.
	if _, err := s.Step(1); err == nil {
		t.Error("Step after Drain succeeded")
	}
	if err := s.Inject(AttackSpec{BurstLen: 16}); err == nil {
		t.Error("Inject after Drain succeeded")
	}
}

// TestSessionMidRunInject arms the attack only after part of the run has
// already streamed — the capability the batch API never had.
func TestSessionMidRunInject(t *testing.T) {
	dep := trainLSTMDeployment(t, "458.sjeng")
	s, err := NewSession(dep, PipelineConfig{CUs: 5, Stride: 512})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Step(500_000); err != nil {
		t.Fatal(err)
	}
	s.Results() // consume the clean-window judgments
	if s.AttackFired() {
		t.Fatal("attack fired before being armed")
	}
	if err := s.Inject(AttackSpec{TriggerBranch: 1000, BurstLen: 32768, Seed: 9}); err != nil {
		t.Fatal(err)
	}
	if err := s.Inject(AttackSpec{BurstLen: 16}); err == nil {
		t.Error("double Inject succeeded")
	}
	if _, err := s.Step(1_000_000); err != nil {
		t.Fatal(err)
	}
	if err := s.Drain(); err != nil {
		t.Fatal(err)
	}
	if !s.AttackFired() {
		t.Fatal("mid-run attack never fired")
	}
	if s.InjectTime() == 0 {
		t.Fatal("no injection time recorded")
	}
	res, err := s.Summary()
	if err != nil {
		t.Fatal(err)
	}
	if res.First == nil || res.First.FinalRetire < s.InjectTime() {
		t.Error("summary's first judged vector predates the injection")
	}
}

// TestDualSessionMatchesLegacyDual pins the dual-model wrapper to the
// Session path: the public RunDualDetection output must be reproducible via
// an explicitly stepped dual session.
func TestDualSessionStepEquivalence(t *testing.T) {
	elm := trainELMDeployment(t, "400.perlbench")
	lstmDep := func() *Deployment {
		dep := trainLSTMDeployment(t, "400.perlbench")
		return dep
	}()
	cfg := PipelineConfig{CUs: 5}
	aspec := AttackSpec{Seed: 5}
	const instr = 8_000_000

	batch, err := RunDualDetection(elm, lstmDep, cfg, aspec, instr)
	if err != nil {
		t.Fatal(err)
	}

	s, err := NewDualSession(elm, lstmDep, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Inject(aspec.withDefaults(instr)); err != nil {
		t.Fatal(err)
	}
	for _, chunk := range []int64{3_000_000, 2_500_000, instr - 5_500_000} {
		if _, err := s.Step(chunk); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Drain(); err != nil {
		t.Fatal(err)
	}
	elmRes, err := s.LaneSummary(0)
	if err != nil {
		t.Fatal(err)
	}
	lstmRes, err := s.LaneSummary(1)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(elmRes, batch.ELM) {
		t.Error("stepped dual session ELM result diverges from RunDualDetection")
	}
	if !reflect.DeepEqual(lstmRes, batch.LSTM) {
		t.Error("stepped dual session LSTM result diverges from RunDualDetection")
	}
	if s.SharedBusyAt() != batch.SharedBusyAt {
		t.Errorf("shared-engine horizon %v != batch %v", s.SharedBusyAt(), batch.SharedBusyAt)
	}
	if s.Lanes() != 2 {
		t.Errorf("dual session has %d lanes", s.Lanes())
	}
}

// TestSessionStageSnapshots checks the unified Stage interface: every chain
// block reports through it, and judged work implies observable activity.
func TestSessionStageSnapshots(t *testing.T) {
	dep := trainLSTMDeployment(t, "401.bzip2")
	s, err := NewSession(dep, PipelineConfig{CUs: 5, Stride: 256})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Step(800_000); err != nil {
		t.Fatal(err)
	}
	if err := s.Drain(); err != nil {
		t.Fatal(err)
	}
	snaps := s.Stages()
	want := []string{"ptm", "tpiu", "igm", "mcm"}
	if len(snaps) != len(want) {
		t.Fatalf("got %d stages, want %d", len(snaps), len(want))
	}
	for i, sn := range snaps {
		if sn.Name != want[i] {
			t.Errorf("stage %d = %q, want %q", i, sn.Name, want[i])
		}
		if sn.MaxDepth <= 0 {
			t.Errorf("stage %q saw no traffic (MaxDepth %d)", sn.Name, sn.MaxDepth)
		}
	}
	res, err := RunDetection(dep, PipelineConfig{CUs: 5, Stride: 256}, AttackSpec{Seed: 3}, 1_200_000)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Stages) != len(want) {
		t.Fatalf("DetectionResult carries %d stage snapshots", len(res.Stages))
	}
}
