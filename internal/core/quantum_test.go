package core

import (
	"reflect"
	"testing"
)

// TestSessionQuantumBoundariesBitIdentical drives the victim with
// pathological quanta — including 1-instruction steps that land inside
// every translated block and fused pair — and requires the judgment
// stream, cycle and instret accounting to stay byte-identical to a single
// full-budget run. This pins the tiered engine's exact maxInstr contract
// across partial-block boundaries at the session layer (session.go's
// quantum loop).
func TestSessionQuantumBoundariesBitIdentical(t *testing.T) {
	dep := trainLSTMDeployment(t, "458.sjeng")
	const instr = 200_000
	spec := AttackSpec{BurstLen: 4096, Seed: 7}

	runWith := func(quantum int64) (*Session, []Judged) {
		t.Helper()
		s, err := Open(Deployments{dep},
			WithConfig(PipelineConfig{CUs: 2}),
			WithAttack(spec.Resolve(instr)))
		if err != nil {
			t.Fatal(err)
		}
		var total int64
		for total < instr && !s.Halted() {
			q := quantum
			if rem := instr - total; q > rem {
				q = rem
			}
			n, err := s.Step(q)
			if err != nil {
				t.Fatal(err)
			}
			total += n
			if n == 0 {
				break
			}
		}
		if err := s.Drain(); err != nil {
			t.Fatal(err)
		}
		return s, s.Results()
	}

	ref, refJudged := runWith(instr)
	if len(refJudged) == 0 {
		t.Fatal("reference run produced no judgments")
	}
	for _, q := range []int64{1, 3, 1024} {
		s, judged := runWith(q)
		if s.Cycles() != ref.Cycles() || s.Instret() != ref.Instret() {
			t.Errorf("quantum %d: cycles/instret %d/%d, want %d/%d",
				q, s.Cycles(), s.Instret(), ref.Cycles(), ref.Instret())
		}
		if !reflect.DeepEqual(judged, refJudged) {
			t.Errorf("quantum %d: judgment stream diverged (%d vs %d judgments)",
				q, len(judged), len(refJudged))
		}
	}
}
