package core

import (
	"bytes"
	"path/filepath"
	"testing"
)

func TestDeploymentSaveLoadRoundTrip(t *testing.T) {
	dep := trainLSTMDeployment(t, "401.bzip2")
	var buf bytes.Buffer
	if err := dep.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := LoadDeployment(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Profile.Name != dep.Profile.Name || got.Kind != dep.Kind {
		t.Fatal("identity fields lost")
	}
	if got.Mapper.Size() != dep.Mapper.Size() {
		t.Fatalf("mapper size %d, want %d", got.Mapper.Size(), dep.Mapper.Size())
	}
	if got.LSTM.Threshold != dep.LSTM.Threshold {
		t.Error("threshold lost")
	}
	if len(got.Pool) != len(dep.Pool) {
		t.Error("pool lost")
	}

	// The reloaded deployment must behave identically: same detection
	// latency and judgment sequence on the same run.
	a, err := RunDetection(dep, PipelineConfig{CUs: 5}, AttackSpec{Seed: 4}, 1_500_000)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunDetection(got, PipelineConfig{CUs: 5}, AttackSpec{Seed: 4}, 1_500_000)
	if err != nil {
		t.Fatal(err)
	}
	if a.Latency != b.Latency || a.Detected != b.Detected || a.Judged != b.Judged {
		t.Errorf("reloaded deployment diverges: %v/%v/%d vs %v/%v/%d",
			a.Latency, a.Detected, a.Judged, b.Latency, b.Detected, b.Judged)
	}
}

func TestDeploymentSaveLoadFileELM(t *testing.T) {
	dep := trainELMDeployment(t, "403.gcc")
	path := filepath.Join(t.TempDir(), "gcc-elm.rtad")
	if err := dep.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadDeploymentFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.ELM == nil || got.Translate == nil {
		t.Fatal("ELM deployment not fully rebuilt")
	}
	if got.Translate(1024+7) != 7 {
		t.Error("protocol converter not rebuilt")
	}
	if !got.Mapper.HasSyscalls() {
		t.Error("syscall admission flag lost")
	}
}

func TestLoadDeploymentRejectsGarbage(t *testing.T) {
	if _, err := LoadDeployment(bytes.NewReader([]byte("not a gob"))); err == nil {
		t.Error("garbage accepted")
	}
}
