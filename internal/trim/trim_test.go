package trim

import (
	"math/rand"
	"strings"
	"testing"

	"rtad/internal/gpu"
	"rtad/internal/ml"
)

func trainedModels(t *testing.T) (*ml.ELM, *ml.LSTM) {
	t.Helper()
	rng := rand.New(rand.NewSource(55))
	mk := func(vocab, window, n int) [][]int32 {
		out := make([][]int32, n)
		cur := int32(0)
		for i := range out {
			w := make([]int32, window)
			for j := range w {
				w[j] = cur
				cur = (cur + int32(rng.Intn(3))) % int32(vocab)
			}
			out[i] = w
		}
		return out
	}
	ecfg := ml.DefaultELMConfig()
	elm, err := ml.TrainELM(ecfg, mk(ecfg.Vocab, ecfg.Window, 600))
	if err != nil {
		t.Fatal(err)
	}
	lcfg := ml.DefaultLSTMConfig()
	lcfg.Epochs = 1
	lstm, err := ml.TrainLSTM(lcfg, mk(lcfg.Vocab, lcfg.Window, 200))
	if err != nil {
		t.Fatal(err)
	}
	return elm, lstm
}

func runFlow(t *testing.T) *Result {
	t.Helper()
	elm, lstm := trainedModels(t)
	res, err := Run(StandardWorkloads(elm, lstm, 8))
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestFlowReproducesTableII(t *testing.T) {
	res := runFlow(t)
	if !res.Verified {
		t.Fatal("trimmed core not verified")
	}
	// Table II per-CU numbers.
	if res.MIAOW.LUTs != 180902 || res.MIAOW.FFs != 107001 {
		t.Errorf("MIAOW area %+v, want 180902/107001", res.MIAOW)
	}
	mlRed := res.MLMIAOW.Reduction(res.MIAOW)
	if mlRed < 0.78 || mlRed > 0.86 {
		t.Errorf("ML-MIAOW reduction %.1f%%, paper reports 82%%", mlRed*100)
	}
	m20Red := res.MIAOW20.Reduction(res.MIAOW)
	if m20Red < 0.36 || m20Red > 0.48 {
		t.Errorf("MIAOW2.0 reduction %.1f%%, paper reports 42%%", m20Red*100)
	}
	ppa := res.PerfPerAreaVsMIAOW20()
	if ppa < 2.7 || ppa > 3.7 {
		t.Errorf("perf/area vs MIAOW2.0 = %.2fx, paper reports 3.2x", ppa)
	}
	// Five trimmed CUs must fit in roughly one MIAOW's footprint (§IV-A).
	if 5*res.MLMIAOW.LUTs > int(1.05*float64(res.MIAOW.LUTs)) {
		t.Errorf("five ML-MIAOW CUs (%d LUTs) should fit where one MIAOW (%d) did",
			5*res.MLMIAOW.LUTs, res.MIAOW.LUTs)
	}
}

func TestFloatingPointBlocksTrimmed(t *testing.T) {
	res := runFlow(t)
	mustTrim := []gpu.BlockID{
		gpu.BVALUF32Add, gpu.BVALUF32FMA, gpu.BVALUF64, gpu.BTexSampler,
		gpu.BAtomics, gpu.BInterp, gpu.BImageStore,
	}
	trimmed := map[gpu.BlockID]bool{}
	for _, b := range res.Trimmed {
		trimmed[b] = true
	}
	for _, b := range mustTrim {
		if !trimmed[b] {
			t.Errorf("block %v survived trimming but is never used by the models", b)
		}
	}
	mustKeep := []gpu.BlockID{
		gpu.BVALUMulQ, gpu.BLDSCtrl, gpu.BFlatIF, gpu.BFetch, gpu.BVALUAdd,
		gpu.BVALUCmp, gpu.BVALUCndMask, gpu.BSALUInt, gpu.BBranchUnit,
	}
	for _, b := range mustKeep {
		if trimmed[b] {
			t.Errorf("block %v was trimmed but the inference kernels use it", b)
		}
	}
}

func TestMIAOW20KeepsNonALUBlocks(t *testing.T) {
	var cov gpu.CoverageSet // nothing covered
	keep := MIAOW20Keep(cov)
	if !keep[gpu.BTexSampler] || !keep[gpu.BScalarCache] {
		t.Error("MIAOW2.0 trimmer must not remove non-ALU/decoder blocks")
	}
	if keep[gpu.BVALUF32FMA] || keep[gpu.BDecFP] {
		t.Error("MIAOW2.0 trimmer should remove uncovered ALU/decoder blocks")
	}
}

func TestAreaOfFullMatchesBlockTable(t *testing.T) {
	full := AreaOf(nil)
	var wantLUT, wantFF, wantBRAM int
	for _, b := range gpu.Blocks() {
		wantLUT += b.LUTs
		wantFF += b.FFs
		wantBRAM += b.BRAMs
	}
	if full.LUTs != wantLUT || full.FFs != wantFF || full.BRAMs != wantBRAM {
		t.Errorf("AreaOf(nil) = %+v, want %d/%d/%d", full, wantLUT, wantFF, wantBRAM)
	}
}

func TestVerificationCatchesOvertrimming(t *testing.T) {
	// Failure injection: a workload that needs a block outside any keep
	// set must make verification fail loudly (trap), not silently pass.
	w := Workload{Name: "uses-vcmp", Run: func(dev *gpu.Device) ([]uint32, error) {
		k := gpu.MustAssemble("probe", `
			v_cmp_lt v0, #4
			v_cndmask v1, v0, v0
			s_endpgm
		`)
		if _, err := dev.Run(gpu.Dispatch{Kernel: k}); err != nil {
			return nil, err
		}
		return []uint32{1}, nil
	}}
	// Sabotage: coverage run works, then we re-run against a keep set
	// missing the cndmask block by trimming manually.
	dev := gpu.NewDevice(MemWords, 1)
	dev.EnableCoverage()
	if _, err := w.Run(dev); err != nil {
		t.Fatal(err)
	}
	keep := dev.Coverage()
	keep[gpu.BVALUCndMask] = false
	trimmedDev := gpu.NewDevice(MemWords, 1)
	trimmedDev.SetTrim(keep)
	_, err := w.Run(trimmedDev)
	if err == nil || !strings.Contains(err.Error(), "trap") {
		t.Fatalf("overtrimmed core did not trap: %v", err)
	}
}

func TestRunRejectsEmptyWorkloads(t *testing.T) {
	if _, err := Run(nil); err == nil {
		t.Error("empty workload list accepted")
	}
}
