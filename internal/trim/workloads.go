package trim

import (
	"math/rand"

	"rtad/internal/gpu"
	"rtad/internal/kernels"
	"rtad/internal/ml"
)

// StandardWorkloads returns the trimming flow's target applications: the
// ELM and LSTM inference engines, each run over a deterministic stream of
// input windows. This is the "simultaneous trimming for multiple
// applications" configuration — the merged coverage keeps the union of
// what both models need, so the one trimmed core serves either (§II).
func StandardWorkloads(elm *ml.ELM, lstm *ml.LSTM, steps int) []Workload {
	if steps <= 0 {
		steps = 12
	}
	return []Workload{
		{Name: "elm-inference", Run: func(dev *gpu.Device) ([]uint32, error) {
			eng, err := kernels.NewELMEngine(dev, elm)
			if err != nil {
				return nil, err
			}
			rng := rand.New(rand.NewSource(71))
			var digest []uint32
			w := make([]int32, kernels.ELMWindow)
			for s := 0; s < steps; s++ {
				for i := range w {
					w[i] = int32(rng.Intn(kernels.ELMVocab))
				}
				j, _, err := eng.Infer(w)
				if err != nil {
					return nil, err
				}
				digest = append(digest, uint32(j.MarginQ), uint32(j.EwmaQ), boolWord(j.Anomaly))
			}
			return digest, nil
		}},
		{Name: "lstm-inference", Run: func(dev *gpu.Device) ([]uint32, error) {
			eng, err := kernels.NewLSTMEngine(dev, lstm)
			if err != nil {
				return nil, err
			}
			rng := rand.New(rand.NewSource(72))
			var digest []uint32
			w := make([]int32, kernels.LSTMWindow)
			for s := 0; s < steps; s++ {
				for i := range w {
					w[i] = int32(rng.Intn(kernels.LSTMVocab))
				}
				j, _, err := eng.Infer(w)
				if err != nil {
					return nil, err
				}
				digest = append(digest, uint32(j.MarginQ), uint32(j.EwmaQ), boolWord(j.Anomaly))
			}
			// Fold the recurrent state into the digest: the trimmed core
			// must reproduce it exactly.
			for i := 0; i < kernels.LSTMHidden; i++ {
				digest = append(digest, dev.Mem[kernels.LSTMH+i], dev.Mem[kernels.LSTMC+i])
			}
			return digest, nil
		}},
	}
}

func boolWord(b bool) uint32 {
	if b {
		return 1
	}
	return 0
}
