// Package trim implements the coverage-driven trimming flow of Fig 4:
// (1) run dynamic simulations of the target ML models with block coverage
// enabled, (2) merge the per-model coverage sets, (3) identify and remove
// uncovered blocks, and (4) verify that the trimmed core computes exactly
// the same results as the original. It also implements the MIAOW2.0-style
// baseline trimmer — which only removes unused logic inside ALU and
// instruction-decoder sub-blocks — so Table II's comparison can be
// regenerated.
package trim

import (
	"fmt"

	"rtad/internal/gpu"
)

// Workload exercises one target ML model on a device and returns a digest
// of its observable results. The flow runs each workload twice — once on
// the full core with coverage, once on the trimmed core — and requires
// identical digests (the Fig 4 verification step).
type Workload struct {
	Name string
	Run  func(dev *gpu.Device) ([]uint32, error)
}

// Area is an FPGA footprint.
type Area struct {
	LUTs  int
	FFs   int
	BRAMs int
}

// Sum returns LUTs+FFs, the quantity Table II reports reductions over.
func (a Area) Sum() int { return a.LUTs + a.FFs }

// Reduction returns the fractional area saving of a relative to full.
func (a Area) Reduction(full Area) float64 {
	return 1 - float64(a.Sum())/float64(full.Sum())
}

// AreaOf sums the footprint of the blocks in keep; a nil keep means the
// full (untrimmed) core.
func AreaOf(keep *gpu.CoverageSet) Area {
	var out Area
	for _, b := range gpu.Blocks() {
		if keep == nil || keep[b.ID] {
			out.LUTs += b.LUTs
			out.FFs += b.FFs
			out.BRAMs += b.BRAMs
		}
	}
	return out
}

// MIAOW20Keep computes the block set the MIAOW2.0-style trimmer retains:
// uncovered blocks are removed only when they are ALU or decoder
// sub-blocks; everything else stays, because that tool analyses the target
// application's instructions rather than HDL coverage (§II).
func MIAOW20Keep(cov gpu.CoverageSet) gpu.CoverageSet {
	keep := cov
	for _, b := range gpu.Blocks() {
		if b.Cat != gpu.CatALU && b.Cat != gpu.CatDecode {
			keep[b.ID] = true
		}
	}
	return keep
}

// Result reports one trimming-flow run.
type Result struct {
	// Coverage is the merged covered-block set of all workloads.
	Coverage gpu.CoverageSet
	// Trimmed lists the removed blocks.
	Trimmed []gpu.BlockID
	// Verified is true when every workload produced identical results on
	// the trimmed core.
	Verified bool
	// Areas of the three Table II configurations (per compute unit).
	MIAOW   Area
	MIAOW20 Area
	MLMIAOW Area
}

// PerfPerAreaVsMIAOW20 is the headline Table II ratio: both cores deliver
// the same per-CU performance, so performance-per-area is inversely
// proportional to area.
func (r *Result) PerfPerAreaVsMIAOW20() float64 {
	return float64(r.MIAOW20.Sum()) / float64(r.MLMIAOW.Sum())
}

// MemWords is the device memory the flow provisions for workloads.
const MemWords = 1 << 16

// Run executes the four-step flow over the given workloads.
func Run(workloads []Workload) (*Result, error) {
	if len(workloads) == 0 {
		return nil, fmt.Errorf("trim: no workloads")
	}
	// Steps 1–2: dynamic simulation with coverage on, merged across
	// workloads (a fresh device per workload, like separate simulations;
	// the coverage sets are OR-merged as ICCR does).
	var merged gpu.CoverageSet
	reference := make([][]uint32, len(workloads))
	for i, w := range workloads {
		dev := gpu.NewDevice(MemWords, 1)
		dev.EnableCoverage()
		digest, err := w.Run(dev)
		if err != nil {
			return nil, fmt.Errorf("trim: coverage run of %s: %w", w.Name, err)
		}
		reference[i] = digest
		merged.Merge(dev.Coverage())
	}

	// Step 3: trim uncovered blocks.
	res := &Result{
		Coverage: merged,
		Trimmed:  merged.Uncovered(),
		MIAOW:    AreaOf(nil),
	}
	m20 := MIAOW20Keep(merged)
	res.MIAOW20 = AreaOf(&m20)
	res.MLMIAOW = AreaOf(&merged)

	// Step 4: verify the trimmed core against the original results.
	res.Verified = true
	for i, w := range workloads {
		dev := gpu.NewDevice(MemWords, 1)
		dev.SetTrim(merged)
		digest, err := w.Run(dev)
		if err != nil {
			return nil, fmt.Errorf("trim: verification run of %s: %w", w.Name, err)
		}
		if len(digest) != len(reference[i]) {
			res.Verified = false
			continue
		}
		for k := range digest {
			if digest[k] != reference[i][k] {
				res.Verified = false
				break
			}
		}
	}
	if !res.Verified {
		return res, fmt.Errorf("trim: trimmed core diverges from original results")
	}
	return res, nil
}
