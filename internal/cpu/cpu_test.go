package cpu

import (
	"testing"

	"rtad/internal/isa"
)

func mustAssemble(t *testing.T, src string) *isa.Program {
	t.Helper()
	p, err := isa.Assemble(src, 0x8000)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func run(t *testing.T, src string, cfg Config) *CPU {
	t.Helper()
	c := New(mustAssemble(t, src), cfg)
	if _, err := c.Run(1 << 20); err != nil {
		t.Fatal(err)
	}
	if !c.Halted() {
		t.Fatal("program did not halt")
	}
	return c
}

func TestALUSemantics(t *testing.T) {
	c := run(t, `
		mov r0, #6
		mov r1, #7
		mul r2, r0, r1   ; 42
		add r3, r2, #100 ; 142
		sub r4, r3, r0   ; 136
		and r5, r2, #15  ; 10
		orr r6, r5, #32  ; 42
		eor r7, r6, r6   ; 0
		lsl r8, r0, #4   ; 96
		lsr r9, r8, #2   ; 24
		mvn r11, r7      ; 0xffffffff
		asr r12, r11, #8 ; still 0xffffffff (sign extension)
		halt
	`, Config{})
	want := map[isa.Reg]uint32{
		isa.R2: 42, isa.R3: 142, isa.R4: 136, isa.R5: 10, isa.R6: 42,
		isa.R7: 0, isa.R8: 96, isa.R9: 24, isa.R11: 0xffffffff, isa.R12: 0xffffffff,
	}
	for r, v := range want {
		if got := c.Reg(r); got != v {
			t.Errorf("%v = %d, want %d", r, got, v)
		}
	}
}

func TestLoopAndFlags(t *testing.T) {
	// Sum 1..10 with a conditional loop.
	c := run(t, `
		mov r0, #0
		mov r1, #1
	loop:
		cmp r1, #10
		bge done
		add r0, r0, r1
		add r1, r1, #1
		b loop
	done:
		add r0, r0, r1 ; include the final 10
		halt
	`, Config{})
	if got := c.Reg(isa.R0); got != 55 {
		t.Errorf("sum = %d, want 55", got)
	}
}

func TestMemory(t *testing.T) {
	c := run(t, `
		mov r0, #1234
		str r0, [r10, #8]
		ldr r1, [r10, #8]
		halt
	`, Config{})
	if got := c.Reg(isa.R1); got != 1234 {
		t.Errorf("loaded %d, want 1234", got)
	}
}

func TestMemoryFaults(t *testing.T) {
	for _, src := range []string{
		"mov r0, #2\n ldr r1, [r0, #1]\n halt", // unaligned
		"mvn r0, #0\n str r1, [r0, #0]\n halt", // out of range
	} {
		c := New(mustAssemble(t, src), Config{MemBytes: 4096})
		if _, err := c.Run(100); err == nil {
			t.Errorf("no fault for %q", src)
		}
	}
}

func TestCallReturnIndirect(t *testing.T) {
	// Assemble a program exercising every transfer kind, with a sink.
	prog := mustAssemble(t, `
	start:
		bl f
		svc #5
		mov r4, #0
		cmp r4, #0
		beq taken
	nottaken:
		nop
	taken:
		halt
	f:
		ret
	`)
	sink2 := &CollectSink{}
	cc := New(prog, Config{Mode: ModeRTAD, Sink: sink2})
	if _, err := cc.Run(100); err != nil {
		t.Fatal(err)
	}
	var kinds []Kind
	for _, ev := range sink2.Events {
		kinds = append(kinds, ev.Kind)
	}
	want := []Kind{KindCall, KindReturn, KindSyscall, KindDirect}
	if len(kinds) != len(want) {
		t.Fatalf("got %d events %v, want %v", len(kinds), kinds, want)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Fatalf("event kinds = %v, want %v", kinds, want)
		}
	}
	// The call event must carry the return-address side effect.
	if sink2.Events[0].Target != prog.Symbols["f"] {
		t.Errorf("call target = %#x, want %#x", sink2.Events[0].Target, prog.Symbols["f"])
	}
	// The syscall event encodes its service number in the target.
	if n := SyscallNumber(sink2.Events[2].Target); n != 5 {
		t.Errorf("syscall number = %d, want 5", n)
	}
	if !sink2.Events[3].Taken {
		t.Error("beq should have been taken")
	}
}

func TestIndirectJumpAndCall(t *testing.T) {
	// Register-indirect targets are preloaded from the symbol table, the
	// way a loader would relocate function pointers.
	prog := mustAssemble(t, `
		blr r4   ; call dest
		br  r6   ; jump fin
	dest:
		ret
	fin:
		halt
	`)
	sink := &CollectSink{TakenOnly: true}
	c := New(prog, Config{Mode: ModeRTAD, Sink: sink})
	c.SetReg(isa.R4, prog.Symbols["dest"])
	c.SetReg(isa.R6, prog.Symbols["fin"])
	if _, err := c.Run(100); err != nil {
		t.Fatal(err)
	}
	if !c.Halted() {
		t.Fatal("did not halt")
	}
	want := []Kind{KindIndCall, KindReturn, KindIndirect}
	if len(sink.Events) != 3 {
		t.Fatalf("got %d events, want 3", len(sink.Events))
	}
	for i, k := range want {
		if sink.Events[i].Kind != k {
			t.Errorf("event %d kind = %v, want %v", i, sink.Events[i].Kind, k)
		}
	}
}

func TestNotTakenEventsReported(t *testing.T) {
	sink := &CollectSink{}
	prog := mustAssemble(t, `
		mov r0, #1
		cmp r0, #2
		beq never
		halt
	never:
		halt
	`)
	c := New(prog, Config{Mode: ModeRTAD, Sink: sink})
	if _, err := c.Run(100); err != nil {
		t.Fatal(err)
	}
	if len(sink.Events) != 1 || sink.Events[0].Taken {
		t.Fatalf("want one not-taken event, got %+v", sink.Events)
	}
}

func TestBaselineModeSuppressesSink(t *testing.T) {
	sink := &CollectSink{}
	prog := mustAssemble(t, "b next\nnext:\nhalt")
	c := New(prog, Config{Mode: ModeBaseline, Sink: sink})
	if _, err := c.Run(10); err != nil {
		t.Fatal(err)
	}
	if len(sink.Events) != 0 {
		t.Errorf("baseline mode leaked %d events", len(sink.Events))
	}
}

func TestInstrumentationCosts(t *testing.T) {
	if c := InstrumentationCost(ModeSWAll, KindDirect); c <= 0 {
		t.Error("SW_ALL must charge for direct branches")
	}
	if c := InstrumentationCost(ModeSWFunc, KindCall); c <= 0 {
		t.Error("SW_FUNC must charge for calls")
	}
	if c := InstrumentationCost(ModeSWFunc, KindDirect); c != 0 {
		t.Error("SW_FUNC must not charge for plain branches")
	}
	if c := InstrumentationCost(ModeSWSys, KindSyscall); c != syscallTraceCost {
		t.Error("SW_SYS must charge the strace cost for syscalls")
	}
	if c := InstrumentationCost(ModeSWSys, KindCall); c != 0 {
		t.Error("SW_SYS must not charge for calls")
	}
	if c := InstrumentationCost(ModeRTAD, KindDirect); c != 0 {
		t.Error("RTAD charges no instrumentation cycles")
	}
	// Overhead ordering that Fig 6 depends on: per-event costs satisfy
	// branch stub < call stub < syscall trace.
	if !(InstrumentationCost(ModeSWAll, KindDirect) < InstrumentationCost(ModeSWFunc, KindCall)*3 &&
		InstrumentationCost(ModeSWFunc, KindCall) < syscallTraceCost) {
		t.Error("per-event instrumentation cost ordering broken")
	}
}

func TestModeOverheadOrdering(t *testing.T) {
	// A branchy program with calls and occasional syscalls; the mode
	// overheads must order Baseline < SW_SYS < SW_FUNC < SW_ALL.
	// Event frequencies matter: syscalls must be much rarer than calls,
	// which are rarer than branches, as in the SPEC-like workloads.
	src := `
		mov r0, #0
		mov r1, #4000
	loop:
		cmp r0, r1
		bge done
		add r0, r0, #1
		and r2, r0, #2047
		cmp r2, #0
		bne skipsvc
		svc #1
	skipsvc:
		and r2, r0, #3
		cmp r2, #0
		bne skipcall
		bl fn
	skipcall:
		b loop
	fn:
		add r3, r3, #1
		ret
	done:
		halt
	`
	cycles := map[Mode]int64{}
	for _, m := range []Mode{ModeBaseline, ModeSWSys, ModeSWFunc, ModeSWAll} {
		c := run(t, src, Config{Mode: m})
		cycles[m] = c.Cycles()
	}
	if !(cycles[ModeBaseline] < cycles[ModeSWSys] &&
		cycles[ModeSWSys] < cycles[ModeSWFunc] &&
		cycles[ModeSWFunc] < cycles[ModeSWAll]) {
		t.Errorf("overhead ordering broken: %v", cycles)
	}
}

func TestSinkStallAccounting(t *testing.T) {
	prog := mustAssemble(t, `
		mov r0, #0
	loop:
		add r0, r0, #1
		cmp r0, #10
		blt loop
		halt
	`)
	stall := SinkFunc(func(ev BranchEvent) int64 { return 5 })
	c := New(prog, Config{Mode: ModeRTAD, Sink: stall})
	if _, err := c.Run(1000); err != nil {
		t.Fatal(err)
	}
	if c.StallCycles() == 0 {
		t.Error("stall cycles not accounted")
	}
	if c.StallCycles()%5 != 0 {
		t.Errorf("stall cycles = %d, want multiple of 5", c.StallCycles())
	}
	st := c.Stats()
	if st.StallCycles != c.StallCycles() || st.Instret != c.Instret() {
		t.Error("Stats snapshot inconsistent")
	}
}

func TestEventCycleMonotonic(t *testing.T) {
	var last int64 = -1
	mono := true
	sink := SinkFunc(func(ev BranchEvent) int64 {
		if ev.Cycle < last {
			mono = false
		}
		last = ev.Cycle
		return 0
	})
	prog := mustAssemble(t, `
		mov r0, #0
	loop:
		add r0, r0, #1
		bl f
		cmp r0, #50
		blt loop
		halt
	f:
		ret
	`)
	c := New(prog, Config{Mode: ModeRTAD, Sink: sink})
	if _, err := c.Run(10000); err != nil {
		t.Fatal(err)
	}
	if !mono {
		t.Error("branch event cycles not monotonic")
	}
}

func TestRunBudget(t *testing.T) {
	prog := mustAssemble(t, "loop: b loop")
	c := New(prog, Config{})
	n, err := c.Run(1000)
	if err != nil {
		t.Fatal(err)
	}
	if n != 1000 {
		t.Errorf("ran %d instructions, want 1000", n)
	}
	if c.Halted() {
		t.Error("infinite loop cannot halt")
	}
}

func TestSyscallNumberRoundTrip(t *testing.T) {
	for _, n := range []int32{0, 1, 17, 255} {
		if got := SyscallNumber(SyscallTarget(n)); got != n {
			t.Errorf("round trip %d -> %d", n, got)
		}
	}
}

func TestKindString(t *testing.T) {
	for k := Kind(0); k < numKinds; k++ {
		if k.String() == "" {
			t.Errorf("kind %d has no name", k)
		}
	}
	if !KindReturn.IsIndirectKind() || KindDirect.IsIndirectKind() {
		t.Error("IsIndirectKind misclassifies")
	}
}

func TestInstrumentationCycleAccounting(t *testing.T) {
	src := `
		mov r0, #0
	loop:
		add r0, r0, #1
		bl f
		cmp r0, #20
		blt loop
		halt
	f:
		ret
	`
	c := run(t, src, Config{Mode: ModeSWFunc})
	if c.InstrumentationCycles() == 0 {
		t.Fatal("SW_FUNC charged no instrumentation cycles")
	}
	// 20 calls, each charged the call stub exactly once.
	want := 20 * InstrumentationCost(ModeSWFunc, KindCall)
	if got := c.InstrumentationCycles(); got != want {
		t.Errorf("instrumentation cycles = %d, want %d", got, want)
	}
	if c.BranchCount(KindCall) != 20 || c.BranchCount(KindReturn) != 20 {
		t.Errorf("call/return counts = %d/%d, want 20/20",
			c.BranchCount(KindCall), c.BranchCount(KindReturn))
	}
	st := c.Stats()
	if st.InstrCycles != want {
		t.Errorf("Stats.InstrCycles = %d, want %d", st.InstrCycles, want)
	}
}

func TestWXProtection(t *testing.T) {
	// A store aimed at the code region must fault under W^X and succeed
	// (into the separate data RAM alias) without it.
	src := `
		mov r0, #2048
		lsl r0, r0, #4  ; 0x8000, the program base
		mov r1, #1
		str r1, [r0, #0]
		halt
	`
	open := New(mustAssemble(t, src), Config{})
	if _, err := open.Run(10); err != nil {
		t.Fatalf("without W^X: %v", err)
	}
	locked := New(mustAssemble(t, src), Config{WXProtect: true})
	if _, err := locked.Run(10); err == nil {
		t.Fatal("store into code region did not fault under W^X")
	}
	// Ordinary data stores are unaffected.
	benign := New(mustAssemble(t, "mov r0, #7\n str r0, [r10, #64]\n halt"), Config{WXProtect: true})
	if _, err := benign.Run(10); err != nil {
		t.Fatalf("benign store faulted: %v", err)
	}
}
