// Package cpu models the RTAD host processor: an in-order core executing the
// isa package's instruction set with a cycle-accurate-ish timing model, a
// supervisor-call trap, and — the part the paper depends on — a retirement
// hook that reports every executed control-flow transfer to a trace sink
// (the CoreSight PTM model). The package also implements the three
// software-based collection baselines of Fig 6 (SW_SYS / SW_FUNC / SW_ALL)
// by executing instrumentation stubs at the corresponding event sites.
package cpu

import "fmt"

// Kind classifies a retired control-flow transfer. The classification drives
// both PTM packet selection (direct transfers become atoms, indirect ones
// need full branch-address packets) and the ML feature extraction (the ELM
// model consumes syscalls, the LSTM model general branches).
type Kind uint8

// Transfer kinds.
const (
	KindDirect   Kind = iota // unconditional or taken conditional direct branch
	KindCall                 // direct call (BL)
	KindReturn               // return through the link register
	KindIndirect             // indirect jump through a register
	KindIndCall              // indirect call through a register
	KindSyscall              // supervisor call (kernel entry)

	numKinds
)

var kindNames = [numKinds]string{
	KindDirect: "direct", KindCall: "call", KindReturn: "return",
	KindIndirect: "indirect", KindIndCall: "indcall", KindSyscall: "syscall",
}

// String returns a short name for k.
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// IsIndirectKind reports whether a transfer of this kind has a target that
// cannot be recovered from the static binary, so a trace unit must emit the
// full target address.
func (k Kind) IsIndirectKind() bool {
	switch k {
	case KindReturn, KindIndirect, KindIndCall, KindSyscall:
		return true
	}
	return false
}

// SyscallBase is the architectural kernel entry region. A supervisor call
// with service number n transfers to SyscallBase | n<<2, which gives every
// service a distinct, stable target address — the property the IGM address
// mapper uses to turn syscalls into ML feature IDs.
const SyscallBase uint32 = 0xFFFF_0000

// SyscallTarget returns the kernel entry address for service number n.
func SyscallTarget(n int32) uint32 { return SyscallBase | uint32(n)<<2 }

// SyscallNumber recovers the service number from a kernel entry address.
func SyscallNumber(target uint32) int32 { return int32(target&^SyscallBase) >> 2 }

// BranchEvent describes one executed branch instruction. Not-taken
// conditional branches are reported too (Taken=false): a PFT-style trace
// unit must emit an atom for every waypoint so the decoder can follow the
// static code between emitted addresses.
type BranchEvent struct {
	Seq    int64  // retirement order, from 0
	Cycle  int64  // CPU cycle at retirement
	PC     uint32 // address of the branch instruction
	Target uint32 // destination (meaningful when Taken)
	Kind   Kind
	Taken  bool
}

// A Sink consumes retired branch events. BranchRetired returns the number
// of CPU cycles the core must stall before the *next* instruction issues;
// a zero return is the common case. The CoreSight path uses the stall
// return to model trace-FIFO backpressure — the only mechanism by which
// RTAD perturbs the host (Fig 6's 0.052 % overhead).
type Sink interface {
	BranchRetired(ev BranchEvent) (stallCycles int64)
}

// SinkFunc adapts a function to the Sink interface.
type SinkFunc func(BranchEvent) int64

// BranchRetired calls f.
func (f SinkFunc) BranchRetired(ev BranchEvent) int64 { return f(ev) }

// CollectSink is a Sink that records taken transfers into a slice, for tests
// and offline trace collection (the training-data path of §III-C).
type CollectSink struct {
	Events    []BranchEvent
	TakenOnly bool
}

// BranchRetired implements Sink with no stall.
func (c *CollectSink) BranchRetired(ev BranchEvent) int64 {
	if !c.TakenOnly || ev.Taken {
		c.Events = append(c.Events, ev)
	}
	return 0
}
